(* hssta - hierarchical statistical static timing analysis CLI.

   Subcommands:
     list                  list the bundled benchmark circuits
     sta <circuit>         deterministic + statistical timing of one circuit
     extract <circuit>     extract a statistical timing model (Table I row)
     criticality <circuit> edge-criticality histogram (Fig. 6)
     hier [<circuit>]      the 2x2 hierarchical experiment (Fig. 7)
     batch <circuit>       evaluate a batch of scenarios over one design
*)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Build = Ssta_timing.Build
module N = Ssta_circuit.Netlist
module Stats = Ssta_gauss.Stats
open Cmdliner

let setup_logs =
  let init style_renderer level =
    Fmt_tty.setup_std_outputs ?style_renderer ();
    Logs.set_level level;
    Logs.set_reporter (Logs_fmt.reporter ())
  in
  Term.(const init $ Fmt_cli.style_renderer () $ Logs_cli.level ())

(* Worker-domain count for the parallel MC/extraction engines.  The flag
   overrides the PAR_DOMAINS environment variable, which overrides the CPU
   count; every engine is bit-deterministic across this setting, so it only
   trades wall clock. *)
let setup_domains =
  let doc =
    "Worker domains for the parallel Monte Carlo and extraction engines \
     (default: $(b,PAR_DOMAINS) or the CPU count; 1 = exact sequential \
     path).  Results are bit-identical for every value."
  in
  let arg =
    Arg.(value & opt (some int) None & info [ "j"; "domains" ] ~docv:"N" ~doc)
  in
  let apply = function None -> () | Some n -> Ssta_par.Par.set_domains n in
  Term.(const apply $ arg)

(* Backward tile size of the criticality screen.  The flag overrides the
   CRIT_TILE environment variable; the default keeps every output's
   backward workspace resident at once (the untiled behaviour).  Smaller
   tiles cap the screen's peak RSS at the cost of one extra forward sweep
   per input per additional tile; keep/cm and the screen's pair counters
   are bit-identical for every value.  "auto" sizes the tile from the
   CRIT_TILE_BUDGET_MB peak-RSS budget (default 256 MB) and the per-output
   workspace footprint; see Criticality.auto_tile for the formula. *)
let setup_crit_tile =
  let doc =
    "Backward tile size for the criticality screen: at most $(docv) \
     retained backward workspaces are resident at once (default: \
     $(b,CRIT_TILE) or all outputs).  Smaller tiles trade extra forward \
     sweeps for a lower peak RSS; results are bit-identical for every \
     value.  $(b,auto) picks the largest tile whose retained workspaces \
     fit the $(b,CRIT_TILE_BUDGET_MB) budget (default 256)."
  in
  let arg =
    Arg.(value & opt (some string) None & info [ "crit-tile" ] ~docv:"N" ~doc)
  in
  let apply = function
    | None -> ()
    | Some s when String.lowercase_ascii (String.trim s) = "auto" ->
        Hier_ssta.Criticality.set_tile_auto ()
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Hier_ssta.Criticality.set_tile n
        | _ ->
            Printf.eprintf
              "hssta: --crit-tile must be a positive integer or 'auto' (got \
               %s)\n\
               %!"
              s;
            exit 124)
  in
  Term.(const apply $ arg)

(* Numerical robustness policy for the graceful-degradation layer.  The
   flag overrides the ROBUST_POLICY environment variable (default:
   repair).  Under strict, any detected numerical degeneracy raises a
   structured error naming the fault site (exit code 3); under repair the
   documented repair is applied and counted; warn additionally logs each
   repair to stderr (rate-limited). *)
let setup_robust =
  let doc =
    "Numerical robustness policy: $(b,strict) turns every detected \
     degeneracy (non-finite values, indefinite covariances, degenerate \
     max operands) into a structured error naming the fault site; \
     $(b,repair) applies the documented numerical repair and counts it; \
     $(b,warn) repairs, counts and logs.  Overrides $(b,ROBUST_POLICY); \
     default repair."
  in
  let arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "robust" ] ~docv:"POLICY" ~doc)
  in
  let apply = function
    | None -> ()
    | Some s -> (
        match Ssta_robust.Robust.policy_of_string s with
        | Ok p -> Ssta_robust.Robust.set_policy p
        | Error m ->
            Printf.eprintf "hssta: --robust: %s\n%!" m;
            exit 124)
  in
  Term.(const apply $ arg)

(* Observability: [--trace FILE] streams JSONL span/counter events (same as
   the OBS_TRACE environment variable); [--obs-summary] prints the
   aggregated per-phase table to stderr when the command finishes. *)
let setup_obs =
  let trace_arg =
    let doc =
      "Enable instrumentation and stream JSONL trace events to $(docv) \
       (equivalent to setting $(b,OBS_TRACE))."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let summary_arg =
    let doc =
      "Enable instrumentation and print the aggregated span/counter summary \
       to stderr on exit."
    in
    Arg.(value & flag & info [ "obs-summary" ] ~doc)
  in
  let apply trace summary =
    (match trace with
    | None -> ()
    | Some path ->
        Ssta_obs.Obs.trace_to_file path;
        Ssta_obs.Obs.enable ());
    if summary then begin
      Ssta_obs.Obs.enable ();
      at_exit (fun () ->
          Ssta_obs.Obs.pp Format.err_formatter ();
          Format.pp_print_flush Format.err_formatter ())
    end
  in
  Term.(const apply $ trace_arg $ summary_arg)

let circuit_arg =
  let doc = "Benchmark circuit name (see `hssta list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let delta_arg =
  let doc = "Criticality threshold for edge removal (paper: 0.05)." in
  Arg.(value & opt float 0.05 & info [ "delta" ] ~docv:"DELTA" ~doc)

let iters_arg =
  let doc = "Monte Carlo iterations (paper: 10000)." in
  Arg.(value & opt int 2000 & info [ "mc-iterations"; "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for Monte Carlo runs." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

(* A circuit argument is either a bundled benchmark name or a path to an
   ISCAS85 .bench netlist file. *)
let build_circuit name =
  if Filename.check_suffix name ".bench" && Sys.file_exists name then
    try Ok (Ssta_circuit.Bench_format.load ~path:name)
    with Failure m -> Error (`Msg m)
  else
    try Ok (Ssta_circuit.Iscas.build name)
    with Invalid_argument m -> Error (`Msg m)

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Array.iter
      (fun name ->
        let nl = Ssta_circuit.Iscas.build name in
        Format.printf "%a@." N.pp_stats nl)
      Ssta_circuit.Iscas.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled benchmark circuits")
    Term.(const run $ const ())

let sta_cmd =
  let run () () () () name =
    match build_circuit name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok nl ->
        let b = Build.characterize nl in
        let g = b.Build.graph in
        let nominal =
          Ssta_timing.Sta.design_delay g ~weights:(Build.nominal_weights b)
        in
        let arr = H.Propagate.forward_all g ~forms:b.Build.forms in
        (match H.Propagate.max_over arr g.Ssta_timing.Tgraph.outputs with
        | None -> prerr_endline "no output reachable"; exit 1
        | Some f ->
            Printf.printf "circuit:          %s\n" name;
            Printf.printf "nominal delay:    %10.1f ps (corner STA)\n" nominal;
            Printf.printf "SSTA delay:       %10.1f ps mean, %.1f ps sigma\n"
              f.Form.mean (Form.std f);
            List.iter
              (fun p ->
                Printf.printf "  yield %4.1f%% at %10.1f ps\n" (100.0 *. p)
                  (H.Yield.clock_for_yield f ~yield:p))
              [ 0.5; 0.9; 0.99; 0.999 ])
  in
  Cmd.v
    (Cmd.info "sta"
       ~doc:"Deterministic and statistical timing of one circuit")
    Term.(
      const run $ setup_logs $ setup_domains $ setup_obs $ setup_robust
      $ circuit_arg)

let extract_cmd =
  let run () () () () () name delta iters seed =
    match build_circuit name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok nl ->
        let b = Build.characterize nl in
        let model = H.Extract.extract ~delta b in
        Format.printf "%a@." H.Timing_model.pp_stats model;
        if iters > 0 then begin
          let io = H.Timing_model.io_delays model in
          let mc =
            Ssta_mc.Allpairs_mc.run ~iterations:iters ~seed
              (Ssta_mc.Sampler.ctx_of_build b)
          in
          let merr = ref 0.0 and verr = ref 0.0 and pairs = ref 0 in
          Array.iteri
            (fun i row ->
              Array.iteri
                (fun j f ->
                  match f with
                  | Some f when mc.Ssta_mc.Allpairs_mc.reachable.(i).(j) ->
                      incr pairs;
                      let mm = mc.Ssta_mc.Allpairs_mc.means.(i).(j) in
                      let ms = mc.Ssta_mc.Allpairs_mc.stds.(i).(j) in
                      merr :=
                        Float.max !merr (abs_float (f.Form.mean -. mm) /. mm);
                      verr :=
                        Float.max !verr (abs_float (Form.std f -. ms) /. ms)
                  | _ -> ())
                row)
            io;
          Printf.printf
            "accuracy vs MC (%d iterations, %d IO pairs): merr=%.2f%% verr=%.2f%%\n"
            iters !pairs (100.0 *. !merr) (100.0 *. !verr)
        end
  in
  Cmd.v
    (Cmd.info "extract"
       ~doc:"Extract a statistical timing model and validate it against MC")
    Term.(
      const run $ setup_logs $ setup_domains $ setup_obs $ setup_crit_tile
      $ setup_robust $ circuit_arg $ delta_arg $ iters_arg $ seed_arg)

let criticality_cmd =
  let run () () () () () name delta =
    match build_circuit name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok nl ->
        let b = Build.characterize nl in
        let _, crit =
          H.Extract.extract_with_criticality ~exact:true ~delta b
        in
        let cm = crit.H.Criticality.cm in
        let hist = Stats.histogram ~lo:0.0 ~hi:1.0 ~bins:20 cm in
        let total = Array.fold_left ( + ) 0 hist in
        Array.iteri
          (fun i c ->
            Printf.printf "[%4.2f,%4.2f%c %6d %s\n"
              (float_of_int i /. 20.0)
              (float_of_int (i + 1) /. 20.0)
              (if i = 19 then ']' else ')')
              c
              (String.make (max 0 (c * 60 / max 1 total)) '#'))
          hist
  in
  Cmd.v
    (Cmd.info "criticality"
       ~doc:"Edge-criticality histogram of a circuit (paper Fig. 6)")
    Term.(
      const run $ setup_logs $ setup_domains $ setup_obs $ setup_crit_tile
      $ setup_robust $ circuit_arg $ delta_arg)

let hier_cmd =
  let circuit =
    let doc = "Module circuit for the 2x2 experiment (must have equally many
               inputs and outputs, e.g. c6288)." in
    Arg.(value & pos 0 string "c6288" & info [] ~docv:"CIRCUIT" ~doc)
  in
  let run () () () () () name delta iters seed =
    match build_circuit name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok nl ->
        let b = Build.characterize nl in
        let model = H.Extract.extract ~delta b in
        let fp =
          try H.Floorplan.mult_grid ~label:name ~build:b ~model ()
          with Failure m -> prerr_endline m; exit 1
        in
        let dg = H.Design_grid.build fp in
        let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
        let glo = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Global_only in
        let d = rep.H.Hier_analysis.delay in
        Printf.printf "proposed:     mean=%.1f ps  sigma=%.1f ps  (%.4fs)\n"
          d.Form.mean (Form.std d) rep.H.Hier_analysis.wall_seconds;
        Printf.printf "global-only:  mean=%.1f ps  sigma=%.1f ps\n"
          glo.H.Hier_analysis.delay.Form.mean
          (Form.std glo.H.Hier_analysis.delay);
        if iters > 0 then begin
          let ctx = H.Hier_analysis.flatten fp dg in
          let mc = Ssta_mc.Flat_mc.run ~iterations:iters ~seed ctx in
          Printf.printf "Monte Carlo:  mean=%.1f ps  sigma=%.1f ps  (%.2fs, %d iters)\n"
            (Stats.mean mc.Ssta_mc.Flat_mc.delays)
            (Stats.std mc.Ssta_mc.Flat_mc.delays)
            mc.Ssta_mc.Flat_mc.wall_seconds iters
        end
  in
  Cmd.v
    (Cmd.info "hier"
       ~doc:"Hierarchical SSTA of the paper's 2x2 experiment (Fig. 7)")
    Term.(
      const run $ setup_logs $ setup_domains $ setup_obs $ setup_crit_tile
      $ setup_robust $ circuit $ delta_arg $ iters_arg $ seed_arg)

let paths_cmd =
  let k_arg =
    let doc = "Number of paths to report." in
    Arg.(value & opt int 5 & info [ "k"; "paths" ] ~docv:"K" ~doc)
  in
  let run () name k =
    match build_circuit name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok nl ->
        let b = Build.characterize nl in
        H.Path_report.report b.Build.graph ~forms:b.Build.forms ~k
          Format.std_formatter
  in
  Cmd.v
    (Cmd.info "paths"
       ~doc:"Report the statistically most critical paths of a circuit")
    Term.(const run $ setup_logs $ circuit_arg $ k_arg)

let corners_cmd =
  let run () name =
    match build_circuit name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok nl ->
        let b = Build.characterize nl in
        Format.printf "%a@." H.Corners.pp_pessimism (H.Corners.pessimism b)
  in
  Cmd.v
    (Cmd.info "corners"
       ~doc:"Compare corner-based STA margins against the SSTA distribution")
    Term.(const run $ setup_logs $ circuit_arg)

let model_cmd =
  let out_arg =
    let doc = "Output path for the serialized timing model." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run () () () () () name delta out =
    match build_circuit name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok nl ->
        let b = Build.characterize nl in
        let model = H.Extract.extract ~delta b in
        H.Model_io.save model ~path:out;
        Format.printf "%a@." H.Timing_model.pp_stats model;
        Printf.printf "written to %s\n" out
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:"Extract a timing model and write it to a file (gray-box IP \
             hand-off)")
    Term.(
      const run $ setup_logs $ setup_domains $ setup_obs $ setup_crit_tile
      $ setup_robust $ circuit_arg $ delta_arg $ out_arg)

let model_info_cmd =
  let path_arg =
    let doc = "Serialized timing model file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run () path =
    let m = H.Model_io.load ~path in
    Format.printf "%a@." H.Timing_model.pp_stats m;
    let io = H.Timing_model.io_delays m in
    let connected = ref 0 and worst = ref None in
    Array.iter
      (Array.iter (function
        | None -> ()
        | Some f ->
            incr connected;
            (match !worst with
            | Some (w : H.Timing_model.Form.t)
              when w.H.Timing_model.Form.mean >= f.H.Timing_model.Form.mean ->
                ()
            | _ -> worst := Some f)))
      io;
    Printf.printf "connected IO pairs: %d\n" !connected;
    match !worst with
    | Some f ->
        Format.printf "worst IO delay: %a@." Ssta_canonical.Form.pp f
    | None -> print_endline "no connected IO pair"
  in
  Cmd.v
    (Cmd.info "model-info" ~doc:"Inspect a serialized timing model")
    Term.(const run $ setup_logs $ path_arg)

let batch_cmd =
  let module Batch = Ssta_batch.Batch in
  let scenarios_arg =
    let doc =
      "JSON scenario-spec file: an array of objects with optional fields \
       $(b,label), $(b,corner) (nominal|slow|fast|global_slow), $(b,k) \
       (corner sigma multiplier), $(b,delay_scale), $(b,sigma_scale), \
       $(b,grad_x), $(b,grad_y) (linear floorplan gradient over the \
       correlation grid) and $(b,delta).  Without it a built-in grid of \
       $(b,-s) scenarios is used."
    in
    Arg.(
      value & opt (some string) None & info [ "scenarios" ] ~docv:"FILE" ~doc)
  in
  let count_arg =
    let doc = "Number of built-in scenarios when no spec file is given." in
    Arg.(value & opt int 8 & info [ "s"; "count" ] ~docv:"N" ~doc)
  in
  let mode_arg =
    let doc =
      "Evaluation mode: $(b,delay) (design delay and per-output summaries, \
       one shared forward sweep per scenario) or $(b,io) (the full \
       input-output delay matrix per scenario, swept over the shared \
       per-input cone index)."
    in
    Arg.(value & opt string "delay" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let screen_arg =
    let doc =
      "Also run the criticality screen per scenario (at each scenario's \
       delta) and report how many edges it keeps."
    in
    Arg.(value & flag & info [ "screen" ] ~doc)
  in
  let corner_name = function
    | H.Corners.Nominal -> "nominal"
    | H.Corners.Slow k -> Printf.sprintf "slow@%g" k
    | H.Corners.Fast k -> Printf.sprintf "fast@%g" k
    | H.Corners.Global_slow k -> Printf.sprintf "gslow@%g" k
  in
  let run () () () () () name spec s_n mode screen =
    let mode =
      match String.lowercase_ascii (String.trim mode) with
      | "delay" -> Batch.Delay
      | "io" -> Batch.Io
      | other ->
          Printf.eprintf "hssta batch: --mode must be delay or io (got %s)\n%!"
            other;
          exit 124
    in
    match build_circuit name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok nl ->
        let scenarios =
          match spec with
          | None -> Batch.default_scenarios (max 1 s_n)
          | Some path -> (
              let text =
                try In_channel.with_open_bin path In_channel.input_all
                with Sys_error m -> prerr_endline m; exit 1
              in
              match Batch.parse_scenarios text with
              | Error m ->
                  Printf.eprintf "hssta batch: %s: %s\n%!" path m;
                  exit 1
              | Ok [||] ->
                  Printf.eprintf "hssta batch: %s: empty scenario list\n%!"
                    path;
                  exit 1
              | Ok s -> s)
        in
        let b = Build.characterize nl in
        let base = Batch.prepare b in
        let t0 = Unix.gettimeofday () in
        let results = Batch.run ~mode ~screen base scenarios in
        let dt = Unix.gettimeofday () -. t0 in
        Printf.printf "%-10s %-11s %6s %6s  %10s %9s%s\n" "scenario" "corner"
          "scale" "sigma"
          (match mode with Batch.Delay -> "mean ps" | Batch.Io -> "io pairs")
          (match mode with Batch.Delay -> "sigma ps" | Batch.Io -> "worst ps")
          (if screen then "  kept" else "");
        Array.iter
          (fun (r : Batch.result) ->
            let s = r.Batch.scenario in
            let a, b_ =
              match mode with
              | Batch.Delay -> (
                  match r.Batch.delay with
                  | Some f ->
                      (Printf.sprintf "%10.1f" f.Form.mean,
                       Printf.sprintf "%9.1f" (Form.std f))
                  | None -> ("         -", "        -"))
              | Batch.Io ->
                  let pairs = ref 0 and worst = ref neg_infinity in
                  Array.iter
                    (Array.iter (function
                      | None -> ()
                      | Some (f : Form.t) ->
                          incr pairs;
                          if f.Form.mean > !worst then worst := f.Form.mean))
                    r.Batch.io;
                  (Printf.sprintf "%10d" !pairs,
                   if !pairs = 0 then "        -"
                   else Printf.sprintf "%9.1f" !worst)
            in
            Printf.printf "%-10s %-11s %6.3f %6.3f  %s %s%s\n" s.Batch.label
              (corner_name s.Batch.corner)
              s.Batch.delay_scale s.Batch.sigma_scale a b_
              (if screen then Printf.sprintf "  %d" r.Batch.kept_edges else ""))
          results;
        Printf.printf "%d scenario(s) in %.3f s (one shared characterize + \
                       prepare)\n"
          (Array.length results) dt
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Evaluate a batch of corner/scale/gradient scenarios over one \
             design, sharing the characterization, the packed base forms \
             and the cone index across the whole batch (bit-identical to \
             independent runs)")
    Term.(
      const run $ setup_logs $ setup_domains $ setup_obs $ setup_crit_tile
      $ setup_robust $ circuit_arg $ scenarios_arg $ count_arg $ mode_arg
      $ screen_arg)

let inject_cmd =
  let module Inject = Ssta_robust_inject.Inject in
  let module Robust = Ssta_robust.Robust in
  let policy_arg =
    let doc =
      "Policy (or policies) to run the corpus under: $(b,strict), \
       $(b,repair), $(b,warn) or $(b,both) (= strict then repair)."
    in
    Arg.(value & opt string "both" & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let out_arg =
    let doc = "Write per-case verdicts as JSONL to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run () () name policy_s out seed =
    let policies =
      match policy_s with
      | "both" -> [ Robust.Strict; Robust.Repair ]
      | s -> (
          match Robust.policy_of_string s with
          | Ok p -> [ p ]
          | Error m ->
              Printf.eprintf "hssta inject: --policy: %s\n%!" m;
              exit 124)
    in
    let ctx = Inject.make_ctx name in
    let verdicts =
      List.concat_map
        (fun policy -> Inject.run_corpus ctx ~seed ~policy)
        policies
    in
    List.iter
      (fun (v : Inject.verdict) ->
        Printf.printf "%-6s %-7s %-26s %-12s %s  %s\n" v.Inject.circuit
          (Robust.policy_name v.Inject.policy)
          v.Inject.fault
          (Inject.flow_name v.Inject.flow)
          (if v.Inject.ok then "PASS" else "FAIL")
          v.Inject.detail)
      verdicts;
    let pass = List.length (List.filter (fun v -> v.Inject.ok) verdicts) in
    Printf.printf "%d/%d cases pass\n" pass (List.length verdicts);
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Inject.jsonl_of_verdicts verdicts);
        close_out oc;
        Printf.printf "verdicts written to %s\n" path);
    if not (Inject.all_pass verdicts) then exit 3
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"Run the deterministic fault-injection corpus against one \
             circuit: every fault class crossed with the extraction and \
             hierarchical flows, under strict and repair policies")
    Term.(
      const run $ setup_logs $ setup_domains $ circuit_arg $ policy_arg
      $ out_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* frontend: external designs (structural Verilog + .lib + SDC)        *)

module FDesign = Ssta_frontend.Design
module FVerilog = Ssta_frontend.Verilog
module FLiberty = Ssta_frontend.Liberty
module FSdc = Ssta_frontend.Sdc

let verilog_arg =
  let doc = "Structural Verilog netlist file." in
  Arg.(
    required
    & opt (some file) None
    & info [ "verilog" ] ~docv:"FILE" ~doc)

let liberty_arg =
  let doc = "Liberty-like cell library file." in
  Arg.(
    required
    & opt (some file) None
    & info [ "l"; "liberty" ] ~docv:"FILE" ~doc)

let sdc_opt_arg =
  let doc = "SDC constraints file (optional)." in
  Arg.(value & opt (some file) None & info [ "s"; "sdc" ] ~docv:"FILE" ~doc)

let read_cmd =
  let model_arg =
    let doc =
      "Also extract a statistical timing model of the parsed design and \
       write it to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "model" ] ~docv:"FILE" ~doc)
  in
  let run () () () () v l s model_out =
    let d = FDesign.load_files ~verilog:v ~liberty:l ?sdc:s () in
    let low = FDesign.lower d in
    Format.printf "%a@." N.pp_stats low.FDesign.netlist;
    let sdc = d.FDesign.sdc in
    Printf.printf
      "constraints: %d clock(s), %d input delay(s), %d output delay(s), %d \
       false path(s)\n"
      (List.length sdc.FSdc.clocks)
      (List.length sdc.FSdc.input_delays)
      (List.length sdc.FSdc.output_delays)
      (List.length sdc.FSdc.false_paths);
    match model_out with
    | None -> ()
    | Some path ->
        let b = Build.characterize low.FDesign.netlist in
        let model = H.Extract.extract b in
        H.Model_io.save model ~path;
        Printf.printf "model written to %s\n" path
  in
  Cmd.v
    (Cmd.info "read"
       ~doc:
         "Parse an external design (structural Verilog + Liberty-like \
          library + optional SDC), lower it onto the native netlist \
          representation and print its statistics")
    Term.(
      const run $ setup_logs $ setup_domains $ setup_obs $ setup_robust
      $ verilog_arg $ liberty_arg $ sdc_opt_arg $ model_arg)

let report_checks_cmd =
  let k_arg =
    let doc = "Statistically critical paths reported per endpoint." in
    Arg.(value & opt int 3 & info [ "k"; "paths" ] ~docv:"K" ~doc)
  in
  let period_arg =
    let doc = "Override the clock period (default: the SDC clock)." in
    Arg.(
      value & opt (some float) None & info [ "period" ] ~docv:"PS" ~doc)
  in
  let run () () () () v l s k period =
    let d = FDesign.load_files ~verilog:v ~liberty:l ?sdc:s () in
    let low = FDesign.lower d in
    let b = Build.characterize low.FDesign.netlist in
    let checks = FDesign.report_checks ~k ?period low ~build:b in
    FDesign.pp_checks low Format.std_formatter checks
  in
  Cmd.v
    (Cmd.info "report-checks"
       ~doc:
         "Per-endpoint statistical slack report of an external design: \
          arrival distribution with SDC input delays folded in and false \
          paths excluded, required time from the SDC clock, slack and the \
          top-k critical paths")
    Term.(
      const run $ setup_logs $ setup_domains $ setup_obs $ setup_robust
      $ verilog_arg $ liberty_arg $ sdc_opt_arg $ k_arg $ period_arg)

let emit_cmd =
  let dir_arg =
    let doc = "Output directory for $(i,name).v / .lib / .sdc." in
    Arg.(
      required & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let run () () name dir =
    match build_circuit name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok nl ->
        let b = Build.characterize nl in
        let nominal =
          Ssta_timing.Sta.design_delay b.Build.graph
            ~weights:(Build.nominal_weights b)
        in
        let period = Float.round (1.25 *. nominal) in
        let io_delay = Float.round (0.05 *. nominal) in
        let net i = Printf.sprintf "n%d" i in
        let inputs = List.init (N.n_pis nl) net in
        let outputs = Array.to_list (Array.map net nl.N.outputs) in
        let sdc =
          {
            FSdc.clocks = [ { FSdc.clk_name = "clk"; period } ];
            input_delays =
              [ { FSdc.ports = inputs; delay = io_delay; dclock = Some "clk" } ];
            output_delays =
              [ { FSdc.ports = outputs; delay = io_delay; dclock = Some "clk" } ];
            false_paths =
              [
                {
                  FSdc.from_ports = [ List.hd inputs ];
                  to_ports = [ List.hd outputs ];
                };
              ];
          }
        in
        let d = FDesign.of_netlist ~sdc nl in
        (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
        let write ext text =
          let path = Filename.concat dir (nl.N.name ^ ext) in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc text);
          Printf.printf "wrote %s\n" path
        in
        write ".v" (FVerilog.to_string d.FDesign.modul);
        write ".lib" (FLiberty.to_string d.FDesign.lib);
        write ".sdc" (FSdc.to_string d.FDesign.sdc)
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:
         "Export a bundled circuit as an external design trio (structural \
          Verilog, Liberty-like library, SDC) that `hssta read` lowers \
          back bit-identically")
    Term.(const run $ setup_logs $ setup_domains $ circuit_arg $ dir_arg)

let fuzz_frontend_cmd =
  let module Fuzz = Ssta_robust_inject.Fuzz in
  let circuit_arg =
    let doc = "Bundled circuit the base documents are rendered from." in
    Arg.(value & opt string "c432" & info [ "circuit" ] ~docv:"NAME" ~doc)
  in
  let n_arg =
    let doc =
      "Mutated cases per (format, mutation class, policy) cell; the \
       corpus totals 6x this per format."
    in
    Arg.(value & opt int 175 & info [ "n"; "cases" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Write per-case verdicts as JSONL to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run () () circuit n seed out =
    let ctx = Fuzz.make_ctx circuit in
    let verdicts = Fuzz.run_corpus ctx ~seed ~cases_per_class:n in
    print_string (Fuzz.summary verdicts);
    (match out with
    | None -> ()
    | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (Fuzz.jsonl_of_verdicts verdicts));
        Printf.printf "verdicts written to %s\n" path);
    if not (Fuzz.all_pass verdicts) then exit 3
  in
  Cmd.v
    (Cmd.info "fuzz-frontend"
       ~doc:
         "Run the deterministic mutation-fuzz corpus against the three \
          frontend parsers (byte truncation, token mutation, line shuffle \
          under strict and repair policies); any escaped non-structured \
          exception fails")
    Term.(
      const run $ setup_logs $ setup_domains $ circuit_arg $ n_arg
      $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* serve / client: the persistent analysis daemon and its replay client *)

module Serve = Ssta_serve.Serve

let socket_arg =
  let doc =
    "Unix-domain socket path for the JSONL request/response protocol."
  in
  Arg.(
    value & opt string "hssta.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let preload_arg =
    let doc =
      "Characterize $(docv) into the model cache before accepting \
       connections (repeatable)."
    in
    Arg.(
      value & opt_all string [] & info [ "preload" ] ~docv:"CIRCUIT" ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Durable state directory: characterized models spill to \
       $(docv)/models (checksummed, atomically renamed into place), \
       committed session changes append to the write-ahead log \
       $(docv)/wal.jsonl before the response is sent, and checkpoints \
       land in $(docv)/checkpoint.  A daemon restarted on the same \
       directory replays checkpoint + WAL and answers the remaining \
       request stream byte-identically to one that never crashed."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ]
          ~env:(Cmd.Env.info "HSSTA_CACHE_DIR")
          ~docv:"DIR" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Backpressure bound: requests beyond the first $(docv) of a \
       pipelined group are shed unprocessed with an \
       ok:false/overloaded:true response carrying a retry_after_ms hint."
    in
    Arg.(value & opt int 256 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Checkpoint the session state and truncate the WAL every $(docv) \
       records (bounds both WAL growth and recovery replay time)."
    in
    Arg.(value & opt int 64 & info [ "wal-checkpoint" ] ~docv:"N" ~doc)
  in
  let run () () () () () socket preload cache_dir max_queue checkpoint_every
      =
    let t = Serve.create ?cache_dir ~max_queue ~checkpoint_every () in
    try Serve.run_daemon ~socket ~preload t
    with Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "hssta serve: %s: %s(%s)\n%!" (Unix.error_message e) fn
        arg;
      exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis daemon: load characterized models \
          once, answer design-level quantile/path/what-if queries over a \
          unix-domain socket (JSONL, one request object per line) until a \
          shutdown request, SIGTERM, or SIGINT (all drain in-flight work, \
          flush a checkpoint when --cache-dir is set, and exit 0)")
    Term.(
      const run $ setup_logs $ setup_domains $ setup_obs $ setup_crit_tile
      $ setup_robust $ socket_arg $ preload_arg $ cache_dir_arg
      $ max_queue_arg $ checkpoint_arg)

let client_cmd =
  let replay_arg =
    let doc = "Request-corpus file to replay, one JSON object per line." in
    Arg.(
      required
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the response stream to $(docv) (default stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let latency_arg =
    let doc =
      "Write one per-request latency in microseconds per line to $(docv) \
       (sequential mode only)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "latency-out" ] ~docv:"FILE" ~doc)
  in
  let pipeline_arg =
    let doc =
      "Write the whole corpus before reading responses, exercising the \
       daemon's request batching (per-request latencies are not recorded)."
    in
    Arg.(value & flag & info [ "pipeline" ] ~doc)
  in
  let retry_arg =
    let doc =
      "Resend a request shed with an overloaded response up to $(docv) \
       times, sleeping the daemon's retry_after_ms hint scaled by seeded \
       exponential backoff with jitter between attempts (sequential mode \
       only)."
    in
    Arg.(value & opt int 0 & info [ "retry" ] ~docv:"N" ~doc)
  in
  let retry_seed_arg =
    let doc = "Seed for the retry backoff jitter." in
    Arg.(value & opt int 42 & info [ "retry-seed" ] ~docv:"SEED" ~doc)
  in
  let run () () socket replay_file out latency_out pipeline retry retry_seed
      =
    let requests =
      let ic = open_in replay_file in
      let rec go acc =
        match input_line ic with
        | line ->
            go (if String.trim line = "" then acc else line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []
    in
    let responses, lat, total =
      Serve.replay ~pipeline ~retry ~retry_seed ~socket ~requests ()
    in
    (match out with
    | None -> List.iter print_endline responses
    | Some path ->
        let oc = open_out path in
        List.iter
          (fun r ->
            output_string oc r;
            output_char oc '\n')
          responses;
        close_out oc);
    (match latency_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Array.iter
          (fun s -> Printf.fprintf oc "%.1f\n" (s *. 1e6))
          lat;
        close_out oc);
    Printf.eprintf "hssta client: %d requests, %d responses, %.3f s total\n%!"
      (List.length requests) (List.length responses) total
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Replay a JSONL request corpus against a running hssta serve \
          daemon, recording the response stream and per-request latencies")
    Term.(
      const run $ setup_logs $ setup_obs $ socket_arg $ replay_arg $ out_arg
      $ latency_arg $ pipeline_arg $ retry_arg $ retry_seed_arg)

let chaos_cmd =
  let corpus_arg =
    let doc =
      "Request corpus (JSONL, must end with a shutdown request) replayed \
       against every crashed-and-restarted daemon and the uninterrupted \
       reference."
    in
    Arg.(
      required & opt (some file) None & info [ "corpus" ] ~docv:"FILE" ~doc)
  in
  let dir_arg =
    let doc = "Scratch directory for per-case daemon state." in
    Arg.(
      value & opt string "_chaos" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let out_arg =
    let doc =
      "Write the deterministic verdict JSONL to $(docv) (default stdout)."
    in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_arg =
    let doc = "WAL checkpoint cadence passed to every spawned daemon." in
    Arg.(value & opt int 3 & info [ "wal-checkpoint" ] ~docv:"N" ~doc)
  in
  let run () () corpus dir out checkpoint_every =
    let module Chaos = Ssta_robust_inject.Chaos in
    let verdicts =
      Chaos.run ~exe:Sys.executable_name ~corpus_path:corpus ~dir
        ~checkpoint_every ()
    in
    let doc = Chaos.jsonl_of_verdicts verdicts in
    (match out with
    | None -> print_string doc
    | Some path ->
        let oc = open_out path in
        output_string oc doc;
        close_out oc);
    List.iter
      (fun (v : Chaos.verdict) ->
        Printf.eprintf
          "hssta chaos: %-14s answered=%-2d recovered=%b identical=%b \
           recovery=%.1f ms\n\
           %!"
          v.Chaos.label v.Chaos.answered v.Chaos.recovered v.Chaos.identical
          v.Chaos.recovery_ms)
      verdicts;
    let bad =
      List.filter
        (fun (v : Chaos.verdict) ->
          not (v.Chaos.recovered && v.Chaos.identical))
        verdicts
    in
    if bad <> [] then (
      Printf.eprintf "hssta chaos: %d/%d cases FAILED\n%!" (List.length bad)
        (List.length verdicts);
      exit 1)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Crash/recovery harness: for each seeded crash class \
          (HSSTA_CRASH_AT after the Nth response, mid-WAL-append, after \
          the WAL fsync, mid-model-spill) boot a durable daemon, replay \
          the corpus until the process dies, restart it on the same \
          state directory, replay the unanswered tail, and verify the \
          concatenated response stream is byte-identical to an \
          uninterrupted run; emits one deterministic verdict JSON object \
          per case and exits non-zero if any case fails to recover")
    Term.(
      const run $ setup_logs $ setup_robust $ corpus_arg $ dir_arg $ out_arg
      $ checkpoint_arg)

let () =
  let info =
    Cmd.info "hssta" ~version:"1.0.0"
      ~doc:"Hierarchical statistical static timing analysis (DATE'09 reproduction)"
  in
  let group =
    Cmd.group info
      [
        list_cmd; sta_cmd; extract_cmd; criticality_cmd; hier_cmd;
        batch_cmd; paths_cmd; corners_cmd; model_cmd; model_info_cmd;
        inject_cmd; read_cmd; report_checks_cmd; emit_cmd;
        fuzz_frontend_cmd; serve_cmd; client_cmd; chaos_cmd;
      ]
  in
  (* Cmdliner's usage errors (unknown flags, missing arguments) exit 124
     on every subcommand; capture its multi-line report and condense it
     to one uniform stderr line so scripts see the same shape
     everywhere.  With --robust strict, a detected degeneracy surfaces
     here as a structured error: report the fault site and exit 3
     (distinct from usage errors and from cmdliner's internal-error
     125). *)
  let errbuf = Buffer.create 256 in
  let err = Format.formatter_of_buffer errbuf in
  let code =
    try Cmd.eval ~catch:false ~err group with
    | Ssta_robust.Robust.Error c ->
        Printf.eprintf "hssta: robustness error (strict policy):\n  %s\n%!"
          (Ssta_robust.Robust.to_string c);
        3
    | e ->
        Printf.eprintf "hssta: internal error: %s\n%!" (Printexc.to_string e);
        125
  in
  Format.pp_print_flush err ();
  let captured = Buffer.contents errbuf in
  if code = Cmd.Exit.cli_error then begin
    let lines =
      String.split_on_char '\n' captured
      |> List.map String.trim
      |> List.filter (fun l -> l <> "")
    in
    let head = match lines with [] -> "hssta: invalid command line" | l :: _ -> l in
    let usage =
      List.find_opt
        (fun l ->
          String.length l >= 6 && String.lowercase_ascii (String.sub l 0 6) = "usage:")
        lines
    in
    Printf.eprintf "%s%s\n%!" head
      (match usage with Some u -> " [" ^ u ^ "]" | None -> "")
  end
  else if captured <> "" then Printf.eprintf "%s%!" captured;
  exit code
