// c17 — the classic ISCAS85 toy netlist, hand-translated to the
// structural subset the hssta frontend reads.  Mixes named and
// positional connections on purpose (both are exercised by the tests).
module c17 (n1, n2, n3, n6, n7, n22, n23);
  input n1, n2, n3;
  input n6, n7;
  output n22, n23;
  wire n10, n11, n16, n19;

  nand2 g10 (.y(n10), .a(n1), .b(n3));
  nand2 g11 (.a(n3), .b(n6), .y(n11)); /* pin order is free-form */
  nand2 g16 (n16, n2, n11);
  nand2 g19 (n19, n11, n7);
  nand2 g22 (.y(n22), .a(n10), .b(n16));
  nand2 g23 (.y(n23),
             .a(n16),
             .b(n19));
endmodule
