# timing constraints (hssta frontend)
create_clock -name clk -period 827
set_input_delay -clock clk 33 [get_ports {n0 n1 n2 n3 n4 n5 n6 n7 n8 n9 n10 n11 n12 n13 n14 n15 n16 n17 n18 n19 n20 n21 n22 n23 n24 n25 n26 n27 n28 n29 n30 n31 n32 n33 n34 n35}]
set_output_delay -clock clk 33 [get_ports {n139 n147 n155 n166 n177 n188 n190}]
set_false_path -from [get_ports {n0}] -to [get_ports {n139}]
