# Constraints for the c17 example: one clock, uniform IO delays and a
# false path from n1 to n22 (excluded exactly by the statistical
# report, not post-filtered).
create_clock -name clk -period 250
set_input_delay -clock clk 10 [get_ports {n1 n2 n3 n6 n7}]
set_output_delay -clock clk 10 [get_ports {n22 n23}]
set_false_path -from n1 -to n22
