lib/linalg/pca.ml: Array Float Mat Ssta_gauss Sym_eig
