lib/linalg/cholesky.mli: Mat
