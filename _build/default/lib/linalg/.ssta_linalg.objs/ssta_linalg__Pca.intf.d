lib/linalg/pca.mli: Mat Ssta_gauss
