lib/linalg/vec.mli:
