lib/linalg/vec.ml: Array Printf
