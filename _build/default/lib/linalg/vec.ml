let check_len a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: length mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b))

let dot a b =
  check_len a b "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc

let axpy ~alpha x y =
  check_len x y "axpy";
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set y i
      (Array.unsafe_get y i +. (alpha *. Array.unsafe_get x i))
  done

let scale alpha x = Array.map (fun v -> alpha *. v) x

let add a b =
  check_len a b "add";
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_len a b "sub";
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let sum_sq a =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let v = Array.unsafe_get a i in
    acc := !acc +. (v *. v)
  done;
  !acc

let norm2 a = sqrt (sum_sq a)

let lerp t a b =
  check_len a b "lerp";
  let s = 1.0 -. t in
  Array.init (Array.length a) (fun i -> (t *. a.(i)) +. (s *. b.(i)))
