(** Dense row-major matrices. *)

type t = private { rows : int; cols : int; data : float array }

val make : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val dims : t -> int * int
val copy : t -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val row : t -> int -> float array
(** Fresh copy of a row. *)

val col : t -> int -> float array
(** Fresh copy of a column. *)

val transpose : t -> t
val mul : t -> t -> t
(** Matrix product; inner dimensions must agree. *)

val mul_vec : t -> float array -> float array
(** [mul_vec a x] is [a * x]. *)

val tmul_vec : t -> float array -> float array
(** [tmul_vec a x] is [a^T * x] (without materializing the transpose). *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val frobenius : t -> float
val max_abs_diff : t -> t -> float
(** Largest element-wise absolute difference (for tests). *)

val is_symmetric : ?tol:float -> t -> bool
val pp : Format.formatter -> t -> unit
