(** Cholesky factorization of symmetric positive-(semi)definite matrices,
    used for correlated Monte Carlo sampling. *)

val factor : ?jitter:float -> Mat.t -> Mat.t
(** [factor c] returns the lower-triangular [l] with [l * l^T = c].
    If a pivot is non-positive, [jitter] (default [1e-10] times the largest
    diagonal entry) is added to the diagonal and the factorization restarts;
    raises [Failure] if the matrix is too indefinite to repair within a few
    attempts. *)

val solve_lower : Mat.t -> float array -> float array
(** [solve_lower l b] solves [l x = b] by forward substitution. *)
