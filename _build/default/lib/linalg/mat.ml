type t = { rows : int; cols : int; data : float array }

let make rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.make: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = make rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: index out of bounds";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: index out of bounds";
  m.data.((i * m.cols) + j) <- v

let dims m = (m.rows, m.cols)
let copy m = { m with data = Array.copy m.data }

let of_arrays rows =
  let r = Array.length rows in
  if r = 0 then make 0 0
  else begin
    let c = Array.length rows.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then
          invalid_arg "Mat.of_arrays: ragged rows")
      rows;
    init r c (fun i j -> rows.(i).(j))
  end

let to_arrays m =
  Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row: out of bounds";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col: out of bounds";
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let transpose m = init m.cols m.rows (fun i j -> m.data.((j * m.cols) + i))

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let out = make a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          out.data.((i * b.cols) + j) <-
            out.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  out

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dim mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      let base = i * a.cols in
      for j = 0 to a.cols - 1 do
        acc :=
          !acc +. (Array.unsafe_get a.data (base + j) *. Array.unsafe_get x j)
      done;
      !acc)

let tmul_vec a x =
  if a.rows <> Array.length x then invalid_arg "Mat.tmul_vec: dim mismatch";
  let out = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0.0 then begin
      let base = i * a.cols in
      for j = 0 to a.cols - 1 do
        Array.unsafe_set out j
          (Array.unsafe_get out j
          +. (xi *. Array.unsafe_get a.data (base + j)))
      done
    end
  done;
  out

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale alpha m = { m with data = Array.map (fun v -> alpha *. v) m.data }

let frobenius m =
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 m.data)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat.max_abs_diff: dimension mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i v -> worst := Float.max !worst (abs_float (v -. b.data.(i))))
    a.data;
  !worst

let is_symmetric ?(tol = 1e-9) m =
  m.rows = m.cols
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if
        abs_float (m.data.((i * m.cols) + j) -. m.data.((j * m.cols) + i))
        > tol
      then ok := false
    done
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%s%8.4f" (if j > 0 then " " else "") (get m i j)
    done;
    Format.fprintf ppf "]@,"
  done;
  Format.fprintf ppf "@]"
