type t = {
  dim : int;
  values : float array;
  vectors : Mat.t;
  factor : Mat.t;
  pinv_factor : Mat.t;
  retained : int;
}

let of_covariance ?min_eig c =
  let { Sym_eig.values; vectors } = Sym_eig.decompose c in
  let n = Array.length values in
  let largest = if n = 0 then 0.0 else Float.max values.(0) 0.0 in
  let floor_v =
    match min_eig with Some v -> v | None -> 1e-9 *. largest
  in
  let values = Array.map (fun v -> if v < floor_v then 0.0 else v) values in
  let retained = Array.fold_left (fun k v -> if v > 0.0 then k + 1 else k) 0 values in
  let factor =
    Mat.init n n (fun i j -> Mat.get vectors i j *. sqrt values.(j))
  in
  let pinv_factor =
    Mat.init retained n (fun i j -> Mat.get vectors j i /. sqrt values.(i))
  in
  { dim = n; values; vectors; factor; pinv_factor; retained }

let of_parts ~values ~vectors =
  let n = Array.length values in
  let r, c = Mat.dims vectors in
  if r <> n || c <> n then invalid_arg "Pca.of_parts: dimension mismatch";
  Array.iteri
    (fun i v ->
      if v < 0.0 then invalid_arg "Pca.of_parts: negative eigenvalue";
      if i > 0 && v > values.(i - 1) +. 1e-12 then
        invalid_arg "Pca.of_parts: eigenvalues not decreasing")
    values;
  let retained =
    Array.fold_left (fun k v -> if v > 0.0 then k + 1 else k) 0 values
  in
  let factor = Mat.init n n (fun i j -> Mat.get vectors i j *. sqrt values.(j)) in
  let pinv_factor =
    Mat.init retained n (fun i j -> Mat.get vectors j i /. sqrt values.(i))
  in
  { dim = n; values; vectors; factor; pinv_factor; retained }

let coeff_row t i = Mat.row t.factor i

let sample t rng =
  let z = Array.make t.dim 0.0 in
  Ssta_gauss.Rng.gaussian_fill rng z;
  Mat.mul_vec t.factor z

let covariance t = Mat.mul t.factor (Mat.transpose t.factor)
