(** Eigendecomposition of real symmetric matrices by the cyclic Jacobi
    method.  Robust and accurate for the moderate dimensions (tens to a few
    hundred grid variables) that SSTA covariance matrices have. *)

type decomposition = {
  values : float array;  (** eigenvalues, sorted in decreasing order *)
  vectors : Mat.t;  (** orthonormal eigenvectors as {e columns}, same order *)
}

val decompose : ?max_sweeps:int -> Mat.t -> decomposition
(** Raises [Invalid_argument] if the matrix is not square or not symmetric
    (tolerance 1e-8 relative to the largest entry). *)

val reconstruct : decomposition -> Mat.t
(** [v * diag(values) * v^T]; useful for testing. *)
