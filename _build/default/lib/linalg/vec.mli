(** Dense float vectors (thin helpers over [float array]). *)

val dot : float array -> float array -> float
(** Inner product; the arrays must have equal length. *)

val axpy : alpha:float -> float array -> float array -> unit
(** [axpy ~alpha x y] performs [y <- alpha * x + y] in place. *)

val scale : float -> float array -> float array
(** Fresh scaled copy. *)

val add : float array -> float array -> float array
(** Fresh element-wise sum. *)

val sub : float array -> float array -> float array
(** Fresh element-wise difference. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val sum_sq : float array -> float
(** Sum of squares (squared Euclidean norm). *)

val lerp : float -> float array -> float array -> float array
(** [lerp t a b] is the fresh vector [t*a + (1-t)*b]; used by the canonical
    max to blend coefficients with the tightness probability. *)
