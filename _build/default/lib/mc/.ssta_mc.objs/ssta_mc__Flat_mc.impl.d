lib/mc/flat_mc.ml: Array Sampler Ssta_gauss Ssta_timing Unix
