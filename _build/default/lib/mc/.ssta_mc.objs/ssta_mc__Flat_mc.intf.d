lib/mc/flat_mc.mli: Sampler
