lib/mc/sampler.ml: Array Ssta_gauss Ssta_timing Ssta_variation
