lib/mc/sampler.mli: Ssta_gauss Ssta_timing Ssta_variation
