lib/mc/allpairs_mc.mli: Sampler
