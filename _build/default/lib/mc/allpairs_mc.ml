module Rng = Ssta_gauss.Rng
module Sta = Ssta_timing.Sta
module Tgraph = Ssta_timing.Tgraph

type result = {
  n_inputs : int;
  n_outputs : int;
  iterations : int;
  means : float array array;
  stds : float array array;
  reachable : bool array array;
  wall_seconds : float;
}

let run ~iterations ~seed ctx =
  if iterations <= 0 then invalid_arg "Allpairs_mc.run: iterations must be > 0";
  let rng = Rng.create ~seed in
  let g = ctx.Sampler.graph in
  let inputs = g.Tgraph.inputs and outputs = g.Tgraph.outputs in
  let ni = Array.length inputs and no = Array.length outputs in
  let weights = Array.make (Tgraph.n_edges g) 0.0 in
  let arr = Array.make (Tgraph.n_vertices g) neg_infinity in
  let mean = Array.make_matrix ni no 0.0 in
  let m2 = Array.make_matrix ni no 0.0 in
  let reachable = Array.make_matrix ni no false in
  let t0 = Unix.gettimeofday () in
  for it = 0 to iterations - 1 do
    let sample = Sampler.draw ctx.Sampler.basis rng in
    Sampler.fill_weights ctx sample rng weights;
    let n = float_of_int (it + 1) in
    for i = 0 to ni - 1 do
      Sta.forward_from_into g ~weights inputs.(i) arr;
      let mrow = mean.(i) and m2row = m2.(i) and rrow = reachable.(i) in
      for j = 0 to no - 1 do
        let a = arr.(outputs.(j)) in
        if a > neg_infinity then begin
          rrow.(j) <- true;
          let delta = a -. mrow.(j) in
          mrow.(j) <- mrow.(j) +. (delta /. n);
          m2row.(j) <- m2row.(j) +. (delta *. (a -. mrow.(j)))
        end
      done
    done
  done;
  let stds =
    Array.mapi
      (fun i m2row ->
        Array.mapi
          (fun j v ->
            if reachable.(i).(j) && iterations > 1 then
              sqrt (v /. float_of_int (iterations - 1))
            else nan)
          m2row)
      m2
  in
  let means =
    Array.mapi
      (fun i mrow ->
        Array.mapi (fun j v -> if reachable.(i).(j) then v else nan) mrow)
      mean
  in
  {
    n_inputs = ni;
    n_outputs = no;
    iterations;
    means;
    stds;
    reachable;
    wall_seconds = Unix.gettimeofday () -. t0;
  }
