module Rng = Ssta_gauss.Rng
module Sta = Ssta_timing.Sta
module Tgraph = Ssta_timing.Tgraph

type result = { delays : float array; wall_seconds : float }

let run ~iterations ~seed ctx =
  if iterations <= 0 then invalid_arg "Flat_mc.run: iterations must be > 0";
  let rng = Rng.create ~seed in
  let g = ctx.Sampler.graph in
  let weights = Array.make (Tgraph.n_edges g) 0.0 in
  let delays = Array.make iterations 0.0 in
  let t0 = Unix.gettimeofday () in
  for it = 0 to iterations - 1 do
    let sample = Sampler.draw ctx.Sampler.basis rng in
    Sampler.fill_weights ctx sample rng weights;
    delays.(it) <- Sta.design_delay g ~weights
  done;
  { delays; wall_seconds = Unix.gettimeofday () -. t0 }

let arrival_samples ~iterations ~seed ctx ~vertex =
  if iterations <= 0 then
    invalid_arg "Flat_mc.arrival_samples: iterations must be > 0";
  let rng = Rng.create ~seed in
  let g = ctx.Sampler.graph in
  let weights = Array.make (Tgraph.n_edges g) 0.0 in
  let out = Array.make iterations 0.0 in
  for it = 0 to iterations - 1 do
    let sample = Sampler.draw ctx.Sampler.basis rng in
    Sampler.fill_weights ctx sample rng weights;
    let arr = Sta.forward g ~weights in
    out.(it) <- arr.(vertex)
  done;
  out
