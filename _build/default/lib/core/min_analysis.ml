module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

let forward_min g ~forms ~sources =
  if Array.length forms <> Tgraph.n_edges g then
    invalid_arg "Min_analysis: form count does not match edges";
  let n = Tgraph.n_vertices g in
  let arr = Array.make n None in
  let d0 =
    if Array.length forms = 0 then { Form.n_globals = 0; n_pcs = 0 }
    else Form.dims forms.(0)
  in
  Array.iter (fun v -> arr.(v) <- Some (Form.zero d0)) sources;
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  for i = 0 to Array.length src - 1 do
    match arr.(src.(i)) with
    | None -> ()
    | Some a ->
        let t = Form.add a forms.(i) in
        let d = dst.(i) in
        arr.(d) <-
          (match arr.(d) with
          | None -> Some t
          | Some prev -> Some (Form.min2 prev t))
  done;
  arr

let forward_min_all g ~forms = forward_min g ~forms ~sources:g.Tgraph.inputs

let min_over arr vertices =
  Array.fold_left
    (fun acc v ->
      match (acc, arr.(v)) with
      | None, x -> x
      | x, None -> x
      | Some a, Some b -> Some (Form.min2 a b))
    None vertices

let shortest_io_delays g ~forms =
  Array.map
    (fun input ->
      let arr = forward_min g ~forms ~sources:[| input |] in
      Array.map (fun out -> arr.(out)) g.Tgraph.outputs)
    g.Tgraph.inputs

let hold_slack ~early ~hold_time = Form.add_const early (-.hold_time)
