(** Heterogeneous design-level grid partition and basis (paper Section V,
    Fig. 4): the die areas covered by module instances keep the instances'
    own characterization grids (translated to their origins) so that the
    design-level covariance restricted to one instance's tiles equals the
    module-level covariance C - the property the independent-variable
    replacement (paper eqs. (16)-(19)) relies on.  The remaining die area is
    covered by default-pitch tiles (tiles whose center falls inside a module
    are omitted; a small geometric approximation of the paper's clipped
    grids, documented in DESIGN.md). *)

type t = private {
  tiles : Ssta_variation.Tile.t array;
  basis : Ssta_variation.Basis.t;  (** design-level basis over [tiles] *)
  instance_tile_offset : int array;
      (** index of instance i's first tile within [tiles] *)
  instance_n_tiles : int array;
}

val build : Floorplan.t -> t
(** Raises [Failure] if the instances disagree on grid pitch, correlation
    model or parameter count. *)

val design_tile_of_instance : t -> inst:int -> int -> int
(** Design-level index of a module-level tile. *)
