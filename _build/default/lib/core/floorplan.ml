module Tile = Ssta_variation.Tile

type instance = {
  label : string;
  build : Ssta_timing.Build.t option;
  model : Timing_model.t;
  origin : float * float;
}

type port = { inst : int; port : int }

type t = {
  die : Tile.t;
  instances : instance array;
  connections : (port * port) array;
  ext_inputs : port array;
  ext_outputs : port array;
}

let instance_die inst =
  let dx, dy = inst.origin in
  Tile.translate inst.model.Timing_model.die ~dx ~dy

let inside outer inner =
  inner.Tile.x0 >= outer.Tile.x0 -. 1e-9
  && inner.Tile.y0 >= outer.Tile.y0 -. 1e-9
  && inner.Tile.x1 <= outer.Tile.x1 +. 1e-9
  && inner.Tile.y1 <= outer.Tile.y1 +. 1e-9

let create ~die ~instances ~connections =
  let n = Array.length instances in
  if n = 0 then failwith "Floorplan.create: no instances";
  Array.iteri
    (fun i inst ->
      let idie = instance_die inst in
      if not (inside die idie) then
        failwith
          (Printf.sprintf "Floorplan.create: instance %d (%s) outside die" i
             inst.label);
      for j = 0 to i - 1 do
        if Tile.overlaps idie (instance_die instances.(j)) then
          failwith
            (Printf.sprintf "Floorplan.create: instances %d and %d overlap" j
               i)
      done)
    instances;
  let check_port kind p limit_of =
    if p.inst < 0 || p.inst >= n then
      failwith (Printf.sprintf "Floorplan.create: bad %s instance" kind);
    let limit = limit_of instances.(p.inst).model in
    if p.port < 0 || p.port >= limit then
      failwith (Printf.sprintf "Floorplan.create: bad %s port index" kind)
  in
  let driven = Hashtbl.create 97 in
  Array.iter
    (fun (src, dst) ->
      check_port "source" src Timing_model.n_outputs;
      check_port "sink" dst Timing_model.n_inputs;
      if Hashtbl.mem driven (dst.inst, dst.port) then
        failwith "Floorplan.create: input port driven twice";
      Hashtbl.replace driven (dst.inst, dst.port) ())
    connections;
  let used_out = Hashtbl.create 97 in
  Array.iter
    (fun (src, _) -> Hashtbl.replace used_out (src.inst, src.port) ())
    connections;
  let ext_inputs = ref [] and ext_outputs = ref [] in
  Array.iteri
    (fun i inst ->
      for p = 0 to Timing_model.n_inputs inst.model - 1 do
        if not (Hashtbl.mem driven (i, p)) then
          ext_inputs := { inst = i; port = p } :: !ext_inputs
      done;
      for p = 0 to Timing_model.n_outputs inst.model - 1 do
        if not (Hashtbl.mem used_out (i, p)) then
          ext_outputs := { inst = i; port = p } :: !ext_outputs
      done)
    instances;
  if !ext_inputs = [] then failwith "Floorplan.create: design has no inputs";
  if !ext_outputs = [] then failwith "Floorplan.create: design has no outputs";
  {
    die;
    instances;
    connections;
    ext_inputs = Array.of_list (List.rev !ext_inputs);
    ext_outputs = Array.of_list (List.rev !ext_outputs);
  }

let mult_grid ~label ?build ~model () =
  let n_in = Timing_model.n_inputs model
  and n_out = Timing_model.n_outputs model in
  if n_in <> n_out then
    failwith "Floorplan.mult_grid: module must have as many outputs as inputs";
  let mdie = model.Timing_model.die in
  let w = Tile.width mdie and h = Tile.height mdie in
  let die = Tile.make ~x0:0.0 ~y0:0.0 ~x1:(2.0 *. w) ~y1:(2.0 *. h) in
  let at ox oy i =
    { label = Printf.sprintf "%s_%d" label i; build; model; origin = (ox, oy) }
  in
  (* Column 1: instances 0 (bottom) and 1 (top); column 2: 2 and 3. *)
  let instances =
    [| at 0.0 0.0 0; at 0.0 h 1; at w 0.0 2; at w h 3 |]
  in
  let connect src_inst dst_inst =
    Array.init n_out (fun p ->
        ({ inst = src_inst; port = p }, { inst = dst_inst; port = p }))
  in
  let connections = Array.append (connect 0 3) (connect 1 2) in
  create ~die ~instances ~connections
