module Form = Ssta_canonical.Form

type budget = {
  total_variance : float;
  global_per_param : float array;
  local_per_param : float array;
  random : float;
}

let budget ~n_params (f : Form.t) =
  if Array.length f.Form.globals <> n_params then
    invalid_arg "Diagnostics.budget: global coefficient count mismatch";
  let n_pcs = Array.length f.Form.pcs in
  if n_params = 0 || n_pcs mod n_params <> 0 then
    invalid_arg "Diagnostics.budget: PC dimension not a parameter multiple";
  let block = n_pcs / n_params in
  let global_per_param =
    Array.map (fun g -> g *. g) f.Form.globals
  in
  let local_per_param =
    Array.init n_params (fun k ->
        let acc = ref 0.0 in
        for i = k * block to ((k + 1) * block) - 1 do
          let v = f.Form.pcs.(i) in
          acc := !acc +. (v *. v)
        done;
        !acc)
  in
  let random = f.Form.rand *. f.Form.rand in
  {
    total_variance = Form.variance f;
    global_per_param;
    local_per_param;
    random;
  }

let sum = Array.fold_left ( +. ) 0.0

let fraction_global b =
  if b.total_variance <= 0.0 then 0.0
  else sum b.global_per_param /. b.total_variance

let fraction_local b =
  if b.total_variance <= 0.0 then 0.0
  else sum b.local_per_param /. b.total_variance

let fraction_random b =
  if b.total_variance <= 0.0 then 0.0 else b.random /. b.total_variance

let pp ppf b =
  let pct v = if b.total_variance <= 0.0 then 0.0 else 100.0 *. v /. b.total_variance in
  Format.fprintf ppf "@[<v>total sigma: %.3f@," (sqrt b.total_variance);
  Array.iteri
    (fun k g ->
      Format.fprintf ppf "param %d: global %5.1f%%  local %5.1f%%@," k (pct g)
        (pct b.local_per_param.(k)))
    b.global_per_param;
  Format.fprintf ppf "random: %5.1f%%@]" (pct b.random)
