(** Independent-variable replacement (paper eq. (19) and Fig. 5 step 3).

    At design level the correlated local variables decompose as
    [p^t_l = B x^t]; restricted to the tiles of one instance this reads
    [p_l = B_n x^t], while the module model was characterized with
    [p_l = A x].  Hence [x = A^{-1} B_n x^t], and every canonical form of
    the instance's model can be rewritten over the design variables by the
    linear coefficient transform [a -> (A^{-1} B_n)^T a].

    In the normalized PCA convention (DESIGN.md) [A = U sqrt(L)], so
    [A^{-1} = L^{-1/2} U^T] restricted to the retained eigenvalues (clamped
    components carry zero coefficients in every model form, so dropping them
    is lossless).

    The [`Global_only] mode is the paper's comparison baseline: each
    instance's local PCs are mapped to its private slots of the design basis
    so different instances share only the global variables. *)

module Form = Ssta_canonical.Form
module Mat = Ssta_linalg.Mat

type mode = Replaced | Global_only

val matrix : Design_grid.t -> Floorplan.t -> inst:int -> Mat.t
(** The replacement matrix [M] with [x = M x^t]; dimensions
    (module tiles) x (design tiles). *)

val transform_form :
  Design_grid.t -> mode:mode -> m:Mat.t option -> inst:int -> Form.t -> Form.t
(** Rewrite one canonical form of instance [inst] over the design basis.
    For [Replaced], [m] must be the instance's {!matrix}. *)

val transform_instance :
  Design_grid.t -> Floorplan.t -> mode:mode -> inst:int ->
  Form.t array -> Form.t array
(** Rewrite all edge forms of an instance's model. *)
