(** Statistically-critical path reporting.

    Deterministic STA reports one critical path; under variation each path
    is critical only with some probability, so a useful report ranks paths
    by their probability of dominating.  The tracer walks backward from an
    endpoint choosing, at every vertex, the fanin arc with the highest
    tightness against the vertex's arrival - the maximum-likelihood critical
    path - and can enumerate the top-k paths per endpoint by exploring the
    runner-up arcs. *)

module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

type path = {
  vertices : int list;  (** input ... output, in order *)
  edges : int list;  (** edge indices along the path *)
  delay : Form.t;  (** canonical sum of the edge delays *)
  criticality : float;
      (** tightness of this path's delay against the endpoint arrival -
          the probability the path sets the endpoint's timing *)
}

val trace :
  Tgraph.t -> forms:Form.t array -> arrival:Form.t option array ->
  endpoint:int -> path option
(** Maximum-likelihood critical path into [endpoint]; [None] if the
    endpoint is unreachable. *)

val top_paths :
  Tgraph.t -> forms:Form.t array -> arrival:Form.t option array ->
  endpoint:int -> k:int -> path list
(** Up to [k] distinct paths into [endpoint], ordered by decreasing
    criticality.  Exploration is greedy (branch on the runner-up arc at
    each vertex of the best path), which is exact for trees and a good
    heuristic on reconvergent logic. *)

val report :
  Tgraph.t -> forms:Form.t array -> k:int -> Format.formatter -> unit
(** Print the top-k paths of the design's worst endpoint. *)
