(** Block-based canonical arrival-time propagation (paper Section II):
    a single PERT-like sweep over the timing graph computing, per vertex,
    the statistical maximum over fanin edges of [arrival(src) + delay]. *)

module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

val forward :
  Tgraph.t -> forms:Form.t array -> sources:int array -> Form.t option array
(** Arrival forms with arrival 0 at every vertex of [sources]; [None] where
    unreachable.  [sources] will usually be the graph's inputs (block-based
    SSTA) or one input (the exclusive arrival times of paper eq. (15)). *)

val forward_all : Tgraph.t -> forms:Form.t array -> Form.t option array
(** [forward] from all primary inputs. *)

val backward_to :
  Tgraph.t -> forms:Form.t array -> int -> Form.t option array
(** Per vertex, the canonical maximum path delay from the vertex to the
    given output - the negated required time with required time 0 at the
    output (paper eq. (15)'s [r_e]). *)

val max_over : Form.t option array -> int array -> Form.t option
(** Statistical max of the forms at the given vertices ([None] if none are
    reachable); e.g. the circuit delay as the max over outputs. *)

val scalar_summaries : Form.t option array -> float array * float array
(** Per-vertex (mean, sigma) with [nan] at unreachable vertices - the
    compact tables the criticality screening works from. *)
