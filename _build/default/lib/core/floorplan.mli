(** Hierarchical designs: pre-characterized modules placed on a top-level
    die and wired port-to-port (paper Section V and the Fig. 7 experiment). *)

module Tile = Ssta_variation.Tile

type instance = {
  label : string;
  build : Ssta_timing.Build.t option;
      (** the module's characterization context, kept when available for
          flattened Monte Carlo reference runs; [None] for gray-box models
          (loaded from a file, or extracted from a design by
          {!Extract.extract_design}) whose netlists are not around *)
  model : Timing_model.t;
  origin : float * float;  (** translation of the module die on the top die *)
}

type port = { inst : int; port : int }
(** An instance input or output, by index into the module's port list. *)

type t = private {
  die : Tile.t;
  instances : instance array;
  connections : (port * port) array;  (** (from output, to input) *)
  ext_inputs : port array;  (** unconnected module inputs = design PIs *)
  ext_outputs : port array;  (** unconnected module outputs = design POs *)
}

val create :
  die:Tile.t ->
  instances:instance array ->
  connections:(port * port) array ->
  t
(** Validates: instance dies fit in the top die and do not overlap each
    other; connection ports exist; every input port has at most one driver.
    Unconnected inputs/outputs become the design's primary inputs/outputs.
    Raises [Failure] with a description otherwise. *)

val instance_die : instance -> Tile.t
(** The module die translated to its origin. *)

val mult_grid :
  label:string ->
  ?build:Ssta_timing.Build.t ->
  model:Timing_model.t ->
  unit ->
  t
(** The paper's Section VI-B experimental circuit: four instances of the
    module (intended: the c6288 16x16 multiplier, whose input and output
    counts are both 32) abutted in two columns with maximal correlation,
    the outputs of the first-column modules cross-connected to the inputs of
    the second-column modules: instance [0] feeds instance [3], instance [1]
    feeds instance [2].  Requires the module's output count to equal its
    input count.  Design PIs are the inputs of instances 0 and 1, design POs
    the outputs of instances 2 and 3. *)
