(** Variance budgeting: decompose a canonical delay's variance into the
    contribution of each variation source.  This is the "delay-yield
    information to designers" the paper motivates SSTA with - it tells a
    designer whether a spread is dominated by die-to-die (global) variation,
    by spatially-correlated within-die variation, or by uncorrelatable
    random effects (which only margin can cover). *)

module Form = Ssta_canonical.Form

type budget = {
  total_variance : float;
  global_per_param : float array;  (** variance via each global variable *)
  local_per_param : float array;
      (** variance via each parameter's correlated-local PC block *)
  random : float;  (** variance of the private random part *)
}

val budget : n_params:int -> Form.t -> budget
(** Raises [Invalid_argument] if the form's PC dimension is not a multiple
    of [n_params]. *)

val fraction_global : budget -> float
val fraction_local : budget -> float
val fraction_random : budget -> float

val pp : Format.formatter -> budget -> unit
(** One line per source with percentages. *)
