module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

let check g forms =
  if Array.length forms <> Tgraph.n_edges g then
    invalid_arg "Propagate: form array length does not match edge count"

let forward g ~forms ~sources =
  check g forms;
  let n = Tgraph.n_vertices g in
  let arr = Array.make n None in
  let d0 =
    if Array.length forms = 0 then { Form.n_globals = 0; n_pcs = 0 }
    else Form.dims forms.(0)
  in
  Array.iter (fun v -> arr.(v) <- Some (Form.zero d0)) sources;
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  for i = 0 to Array.length src - 1 do
    match arr.(src.(i)) with
    | None -> ()
    | Some a ->
        let t = Form.add a forms.(i) in
        let d = dst.(i) in
        arr.(d) <-
          (match arr.(d) with
          | None -> Some t
          | Some prev -> Some (Form.max2 prev t))
  done;
  arr

let forward_all g ~forms = forward g ~forms ~sources:g.Tgraph.inputs

let backward_to g ~forms out =
  check g forms;
  let n = Tgraph.n_vertices g in
  let req = Array.make n None in
  let d0 =
    if Array.length forms = 0 then { Form.n_globals = 0; n_pcs = 0 }
    else Form.dims forms.(0)
  in
  req.(out) <- Some (Form.zero d0);
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  for i = Array.length src - 1 downto 0 do
    match req.(dst.(i)) with
    | None -> ()
    | Some r ->
        let t = Form.add r forms.(i) in
        let s = src.(i) in
        req.(s) <-
          (match req.(s) with
          | None -> Some t
          | Some prev -> Some (Form.max2 prev t))
  done;
  req

let max_over arr vertices =
  Array.fold_left
    (fun acc v ->
      match (acc, arr.(v)) with
      | None, x -> x
      | x, None -> x
      | Some a, Some b -> Some (Form.max2 a b))
    None vertices

let scalar_summaries arr =
  let n = Array.length arr in
  let mu = Array.make n nan and sigma = Array.make n nan in
  Array.iteri
    (fun v form ->
      match form with
      | None -> ()
      | Some f ->
          mu.(v) <- f.Form.mean;
          sigma.(v) <- Form.std f)
    arr;
  (mu, sigma)
