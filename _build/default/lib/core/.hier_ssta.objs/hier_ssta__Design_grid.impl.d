lib/core/design_grid.ml: Array Floorplan List Ssta_variation Timing_model
