lib/core/path_report.ml: Array Format Hashtbl List Propagate Ssta_canonical Ssta_timing String
