lib/core/floorplan.mli: Ssta_timing Ssta_variation Timing_model
