lib/core/timing_model.ml: Array Format Propagate Ssta_canonical Ssta_timing Ssta_variation
