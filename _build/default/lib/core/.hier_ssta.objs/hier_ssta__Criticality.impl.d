lib/core/criticality.ml: Array Float Propagate Ssta_canonical Ssta_gauss Ssta_timing
