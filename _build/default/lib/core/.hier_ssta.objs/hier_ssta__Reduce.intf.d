lib/core/reduce.mli: Ssta_canonical Ssta_timing
