lib/core/design_grid.mli: Floorplan Ssta_variation
