lib/core/path_report.mli: Format Ssta_canonical Ssta_timing
