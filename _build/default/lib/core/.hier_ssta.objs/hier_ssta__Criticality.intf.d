lib/core/criticality.mli: Ssta_canonical Ssta_timing
