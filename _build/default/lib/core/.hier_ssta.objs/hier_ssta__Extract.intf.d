lib/core/extract.mli: Criticality Design_grid Floorplan Hier_analysis Ssta_timing Timing_model
