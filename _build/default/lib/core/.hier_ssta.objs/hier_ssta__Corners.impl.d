lib/core/corners.ml: Array Format Propagate Ssta_canonical Ssta_timing Ssta_variation
