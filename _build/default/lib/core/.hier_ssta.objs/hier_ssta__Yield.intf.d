lib/core/yield.mli: Ssta_canonical
