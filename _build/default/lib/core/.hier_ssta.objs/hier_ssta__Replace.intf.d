lib/core/replace.mli: Design_grid Floorplan Ssta_canonical Ssta_linalg
