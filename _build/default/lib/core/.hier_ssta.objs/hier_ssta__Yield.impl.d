lib/core/yield.ml: Array Ssta_canonical
