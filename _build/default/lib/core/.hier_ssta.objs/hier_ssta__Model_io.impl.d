lib/core/model_io.ml: Array Buffer Fun List Printf Ssta_canonical Ssta_linalg Ssta_timing Ssta_variation String Timing_model
