lib/core/model_io.mli: Timing_model
