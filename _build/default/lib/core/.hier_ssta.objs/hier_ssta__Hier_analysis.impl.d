lib/core/hier_analysis.ml: Array Design_grid Float Floorplan Printf Propagate Replace Ssta_canonical Ssta_mc Ssta_timing Ssta_variation Timing_model Unix
