lib/core/hier_analysis.mli: Design_grid Floorplan Replace Ssta_canonical Ssta_mc Ssta_timing
