lib/core/floorplan.ml: Array Hashtbl List Printf Ssta_timing Ssta_variation Timing_model
