lib/core/min_analysis.mli: Ssta_canonical Ssta_timing
