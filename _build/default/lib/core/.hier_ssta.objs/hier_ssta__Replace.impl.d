lib/core/replace.ml: Array Design_grid Floorplan Ssta_canonical Ssta_linalg Ssta_variation Timing_model
