lib/core/extract.ml: Array Criticality Design_grid Floorplan Hier_analysis Reduce Replace Ssta_canonical Ssta_circuit Ssta_timing Ssta_variation Timing_model Unix
