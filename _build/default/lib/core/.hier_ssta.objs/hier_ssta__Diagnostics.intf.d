lib/core/diagnostics.mli: Format Ssta_canonical
