lib/core/propagate.mli: Ssta_canonical Ssta_timing
