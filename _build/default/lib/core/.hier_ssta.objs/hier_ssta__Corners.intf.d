lib/core/corners.mli: Format Ssta_timing
