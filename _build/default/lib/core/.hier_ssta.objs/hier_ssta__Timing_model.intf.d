lib/core/timing_model.mli: Format Ssta_canonical Ssta_timing Ssta_variation
