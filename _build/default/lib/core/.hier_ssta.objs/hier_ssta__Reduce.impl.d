lib/core/reduce.ml: Array Hashtbl List Ssta_canonical Ssta_timing
