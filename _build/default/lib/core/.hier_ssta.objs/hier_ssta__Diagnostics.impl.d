lib/core/diagnostics.ml: Array Format Ssta_canonical
