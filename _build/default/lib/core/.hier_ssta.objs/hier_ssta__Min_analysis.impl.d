lib/core/min_analysis.ml: Array Ssta_canonical Ssta_timing
