lib/core/propagate.ml: Array Ssta_canonical Ssta_timing
