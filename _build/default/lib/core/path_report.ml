module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

type path = {
  vertices : int list;
  edges : int list;
  delay : Form.t;
  criticality : float;
}

let fanin_edges g v =
  let lo = g.Tgraph.fanin_lo.(v) and hi = g.Tgraph.fanin_hi.(v) in
  let rec collect i acc = if i >= hi then List.rev acc else collect (i + 1) (i :: acc) in
  collect lo []

(* Maximum-likelihood prefix: walk backward following, at each vertex, the
   fanin arc whose [arrival(src) + delay] is tightest against the vertex's
   own arrival. *)
let ml_prefix g ~forms ~arrival v0 =
  let rec walk v vertices edges =
    match fanin_edges g v with
    | [] -> Some (v :: vertices, edges)
    | fanin ->
        let best = ref None in
        List.iter
          (fun e ->
            match arrival.(g.Tgraph.src.(e)) with
            | None -> ()
            | Some a_src -> (
                match arrival.(v) with
                | None -> ()
                | Some a_v ->
                    let tp = Form.tightness (Form.add a_src forms.(e)) a_v in
                    (match !best with
                    | Some (_, tp') when tp' >= tp -> ()
                    | _ -> best := Some (e, tp))))
          fanin;
        (match !best with
        | None -> None (* no reachable fanin: v itself must be a source *)
        | Some (e, _) -> walk g.Tgraph.src.(e) (v :: vertices) (e :: edges))
  in
  match arrival.(v0) with None -> None | Some _ -> walk v0 [] []

let path_of g ~forms ~arrival ~endpoint vertices edges =
  ignore g;
  let delay =
    match edges with
    | [] ->
        (match forms with
        | [||] -> Form.constant { Form.n_globals = 0; n_pcs = 0 } 0.0
        | _ -> Form.constant (Form.dims forms.(0)) 0.0)
    | e :: rest ->
        List.fold_left (fun acc e' -> Form.add acc forms.(e')) forms.(e) rest
  in
  let criticality =
    match arrival.(endpoint) with
    | None -> 0.0
    | Some a -> Form.tightness delay a
  in
  { vertices; edges; delay; criticality }

let trace g ~forms ~arrival ~endpoint =
  match ml_prefix g ~forms ~arrival endpoint with
  | None -> None
  | Some (vertices, edges) ->
      Some (path_of g ~forms ~arrival ~endpoint vertices edges)

let top_paths g ~forms ~arrival ~endpoint ~k =
  match trace g ~forms ~arrival ~endpoint with
  | None -> []
  | Some best ->
      let seen = Hashtbl.create 17 in
      let key p = String.concat "," (List.map string_of_int p.edges) in
      Hashtbl.replace seen (key best) ();
      let candidates = ref [ best ] in
      (* Branch: at each vertex of the best path, divert onto each alternate
         fanin arc, complete the upstream side with ML tracing, and keep the
         best path's suffix downstream.  varr.(i-1) -e(i-1)-> varr.(i). *)
      let varr = Array.of_list best.vertices in
      let earr = Array.of_list best.edges in
      let n = Array.length earr in
      for i = 1 to n do
        let v = varr.(i) in
        let chosen = earr.(i - 1) in
        let downstream_edges = Array.to_list (Array.sub earr i (n - i)) in
        let downstream_vertices =
          Array.to_list (Array.sub varr (i + 1) (n - i))
        in
        List.iter
          (fun e ->
            if e <> chosen && arrival.(g.Tgraph.src.(e)) <> None then
              match ml_prefix g ~forms ~arrival (g.Tgraph.src.(e)) with
              | None -> ()
              | Some (pre_vertices, pre_edges) ->
                  let vs = pre_vertices @ (v :: downstream_vertices) in
                  let es = pre_edges @ (e :: downstream_edges) in
                  let p = path_of g ~forms ~arrival ~endpoint vs es in
                  let kk = key p in
                  if not (Hashtbl.mem seen kk) then begin
                    Hashtbl.replace seen kk ();
                    candidates := p :: !candidates
                  end)
          (fanin_edges g v)
      done;
      let sorted =
        List.sort (fun a b -> compare b.criticality a.criticality) !candidates
      in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
      in
      take k sorted

let report g ~forms ~k ppf =
  let arrival = Propagate.forward_all g ~forms in
  let worst =
    Array.fold_left
      (fun acc v ->
        match (acc, arrival.(v)) with
        | None, Some f -> Some (v, f)
        | Some (_, fb), Some f when f.Form.mean > fb.Form.mean -> Some (v, f)
        | acc, _ -> acc)
      None g.Tgraph.outputs
  in
  match worst with
  | None -> Format.fprintf ppf "no reachable output@."
  | Some (endpoint, f) ->
      Format.fprintf ppf "worst endpoint %d: arrival %a@." endpoint Form.pp f;
      List.iteri
        (fun i p ->
          Format.fprintf ppf "#%d crit=%.3f mean=%.1f sigma=%.1f [%s]@." (i + 1)
            p.criticality p.delay.Form.mean (Form.std p.delay)
            (String.concat "->" (List.map string_of_int p.vertices)))
        (top_paths g ~forms ~arrival ~endpoint ~k)
