module Form = Ssta_canonical.Form

let of_form f ~clock = Form.cdf f clock

let clock_for_yield f ~yield =
  if not (yield > 0.0 && yield < 1.0) then
    invalid_arg "Yield.clock_for_yield: yield must lie in (0, 1)";
  Form.quantile f yield

let empirical samples ~clock =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Yield.empirical: no samples";
  let hits = Array.fold_left (fun k d -> if d <= clock then k + 1 else k) 0 samples in
  float_of_int hits /. float_of_int n

let cdf_series ?(points = 101) ~lo ~hi f =
  if points < 2 then invalid_arg "Yield.cdf_series: need at least two points";
  Array.init points (fun i ->
      let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1)) in
      (x, f x))

let normalize series ~lo ~hi =
  let span = hi -. lo in
  if span <= 0.0 then invalid_arg "Yield.normalize: empty range";
  Array.map (fun (x, y) -> ((x -. lo) /. span, y)) series
