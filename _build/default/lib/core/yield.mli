(** Timing yield utilities: turning a canonical design-delay form or a Monte
    Carlo sample into the delay-yield information SSTA exists to provide. *)

module Form = Ssta_canonical.Form

val of_form : Form.t -> clock:float -> float
(** Probability that the design meets the clock period. *)

val clock_for_yield : Form.t -> yield:float -> float
(** Smallest clock period achieving the target yield (Gaussian quantile). *)

val empirical : float array -> clock:float -> float
(** Fraction of Monte Carlo samples meeting the clock. *)

val cdf_series :
  ?points:int -> lo:float -> hi:float -> (float -> float) -> (float * float) array
(** Sampled CDF curve [(x, F x)] on a uniform grid - the series plotted in
    the paper's Fig. 7. *)

val normalize : (float * float) array -> lo:float -> hi:float ->
  (float * float) array
(** Rescale the x-axis to [0, 1] over [lo, hi] (the paper plots normalized
    delay). *)
