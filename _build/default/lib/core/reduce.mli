(** Gray-box timing-graph reduction (paper Section IV-A and Fig. 3):
    starting from the original timing graph with the non-critical edges
    removed, apply the two input-output-delay-preserving merge operations to
    a fixpoint.

    - {e serial merge} (paper Fig. 1): an internal vertex with a single
      fanin edge [(u, v)] is eliminated by rerouting every fanout edge
      [(v, w)] to [(u, w)] with weight [d_uv + d_vw]; symmetrically for a
      single fanout edge.
    - {e parallel merge} (paper Fig. 2): edges sharing source and sink are
      replaced by one edge whose weight is their statistical maximum.
    - {e pruning}: internal vertices left without fanin or without fanout
      (e.g. after criticality-based edge removal) lie on no input-output
      path and are dropped with their edges.

    Port vertices (module inputs and outputs) are never merged away. *)

module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

type t
(** A mutable reduction workspace. *)

val of_graph :
  Tgraph.t -> forms:Form.t array -> keep:bool array -> t
(** Load the surviving edges of a timing graph.  Input/output vertices of
    the graph become protected ports. *)

val n_live_edges : t -> int
val n_live_vertices : t -> int
(** Counts ports even if isolated (a timing model always exposes every
    port of the module). *)

val prune : t -> int
(** One dead-vertex sweep; returns the number of removed vertices. *)

val serial_pass : t -> int
(** One serial-merge sweep; returns the number of vertices eliminated. *)

val parallel_pass : t -> int
(** One parallel-merge sweep; returns the number of edges eliminated. *)

val reduce : t -> unit
(** Prune, then alternate parallel and serial passes to a fixpoint. *)

val freeze :
  t -> (Tgraph.t * Form.t array * int array * int array)
(** Compact the workspace into an immutable timing graph:
    [(graph, edge_forms, input_vertices, output_vertices)], where the i-th
    entries of the vertex arrays correspond to the original graph's i-th
    input/output.  The graph's vertex numbering is fresh. *)
