(** Statistical shortest-path (early-arrival) analysis - the hold-time side
    of timing sign-off.  The paper's framework covers it for free: the
    statistical minimum is [-max(-A, -B)] in the same canonical form, and
    the propagation is the dual single sweep.

    Early arrivals matter in hierarchical flows for the same reason late
    arrivals do: a gray-box model that only preserved maxima could not be
    reused for hold checks, so {!shortest_io_delays} gives model builders
    the dual delay matrix. *)

module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

val forward_min :
  Tgraph.t -> forms:Form.t array -> sources:int array -> Form.t option array
(** Earliest statistical arrival per vertex ([None] where unreachable). *)

val forward_min_all : Tgraph.t -> forms:Form.t array -> Form.t option array

val min_over : Form.t option array -> int array -> Form.t option
(** Statistical minimum over chosen vertices (e.g. earliest output). *)

val shortest_io_delays :
  Tgraph.t -> forms:Form.t array -> Form.t option array array
(** Per (input, output): the canonical minimum path delay. *)

val hold_slack :
  early:Form.t -> hold_time:float -> Form.t
(** Slack form [early - hold_time]; its positive-probability is the hold
    yield. *)
