(** The spatial correlation model of paper Section VI.

    Each process parameter (normalized to unit total variance) is split as
    [p = pg + pl + pr] with variances [var_global + var_local + var_random=1].
    The total correlation between the parameter in two grids at distance [d]
    (in grid pitches) is

    - [1]                          at [d = 0] within one grid (minus random),
    - [rho_near * beta^(d-1)]      for [1 <= d <= d_far],
    - [var_global]                 beyond [d_far] (global variation only),

    with [beta] chosen so the curve decays exponentially from [rho_near] at
    [d = 1] to [var_global] at [d = d_far] — the paper's 0.92 at neighbor
    distance decreasing to 0.42 at distance 15. *)

type model = private {
  var_global : float;
  var_local : float;
  var_random : float;
  rho_near : float;
  d_far : float;
  beta : float;
}

val make :
  ?var_random:float -> ?rho_near:float -> ?rho_far:float -> ?d_far:float ->
  unit -> model
(** Defaults per the paper: [rho_near = 0.92], [rho_far = 0.42] (which fixes
    [var_global = 0.42]), [d_far = 15.], [var_random = 0.06].  Raises
    [Invalid_argument] if the resulting variance split is not a valid
    distribution or [rho_near <= rho_far]. *)

val default : model

val total_correlation : model -> float -> float
(** Correlation of the parameter between two grids at distance [d >= 0]. *)

val local_covariance : model -> float -> float
(** Covariance contributed by the correlated local part at distance [d]:
    [var_local] at 0, [total - var_global] in (0, d_far], 0 beyond. *)

val normalized_local_correlation : model -> float -> float
(** [local_covariance / var_local] - the entries of the unit-variance local
    covariance matrix C handed to PCA (paper eq. (2)). *)

val pp : Format.formatter -> model -> unit
