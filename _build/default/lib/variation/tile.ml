type t = { x0 : float; y0 : float; x1 : float; y1 : float }

let make ~x0 ~y0 ~x1 ~y1 =
  if not (x0 < x1 && y0 < y1) then invalid_arg "Tile.make: empty rectangle";
  { x0; y0; x1; y1 }

let center t = ((t.x0 +. t.x1) /. 2.0, (t.y0 +. t.y1) /. 2.0)
let width t = t.x1 -. t.x0
let height t = t.y1 -. t.y0
let area t = width t *. height t

let contains t (x, y) = x >= t.x0 && x < t.x1 && y >= t.y0 && y < t.y1

let translate t ~dx ~dy =
  { x0 = t.x0 +. dx; y0 = t.y0 +. dy; x1 = t.x1 +. dx; y1 = t.y1 +. dy }

let center_distance a b =
  let xa, ya = center a and xb, yb = center b in
  let dx = xa -. xb and dy = ya -. yb in
  sqrt ((dx *. dx) +. (dy *. dy))

let overlaps a b = a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1

let pp ppf t =
  Format.fprintf ppf "[%.1f,%.1f)x[%.1f,%.1f)" t.x0 t.x1 t.y0 t.y1
