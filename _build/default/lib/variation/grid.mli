(** Regular grid partition of a rectangular die area (paper Section II:
    "the die of the circuit is partitioned into n grids"). *)

type t = private {
  x0 : float;
  y0 : float;
  nx : int;
  ny : int;
  pitch : float;
  tiles : Tile.t array;  (** row-major, [ix + iy * nx] *)
}

val make : x0:float -> y0:float -> width:float -> height:float ->
  pitch:float -> t
(** Covers [width] x [height] starting at [(x0, y0)] with square tiles of
    side [pitch]; the last row/column tiles are clipped to the die, so
    every point of the die belongs to exactly one tile. *)

val n_tiles : t -> int

val index_of_point : t -> float * float -> int
(** Tile owning the point; raises [Invalid_argument] if the point lies
    outside the die. *)

val pitch_for_cell_budget : n_cells:int -> cells_per_tile:int ->
  cell_pitch:float -> float
(** The paper partitions dies "so that the number of cells in a grid is less
    than 100": with cells placed on a unit square lattice of side
    [cell_pitch], a grid pitch of [cell_pitch * floor(sqrt cells_per_tile)]
    guarantees at most [cells_per_tile] cells per tile. *)
