type t = {
  x0 : float;
  y0 : float;
  nx : int;
  ny : int;
  pitch : float;
  tiles : Tile.t array;
}

let make ~x0 ~y0 ~width ~height ~pitch =
  if width <= 0.0 || height <= 0.0 then
    invalid_arg "Grid.make: die must have positive area";
  if pitch <= 0.0 then invalid_arg "Grid.make: pitch must be positive";
  let nx = int_of_float (ceil (width /. pitch)) in
  let ny = int_of_float (ceil (height /. pitch)) in
  let tiles =
    Array.init (nx * ny) (fun idx ->
        let ix = idx mod nx and iy = idx / nx in
        let tx0 = x0 +. (float_of_int ix *. pitch) in
        let ty0 = y0 +. (float_of_int iy *. pitch) in
        Tile.make ~x0:tx0 ~y0:ty0
          ~x1:(Float.min (tx0 +. pitch) (x0 +. width))
          ~y1:(Float.min (ty0 +. pitch) (y0 +. height)))
  in
  { x0; y0; nx; ny; pitch; tiles }

let n_tiles t = Array.length t.tiles

let index_of_point t (x, y) =
  let ix = int_of_float (floor ((x -. t.x0) /. t.pitch)) in
  let iy = int_of_float (floor ((y -. t.y0) /. t.pitch)) in
  if ix < 0 || ix >= t.nx || iy < 0 || iy >= t.ny then
    invalid_arg
      (Printf.sprintf "Grid.index_of_point: (%g, %g) outside the die" x y);
  ix + (iy * t.nx)

let pitch_for_cell_budget ~n_cells ~cells_per_tile ~cell_pitch =
  if n_cells <= 0 || cells_per_tile <= 0 then
    invalid_arg "Grid.pitch_for_cell_budget: positive counts required";
  cell_pitch *. floor (sqrt (float_of_int cells_per_tile))
