lib/variation/tile.mli: Format
