lib/variation/basis.ml: Array Correlation Ssta_canonical Ssta_gauss Ssta_linalg Tile
