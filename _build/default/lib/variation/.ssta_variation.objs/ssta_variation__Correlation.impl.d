lib/variation/correlation.ml: Float Format
