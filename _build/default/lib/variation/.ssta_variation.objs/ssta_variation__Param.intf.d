lib/variation/param.mli: Format
