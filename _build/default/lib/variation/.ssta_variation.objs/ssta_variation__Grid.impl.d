lib/variation/grid.ml: Array Float Printf Tile
