lib/variation/basis.mli: Correlation Ssta_canonical Ssta_gauss Ssta_linalg Tile
