lib/variation/correlation.mli: Format
