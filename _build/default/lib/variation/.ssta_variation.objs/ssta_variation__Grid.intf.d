lib/variation/grid.mli: Tile
