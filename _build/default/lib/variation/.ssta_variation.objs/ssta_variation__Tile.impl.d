lib/variation/tile.ml: Format
