lib/variation/param.ml: Array Format
