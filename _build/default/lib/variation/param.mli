(** Process parameters with variations (paper Section VI).

    A parameter only carries its identity here; how strongly a gate's delay
    reacts to one unit (one sigma) of a parameter is a property of the cell
    ({!Ssta_cell.Cell.t} sensitivities), and how a parameter's variance is
    split into global / correlated-local / random parts is a property of the
    shared {!Correlation.model}. *)

type t = { name : string }

val transistor_length : t
val oxide_thickness : t
val threshold_voltage : t

val defaults : t array
(** The paper's three process parameters, in the order cells list their
    sensitivities: transistor length, oxide thickness, threshold voltage. *)

val count : t array -> int
val pp : Format.formatter -> t -> unit
