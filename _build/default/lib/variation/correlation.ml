type model = {
  var_global : float;
  var_local : float;
  var_random : float;
  rho_near : float;
  d_far : float;
  beta : float;
}

let make ?(var_random = 0.06) ?(rho_near = 0.92) ?(rho_far = 0.42)
    ?(d_far = 15.0) () =
  if not (rho_near > rho_far && rho_far >= 0.0 && rho_near < 1.0) then
    invalid_arg "Correlation.make: need 0 <= rho_far < rho_near < 1";
  if d_far < 2.0 then invalid_arg "Correlation.make: d_far must be >= 2";
  let var_global = rho_far in
  let var_local = 1.0 -. var_global -. var_random in
  if var_local <= 0.0 || var_random < 0.0 then
    invalid_arg "Correlation.make: variance split is not a distribution";
  if rho_near -. var_global > var_local then
    invalid_arg
      "Correlation.make: neighbor correlation exceeds local variance";
  let beta = (rho_far /. rho_near) ** (1.0 /. (d_far -. 1.0)) in
  { var_global; var_local; var_random; rho_near; d_far; beta }

let default = make ()

let total_correlation m d =
  if d < 0.0 then invalid_arg "Correlation.total_correlation: negative d";
  if d = 0.0 then 1.0 -. m.var_random
  else if d <= m.d_far then
    Float.max m.var_global (m.rho_near *. (m.beta ** (d -. 1.0)))
  else m.var_global

let local_covariance m d =
  if d = 0.0 then m.var_local
  else if d <= m.d_far then
    Float.max 0.0 (total_correlation m d -. m.var_global)
  else 0.0

let normalized_local_correlation m d = local_covariance m d /. m.var_local

let pp ppf m =
  Format.fprintf ppf
    "corr(vg=%.3f vl=%.3f vr=%.3f rho1=%.2f dfar=%.0f beta=%.4f)" m.var_global
    m.var_local m.var_random m.rho_near m.d_far m.beta
