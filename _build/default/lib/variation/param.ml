type t = { name : string }

let transistor_length = { name = "transistor_length" }
let oxide_thickness = { name = "oxide_thickness" }
let threshold_voltage = { name = "threshold_voltage" }
let defaults = [| transistor_length; oxide_thickness; threshold_voltage |]
let count = Array.length
let pp ppf t = Format.pp_print_string ppf t.name
