(** An axis-aligned rectangle of die area carrying one correlated local
    random variable (one "grid" in the paper's terminology).  Design-level
    heterogeneous partitions (paper Fig. 4) are plain arrays of tiles. *)

type t = { x0 : float; y0 : float; x1 : float; y1 : float }

val make : x0:float -> y0:float -> x1:float -> y1:float -> t
(** Raises [Invalid_argument] unless [x0 < x1] and [y0 < y1]. *)

val center : t -> float * float
val width : t -> float
val height : t -> float
val area : t -> float
val contains : t -> float * float -> bool
(** Half-open on the upper edges so regular partitions tile without double
    ownership. *)

val translate : t -> dx:float -> dy:float -> t
val center_distance : t -> t -> float
(** Euclidean distance between centers. *)

val overlaps : t -> t -> bool
val pp : Format.formatter -> t -> unit
