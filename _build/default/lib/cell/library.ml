let params = Ssta_variation.Param.defaults

(* Paper Section VI: std deviations of transistor length, oxide thickness and
   threshold voltage are 15.7%, 5.3% and 4.4% of nominal; load sigma 15%. *)
let base_sens = [| 0.157; 0.053; 0.044 |]
let load_sens = 0.15

let cell name n_inputs d0 sens_scale =
  Cell.make ~name ~n_inputs ~d0
    ~sens:(Array.map (fun s -> s *. sens_scale) base_sens)
    ~load_sens

let inv = cell "inv" 1 20.0 1.10
let buf = cell "buf" 1 35.0 0.95
let nand2 = cell "nand2" 2 30.0 1.00
let nand3 = cell "nand3" 3 38.0 1.05
let nand4 = cell "nand4" 4 45.0 1.08
let nor2 = cell "nor2" 2 32.0 1.02
let nor3 = cell "nor3" 3 42.0 1.06
let and2 = cell "and2" 2 45.0 0.95
let and3 = cell "and3" 3 52.0 0.97
let or2 = cell "or2" 2 48.0 0.96
let or3 = cell "or3" 3 55.0 0.98
let xor2 = cell "xor2" 2 60.0 0.90
let xnor2 = cell "xnor2" 2 62.0 0.92
let aoi21 = cell "aoi21" 3 40.0 1.04
let oai21 = cell "oai21" 3 42.0 1.03
let maj3 = cell "maj3" 3 65.0 0.93

let default =
  [|
    inv; buf; nand2; nand3; nand4; nor2; nor3; and2; and3; or2; or3; xor2;
    xnor2; aoi21; oai21; maj3;
  |]

let find name =
  match Array.find_opt (fun c -> c.Cell.name = name) default with
  | Some c -> c
  | None -> raise Not_found
