(** Standard cells with a first-order statistical delay model.

    A cell's pin-to-output delay is

    {v d = d0 * load_factor * (1 + sum_k sens_k * p_k + load_sens * r) v}

    where [p_k] is process parameter [k] (unit sigma, split into global /
    correlated-local / random parts by the {!Ssta_variation.Correlation}
    model), and [r] is an independent random variable modeling load/wire
    uncertainty.  The sensitivities are relative: [sens_k] is the fraction of
    nominal delay gained per sigma of parameter [k]. *)

type t = {
  name : string;
  n_inputs : int;
  d0 : float;  (** nominal pin-to-output delay, picoseconds *)
  sens : float array;  (** per-parameter relative delay sensitivity *)
  load_sens : float;  (** relative sigma from load variation *)
}

val make :
  name:string -> n_inputs:int -> d0:float -> sens:float array ->
  load_sens:float -> t
(** Raises [Invalid_argument] on non-positive [n_inputs] or [d0], or any
    negative sensitivity. *)

val arc_delay : t -> fanout:int -> pin:int -> float
(** Nominal delay of the arc from input [pin] to the output when the output
    drives [fanout] sinks: [d0] scaled by a mild linear load factor
    ([+ 12%] per extra fanout) and a small deterministic per-pin skew, so
    that different pins and instances do not have artificially identical
    delays. *)

val pp : Format.formatter -> t -> unit
