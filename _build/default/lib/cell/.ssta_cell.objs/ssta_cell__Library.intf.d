lib/cell/library.mli: Cell Ssta_variation
