lib/cell/cell.ml: Array Format
