lib/cell/library.ml: Array Cell Ssta_variation
