type t = {
  name : string;
  n_inputs : int;
  d0 : float;
  sens : float array;
  load_sens : float;
}

let make ~name ~n_inputs ~d0 ~sens ~load_sens =
  if n_inputs <= 0 then invalid_arg "Cell.make: n_inputs must be positive";
  if d0 <= 0.0 then invalid_arg "Cell.make: d0 must be positive";
  if load_sens < 0.0 || Array.exists (fun s -> s < 0.0) sens then
    invalid_arg "Cell.make: sensitivities must be non-negative";
  { name; n_inputs; d0; sens; load_sens }

let arc_delay t ~fanout ~pin =
  if pin < 0 || pin >= t.n_inputs then
    invalid_arg "Cell.arc_delay: pin out of range";
  let fanout = max fanout 1 in
  let load_factor = 1.0 +. (0.12 *. float_of_int (fanout - 1)) in
  let pin_skew = 1.0 +. (0.04 *. float_of_int pin) in
  t.d0 *. load_factor *. pin_skew

let pp ppf t =
  Format.fprintf ppf "%s/%d (d0=%.1fps)" t.name t.n_inputs t.d0
