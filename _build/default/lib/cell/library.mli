(** The default cell library.

    A 90 nm-like library standing in for the paper's industrial library (see
    DESIGN.md substitutions): nominal delays in the 20-65 ps range and
    per-parameter sensitivities derived from the paper's variation setup -
    sigma(L) = 15.7 %, sigma(Tox) = 5.3 %, sigma(Vth) = 4.4 % of nominal, and
    15 % load sigma - with a mild per-cell scaling so different cell types do
    not react identically. *)

val params : Ssta_variation.Param.t array
(** The three process parameters of the library, in sensitivity order. *)

val default : Cell.t array
(** All cells of the library. *)

val find : string -> Cell.t
(** Lookup by name; raises [Not_found]. *)

val inv : Cell.t
val buf : Cell.t
val nand2 : Cell.t
val nand3 : Cell.t
val nand4 : Cell.t
val nor2 : Cell.t
val nor3 : Cell.t
val and2 : Cell.t
val and3 : Cell.t
val or2 : Cell.t
val or3 : Cell.t
val xor2 : Cell.t
val xnor2 : Cell.t
val aoi21 : Cell.t
val oai21 : Cell.t
val maj3 : Cell.t
