lib/gauss/stats.ml: Array Float Format
