lib/gauss/rng.ml: Array Int64
