lib/gauss/rng.mli:
