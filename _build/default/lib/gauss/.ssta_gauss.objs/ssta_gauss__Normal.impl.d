lib/gauss/normal.ml: Array Float
