lib/gauss/normal.mli:
