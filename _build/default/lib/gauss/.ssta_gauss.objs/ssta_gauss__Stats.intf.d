lib/gauss/stats.mli: Format
