(** Sample statistics used to compare SSTA results against Monte Carlo. *)

module Welford : sig
  type t
  (** Streaming mean/variance accumulator (numerically stable). *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 for fewer than two samples. *)

  val std : t -> float
end

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance. *)

val std : float array -> float

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [0,1]: linear interpolation on the sorted
    sample.  The input array is not modified. *)

val empirical_cdf : float array -> float array * float array
(** [empirical_cdf xs] is [(sorted_values, probabilities)] where
    [probabilities.(i) = (i+1) / n]. *)

val histogram : ?lo:float -> ?hi:float -> bins:int -> float array -> int array
(** Counts per bin over [lo, hi] (defaults: sample min/max).  Values landing
    exactly on [hi] go to the last bin. *)

val ks_distance : float array -> (float -> float) -> float
(** Kolmogorov-Smirnov distance between the sample and a reference CDF. *)

val pp_summary : Format.formatter -> float array -> unit
(** One-line [n/mean/std/q01/q50/q99] summary, for logs and examples. *)
