lib/canonical/form.mli: Format
