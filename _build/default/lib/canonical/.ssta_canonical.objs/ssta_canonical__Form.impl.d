lib/canonical/form.ml: Array Float Format List Ssta_gauss Ssta_linalg
