module N = Ssta_circuit.Netlist

let netlist nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph netlist {\n  rankdir=LR;\n";
  for i = 0 to N.n_pis nl - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [shape=box,label=\"pi%d\"];\n" i i)
  done;
  Array.iteri
    (fun g gate ->
      let id = N.n_pis nl + g in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" id
           gate.N.cell.Ssta_cell.Cell.name);
      Array.iter
        (fun s ->
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" s id))
        gate.N.fanins)
    nl.N.gates;
  Array.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [peripheries=2];\n" o))
    nl.N.outputs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let tgraph ?weights ?(highlight = []) g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph timing {\n  rankdir=LR;\n";
  let hl = Hashtbl.create 17 in
  List.iter (fun v -> Hashtbl.replace hl v ()) highlight;
  let is_in = Array.make (Tgraph.n_vertices g) false in
  Array.iter (fun v -> is_in.(v) <- true) g.Tgraph.inputs;
  let is_out = Array.make (Tgraph.n_vertices g) false in
  Array.iter (fun v -> is_out.(v) <- true) g.Tgraph.outputs;
  for v = 0 to Tgraph.n_vertices g - 1 do
    let attrs = ref [] in
    if is_in.(v) then attrs := "shape=box" :: !attrs;
    if is_out.(v) then attrs := "peripheries=2" :: !attrs;
    if Hashtbl.mem hl v then
      attrs := "style=filled" :: "fillcolor=lightsalmon" :: !attrs;
    if !attrs <> [] then
      Buffer.add_string buf
        (Printf.sprintf "  v%d [%s];\n" v (String.concat "," !attrs))
  done;
  Array.iteri
    (fun e s ->
      let d = g.Tgraph.dst.(e) in
      let label =
        match weights with
        | Some w -> Printf.sprintf " [label=\"%.1f\"]" w.(e)
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  v%d -> v%d%s;\n" s d label))
    g.Tgraph.src;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
