lib/timing/dot.ml: Array Buffer Hashtbl List Printf Ssta_cell Ssta_circuit String Tgraph
