lib/timing/tgraph.mli: Hashtbl Ssta_circuit
