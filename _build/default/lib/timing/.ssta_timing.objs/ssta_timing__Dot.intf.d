lib/timing/dot.mli: Ssta_circuit Tgraph
