lib/timing/sta.mli: Tgraph
