lib/timing/tgraph.ml: Array Hashtbl List Printf Queue Ssta_circuit
