lib/timing/sta.ml: Array Float Tgraph
