lib/timing/build.ml: Array Ssta_canonical Ssta_cell Ssta_circuit Ssta_variation Tgraph
