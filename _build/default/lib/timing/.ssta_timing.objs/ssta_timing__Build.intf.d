lib/timing/build.mli: Ssta_canonical Ssta_circuit Ssta_variation Tgraph
