(** Graphviz export for debugging and documentation: netlists, timing
    graphs with weights, and (through the same entry points) extracted
    timing-model graphs. *)

val netlist : Ssta_circuit.Netlist.t -> string
(** One node per PI/gate (labelled with the cell name), one arc per fanin. *)

val tgraph :
  ?weights:float array ->
  ?highlight:int list ->
  Tgraph.t ->
  string
(** Timing graph with optional per-edge weight labels and an optional set
    of vertices to highlight (e.g. a critical path).  Inputs are drawn as
    boxes, outputs as double circles. *)
