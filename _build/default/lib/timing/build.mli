(** Characterization context: everything needed to analyze one combinational
    module statistically - the timing graph, per-edge canonical forms over
    the module's variation basis, and the sparse per-edge description the
    Monte Carlo engine samples from. *)

module Form = Ssta_canonical.Form

type sparse_edge = {
  nominal : float;  (** nominal arc delay, load/pin factors applied *)
  sens : float array;  (** per-parameter relative sensitivities *)
  tile : int;  (** correlation tile of the driven gate *)
  random_sigma : float;
      (** absolute sigma of the private random part (parameter random
          components + load variation, RSS-combined) *)
}

type t = {
  netlist : Ssta_circuit.Netlist.t;
  placement : Ssta_circuit.Placement.t;
  grid : Ssta_variation.Grid.t;
  basis : Ssta_variation.Basis.t;
  graph : Tgraph.t;
  forms : Form.t array;  (** per edge, canonical over [basis] *)
  sparse : sparse_edge array;  (** per edge *)
  gate_tile : int array;  (** per gate *)
}

val characterize :
  ?corr:Ssta_variation.Correlation.model ->
  ?cells_per_tile:int ->
  Ssta_circuit.Netlist.t ->
  t
(** Places the netlist, partitions its die with the paper's cell budget
    (default < 100 cells per grid), builds the PCA basis, and derives both
    edge representations.  The canonical form and the sparse description
    denote the same distribution - a property the tests check by sampling. *)

val nominal_weights : t -> float array
(** Per-edge nominal delays (for corner STA). *)
