(** Deterministic (corner / sample) static timing analysis on a timing graph
    with plain float edge delays.  This is the inner loop of the Monte Carlo
    engine and the corner-STA baseline of the examples. *)

val forward : Tgraph.t -> weights:float array -> float array
(** Arrival times from all primary inputs (inputs start at 0); vertices not
    reachable from any input get [neg_infinity]. *)

val forward_from : Tgraph.t -> weights:float array -> int -> float array
(** Arrival times exclusively from one input vertex. *)

val forward_from_into :
  Tgraph.t -> weights:float array -> int -> float array -> unit
(** Allocation-free variant of {!forward_from} writing into a caller buffer
    of length [n_vertices] (contents overwritten). *)

val backward_to : Tgraph.t -> weights:float array -> int -> float array
(** [backward_to g ~weights out] gives, per vertex, the maximum path delay
    from the vertex to the output [out] ([neg_infinity] if it cannot reach
    it; 0 at [out] itself).  This is the negated required time with the
    required time at [out] set to 0 (paper eq. (15)). *)

val design_delay : Tgraph.t -> weights:float array -> float
(** Maximum arrival over primary outputs. *)

val critical_path : Tgraph.t -> weights:float array -> int list
(** Vertices of one maximum-delay input-to-output path (in order). *)
