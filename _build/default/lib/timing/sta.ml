let check g weights =
  if Array.length weights <> Tgraph.n_edges g then
    invalid_arg "Sta: weight array length does not match edge count"

let relax_forward g weights arr =
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  for i = 0 to Array.length src - 1 do
    let a = Array.unsafe_get arr (Array.unsafe_get src i) in
    if a > neg_infinity then begin
      let d = Array.unsafe_get dst i in
      let t = a +. Array.unsafe_get weights i in
      if t > Array.unsafe_get arr d then Array.unsafe_set arr d t
    end
  done

let forward g ~weights =
  check g weights;
  let arr = Array.make g.Tgraph.n_vertices neg_infinity in
  Array.iter (fun v -> arr.(v) <- 0.0) g.Tgraph.inputs;
  relax_forward g weights arr;
  arr

let forward_from_into g ~weights v0 arr =
  Array.fill arr 0 (Array.length arr) neg_infinity;
  arr.(v0) <- 0.0;
  relax_forward g weights arr

let forward_from g ~weights v0 =
  check g weights;
  let arr = Array.make g.Tgraph.n_vertices neg_infinity in
  forward_from_into g ~weights v0 arr;
  arr

let backward_to g ~weights out =
  check g weights;
  let req = Array.make g.Tgraph.n_vertices neg_infinity in
  req.(out) <- 0.0;
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  for i = Array.length src - 1 downto 0 do
    let r = Array.unsafe_get req (Array.unsafe_get dst i) in
    if r > neg_infinity then begin
      let s = Array.unsafe_get src i in
      let t = r +. Array.unsafe_get weights i in
      if t > Array.unsafe_get req s then Array.unsafe_set req s t
    end
  done;
  req

let design_delay g ~weights =
  let arr = forward g ~weights in
  Array.fold_left
    (fun acc o -> Float.max acc arr.(o))
    neg_infinity g.Tgraph.outputs

let critical_path g ~weights =
  let arr = forward g ~weights in
  let best_out =
    Array.fold_left
      (fun best o ->
        match best with
        | None -> Some o
        | Some b -> if arr.(o) > arr.(b) then Some o else best)
      None g.Tgraph.outputs
  in
  match best_out with
  | None -> []
  | Some out ->
      let is_input = Array.make g.Tgraph.n_vertices false in
      Array.iter (fun v -> is_input.(v) <- true) g.Tgraph.inputs;
      let rec walk v acc =
        if is_input.(v) then v :: acc
        else begin
          (* Find the fanin edge realizing arr.(v). *)
          let lo = g.Tgraph.fanin_lo.(v) and hi = g.Tgraph.fanin_hi.(v) in
          let pick = ref (-1) in
          for i = lo to hi - 1 do
            let s = g.Tgraph.src.(i) in
            if
              arr.(s) > neg_infinity
              && abs_float (arr.(s) +. weights.(i) -. arr.(v)) < 1e-9
              && !pick < 0
            then pick := i
          done;
          if !pick < 0 then v :: acc
          else walk g.Tgraph.src.(!pick) (v :: acc)
        end
      in
      walk out []
