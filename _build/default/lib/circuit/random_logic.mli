(** Seeded random combinational logic, shaped to a target size.

    Stands in for the ISCAS85 circuits we cannot redistribute (see DESIGN.md):
    the generator controls primary input/output counts, gate count, cell mix
    and a locality parameter governing reconvergence and logical depth, which
    are the graph statistics the timing-model extraction results depend on.

    Construction maintains a pool of currently fanout-free signals; while the
    pool exceeds the target output count, new gates consume from it, so the
    finished circuit has every gate observable at some output.  The result is
    deterministic in [seed]. *)

type spec = {
  name : string;
  n_pi : int;
  n_po : int;
  n_gates : int;  (** target; actual count can differ by a few mop-up gates *)
  seed : int;
  locality : float;
      (** 0..1: probability that a fanin is drawn from the recent window
          rather than uniformly from all earlier signals; higher means
          deeper, narrower circuits *)
}

val make : spec -> Netlist.t
(** Raises [Invalid_argument] on non-positive counts or [n_po] larger than
    reachable signals. *)
