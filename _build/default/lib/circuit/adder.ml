module B = Netlist.Builder
module L = Ssta_cell.Library

let xor = Gadgets.xor_cell

let ripple_chain b ~a_bit ~b_bit ~carry_in ~bits =
  let sums = Array.make bits (-1) in
  let carry = ref carry_in in
  for i = 0 to bits - 1 do
    let s, c = Gadgets.full_adder ~xor b (a_bit i) (b_bit i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

let ripple ?name ~bits () =
  if bits < 1 then invalid_arg "Adder.ripple: bits must be >= 1";
  let name =
    match name with Some n -> n | None -> Printf.sprintf "rca%d" bits
  in
  let b = B.create ~name ~n_pi:((2 * bits) + 1) in
  let a_bit i = i and b_bit i = bits + i in
  let cin = 2 * bits in
  let sums, cout = ripple_chain b ~a_bit ~b_bit ~carry_in:cin ~bits in
  B.finish b ~outputs:(Array.append sums [| cout |])

(* 2:1 mux as library gates: out = (sel & x1) | (~sel & x0). *)
let mux b ~sel ~x0 ~x1 =
  let nsel = B.add_gate b L.inv [| sel |] in
  let t1 = B.add_gate b L.and2 [| sel; x1 |] in
  let t0 = B.add_gate b L.and2 [| nsel; x0 |] in
  B.add_gate b L.or2 [| t1; t0 |]

let carry_select ?name ~bits ~block () =
  if bits < 1 || block < 1 then
    invalid_arg "Adder.carry_select: bits and block must be >= 1";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "csel%d_%d" bits block
  in
  let b = B.create ~name ~n_pi:((2 * bits) + 1) in
  let a_bit i = i and b_bit i = bits + i in
  let cin = 2 * bits in
  (* Constant 0/1 carries for the speculative chains: derive stable local
     constants from the carry-in (x AND NOT x = 0, x OR NOT x = 1). *)
  let ncin = B.add_gate b L.inv [| cin |] in
  let zero = B.add_gate b L.and2 [| cin; ncin |] in
  let one = B.add_gate b L.or2 [| cin; ncin |] in
  let sums = Array.make bits (-1) in
  let carry = ref cin in
  let pos = ref 0 in
  let first = ref true in
  while !pos < bits do
    let width = min block (bits - !pos) in
    let base = !pos in
    if !first then begin
      (* First block: plain ripple from the real carry-in. *)
      let s, c =
        ripple_chain b
          ~a_bit:(fun i -> a_bit (base + i))
          ~b_bit:(fun i -> b_bit (base + i))
          ~carry_in:!carry ~bits:width
      in
      Array.blit s 0 sums base width;
      carry := c;
      first := false
    end
    else begin
      let s0, c0 =
        ripple_chain b
          ~a_bit:(fun i -> a_bit (base + i))
          ~b_bit:(fun i -> b_bit (base + i))
          ~carry_in:zero ~bits:width
      in
      let s1, c1 =
        ripple_chain b
          ~a_bit:(fun i -> a_bit (base + i))
          ~b_bit:(fun i -> b_bit (base + i))
          ~carry_in:one ~bits:width
      in
      for i = 0 to width - 1 do
        sums.(base + i) <- mux b ~sel:!carry ~x0:s0.(i) ~x1:s1.(i)
      done;
      carry := mux b ~sel:!carry ~x0:c0 ~x1:c1
    end;
    pos := !pos + width
  done;
  B.finish b ~outputs:(Array.append sums [| !carry |])
