(** Levelized placement of a netlist onto a die.

    The paper needs on-die cell locations only to assign cells to correlation
    grids (Section V), so a simple deterministic placement suffices: gates
    are sorted by topological level and laid out row-major on a unit cell
    lattice over a near-square die.  Data flows left-to-right across the die,
    giving the spatially-coherent structure real placements have (neighboring
    logic stages sit in neighboring grids). *)

type t = private {
  die : Ssta_variation.Tile.t;  (** the die rectangle, origin (0,0) *)
  positions : (float * float) array;  (** per gate, cell centers *)
}

val place : Netlist.t -> t
(** Placement of all gates (primary inputs occupy no area). *)

val cells_per_tile : t -> Ssta_variation.Grid.t -> int array
(** Occupancy per grid tile (for the "< 100 cells per grid" budget check). *)
