module B = Netlist.Builder
module L = Ssta_cell.Library

let data_bits = 32
let check_bits = 8

(* Each data bit participates in the three syndrome trees selected by its
   decode pattern; patterns enumerate 3-subsets of the 8 syndromes so all 32
   data bits get distinct patterns (C(8,3) = 56 >= 32). *)
let patterns =
  let pats = ref [] in
  for a = 0 to check_bits - 1 do
    for b = a + 1 to check_bits - 1 do
      for c = b + 1 to check_bits - 1 do
        pats := (a, b, c) :: !pats
      done
    done
  done;
  Array.of_list (List.rev !pats)

let make ?name ~expand_xor () =
  let name =
    match name with
    | Some n -> n
    | None -> if expand_xor then "ecc_nand" else "ecc_xor"
  in
  let n_pi = data_bits + check_bits + 1 in
  let b = B.create ~name ~n_pi in
  let data i = i and check k = data_bits + k in
  let enable = data_bits + check_bits in
  let xor = if expand_xor then Gadgets.xor_nand else Gadgets.xor_cell in
  (* Syndrome k: XOR tree over the data bits whose pattern contains k, plus
     the check bit. *)
  let members k =
    let rec collect i acc =
      if i >= data_bits then List.rev acc
      else
        let a, b', c = patterns.(i) in
        if a = k || b' = k || c = k then collect (i + 1) (data i :: acc)
        else collect (i + 1) acc
    in
    collect 0 [ check k ]
  in
  let syndrome =
    Array.init check_bits (fun k ->
        let rec tree = function
          | [] -> assert false
          | [ s ] -> s
          | signals ->
              let rec pair = function
                | [] -> []
                | [ s ] -> [ s ]
                | x :: y :: rest -> xor b x y :: pair rest
              in
              tree (pair signals)
        in
        tree (members k))
  in
  let gated =
    Array.map (fun s -> B.add_gate b L.and2 [| s; enable |]) syndrome
  in
  let outputs =
    Array.init data_bits (fun i ->
        let a, b', c = patterns.(i) in
        let t = B.add_gate b L.and2 [| gated.(a); gated.(b') |] in
        let dec = B.add_gate b L.and2 [| t; gated.(c) |] in
        xor b (data i) dec)
  in
  B.finish b ~outputs
