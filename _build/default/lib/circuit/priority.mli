(** Priority / interrupt-controller generator in the mold of ISCAS85 c432
    (a 27-channel interrupt controller): three 9-line request buses gated by
    a 9-bit enable mask, per-bus priority chains, bus-level grant outputs and
    a 4-bit encoded channel number.  36 inputs, 7 outputs, ~160 gates. *)

val make : ?name:string -> unit -> Netlist.t
