(** Single-error-correction circuit generator in the mold of ISCAS85
    c499/c1355 (32-bit data, 8 check bits, one enable): eight XOR syndrome
    trees, a 3-of-8 syndrome decoder per data bit and a correcting XOR per
    output.  [expand_xor] replaces every XOR cell with its four-NAND
    decomposition - exactly the relation between c499 (202 gates) and c1355
    (546 gates) in the original suite. *)

val make : ?name:string -> expand_xor:bool -> unit -> Netlist.t
(** 41 primary inputs (32 data, 8 check, 1 enable), 32 primary outputs. *)
