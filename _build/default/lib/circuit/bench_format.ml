module B = Netlist.Builder
module L = Ssta_cell.Library
module N = Netlist

type def = { gate : string; fanin_names : string list; line : int }

let fail_line line msg = failwith (Printf.sprintf "bench: line %d: %s" line msg)

(* "g12 = NAND(g1, g5)" -> ("g12", "NAND", ["g1"; "g5"]). *)
let parse_def line_no line =
  match String.index_opt line '=' with
  | None -> fail_line line_no "expected '='"
  | Some eq ->
      let name = String.trim (String.sub line 0 eq) in
      let rhs =
        String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
      in
      (match (String.index_opt rhs '(', String.rindex_opt rhs ')') with
      | Some lp, Some rp when rp > lp ->
          let gate =
            String.uppercase_ascii (String.trim (String.sub rhs 0 lp))
          in
          let args = String.sub rhs (lp + 1) (rp - lp - 1) in
          let fanin_names =
            String.split_on_char ',' args
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          if name = "" then fail_line line_no "missing signal name";
          if fanin_names = [] then fail_line line_no "gate with no fanins";
          (name, { gate; fanin_names; line = line_no })
      | _ -> fail_line line_no "expected GATE(args)")

(* Balanced tree of 2-input cells over already-built signals. *)
let rec tree b cell = function
  | [] -> invalid_arg "Bench_format.tree: empty"
  | [ s ] -> s
  | signals ->
      let rec pair = function
        | [] -> []
        | [ s ] -> [ s ]
        | a :: b' :: rest -> B.add_gate b cell [| a; b' |] :: pair rest
      in
      tree b cell (pair signals)

let build_gate b ~line gate fanins =
  let arity = List.length fanins in
  let arr = Array.of_list fanins in
  let wide base_cell final =
    (* Reduce all but the last input with the monotone base cell, then apply
       the (possibly inverting) final 2-input cell. *)
    match fanins with
    | [ _ ] | [] -> fail_line line (gate ^ " needs at least 2 inputs")
    | _ ->
        let rec split_last acc = function
          | [] -> assert false
          | [ x ] -> (List.rev acc, x)
          | x :: rest -> split_last (x :: acc) rest
        in
        let init, last = split_last [] fanins in
        let reduced = tree b base_cell init in
        B.add_gate b final [| reduced; last |]
  in
  match (gate, arity) with
  | ("NOT" | "INV"), 1 -> B.add_gate b L.inv arr
  | ("BUFF" | "BUF"), 1 -> B.add_gate b L.buf arr
  | "AND", 2 -> B.add_gate b L.and2 arr
  | "AND", 3 -> B.add_gate b L.and3 arr
  | "AND", _ -> tree b L.and2 fanins
  | "OR", 2 -> B.add_gate b L.or2 arr
  | "OR", 3 -> B.add_gate b L.or3 arr
  | "OR", _ -> tree b L.or2 fanins
  | "NAND", 2 -> B.add_gate b L.nand2 arr
  | "NAND", 3 -> B.add_gate b L.nand3 arr
  | "NAND", 4 -> B.add_gate b L.nand4 arr
  | "NAND", _ -> wide L.and2 L.nand2
  | "NOR", 2 -> B.add_gate b L.nor2 arr
  | "NOR", 3 -> B.add_gate b L.nor3 arr
  | "NOR", _ -> wide L.or2 L.nor2
  | "XOR", 2 -> B.add_gate b L.xor2 arr
  | "XOR", _ -> tree b L.xor2 fanins
  | "XNOR", 2 -> B.add_gate b L.xnor2 arr
  | "XNOR", _ -> wide L.xor2 L.xnor2
  | "AOI21", 3 -> B.add_gate b L.aoi21 arr
  | "OAI21", 3 -> B.add_gate b L.oai21 arr
  | "MAJ3", 3 -> B.add_gate b L.maj3 arr
  | _ ->
      fail_line line
        (Printf.sprintf "unsupported gate %s/%d" gate arity)

let parse ~name text =
  let inputs = ref [] and outputs = ref [] in
  let defs : (string, def) Hashtbl.t = Hashtbl.create 997 in
  let def_order = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun i raw ->
         let line_no = i + 1 in
         let line =
           match String.index_opt raw '#' with
           | Some h -> String.sub raw 0 h
           | None -> raw
         in
         let line = String.trim line in
         if line <> "" then
           let upper = String.uppercase_ascii line in
           if String.length upper >= 6 && String.sub upper 0 6 = "INPUT(" then begin
             match String.rindex_opt line ')' with
             | Some rp ->
                 inputs :=
                   String.trim (String.sub line 6 (rp - 6)) :: !inputs
             | None -> fail_line line_no "unterminated INPUT"
           end
           else if String.length upper >= 7 && String.sub upper 0 7 = "OUTPUT("
           then begin
             match String.rindex_opt line ')' with
             | Some rp ->
                 outputs :=
                   String.trim (String.sub line 7 (rp - 7)) :: !outputs
             | None -> fail_line line_no "unterminated OUTPUT"
           end
           else begin
             let sig_name, def = parse_def line_no line in
             if Hashtbl.mem defs sig_name then
               fail_line line_no ("redefinition of " ^ sig_name);
             Hashtbl.replace defs sig_name def;
             def_order := sig_name :: !def_order
           end);
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  if inputs = [] then failwith "bench: no INPUT declarations";
  if outputs = [] then failwith "bench: no OUTPUT declarations";
  List.iter
    (fun i ->
      if Hashtbl.mem defs i then
        failwith (Printf.sprintf "bench: signal %s is both INPUT and defined" i))
    inputs;
  (* Kahn topological order over the definitions. *)
  let remaining = Hashtbl.create 997 in
  let dependents = Hashtbl.create 997 in
  let ready = Queue.create () in
  let known name = Hashtbl.mem defs name || List.mem name inputs in
  Hashtbl.iter
    (fun sig_name def ->
      let pending =
        List.fold_left
          (fun k f ->
            if not (known f) then
              fail_line def.line ("undefined signal " ^ f);
            if Hashtbl.mem defs f then begin
              Hashtbl.replace dependents f
                (sig_name
                :: (try Hashtbl.find dependents f with Not_found -> []));
              k + 1
            end
            else k)
          0 def.fanin_names
      in
      Hashtbl.replace remaining sig_name pending;
      if pending = 0 then Queue.push sig_name ready)
    defs;
  let b = B.create ~name ~n_pi:(List.length inputs) in
  let ids = Hashtbl.create 997 in
  List.iteri (fun i n -> Hashtbl.replace ids n i) inputs;
  let settled = ref 0 in
  while not (Queue.is_empty ready) do
    let sig_name = Queue.pop ready in
    let def = Hashtbl.find defs sig_name in
    let fanins =
      List.map (fun f -> Hashtbl.find ids f) def.fanin_names
    in
    let id = build_gate b ~line:def.line def.gate fanins in
    Hashtbl.replace ids sig_name id;
    incr settled;
    List.iter
      (fun dep ->
        let k = Hashtbl.find remaining dep - 1 in
        Hashtbl.replace remaining dep k;
        if k = 0 then Queue.push dep ready)
      (try Hashtbl.find dependents sig_name with Not_found -> [])
  done;
  if !settled <> Hashtbl.length defs then
    failwith "bench: combinational loop detected";
  let out_ids =
    List.map
      (fun o ->
        try Hashtbl.find ids o
        with Not_found -> failwith ("bench: undefined OUTPUT " ^ o))
      outputs
  in
  B.finish b ~outputs:(Array.of_list out_ids)

let gate_name cell =
  match cell.Ssta_cell.Cell.name with
  | "inv" -> "NOT"
  | "buf" -> "BUFF"
  | "nand2" | "nand3" | "nand4" -> "NAND"
  | "nor2" | "nor3" -> "NOR"
  | "and2" | "and3" -> "AND"
  | "or2" | "or3" -> "OR"
  | "xor2" -> "XOR"
  | "xnor2" -> "XNOR"
  | "aoi21" -> "AOI21"
  | "oai21" -> "OAI21"
  | "maj3" -> "MAJ3"
  | other -> String.uppercase_ascii other

let to_string nl =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" nl.N.name);
  let node i = Printf.sprintf "n%d" i in
  for i = 0 to N.n_pis nl - 1 do
    Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (node i))
  done;
  Array.iter
    (fun o -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (node o)))
    nl.N.outputs;
  Array.iteri
    (fun g gate ->
      let id = N.n_pis nl + g in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" (node id) (gate_name gate.N.cell)
           (String.concat ", "
              (Array.to_list (Array.map node gate.N.fanins)))))
    nl.N.gates;
  Buffer.contents buf

let load ~path =
  let name = Filename.remove_extension (Filename.basename path) in
  let text = In_channel.with_open_text path In_channel.input_all in
  parse ~name text

let save nl ~path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string nl))
