(** The ISCAS85-like benchmark suite (see DESIGN.md substitutions).

    Each entry reproduces the input/output counts and closely matches the
    gate/edge/vertex counts of the original ISCAS85 circuit it is named
    after; [paper_row] carries the original counts from Table I of the paper
    for side-by-side reporting. *)

type paper_counts = {
  eo : int;  (** edges in the original benchmark's timing graph *)
  vo : int;  (** vertices in the original benchmark's timing graph *)
}

val names : string array
(** c432 c499 c880 c1355 c1908 c2670 c3540 c5315 c6288 c7552 *)

val build : string -> Netlist.t
(** Raises [Invalid_argument] for an unknown name. *)

val paper_row : string -> paper_counts
(** Original Eo/Vo from Table I; raises [Invalid_argument] if unknown. *)

val all : unit -> (string * Netlist.t) list
