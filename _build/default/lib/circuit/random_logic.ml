module B = Netlist.Builder
module L = Ssta_cell.Library
module Rng = Ssta_gauss.Rng

type spec = {
  name : string;
  n_pi : int;
  n_po : int;
  n_gates : int;
  seed : int;
  locality : float;
}

(* Cell mix: mostly 2-input gates with some inverters and 3-input cells,
   roughly the profile of the ISCAS85 suite. *)
let weighted_cells =
  [|
    (L.nand2, 22); (L.nor2, 14); (L.and2, 14); (L.or2, 10); (L.xor2, 8);
    (L.xnor2, 4); (L.inv, 10); (L.buf, 3); (L.nand3, 5); (L.nor3, 4);
    (L.and3, 3); (L.aoi21, 2); (L.oai21, 1);
  |]

let total_weight =
  Array.fold_left (fun acc (_, w) -> acc + w) 0 weighted_cells

let pick_cell rng =
  let r = Rng.int rng total_weight in
  let rec go i acc =
    let cell, w = weighted_cells.(i) in
    if r < acc + w then cell else go (i + 1) (acc + w)
  in
  go 0 0

let make spec =
  if spec.n_pi <= 0 || spec.n_po <= 0 || spec.n_gates <= 0 then
    invalid_arg "Random_logic.make: counts must be positive";
  let rng = Rng.create ~seed:spec.seed in
  let b = B.create ~name:spec.name ~n_pi:spec.n_pi in
  (* Dangling pool: signals without fanout yet, consumed oldest-first once
     the pool exceeds the output budget. *)
  let dangling = Queue.create () in
  let in_pool = Hashtbl.create 97 in
  let push id =
    if not (Hashtbl.mem in_pool id) then begin
      Queue.push id dangling;
      Hashtbl.replace in_pool id ()
    end
  in
  (* The queue may hold stale ids (already consumed as random fanins); skip
     them.  Returns [None] once the live pool is exhausted. *)
  let rec pop () =
    match Queue.take_opt dangling with
    | None -> None
    | Some id ->
        if Hashtbl.mem in_pool id then begin
          Hashtbl.remove in_pool id;
          Some id
        end
        else pop ()
  in
  let live_pool_size () = Hashtbl.length in_pool in
  for pi = 0 to spec.n_pi - 1 do
    push pi
  done;
  let next_unused_pi = ref 0 in
  let pick_fanin b_nodes =
    (* Recent-window draw with probability [locality], else uniform. *)
    if Rng.uniform rng < spec.locality then begin
      let window = max 8 (b_nodes / 8) in
      let lo = max 0 (b_nodes - window) in
      lo + Rng.int rng (b_nodes - lo)
    end
    else Rng.int rng b_nodes
  in
  for _g = 0 to spec.n_gates - 1 do
    let cell = pick_cell rng in
    let arity = cell.Ssta_cell.Cell.n_inputs in
    let nodes = B.n_nodes b in
    let fanins = Array.make arity (-1) in
    let used = Hashtbl.create 4 in
    let take slot v =
      fanins.(slot) <- v;
      Hashtbl.replace used v ()
    in
    (* Slot 0: drain the dangling pool (keeps everything observable), or an
       unused PI early on so no input is left floating. *)
    if !next_unused_pi < spec.n_pi && Rng.uniform rng < 0.5 then begin
      take 0 !next_unused_pi;
      incr next_unused_pi
    end
    else if live_pool_size () > spec.n_po then
      match pop () with
      | Some id -> take 0 id
      | None -> take 0 (pick_fanin nodes)
    else take 0 (pick_fanin nodes);
    for slot = 1 to arity - 1 do
      let rec draw tries =
        let v = pick_fanin nodes in
        if Hashtbl.mem used v && tries < 8 then draw (tries + 1) else v
      in
      take slot (draw 0)
    done;
    let id = B.add_gate b cell fanins in
    Array.iter (fun v -> Hashtbl.remove in_pool v) fanins;
    push id
  done;
  let live = Queue.create () in
  Queue.iter
    (fun id -> if Hashtbl.mem in_pool id then Queue.push id live)
    dangling;
  (* Merge surplus dangling signals pairwise so exactly n_po remain. *)
  while Queue.length live > spec.n_po do
    let x = Queue.pop live in
    let y = Queue.pop live in
    Queue.push (B.add_gate b L.or2 [| x; y |]) live
  done;
  let outputs = Array.make spec.n_po (-1) in
  let n_live = Queue.length live in
  for i = 0 to n_live - 1 do
    outputs.(i) <- Queue.pop live
  done;
  (* If the pool came up short, pad with distinct late gates. *)
  let next = ref (B.n_nodes b - 1) in
  for i = n_live to spec.n_po - 1 do
    while Array.exists (fun o -> o = !next) outputs do
      decr next
    done;
    outputs.(i) <- !next;
    decr next
  done;
  B.finish b ~outputs
