type paper_counts = { eo : int; vo : int }

let names =
  [|
    "c432"; "c499"; "c880"; "c1355"; "c1908"; "c2670"; "c3540"; "c5315";
    "c6288"; "c7552";
  |]

let random ~name ~n_pi ~n_po ~n_gates ~seed ~locality =
  Random_logic.make
    { Random_logic.name; n_pi; n_po; n_gates; seed; locality }

(* PI/PO/gate counts follow Hansen et al., "Unveiling the ISCAS-85
   benchmarks" (the paper's reference [21]); the vertex counts of Table I
   equal gates + PIs, confirming the gate-level timing-graph convention. *)
let build = function
  | "c432" -> Priority.make ~name:"c432" ()
  | "c499" -> Ecc.make ~name:"c499" ~expand_xor:false ()
  | "c880" ->
      random ~name:"c880" ~n_pi:60 ~n_po:26 ~n_gates:378 ~seed:880
        ~locality:0.8
  | "c1355" -> Ecc.make ~name:"c1355" ~expand_xor:true ()
  | "c1908" ->
      random ~name:"c1908" ~n_pi:33 ~n_po:25 ~n_gates:875 ~seed:1908
        ~locality:0.85
  | "c2670" ->
      random ~name:"c2670" ~n_pi:233 ~n_po:140 ~n_gates:1180 ~seed:2670
        ~locality:0.75
  | "c3540" ->
      random ~name:"c3540" ~n_pi:50 ~n_po:22 ~n_gates:1664 ~seed:3540
        ~locality:0.85
  | "c5315" ->
      random ~name:"c5315" ~n_pi:178 ~n_po:123 ~n_gates:2295 ~seed:5315
        ~locality:0.8
  | "c6288" -> Multiplier.make ~name:"c6288" ~bits:16 ()
  | "c7552" ->
      random ~name:"c7552" ~n_pi:207 ~n_po:108 ~n_gates:3500 ~seed:7552
        ~locality:0.8
  | name -> invalid_arg ("Iscas.build: unknown circuit " ^ name)

let paper_row = function
  | "c432" -> { eo = 336; vo = 196 }
  | "c499" -> { eo = 408; vo = 243 }
  | "c880" -> { eo = 729; vo = 443 }
  | "c1355" -> { eo = 1064; vo = 587 }
  | "c1908" -> { eo = 1498; vo = 913 }
  | "c2670" -> { eo = 2076; vo = 1426 }
  | "c3540" -> { eo = 2939; vo = 1719 }
  | "c5315" -> { eo = 4386; vo = 2485 }
  | "c6288" -> { eo = 4800; vo = 2448 }
  | "c7552" -> { eo = 6144; vo = 3719 }
  | name -> invalid_arg ("Iscas.paper_row: unknown circuit " ^ name)

let all () = Array.to_list names |> List.map (fun n -> (n, build n))
