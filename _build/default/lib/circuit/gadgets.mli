(** Small reusable logic constructions shared by the structural circuit
    generators: NAND-decomposed XOR, half and full adders, balanced
    reduction trees. *)

val xor_nand : Netlist.Builder.t -> int -> int -> int
(** XOR built from four NAND2 gates (the decomposition used by the ISCAS85
    c1355/c6288 netlists). *)

val xor_cell : Netlist.Builder.t -> int -> int -> int
(** XOR as a single [xor2] library cell. *)

val half_adder :
  xor:(Netlist.Builder.t -> int -> int -> int) ->
  Netlist.Builder.t -> int -> int -> int * int
(** [(sum, carry)]; carry is an [and2]. *)

val full_adder :
  xor:(Netlist.Builder.t -> int -> int -> int) ->
  Netlist.Builder.t -> int -> int -> int -> int * int
(** [(sum, carry)]; sum is two cascaded XORs, carry a [maj3] majority cell
    (9 gates total with NAND-decomposed XOR, matching the c6288 full-adder
    gate count). *)

val reduce_tree :
  Netlist.Builder.t -> Ssta_cell.Cell.t -> int list -> int
(** Balanced binary tree of a 2-input cell over the signals; raises
    [Invalid_argument] on the empty list, returns the signal itself for a
    singleton. *)
