module Cell = Ssta_cell.Cell

type gate = { cell : Cell.t; fanins : int array }

type t = {
  name : string;
  n_pi : int;
  gates : gate array;
  outputs : int array;
}

let n_nodes t = t.n_pi + Array.length t.gates
let n_gates t = Array.length t.gates
let n_pis t = t.n_pi
let n_pos t = Array.length t.outputs

let n_edges t =
  Array.fold_left (fun acc g -> acc + Array.length g.fanins) 0 t.gates

let is_pi t node = node < t.n_pi

let gate_of_node t node =
  if node < t.n_pi then None else Some t.gates.(node - t.n_pi)

let fanout_counts t =
  let counts = Array.make (n_nodes t) 0 in
  Array.iter
    (fun g ->
      Array.iter (fun src -> counts.(src) <- counts.(src) + 1) g.fanins)
    t.gates;
  counts

let levels t =
  let lv = Array.make (n_nodes t) 0 in
  Array.iteri
    (fun i g ->
      let m = Array.fold_left (fun acc src -> max acc lv.(src)) 0 g.fanins in
      lv.(t.n_pi + i) <- m + 1)
    t.gates;
  lv

let depth t = Array.fold_left max 0 (levels t)

let validate t =
  Array.iteri
    (fun i g ->
      let id = t.n_pi + i in
      if Array.length g.fanins <> g.cell.Cell.n_inputs then
        failwith
          (Printf.sprintf "netlist %s: gate %d arity %d but cell %s wants %d"
             t.name i (Array.length g.fanins) g.cell.Cell.name
             g.cell.Cell.n_inputs);
      Array.iter
        (fun src ->
          if src < 0 || src >= id then
            failwith
              (Printf.sprintf
                 "netlist %s: gate %d fanin %d breaks topological order"
                 t.name i src))
        g.fanins)
    t.gates;
  Array.iter
    (fun o ->
      if o < 0 || o >= n_nodes t then
        failwith (Printf.sprintf "netlist %s: output id %d out of range" t.name o))
    t.outputs

let pp_stats ppf t =
  Format.fprintf ppf "%s: pi=%d po=%d gates=%d edges=%d depth=%d" t.name
    (n_pis t) (n_pos t) (n_gates t) (n_edges t) (depth t)

module Builder = struct
  type t = {
    name : string;
    n_pi : int;
    mutable rev_gates : gate list;
    mutable count : int;
  }

  let create ~name ~n_pi =
    if n_pi <= 0 then invalid_arg "Builder.create: need at least one PI";
    { name; n_pi; rev_gates = []; count = 0 }

  let n_nodes b = b.n_pi + b.count

  let add_gate b cell fanins =
    if Array.length fanins <> cell.Cell.n_inputs then
      invalid_arg
        (Printf.sprintf "Builder.add_gate: %s wants %d fanins, got %d"
           cell.Cell.name cell.Cell.n_inputs (Array.length fanins));
    let id = n_nodes b in
    Array.iter
      (fun src ->
        if src < 0 || src >= id then
          invalid_arg "Builder.add_gate: fanin not yet defined")
      fanins;
    b.rev_gates <- { cell; fanins = Array.copy fanins } :: b.rev_gates;
    b.count <- b.count + 1;
    id

  let finish b ~outputs =
    let nl =
      {
        name = b.name;
        n_pi = b.n_pi;
        gates = Array.of_list (List.rev b.rev_gates);
        outputs = Array.copy outputs;
      }
    in
    validate nl;
    nl
end
