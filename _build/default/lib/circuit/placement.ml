module Tile = Ssta_variation.Tile
module Grid = Ssta_variation.Grid

type t = { die : Tile.t; positions : (float * float) array }

let place nl =
  let n = Netlist.n_gates nl in
  if n = 0 then invalid_arg "Placement.place: netlist has no gates";
  let levels = Netlist.levels nl in
  let order = Array.init n (fun g -> g) in
  Array.sort
    (fun a b ->
      let la = levels.(Netlist.n_pis nl + a)
      and lb = levels.(Netlist.n_pis nl + b) in
      if la <> lb then compare la lb else compare a b)
    order;
  let cols = int_of_float (ceil (sqrt (float_of_int n))) in
  let rows = (n + cols - 1) / cols in
  let positions = Array.make n (0.0, 0.0) in
  (* Columns advance with level (data flows left to right): item k of the
     sorted order goes to column k / rows, row k mod rows. *)
  Array.iteri
    (fun k g ->
      let col = k / rows and row = k mod rows in
      positions.(g) <- (float_of_int col +. 0.5, float_of_int row +. 0.5))
    order;
  let die =
    Tile.make ~x0:0.0 ~y0:0.0 ~x1:(float_of_int cols) ~y1:(float_of_int rows)
  in
  { die; positions }

let cells_per_tile t grid =
  let counts = Array.make (Grid.n_tiles grid) 0 in
  Array.iter
    (fun p ->
      let i = Grid.index_of_point grid p in
      counts.(i) <- counts.(i) + 1)
    t.positions;
  counts
