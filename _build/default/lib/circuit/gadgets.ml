module B = Netlist.Builder
module L = Ssta_cell.Library

let xor_nand b x y =
  let n1 = B.add_gate b L.nand2 [| x; y |] in
  let n2 = B.add_gate b L.nand2 [| x; n1 |] in
  let n3 = B.add_gate b L.nand2 [| y; n1 |] in
  B.add_gate b L.nand2 [| n2; n3 |]

let xor_cell b x y = B.add_gate b L.xor2 [| x; y |]

let half_adder ~xor b x y =
  let sum = xor b x y in
  let carry = B.add_gate b L.and2 [| x; y |] in
  (sum, carry)

let full_adder ~xor b x y z =
  let s1 = xor b x y in
  let sum = xor b s1 z in
  let carry = B.add_gate b L.maj3 [| x; y; z |] in
  (sum, carry)

let reduce_tree b cell signals =
  if cell.Ssta_cell.Cell.n_inputs <> 2 then
    invalid_arg "Gadgets.reduce_tree: cell must be 2-input";
  let rec round = function
    | [] -> invalid_arg "Gadgets.reduce_tree: empty signal list"
    | [ s ] -> s
    | signals ->
        let rec pair = function
          | [] -> []
          | [ s ] -> [ s ]
          | a :: b' :: rest -> B.add_gate b cell [| a; b' |] :: pair rest
        in
        round (pair signals)
  in
  round signals
