(** Array multiplier generator.

    [make ~bits] builds a [bits] x [bits] unsigned array multiplier in the
    structure of ISCAS85 c6288 (which the paper identifies as a 16x16
    multiplier, citing Hansen et al.): a grid of AND partial products reduced
    by [bits-1] rows of [bits] adder cells, XORs NAND-decomposed, carries as
    majority cells.  For [bits = 16] this yields 240 adder cells and a gate
    count within ~3 % of the original c6288 (2352 vs 2416 gates, 4928 vs 4800
    timing-graph edges). *)

val make : ?name:string -> bits:int -> unit -> Netlist.t
(** [2*bits] primary inputs (multiplicand then multiplier, LSB first),
    [2*bits] primary outputs (product, LSB first). *)
