(** Combinational gate-level netlists.

    Nodes are numbered so that ids [0 .. n_pi-1] are primary inputs and id
    [n_pi + g] is the output of gate [g].  Gates are stored in topological
    order: every fanin of gate [g] has a smaller node id.  This invariant is
    enforced by {!Builder} and checked by {!validate}. *)

type gate = { cell : Ssta_cell.Cell.t; fanins : int array }

type t = private {
  name : string;
  n_pi : int;
  gates : gate array;
  outputs : int array;  (** node ids of primary outputs *)
}

val n_nodes : t -> int
(** [n_pi + number of gates]. *)

val n_gates : t -> int
val n_pis : t -> int
val n_pos : t -> int

val n_edges : t -> int
(** Total fanin count = edge count of the gate-level timing graph. *)

val gate_of_node : t -> int -> gate option
(** [None] for primary-input nodes. *)

val is_pi : t -> int -> bool

val fanout_counts : t -> int array
(** Per node: number of gate input pins it drives (primary outputs do not
    count as fanout). *)

val levels : t -> int array
(** Topological level per node: 0 for PIs, [1 + max fanin level] for gates. *)

val depth : t -> int
(** Maximum level over all nodes. *)

val validate : t -> unit
(** Checks the topological-order invariant, fanin arities matching cells, and
    output ids in range; raises [Failure] with a description otherwise. *)

val pp_stats : Format.formatter -> t -> unit

module Builder : sig
  type netlist := t
  type t

  val create : name:string -> n_pi:int -> t
  val n_nodes : t -> int

  val add_gate : t -> Ssta_cell.Cell.t -> int array -> int
  (** Returns the node id of the new gate's output.  Raises
      [Invalid_argument] if the fanin count does not match the cell or any
      fanin id is out of range (not yet defined). *)

  val finish : t -> outputs:int array -> netlist
end
