module B = Netlist.Builder
module L = Ssta_cell.Library

let make ?name ~bits () =
  if bits < 2 then invalid_arg "Multiplier.make: bits must be >= 2";
  let name =
    match name with Some n -> n | None -> Printf.sprintf "mult%d" bits
  in
  let b = B.create ~name ~n_pi:(2 * bits) in
  let a_in i = i and b_in j = bits + j in
  let xor = Gadgets.xor_nand in
  (* Partial products pp.(i).(j) = a_j AND b_i, weight i + j. *)
  let pp =
    Array.init bits (fun i ->
        Array.init bits (fun j ->
            B.add_gate b L.and2 [| a_in j; b_in i |]))
  in
  (* Row-by-row reduction: [acc] holds bits of weight i .. i+bits-1 after
     absorbing pp row i; [top_carry] (weight i+bits) feeds the next row's
     last adder cell. Bit 0 of each row is a final product bit. *)
  let outputs = Array.make (2 * bits) (-1) in
  outputs.(0) <- pp.(0).(0);
  let acc = Array.init bits (fun j -> pp.(0).(j)) in
  let top_carry = ref None in
  for i = 1 to bits - 1 do
    let carry = ref None in
    let next = Array.make bits (-1) in
    for j = 0 to bits - 1 do
      let x = pp.(i).(j) in
      let y =
        if j < bits - 1 then Some acc.(j + 1)
        else !top_carry (* weight i-1+bits = (i+j) for j = bits-1 *)
      in
      let sum, c =
        match (y, !carry) with
        | Some y, Some c -> Gadgets.full_adder ~xor b x y c
        | Some y, None -> Gadgets.half_adder ~xor b x y
        | None, Some c -> Gadgets.half_adder ~xor b x c
        | None, None -> (x, -1)
      in
      next.(j) <- sum;
      carry := if c >= 0 then Some c else None
    done;
    outputs.(i) <- next.(0);
    Array.blit next 0 acc 0 bits;
    top_carry := !carry
  done;
  (* After the last row: acc.(1..bits-1) are product bits bits..2*bits-2 and
     the final top carry is the MSB. *)
  for j = 1 to bits - 1 do
    outputs.(bits - 1 + j) <- acc.(j)
  done;
  let msb =
    match !top_carry with
    | Some c -> c
    | None ->
        (* Cannot happen for bits >= 2, but keep the output well-defined. *)
        B.add_gate b L.and2 [| acc.(bits - 1); acc.(bits - 1) |]
  in
  outputs.((2 * bits) - 1) <- msb;
  B.finish b ~outputs
