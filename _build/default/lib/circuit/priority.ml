module B = Netlist.Builder
module L = Ssta_cell.Library

let buses = 3
let lines = 9

let make ?(name = "priority27") () =
  let n_pi = (buses * lines) + lines in
  let b = B.create ~name ~n_pi in
  let request bus line = (bus * lines) + line in
  let mask line = (buses * lines) + line in
  (* Masked requests. *)
  let masked =
    Array.init buses (fun bus ->
        Array.init lines (fun line ->
            B.add_gate b L.and2 [| request bus line; mask line |]))
  in
  (* Per-bus priority chain: a line is granted if requested and no
     lower-numbered line of the same bus is. *)
  let grants =
    Array.init buses (fun bus ->
        let grant = Array.make lines (-1) in
        grant.(0) <- masked.(bus).(0);
        let above = ref masked.(bus).(0) in
        for line = 1 to lines - 1 do
          let blocked = B.add_gate b L.inv [| !above |] in
          grant.(line) <- B.add_gate b L.and2 [| masked.(bus).(line); blocked |];
          if line < lines - 1 then
            above := B.add_gate b L.or2 [| !above; masked.(bus).(line) |]
        done;
        grant)
  in
  (* Bus-level "some channel granted" outputs. *)
  let bus_any =
    Array.init buses (fun bus ->
        Gadgets.reduce_tree b L.or2 (Array.to_list grants.(bus)))
  in
  (* 4-bit channel encoder over the 27 grant lines: bit k = OR of grants of
     lines whose number has bit k set. *)
  let encoder_bit k =
    let signals = ref [] in
    for bus = 0 to buses - 1 do
      for line = 0 to lines - 1 do
        if (line lsr k) land 1 = 1 then
          signals := grants.(bus).(line) :: !signals
      done
    done;
    Gadgets.reduce_tree b L.or2 !signals
  in
  let encoded = Array.init 4 encoder_bit in
  B.finish b ~outputs:(Array.append bus_any encoded)
