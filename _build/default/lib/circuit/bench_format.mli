(** Reader/writer for the ISCAS85 ".bench" netlist format.

    The original benchmarks the paper evaluates on are distributed in this
    format ([INPUT(g)], [OUTPUT(g)], [g = NAND(a, b)], [#] comments); users
    who have the real netlists can load them directly instead of using the
    bundled generators.

    Parsing notes:
    - definitions may appear in any order; a Kahn topological sort orders
      the gates (combinational circuits only - cycles are rejected);
    - gate types map to the default {!Ssta_cell.Library} cells by arity;
      arities beyond the library's widest cell are decomposed into balanced
      trees of 2-input cells with the inverting stage (if any) last, which
      preserves the timing-graph character if not the exact gate count;
    - the writer emits the non-standard names [AOI21]/[OAI21]/[MAJ3] for
      library cells without a .bench primitive; the parser accepts them, so
      write/read round-trips. *)

val parse : name:string -> string -> Netlist.t
(** Raises [Failure] with a line-numbered message on syntax errors,
    undefined signals, redefinitions or cycles. *)

val to_string : Netlist.t -> string

val load : path:string -> Netlist.t
(** [name] is the file's basename without extension. *)

val save : Netlist.t -> path:string -> unit
