lib/circuit/gadgets.mli: Netlist Ssta_cell
