lib/circuit/gadgets.ml: Netlist Ssta_cell
