lib/circuit/ecc.mli: Netlist
