lib/circuit/placement.mli: Netlist Ssta_variation
