lib/circuit/iscas.ml: Array Ecc List Multiplier Priority Random_logic
