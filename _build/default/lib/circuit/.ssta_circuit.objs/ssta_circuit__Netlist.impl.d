lib/circuit/netlist.ml: Array Format List Printf Ssta_cell
