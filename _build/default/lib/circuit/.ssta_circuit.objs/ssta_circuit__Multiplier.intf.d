lib/circuit/multiplier.mli: Netlist
