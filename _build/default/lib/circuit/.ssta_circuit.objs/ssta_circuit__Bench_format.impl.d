lib/circuit/bench_format.ml: Array Buffer Filename Hashtbl In_channel List Netlist Out_channel Printf Queue Ssta_cell String
