lib/circuit/multiplier.ml: Array Gadgets Netlist Printf Ssta_cell
