lib/circuit/placement.ml: Array Netlist Ssta_variation
