lib/circuit/ecc.ml: Array Gadgets List Netlist Ssta_cell
