lib/circuit/random_logic.ml: Array Hashtbl Netlist Queue Ssta_cell Ssta_gauss
