lib/circuit/priority.ml: Array Gadgets Netlist Ssta_cell
