lib/circuit/netlist.mli: Format Ssta_cell
