lib/circuit/priority.mli: Netlist
