lib/circuit/adder.mli: Netlist
