lib/circuit/adder.ml: Array Gadgets Netlist Printf Ssta_cell
