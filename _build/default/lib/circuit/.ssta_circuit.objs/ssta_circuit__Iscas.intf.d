lib/circuit/iscas.mli: Netlist
