lib/circuit/random_logic.mli: Netlist
