(** Adder generators (used by the examples and as additional structural
    workloads): ripple-carry and carry-select architectures over the shared
    {!Gadgets} adder cells. *)

val ripple : ?name:string -> bits:int -> unit -> Netlist.t
(** [2*bits + 1] inputs (a, b, carry-in), [bits + 1] outputs (sum, carry). *)

val carry_select : ?name:string -> bits:int -> block:int -> unit -> Netlist.t
(** Carry-select adder with [block]-bit blocks: each block computes both
    carry polarities with ripple chains and multiplexes on the incoming
    carry.  Same interface as {!ripple}; shallower but larger - a natural
    workload for comparing delay distributions. *)
