(* Property-based tests on randomly generated timing DAGs: reduction and
   criticality invariants that must hold for any graph, not just the
   benchmarks. *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph
module Rng = Ssta_gauss.Rng

let dims = { Form.n_globals = 2; n_pcs = 4 }

(* A random connected-ish DAG: every non-root vertex has 1-3 fanins drawn
   from earlier vertices; roots are inputs, sinks are outputs. *)
let random_dag seed =
  let rng = Rng.create ~seed in
  let n = 4 + Rng.int rng 36 in
  let n_roots = 1 + Rng.int rng (max 1 (n / 4)) in
  let edges = ref [] in
  for v = n_roots to n - 1 do
    let fanins = 1 + Rng.int rng 3 in
    let seen = Hashtbl.create 4 in
    for _ = 1 to fanins do
      let s = Rng.int rng v in
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.replace seen s ();
        edges := (s, v) :: !edges
      end
    done
  done;
  let edges = Array.of_list (List.rev !edges) in
  let has_fanout = Array.make n false and has_fanin = Array.make n false in
  Array.iter
    (fun (s, d) ->
      has_fanout.(s) <- true;
      has_fanin.(d) <- true)
    edges;
  let inputs = ref [] and outputs = ref [] in
  for v = 0 to n - 1 do
    if not has_fanin.(v) then inputs := v :: !inputs;
    if not has_fanout.(v) then outputs := v :: !outputs
  done;
  let g =
    Tgraph.make ~n_vertices:n ~edges
      ~inputs:(Array.of_list (List.rev !inputs))
      ~outputs:(Array.of_list (List.rev !outputs))
  in
  let forms =
    Array.init (Tgraph.n_edges g) (fun _ ->
        let mean = 5.0 +. (20.0 *. Rng.uniform rng) in
        Form.make ~mean
          ~globals:(Array.init 2 (fun _ -> 0.04 *. mean *. Rng.uniform rng))
          ~pcs:(Array.init 4 (fun _ -> 0.04 *. mean *. Rng.uniform rng))
          ~rand:(0.02 *. mean))
  in
  (g, forms)

let io_delays g forms =
  Array.map
    (fun i ->
      let arr = H.Propagate.forward g ~forms ~sources:[| i |] in
      Array.map (fun o -> arr.(o)) g.Tgraph.outputs)
    g.Tgraph.inputs

let prop_reduction_preserves_io seed =
  let g, forms = random_dag seed in
  let crit = H.Criticality.compute ~delta:0.01 g ~forms in
  let work = H.Reduce.of_graph g ~forms ~keep:crit.H.Criticality.keep in
  H.Reduce.reduce work;
  let rg, rforms, _, _ = H.Reduce.freeze work in
  if H.Reduce.n_live_edges work > Tgraph.n_edges g then false
  else begin
    let io = io_delays g forms in
    let rio = io_delays rg rforms in
    let ok = ref true in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j f ->
            match (f, rio.(i).(j)) with
            | None, None -> ()
            | Some a, Some b ->
                (* delta = 0.01 removes only paths that win < 1% of the
                   time; the IO delay moments must survive. *)
                if
                  abs_float (a.Form.mean -. b.Form.mean)
                  > 0.05 *. a.Form.mean
                then ok := false
            | Some _, None | None, Some _ -> ok := false)
          row)
      io;
    !ok
  end

let prop_reduce_monotone seed =
  let g, forms = random_dag seed in
  let keep = Array.make (Tgraph.n_edges g) true in
  let work = H.Reduce.of_graph g ~forms ~keep in
  H.Reduce.reduce work;
  let e1 = H.Reduce.n_live_edges work and v1 = H.Reduce.n_live_vertices work in
  (* Idempotence: a second fixpoint run changes nothing. *)
  H.Reduce.reduce work;
  e1 = H.Reduce.n_live_edges work
  && v1 = H.Reduce.n_live_vertices work
  && e1 <= Tgraph.n_edges g
  && v1 <= Tgraph.n_vertices g

let prop_forward_backward_consistent seed =
  let g, forms = random_dag seed in
  let ok = ref true in
  Array.iter
    (fun i ->
      let arr = H.Propagate.forward g ~forms ~sources:[| i |] in
      Array.iter
        (fun o ->
          let req = H.Propagate.backward_to g ~forms o in
          match (arr.(o), req.(i)) with
          | None, None -> ()
          | Some a, Some b ->
              (* Both are moment-matched approximations of the same max;
                 operation order differs, so allow a small drift. *)
              if abs_float (a.Form.mean -. b.Form.mean) > 0.03 *. a.Form.mean
              then ok := false
          | Some _, None | None, Some _ -> ok := false)
        g.Tgraph.outputs)
    g.Tgraph.inputs;
  !ok

let prop_min_leq_max seed =
  let g, forms = random_dag seed in
  let early = H.Min_analysis.forward_min_all g ~forms in
  let late = H.Propagate.forward_all g ~forms in
  let ok = ref true in
  Array.iteri
    (fun v e ->
      match (e, late.(v)) with
      | Some fe, Some fl ->
          if fe.Form.mean > fl.Form.mean +. 1e-9 then ok := false
      | None, None -> ()
      | _ -> ok := false)
    early;
  !ok

let prop_criticality_bounds seed =
  let g, forms = random_dag seed in
  let crit = H.Criticality.compute ~exact:true ~delta:0.05 g ~forms in
  Array.for_all (fun c -> c >= 0.0 && c <= 1.0) crit.H.Criticality.cm
  && Array.for_all Fun.id
       (Array.mapi
          (fun e k -> (not k) || crit.H.Criticality.cm.(e) >= 0.05)
          crit.H.Criticality.keep)

let prop_every_output_covered seed =
  (* After reduction with keep-all, every input-output pair reachable in
     the original graph stays reachable. *)
  let g, forms = random_dag seed in
  let keep = Array.make (Tgraph.n_edges g) true in
  let work = H.Reduce.of_graph g ~forms ~keep in
  H.Reduce.reduce work;
  let rg, _, _, _ = H.Reduce.freeze work in
  let ok = ref true in
  Array.iteri
    (fun ii i ->
      let reach = Tgraph.reachable_from g i in
      let rreach = Tgraph.reachable_from rg rg.Tgraph.inputs.(ii) in
      Array.iteri
        (fun jj o ->
          if reach.(o) <> rreach.(rg.Tgraph.outputs.(jj)) then ok := false)
        g.Tgraph.outputs)
    g.Tgraph.inputs;
  !ok

let test prop name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name QCheck.(int_range 0 100_000) prop)

let suites =
  [
    ( "property.random_dags",
      [
        test prop_reduction_preserves_io
          "criticality+reduction preserves IO delays";
        test prop_reduce_monotone "reduction shrinks and is idempotent";
        test prop_forward_backward_consistent
          "forward/backward passes agree on IO delays";
        test prop_min_leq_max "early arrival <= late arrival";
        test prop_criticality_bounds "criticality in [0,1], keep => >= delta";
        test prop_every_output_covered "reduction preserves reachability";
      ] );
  ]
