(* Tests for the cell library and its statistical delay model. *)

module Cell = Ssta_cell.Cell
module Library = Ssta_cell.Library

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_library_lookup () =
  Alcotest.(check string) "find nand2" "nand2" (Library.find "nand2").Cell.name;
  Alcotest.(check bool)
    "unknown raises" true
    (try
       ignore (Library.find "nand17");
       false
     with Not_found -> true);
  Alcotest.(check int) "library size" 16 (Array.length Library.default)

let test_cell_arities () =
  Alcotest.(check int) "inv arity" 1 Library.inv.Cell.n_inputs;
  Alcotest.(check int) "nand4 arity" 4 Library.nand4.Cell.n_inputs;
  Alcotest.(check int) "maj3 arity" 3 Library.maj3.Cell.n_inputs;
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Cell.name ^ " positive delay")
        true (c.Cell.d0 > 0.0);
      Alcotest.(check int)
        (c.Cell.name ^ " three sensitivities")
        3
        (Array.length c.Cell.sens))
    Library.default

let test_arc_delay_load () =
  let c = Library.nand2 in
  let d1 = Cell.arc_delay c ~fanout:1 ~pin:0 in
  let d3 = Cell.arc_delay c ~fanout:3 ~pin:0 in
  close "unloaded is d0" c.Cell.d0 d1;
  Alcotest.(check bool) "load increases delay" true (d3 > d1);
  close ~tol:1e-9 "linear load" (c.Cell.d0 *. 1.24) d3

let test_arc_delay_pin_skew () =
  let c = Library.nand3 in
  let p0 = Cell.arc_delay c ~fanout:1 ~pin:0 in
  let p2 = Cell.arc_delay c ~fanout:1 ~pin:2 in
  Alcotest.(check bool) "later pins slower" true (p2 > p0);
  Alcotest.(check bool)
    "pin out of range" true
    (try
       ignore (Cell.arc_delay c ~fanout:1 ~pin:3);
       false
     with Invalid_argument _ -> true)

let test_make_validation () =
  Alcotest.(check bool)
    "negative d0 rejected" true
    (try
       ignore
         (Cell.make ~name:"x" ~n_inputs:1 ~d0:(-1.0) ~sens:[||] ~load_sens:0.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "negative sens rejected" true
    (try
       ignore
         (Cell.make ~name:"x" ~n_inputs:1 ~d0:1.0 ~sens:[| -0.1 |]
            ~load_sens:0.0);
       false
     with Invalid_argument _ -> true)

let test_paper_sensitivities () =
  (* The baseline sensitivities follow the paper's variation setup. *)
  let s = Library.nand2.Cell.sens in
  close "sigma L" 0.157 s.(0);
  close "sigma Tox" 0.053 s.(1);
  close "sigma Vth" 0.044 s.(2);
  close "load sigma" 0.15 Library.nand2.Cell.load_sens

let suites =
  [
    ( "cell",
      [
        Alcotest.test_case "library lookup" `Quick test_library_lookup;
        Alcotest.test_case "arities and delays" `Quick test_cell_arities;
        Alcotest.test_case "load model" `Quick test_arc_delay_load;
        Alcotest.test_case "pin skew" `Quick test_arc_delay_pin_skew;
        Alcotest.test_case "validation" `Quick test_make_validation;
        Alcotest.test_case "paper sensitivities" `Quick
          test_paper_sensitivities;
      ] );
  ]
