(* Integration tests: the paper's three experiments end-to-end at reduced
   scale (the full-scale versions live in bench/main.ml). *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Build = Ssta_timing.Build
module Stats = Ssta_gauss.Stats

(* ------------------------------------------------------------------ *)
(* Table I (lite): extraction compression + accuracy vs Monte Carlo    *)
(* ------------------------------------------------------------------ *)

let table1_lite name max_merr max_verr =
  let nl = Ssta_circuit.Iscas.build name in
  let b = Build.characterize nl in
  let model = H.Extract.extract ~delta:0.05 b in
  let io = H.Timing_model.io_delays model in
  let mc =
    Ssta_mc.Allpairs_mc.run ~iterations:1500 ~seed:42
      (Ssta_mc.Sampler.ctx_of_build b)
  in
  let merr = ref 0.0 and verr = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j f ->
          match f with
          | Some f when mc.Ssta_mc.Allpairs_mc.reachable.(i).(j) ->
              let mm = mc.Ssta_mc.Allpairs_mc.means.(i).(j) in
              let ms = mc.Ssta_mc.Allpairs_mc.stds.(i).(j) in
              merr := Float.max !merr (abs_float (f.Form.mean -. mm) /. mm);
              verr := Float.max !verr (abs_float (Form.std f -. ms) /. ms)
          | _ -> ())
        row)
    io;
  let pe, pv = H.Timing_model.compression model in
  Alcotest.(check bool)
    (Printf.sprintf "%s compresses (pe=%.0f%%, pv=%.0f%%)" name (100. *. pe)
       (100. *. pv))
    true
    (pe < 0.6 && pv < 0.6);
  Alcotest.(check bool)
    (Printf.sprintf "%s merr %.2f%% < %.1f%%" name (100. *. !merr)
       (100. *. max_merr))
    true (!merr < max_merr);
  Alcotest.(check bool)
    (Printf.sprintf "%s verr %.2f%% < %.1f%%" name (100. *. !verr)
       (100. *. max_verr))
    true (!verr < max_verr)

(* MC noise at 1500 iterations puts a floor around 1% mean / 4% std; the
   thresholds leave headroom above the paper's 10k-iteration numbers. *)
let test_table1_c432 () = table1_lite "c432" 0.02 0.08
let test_table1_c499 () = table1_lite "c499" 0.02 0.08

(* ------------------------------------------------------------------ *)
(* Fig. 6 (lite): criticality histogram is bimodal                     *)
(* ------------------------------------------------------------------ *)

let test_fig6_lite () =
  (* c1908-like random logic shows the paper's bimodal shape; perfectly
     balanced circuits (c499's XOR trees) legitimately do not, because every
     path is statistically tied. *)
  let b = Build.characterize (Ssta_circuit.Iscas.build "c1908") in
  let _, crit = H.Extract.extract_with_criticality ~exact:true ~delta:0.05 b in
  let hist =
    Stats.histogram ~lo:0.0 ~hi:1.0 ~bins:20 crit.H.Criticality.cm
  in
  let total = Array.fold_left ( + ) 0 hist in
  Alcotest.(check int)
    "histogram covers all edges"
    (Array.length crit.H.Criticality.cm)
    total;
  (* Paper Fig. 6: mass concentrates in the extreme bins. *)
  let extreme = hist.(0) + hist.(1) + hist.(18) + hist.(19) in
  Alcotest.(check bool)
    (Printf.sprintf "extreme bins hold most mass (%d/%d)" extreme total)
    true
    (float_of_int extreme /. float_of_int total > 0.5)

(* ------------------------------------------------------------------ *)
(* Fig. 7 (lite): hierarchical CDF vs MC vs global-only                *)
(* ------------------------------------------------------------------ *)

let test_fig7_lite () =
  let b = Build.characterize (Ssta_circuit.Multiplier.make ~bits:6 ()) in
  let model = H.Extract.extract ~delta:0.05 b in
  let fp = H.Floorplan.mult_grid ~label:"m6" ~build:b ~model () in
  let dg = H.Design_grid.build fp in
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let glo = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Global_only in
  let ctx = H.Hier_analysis.flatten fp dg in
  let mc = Ssta_mc.Flat_mc.run ~iterations:2500 ~seed:7 ctx in
  let delays = mc.Ssta_mc.Flat_mc.delays in
  let mc_mean = Stats.mean delays and mc_std = Stats.std delays in
  let d = rep.H.Hier_analysis.delay in
  (* Proposed method tracks MC... *)
  Alcotest.(check bool)
    (Printf.sprintf "mean: hier %.1f vs mc %.1f" d.Form.mean mc_mean)
    true
    (abs_float (d.Form.mean -. mc_mean) /. mc_mean < 0.04);
  Alcotest.(check bool)
    (Printf.sprintf "std: hier %.1f vs mc %.1f" (Form.std d) mc_std)
    true
    (abs_float (Form.std d -. mc_std) /. mc_std < 0.15);
  (* ...and the global-only baseline visibly does not (paper's point). *)
  let gstd = Form.std glo.H.Hier_analysis.delay in
  Alcotest.(check bool)
    (Printf.sprintf "global-only std %.1f below hier std %.1f" gstd
       (Form.std d))
    true
    (gstd < 0.92 *. Form.std d);
  (* CDF agreement at a few quantiles. *)
  List.iter
    (fun p ->
      let q_mc = Stats.quantile delays p in
      let q_h = Form.quantile d p in
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f: %.1f vs %.1f" p q_h q_mc)
        true
        (abs_float (q_h -. q_mc) /. q_mc < 0.05))
    [ 0.1; 0.5; 0.9 ]

let test_fig7_speedup () =
  (* Hierarchical propagation must beat per-iteration flattened MC by a wide
     margin; at full c6288 scale the bench shows 2-3 orders of magnitude. *)
  let b = Build.characterize (Ssta_circuit.Multiplier.make ~bits:6 ()) in
  let model = H.Extract.extract ~delta:0.05 b in
  let fp = H.Floorplan.mult_grid ~label:"m6" ~build:b ~model () in
  let dg = H.Design_grid.build fp in
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let ctx = H.Hier_analysis.flatten fp dg in
  let mc = Ssta_mc.Flat_mc.run ~iterations:1000 ~seed:3 ctx in
  Alcotest.(check bool)
    (Printf.sprintf "hier %.3fs much faster than MC %.3fs"
       rep.H.Hier_analysis.wall_seconds mc.Ssta_mc.Flat_mc.wall_seconds)
    true
    (rep.H.Hier_analysis.wall_seconds < mc.Ssta_mc.Flat_mc.wall_seconds)

(* ------------------------------------------------------------------ *)
(* Full pipeline reproducibility                                        *)
(* ------------------------------------------------------------------ *)

let test_pipeline_deterministic () =
  let run () =
    let b = Build.characterize (Ssta_circuit.Iscas.build "c432") in
    let model = H.Extract.extract ~delta:0.05 b in
    let io = H.Timing_model.io_delays model in
    match io.(0) |> Array.to_list |> List.filter_map Fun.id with
    | f :: _ -> (f.Form.mean, Form.std f)
    | [] -> (0.0, 0.0)
  in
  let m1, s1 = run () and m2, s2 = run () in
  Alcotest.(check (float 0.0)) "deterministic mean" m1 m2;
  Alcotest.(check (float 0.0)) "deterministic std" s1 s2

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "Table I lite: c432" `Slow test_table1_c432;
        Alcotest.test_case "Table I lite: c499" `Slow test_table1_c499;
        Alcotest.test_case "Fig 6 lite: bimodal histogram" `Slow
          test_fig6_lite;
        Alcotest.test_case "Fig 7 lite: CDF vs MC" `Slow test_fig7_lite;
        Alcotest.test_case "Fig 7: speedup" `Slow test_fig7_speedup;
        Alcotest.test_case "pipeline deterministic" `Quick
          test_pipeline_deterministic;
      ] );
  ]
