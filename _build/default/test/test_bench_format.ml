(* Tests for the ISCAS85 .bench reader/writer. *)

module BF = Ssta_circuit.Bench_format
module N = Ssta_circuit.Netlist

let c17 =
  {|# c17 (the classic 6-gate example)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
|}

let test_parse_c17 () =
  let nl = BF.parse ~name:"c17" c17 in
  N.validate nl;
  Alcotest.(check int) "pis" 5 (N.n_pis nl);
  Alcotest.(check int) "pos" 2 (N.n_pos nl);
  Alcotest.(check int) "gates" 6 (N.n_gates nl);
  Alcotest.(check int) "edges" 12 (N.n_edges nl);
  Alcotest.(check int) "depth" 3 (N.depth nl)

let test_parse_out_of_order () =
  (* Definitions before their fanins are defined - legal in .bench. *)
  let text =
    "INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = AND(a, a)\n"
  in
  let nl = BF.parse ~name:"ooo" text in
  N.validate nl;
  Alcotest.(check int) "gates" 2 (N.n_gates nl);
  Alcotest.(check int) "depth" 2 (N.depth nl)

let test_parse_wide_gates () =
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(z)\n\
     z = NAND(a, b, c, d, e)\n"
  in
  let nl = BF.parse ~name:"wide" text in
  N.validate nl;
  (* 5-input NAND decomposes into an AND tree plus a final NAND2. *)
  Alcotest.(check bool) "decomposed" true (N.n_gates nl > 1);
  Alcotest.(check int) "single output" 1 (N.n_pos nl)

let test_parse_rejects () =
  let cases =
    [
      ("missing inputs", "OUTPUT(z)\nz = NOT(z)\n");
      ("undefined signal", "INPUT(a)\nOUTPUT(z)\nz = AND(a, q)\n");
      ("cycle", "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)\n");
      ("redefinition", "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUFF(a)\n");
      ("input redefined", "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n");
      ("syntax", "INPUT(a)\nOUTPUT(z)\nz NOT a\n");
    ]
  in
  List.iter
    (fun (name, text) ->
      Alcotest.(check bool)
        name true
        (try
           ignore (BF.parse ~name:"bad" text);
           false
         with Failure _ -> true))
    cases

let test_roundtrip_generated () =
  (* Writer -> parser round-trips our generated circuits structurally. *)
  List.iter
    (fun nl ->
      let nl' = BF.parse ~name:nl.N.name (BF.to_string nl) in
      N.validate nl';
      Alcotest.(check int) (nl.N.name ^ " pis") (N.n_pis nl) (N.n_pis nl');
      Alcotest.(check int) (nl.N.name ^ " pos") (N.n_pos nl) (N.n_pos nl');
      Alcotest.(check int) (nl.N.name ^ " gates") (N.n_gates nl) (N.n_gates nl');
      Alcotest.(check int) (nl.N.name ^ " edges") (N.n_edges nl) (N.n_edges nl');
      Alcotest.(check int) (nl.N.name ^ " depth") (N.depth nl) (N.depth nl'))
    [
      Ssta_circuit.Iscas.build "c432";
      Ssta_circuit.Iscas.build "c499";
      Ssta_circuit.Adder.carry_select ~bits:8 ~block:2 ();
    ]

let test_roundtrip_preserves_timing () =
  (* The round-tripped netlist has the same SSTA results up to gate
     (re)ordering: the parser's topological sort may renumber gates, which
     moves placement coordinates and hence grid assignments slightly. *)
  let nl = Ssta_circuit.Iscas.build "c432" in
  let nl' = BF.parse ~name:"c432" (BF.to_string nl) in
  let delay n =
    let b = Ssta_timing.Build.characterize n in
    let arr =
      Hier_ssta.Propagate.forward_all b.Ssta_timing.Build.graph
        ~forms:b.Ssta_timing.Build.forms
    in
    match
      Hier_ssta.Propagate.max_over arr
        b.Ssta_timing.Build.graph.Ssta_timing.Tgraph.outputs
    with
    | Some f -> (f.Ssta_canonical.Form.mean, Ssta_canonical.Form.std f)
    | None -> Alcotest.fail "unreachable"
  in
  let m, s = delay nl and m', s' = delay nl' in
  Alcotest.(check (float (0.002 *. m))) "mean preserved" m m';
  Alcotest.(check (float (0.02 *. s))) "sigma preserved" s s'

let test_file_io () =
  let nl = Ssta_circuit.Adder.ripple ~bits:4 () in
  let path = Filename.temp_file "hssta" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      BF.save nl ~path;
      let nl' = BF.load ~path in
      Alcotest.(check int) "gates" (N.n_gates nl) (N.n_gates nl'))

let suites =
  [
    ( "circuit.bench_format",
      [
        Alcotest.test_case "parse c17" `Quick test_parse_c17;
        Alcotest.test_case "out-of-order defs" `Quick test_parse_out_of_order;
        Alcotest.test_case "wide gates" `Quick test_parse_wide_gates;
        Alcotest.test_case "rejects malformed" `Quick test_parse_rejects;
        Alcotest.test_case "roundtrip structure" `Quick
          test_roundtrip_generated;
        Alcotest.test_case "roundtrip timing" `Quick
          test_roundtrip_preserves_timing;
        Alcotest.test_case "file io" `Quick test_file_io;
      ] );
  ]
