(* Tests for the Monte Carlo engines: the golden reference every SSTA result
   in the paper is validated against. *)

module Sampler = Ssta_mc.Sampler
module Flat_mc = Ssta_mc.Flat_mc
module Allpairs_mc = Ssta_mc.Allpairs_mc
module Build = Ssta_timing.Build
module Tgraph = Ssta_timing.Tgraph
module Sta = Ssta_timing.Sta
module Form = Ssta_canonical.Form
module Stats = Ssta_gauss.Stats
module Rng = Ssta_gauss.Rng

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let small_build () = Build.characterize (Ssta_circuit.Adder.ripple ~bits:4 ())

let test_sampler_field_moments () =
  let b = small_build () in
  let rng = Rng.create ~seed:31 in
  let acc = Stats.Welford.create () in
  for _ = 1 to 5_000 do
    let s = Sampler.draw b.Build.basis rng in
    Array.iter (fun f -> Stats.Welford.add acc f.(0)) s.Sampler.fields
  done;
  close ~tol:0.05 "field mean" 0.0 (Stats.Welford.mean acc);
  close ~tol:0.05 "field std" 1.0 (Stats.Welford.std acc)

let test_flat_mc_determinism () =
  let b = small_build () in
  let ctx = Sampler.ctx_of_build b in
  let r1 = Flat_mc.run ~iterations:50 ~seed:5 ctx in
  let r2 = Flat_mc.run ~iterations:50 ~seed:5 ctx in
  Alcotest.(check (array (float 1e-12)))
    "same seed, same delays" r1.Flat_mc.delays r2.Flat_mc.delays;
  let r3 = Flat_mc.run ~iterations:50 ~seed:6 ctx in
  Alcotest.(check bool)
    "different seed differs" true
    (r1.Flat_mc.delays <> r3.Flat_mc.delays)

let test_flat_mc_matches_ssta_moments () =
  (* Design-delay sample moments should be close to the canonical SSTA
     moments (both approximate the same truth). *)
  let b = small_build () in
  let ctx = Sampler.ctx_of_build b in
  let r = Flat_mc.run ~iterations:4_000 ~seed:11 ctx in
  let arr =
    Hier_ssta.Propagate.forward_all b.Build.graph ~forms:b.Build.forms
  in
  match
    Hier_ssta.Propagate.max_over arr b.Build.graph.Tgraph.outputs
  with
  | None -> Alcotest.fail "no output reachable"
  | Some f ->
      let mean = Stats.mean r.Flat_mc.delays in
      let std = Stats.std r.Flat_mc.delays in
      close ~tol:(0.03 *. mean) "mc mean vs ssta" mean f.Form.mean;
      close ~tol:(0.15 *. std) "mc std vs ssta" std (Form.std f)

let test_flat_mc_positive () =
  let b = small_build () in
  let ctx = Sampler.ctx_of_build b in
  let r = Flat_mc.run ~iterations:200 ~seed:3 ctx in
  Array.iter
    (fun d -> Alcotest.(check bool) "positive delay" true (d > 0.0))
    r.Flat_mc.delays

let test_allpairs_reachability () =
  let b = small_build () in
  let ctx = Sampler.ctx_of_build b in
  let r = Allpairs_mc.run ~iterations:20 ~seed:2 ctx in
  let g = b.Build.graph in
  Array.iteri
    (fun i input ->
      let reach = Tgraph.reachable_from g input in
      Array.iteri
        (fun j out ->
          Alcotest.(check bool)
            (Printf.sprintf "pair (%d,%d) reachability" i j)
            reach.(out)
            r.Allpairs_mc.reachable.(i).(j))
        g.Tgraph.outputs)
    g.Tgraph.inputs

let test_allpairs_vs_nominal () =
  (* MC pair means should sit near the nominal longest-path delays (within
     a few sigma of process spread). *)
  let b = small_build () in
  let ctx = Sampler.ctx_of_build b in
  let r = Allpairs_mc.run ~iterations:2_000 ~seed:13 ctx in
  let g = b.Build.graph in
  let weights = Build.nominal_weights b in
  Array.iteri
    (fun i input ->
      let arr = Sta.forward_from g ~weights input in
      Array.iteri
        (fun j out ->
          if r.Allpairs_mc.reachable.(i).(j) then begin
            let nominal = arr.(out) in
            let mc = r.Allpairs_mc.means.(i).(j) in
            if abs_float (mc -. nominal) > 0.15 *. nominal then
              Alcotest.fail
                (Printf.sprintf "pair (%d,%d): mc %g vs nominal %g" i j mc
                   nominal)
          end)
        g.Tgraph.outputs)
    g.Tgraph.inputs

let test_allpairs_unreachable_nan () =
  let b = small_build () in
  let ctx = Sampler.ctx_of_build b in
  let r = Allpairs_mc.run ~iterations:10 ~seed:1 ctx in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j reachable ->
          if not reachable then begin
            Alcotest.(check bool)
              "mean is nan" true
              (Float.is_nan r.Allpairs_mc.means.(i).(j));
            Alcotest.(check bool)
              "std is nan" true
              (Float.is_nan r.Allpairs_mc.stds.(i).(j))
          end)
        row)
    r.Allpairs_mc.reachable

let test_mc_rejects_bad_iterations () =
  let b = small_build () in
  let ctx = Sampler.ctx_of_build b in
  Alcotest.(check bool)
    "zero iterations rejected" true
    (try
       ignore (Flat_mc.run ~iterations:0 ~seed:1 ctx);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "mc",
      [
        Alcotest.test_case "sampler field moments" `Slow
          test_sampler_field_moments;
        Alcotest.test_case "flat mc determinism" `Quick
          test_flat_mc_determinism;
        Alcotest.test_case "flat mc vs ssta moments" `Slow
          test_flat_mc_matches_ssta_moments;
        Alcotest.test_case "flat mc positive" `Quick test_flat_mc_positive;
        Alcotest.test_case "allpairs reachability" `Quick
          test_allpairs_reachability;
        Alcotest.test_case "allpairs vs nominal" `Slow test_allpairs_vs_nominal;
        Alcotest.test_case "allpairs nan for unconnected" `Quick
          test_allpairs_unreachable_nan;
        Alcotest.test_case "iteration validation" `Quick
          test_mc_rejects_bad_iterations;
      ] );
  ]
