(* Tests for the variation model: correlation function, die partition and
   the PCA basis assembling canonical coefficients (paper Sections II, VI). *)

module Correlation = Ssta_variation.Correlation
module Tile = Ssta_variation.Tile
module Grid = Ssta_variation.Grid
module Basis = Ssta_variation.Basis
module Param = Ssta_variation.Param
module Form = Ssta_canonical.Form
module Mat = Ssta_linalg.Mat
module Rng = Ssta_gauss.Rng
module Stats = Ssta_gauss.Stats

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let corr = Correlation.default

(* ------------------------------------------------------------------ *)
(* Correlation model                                                   *)
(* ------------------------------------------------------------------ *)

let test_corr_paper_values () =
  (* Paper Section VI: neighbor correlation 0.92, decaying to 0.42 at
     distance 15, only global (0.42) beyond. *)
  close "rho(1)" 0.92 (Correlation.total_correlation corr 1.0);
  close ~tol:1e-6 "rho(15)" 0.42 (Correlation.total_correlation corr 15.0);
  close "rho(16)" 0.42 (Correlation.total_correlation corr 16.0);
  close "rho(100)" 0.42 (Correlation.total_correlation corr 100.0);
  close "variances sum to 1" 1.0
    (corr.Correlation.var_global +. corr.Correlation.var_local
   +. corr.Correlation.var_random)

let test_corr_monotone () =
  let prev = ref 2.0 in
  for d = 0 to 40 do
    let v = Correlation.total_correlation corr (float_of_int d) in
    Alcotest.(check bool) (Printf.sprintf "monotone at %d" d) true (v <= !prev);
    prev := v
  done

let test_corr_local () =
  close "local var at 0" corr.Correlation.var_local
    (Correlation.local_covariance corr 0.0);
  close ~tol:1e-9 "local cov at 1" (0.92 -. 0.42)
    (Correlation.local_covariance corr 1.0);
  close ~tol:1e-6 "local cov at 15" 0.0 (Correlation.local_covariance corr 15.0);
  close "local cov beyond" 0.0 (Correlation.local_covariance corr 20.0);
  close "normalized at 0" 1.0 (Correlation.normalized_local_correlation corr 0.0)

let test_corr_validation () =
  Alcotest.(check bool)
    "bad rho ordering rejected" true
    (try
       ignore (Correlation.make ~rho_near:0.4 ~rho_far:0.5 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "oversized random rejected" true
    (try
       ignore (Correlation.make ~var_random:0.7 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Tiles and grids                                                     *)
(* ------------------------------------------------------------------ *)

let test_tile_basics () =
  let t = Tile.make ~x0:0.0 ~y0:0.0 ~x1:4.0 ~y1:2.0 in
  close "area" 8.0 (Tile.area t);
  let cx, cy = Tile.center t in
  close "cx" 2.0 cx;
  close "cy" 1.0 cy;
  Alcotest.(check bool) "contains" true (Tile.contains t (3.9, 1.9));
  Alcotest.(check bool) "half open" false (Tile.contains t (4.0, 1.0));
  let t2 = Tile.translate t ~dx:10.0 ~dy:0.0 in
  close "distance" 10.0 (Tile.center_distance t t2);
  Alcotest.(check bool) "no overlap" false (Tile.overlaps t t2);
  Alcotest.(check bool) "self overlap" true (Tile.overlaps t t)

let test_grid_cover () =
  let g = Grid.make ~x0:0.0 ~y0:0.0 ~width:25.0 ~height:17.0 ~pitch:10.0 in
  Alcotest.(check int) "tile count" (3 * 2) (Grid.n_tiles g);
  (* Every point belongs to the tile that contains it. *)
  let rng = Rng.create ~seed:42 in
  for _ = 1 to 500 do
    let x = Rng.uniform rng *. 25.0 and y = Rng.uniform rng *. 17.0 in
    let i = Grid.index_of_point g (x, y) in
    Alcotest.(check bool) "owning tile" true
      (Tile.contains g.Grid.tiles.(i) (x, y))
  done;
  Alcotest.(check bool)
    "outside rejected" true
    (try
       ignore (Grid.index_of_point g (30.0, 1.0));
       false
     with Invalid_argument _ -> true)

let test_grid_clipping () =
  let g = Grid.make ~x0:0.0 ~y0:0.0 ~width:25.0 ~height:17.0 ~pitch:10.0 in
  (* The last column/row tiles are clipped to the die boundary. *)
  let last = g.Grid.tiles.(Grid.n_tiles g - 1) in
  close "clip x" 25.0 last.Tile.x1;
  close "clip y" 17.0 last.Tile.y1

let test_pitch_budget () =
  let pitch = Grid.pitch_for_cell_budget ~n_cells:500 ~cells_per_tile:100
      ~cell_pitch:1.0 in
  close "pitch 10" 10.0 pitch

(* ------------------------------------------------------------------ *)
(* Basis                                                               *)
(* ------------------------------------------------------------------ *)

let make_basis ?(nx = 3) ?(ny = 3) () =
  let g =
    Grid.make ~x0:0.0 ~y0:0.0
      ~width:(10.0 *. float_of_int nx)
      ~height:(10.0 *. float_of_int ny)
      ~pitch:10.0
  in
  Basis.make ~n_params:(Param.count Param.defaults) ~corr ~pitch:10.0
    g.Grid.tiles

let test_basis_dims () =
  let b = make_basis () in
  Alcotest.(check int) "tiles" 9 (Basis.n_tiles b);
  Alcotest.(check int) "globals" 3 b.Basis.dims.Form.n_globals;
  Alcotest.(check int) "pcs" 27 b.Basis.dims.Form.n_pcs

let test_delay_form_variance () =
  let b = make_basis () in
  let sens = [| 0.157; 0.053; 0.044 |] in
  let nominal = 100.0 in
  let f = Basis.delay_form b ~nominal ~tile:4 ~sens ~extra_random_sigma:15.0 in
  close "mean is nominal" nominal f.Form.mean;
  (* Total variance: nominal^2 * sum_k s_k^2 * (vg + vl + vr) + load^2,
     as long as PCA reproduces unit tile variance (eigenvalue clamping can
     only remove a tiny amount). *)
  let s2 = Array.fold_left (fun acc s -> acc +. (s *. s)) 0.0 sens in
  let expected = (nominal *. nominal *. s2) +. (15.0 *. 15.0) in
  (* Tolerance covers the documented PCA eigenvalue clamping of the
     truncated correlation matrix (a few tenths of a percent). *)
  close ~tol:(5e-3 *. expected) "variance decomposition" expected
    (Form.variance f)

let test_delay_form_correlation_by_distance () =
  (* Two same-sensitivity delays: nearby tiles correlate more than far
     tiles, and the analytic correlation matches the correlation model. *)
  let nx = 20 in
  let b = make_basis ~nx ~ny:1 () in
  let sens = [| 0.157; 0.053; 0.044 |] in
  let f0 = Basis.delay_form b ~nominal:100.0 ~tile:0 ~sens ~extra_random_sigma:0.0 in
  let f1 = Basis.delay_form b ~nominal:100.0 ~tile:1 ~sens ~extra_random_sigma:0.0 in
  let f15 = Basis.delay_form b ~nominal:100.0 ~tile:15 ~sens ~extra_random_sigma:0.0 in
  let f19 = Basis.delay_form b ~nominal:100.0 ~tile:19 ~sens ~extra_random_sigma:0.0 in
  let corr_of a b' = Form.covariance a b' /. (Form.std a *. Form.std b') in
  (* With identical sensitivities the nominal and sensitivity factors cancel
     and the form correlation at tile distance d >= 1 is exactly the total
     parameter correlation rho(d) (globals shared, locals by distance,
     randoms independent and counted in both variances). *)
  let expected d = Correlation.total_correlation corr d in
  close ~tol:0.02 "corr at d=1" (expected 1.0) (corr_of f0 f1);
  close ~tol:0.02 "corr at d=15" (expected 15.0) (corr_of f0 f15);
  close ~tol:0.02 "corr at d=19" (expected 19.0) (corr_of f0 f19);
  Alcotest.(check bool) "monotone" true (corr_of f0 f1 > corr_of f0 f15)

let test_sampled_fields_covariance () =
  let b = make_basis ~nx:4 ~ny:1 () in
  let rng = Rng.create ~seed:5 in
  let n = 30_000 in
  let acc01 = ref 0.0 and acc03 = ref 0.0 and var0 = ref 0.0 in
  for _ = 1 to n do
    let fields = Basis.sample_local_fields b rng in
    let w = fields.(0) in
    acc01 := !acc01 +. (w.(0) *. w.(1));
    acc03 := !acc03 +. (w.(0) *. w.(3));
    var0 := !var0 +. (w.(0) *. w.(0))
  done;
  let n = float_of_int n in
  close ~tol:0.03 "field var" 1.0 (!var0 /. n);
  close ~tol:0.03 "field cov d=1"
    (Correlation.normalized_local_correlation corr 1.0)
    (!acc01 /. n);
  close ~tol:0.03 "field cov d=3"
    (Correlation.normalized_local_correlation corr 3.0)
    (!acc03 /. n)

let test_basis_local_cov_matrix () =
  let b = make_basis ~nx:2 ~ny:2 () in
  let c = Basis.local_covariance_matrix b in
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric c);
  close "unit diagonal" 1.0 (Mat.get c 0 0);
  (* Neighbors at distance 1, diagonal at sqrt 2. *)
  close ~tol:1e-9 "neighbor entry"
    (Correlation.normalized_local_correlation corr 1.0)
    (Mat.get c 0 1);
  close ~tol:1e-9 "diagonal entry"
    (Correlation.normalized_local_correlation corr (sqrt 2.0))
    (Mat.get c 0 3)

let test_tile_of_point () =
  let b = make_basis () in
  Alcotest.(check int) "origin tile" 0 (Basis.tile_of_point b (1.0, 1.0));
  Alcotest.(check int) "last tile" 8 (Basis.tile_of_point b (25.0, 25.0))

let suites =
  [
    ( "variation.correlation",
      [
        Alcotest.test_case "paper values" `Quick test_corr_paper_values;
        Alcotest.test_case "monotone decay" `Quick test_corr_monotone;
        Alcotest.test_case "local covariance" `Quick test_corr_local;
        Alcotest.test_case "validation" `Quick test_corr_validation;
      ] );
    ( "variation.geometry",
      [
        Alcotest.test_case "tile basics" `Quick test_tile_basics;
        Alcotest.test_case "grid covers die" `Quick test_grid_cover;
        Alcotest.test_case "grid clipping" `Quick test_grid_clipping;
        Alcotest.test_case "pitch for budget" `Quick test_pitch_budget;
      ] );
    ( "variation.basis",
      [
        Alcotest.test_case "dimensions" `Quick test_basis_dims;
        Alcotest.test_case "delay form variance" `Quick
          test_delay_form_variance;
        Alcotest.test_case "correlation by distance" `Quick
          test_delay_form_correlation_by_distance;
        Alcotest.test_case "sampled field covariance" `Slow
          test_sampled_fields_covariance;
        Alcotest.test_case "local covariance matrix" `Quick
          test_basis_local_cov_matrix;
        Alcotest.test_case "tile of point" `Quick test_tile_of_point;
      ] );
  ]
