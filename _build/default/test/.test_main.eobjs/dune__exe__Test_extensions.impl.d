test/test_extensions.ml: Alcotest Array Filename Float Fun Hier_ssta Lazy List Printf Ssta_canonical Ssta_circuit Ssta_gauss Ssta_mc Ssta_timing Ssta_variation String Sys
