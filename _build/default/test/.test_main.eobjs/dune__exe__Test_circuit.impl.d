test/test_circuit.ml: Alcotest Array List Printf Ssta_cell Ssta_circuit Ssta_variation
