test/test_gauss.ml: Alcotest Array Float Fun Gen List Printf QCheck QCheck_alcotest Ssta_gauss
