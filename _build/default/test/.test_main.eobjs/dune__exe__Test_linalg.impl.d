test/test_linalg.ml: Alcotest Array Printf QCheck QCheck_alcotest Ssta_gauss Ssta_linalg
