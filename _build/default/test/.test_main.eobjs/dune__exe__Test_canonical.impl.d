test/test_canonical.ml: Alcotest Array Float Format List QCheck QCheck_alcotest Ssta_canonical Ssta_gauss
