test/test_integration.ml: Alcotest Array Float Fun Hier_ssta List Printf Ssta_canonical Ssta_circuit Ssta_gauss Ssta_mc Ssta_timing
