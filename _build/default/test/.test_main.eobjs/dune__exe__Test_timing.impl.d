test/test_timing.ml: Alcotest Array List Printf Ssta_canonical Ssta_cell Ssta_circuit Ssta_gauss Ssta_mc Ssta_timing Ssta_variation String
