test/test_property.ml: Array Fun Hashtbl Hier_ssta List QCheck QCheck_alcotest Ssta_canonical Ssta_gauss Ssta_timing
