test/test_model.ml: Alcotest Array Float Hier_ssta List Printf Ssta_canonical Ssta_circuit Ssta_timing
