test/test_cell.ml: Alcotest Array Ssta_cell
