test/test_mc.ml: Alcotest Array Float Hier_ssta Printf Ssta_canonical Ssta_circuit Ssta_gauss Ssta_mc Ssta_timing
