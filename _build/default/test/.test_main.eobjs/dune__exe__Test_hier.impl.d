test/test_hier.ml: Alcotest Array Float Hier_ssta Lazy List Printf Ssta_canonical Ssta_circuit Ssta_gauss Ssta_linalg Ssta_mc Ssta_timing Ssta_variation
