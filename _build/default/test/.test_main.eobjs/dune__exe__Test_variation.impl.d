test/test_variation.ml: Alcotest Array Printf Ssta_canonical Ssta_gauss Ssta_linalg Ssta_variation
