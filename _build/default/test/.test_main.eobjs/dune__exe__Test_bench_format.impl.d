test/test_bench_format.ml: Alcotest Filename Fun Hier_ssta List Ssta_canonical Ssta_circuit Ssta_timing Sys
