(* Tests for the paper's second contribution: hierarchical SSTA with
   independent-variable replacement (paper Section V). *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Basis = Ssta_variation.Basis
module Tile = Ssta_variation.Tile
module Mat = Ssta_linalg.Mat
module Build = Ssta_timing.Build
module Stats = Ssta_gauss.Stats

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* A small module that is fast to characterize and extract. *)
let module_build =
  lazy (Build.characterize (Ssta_circuit.Multiplier.make ~bits:5 ()))

let module_model = lazy (H.Extract.extract ~delta:0.05 (Lazy.force module_build))

let floorplan =
  lazy
    (H.Floorplan.mult_grid ~label:"m" ~build:(Lazy.force module_build)
       ~model:(Lazy.force module_model) ())

let design_grid = lazy (H.Design_grid.build (Lazy.force floorplan))

(* ------------------------------------------------------------------ *)
(* Floorplan                                                           *)
(* ------------------------------------------------------------------ *)

let test_mult_grid_structure () =
  let fp = Lazy.force floorplan in
  let model = Lazy.force module_model in
  let n_in = H.Timing_model.n_inputs model in
  Alcotest.(check int) "four instances" 4 (Array.length fp.H.Floorplan.instances);
  Alcotest.(check int)
    "design PIs = 2 modules' inputs" (2 * n_in)
    (Array.length fp.H.Floorplan.ext_inputs);
  Alcotest.(check int)
    "design POs = 2 modules' outputs" (2 * n_in)
    (Array.length fp.H.Floorplan.ext_outputs);
  Alcotest.(check int)
    "connections" (2 * n_in)
    (Array.length fp.H.Floorplan.connections)

let test_floorplan_rejects_overlap () =
  let b = Lazy.force module_build in
  let model = Lazy.force module_model in
  let die = model.H.Timing_model.die in
  let big =
    Tile.make ~x0:0.0 ~y0:0.0 ~x1:(4.0 *. Tile.width die)
      ~y1:(4.0 *. Tile.height die)
  in
  let inst origin label =
    { H.Floorplan.label; build = Some b; model; origin }
  in
  Alcotest.(check bool)
    "overlap rejected" true
    (try
       ignore
         (H.Floorplan.create ~die:big
            ~instances:[| inst (0.0, 0.0) "a"; inst (1.0, 1.0) "b" |]
            ~connections:[||]);
       false
     with Failure _ -> true)

let test_floorplan_rejects_outside () =
  let b = Lazy.force module_build in
  let model = Lazy.force module_model in
  let small = Tile.make ~x0:0.0 ~y0:0.0 ~x1:1.0 ~y1:1.0 in
  Alcotest.(check bool)
    "outside die rejected" true
    (try
       ignore
         (H.Floorplan.create ~die:small
            ~instances:
              [| { H.Floorplan.label = "a"; build = Some b; model; origin = (0.0, 0.0) } |]
            ~connections:[||]);
       false
     with Failure _ -> true)

let test_floorplan_rejects_double_drive () =
  let b = Lazy.force module_build in
  let model = Lazy.force module_model in
  let die = model.H.Timing_model.die in
  let w = Tile.width die and h = Tile.height die in
  let big = Tile.make ~x0:0.0 ~y0:0.0 ~x1:(3.0 *. w) ~y1:h in
  let inst origin label = { H.Floorplan.label; build = Some b; model; origin } in
  let p i q = { H.Floorplan.inst = i; port = q } in
  Alcotest.(check bool)
    "double-driven input rejected" true
    (try
       ignore
         (H.Floorplan.create ~die:big
            ~instances:[| inst (0.0, 0.0) "a"; inst (w, 0.0) "b"; inst (2.0 *. w, 0.0) "c" |]
            ~connections:[| (p 0 0, p 2 0); (p 1 0, p 2 0) |]);
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Design grid: the paper's key sub-block property                     *)
(* ------------------------------------------------------------------ *)

let test_design_grid_subblock_property () =
  (* The design-level covariance restricted to one instance's tiles must
     equal the module covariance C (paper eq. (17)); this is what makes the
     replacement sound. *)
  let fp = Lazy.force floorplan in
  let dg = Lazy.force design_grid in
  let b = Lazy.force module_build in
  let c_mod = Basis.local_covariance_matrix b.Build.basis in
  let c_design = Basis.local_covariance_matrix dg.H.Design_grid.basis in
  Array.iteri
    (fun inst offset ->
      let n = dg.H.Design_grid.instance_n_tiles.(inst) in
      let worst = ref 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          worst :=
            Float.max !worst
              (abs_float
                 (Mat.get c_design (offset + i) (offset + j)
                 -. Mat.get c_mod i j))
        done
      done;
      ignore fp;
      Alcotest.(check bool)
        (Printf.sprintf "instance %d sub-block (worst %.2e)" inst !worst)
        true (!worst < 1e-9))
    dg.H.Design_grid.instance_tile_offset

let test_design_grid_abutted_no_filler () =
  (* The 2x2 abutted floorplan covers the whole die: no filler tiles. *)
  let dg = Lazy.force design_grid in
  let b = Lazy.force module_build in
  let module_tiles = Basis.n_tiles b.Build.basis in
  Alcotest.(check int)
    "tiles = 4 x module tiles" (4 * module_tiles)
    (Array.length dg.H.Design_grid.tiles)

let test_design_grid_filler_tiles () =
  (* A floorplan with one instance in the corner of a bigger die gets
     filler tiles for the uncovered area. *)
  let b = Lazy.force module_build in
  let model = Lazy.force module_model in
  let die_m = model.H.Timing_model.die in
  let big =
    Tile.make ~x0:0.0 ~y0:0.0 ~x1:(2.0 *. Tile.width die_m)
      ~y1:(2.0 *. Tile.height die_m)
  in
  let fp =
    H.Floorplan.create ~die:big
      ~instances:
        [| { H.Floorplan.label = "a"; build = Some b; model; origin = (0.0, 0.0) } |]
      ~connections:[||]
  in
  let dg = H.Design_grid.build fp in
  Alcotest.(check bool)
    "has filler tiles" true
    (Array.length dg.H.Design_grid.tiles > Basis.n_tiles b.Build.basis)

(* ------------------------------------------------------------------ *)
(* Replacement                                                         *)
(* ------------------------------------------------------------------ *)

let test_replace_preserves_variance () =
  (* Variance of every model edge form must survive the rewrite (M M^T is
     the identity on retained components). *)
  let fp = Lazy.force floorplan in
  let dg = Lazy.force design_grid in
  let model = Lazy.force module_model in
  let tf =
    H.Replace.transform_instance dg fp ~mode:H.Replace.Replaced ~inst:2
      model.H.Timing_model.forms
  in
  (* Exactly variance-preserving up to the documented PCA eigenvalue
     clamping of the (truncated-correlation) design covariance, which can
     move variances by a fraction of a percent. *)
  Array.iteri
    (fun e f_new ->
      let f_old = model.H.Timing_model.forms.(e) in
      let vo = Form.variance f_old and vn = Form.variance f_new in
      if abs_float (vn -. vo) > 0.01 *. vo then
        Alcotest.fail
          (Printf.sprintf "edge %d variance %g -> %g" e vo vn))
    tf

let test_replace_preserves_within_module_covariance () =
  let fp = Lazy.force floorplan in
  let dg = Lazy.force design_grid in
  let model = Lazy.force module_model in
  let forms = model.H.Timing_model.forms in
  let tf =
    H.Replace.transform_instance dg fp ~mode:H.Replace.Replaced ~inst:1 forms
  in
  let pairs = [ (0, 1); (2, 5); (1, 7) ] in
  List.iter
    (fun (a, b) ->
      if a < Array.length forms && b < Array.length forms then begin
        let co = Form.covariance forms.(a) forms.(b) in
        let cn = Form.covariance tf.(a) tf.(b) in
        close ~tol:(0.01 *. Float.max 1.0 (abs_float co))
          (Printf.sprintf "cov (%d,%d)" a b)
          co cn
      end)
    pairs

let test_replace_cross_instance_correlation () =
  (* The whole point of the replacement: the same edge placed in two
     different instances must become spatially correlated, strongly so for
     abutted neighbors, and the global-only mode must show strictly less
     covariance (only the global part). *)
  let fp = Lazy.force floorplan in
  let dg = Lazy.force design_grid in
  let model = Lazy.force module_model in
  let forms = model.H.Timing_model.forms in
  let e = 0 in
  let repl inst =
    H.Replace.transform_instance dg fp ~mode:H.Replace.Replaced ~inst forms
  in
  let glob inst =
    H.Replace.transform_instance dg fp ~mode:H.Replace.Global_only ~inst forms
  in
  let f0 = (repl 0).(e) and f1 = (repl 1).(e) in
  let g0 = (glob 0).(e) and g1 = (glob 1).(e) in
  let cov_repl = Form.covariance f0 f1 in
  let cov_glob = Form.covariance g0 g1 in
  Alcotest.(check bool)
    (Printf.sprintf "replaced cov (%g) > global-only cov (%g)" cov_repl
       cov_glob)
    true (cov_repl > cov_glob +. 1e-12);
  (* Global-only covariance is exactly the shared global part. *)
  let expected_glob =
    Ssta_linalg.Vec.dot f0.Form.globals f1.Form.globals
  in
  close ~tol:1e-9 "global-only covariance" expected_glob cov_glob

let test_replace_matches_flat_characterization () =
  (* Transforming a single-edge form must give the same covariance structure
     as characterizing the same delay directly over the design basis at the
     corresponding design tile. *)
  let fp = Lazy.force floorplan in
  let dg = Lazy.force design_grid in
  let b = Lazy.force module_build in
  let mbasis = b.Build.basis in
  let dbasis = dg.H.Design_grid.basis in
  let sens = [| 0.157; 0.053; 0.044 |] in
  let mform =
    Basis.delay_form mbasis ~nominal:50.0 ~tile:2 ~sens ~extra_random_sigma:0.0
  in
  let m = H.Replace.matrix dg fp ~inst:3 in
  let rewritten =
    H.Replace.transform_form dg ~mode:H.Replace.Replaced ~m:(Some m) ~inst:3
      mform
  in
  let direct =
    Basis.delay_form dbasis ~nominal:50.0
      ~tile:(H.Design_grid.design_tile_of_instance dg ~inst:3 2)
      ~sens ~extra_random_sigma:0.0
  in
  (* Same variance and, crucially, the same covariance against a probe form
     placed anywhere on the design die. *)
  close
    ~tol:(0.005 *. Form.variance direct)
    "variance" (Form.variance direct) (Form.variance rewritten);
  let probe =
    Basis.delay_form dbasis ~nominal:50.0 ~tile:0 ~sens ~extra_random_sigma:0.0
  in
  close
    ~tol:(0.01 *. Float.max 1.0 (abs_float (Form.covariance direct probe)))
    "covariance vs probe"
    (Form.covariance direct probe)
    (Form.covariance rewritten probe)

(* ------------------------------------------------------------------ *)
(* Design-level analysis                                               *)
(* ------------------------------------------------------------------ *)

let test_hier_analysis_vs_mc () =
  let fp = Lazy.force floorplan in
  let dg = Lazy.force design_grid in
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let ctx = H.Hier_analysis.flatten fp dg in
  let mc = Ssta_mc.Flat_mc.run ~iterations:2000 ~seed:99 ctx in
  let mc_mean = Stats.mean mc.Ssta_mc.Flat_mc.delays in
  let mc_std = Stats.std mc.Ssta_mc.Flat_mc.delays in
  let d = rep.H.Hier_analysis.delay in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f within 4%% of MC %.1f" d.Form.mean mc_mean)
    true
    (abs_float (d.Form.mean -. mc_mean) /. mc_mean < 0.04);
  Alcotest.(check bool)
    (Printf.sprintf "std %.1f within 15%% of MC %.1f" (Form.std d) mc_std)
    true
    (abs_float (Form.std d -. mc_std) /. mc_std < 0.15)

let test_global_only_underestimates_spread () =
  (* Paper Fig. 7: ignoring local correlation visibly distorts the
     distribution - for an abutted floorplan it underestimates sigma. *)
  let fp = Lazy.force floorplan in
  let dg = Lazy.force design_grid in
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let glo = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Global_only in
  Alcotest.(check bool)
    "global-only sigma smaller" true
    (Form.std glo.H.Hier_analysis.delay < Form.std rep.H.Hier_analysis.delay)

let test_hier_matches_flat_ssta () =
  (* Hierarchical analysis with models vs flat SSTA on the same design:
     the model compression should cost only a small moment shift. *)
  let fp = Lazy.force floorplan in
  let dg = Lazy.force design_grid in
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let flat = H.Hier_analysis.flat_form fp dg in
  let d = rep.H.Hier_analysis.delay in
  close ~tol:(0.03 *. flat.Form.mean) "mean vs flat SSTA" flat.Form.mean
    d.Form.mean;
  close ~tol:(0.1 *. Form.std flat) "std vs flat SSTA" (Form.std flat)
    (Form.std d)

let test_hier_po_delays () =
  let fp = Lazy.force floorplan in
  let dg = Lazy.force design_grid in
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  Alcotest.(check int)
    "one delay per PO"
    (Array.length fp.H.Floorplan.ext_outputs)
    (Array.length rep.H.Hier_analysis.po_delays);
  (* The last product bits go through two multipliers: all POs reachable. *)
  Array.iter
    (fun d -> Alcotest.(check bool) "po reachable" true (d <> None))
    rep.H.Hier_analysis.po_delays

(* ------------------------------------------------------------------ *)
(* Yield                                                               *)
(* ------------------------------------------------------------------ *)

let test_yield () =
  let f =
    Form.make ~mean:100.0 ~globals:[| 5.0 |] ~pcs:[| 0.0 |] ~rand:0.0
  in
  close ~tol:1e-6 "yield at mean" 0.5 (H.Yield.of_form f ~clock:100.0);
  let c = H.Yield.clock_for_yield f ~yield:0.9 in
  close ~tol:1e-6 "clock roundtrip" 0.9 (H.Yield.of_form f ~clock:c);
  close "empirical" 0.75
    (H.Yield.empirical [| 1.0; 2.0; 3.0; 4.0 |] ~clock:3.0);
  let series = H.Yield.cdf_series ~points:11 ~lo:0.0 ~hi:10.0 (fun x -> x /. 10.0) in
  Alcotest.(check int) "series length" 11 (Array.length series);
  let nx, _ = (H.Yield.normalize series ~lo:0.0 ~hi:10.0).(10) in
  close "normalized end" 1.0 nx

let suites =
  [
    ( "hier.floorplan",
      [
        Alcotest.test_case "mult grid structure" `Quick test_mult_grid_structure;
        Alcotest.test_case "rejects overlap" `Quick test_floorplan_rejects_overlap;
        Alcotest.test_case "rejects outside" `Quick test_floorplan_rejects_outside;
        Alcotest.test_case "rejects double drive" `Quick
          test_floorplan_rejects_double_drive;
      ] );
    ( "hier.design_grid",
      [
        Alcotest.test_case "sub-block property (eq. 17)" `Quick
          test_design_grid_subblock_property;
        Alcotest.test_case "abutted: no filler" `Quick
          test_design_grid_abutted_no_filler;
        Alcotest.test_case "filler tiles" `Quick test_design_grid_filler_tiles;
      ] );
    ( "hier.replace",
      [
        Alcotest.test_case "variance preserved" `Quick
          test_replace_preserves_variance;
        Alcotest.test_case "within-module covariance" `Quick
          test_replace_preserves_within_module_covariance;
        Alcotest.test_case "cross-instance correlation" `Quick
          test_replace_cross_instance_correlation;
        Alcotest.test_case "matches flat characterization" `Quick
          test_replace_matches_flat_characterization;
      ] );
    ( "hier.analysis",
      [
        Alcotest.test_case "vs Monte Carlo" `Slow test_hier_analysis_vs_mc;
        Alcotest.test_case "global-only underestimates" `Quick
          test_global_only_underestimates_spread;
        Alcotest.test_case "vs flat SSTA" `Quick test_hier_matches_flat_ssta;
        Alcotest.test_case "po delays" `Quick test_hier_po_delays;
      ] );
    ("hier.yield", [ Alcotest.test_case "yield utilities" `Quick test_yield ]);
  ]
