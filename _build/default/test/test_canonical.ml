(* Tests for the canonical linear delay form (paper Section II): the
   statistical sum and max operations are validated both against closed-form
   moments and against direct simulation of the underlying variables. *)

module Form = Ssta_canonical.Form
module Normal = Ssta_gauss.Normal
module Rng = Ssta_gauss.Rng
module Stats = Ssta_gauss.Stats

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let dims = { Form.n_globals = 2; n_pcs = 3 }

let form mean globals pcs rand = Form.make ~mean ~globals ~pcs ~rand

let fa = form 10.0 [| 1.0; 0.5 |] [| 0.2; 0.0; 0.4 |] 0.3
let fb = form 11.0 [| 0.8; -0.2 |] [| 0.1; 0.3; 0.0 |] 0.5

let test_variance () =
  close "variance" (1.0 +. 0.25 +. 0.04 +. 0.16 +. 0.09) (Form.variance fa);
  close "std" (sqrt (Form.variance fa)) (Form.std fa);
  close "constant variance" 0.0 (Form.variance (Form.constant dims 5.0))

let test_covariance () =
  (* Only shared variables contribute: globals and PCs, not rands. *)
  close "covariance" ((1.0 *. 0.8) +. (0.5 *. -0.2) +. (0.2 *. 0.1)) (Form.covariance fa fb);
  close "self covariance = var - rand^2"
    (Form.variance fa -. (0.3 *. 0.3))
    (Form.covariance fa fa)

let test_add () =
  let s = Form.add fa fb in
  close "sum mean" 21.0 s.Form.mean;
  close "sum global 0" 1.8 s.Form.globals.(0);
  close "sum pc 1" 0.3 s.Form.pcs.(1);
  (* Random parts RSS-combine (variance matching, paper Section II). *)
  close "sum rand" (sqrt ((0.3 *. 0.3) +. (0.5 *. 0.5))) s.Form.rand;
  (* Var(A+B) = VarA + VarB + 2Cov. *)
  close ~tol:1e-9 "sum variance"
    (Form.variance fa +. Form.variance fb +. (2.0 *. Form.covariance fa fb))
    (Form.variance s)

let test_scale_neg () =
  let t = Form.scale (-2.0) fa in
  close "scale mean" (-20.0) t.Form.mean;
  close "scale rand stays positive" 0.6 t.Form.rand;
  close "scale variance" (4.0 *. Form.variance fa) (Form.variance t);
  let n = Form.neg fa in
  close "neg mean" (-10.0) n.Form.mean;
  close "neg variance" (Form.variance fa) (Form.variance n)

let test_max_moments_match_clark () =
  let mx = Form.max2 fa fb in
  let c =
    Normal.clark_max ~mean_a:fa.Form.mean ~var_a:(Form.variance fa)
      ~mean_b:fb.Form.mean ~var_b:(Form.variance fb)
      ~cov:(Form.covariance fa fb)
  in
  close ~tol:1e-9 "max mean = Clark mean" c.Normal.mean mx.Form.mean;
  close ~tol:1e-9 "max var = Clark var" c.Normal.variance (Form.variance mx)

let test_max_coefficients_blend () =
  let mx = Form.max2 fa fb in
  let tp = Form.tightness fa fb in
  close ~tol:1e-9 "global blended"
    ((tp *. 1.0) +. ((1.0 -. tp) *. 0.8))
    mx.Form.globals.(0);
  close ~tol:1e-9 "pc blended"
    ((tp *. 0.4) +. ((1.0 -. tp) *. 0.0))
    mx.Form.pcs.(2)

let test_max_dominated () =
  let lo = form 0.0 [| 0.1; 0.0 |] [| 0.0; 0.0; 0.0 |] 0.1 in
  let hi = form 100.0 [| 0.2; 0.0 |] [| 0.0; 0.0; 0.0 |] 0.1 in
  let mx = Form.max2 lo hi in
  Alcotest.(check bool) "dominant wins" true (Form.equal ~tol:1e-6 mx hi);
  close "tightness ~ 0" 0.0 (Form.tightness lo hi)

let test_max_symmetric () =
  let m1 = Form.max2 fa fb and m2 = Form.max2 fb fa in
  close ~tol:1e-9 "mean symmetric" m1.Form.mean m2.Form.mean;
  close ~tol:1e-9 "var symmetric" (Form.variance m1) (Form.variance m2);
  close ~tol:1e-9 "coeff symmetric" m1.Form.globals.(1) m2.Form.globals.(1)

let test_max_list () =
  let forms = [ fa; fb; form 9.0 [| 0.3; 0.3 |] [| 0.0; 0.1; 0.2 |] 0.2 ] in
  let m = Form.max_list forms in
  Alcotest.(check bool)
    "max_list >= all means" true
    (List.for_all (fun f -> m.Form.mean >= f.Form.mean -. 1e-9) forms);
  Alcotest.check_raises "empty max_list"
    (Invalid_argument "Form.max_list: empty list") (fun () ->
      ignore (Form.max_list []))

let test_min2_vs_simulation () =
  let rng = Rng.create ~seed:77 in
  let acc = Stats.Welford.create () in
  let n = 40_000 in
  let globals = Array.make 2 0.0 and pcs = Array.make 3 0.0 in
  for _ = 1 to n do
    Rng.gaussian_fill rng globals;
    Rng.gaussian_fill rng pcs;
    let va = Form.sample fa ~globals ~pcs ~rand:(Rng.gaussian rng) in
    let vb = Form.sample fb ~globals ~pcs ~rand:(Rng.gaussian rng) in
    Stats.Welford.add acc (Float.min va vb)
  done;
  let mn = Form.min2 fa fb in
  close ~tol:0.03 "min mean vs sim" (Stats.Welford.mean acc) mn.Form.mean;
  close ~tol:0.03 "min std vs sim" (Stats.Welford.std acc) (Form.std mn)

let test_max_vs_simulation () =
  let rng = Rng.create ~seed:78 in
  let macc = Stats.Welford.create () in
  let n = 40_000 in
  let globals = Array.make 2 0.0 and pcs = Array.make 3 0.0 in
  for _ = 1 to n do
    Rng.gaussian_fill rng globals;
    Rng.gaussian_fill rng pcs;
    let va = Form.sample fa ~globals ~pcs ~rand:(Rng.gaussian rng) in
    let vb = Form.sample fb ~globals ~pcs ~rand:(Rng.gaussian rng) in
    Stats.Welford.add macc (Float.max va vb)
  done;
  let mx = Form.max2 fa fb in
  close ~tol:0.03 "max mean vs sim" (Stats.Welford.mean macc) mx.Form.mean;
  close ~tol:0.03 "max std vs sim" (Stats.Welford.std macc) (Form.std mx)

let test_cdf_quantile () =
  close ~tol:1e-6 "cdf at mean" 0.5 (Form.cdf fa fa.Form.mean);
  let q = Form.quantile fa 0.9 in
  close ~tol:1e-7 "quantile roundtrip" 0.9 (Form.cdf fa q);
  let c = Form.constant dims 3.0 in
  close "constant cdf below" 0.0 (Form.cdf c 2.9);
  close "constant cdf above" 1.0 (Form.cdf c 3.0)

let test_make_rejects_negative_rand () =
  Alcotest.check_raises "negative rand rejected"
    (Invalid_argument "Form.make: negative random coefficient") (fun () ->
      ignore (form 0.0 [| 0.0; 0.0 |] [| 0.0; 0.0; 0.0 |] (-1.0)))

(* Property tests over randomly generated forms. *)

let gen_form =
  QCheck.Gen.(
    map4
      (fun mean g p r ->
        Form.make ~mean ~globals:(Array.of_list g) ~pcs:(Array.of_list p)
          ~rand:r)
      (float_range (-10.0) 50.0)
      (list_repeat 2 (float_range (-1.0) 1.0))
      (list_repeat 3 (float_range (-1.0) 1.0))
      (float_range 0.0 1.0))

let arb_form = QCheck.make ~print:(fun f -> Format.asprintf "%a" Form.pp f) gen_form

let qcheck_max_upper_bound =
  QCheck.Test.make ~count:300 ~name:"max2 mean dominates both means"
    (QCheck.pair arb_form arb_form) (fun (a, b) ->
      let m = Form.max2 a b in
      m.Form.mean >= a.Form.mean -. 1e-9 && m.Form.mean >= b.Form.mean -. 1e-9)

let qcheck_add_linear =
  QCheck.Test.make ~count:300 ~name:"sum is linear in means and coefficients"
    (QCheck.pair arb_form arb_form) (fun (a, b) ->
      let s = Form.add a b in
      abs_float (s.Form.mean -. (a.Form.mean +. b.Form.mean)) < 1e-9
      && abs_float (s.Form.globals.(0) -. (a.Form.globals.(0) +. b.Form.globals.(0)))
         < 1e-9)

let qcheck_correlation_bounds =
  QCheck.Test.make ~count:300 ~name:"correlation lies in [-1, 1]"
    (QCheck.pair arb_form arb_form) (fun (a, b) ->
      let c = Form.correlation a b in
      c >= -1.0 -. 1e-9 && c <= 1.0 +. 1e-9)

let qcheck_max_assoc_approx =
  QCheck.Test.make ~count:200 ~name:"max_list insensitive to order (approx)"
    (QCheck.triple arb_form arb_form arb_form) (fun (a, b, c) ->
      let m1 = Form.max_list [ a; b; c ] in
      let m2 = Form.max_list [ c; a; b ] in
      (* Moment matching is order-dependent; means should still agree to a
         small fraction of the spread. *)
      let scale = Float.max 1.0 (Form.std m1) in
      abs_float (m1.Form.mean -. m2.Form.mean) < 0.2 *. scale)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "canonical.form",
      [
        Alcotest.test_case "variance" `Quick test_variance;
        Alcotest.test_case "covariance" `Quick test_covariance;
        Alcotest.test_case "statistical sum" `Quick test_add;
        Alcotest.test_case "scale and neg" `Quick test_scale_neg;
        Alcotest.test_case "max moments = Clark" `Quick
          test_max_moments_match_clark;
        Alcotest.test_case "max blends coefficients" `Quick
          test_max_coefficients_blend;
        Alcotest.test_case "max dominated" `Quick test_max_dominated;
        Alcotest.test_case "max symmetric" `Quick test_max_symmetric;
        Alcotest.test_case "max_list" `Quick test_max_list;
        Alcotest.test_case "min2 vs simulation" `Slow test_min2_vs_simulation;
        Alcotest.test_case "max2 vs simulation" `Slow test_max_vs_simulation;
        Alcotest.test_case "cdf and quantile" `Quick test_cdf_quantile;
        Alcotest.test_case "make validation" `Quick
          test_make_rejects_negative_rand;
        q qcheck_max_upper_bound;
        q qcheck_add_linear;
        q qcheck_correlation_bounds;
        q qcheck_max_assoc_approx;
      ] );
  ]
