(* Tests for the Gaussian math substrate: distribution functions, Clark's
   max moments, the deterministic RNG and sample statistics. *)

module Normal = Ssta_gauss.Normal
module Rng = Ssta_gauss.Rng
module Stats = Ssta_gauss.Stats

let close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Normal distribution                                                 *)
(* ------------------------------------------------------------------ *)

let test_erf_known () =
  close "erf 0" 0.0 (Normal.erf 0.0);
  close "erf 1" 0.8427007929 (Normal.erf 1.0);
  close "erf 2" 0.9953222650 (Normal.erf 2.0);
  close "erf -1" (-0.8427007929) (Normal.erf (-1.0));
  close "erf 0.5" 0.5204998778 (Normal.erf 0.5)

let test_erfc_tail () =
  close ~tol:1e-10 "erfc 4" 1.541725790e-8 (Normal.erfc 4.0);
  close "erfc 0" 1.0 (Normal.erfc 0.0);
  close "erfc -2" (2.0 -. Normal.erfc 2.0) (Normal.erfc (-2.0))

let test_cdf_known () =
  close "cdf 0" 0.5 (Normal.cdf 0.0);
  close "cdf 1" 0.8413447461 (Normal.cdf 1.0);
  close "cdf -1" 0.1586552539 (Normal.cdf (-1.0));
  close "cdf 3" 0.9986501020 (Normal.cdf 3.0);
  close ~tol:1e-9 "cdf -6 tiny" 9.865876e-10 (Normal.cdf (-6.0))

let test_pdf () =
  close "pdf 0" 0.3989422804 (Normal.pdf 0.0);
  close "pdf symmetric" (Normal.pdf 1.3) (Normal.pdf (-1.3));
  (* pdf is the derivative of cdf *)
  let h = 1e-5 in
  let x = 0.7 in
  close ~tol:1e-5 "pdf = cdf'"
    ((Normal.cdf (x +. h) -. Normal.cdf (x -. h)) /. (2.0 *. h))
    (Normal.pdf x)

let test_quantile_roundtrip () =
  List.iter
    (fun p ->
      close ~tol:1e-9 (Printf.sprintf "cdf(quantile %g)" p) p
        (Normal.cdf (Normal.quantile p)))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ];
  close "quantile 0.5" 0.0 (Normal.quantile 0.5);
  Alcotest.check_raises "quantile 0 rejected"
    (Invalid_argument "Normal.quantile: p must lie in (0, 1)") (fun () ->
      ignore (Normal.quantile 0.0))

let test_clark_independent () =
  (* Max of two independent standard normals: mean 1/sqrt(pi),
     variance 1 - 1/pi (classic closed form). *)
  let m =
    Normal.clark_max ~mean_a:0.0 ~var_a:1.0 ~mean_b:0.0 ~var_b:1.0 ~cov:0.0
  in
  close "tp half" 0.5 m.Normal.tightness;
  close "mean 1/sqrt(pi)" (1.0 /. sqrt Normal.pi) m.Normal.mean;
  close "var 1 - 1/pi" (1.0 -. (1.0 /. Normal.pi)) m.Normal.variance

let test_clark_degenerate () =
  (* Perfectly correlated equal-variance variables differ by a constant. *)
  let m =
    Normal.clark_max ~mean_a:3.0 ~var_a:4.0 ~mean_b:1.0 ~var_b:4.0 ~cov:4.0
  in
  close "degenerate tp" 1.0 m.Normal.tightness;
  close "degenerate mean" 3.0 m.Normal.mean;
  close "degenerate var" 4.0 m.Normal.variance;
  let m' =
    Normal.clark_max ~mean_a:1.0 ~var_a:4.0 ~mean_b:3.0 ~var_b:4.0 ~cov:4.0
  in
  close "degenerate other side" 3.0 m'.Normal.mean

let test_clark_dominated () =
  (* B far below A: max is essentially A. *)
  let m =
    Normal.clark_max ~mean_a:10.0 ~var_a:1.0 ~mean_b:0.0 ~var_b:1.0 ~cov:0.0
  in
  close ~tol:1e-6 "dominated tp" 1.0 m.Normal.tightness;
  close ~tol:1e-4 "dominated mean" 10.0 m.Normal.mean;
  close ~tol:1e-2 "dominated var" 1.0 m.Normal.variance

let test_clark_vs_mc () =
  (* Moment-match against a direct bivariate simulation. *)
  let rng = Rng.create ~seed:2024 in
  let n = 60_000 in
  let mean_a = 1.0 and mean_b = 1.2 and sa = 0.8 and sb = 0.5 in
  let rho = 0.6 in
  let acc = Stats.Welford.create () in
  for _ = 1 to n do
    let z1 = Rng.gaussian rng and z2 = Rng.gaussian rng in
    let a = mean_a +. (sa *. z1) in
    let b =
      mean_b +. (sb *. ((rho *. z1) +. (sqrt (1.0 -. (rho *. rho)) *. z2)))
    in
    Stats.Welford.add acc (Float.max a b)
  done;
  let m =
    Normal.clark_max ~mean_a ~var_a:(sa *. sa) ~mean_b ~var_b:(sb *. sb)
      ~cov:(rho *. sa *. sb)
  in
  close ~tol:0.01 "clark mean vs mc" (Stats.Welford.mean acc) m.Normal.mean;
  close ~tol:0.02 "clark std vs mc" (Stats.Welford.std acc)
    (sqrt m.Normal.variance)

let clark_qcheck =
  QCheck.Test.make ~count:500 ~name:"clark max moments are sane"
    QCheck.(
      quad (float_range (-5.0) 5.0) (float_range 0.01 4.0)
        (float_range (-5.0) 5.0) (float_range 0.01 4.0))
    (fun (mean_a, var_a, mean_b, var_b) ->
      (* A valid covariance bounded by the Cauchy-Schwarz limit. *)
      let cov = 0.3 *. sqrt (var_a *. var_b) in
      let m = Normal.clark_max ~mean_a ~var_a ~mean_b ~var_b ~cov in
      m.Normal.tightness >= 0.0
      && m.Normal.tightness <= 1.0
      && m.Normal.mean >= Float.max mean_a mean_b -. 1e-9
      && m.Normal.variance >= 0.0)

(* ------------------------------------------------------------------ *)
(* RNG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Rng.create ~seed:8 in
  Alcotest.(check bool)
    "different seeds differ" true
    (Rng.bits64 (Rng.create ~seed:7) <> Rng.bits64 c)

let test_rng_uniform_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let u = Rng.uniform rng in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "uniform out of [0,1)"
  done

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:5 in
  let seen = Array.make 10 false in
  for _ = 1 to 5_000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:11 in
  let acc = Stats.Welford.create () in
  for _ = 1 to 50_000 do
    Stats.Welford.add acc (Rng.gaussian rng)
  done;
  close ~tol:0.02 "gaussian mean" 0.0 (Stats.Welford.mean acc);
  close ~tol:0.02 "gaussian std" 1.0 (Stats.Welford.std acc)

let test_rng_split () =
  let parent = Rng.create ~seed:13 in
  let child = Rng.split parent in
  let x = Rng.bits64 parent and y = Rng.bits64 child in
  Alcotest.(check bool) "streams differ" true (x <> y)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  close "mean" 2.5 (Stats.mean xs);
  close "variance" (5.0 /. 3.0) (Stats.variance xs);
  close "std" (sqrt (5.0 /. 3.0)) (Stats.std xs)

let test_stats_quantile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  close "q0" 1.0 (Stats.quantile xs 0.0);
  close "q1" 4.0 (Stats.quantile xs 1.0);
  close "median" 2.5 (Stats.quantile xs 0.5);
  close "q25" 1.75 (Stats.quantile xs 0.25)

let test_stats_histogram () =
  let xs = [| 0.1; 0.2; 0.5; 0.9; 1.0 |] in
  let h = Stats.histogram ~lo:0.0 ~hi:1.0 ~bins:2 xs in
  Alcotest.(check (list int)) "bins" [ 2; 3 ] (Array.to_list h);
  Alcotest.(check int)
    "total preserved" (Array.length xs)
    (Array.fold_left ( + ) 0 h)

let test_stats_empirical_cdf () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  let v, p = Stats.empirical_cdf xs in
  Alcotest.(check (list (float 1e-12)))
    "sorted" [ 1.0; 2.0; 3.0 ] (Array.to_list v);
  close "last prob" 1.0 p.(2)

let test_stats_ks () =
  (* A large normal sample against its own CDF has a small KS distance. *)
  let rng = Rng.create ~seed:17 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng) in
  let d = Stats.ks_distance xs Normal.cdf in
  Alcotest.(check bool)
    (Printf.sprintf "ks small (%.4f)" d)
    true (d < 0.015)

let welford_qcheck =
  QCheck.Test.make ~count:200 ~name:"welford matches direct formulas"
    QCheck.(list_of_size (Gen.int_range 2 40) (float_range (-100.) 100.))
    (fun l ->
      let xs = Array.of_list l in
      let acc = Stats.Welford.create () in
      Array.iter (Stats.Welford.add acc) xs;
      abs_float (Stats.Welford.mean acc -. Stats.mean xs) < 1e-8
      && abs_float (Stats.Welford.variance acc -. Stats.variance xs) < 1e-6)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "gauss.normal",
      [
        Alcotest.test_case "erf known values" `Quick test_erf_known;
        Alcotest.test_case "erfc tails" `Quick test_erfc_tail;
        Alcotest.test_case "cdf known values" `Quick test_cdf_known;
        Alcotest.test_case "pdf" `Quick test_pdf;
        Alcotest.test_case "quantile roundtrip" `Quick test_quantile_roundtrip;
        Alcotest.test_case "clark independent" `Quick test_clark_independent;
        Alcotest.test_case "clark degenerate" `Quick test_clark_degenerate;
        Alcotest.test_case "clark dominated" `Quick test_clark_dominated;
        Alcotest.test_case "clark vs simulation" `Slow test_clark_vs_mc;
        q clark_qcheck;
      ] );
    ( "gauss.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
        Alcotest.test_case "split streams" `Quick test_rng_split;
      ] );
    ( "gauss.stats",
      [
        Alcotest.test_case "mean/variance" `Quick test_stats_basic;
        Alcotest.test_case "quantiles" `Quick test_stats_quantile;
        Alcotest.test_case "histogram" `Quick test_stats_histogram;
        Alcotest.test_case "empirical cdf" `Quick test_stats_empirical_cdf;
        Alcotest.test_case "ks distance" `Slow test_stats_ks;
        q welford_qcheck;
      ] );
  ]
