(* Tests for netlists and the ISCAS85-like generators (the benchmark
   substrate; see DESIGN.md substitutions). *)

module N = Ssta_circuit.Netlist
module B = N.Builder
module L = Ssta_cell.Library
module Iscas = Ssta_circuit.Iscas
module Placement = Ssta_circuit.Placement
module Grid = Ssta_variation.Grid
module Tile = Ssta_variation.Tile

(* ------------------------------------------------------------------ *)
(* Builder / netlist invariants                                        *)
(* ------------------------------------------------------------------ *)

let test_builder_basic () =
  let b = B.create ~name:"t" ~n_pi:2 in
  let g1 = B.add_gate b L.and2 [| 0; 1 |] in
  let g2 = B.add_gate b L.inv [| g1 |] in
  let nl = B.finish b ~outputs:[| g2 |] in
  Alcotest.(check int) "nodes" 4 (N.n_nodes nl);
  Alcotest.(check int) "gates" 2 (N.n_gates nl);
  Alcotest.(check int) "edges" 3 (N.n_edges nl);
  Alcotest.(check int) "depth" 2 (N.depth nl);
  Alcotest.(check bool) "pi" true (N.is_pi nl 0);
  Alcotest.(check bool) "gate" false (N.is_pi nl 2)

let test_builder_rejects_bad_arity () =
  let b = B.create ~name:"t" ~n_pi:2 in
  Alcotest.(check bool)
    "arity mismatch" true
    (try
       ignore (B.add_gate b L.and2 [| 0 |]);
       false
     with Invalid_argument _ -> true)

let test_builder_rejects_forward_ref () =
  let b = B.create ~name:"t" ~n_pi:2 in
  Alcotest.(check bool)
    "forward reference" true
    (try
       ignore (B.add_gate b L.inv [| 5 |]);
       false
     with Invalid_argument _ -> true)

let test_fanout_counts () =
  let b = B.create ~name:"t" ~n_pi:1 in
  let g1 = B.add_gate b L.inv [| 0 |] in
  let _g2 = B.add_gate b L.inv [| g1 |] in
  let _g3 = B.add_gate b L.inv [| g1 |] in
  let nl = B.finish b ~outputs:[| 2; 3 |] in
  let f = N.fanout_counts nl in
  Alcotest.(check int) "pi fanout" 1 f.(0);
  Alcotest.(check int) "g1 fanout" 2 f.(g1);
  Alcotest.(check int) "sink fanout" 0 f.(3)

(* ------------------------------------------------------------------ *)
(* Structural generators                                               *)
(* ------------------------------------------------------------------ *)

let reaches_output nl =
  (* Reverse reachability from outputs over the gate fanin relation. *)
  let n = N.n_nodes nl in
  let seen = Array.make n false in
  Array.iter (fun o -> seen.(o) <- true) nl.N.outputs;
  for g = N.n_gates nl - 1 downto 0 do
    let id = N.n_pis nl + g in
    if seen.(id) then
      match N.gate_of_node nl id with
      | Some gate -> Array.iter (fun s -> seen.(s) <- true) gate.N.fanins
      | None -> ()
  done;
  seen

let test_multiplier_structure () =
  let nl = Ssta_circuit.Multiplier.make ~bits:16 () in
  N.validate nl;
  Alcotest.(check int) "pis" 32 (N.n_pis nl);
  Alcotest.(check int) "pos" 32 (N.n_pos nl);
  Alcotest.(check int) "gates (c6288-scale)" 2352 (N.n_gates nl);
  (* Every gate drives something observable. *)
  let seen = reaches_output nl in
  let dead = ref 0 in
  for g = 0 to N.n_gates nl - 1 do
    if not seen.(N.n_pis nl + g) then incr dead
  done;
  Alcotest.(check int) "no dead gates" 0 !dead

let test_multiplier_scales () =
  List.iter
    (fun bits ->
      let nl = Ssta_circuit.Multiplier.make ~bits () in
      N.validate nl;
      Alcotest.(check int) "pis" (2 * bits) (N.n_pis nl);
      Alcotest.(check int) "pos" (2 * bits) (N.n_pos nl);
      (* bits^2 partial products + (bits-1) rows of adders. *)
      Alcotest.(check bool)
        "gate count grows quadratically" true
        (N.n_gates nl > bits * bits))
    [ 2; 4; 8 ]

let test_multiplier_depth_grows () =
  let d8 = N.depth (Ssta_circuit.Multiplier.make ~bits:8 ()) in
  let d16 = N.depth (Ssta_circuit.Multiplier.make ~bits:16 ()) in
  Alcotest.(check bool) "deeper with more bits" true (d16 > d8);
  (* c6288's logic depth is ~120; the reproduction should be in that band. *)
  Alcotest.(check bool) "depth plausible" true (d16 > 80 && d16 < 150)

let test_ecc_structure () =
  let c499 = Ssta_circuit.Ecc.make ~expand_xor:false () in
  let c1355 = Ssta_circuit.Ecc.make ~expand_xor:true () in
  N.validate c499;
  N.validate c1355;
  Alcotest.(check int) "c499 pis" 41 (N.n_pis c499);
  Alcotest.(check int) "c499 pos" 32 (N.n_pos c499);
  Alcotest.(check int) "c1355 pis" 41 (N.n_pis c1355);
  (* The NAND expansion blows each XOR into 4 gates (c499 -> c1355). *)
  Alcotest.(check bool)
    "expansion grows gates ~2.8x" true
    (let r = float_of_int (N.n_gates c1355) /. float_of_int (N.n_gates c499) in
     r > 2.3 && r < 3.3)

let test_priority_structure () =
  let nl = Ssta_circuit.Priority.make () in
  N.validate nl;
  Alcotest.(check int) "pis" 36 (N.n_pis nl);
  Alcotest.(check int) "pos" 7 (N.n_pos nl);
  Alcotest.(check bool)
    "c432-scale gate count" true
    (abs (N.n_gates nl - 160) < 30)

let test_adders () =
  let r = Ssta_circuit.Adder.ripple ~bits:32 () in
  let c = Ssta_circuit.Adder.carry_select ~bits:32 ~block:8 () in
  N.validate r;
  N.validate c;
  Alcotest.(check int) "ripple pis" 65 (N.n_pis r);
  Alcotest.(check int) "ripple pos" 33 (N.n_pos r);
  Alcotest.(check int) "csel pos" 33 (N.n_pos c);
  (* The carry-select trade: shallower (32 -> 18 levels) but ~3x larger. *)
  Alcotest.(check bool) "csel shallower" true (N.depth c < N.depth r);
  Alcotest.(check bool) "csel larger" true (N.n_gates c > N.n_gates r)

let test_random_logic_determinism () =
  let spec =
    {
      Ssta_circuit.Random_logic.name = "r";
      n_pi = 20;
      n_po = 8;
      n_gates = 200;
      seed = 99;
      locality = 0.8;
    }
  in
  let a = Ssta_circuit.Random_logic.make spec in
  let b = Ssta_circuit.Random_logic.make spec in
  Alcotest.(check int) "same gates" (N.n_gates a) (N.n_gates b);
  Alcotest.(check int) "same edges" (N.n_edges a) (N.n_edges b);
  let c = Ssta_circuit.Random_logic.make { spec with seed = 100 } in
  Alcotest.(check bool)
    "different seed differs" true
    (N.n_edges a <> N.n_edges c || N.depth a <> N.depth c)

let test_random_logic_counts () =
  let spec =
    {
      Ssta_circuit.Random_logic.name = "r";
      n_pi = 30;
      n_po = 10;
      n_gates = 300;
      seed = 7;
      locality = 0.8;
    }
  in
  let nl = Ssta_circuit.Random_logic.make spec in
  N.validate nl;
  Alcotest.(check int) "pis" 30 (N.n_pis nl);
  Alcotest.(check int) "pos" 10 (N.n_pos nl);
  Alcotest.(check bool)
    "gates close to target" true
    (abs (N.n_gates nl - 300) < 30);
  (* Observability: every gate reaches some output. *)
  let seen = reaches_output nl in
  for g = 0 to N.n_gates nl - 1 do
    if not seen.(N.n_pis nl + g) then
      Alcotest.fail (Printf.sprintf "gate %d unobservable" g)
  done

let test_iscas_suite () =
  List.iter
    (fun (name, nl) ->
      N.validate nl;
      let paper = Iscas.paper_row name in
      let vo = N.n_nodes nl and eo = N.n_edges nl in
      let dev a b = abs_float (float_of_int a /. float_of_int b -. 1.0) in
      Alcotest.(check bool)
        (Printf.sprintf "%s vertices within 15%% (got %d, paper %d)" name vo
           paper.Iscas.vo)
        true
        (dev vo paper.Iscas.vo < 0.15);
      Alcotest.(check bool)
        (Printf.sprintf "%s edges within 20%% (got %d, paper %d)" name eo
           paper.Iscas.eo)
        true
        (dev eo paper.Iscas.eo < 0.20))
    (Iscas.all ())

let test_iscas_unknown () =
  Alcotest.(check bool)
    "unknown circuit" true
    (try
       ignore (Iscas.build "c17");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

let test_placement_in_die () =
  let nl = Iscas.build "c880" in
  let p = Placement.place nl in
  Array.iter
    (fun pos ->
      Alcotest.(check bool) "inside die" true (Tile.contains p.Placement.die pos))
    p.Placement.positions

let test_placement_budget () =
  let nl = Iscas.build "c1908" in
  let p = Placement.place nl in
  let pitch =
    Grid.pitch_for_cell_budget ~n_cells:(N.n_gates nl) ~cells_per_tile:100
      ~cell_pitch:1.0
  in
  let die = p.Placement.die in
  let grid =
    Grid.make ~x0:die.Tile.x0 ~y0:die.Tile.y0 ~width:(Tile.width die)
      ~height:(Tile.height die) ~pitch
  in
  let counts = Placement.cells_per_tile p grid in
  Array.iteri
    (fun i c ->
      if c > 100 then
        Alcotest.fail (Printf.sprintf "tile %d holds %d cells (> 100)" i c))
    counts;
  Alcotest.(check int)
    "all cells placed" (N.n_gates nl)
    (Array.fold_left ( + ) 0 counts)

let test_placement_levelized () =
  (* Data should flow left to right: the average x of the last-level gates
     exceeds the average x of the first-level gates. *)
  let nl = Iscas.build "c1355" in
  let p = Placement.place nl in
  let levels = N.levels nl in
  let depth = N.depth nl in
  let avg_x pred =
    let sum = ref 0.0 and n = ref 0 in
    Array.iteri
      (fun g (x, _) ->
        if pred levels.(N.n_pis nl + g) then begin
          sum := !sum +. x;
          incr n
        end)
      p.Placement.positions;
    !sum /. float_of_int (max 1 !n)
  in
  let early = avg_x (fun l -> l <= 2) in
  let late = avg_x (fun l -> l >= depth - 1) in
  Alcotest.(check bool) "levelized flow" true (late > early)

let suites =
  [
    ( "circuit.netlist",
      [
        Alcotest.test_case "builder basics" `Quick test_builder_basic;
        Alcotest.test_case "builder arity check" `Quick
          test_builder_rejects_bad_arity;
        Alcotest.test_case "builder forward ref" `Quick
          test_builder_rejects_forward_ref;
        Alcotest.test_case "fanout counts" `Quick test_fanout_counts;
      ] );
    ( "circuit.generators",
      [
        Alcotest.test_case "multiplier c6288 scale" `Quick
          test_multiplier_structure;
        Alcotest.test_case "multiplier scaling" `Quick test_multiplier_scales;
        Alcotest.test_case "multiplier depth" `Quick
          test_multiplier_depth_grows;
        Alcotest.test_case "ecc c499/c1355" `Quick test_ecc_structure;
        Alcotest.test_case "priority c432" `Quick test_priority_structure;
        Alcotest.test_case "adders" `Quick test_adders;
        Alcotest.test_case "random logic determinism" `Quick
          test_random_logic_determinism;
        Alcotest.test_case "random logic counts" `Quick
          test_random_logic_counts;
        Alcotest.test_case "iscas suite sizes" `Slow test_iscas_suite;
        Alcotest.test_case "iscas unknown" `Quick test_iscas_unknown;
      ] );
    ( "circuit.placement",
      [
        Alcotest.test_case "positions inside die" `Quick test_placement_in_die;
        Alcotest.test_case "cell budget per tile" `Quick test_placement_budget;
        Alcotest.test_case "levelized flow" `Quick test_placement_levelized;
      ] );
  ]
