(* Tests for the paper's first contribution: canonical propagation,
   criticality analysis, graph reduction and timing-model extraction
   (paper Sections III and IV). *)

module Propagate = Hier_ssta.Propagate
module Criticality = Hier_ssta.Criticality
module Reduce = Hier_ssta.Reduce
module Extract = Hier_ssta.Extract
module Timing_model = Hier_ssta.Timing_model
module Tgraph = Ssta_timing.Tgraph
module Build = Ssta_timing.Build
module Form = Ssta_canonical.Form

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let dims = { Form.n_globals = 1; n_pcs = 2 }

let det v = Form.constant dims v

let noisy mean =
  (* 5% global, 5% local-ish, 2% random spread. *)
  Form.make ~mean
    ~globals:[| 0.05 *. mean |]
    ~pcs:[| 0.05 *. mean; 0.0 |]
    ~rand:(0.02 *. mean)

(* ------------------------------------------------------------------ *)
(* Propagation                                                         *)
(* ------------------------------------------------------------------ *)

let diamond weights =
  ( Tgraph.make ~n_vertices:5
      ~edges:[| (0, 2); (0, 3); (1, 3); (2, 4); (3, 4) |]
      ~inputs:[| 0; 1 |] ~outputs:[| 4 |],
    weights )

let test_propagate_deterministic_matches_sta () =
  let g, forms =
    diamond [| det 1.0; det 10.0; det 2.0; det 5.0; det 1.0 |]
  in
  let arr = Propagate.forward_all g ~forms in
  (match arr.(4) with
  | Some f -> close "deterministic arrival" 11.0 f.Form.mean
  | None -> Alcotest.fail "output unreachable");
  match arr.(2) with
  | Some f -> close "mid arrival" 1.0 f.Form.mean
  | None -> Alcotest.fail "vertex 2 unreachable"

let test_propagate_exclusive_sources () =
  let g, forms =
    diamond [| det 1.0; det 10.0; det 2.0; det 5.0; det 1.0 |]
  in
  let arr = Propagate.forward g ~forms ~sources:[| 1 |] in
  Alcotest.(check bool) "2 unreachable" true (arr.(2) = None);
  match arr.(4) with
  | Some f -> close "arrival from input 1" 3.0 f.Form.mean
  | None -> Alcotest.fail "output unreachable from 1"

let test_propagate_backward () =
  let g, forms =
    diamond [| det 1.0; det 10.0; det 2.0; det 5.0; det 1.0 |]
  in
  let req = Propagate.backward_to g ~forms 4 in
  (match req.(0) with
  | Some f -> close "required at 0" 11.0 f.Form.mean
  | None -> Alcotest.fail "0 cannot reach output");
  match req.(4) with
  | Some f -> close "required at output" 0.0 f.Form.mean
  | None -> Alcotest.fail "output misses itself"

let test_propagate_max_includes_variance () =
  (* Statistical max of two equal-mean, weakly-correlated paths exceeds the
     deterministic value. *)
  let g, forms =
    diamond [| noisy 5.0; noisy 4.0; noisy 2.0; noisy 5.0; noisy 6.0 |]
  in
  let arr = Propagate.forward_all g ~forms in
  match arr.(4) with
  | Some f ->
      Alcotest.(check bool) "mean above deterministic" true (f.Form.mean > 10.0);
      Alcotest.(check bool) "has variance" true (Form.std f > 0.0)
  | None -> Alcotest.fail "unreachable"

let test_scalar_summaries () =
  let g, forms =
    diamond [| det 1.0; det 10.0; det 2.0; det 5.0; det 1.0 |]
  in
  let arr = Propagate.forward g ~forms ~sources:[| 1 |] in
  let mu, sigma = Propagate.scalar_summaries arr in
  Alcotest.(check bool) "unreachable is nan" true (Float.is_nan mu.(2));
  close "mu at 4" 3.0 mu.(4);
  close "sigma deterministic" 0.0 sigma.(4)

(* ------------------------------------------------------------------ *)
(* Criticality                                                         *)
(* ------------------------------------------------------------------ *)

let test_criticality_dominant_path () =
  (* Diamond where path 0->3->4 strongly dominates 0->2->4. *)
  let g, forms =
    diamond [| noisy 1.0; noisy 10.0; noisy 2.0; noisy 1.0; noisy 10.0 |]
  in
  let r = Criticality.compute ~exact:true ~delta:0.05 g ~forms in
  (* Edge 1 = (0,3) and edge 4 = (3,4) are on the dominant path. *)
  Alcotest.(check bool) "dominant kept" true r.Criticality.keep.(1);
  Alcotest.(check bool) "dominant kept" true r.Criticality.keep.(4);
  Alcotest.(check bool)
    "dominant criticality high" true
    (r.Criticality.cm.(1) > 0.9);
  (* Edge 0 = (0,2) and edge 3 = (2,4) are far off the pace. *)
  Alcotest.(check bool) "dominated removed" true (not r.Criticality.keep.(0));
  Alcotest.(check bool)
    "dominated criticality low" true
    (r.Criticality.cm.(0) < 0.05)

let test_criticality_chain_all_critical () =
  (* A single chain: every edge has criticality 1. *)
  let g =
    Tgraph.make ~n_vertices:4
      ~edges:[| (0, 1); (1, 2); (2, 3) |]
      ~inputs:[| 0 |] ~outputs:[| 3 |]
  in
  let forms = [| noisy 1.0; noisy 2.0; noisy 3.0 |] in
  let r = Criticality.compute ~exact:true ~delta:0.05 g ~forms in
  Array.iteri
    (fun e k ->
      Alcotest.(check bool) (Printf.sprintf "edge %d kept" e) true k;
      close ~tol:1e-6
        (Printf.sprintf "edge %d criticality 1" e)
        1.0 r.Criticality.cm.(e))
    r.Criticality.keep

let test_criticality_balanced_half () =
  (* Two statistically identical parallel paths: each has criticality ~0.5
     under any tie-breaking, so both survive delta = 0.05. *)
  let g, forms =
    diamond [| noisy 5.0; noisy 5.0; noisy 2.0; noisy 5.0; noisy 5.0 |]
  in
  let r = Criticality.compute ~exact:true ~delta:0.05 g ~forms in
  Alcotest.(check bool) "both kept" true
    (r.Criticality.keep.(0) && r.Criticality.keep.(1));
  Alcotest.(check bool)
    "balanced criticality"
    true
    (r.Criticality.cm.(0) > 0.2 && r.Criticality.cm.(0) < 0.8)

let test_criticality_pair_specific () =
  (* The paper's definition is per input-output pair: an edge that is
     non-critical for the global worst path can still be fully critical for
     its own pair.  Inputs 0 and 1 drive separate chains to separate
     outputs; the slow chain dominates globally but both chains must be
     kept. *)
  let g =
    Tgraph.make ~n_vertices:4
      ~edges:[| (0, 2); (1, 3) |]
      ~inputs:[| 0; 1 |] ~outputs:[| 2; 3 |]
  in
  let forms = [| noisy 100.0; noisy 1.0 |] in
  let r = Criticality.compute ~exact:true ~delta:0.05 g ~forms in
  Alcotest.(check bool) "slow chain kept" true r.Criticality.keep.(0);
  Alcotest.(check bool) "fast chain kept too" true r.Criticality.keep.(1);
  close ~tol:1e-6 "fast chain criticality 1 for its pair" 1.0
    r.Criticality.cm.(1)

let test_criticality_delta_validation () =
  let g, forms = diamond [| det 1.0; det 1.0; det 1.0; det 1.0; det 1.0 |] in
  Alcotest.(check bool)
    "delta >= 1 rejected" true
    (try
       ignore (Criticality.compute ~delta:1.0 g ~forms);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Reduction                                                           *)
(* ------------------------------------------------------------------ *)

let all_keep g = Array.make (Tgraph.n_edges g) true

let test_serial_merge_chain () =
  (* input -> a -> b -> output collapses to one edge with summed delay. *)
  let g =
    Tgraph.make ~n_vertices:4
      ~edges:[| (0, 1); (1, 2); (2, 3) |]
      ~inputs:[| 0 |] ~outputs:[| 3 |]
  in
  let forms = [| noisy 1.0; noisy 2.0; noisy 3.0 |] in
  let w = Reduce.of_graph g ~forms ~keep:(all_keep g) in
  Reduce.reduce w;
  Alcotest.(check int) "one edge" 1 (Reduce.n_live_edges w);
  Alcotest.(check int) "two vertices" 2 (Reduce.n_live_vertices w);
  let rg, rforms, _, _ = Reduce.freeze w in
  Alcotest.(check int) "frozen edges" 1 (Tgraph.n_edges rg);
  close ~tol:1e-9 "summed mean" 6.0 rforms.(0).Form.mean;
  (* Serial merges are exact: variance adds covariantly. *)
  let direct = Form.add (Form.add forms.(0) forms.(1)) forms.(2) in
  close ~tol:1e-9 "summed variance" (Form.variance direct)
    (Form.variance rforms.(0))

let test_parallel_merge () =
  let g =
    Tgraph.make ~n_vertices:2
      ~edges:[| (0, 1); (0, 1); (0, 1) |]
      ~inputs:[| 0 |] ~outputs:[| 1 |]
  in
  let forms = [| noisy 4.0; noisy 5.0; noisy 4.5 |] in
  let w = Reduce.of_graph g ~forms ~keep:(all_keep g) in
  Reduce.reduce w;
  Alcotest.(check int) "merged to one edge" 1 (Reduce.n_live_edges w);
  let _, rforms, _, _ = Reduce.freeze w in
  let direct = Form.max_list (Array.to_list forms) in
  close ~tol:0.2 "max-merged mean" direct.Form.mean rforms.(0).Form.mean

let test_prune_dead_vertices () =
  (* Removing the only edge into an internal vertex makes its whole
     downstream cone dead (unless reachable otherwise). *)
  let g =
    Tgraph.make ~n_vertices:5
      ~edges:[| (0, 2); (2, 3); (0, 4); (3, 4) |]
      ~inputs:[| 0 |] ~outputs:[| 4 |]
  in
  let forms = Array.init 4 (fun _ -> noisy 1.0) in
  let keep = [| false; true; true; true |] in
  let w = Reduce.of_graph g ~forms ~keep in
  Reduce.reduce w;
  (* Vertices 2 and 3 die; only input -> output edge remains. *)
  Alcotest.(check int) "edges after prune" 1 (Reduce.n_live_edges w);
  Alcotest.(check int) "vertices after prune" 2 (Reduce.n_live_vertices w)

let test_ports_never_merged () =
  (* A chain whose middle vertex is itself an output must keep the port. *)
  let g =
    Tgraph.make ~n_vertices:3
      ~edges:[| (0, 1); (1, 2) |]
      ~inputs:[| 0 |] ~outputs:[| 1; 2 |]
  in
  let forms = [| noisy 1.0; noisy 2.0 |] in
  let w = Reduce.of_graph g ~forms ~keep:(all_keep g) in
  Reduce.reduce w;
  Alcotest.(check int) "both edges stay" 2 (Reduce.n_live_edges w);
  Alcotest.(check int) "all vertices stay" 3 (Reduce.n_live_vertices w)

let test_reduce_preserves_io_delays () =
  (* With keep = all (delta -> 0), reduction must preserve the IO delay
     matrix up to max-approximation reordering. *)
  let nl = Ssta_circuit.Adder.ripple ~bits:6 () in
  let b = Build.characterize nl in
  let g = b.Build.graph in
  let w = Reduce.of_graph g ~forms:b.Build.forms ~keep:(all_keep g) in
  Reduce.reduce w;
  let rg, rforms, rin, rout = Reduce.freeze w in
  ignore rin;
  ignore rout;
  Alcotest.(check bool)
    "reduction shrinks graph" true
    (Tgraph.n_edges rg < Tgraph.n_edges g);
  (* Compare a few IO delays. *)
  let orig_arr i = Propagate.forward g ~forms:b.Build.forms ~sources:[| i |] in
  let red_arr i = Propagate.forward rg ~forms:rforms ~sources:[| rg.Tgraph.inputs.(i) |] in
  List.iter
    (fun i ->
      let ao = orig_arr g.Tgraph.inputs.(i) and ar = red_arr i in
      Array.iteri
        (fun j out_o ->
          let out_r = rg.Tgraph.outputs.(j) in
          match (ao.(out_o), ar.(out_r)) with
          | None, None -> ()
          | Some fo, Some fr ->
              if abs_float (fo.Form.mean -. fr.Form.mean) > 0.01 *. fo.Form.mean
              then
                Alcotest.fail
                  (Printf.sprintf "pair (%d,%d): %g vs %g" i j fo.Form.mean
                     fr.Form.mean);
              if abs_float (Form.std fo -. Form.std fr) > 0.05 *. Form.std fo
              then Alcotest.fail "std drift too large"
          | _ -> Alcotest.fail "reachability changed by reduction")
        g.Tgraph.outputs)
    [ 0; 3; 7 ]

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let test_extract_c432 () =
  let b = Build.characterize (Ssta_circuit.Iscas.build "c432") in
  let model = Extract.extract ~delta:0.05 b in
  let pe, pv = Timing_model.compression model in
  Alcotest.(check bool) "compresses edges" true (pe < 0.6);
  Alcotest.(check bool) "compresses vertices" true (pv < 0.6);
  Alcotest.(check int)
    "ports preserved"
    (Array.length b.Build.graph.Tgraph.inputs
    + Array.length b.Build.graph.Tgraph.outputs)
    (Timing_model.n_inputs model + Timing_model.n_outputs model)

let test_extract_io_accuracy_vs_full_ssta () =
  (* Model IO delays vs full-graph SSTA IO delays (paper's accuracy claim,
     with SSTA as reference to isolate extraction error from MC noise). *)
  let b = Build.characterize (Ssta_circuit.Iscas.build "c432") in
  let model = Extract.extract ~delta:0.05 b in
  let io = Timing_model.io_delays model in
  let g = b.Build.graph in
  let worst_mean = ref 0.0 and worst_std = ref 0.0 in
  Array.iteri
    (fun i input ->
      let arr = Propagate.forward g ~forms:b.Build.forms ~sources:[| input |] in
      Array.iteri
        (fun j out ->
          match (io.(i).(j), arr.(out)) with
          | Some fm, Some fo ->
              worst_mean :=
                Float.max !worst_mean
                  (abs_float (fm.Form.mean -. fo.Form.mean) /. fo.Form.mean);
              worst_std :=
                Float.max !worst_std
                  (abs_float (Form.std fm -. Form.std fo) /. Form.std fo)
          | None, Some fo ->
              (* Dropping a weak pair entirely is only acceptable if its
                 delay was dominated; reject loudly. *)
              Alcotest.fail
                (Printf.sprintf "model lost pair (%d,%d) of delay %g" i j
                   fo.Form.mean)
          | Some _, None -> Alcotest.fail "model invented a pair"
          | None, None -> ())
        g.Tgraph.outputs)
    g.Tgraph.inputs;
  Alcotest.(check bool)
    (Printf.sprintf "worst mean error %.3f%% < 2%%" (100.0 *. !worst_mean))
    true (!worst_mean < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "worst std error %.3f%% < 12%%" (100.0 *. !worst_std))
    true (!worst_std < 0.12)

let test_extract_delta_tradeoff () =
  (* Larger delta must not produce larger models. *)
  let b = Build.characterize (Ssta_circuit.Iscas.build "c499") in
  let m1 = Extract.extract ~delta:0.01 b in
  let m2 = Extract.extract ~delta:0.2 b in
  Alcotest.(check bool)
    "monotone compression" true
    (m2.Timing_model.stats.Timing_model.model_edges
    <= m1.Timing_model.stats.Timing_model.model_edges)

let test_extract_histogram_bimodal () =
  (* Paper Fig. 6: criticalities pile up at 0 and 1. *)
  let b = Build.characterize (Ssta_circuit.Iscas.build "c880") in
  let _, crit = Extract.extract_with_criticality ~exact:true ~delta:0.05 b in
  let cm = crit.Criticality.cm in
  let n = float_of_int (Array.length cm) in
  let low =
    Array.fold_left (fun k c -> if c < 0.05 then k + 1 else k) 0 cm
  in
  let high =
    Array.fold_left (fun k c -> if c > 0.9 then k + 1 else k) 0 cm
  in
  Alcotest.(check bool)
    (Printf.sprintf "bimodal: %d low, %d high of %.0f" low high n)
    true
    (float_of_int (low + high) /. n > 0.5)

let suites =
  [
    ( "core.propagate",
      [
        Alcotest.test_case "deterministic = STA" `Quick
          test_propagate_deterministic_matches_sta;
        Alcotest.test_case "exclusive sources" `Quick
          test_propagate_exclusive_sources;
        Alcotest.test_case "backward required" `Quick test_propagate_backward;
        Alcotest.test_case "max adds variance" `Quick
          test_propagate_max_includes_variance;
        Alcotest.test_case "scalar summaries" `Quick test_scalar_summaries;
      ] );
    ( "core.criticality",
      [
        Alcotest.test_case "dominant path" `Quick test_criticality_dominant_path;
        Alcotest.test_case "chain all critical" `Quick
          test_criticality_chain_all_critical;
        Alcotest.test_case "balanced half" `Quick test_criticality_balanced_half;
        Alcotest.test_case "pair-specific definition" `Quick
          test_criticality_pair_specific;
        Alcotest.test_case "delta validation" `Quick
          test_criticality_delta_validation;
      ] );
    ( "core.reduce",
      [
        Alcotest.test_case "serial merge chain" `Quick test_serial_merge_chain;
        Alcotest.test_case "parallel merge" `Quick test_parallel_merge;
        Alcotest.test_case "prune dead" `Quick test_prune_dead_vertices;
        Alcotest.test_case "ports protected" `Quick test_ports_never_merged;
        Alcotest.test_case "IO delays preserved" `Quick
          test_reduce_preserves_io_delays;
      ] );
    ( "core.extract",
      [
        Alcotest.test_case "c432 compression" `Quick test_extract_c432;
        Alcotest.test_case "IO accuracy vs full SSTA" `Quick
          test_extract_io_accuracy_vs_full_ssta;
        Alcotest.test_case "delta tradeoff" `Quick test_extract_delta_tradeoff;
        Alcotest.test_case "criticality histogram bimodal" `Slow
          test_extract_histogram_bimodal;
      ] );
  ]
