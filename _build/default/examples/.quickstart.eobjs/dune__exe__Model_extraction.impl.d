examples/model_extraction.ml: Array Float Hier_ssta Printf Ssta_canonical Ssta_circuit Ssta_gauss Ssta_timing Sys
