examples/ip_handoff.ml: Array Filename Float Format Hier_ssta In_channel Int64 Printf Ssta_canonical Ssta_circuit Ssta_gauss Ssta_mc Ssta_timing Ssta_variation Sys
