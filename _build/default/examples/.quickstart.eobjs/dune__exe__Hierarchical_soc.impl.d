examples/hierarchical_soc.ml: Array Format Hier_ssta Printf Ssta_canonical Ssta_circuit Ssta_gauss Ssta_mc Ssta_timing Sys
