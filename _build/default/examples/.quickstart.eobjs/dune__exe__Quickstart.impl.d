examples/quickstart.ml: Format Hier_ssta Printf Ssta_canonical Ssta_circuit Ssta_gauss Ssta_mc Ssta_timing Ssta_variation
