examples/quickstart.mli:
