examples/model_extraction.mli:
