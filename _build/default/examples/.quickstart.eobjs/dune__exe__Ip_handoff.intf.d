examples/ip_handoff.mli:
