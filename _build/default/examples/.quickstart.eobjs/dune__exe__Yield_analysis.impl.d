examples/yield_analysis.ml: Hier_ssta List Printf Ssta_canonical Ssta_circuit Ssta_timing
