examples/hierarchical_soc.mli:
