(* Yield analysis: what SSTA is for.  Compares two adder architectures of
   the same function under process variation and reports the clock period
   each needs at several yield targets - including the crossover where the
   nominally-faster design is not the statistically-safer one.

   Run with:  dune exec examples/yield_analysis.exe *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Build = Ssta_timing.Build

let analyze name netlist =
  let b = Build.characterize netlist in
  let nominal =
    Ssta_timing.Sta.design_delay b.Build.graph
      ~weights:(Build.nominal_weights b)
  in
  let arr = H.Propagate.forward_all b.Build.graph ~forms:b.Build.forms in
  let delay =
    match
      H.Propagate.max_over arr b.Build.graph.Ssta_timing.Tgraph.outputs
    with
    | Some f -> f
    | None -> failwith "unreachable outputs"
  in
  Printf.printf "%-24s %5d gates  nominal %8.1f ps  ssta %8.1f +/- %.1f ps\n"
    name
    (Ssta_circuit.Netlist.n_gates netlist)
    nominal delay.Form.mean (Form.std delay);
  delay

let () =
  let bits = 32 in
  let ripple = analyze "ripple-carry" (Ssta_circuit.Adder.ripple ~bits ()) in
  let csel =
    analyze "carry-select (8b blocks)"
      (Ssta_circuit.Adder.carry_select ~bits ~block:8 ())
  in
  Printf.printf "\n%-8s %16s %16s\n" "yield" "ripple clock" "carry-select clock";
  List.iter
    (fun y ->
      Printf.printf "%6.2f%% %14.1f ps %16.1f ps\n" (100.0 *. y)
        (H.Yield.clock_for_yield ripple ~yield:y)
        (H.Yield.clock_for_yield csel ~yield:y))
    [ 0.5; 0.9; 0.99; 0.999; 0.9999 ];
  (* Where the distributions place the 3-sigma guard band. *)
  let guard f = H.Yield.clock_for_yield f ~yield:0.9987 -. f.Form.mean in
  Printf.printf "\n3-sigma guard band: ripple %.1f ps, carry-select %.1f ps\n"
    (guard ripple) (guard csel);
  Printf.printf "correlation-aware margin is what the paper's hierarchical\n";
  Printf.printf "flow preserves when these blocks become IP macros.\n"
