(* The gray-box IP flow end-to-end (paper Section I motivation): an IP
   vendor characterizes a macro and ships a timing-model *file* (no
   netlist); an integrator loads two different macros, places them on a die
   with free space between them, wires them and runs design-level SSTA -
   checked against flattened Monte Carlo (which the integrator could not
   run in reality, lacking the netlists).

   Run with:  dune exec examples/ip_handoff.exe *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Tile = Ssta_variation.Tile
module Stats = Ssta_gauss.Stats

let vendor_ships name netlist =
  (* Vendor side: characterize, extract, serialize. *)
  let build = Ssta_timing.Build.characterize netlist in
  let model = H.Extract.extract ~delta:0.05 build in
  let path = Filename.temp_file name ".hssta-model" in
  H.Model_io.save model ~path;
  Printf.printf "vendor: %s -> %s (%d -> %d edges, %d bytes)\n" name path
    model.H.Timing_model.stats.H.Timing_model.original_edges
    model.H.Timing_model.stats.H.Timing_model.model_edges
    (In_channel.with_open_bin path In_channel.length |> Int64.to_int);
  (build, path)

let () =
  (* Two different macros: an 8x8 multiplier and a 16-bit carry-select
     adder.  The multiplier's 16 product bits feed the adder's first
     operand. *)
  let mult = Ssta_circuit.Multiplier.make ~name:"mult8" ~bits:8 () in
  let adder =
    Ssta_circuit.Adder.carry_select ~name:"csel16" ~bits:16 ~block:4 ()
  in
  let mult_build, mult_path = vendor_ships "mult8" mult in
  let adder_build, adder_path = vendor_ships "csel16" adder in

  (* Integrator side: load the models (the netlist builds are only kept
     around here so the example can run the golden MC afterwards). *)
  let mult_model = H.Model_io.load ~path:mult_path in
  let adder_model = H.Model_io.load ~path:adder_path in
  Sys.remove mult_path;
  Sys.remove adder_path;

  (* Floorplan: macros side by side with a routing channel between them -
     the uncovered area gets default-grid filler tiles (paper Fig. 4). *)
  let mdie = mult_model.H.Timing_model.die in
  let adie = adder_model.H.Timing_model.die in
  let gap = 20.0 in
  let die_w = Tile.width mdie +. gap +. Tile.width adie in
  let die_h = 2.0 *. Float.max (Tile.height mdie) (Tile.height adie) in
  let die = Tile.make ~x0:0.0 ~y0:0.0 ~x1:die_w ~y1:die_h in
  let instances =
    [|
      { H.Floorplan.label = "mult"; build = Some mult_build;
        model = mult_model; origin = (0.0, 0.0) };
      { H.Floorplan.label = "adder"; build = Some adder_build;
        model = adder_model; origin = (Tile.width mdie +. gap, 0.0) };
    |]
  in
  (* Product bits -> adder operand A (ports 0..15). *)
  let connections =
    Array.init 16 (fun k ->
        ( { H.Floorplan.inst = 0; port = k },
          { H.Floorplan.inst = 1; port = k } ))
  in
  let fp = H.Floorplan.create ~die ~instances ~connections in
  let dg = H.Design_grid.build fp in
  let module_tiles =
    Array.fold_left ( + ) 0 dg.H.Design_grid.instance_n_tiles
  in
  Printf.printf
    "integrator: %d design PIs, %d POs; %d grid tiles (%d module + %d filler)\n"
    (Array.length fp.H.Floorplan.ext_inputs)
    (Array.length fp.H.Floorplan.ext_outputs)
    (Array.length dg.H.Design_grid.tiles)
    module_tiles
    (Array.length dg.H.Design_grid.tiles - module_tiles);

  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let d = rep.H.Hier_analysis.delay in
  Printf.printf "hierarchical SSTA:  mean %8.1f ps, sigma %6.1f ps (%.4fs)\n"
    d.Form.mean (Form.std d) rep.H.Hier_analysis.wall_seconds;

  (* Variance budget of the design delay. *)
  Format.printf "%a@."
    (fun ppf () ->
      H.Diagnostics.pp ppf (H.Diagnostics.budget ~n_params:3 d))
    ();

  (* Golden check (vendor-only capability): flattened Monte Carlo. *)
  let ctx = H.Hier_analysis.flatten fp dg in
  let mc = Ssta_mc.Flat_mc.run ~iterations:3000 ~seed:5 ctx in
  Printf.printf "flattened MC:       mean %8.1f ps, sigma %6.1f ps\n"
    (Stats.mean mc.Ssta_mc.Flat_mc.delays)
    (Stats.std mc.Ssta_mc.Flat_mc.delays);
  Printf.printf "KS distance: %.4f\n"
    (Stats.ks_distance mc.Ssta_mc.Flat_mc.delays (Form.cdf d))
