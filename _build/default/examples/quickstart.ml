(* Quickstart: build a small combinational circuit, characterize it under
   the default 90nm-like variation model, and compare corner STA, canonical
   SSTA and Monte Carlo.

   Run with:  dune exec examples/quickstart.exe *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Build = Ssta_timing.Build
module Stats = Ssta_gauss.Stats

let () =
  (* 1. A circuit: a 16-bit ripple-carry adder from the bundled generators.
     Any topologically-ordered netlist built with Netlist.Builder works. *)
  let netlist = Ssta_circuit.Adder.ripple ~bits:16 () in
  Format.printf "circuit: %a@." Ssta_circuit.Netlist.pp_stats netlist;

  (* 2. Characterize: placement, correlation grid (< 100 cells each), PCA
     basis, and one canonical delay form per timing-graph edge. *)
  let b = Build.characterize netlist in
  Printf.printf "grid: %d tiles, PC dimension %d\n"
    (Ssta_variation.Basis.n_tiles b.Build.basis)
    b.Build.basis.Ssta_variation.Basis.dims.Form.n_pcs;

  (* 3. Corner STA: plain longest path on nominal delays. *)
  let nominal =
    Ssta_timing.Sta.design_delay b.Build.graph
      ~weights:(Build.nominal_weights b)
  in
  Printf.printf "corner STA:   %8.1f ps (nominal)\n" nominal;

  (* 4. Canonical SSTA: one block-based pass, a full distribution. *)
  let arr = H.Propagate.forward_all b.Build.graph ~forms:b.Build.forms in
  let delay =
    match
      H.Propagate.max_over arr b.Build.graph.Ssta_timing.Tgraph.outputs
    with
    | Some f -> f
    | None -> failwith "no output reachable"
  in
  Printf.printf "SSTA:         %8.1f ps mean, %6.1f ps sigma\n"
    delay.Form.mean (Form.std delay);
  Printf.printf "  99.9%% yield clock: %8.1f ps\n"
    (H.Yield.clock_for_yield delay ~yield:0.999);

  (* 5. Monte Carlo cross-check on the same variation model. *)
  let mc =
    Ssta_mc.Flat_mc.run ~iterations:5000 ~seed:1
      (Ssta_mc.Sampler.ctx_of_build b)
  in
  Printf.printf "Monte Carlo:  %8.1f ps mean, %6.1f ps sigma (5000 iters)\n"
    (Stats.mean mc.Ssta_mc.Flat_mc.delays)
    (Stats.std mc.Ssta_mc.Flat_mc.delays)
