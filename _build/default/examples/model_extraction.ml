(* Model extraction walkthrough (paper Section IV): extract a gray-box
   statistical timing model from a benchmark circuit, inspect what the
   criticality filter and the merge operations each contribute, and verify
   the model's input-output delays against the original graph.

   Run with:  dune exec examples/model_extraction.exe [circuit] [delta] *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Build = Ssta_timing.Build
module Tgraph = Ssta_timing.Tgraph

let () =
  let name = try Sys.argv.(1) with _ -> "c880" in
  let delta = try float_of_string Sys.argv.(2) with _ -> 0.05 in
  let netlist = Ssta_circuit.Iscas.build name in
  let b = Build.characterize netlist in
  Printf.printf "original timing graph: %d edges, %d vertices\n"
    (Tgraph.n_edges b.Build.graph)
    (Tgraph.n_vertices b.Build.graph);

  (* Step 1+2 of paper Fig. 3: criticality analysis and edge removal. *)
  let model, crit =
    H.Extract.extract_with_criticality ~exact:true ~delta b
  in
  let removed =
    Array.fold_left (fun k keep -> if keep then k else k + 1) 0
      crit.H.Criticality.keep
  in
  Printf.printf
    "criticality filter (delta=%.3g): %d edges removed, %d exact tightness \
     evaluations over %d screened (edge, pair) combinations\n"
    delta removed crit.H.Criticality.exact_evals
    crit.H.Criticality.screened_pairs;
  let hist =
    Ssta_gauss.Stats.histogram ~lo:0.0 ~hi:1.0 ~bins:10 crit.H.Criticality.cm
  in
  Printf.printf "criticality histogram (10 bins): ";
  Array.iter (fun c -> Printf.printf "%d " c) hist;
  print_newline ();

  (* Step 3: serial/parallel merges (already applied inside extract). *)
  let s = model.H.Timing_model.stats in
  Printf.printf
    "after merges: %d edges, %d vertices (edge removal alone left %d)\n"
    s.H.Timing_model.model_edges s.H.Timing_model.model_vertices
    (s.H.Timing_model.original_edges - removed);
  let pe, pv = H.Timing_model.compression model in
  Printf.printf "compression: pe=%.0f%% pv=%.0f%% in %.2fs\n" (100. *. pe)
    (100. *. pv) s.H.Timing_model.extraction_seconds;

  (* Validation: the model's delay matrix vs the original graph's (both by
     canonical SSTA, isolating extraction error from MC noise). *)
  let io = H.Timing_model.io_delays model in
  let g = b.Build.graph in
  let worst_mean = ref 0.0 and worst_std = ref 0.0 and pairs = ref 0 in
  Array.iteri
    (fun i input ->
      let arr =
        H.Propagate.forward g ~forms:b.Build.forms ~sources:[| input |]
      in
      Array.iteri
        (fun j out ->
          match (io.(i).(j), arr.(out)) with
          | Some fm, Some fo ->
              incr pairs;
              worst_mean :=
                Float.max !worst_mean
                  (abs_float (fm.Form.mean -. fo.Form.mean) /. fo.Form.mean);
              worst_std :=
                Float.max !worst_std
                  (abs_float (Form.std fm -. Form.std fo) /. Form.std fo)
          | _ -> ())
        g.Tgraph.outputs)
    g.Tgraph.inputs;
  Printf.printf
    "model vs original SSTA over %d IO pairs: worst mean err %.3f%%, worst \
     sigma err %.3f%%\n"
    !pairs (100. *. !worst_mean) (100. *. !worst_std)
