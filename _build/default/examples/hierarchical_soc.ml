(* Hierarchical SoC analysis (paper Section V / Fig. 7): pre-characterize a
   multiplier macro once, instantiate it four times on a top-level die, and
   compare design-level SSTA with independent-variable replacement against
   the global-correlation-only baseline and flattened Monte Carlo.

   Run with:  dune exec examples/hierarchical_soc.exe [bits] [mc_iters] *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Stats = Ssta_gauss.Stats

let () =
  let bits = try int_of_string Sys.argv.(1) with _ -> 8 in
  let iters = try int_of_string Sys.argv.(2) with _ -> 3000 in

  (* IP vendor side: characterize the macro and ship a timing model. *)
  let macro = Ssta_circuit.Multiplier.make ~bits () in
  let build = Ssta_timing.Build.characterize macro in
  let model = H.Extract.extract ~delta:0.05 build in
  Format.printf "macro model: %a@." H.Timing_model.pp_stats model;

  (* Integrator side: place four instances in two columns, cross-connect
     column 1 outputs to column 2 inputs (the paper's experimental design;
     abutted placement maximizes inter-module correlation). *)
  let fp = H.Floorplan.mult_grid ~label:"mult" ~build ~model () in
  let dg = H.Design_grid.build fp in
  Printf.printf
    "design: %d instances, %d connections, %d PIs, %d POs, %d grid tiles\n"
    (Array.length fp.H.Floorplan.instances)
    (Array.length fp.H.Floorplan.connections)
    (Array.length fp.H.Floorplan.ext_inputs)
    (Array.length fp.H.Floorplan.ext_outputs)
    (Array.length dg.H.Design_grid.tiles);

  (* Design-level SSTA with variable replacement (the paper's method). *)
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let d = rep.H.Hier_analysis.delay in
  Printf.printf "proposed method:         mean %8.1f ps, sigma %7.1f ps (%.4fs)\n"
    d.Form.mean (Form.std d) rep.H.Hier_analysis.wall_seconds;

  (* Baseline: share only the global variables across modules. *)
  let glo = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Global_only in
  let gd = glo.H.Hier_analysis.delay in
  Printf.printf "global correlation only: mean %8.1f ps, sigma %7.1f ps\n"
    gd.Form.mean (Form.std gd);

  (* Golden reference: Monte Carlo on the flattened design. *)
  let ctx = H.Hier_analysis.flatten fp dg in
  let mc = Ssta_mc.Flat_mc.run ~iterations:iters ~seed:11 ctx in
  let delays = mc.Ssta_mc.Flat_mc.delays in
  Printf.printf "flattened Monte Carlo:   mean %8.1f ps, sigma %7.1f ps (%d iters, %.2fs)\n"
    (Stats.mean delays) (Stats.std delays) iters
    mc.Ssta_mc.Flat_mc.wall_seconds;
  Printf.printf "KS distance: proposed %.4f, global-only %.4f\n"
    (Stats.ks_distance delays (Form.cdf d))
    (Stats.ks_distance delays (Form.cdf gd));
  Printf.printf "speedup vs MC at this iteration count: %.0fx\n"
    (mc.Ssta_mc.Flat_mc.wall_seconds /. rep.H.Hier_analysis.wall_seconds)
