DUNE ?= dune

.PHONY: all build test bench bench-smoke bench-gate bench-crit bench-par bench-batch bench-large bench-serve chaos check ci fmt fmt-check clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# Full benchmark sweep (slow: includes the c7552 extraction).
bench: build
	$(DUNE) exec bench/main.exe

# Quick sanity pass over the kernel benchmarks: few repetitions, no
# large circuits.  Used by `make check`.
bench-smoke: build
	BENCH_REPS=20 $(DUNE) exec bench/main.exe kernels criticality_c1908 obs_overhead robust_overhead

# Regression gate: regenerate the kernel metrics and compare against the
# committed baseline (timings within +/-30%, counters exact).
# PAR_DOMAINS=1 because Gc.allocated_bytes is per-domain: allocation
# counts are only meaningful on the sequential path.
bench-gate: build
	BENCH_REPS=20 PAR_DOMAINS=1 BENCH_JSON=_build/BENCH_gate.json \
	  $(DUNE) exec bench/main.exe kernels criticality_c1908 obs_overhead robust_overhead
	$(DUNE) exec bench/check_regression.exe -- \
	  BENCH_kernels.json _build/BENCH_gate.json

# Criticality-screen gate: phase breakdown, visit counters and the
# tile-equality assertion of the cone-indexed screen, compared against
# the committed BENCH_crit.json baseline (counters exact, timings within
# the usual tolerance).  PAR_DOMAINS=1 for the same allocation-counting
# reason as bench-gate.
bench-crit: build
	BENCH_REPS=20 PAR_DOMAINS=1 BENCH_JSON=_build/BENCH_crit_run.json \
	  $(DUNE) exec bench/main.exe criticality_screen
	$(DUNE) exec bench/check_regression.exe -- \
	  BENCH_crit.json _build/BENCH_crit_run.json

# Parallel-scaling sweep (1/2/4/8 domains); regenerates BENCH_par.json.
bench-par: build
	BENCH_JSON=BENCH_par.json $(DUNE) exec bench/main.exe mc_par extract_par_c7552

# Scenario-batch gate: per-scenario throughput, the deterministic slab
# footprint, the engine's disabled-observability overhead, the domain
# sweep (with its bit-identity assertions), and the ~1M-gate bounded-RSS
# extraction, compared against the committed BENCH_batch.json baseline.
# Domain counts are pinned inside the experiments (recorded timings at
# domains=1, the sweep at 1/2/4), so PAR_DOMAINS is left alone here.
# The d4 speedup is enforced (GATE_PAR_MIN_SPEEDUP, default 2x) when the
# current machine reports >= 4 cores, informational otherwise.
bench-batch: build
	BENCH_REPS=20 BENCH_JSON=_build/BENCH_batch_run.json \
	  $(DUNE) exec bench/main.exe batch_scenarios batch_overhead batch_large
	$(DUNE) exec bench/check_regression.exe -- \
	  BENCH_batch.json _build/BENCH_batch_run.json

# Large-extraction smoke gate: the ~100k-gate member of the
# Large.of_gates family through characterize + both screen engines +
# end-to-end extraction, against the committed BENCH_large.json.  Two
# hard claims: extract_large_blocked_minspeedup is a Floor (the blocked
# engine must not lose to the per-output reference engine, measured in
# the same process so machine noise divides out - the 100k screen is
# exact-eval dominated, so the honest in-process ratio is ~0.98-1.02x
# and the floor below is a non-regression bound with headroom for that
# run-to-run noise, not a speedup claim; the end-to-end wins land on
# designs whose backward phase dominates), and
# extract_large_peak_rss_mb must hold its committed ceiling (the _mb
# class).  Screen counters are exact.  PAR_DOMAINS=1 keeps the engine
# timings comparable across machines.
bench-large: build
	PAR_DOMAINS=1 BENCH_JSON=_build/BENCH_large_run.json \
	  $(DUNE) exec bench/main.exe extract_large
	GATE_MIN_SPEEDUP=$${GATE_MIN_SPEEDUP:-0.90} \
	  $(DUNE) exec bench/check_regression.exe -- \
	  BENCH_large.json _build/BENCH_large_run.json

# Serve gate: replay the deterministic request corpus against the
# in-process engine on c7552 and compare p50/p99 latencies against the
# committed BENCH_serve.json baseline.  serve_incr_p50_minspeedup is a
# hard floor (GATE_MIN_SPEEDUP, default 5x): the median incremental
# what-if must beat the full re-sweep by at least that ratio.  The
# latency keys default to a +/-50% tolerance (still overridable): they
# are single-request percentiles, noisier than the bechamel means the
# other gates compare, while the enforced speedup floor is a ratio of
# two such percentiles and is machine-independent.
bench-serve: build
	BENCH_JSON=_build/BENCH_serve_run.json \
	  $(DUNE) exec bench/main.exe serve_corpus
	GATE_TIME_TOL=$${GATE_TIME_TOL:-0.5} \
	  $(DUNE) exec bench/check_regression.exe -- \
	  BENCH_serve.json _build/BENCH_serve_run.json

# Chaos harness: crash the daemon at each seeded injection point
# (post-response, torn WAL append, durable-but-unanswered, torn model
# spill), restart it on the same state directory, and require the
# replayed stream to be byte-identical to an uninterrupted run.  The
# structural verdict fields are compared against the committed golden.
chaos: build
	$(DUNE) exec bin/hssta.exe -- chaos \
	  --corpus bench/serve_recovery_corpus_c1908.jsonl \
	  --dir _build/_chaos -o _build/chaos_verdicts.jsonl
	cmp _build/chaos_verdicts.jsonl test/golden/chaos_verdicts.jsonl

check: build test bench-smoke

# What CI runs: build, tests, the bench regression gates, format check.
ci: build test bench-gate bench-crit bench-batch bench-large bench-serve fmt-check

fmt:
	$(DUNE) build @fmt --auto-promote

# Non-mutating format check.  Fails hard: CI runs this in a dedicated
# fmt job with a pinned ocamlformat, and a missing formatter locally is
# a real failure, not a skip (install the version named in .ocamlformat).
fmt-check:
	$(DUNE) build @fmt

clean:
	$(DUNE) clean
