DUNE ?= dune

.PHONY: all build test bench bench-smoke check fmt clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# Full benchmark sweep (slow: includes the c7552 extraction).
bench: build
	$(DUNE) exec bench/main.exe

# Quick sanity pass over the kernel benchmarks: few repetitions, no
# large circuits.  Used by `make check`.
bench-smoke: build
	BENCH_REPS=20 $(DUNE) exec bench/main.exe kernels criticality_c1908

check: build test bench-smoke

fmt:
	$(DUNE) build @fmt --auto-promote

clean:
	$(DUNE) clean
