module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Build = Ssta_timing.Build
module Tgraph = Ssta_timing.Tgraph
module Basis = Ssta_variation.Basis
module Grid = Ssta_variation.Grid
module Tile = Ssta_variation.Tile
module Par = Ssta_par.Par
module Obs = Ssta_obs.Obs
module Propagate = Hier_ssta.Propagate
module Corners = Hier_ssta.Corners
module Criticality = Hier_ssta.Criticality

(* Scenario-batch engine: evaluate S structured deltas over one base
   design in a single invocation, sharing every scenario-invariant piece -
   the topological edge order (Tgraph), the PCA basis, the packed base
   edge forms, the per-input reachability cones - across the whole batch.
   Per-scenario state lives on slab-backed Form_buf storage carved once
   per pool worker, so scenario S+1 reuses scenario S's allocation.

   Determinism: the task grid is a pure function of (S, |I|) - never of
   the domain count - every task writes only its own result slot, and a
   worker's scratch is fully re-derived per scenario (the scenario-forms
   cache only skips re-deriving *identical* content), so batch results
   are bit-identical at every domain count and to S independent
   single-scenario runs. *)

let g_slab_peak = Obs.gauge "batch.slab_bytes_peak"
let c_scenarios = Obs.counter "batch.scenarios"

type grid_variant = Uniform | Gradient of { gx : float; gy : float }

type scenario = {
  label : string;
  corner : Corners.corner;
  delay_scale : float;
  sigma_scale : float;
  grid_variant : grid_variant;
  delta : float;
}

let nominal ?(label = "nominal") () =
  {
    label;
    corner = Corners.Nominal;
    delay_scale = 1.0;
    sigma_scale = 1.0;
    grid_variant = Uniform;
    delta = 0.05;
  }

(* A deterministic default grid over the scenario axes, for the CLI and
   benches: corners cycle, the deterministic scale sweeps +/- a few
   percent, every other scenario applies a spatial gradient. *)
let default_scenarios n =
  Array.init n (fun i ->
      let corner =
        match i mod 4 with
        | 0 -> Corners.Nominal
        | 1 -> Corners.Slow 3.0
        | 2 -> Corners.Fast 3.0
        | _ -> Corners.Global_slow 3.0
      in
      let delay_scale = 1.0 +. (0.02 *. float_of_int (i mod 5)) in
      let sigma_scale = 1.0 +. (0.05 *. float_of_int (i mod 3)) in
      let grid_variant =
        if i mod 2 = 0 then Uniform
        else
          Gradient
            {
              gx = 0.05 *. float_of_int (1 + (i mod 3));
              gy = 0.03 *. float_of_int (i mod 2);
            }
      in
      {
        label = Printf.sprintf "s%02d" i;
        corner;
        delay_scale;
        sigma_scale;
        grid_variant;
        delta = 0.05;
      })

type mode = Delay | Io

type result = {
  scenario : scenario;
  delay : Form.t option;
  out_mu : float array;
  out_sigma : float array;
  io : Form.t option array array;
  kept_edges : int;
}

type base = {
  build : Build.t;
  dims : Form.dims;
  m : int;
  nv : int;
  fbuf : Form_buf.t;
  edge_tile : int array;
  tile_fx : float array;
  tile_fy : float array;
  mutable cones : (int array * int array) option;
}

let prepare (b : Build.t) =
  Obs.with_span "batch.prepare" @@ fun () ->
  let dims = b.Build.basis.Basis.dims in
  let g = b.Build.graph in
  let m = Tgraph.n_edges g in
  let nv = Tgraph.n_vertices g in
  let fbuf = Form_buf.of_forms dims b.Build.forms in
  let grid = b.Build.grid in
  let nt = Grid.n_tiles grid in
  (* Normalized tile-center coordinates in [0, 1): the Gradient variant's
     per-tile factor is 1 + gx * xn + gy * yn over these. *)
  let w = float_of_int grid.Grid.nx *. grid.Grid.pitch in
  let h = float_of_int grid.Grid.ny *. grid.Grid.pitch in
  let tile_fx = Array.make nt 0.0 and tile_fy = Array.make nt 0.0 in
  Array.iteri
    (fun i tl ->
      let cx, cy = Tile.center tl in
      tile_fx.(i) <- (cx -. grid.Grid.x0) /. w;
      tile_fy.(i) <- (cy -. grid.Grid.y0) /. h)
    grid.Grid.tiles;
  let edge_tile = Array.map (fun s -> s.Build.tile) b.Build.sparse in
  { build = b; dims; m; nv; fbuf; edge_tile; tile_fx; tile_fy; cones = None }

(* Per-input reachable cones in CSR form, built once and shared by every
   Io-mode sweep of every scenario: cone of input i = the ascending edge
   indices whose source i reaches, which is exactly the set a full
   [forward_into] scan from i would process. *)
let cone_index base =
  match base.cones with
  | Some c -> c
  | None ->
      let c =
        Obs.with_span "batch.cone_index" @@ fun () ->
        let g = base.build.Build.graph in
        let inputs = g.Tgraph.inputs in
        let ni = Array.length inputs in
        let src = g.Tgraph.src in
        let m = base.m in
        let per =
          Array.init ni (fun i ->
              let seen = Tgraph.reachable_from g inputs.(i) in
              let cnt = ref 0 in
              for e = 0 to m - 1 do
                if Array.unsafe_get seen (Array.unsafe_get src e) then
                  incr cnt
              done;
              let arr = Array.make (max !cnt 1) 0 in
              let k = ref 0 in
              for e = 0 to m - 1 do
                if Array.unsafe_get seen (Array.unsafe_get src e) then begin
                  Array.unsafe_set arr !k e;
                  incr k
                end
              done;
              (arr, !cnt))
        in
        let off = Array.make (ni + 1) 0 in
        Array.iteri (fun i (_, n) -> off.(i + 1) <- off.(i) + n) per;
        let edges = Array.make (max off.(ni) 1) 0 in
        Array.iteri
          (fun i (arr, n) -> Array.blit arr 0 edges off.(i) n)
          per;
        (off, edges)
      in
      base.cones <- Some c;
      c

(* Pool-worker scratch: one slab backs both the scenario form buffer and
   the sweep workspace, so each worker performs exactly one bigarray
   allocation for the whole batch. *)
type scratch = {
  slab : Form_buf.slab;
  sforms : Form_buf.t;
  ws : Propagate.workspace;
  corner_w : float array;
  tile_f : float array;
  mutable cached : int;
  source1 : int array;
}

let scratch_floats base =
  Form_buf.floats_needed base.dims base.m
  + Form_buf.floats_needed base.dims base.nv

let make_scratch base =
  let slab = Form_buf.slab_create (scratch_floats base) in
  let sforms = Form_buf.create ~slab base.dims base.m in
  let ws = Propagate.create_workspace ~slab () in
  {
    slab;
    sforms;
    ws;
    corner_w = Array.make (max base.m 1) 0.0;
    tile_f = Array.make (max (Array.length base.tile_fx) 1) 1.0;
    cached = -1;
    source1 = [| 0 |];
  }

(* Materialize scenario [k]'s edge forms into the worker's slab-backed
   buffer: mean from the corner model scaled by the scenario's
   deterministic factor, coefficients from the base form scaled by the
   sigma factor.  Fully overwrites every slot, so the [cached] skip can
   only ever avoid re-deriving identical content. *)
let set_scenario base scr k (s : scenario) =
  if scr.cached <> k then begin
    Corners.corner_weights_into base.build s.corner ~into:scr.corner_w;
    let nt = Array.length base.tile_fx in
    (match s.grid_variant with
    | Uniform -> Array.fill scr.tile_f 0 nt 1.0
    | Gradient { gx; gy } ->
        for t = 0 to nt - 1 do
          scr.tile_f.(t) <-
            1.0 +. (gx *. base.tile_fx.(t)) +. (gy *. base.tile_fy.(t))
        done);
    let fbuf = base.fbuf
    and sforms = scr.sforms
    and edge_tile = base.edge_tile
    and corner_w = scr.corner_w
    and tile_f = scr.tile_f in
    for e = 0 to base.m - 1 do
      let alpha =
        s.delay_scale *. Array.unsafe_get tile_f (Array.unsafe_get edge_tile e)
      in
      let beta = alpha *. s.sigma_scale in
      Form_buf.recompose_into
        ~mean:(alpha *. Array.unsafe_get corner_w e)
        ~beta ~a:fbuf ~ia:e ~dst:sforms ~idst:e
    done;
    scr.cached <- k
  end

let summarize_outputs scr outputs =
  let no = Array.length outputs in
  let out_mu = Array.make no nan and out_sigma = Array.make no nan in
  let delay = ref None in
  Array.iteri
    (fun j out ->
      match Propagate.ws_form scr.ws out with
      | None -> ()
      | Some f ->
          out_mu.(j) <- f.Form.mean;
          out_sigma.(j) <- Form.std f;
          delay :=
            (match !delay with
            | None -> Some f
            | Some acc -> Some (Form.max2 acc f)))
    outputs;
  (!delay, out_mu, out_sigma)

let input_chunk ni = max 1 ((ni + 31) / 32)

let run ?domains ?(mode = Delay) ?(screen = false) base scenarios =
  Obs.with_span "batch.run" @@ fun () ->
  let s_n = Array.length scenarios in
  let g = base.build.Build.graph in
  let inputs = g.Tgraph.inputs and outputs = g.Tgraph.outputs in
  let ni = Array.length inputs in
  let results = Array.make s_n None in
  (* The worker registry exists so the slab high-water gauge can be
     published after the parallel regions complete; [Par.pool] itself
     hides its free list. *)
  let reg_lock = Mutex.create () in
  let made = ref [] in
  let pool =
    Par.pool (fun () ->
        let scr = make_scratch base in
        Mutex.lock reg_lock;
        made := scr :: !made;
        Mutex.unlock reg_lock;
        scr)
  in
  (match mode with
  | Delay ->
      (* One task per scenario: forms, one all-PI forward sweep, output
         summaries. *)
      Par.run_tasks_pool ?domains ~n_tasks:s_n ~pool
        ~task:(fun scr k ->
          Obs.with_span "batch.scenario" @@ fun () ->
          (* Cooperative cancellation point: a serve request deadline
             expiring mid-batch aborts between scenarios, never inside a
             sweep (Par joins all workers before re-raising). *)
          Ssta_robust.Deadline.check ~operation:"batch.scenario";
          let s = scenarios.(k) in
          set_scenario base scr k s;
          Propagate.forward_into scr.ws g ~forms:scr.sforms ~sources:inputs;
          let delay, out_mu, out_sigma = summarize_outputs scr outputs in
          results.(k) <-
            Some
              {
                scenario = s;
                delay;
                out_mu;
                out_sigma;
                io = [||];
                kept_edges = -1;
              })
        ()
  | Io ->
      (* Scenarios x input-chunks task grid: the chunk layout is a pure
         function of |I|, consecutive tasks share a scenario so a worker
         claiming a run of them re-derives the scenario forms once. *)
      let off, cone_edges = cone_index base in
      let chunk = input_chunk ni in
      let n_ichunks = Par.n_chunks ~chunk ni in
      let io =
        Array.init s_n (fun _ -> Array.make ni ([||] : Form.t option array))
      in
      Par.run_tasks_pool ?domains ~n_tasks:(s_n * n_ichunks) ~pool
        ~task:(fun scr t ->
          Ssta_robust.Deadline.check ~operation:"batch.io";
          let k = t / n_ichunks and c = t mod n_ichunks in
          let s = scenarios.(k) in
          set_scenario base scr k s;
          let lo, hi = Par.chunk_bounds ~chunk ~n:ni c in
          let row = io.(k) in
          for i = lo to hi - 1 do
            scr.source1.(0) <- inputs.(i);
            Propagate.forward_cone_into scr.ws g ~forms:scr.sforms
              ~sources:scr.source1 ~edges:cone_edges ~lo:off.(i)
              ~hi:off.(i + 1);
            row.(i) <-
              Array.map (fun out -> Propagate.ws_form scr.ws out) outputs
          done)
        ();
      for k = 0 to s_n - 1 do
        let s = scenarios.(k) in
        Obs.with_span "batch.scenario" @@ fun () ->
        results.(k) <-
          Some
            {
              scenario = s;
              delay = None;
              out_mu = Array.make (Array.length outputs) nan;
              out_sigma = Array.make (Array.length outputs) nan;
              io = io.(k);
              kept_edges = -1;
            }
      done);
  Obs.add c_scenarios s_n;
  (* Criticality screening is itself a parallel region (it builds its own
     pool), so it runs sequentially over scenarios after the batch sweep -
     nesting domain pools would oversubscribe without changing results. *)
  let results =
    Array.map (function Some r -> r | None -> assert false) results
  in
  let results =
    if not screen then results
    else begin
      let scr = make_scratch base in
      Mutex.lock reg_lock;
      made := scr :: !made;
      Mutex.unlock reg_lock;
      Array.mapi
        (fun k r ->
          Obs.with_span "batch.screen" @@ fun () ->
          set_scenario base scr k r.scenario;
          let forms =
            Array.init base.m (fun e -> Form_buf.get scr.sforms e)
          in
          let crit =
            Criticality.compute ?domains ~delta:r.scenario.delta g ~forms
          in
          let kept =
            Array.fold_left
              (fun n keep -> if keep then n + 1 else n)
              0 crit.Criticality.keep
          in
          { r with kept_edges = kept })
        results
    end
  in
  if Obs.enabled () then
    List.iter
      (fun scr -> Obs.gauge_max g_slab_peak (Form_buf.slab_peak_bytes scr.slab))
      !made;
  results

let run_one ?domains ?mode ?screen base s =
  (run ?domains ?mode ?screen base [| s |]).(0)

(* ------------------------------------------------------------------ *)
(* Scenario-spec JSON                                                  *)
(* ------------------------------------------------------------------ *)

module Json = Ssta_json.Json
module Robust = Ssta_robust.Robust

(* Malformed scenario specs funnel through the graceful-degradation
   layer: under Strict each defect raises a structured Robust.Error
   naming the offending entry; under Repair/Warn the repair counter
   fires and the documented default is substituted, so a spec stream
   (CLI file or serve request) degrades instead of dying on a bare
   exception. *)
let c_scenario_repairs = Robust.counter "robust.scenario_repairs"

let spec_repair ~operation ?indices ?values detail =
  Robust.repair c_scenario_repairs
    (Robust.context ~subsystem:"batch" ~operation ?indices ?values detail)


(* Default substituted by the repair path for an unusable entry (or, for
   an unusable spec, as the whole batch). *)
let repaired_default idx = nominal ~label:(Printf.sprintf "s%02d" idx) ()

let scenario_of_json idx j =
  let fallback = repaired_default idx in
  match j with
  | Json.Obj _ ->
      (* A field that is present with the wrong type, or a malformed
         value, is repaired to that field's default; Strict raises. *)
      let num ~default k =
        match Json.num_field ~default k j with
        | Ok v -> v
        | Error msg ->
            spec_repair ~operation:"scenario_of_json" ~indices:[ idx ] msg;
            default
      in
      let str ~default k =
        match Json.str_field ~default k j with
        | Ok v -> v
        | Error msg ->
            spec_repair ~operation:"scenario_of_json" ~indices:[ idx ] msg;
            default
      in
      let label = str ~default:(Printf.sprintf "s%02d" idx) "label" in
      let k_sigma =
        let k = num ~default:3.0 "k" in
        if Robust.is_finite k then k
        else begin
          spec_repair ~operation:"scenario_of_json" ~indices:[ idx ]
            ~values:[ k ] "corner sigma multiplier k must be finite";
          3.0
        end
      in
      let corner =
        match String.lowercase_ascii (str ~default:"nominal" "corner") with
        | "nominal" -> Corners.Nominal
        | "slow" -> Corners.Slow k_sigma
        | "fast" -> Corners.Fast k_sigma
        | "global_slow" | "global-slow" -> Corners.Global_slow k_sigma
        | other ->
            spec_repair ~operation:"scenario_of_json" ~indices:[ idx ]
              (Printf.sprintf
                 "corner %S is not nominal/slow/fast/global_slow" other);
            Corners.Nominal
      in
      let finite ~default ~what v =
        if Robust.is_finite v then v
        else begin
          spec_repair ~operation:"scenario_of_json" ~indices:[ idx ]
            ~values:[ v ] (what ^ " must be finite");
          default
        end
      in
      let gx = finite ~default:0.0 ~what:"grad_x" (num ~default:0.0 "grad_x")
      and gy =
        finite ~default:0.0 ~what:"grad_y" (num ~default:0.0 "grad_y")
      in
      let grid_variant =
        if gx = 0.0 && gy = 0.0 then Uniform else Gradient { gx; gy }
      in
      let delta =
        let d = num ~default:0.05 "delta" in
        if d > 0.0 && d < 1.0 then d
        else begin
          spec_repair ~operation:"scenario_of_json" ~indices:[ idx ]
            ~values:[ d ] "delta must lie in (0, 1)";
          0.05
        end
      in
      let delay_scale =
        let v = num ~default:1.0 "delay_scale" in
        if Robust.is_finite v && v > 0.0 then v
        else begin
          spec_repair ~operation:"scenario_of_json" ~indices:[ idx ]
            ~values:[ v ] "delay_scale must be finite and positive";
          1.0
        end
      in
      let sigma_scale =
        let v = num ~default:1.0 "sigma_scale" in
        if Robust.is_finite v && v >= 0.0 then v
        else begin
          spec_repair ~operation:"scenario_of_json" ~indices:[ idx ]
            ~values:[ v ] "sigma_scale must be finite and non-negative";
          0.0
        end
      in
      { label; corner; delay_scale; sigma_scale; grid_variant; delta }
  | _ ->
      spec_repair ~operation:"scenario_of_json" ~indices:[ idx ]
        "scenario entries must be objects";
      fallback

let scenarios_of_json j =
  match j with
  | Json.Arr items -> Array.of_list (List.mapi scenario_of_json items)
  | _ ->
      spec_repair ~operation:"scenarios_of_json"
        "scenario spec must be a JSON array of objects";
      [| repaired_default 0 |]

let parse_scenarios text =
  match Json.parse text with
  | Ok j -> Ok (scenarios_of_json j)
  | Error msg ->
      spec_repair ~operation:"parse_scenarios" msg;
      Ok [| repaired_default 0 |]
