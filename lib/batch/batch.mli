(** Scenario-batch engine: evaluate S structured deltas over one base
    design in a single invocation — "characterize once, analyze many
    times" made literal.

    A {!scenario} is a structured delta over a characterized
    {!Ssta_timing.Build.t}: a corner selection (reusing
    {!Hier_ssta.Corners.corner}), a global deterministic delay scale, a
    sensitivity (sigma) scale, and a floorplan gradient over the
    correlation grid's tiles.  All scenario-invariant state — the
    topological edge order, the PCA basis, the packed base edge forms,
    and (in {!Io} mode) the per-input reachability cone index — is built
    once by {!prepare} and shared across the whole batch.

    Per-scenario state lives on slab-backed {!Ssta_canonical.Form_buf}
    storage: each pool worker carves its scenario form buffer and sweep
    workspace out of one capacity-planned slab, so evaluating scenario
    S+1 reuses scenario S's allocation byte for byte (gauge
    [batch.slab_bytes_peak] records the high water).

    Determinism contract: the task grid is a pure function of the batch
    size and the input count — never of the domain count — every task
    writes only its own result slot, and worker scratch is fully
    re-derived per scenario.  A batch of S scenarios is therefore
    bit-identical at every domain count, and bit-identical to S
    independent {!run_one} calls; [test/test_batch.ml] pins both. *)

module Form = Ssta_canonical.Form
module Build = Ssta_timing.Build
module Corners = Hier_ssta.Corners

type grid_variant =
  | Uniform
  | Gradient of { gx : float; gy : float }
      (** Per-tile delay factor [1 + gx * xn + gy * yn] over the tile
          center's normalized die coordinates (xn, yn in [0, 1)) — a
          linear floorplan/grid variant such as a supply or thermal
          gradient. *)

type scenario = {
  label : string;
  corner : Corners.corner;  (** corner selection for the edge means *)
  delay_scale : float;  (** global deterministic delay factor *)
  sigma_scale : float;  (** scales every variation coefficient *)
  grid_variant : grid_variant;
  delta : float;  (** criticality threshold used by [~screen] *)
}

val nominal : ?label:string -> unit -> scenario
(** The identity scenario: nominal corner, unit scales, uniform grid. *)

val default_scenarios : int -> scenario array
(** A deterministic default grid over the scenario axes (corners cycle,
    scales sweep a few percent, alternating gradients) for the CLI and
    benches. *)

type mode =
  | Delay  (** one all-inputs forward sweep per scenario: design delay
               form and per-output summaries *)
  | Io  (** per-input exclusive sweeps over the shared cone index: the
            |I| x |O| delay form matrix per scenario *)

type result = {
  scenario : scenario;
  delay : Form.t option;  (** design delay ({!Delay} mode; [None] in Io) *)
  out_mu : float array;  (** per-output mean, [nan] where unreachable *)
  out_sigma : float array;
  io : Form.t option array array;
      (** {!Io} mode: [io.(i).(j)] is the input-i-to-output-j delay form;
          [[||]] in {!Delay} mode *)
  kept_edges : int;
      (** edges kept by the criticality screen at [scenario.delta];
          [-1] unless [~screen] was set *)
}

type base
(** Scenario-invariant state shared by every scenario of a batch. *)

val prepare : Build.t -> base
(** Pack the base design's edge forms and grid geometry once.  The cone
    index for {!Io} mode is built lazily on first use and cached. *)

val run :
  ?domains:int ->
  ?mode:mode ->
  ?screen:bool ->
  base ->
  scenario array ->
  result array
(** Evaluate the batch, scheduled over scenarios (times input chunks in
    {!Io} mode) on the deterministic domain pool.  [screen] additionally
    runs the criticality screen per scenario (sequentially — the screen
    parallelizes internally) and fills [kept_edges]. *)

val run_one :
  ?domains:int -> ?mode:mode -> ?screen:bool -> base -> scenario -> result
(** A batch of one — the reference point for the bit-identity contract. *)

val scenario_of_json : int -> Ssta_json.Json.t -> scenario
(** Decode one scenario object (entry [idx] of a spec array).  Every
    defect — non-object entry, wrong field type, unknown corner name,
    non-finite or negative [sigma_scale], non-positive [delay_scale],
    [delta] outside (0, 1) — is routed through
    {!Ssta_robust.Robust.repair} under counter
    [robust.scenario_repairs]: under [Strict] policy it raises
    {!Ssta_robust.Robust.Error} with a structured context, under
    [Repair]/[Warn] the offending field falls back to its documented
    default and decoding continues. *)

val scenarios_of_json : Ssta_json.Json.t -> scenario array
(** Decode a spec array via {!scenario_of_json}; a non-array spec is a
    repairable defect (default: one nominal scenario). *)

val parse_scenarios : string -> (scenario array, string) Stdlib.result
(** Parse a scenario-spec JSON array (see README: objects with optional
    fields [label], [corner] (["nominal"|"slow"|"fast"|"global_slow"]),
    [k], [delay_scale], [sigma_scale], [grad_x], [grad_y], [delta]).
    Unknown fields are ignored; no external JSON dependency.

    Malformed input degrades per the {!Ssta_robust.Robust} policy (see
    {!scenario_of_json}): under [Strict] the structured error
    propagates as an exception; under [Repair]/[Warn] the result is
    always [Ok] with defects replaced by defaults, so the [Error _] arm
    survives only for future non-repairable conditions. *)
