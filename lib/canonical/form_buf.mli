(** Allocation-free kernels over a population of canonical forms.

    A {!t} stores [n] canonical forms (see {!Form}) in one flat unboxed
    float64 bigarray ([Bigarray.Array1], c_layout) with the strided slot
    layout

    {v mean | globals[n_globals] | pcs[n_pcs] | rand v}

    so the hot SSTA loops (forward/backward propagation, criticality
    screening, covariance probes) can run without allocating a single
    intermediate [Form.t], [globals] or [pcs] array.  Every kernel below is a
    {e bit-exact} replica of the corresponding pure {!Form} operation: the
    floating-point accumulation order (globals first, then PCs, then the
    random part) matches {!Form.variance} / {!Form.covariance} /
    {!Form.add} / {!Form.max2} term for term, so a propagation rewired onto
    these kernels reproduces the pure implementation exactly, not just to
    rounding noise.  [test/test_kernels.ml] pins that property.

    The bigarray backing stores the floats outside the OCaml heap: large
    sweeps no longer contribute to GC scanning, and buffers can be carved
    out of a shared {!slab} so one pool worker reuses a single allocation
    across an entire scenario batch. *)

type t

(** {1 Slab allocation}

    A {!slab} is a bump allocator over one contiguous float64 chunk.
    {!create} with [~slab] carves the buffer off the slab's cursor instead
    of allocating; {!slab_reset} rewinds the cursor so the same chunk backs
    the next scenario's buffers.  Carving past the end replaces the chunk
    with a larger one ({!slab_grows} counts these) - earlier buffers keep
    their views of the old chunk, so overflow is safe, but steady-state use
    should size the slab up front with {!floats_needed} so it never grows. *)

type slab

val slab_create : int -> slab
(** [slab_create floats] is an empty slab whose chunk holds [floats]
    float64 values (at least 1). *)

val floats_needed : Form.dims -> int -> int
(** Slab floats consumed by [create ~slab dims n]; sum these over every
    buffer a worker carves to capacity-plan its slab. *)

val slab_reset : slab -> unit
(** Rewind the cursor to 0.  Buffers carved before the reset alias storage
    that subsequent carves will reuse; callers must not touch them again. *)

val slab_capacity_floats : slab -> int
val slab_used_floats : slab -> int

val slab_peak_bytes : slab -> int
(** High-water chunk size in bytes across the slab's lifetime (the resident
    cost of the slab when capacity planning is right). *)

val slab_grows : slab -> int
(** Number of times a carve overflowed and replaced the chunk (0 when the
    slab was sized correctly up front). *)

val create : ?slab:slab -> Form.dims -> int -> t
(** [create dims n] is a buffer of [n] zero forms of dimension [dims],
    freshly allocated, or carved from [slab] when given. *)

val length : t -> int
val dims : t -> Form.dims

val stride : t -> int
(** Floats per slot: [n_globals + n_pcs + 2]. *)

val clear_slot : t -> int -> unit
(** Reset one slot to the zero form. *)

val set : t -> int -> Form.t -> unit
val get : t -> int -> Form.t
(** [get] allocates a fresh [Form.t]; it is meant for result extraction and
    tests, not for hot loops. *)

val of_forms : Form.dims -> Form.t array -> t
(** Pack an array of forms (all of dimension [dims]) into a fresh buffer. *)

val blit : t -> int -> t -> int -> unit
(** [blit src i dst j] copies slot [i] of [src] over slot [j] of [dst].
    The buffers must have equal dims. *)

(** {1 Scalar probes} — read straight out of the flat buffer. *)

val mean : t -> int -> float
val rand_coeff : t -> int -> float
val variance : t -> int -> float
val std : t -> int -> float

val covariance : t -> int -> t -> int -> float
(** [covariance a i b j] is [Form.covariance] of slot [i] of [a] and slot
    [j] of [b]; the two buffers must have equal dims (they may be the same
    buffer). *)

(** {1 In-place kernels}

    Integer arguments are labelled slot indices; [dst]/[acc] slots are
    written, all others only read.  Unless stated otherwise, [dst] may alias
    one of the operand slots. *)

val scale_into : alpha:float -> a:t -> ia:int -> dst:t -> idst:int -> unit
(** Slot [idst] of [dst] becomes [Form.scale alpha a.(ia)] (the random
    coefficient through [abs_float alpha], like the pure op). *)

val recompose_into :
  mean:float -> beta:float -> a:t -> ia:int -> dst:t -> idst:int -> unit
(** Slot [idst] of [dst] gets mean [mean], the deterministic coefficients
    of [a.(ia)] scaled by [beta], and the random coefficient scaled by
    [abs_float beta].  The batch engine's scenario transform: the mean is
    supplied by the corner / delay-scale model while the sensitivity shape
    is the base edge's, scaled.  With [mean = beta *. Form_buf.mean a ia]
    this is bit-identical to {!scale_into}. *)

val add_into : a:t -> ia:int -> b:t -> ib:int -> dst:t -> idst:int -> unit
(** Slot [idst] of [dst] becomes [Form.add a.(ia) b.(ib)]. *)

val max2_into : a:t -> ia:int -> b:t -> ib:int -> dst:t -> idst:int -> unit
(** Slot [idst] of [dst] becomes [Form.max2 a.(ia) b.(ib)]. *)

val add_then_max_into : acc:t -> iacc:int -> a:t -> ia:int -> b:t -> ib:int -> unit
(** The fused inner op of canonical propagation: slot [iacc] of [acc]
    becomes [Form.max2 acc.(iacc) (Form.add a.(ia) b.(ib))] without
    materializing the intermediate sum.  The [acc] slot must not alias the
    [a] slot (in a DAG sweep it never does: [src <> dst] for every edge). *)

(** {1 Fused moment gather}

    The criticality exact evaluation needs eight variances/covariances and
    four random coefficients over four slots A (arrival), E (edge delay),
    R (required) and M (pair maximum).  [quad_stats_into] computes all of
    them in a single strided pass, writing into a caller-owned scratch
    array of at least {!quad_size} floats at the indices below.  Each value
    is bit-identical to the corresponding {!variance} / {!covariance} /
    {!rand_coeff} probe; the fusion only removes redundant memory passes
    and the float boxing of twelve separate calls. *)

val quad_var_a : int
val quad_var_r : int
val quad_cov_ae : int
val quad_cov_ar : int
val quad_cov_er : int
val quad_cov_am : int
val quad_cov_em : int
val quad_cov_rm : int
val quad_rand_a : int
val quad_rand_e : int
val quad_rand_r : int
val quad_rand_m : int

val quad_size : int
(** Minimum scratch-array length for {!quad_stats_into} (= 12). *)

val quad_stats_into :
  a:t ->
  ia:int ->
  e:t ->
  ie:int ->
  r:t ->
  ir:int ->
  m:t ->
  im:int ->
  into:float array ->
  unit
(** All four buffers must share one [dims] (they may alias). *)
