(** Allocation-free kernels over a population of canonical forms.

    A {!t} stores [n] canonical forms (see {!Form}) in one flat unboxed
    float64 bigarray ([Bigarray.Array1], c_layout) with the strided slot
    layout

    {v mean | globals[n_globals] | pcs[n_pcs] | rand v}

    so the hot SSTA loops (forward/backward propagation, criticality
    screening, covariance probes) can run without allocating a single
    intermediate [Form.t], [globals] or [pcs] array.  Every kernel below is a
    {e bit-exact} replica of the corresponding pure {!Form} operation: the
    floating-point accumulation order (globals first, then PCs, then the
    random part) matches {!Form.variance} / {!Form.covariance} /
    {!Form.add} / {!Form.max2} term for term, so a propagation rewired onto
    these kernels reproduces the pure implementation exactly, not just to
    rounding noise.  [test/test_kernels.ml] pins that property.

    The bigarray backing stores the floats outside the OCaml heap: large
    sweeps no longer contribute to GC scanning, and buffers can be carved
    out of a shared {!slab} so one pool worker reuses a single allocation
    across an entire scenario batch. *)

type t

type data = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The unboxed float64 storage every buffer (and raw slab row) is a view
    of; exposed concretely so callers' [unsafe_get]/[unsafe_set] compile to
    direct float loads and stores. *)

(** {1 Slab allocation}

    A {!slab} is a bump allocator over one contiguous float64 chunk.
    {!create} with [~slab] carves the buffer off the slab's cursor instead
    of allocating; {!slab_reset} rewinds the cursor so the same chunk backs
    the next scenario's buffers.  Carving past the end replaces the chunk
    with a larger one ({!slab_grows} counts these) - earlier buffers keep
    their views of the old chunk, so overflow is safe, but steady-state use
    should size the slab up front with {!floats_needed} so it never grows. *)

type slab

val slab_create : int -> slab
(** [slab_create floats] is an empty slab whose chunk holds [floats]
    float64 values (at least 1). *)

val floats_needed : Form.dims -> int -> int
(** Slab floats consumed by [create ~slab dims n]; sum these over every
    buffer a worker carves to capacity-plan its slab. *)

val slab_reset : slab -> unit
(** Rewind the cursor to 0.  Buffers carved before the reset alias storage
    that subsequent carves will reuse; callers must not touch them again. *)

val slab_capacity_floats : slab -> int
val slab_used_floats : slab -> int

val slab_peak_bytes : slab -> int
(** High-water chunk size in bytes across the slab's lifetime (the resident
    cost of the slab when capacity planning is right). *)

val slab_grows : slab -> int
(** Number of times a carve overflowed and replaced the chunk (0 when the
    slab was sized correctly up front). *)

val slab_floats : slab -> int -> data
(** Carve a raw zero-filled row of [n] floats (at least 1) from the slab's
    cursor — the criticality screen keeps its retained scalar rows and
    covariance tables on the same capacity-planned slab as the tile's
    backward workspaces.  Same growth/reset semantics as {!create}. *)

val create : ?slab:slab -> Form.dims -> int -> t
(** [create dims n] is a buffer of [n] zero forms of dimension [dims],
    freshly allocated, or carved from [slab] when given. *)

val length : t -> int
val dims : t -> Form.dims

val stride : t -> int
(** Floats per slot: [n_globals + n_pcs + 2]. *)

val clear_slot : t -> int -> unit
(** Reset one slot to the zero form. *)

val set : t -> int -> Form.t -> unit
val get : t -> int -> Form.t
(** [get] allocates a fresh [Form.t]; it is meant for result extraction and
    tests, not for hot loops. *)

val of_forms : Form.dims -> Form.t array -> t
(** Pack an array of forms (all of dimension [dims]) into a fresh buffer. *)

val blit : t -> int -> t -> int -> unit
(** [blit src i dst j] copies slot [i] of [src] over slot [j] of [dst].
    The buffers must have equal dims. *)

(** {1 Scalar probes} — read straight out of the flat buffer. *)

val mean : t -> int -> float
val rand_coeff : t -> int -> float
val variance : t -> int -> float
val std : t -> int -> float

val covariance : t -> int -> t -> int -> float
(** [covariance a i b j] is [Form.covariance] of slot [i] of [a] and slot
    [j] of [b]; the two buffers must have equal dims (they may be the same
    buffer). *)

(** {1 In-place kernels}

    Integer arguments are labelled slot indices; [dst]/[acc] slots are
    written, all others only read.  Unless stated otherwise, [dst] may alias
    one of the operand slots. *)

val scale_into : alpha:float -> a:t -> ia:int -> dst:t -> idst:int -> unit
(** Slot [idst] of [dst] becomes [Form.scale alpha a.(ia)] (the random
    coefficient through [abs_float alpha], like the pure op). *)

val recompose_into :
  mean:float -> beta:float -> a:t -> ia:int -> dst:t -> idst:int -> unit
(** Slot [idst] of [dst] gets mean [mean], the deterministic coefficients
    of [a.(ia)] scaled by [beta], and the random coefficient scaled by
    [abs_float beta].  The batch engine's scenario transform: the mean is
    supplied by the corner / delay-scale model while the sensitivity shape
    is the base edge's, scaled.  With [mean = beta *. Form_buf.mean a ia]
    this is bit-identical to {!scale_into}. *)

val add_into : a:t -> ia:int -> b:t -> ib:int -> dst:t -> idst:int -> unit
(** Slot [idst] of [dst] becomes [Form.add a.(ia) b.(ib)]. *)

val max2_into : a:t -> ia:int -> b:t -> ib:int -> dst:t -> idst:int -> unit
(** Slot [idst] of [dst] becomes [Form.max2 a.(ia) b.(ib)]. *)

val add_then_max_into : acc:t -> iacc:int -> a:t -> ia:int -> b:t -> ib:int -> unit
(** The fused inner op of canonical propagation: slot [iacc] of [acc]
    becomes [Form.max2 acc.(iacc) (Form.add a.(ia) b.(ib))] without
    materializing the intermediate sum.  The [acc] slot must not alias the
    [a] slot (in a DAG sweep it never does: [src <> dst] for every edge). *)

(** {1 Fused moment gather}

    The criticality exact evaluation needs eight variances/covariances and
    four random coefficients over four slots A (arrival), E (edge delay),
    R (required) and M (pair maximum).  [quad_stats_into] computes all of
    them in a single strided pass, writing into a caller-owned scratch
    array of at least {!quad_size} floats at the indices below.  Each value
    is bit-identical to the corresponding {!variance} / {!covariance} /
    {!rand_coeff} probe; the fusion only removes redundant memory passes
    and the float boxing of twelve separate calls. *)

val quad_var_a : int
val quad_var_r : int
val quad_cov_ae : int
val quad_cov_ar : int
val quad_cov_er : int
val quad_cov_am : int
val quad_cov_em : int
val quad_cov_rm : int
val quad_rand_a : int
val quad_rand_e : int
val quad_rand_r : int
val quad_rand_m : int

val quad_size : int
(** Minimum scratch-array length for {!quad_stats_into} (= 12). *)

val quad_stats_into :
  a:t ->
  ia:int ->
  e:t ->
  ie:int ->
  r:t ->
  ir:int ->
  m:t ->
  im:int ->
  into:float array ->
  unit
(** All four buffers must share one [dims] (they may alias). *)

(** {1 Split pairwise gathers}

    The blocked criticality screen hoists the visit-invariant outputs of
    {!quad_stats_into} out of the eval: variances and random coefficients
    become per-tile scalar rows, Cov(A,E) a per-input cone table and
    Cov(E,R) a per-output edge table, leaving Cov(A,R), Cov(E,M),
    Cov(A,M) and Cov(R,M) per visit, fused below.  Every value is
    bit-identical to the corresponding {!covariance} probe (same segmented
    accumulation); all kernels write into caller scratch and allocate
    nothing. *)

val cov4_ar : int
val cov4_em : int
val cov4_am : int
val cov4_rm : int

val cov4_size : int
(** Minimum scratch-array length for {!cov4_into} (= 4). *)

val cov4_into :
  a:t ->
  ia:int ->
  e:t ->
  ie:int ->
  r:t ->
  ir:int ->
  m:t ->
  im:int ->
  into:float array ->
  unit
(** The four per-visit covariances of the exact tightness evaluation:
    [into.(cov4_ar) = Cov(a.(ia), r.(ir))],
    [into.(cov4_em) = Cov(e.(ie), m.(im))],
    [into.(cov4_am) = Cov(a.(ia), m.(im))] and
    [into.(cov4_rm) = Cov(r.(ir), m.(im))], fused into one strided pass
    whose four accumulation chains pipeline each other (a lone bit-exact
    dot is FP-add-latency bound, and the R,M chain multiplies two values
    the other chains already load).  All four buffers must share one
    [dims]. *)

val cov4_lanes : int
(** Lane count of {!cov4_batch2_into} (= 2). *)

val cov4_batch2_into :
  a:t ->
  e:t ->
  r:t ->
  m:t ->
  im:int ->
  srcs:int array ->
  dsts:int array ->
  edges:int array ->
  into:float array ->
  unit
(** {!cov4_into} for two independent evaluations at once, sharing the [m]
    slot: lane [j] (indices [srcs.(j)], [edges.(j)], [dsts.(j)], all
    arrays of length >= {!cov4_lanes}) writes
    [into.(j * cov4_size + cov4_{ar,em,am,rm})], each value bit-identical
    to a lone {!cov4_into} on that lane.  A serial bit-exact chain
    advances once per element and stalls on FP-add latency; eight
    interleaved chains fill those slots while still fitting the register
    file (wider batches spill accumulators and lose), which is where the
    criticality screen's eval throughput comes from.  [into] must be at
    least [cov4_lanes * cov4_size] long. *)

val cov_into : a:t -> ia:int -> b:t -> ib:int -> into:float array -> at:int -> unit
(** [covariance a ia b ib] written to [into.(at)] instead of returned —
    the memoized Cov(A,M)/Cov(R,M) slots of the eval fast path, kept
    allocation-free (a cross-module float return would box). *)

val cov_src_cone_into :
  verts:t ->
  forms:t ->
  src:int array ->
  cone:int array ->
  len:int ->
  into:data ->
  unit
(** For each edge [e = cone.(x)], [x < len]:
    [into.{e} <- covariance verts src.(e) forms e] — the per-input
    Cov(arrival at source, edge delay) table, filled once per forward
    sweep over the input's active cone.  [into] is indexed by edge (length
    >= the edge count), so later cone compactions never move entries. *)

val cov_dst_into :
  forms:t -> verts:t -> dst:int array -> mask:Bytes.t -> into:data -> unit
(** For each edge [e] with [mask.(dst.(e)) <> 0]:
    [into.{e} <- covariance forms e verts dst.(e)] — the per-output
    Cov(edge delay, required time at sink) table, filled once per backward
    sweep over the output's reach mask.  Entries of unmasked sinks are left
    untouched (the screen never reads them: its own visit guard is the same
    mask). *)
