(** The canonical first-order delay form of paper eq. (3):

    {v d = a0 + ag . xg + sum_i ai xi + ar xr v}

    where [xg] are the global variation variables (one per process parameter,
    shared by every delay in the whole design), [xi] are the independent
    principal components of the correlated local variation, and [xr] is a
    purely random variable private to this delay.  All variables are standard
    normal (normalized PCA convention, see DESIGN.md), so

    {v Var(d) = |ag|^2 + |a|^2 + ar^2. v}

    Statistical [sum] adds coefficients and RSS-combines the random parts;
    statistical [max] is the moment-matching approximation of paper
    eqs. (6)-(9) after Clark and Visweswariah et al. *)

type t = {
  mean : float;
  globals : float array;  (** one coefficient per process parameter *)
  pcs : float array;  (** principal-component coefficients *)
  rand : float;  (** coefficient of the private random variable, >= 0 *)
}

type dims = { n_globals : int; n_pcs : int }

val dims : t -> dims
val constant : dims -> float -> t
(** Deterministic value embedded as a canonical form. *)

val zero : dims -> t

val make :
  mean:float -> globals:float array -> pcs:float array -> rand:float -> t
(** Raises [Invalid_argument] on a negative random coefficient (its sign is
    not observable; we canonicalize to non-negative). *)

val variance : t -> float
val std : t -> float
val covariance : t -> t -> float
(** Covariance of two forms; their private random parts are independent by
    construction so only globals and PCs contribute. *)

val correlation : t -> t -> float

val add : t -> t -> t
(** Statistical sum (paper Section II): coefficients add; the two private
    random parts are replaced by one variance-matched random part. *)

val add_const : t -> float -> t
val scale : float -> t -> t
(** Scales mean and all coefficients ([rand] keeps its canonical sign). *)

val neg : t -> t

val tightness : t -> t -> float
(** [tightness a b] is the probability P(a >= b), paper eq. (6). *)

val max2 : t -> t -> t
(** Statistical maximum in canonical form, paper eqs. (7)-(9): the mean is
    exact (Clark), linear coefficients are tightness-blended, and the random
    coefficient is set to match Clark's variance (clamped at zero when the
    blended linear part already over-covers it). *)

val min2 : t -> t -> t
(** Statistical minimum via [-max(-a, -b)] (for hold-style analysis). *)

val max_list : t list -> t
(** Left fold of {!max2}; raises [Invalid_argument] on the empty list. *)

val cdf : t -> float -> float
(** Gaussian CDF of the form's value at a point. *)

val quantile : t -> float -> float
val sample : t -> globals:float array -> pcs:float array -> rand:float -> float
(** Evaluate the form on a realization of all variables (for tests). *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

val sanitize_forms :
  subsystem:string -> operation:string -> t array -> t array
(** Validated boundary of the robust layer.  Scans every form for
    non-finite coefficients and for statistically degenerate arcs
    (positive mean with exactly zero variance; mean-0 interconnect
    constants are exempt).  Under [Strict] the first offense raises
    [Ssta_robust.Robust.Error] with [subsystem]/[operation] context and
    the form index; under [Repair]/[Warn] non-finite coefficients are
    zeroed into a lazily-made copy (counted in [robust.nan_sanitized])
    and zero-variance arcs are kept but counted
    ([robust.zero_variance_arcs]).  A clean array is returned physically
    unchanged. *)
