module Normal = Ssta_gauss.Normal
module Vec = Ssta_linalg.Vec

type t = {
  mean : float;
  globals : float array;
  pcs : float array;
  rand : float;
}

type dims = { n_globals : int; n_pcs : int }

let dims t =
  { n_globals = Array.length t.globals; n_pcs = Array.length t.pcs }

let constant d v =
  {
    mean = v;
    globals = Array.make d.n_globals 0.0;
    pcs = Array.make d.n_pcs 0.0;
    rand = 0.0;
  }

let zero d = constant d 0.0

let make ~mean ~globals ~pcs ~rand =
  if rand < 0.0 then invalid_arg "Form.make: negative random coefficient";
  { mean; globals; pcs; rand }

let variance t = Vec.sum_sq t.globals +. Vec.sum_sq t.pcs +. (t.rand *. t.rand)
let std t = sqrt (variance t)
let covariance a b = Vec.dot a.globals b.globals +. Vec.dot a.pcs b.pcs

let correlation a b =
  let d = std a *. std b in
  if d <= 0.0 then 0.0 else covariance a b /. d

let add a b =
  {
    mean = a.mean +. b.mean;
    globals = Vec.add a.globals b.globals;
    pcs = Vec.add a.pcs b.pcs;
    rand = sqrt ((a.rand *. a.rand) +. (b.rand *. b.rand));
  }

let add_const a c = { a with mean = a.mean +. c }

let scale alpha a =
  {
    mean = alpha *. a.mean;
    globals = Vec.scale alpha a.globals;
    pcs = Vec.scale alpha a.pcs;
    rand = abs_float alpha *. a.rand;
  }

let neg a = scale (-1.0) a

let clark a b =
  Normal.clark_max ~mean_a:a.mean ~var_a:(variance a) ~mean_b:b.mean
    ~var_b:(variance b) ~cov:(covariance a b)

let tightness a b = (clark a b).Normal.tightness

let max2 a b =
  let { Normal.tightness = tp; mean; variance = target_var } = clark a b in
  if tp >= 1.0 then a
  else if tp <= 0.0 then b
  else begin
    let globals = Vec.lerp tp a.globals b.globals in
    let pcs = Vec.lerp tp a.pcs b.pcs in
    let linear_var = Vec.sum_sq globals +. Vec.sum_sq pcs in
    let rand = sqrt (Float.max 0.0 (target_var -. linear_var)) in
    { mean; globals; pcs; rand }
  end

let min2 a b = neg (max2 (neg a) (neg b))

let max_list = function
  | [] -> invalid_arg "Form.max_list: empty list"
  | x :: rest -> List.fold_left max2 x rest

let cdf t x =
  let s = std t in
  if s <= 0.0 then if x >= t.mean then 1.0 else 0.0
  else Normal.cdf ((x -. t.mean) /. s)

let quantile t p = t.mean +. (std t *. Normal.quantile p)

let sample t ~globals ~pcs ~rand =
  t.mean +. Vec.dot t.globals globals +. Vec.dot t.pcs pcs +. (t.rand *. rand)

let equal ?(tol = 1e-9) a b =
  let close x y = abs_float (x -. y) <= tol in
  close a.mean b.mean && close a.rand b.rand
  && Array.length a.globals = Array.length b.globals
  && Array.length a.pcs = Array.length b.pcs
  && Array.for_all2 close a.globals b.globals
  && Array.for_all2 close a.pcs b.pcs

let pp ppf t =
  Format.fprintf ppf "@[<h>%.4f (sigma=%.4f; g=[%a]; |pcs|=%.4f; r=%.4f)@]"
    t.mean (std t)
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf v -> Format.fprintf ppf "%.4f" v))
    t.globals (Vec.norm2 t.pcs) t.rand

(* Validated boundary of the robust layer: [Extract], [Hier_analysis] and
   [Replace] pass their incoming form arrays through here before entering
   the kernels.  Detection is read-only and clean arrays are returned
   physically unchanged, so the clean path is bit-identical under every
   policy; the copy is made lazily on the first repaired form. *)

module Robust = Ssta_robust.Robust

let nan_sanitized = Robust.counter "robust.nan_sanitized"
let zero_variance_arcs = Robust.counter "robust.zero_variance_arcs"

(* One pass per form accumulating the coefficient sum (self-subtraction
   catches NaN/Inf anywhere) and the squared-coefficient sum (exact zero
   variance with a positive mean marks a statistically degenerate arc -
   every characterized arc carries variation; interconnect constants have
   mean 0 and are exempt). *)
let classify_form f =
  let s = ref (f.mean +. f.rand) in
  let q = ref (f.rand *. f.rand) in
  for i = 0 to Array.length f.globals - 1 do
    let x = f.globals.(i) in
    s := !s +. x;
    q := !q +. (x *. x)
  done;
  for i = 0 to Array.length f.pcs - 1 do
    let x = f.pcs.(i) in
    s := !s +. x;
    q := !q +. (x *. x)
  done;
  if !s -. !s <> 0.0 then `Nonfinite
  else if f.mean > 0.0 && !q = 0.0 then `Zero_variance
  else `Ok

let repair_form f =
  let fin x = if Robust.is_finite x then x else 0.0 in
  {
    mean = fin f.mean;
    globals = Array.map fin f.globals;
    pcs = Array.map fin f.pcs;
    rand = (let r = fin f.rand in if r > 0.0 then r else 0.0);
  }

let sanitize_forms ~subsystem ~operation forms =
  let n = Array.length forms in
  let fixed = ref None in
  for i = 0 to n - 1 do
    let f = forms.(i) in
    match classify_form f with
    | `Ok -> ()
    | `Zero_variance ->
        Robust.repair zero_variance_arcs
          (Robust.context ~subsystem ~operation ~indices:[ i ]
             ~values:[ f.mean ]
             "zero-variance arc with positive mean (statistically degenerate \
              cell)")
    | `Nonfinite ->
        Robust.repair nan_sanitized
          (Robust.context ~subsystem ~operation ~indices:[ i ]
             ~values:[ f.mean; f.rand ]
             "non-finite coefficient in canonical form; zeroing");
        let dst =
          match !fixed with
          | Some a -> a
          | None ->
              let a = Array.copy forms in
              fixed := Some a;
              a
        in
        dst.(i) <- repair_form f
  done;
  match !fixed with Some a -> a | None -> forms
