module Normal = Ssta_gauss.Normal
module A1 = Bigarray.Array1

(* Slot layout: mean | globals[ng] | pcs[np] | rand.  All kernels keep the
   accumulation order of the pure Form operations (globals sum, then PCs
   sum, then the random part) so results are bit-identical to Form.add /
   Form.max2 / Form.variance / Form.covariance, not merely close.

   Storage is an unboxed float64 bigarray rather than a [float array]: the
   data lives outside the OCaml heap (no GC scanning of multi-megabyte
   sweeps), buffers can be carved out of a shared slab so a pool worker
   reuses one allocation across many scenarios, and the concrete type
   annotation below keeps every [A1.unsafe_get]/[A1.unsafe_set] compiled to
   a direct unboxed float load/store. *)

type data = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

type t = {
  dims : Form.dims;
  stride : int;
  n : int;
  data : data;
  clark : float array;
      (* Clark-max argument/result scratch for the two max kernels, owned
         by the buffer so parallel workers sweeping into their own buffers
         never share it (a module-global here is a data race across
         domains).  A buffer itself is still single-domain: concurrent
         kernels targeting the SAME destination buffer are not safe. *)
}

(* A slab is a bump allocator over one bigarray chunk.  Buffers are carved
   off the front; [slab_reset] rewinds the cursor so the same chunk backs
   the next scenario's buffers without touching the allocator.  If a carve
   overflows the chunk, a fresh larger chunk replaces it - buffers carved
   earlier keep their views of the old chunk (the view keeps the backing
   alive), so overflow is safe but defeats reuse; callers should capacity-
   plan with [floats_needed] so steady state never grows. *)
type slab = {
  mutable chunk : data;
  mutable off : int;
  mutable peak_floats : int;
  mutable grows : int;
}

let floats_needed dims n =
  let stride = dims.Form.n_globals + dims.Form.n_pcs + 2 in
  max 1 (n * stride)

let slab_create floats =
  let cap = max 1 floats in
  {
    chunk = A1.create Bigarray.float64 Bigarray.c_layout cap;
    off = 0;
    peak_floats = cap;
    grows = 0;
  }

let slab_reset s = s.off <- 0
let slab_capacity_floats s = A1.dim s.chunk
let slab_used_floats s = s.off
let slab_peak_bytes s = 8 * s.peak_floats
let slab_grows s = s.grows

let slab_alloc s need =
  if s.off + need > A1.dim s.chunk then begin
    let cap = max (2 * A1.dim s.chunk) need in
    s.chunk <- A1.create Bigarray.float64 Bigarray.c_layout cap;
    s.off <- 0;
    s.grows <- s.grows + 1;
    if cap > s.peak_floats then s.peak_floats <- cap
  end;
  let view = A1.sub s.chunk s.off need in
  s.off <- s.off + need;
  A1.fill view 0.0;
  view

(* Raw float rows carved from the same cursor as buffer carves: the
   criticality screen keeps its retained per-output scalar rows and
   covariance tables on the very slab that backs the tile's backward
   workspaces, so one capacity plan covers all of a tile's storage. *)
let slab_floats s n = slab_alloc s (max 1 n)

let create ?slab dims n =
  let stride = dims.Form.n_globals + dims.Form.n_pcs + 2 in
  let need = max 1 (n * stride) in
  let data =
    match slab with
    | Some s -> slab_alloc s need
    | None ->
        let d = A1.create Bigarray.float64 Bigarray.c_layout need in
        A1.fill d 0.0;
        d
  in
  { dims; stride; n; data; clark = Array.make 5 0.0 }

let length t = t.n
let dims t = t.dims
let stride t = t.stride

let check_slot t i name =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Form_buf.%s: slot %d out of range [0, %d)" name i t.n)

(* Manual loops instead of A1.fill/A1.sub in per-slot ops: sub allocates a
   fresh view record on every call, which would put an allocation back into
   the hot paths this module exists to keep clean. *)
let clear_slot t i =
  check_slot t i "clear_slot";
  let off = i * t.stride in
  for k = off to off + t.stride - 1 do
    A1.unsafe_set t.data k 0.0
  done

let set t i f =
  check_slot t i "set";
  let ng = t.dims.Form.n_globals and np = t.dims.Form.n_pcs in
  if Array.length f.Form.globals <> ng || Array.length f.Form.pcs <> np then
    invalid_arg "Form_buf.set: form dims mismatch";
  let off = i * t.stride in
  A1.unsafe_set t.data off f.Form.mean;
  for k = 0 to ng - 1 do
    A1.unsafe_set t.data (off + 1 + k) (Array.unsafe_get f.Form.globals k)
  done;
  for k = 0 to np - 1 do
    A1.unsafe_set t.data (off + 1 + ng + k) (Array.unsafe_get f.Form.pcs k)
  done;
  A1.unsafe_set t.data (off + t.stride - 1) f.Form.rand

let get t i =
  check_slot t i "get";
  let ng = t.dims.Form.n_globals and np = t.dims.Form.n_pcs in
  let off = i * t.stride in
  {
    Form.mean = A1.unsafe_get t.data off;
    globals = Array.init ng (fun k -> A1.unsafe_get t.data (off + 1 + k));
    pcs = Array.init np (fun k -> A1.unsafe_get t.data (off + 1 + ng + k));
    rand = A1.unsafe_get t.data (off + t.stride - 1);
  }

let of_forms dims forms =
  let t = create dims (Array.length forms) in
  Array.iteri (fun i f -> set t i f) forms;
  t

(* Field-wise ints rather than a structural record compare: this guard sits
   on every kernel call, and caml_compare is a C call the loops can feel. *)
let check_dims a b name =
  if
    a.dims.Form.n_globals <> b.dims.Form.n_globals
    || a.dims.Form.n_pcs <> b.dims.Form.n_pcs
  then invalid_arg (Printf.sprintf "Form_buf.%s: dims mismatch" name)

let blit src i dst j =
  check_slot src i "blit";
  check_slot dst j "blit";
  check_dims src dst "blit";
  let os = i * src.stride and od = j * dst.stride in
  for k = 0 to src.stride - 1 do
    A1.unsafe_set dst.data (od + k) (A1.unsafe_get src.data (os + k))
  done

let mean t i = A1.unsafe_get t.data (i * t.stride)
let rand_coeff t i = A1.unsafe_get t.data ((i * t.stride) + t.stride - 1)

(* Sum of squares over [lo, lo+len), serial accumulation like Vec.sum_sq. *)
let sum_sq_range (d : data) lo len =
  let acc = ref 0.0 in
  for k = lo to lo + len - 1 do
    let v = A1.unsafe_get d k in
    acc := !acc +. (v *. v)
  done;
  !acc

let dot_range (da : data) la (db : data) lb len =
  let acc = ref 0.0 in
  for k = 0 to len - 1 do
    acc := !acc +. (A1.unsafe_get da (la + k) *. A1.unsafe_get db (lb + k))
  done;
  !acc

let variance t i =
  let off = i * t.stride in
  let ng = t.dims.Form.n_globals and np = t.dims.Form.n_pcs in
  let g = sum_sq_range t.data (off + 1) ng in
  let p = sum_sq_range t.data (off + 1 + ng) np in
  let r = A1.unsafe_get t.data (off + t.stride - 1) in
  g +. p +. (r *. r)

let std t i = sqrt (variance t i)

let covariance a ia b ib =
  check_dims a b "covariance";
  let ng = a.dims.Form.n_globals and np = a.dims.Form.n_pcs in
  let oa = ia * a.stride and ob = ib * b.stride in
  let g = dot_range a.data (oa + 1) b.data (ob + 1) ng in
  let p = dot_range a.data (oa + 1 + ng) b.data (ob + 1 + ng) np in
  g +. p

(* Fused pairwise-moment gather for the criticality exact evaluation: one
   strided pass over the four slots A (arrival), E (edge delay), R (required)
   and M (pair maximum) accumulates every variance/covariance the tightness
   computation needs, instead of nine separate probe calls re-reading the
   same cache lines.  Results land in the caller's scratch array (indices
   below) so the kernel allocates nothing.  Accumulation stays segmented
   (globals, then PCs) to remain bit-identical to [variance]/[covariance]. *)

let quad_var_a = 0
let quad_var_r = 1
let quad_cov_ae = 2
let quad_cov_ar = 3
let quad_cov_er = 4
let quad_cov_am = 5
let quad_cov_em = 6
let quad_cov_rm = 7
let quad_rand_a = 8
let quad_rand_e = 9
let quad_rand_r = 10
let quad_rand_m = 11
let quad_size = 12

let quad_stats_into ~a ~ia ~e ~ie ~r ~ir ~m ~im ~into =
  check_dims a e "quad_stats_into";
  check_dims a r "quad_stats_into";
  check_dims a m "quad_stats_into";
  if Array.length into < quad_size then
    invalid_arg "Form_buf.quad_stats_into: scratch array shorter than 12";
  let ng = a.dims.Form.n_globals and np = a.dims.Form.n_pcs in
  let da = a.data and de = e.data and dr = r.data and dm = m.data in
  let oa = ia * a.stride
  and oe = ie * e.stride
  and or_ = ir * r.stride
  and om = im * m.stride in
  (* Plain non-escaping refs in one function body: the compiler keeps them
     unboxed in registers.  Wrapping the per-segment loop in a local closure
     would capture the refs and re-box every float update, which costs more
     than the twelve probe calls this kernel replaces.  The segment sums are
     snapshotted between the two loops so the totals combine exactly like
     [sum_sq globals +. sum_sq pcs] in the scalar probes. *)
  let s_aa = ref 0.0
  and s_rr = ref 0.0
  and s_ae = ref 0.0
  and s_ar = ref 0.0
  and s_er = ref 0.0
  and s_am = ref 0.0
  and s_em = ref 0.0
  and s_rm = ref 0.0 in
  for k = 1 to ng do
    let va = A1.unsafe_get da (oa + k)
    and ve = A1.unsafe_get de (oe + k)
    and vr = A1.unsafe_get dr (or_ + k)
    and vm = A1.unsafe_get dm (om + k) in
    s_aa := !s_aa +. (va *. va);
    s_rr := !s_rr +. (vr *. vr);
    s_ae := !s_ae +. (va *. ve);
    s_ar := !s_ar +. (va *. vr);
    s_er := !s_er +. (ve *. vr);
    s_am := !s_am +. (va *. vm);
    s_em := !s_em +. (ve *. vm);
    s_rm := !s_rm +. (vr *. vm)
  done;
  let g_aa = !s_aa
  and g_rr = !s_rr
  and g_ae = !s_ae
  and g_ar = !s_ar
  and g_er = !s_er
  and g_am = !s_am
  and g_em = !s_em
  and g_rm = !s_rm in
  s_aa := 0.0;
  s_rr := 0.0;
  s_ae := 0.0;
  s_ar := 0.0;
  s_er := 0.0;
  s_am := 0.0;
  s_em := 0.0;
  s_rm := 0.0;
  for k = 1 + ng to ng + np do
    let va = A1.unsafe_get da (oa + k)
    and ve = A1.unsafe_get de (oe + k)
    and vr = A1.unsafe_get dr (or_ + k)
    and vm = A1.unsafe_get dm (om + k) in
    s_aa := !s_aa +. (va *. va);
    s_rr := !s_rr +. (vr *. vr);
    s_ae := !s_ae +. (va *. ve);
    s_ar := !s_ar +. (va *. vr);
    s_er := !s_er +. (ve *. vr);
    s_am := !s_am +. (va *. vm);
    s_em := !s_em +. (ve *. vm);
    s_rm := !s_rm +. (vr *. vm)
  done;
  let ra = A1.unsafe_get da (oa + a.stride - 1)
  and re = A1.unsafe_get de (oe + e.stride - 1)
  and rr = A1.unsafe_get dr (or_ + r.stride - 1)
  and rm = A1.unsafe_get dm (om + m.stride - 1) in
  into.(quad_var_a) <- (g_aa +. !s_aa) +. (ra *. ra);
  into.(quad_var_r) <- (g_rr +. !s_rr) +. (rr *. rr);
  into.(quad_cov_ae) <- g_ae +. !s_ae;
  into.(quad_cov_ar) <- g_ar +. !s_ar;
  into.(quad_cov_er) <- g_er +. !s_er;
  into.(quad_cov_am) <- g_am +. !s_am;
  into.(quad_cov_em) <- g_em +. !s_em;
  into.(quad_cov_rm) <- g_rm +. !s_rm;
  into.(quad_rand_a) <- ra;
  into.(quad_rand_e) <- re;
  into.(quad_rand_r) <- rr;
  into.(quad_rand_m) <- rm

(* Split pairwise gathers for the blocked criticality evaluation: most of
   [quad_stats_into]'s twelve outputs are invariant along one axis of the
   (output, input, edge) visit nest, so the blocked screen hoists them into
   per-tile rows and tables and only computes the four truly per-visit
   covariances - Cov(A,R), Cov(E,M), Cov(A,M) and Cov(R,M) - inside the
   eval, fused below.  Every kernel writes into caller scratch (no boxed
   float returns) and keeps the segmented accumulation of [covariance], so
   each value is bit-identical to the probe it replaces. *)

let cov4_ar = 0
let cov4_em = 1
let cov4_am = 2
let cov4_rm = 3
let cov4_size = 4

(* Why four dots and not fewer: the kernels above are latency-bound, not
   flop-bound - bit-exactness pins each dot to one serial accumulation
   chain, so a lone dot stalls on FP-add latency every element, and
   [quad_stats_into]'s eight interleaved chains hide that latency almost
   completely (eight dots cost barely twice one).  Splitting the eval into
   several narrow passes therefore re-pays the chain stall per pass and
   loses.  Cov(A,M) rides along unconditionally because the cone walk
   changes source every edge (fanin CSR groups edges by sink), so a
   source-keyed memo would never hit; Cov(R,M) rides along because its
   chain multiplies two values the A,R and E,M chains already load - a
   sink-keyed memo saved zero loads and re-paid the lone-dot stall on
   every fanin-2 sink change. *)
let cov4_into ~a ~ia ~e ~ie ~r ~ir ~m ~im ~into =
  check_dims a r "cov4_into";
  check_dims e m "cov4_into";
  check_dims a e "cov4_into";
  if Array.length into < cov4_size then
    invalid_arg "Form_buf.cov4_into: scratch array shorter than 4";
  let ng = a.dims.Form.n_globals and np = a.dims.Form.n_pcs in
  let da = a.data and de = e.data and dr = r.data and dm = m.data in
  let oa = ia * a.stride
  and oe = ie * e.stride
  and or_ = ir * r.stride
  and om = im * m.stride in
  let s_ar = ref 0.0 and s_em = ref 0.0 in
  let s_am = ref 0.0 and s_rm = ref 0.0 in
  for k = 1 to ng do
    let va = A1.unsafe_get da (oa + k)
    and ve = A1.unsafe_get de (oe + k)
    and vr = A1.unsafe_get dr (or_ + k)
    and vm = A1.unsafe_get dm (om + k) in
    s_ar := !s_ar +. (va *. vr);
    s_em := !s_em +. (ve *. vm);
    s_am := !s_am +. (va *. vm);
    s_rm := !s_rm +. (vr *. vm)
  done;
  let g_ar = !s_ar and g_em = !s_em and g_am = !s_am and g_rm = !s_rm in
  s_ar := 0.0;
  s_em := 0.0;
  s_am := 0.0;
  s_rm := 0.0;
  for k = 1 + ng to ng + np do
    let va = A1.unsafe_get da (oa + k)
    and ve = A1.unsafe_get de (oe + k)
    and vr = A1.unsafe_get dr (or_ + k)
    and vm = A1.unsafe_get dm (om + k) in
    s_ar := !s_ar +. (va *. vr);
    s_em := !s_em +. (ve *. vm);
    s_am := !s_am +. (va *. vm);
    s_rm := !s_rm +. (vr *. vm)
  done;
  into.(cov4_ar) <- g_ar +. !s_ar;
  into.(cov4_em) <- g_em +. !s_em;
  into.(cov4_am) <- g_am +. !s_am;
  into.(cov4_rm) <- g_rm +. !s_rm

let cov4_lanes = 2

(* Two independent evals' covariances in one pass: the per-element floor
   of [cov4_into] is the FP-add latency of its four serial chains (every
   chain must advance once per element), so interleaving two lanes' eight
   chains fills those latency slots - and stops there, because eight float
   accumulators (plus the seven loaded values per element) still fit the
   register file; a four-lane variant's sixteen accumulators spill, and
   the spill traffic costs more than the extra latency hiding buys.  Each
   lane's accumulation order is exactly [cov4_into]'s - segmented, serial
   in [k] - so lane [j]'s results are bit-identical to a lone call on
   ([srcs.(j)], [edges.(j)], [dsts.(j)]); the criticality screen's
   batching is thereby invisible in the results.  The lanes share the [m]
   slot ([im]). *)
let cov4_batch2_into ~a ~e ~r ~m ~im ~srcs ~dsts ~edges ~into =
  check_dims a r "cov4_batch2_into";
  check_dims e m "cov4_batch2_into";
  check_dims a e "cov4_batch2_into";
  if Array.length into < cov4_lanes * cov4_size then
    invalid_arg "Form_buf.cov4_batch2_into: scratch array shorter than 8";
  let ng = a.dims.Form.n_globals and np = a.dims.Form.n_pcs in
  let da = a.data and de = e.data and dr = r.data and dm = m.data in
  let oa0 = Array.unsafe_get srcs 0 * a.stride
  and oa1 = Array.unsafe_get srcs 1 * a.stride in
  let oe0 = Array.unsafe_get edges 0 * e.stride
  and oe1 = Array.unsafe_get edges 1 * e.stride in
  let or0 = Array.unsafe_get dsts 0 * r.stride
  and or1 = Array.unsafe_get dsts 1 * r.stride in
  let om = im * m.stride in
  let ar0 = ref 0.0 and em0 = ref 0.0 in
  let am0 = ref 0.0 and rm0 = ref 0.0 in
  let ar1 = ref 0.0 and em1 = ref 0.0 in
  let am1 = ref 0.0 and rm1 = ref 0.0 in
  for k = 1 to ng do
    let vm = A1.unsafe_get dm (om + k) in
    let va0 = A1.unsafe_get da (oa0 + k)
    and ve0 = A1.unsafe_get de (oe0 + k)
    and vr0 = A1.unsafe_get dr (or0 + k) in
    ar0 := !ar0 +. (va0 *. vr0);
    em0 := !em0 +. (ve0 *. vm);
    am0 := !am0 +. (va0 *. vm);
    rm0 := !rm0 +. (vr0 *. vm);
    let va1 = A1.unsafe_get da (oa1 + k)
    and ve1 = A1.unsafe_get de (oe1 + k)
    and vr1 = A1.unsafe_get dr (or1 + k) in
    ar1 := !ar1 +. (va1 *. vr1);
    em1 := !em1 +. (ve1 *. vm);
    am1 := !am1 +. (va1 *. vm);
    rm1 := !rm1 +. (vr1 *. vm)
  done;
  let g_ar0 = !ar0 and g_em0 = !em0 and g_am0 = !am0 and g_rm0 = !rm0 in
  let g_ar1 = !ar1 and g_em1 = !em1 and g_am1 = !am1 and g_rm1 = !rm1 in
  ar0 := 0.0;
  em0 := 0.0;
  am0 := 0.0;
  rm0 := 0.0;
  ar1 := 0.0;
  em1 := 0.0;
  am1 := 0.0;
  rm1 := 0.0;
  for k = 1 + ng to ng + np do
    let vm = A1.unsafe_get dm (om + k) in
    let va0 = A1.unsafe_get da (oa0 + k)
    and ve0 = A1.unsafe_get de (oe0 + k)
    and vr0 = A1.unsafe_get dr (or0 + k) in
    ar0 := !ar0 +. (va0 *. vr0);
    em0 := !em0 +. (ve0 *. vm);
    am0 := !am0 +. (va0 *. vm);
    rm0 := !rm0 +. (vr0 *. vm);
    let va1 = A1.unsafe_get da (oa1 + k)
    and ve1 = A1.unsafe_get de (oe1 + k)
    and vr1 = A1.unsafe_get dr (or1 + k) in
    ar1 := !ar1 +. (va1 *. vr1);
    em1 := !em1 +. (ve1 *. vm);
    am1 := !am1 +. (va1 *. vm);
    rm1 := !rm1 +. (vr1 *. vm)
  done;
  into.(cov4_ar) <- g_ar0 +. !ar0;
  into.(cov4_em) <- g_em0 +. !em0;
  into.(cov4_am) <- g_am0 +. !am0;
  into.(cov4_rm) <- g_rm0 +. !rm0;
  into.(cov4_size + cov4_ar) <- g_ar1 +. !ar1;
  into.(cov4_size + cov4_em) <- g_em1 +. !em1;
  into.(cov4_size + cov4_am) <- g_am1 +. !am1;
  into.(cov4_size + cov4_rm) <- g_rm1 +. !rm1

let cov_into ~a ~ia ~b ~ib ~into ~at =
  check_dims a b "cov_into";
  let ng = a.dims.Form.n_globals and np = a.dims.Form.n_pcs in
  let oa = ia * a.stride and ob = ib * b.stride in
  let g = dot_range a.data (oa + 1) b.data (ob + 1) ng in
  let p = dot_range a.data (oa + 1 + ng) b.data (ob + 1 + ng) np in
  into.(at) <- g +. p

(* Edge-covariance tables: Cov(delay of edge e, vertex form at an endpoint
   of e), filled in bulk so the screen's inner loop reads one float where
   it used to run a strided dot product.  [cov_src_cone_into] fills the
   source-side table over an active cone list; [cov_dst_into] fills the
   sink-side table over all edges whose sink is marked reached.  Both index
   [into] by edge, so compaction of the cone lists never has to move the
   table entries. *)

let cov_src_cone_into ~verts ~forms ~src ~cone ~len ~into =
  check_dims verts forms "cov_src_cone_into";
  if len > Array.length cone then
    invalid_arg "Form_buf.cov_src_cone_into: len exceeds cone list";
  let ng = verts.dims.Form.n_globals and np = verts.dims.Form.n_pcs in
  let dv = verts.data and df = forms.data in
  for x = 0 to len - 1 do
    let e = Array.unsafe_get cone x in
    let ov = Array.unsafe_get src e * verts.stride
    and oe = e * forms.stride in
    let g = dot_range dv (ov + 1) df (oe + 1) ng in
    let p = dot_range dv (ov + 1 + ng) df (oe + 1 + ng) np in
    A1.unsafe_set into e (g +. p)
  done

let cov_dst_into ~forms ~verts ~dst ~mask ~into =
  check_dims verts forms "cov_dst_into";
  if A1.dim into < forms.n then
    invalid_arg "Form_buf.cov_dst_into: table shorter than edge count";
  let ng = verts.dims.Form.n_globals and np = verts.dims.Form.n_pcs in
  let dv = verts.data and df = forms.data in
  for e = 0 to forms.n - 1 do
    let d = Array.unsafe_get dst e in
    if Bytes.unsafe_get mask d <> '\000' then begin
      let ov = d * verts.stride and oe = e * forms.stride in
      let g = dot_range df (oe + 1) dv (ov + 1) ng in
      let p = dot_range df (oe + 1 + ng) dv (ov + 1 + ng) np in
      A1.unsafe_set into e (g +. p)
    end
  done

let scale_into ~alpha ~a ~ia ~dst ~idst =
  check_dims a dst "scale_into";
  let nc = a.dims.Form.n_globals + a.dims.Form.n_pcs in
  let oa = ia * a.stride and od = idst * dst.stride in
  (* Same operand order as Form.scale / Vec.scale: [alpha *. v] per
     coefficient, mean included, and the random coefficient through
     [abs_float]. *)
  for k = 0 to nc do
    A1.unsafe_set dst.data (od + k) (alpha *. A1.unsafe_get a.data (oa + k))
  done;
  A1.unsafe_set dst.data (od + dst.stride - 1)
    (abs_float alpha *. A1.unsafe_get a.data (oa + a.stride - 1))

(* Scenario recomposition: slot [idst] gets mean [mean], the deterministic
   coefficients of [a.(ia)] scaled by [beta], and the random coefficient of
   [a.(ia)] scaled by [abs_float beta].  This is how the batch engine derives
   a scenario's edge-delay form from the base form without re-running
   characterization: the mean comes from the corner/delay-scale model while
   the sensitivity shape is the base's, scaled.  Operand order per
   coefficient matches [scale_into] ([beta *. v]) so a scenario with
   [mean = beta *. base_mean] is bit-identical to [Form.scale beta]. *)
let recompose_into ~mean ~beta ~a ~ia ~dst ~idst =
  check_dims a dst "recompose_into";
  let nc = a.dims.Form.n_globals + a.dims.Form.n_pcs in
  let oa = ia * a.stride and od = idst * dst.stride in
  A1.unsafe_set dst.data od mean;
  for k = 1 to nc do
    A1.unsafe_set dst.data (od + k) (beta *. A1.unsafe_get a.data (oa + k))
  done;
  A1.unsafe_set dst.data (od + dst.stride - 1)
    (abs_float beta *. A1.unsafe_get a.data (oa + a.stride - 1))

let add_into ~a ~ia ~b ~ib ~dst ~idst =
  check_dims a dst "add_into";
  check_dims b dst "add_into";
  let nc = a.dims.Form.n_globals + a.dims.Form.n_pcs in
  let oa = ia * a.stride and ob = ib * b.stride and od = idst * dst.stride in
  A1.unsafe_set dst.data od
    (A1.unsafe_get a.data oa +. A1.unsafe_get b.data ob);
  for k = 1 to nc do
    A1.unsafe_set dst.data (od + k)
      (A1.unsafe_get a.data (oa + k) +. A1.unsafe_get b.data (ob + k))
  done;
  let ra = A1.unsafe_get a.data (oa + a.stride - 1)
  and rb = A1.unsafe_get b.data (ob + b.stride - 1) in
  A1.unsafe_set dst.data (od + dst.stride - 1) (sqrt ((ra *. ra) +. (rb *. rb)))

let max2_into ~a ~ia ~b ~ib ~dst ~idst =
  check_dims a dst "max2_into";
  check_dims b dst "max2_into";
  let ng = a.dims.Form.n_globals and np = a.dims.Form.n_pcs in
  let oa = ia * a.stride and ob = ib * b.stride and od = idst * dst.stride in
  (* The destination buffer's scratch: the destination is exclusively
     owned by the sweeping worker, so parallel domains never collide. *)
  let clark_scratch = dst.clark in
  clark_scratch.(0) <- A1.unsafe_get a.data oa;
  clark_scratch.(1) <- variance a ia;
  clark_scratch.(2) <- A1.unsafe_get b.data ob;
  clark_scratch.(3) <- variance b ib;
  clark_scratch.(4) <- covariance a ia b ib;
  Normal.clark_max_into clark_scratch;
  let tp = clark_scratch.(0)
  and mean = clark_scratch.(1)
  and target_var = clark_scratch.(2) in
  if tp >= 1.0 then blit a ia dst idst
  else if tp <= 0.0 then blit b ib dst idst
  else begin
    let s = 1.0 -. tp in
    (* Blend and the linear-variance sum fused per segment: each stored
       coefficient is squared as it is produced, in the order the separate
       sum_sq pass would read it back (calling sum_sq_range here would also
       box its float result - the only allocation left on this path). *)
    let s_lv = ref 0.0 in
    for k = 1 to ng do
      let v =
        (tp *. A1.unsafe_get a.data (oa + k))
        +. (s *. A1.unsafe_get b.data (ob + k))
      in
      A1.unsafe_set dst.data (od + k) v;
      s_lv := !s_lv +. (v *. v)
    done;
    let lg = !s_lv in
    s_lv := 0.0;
    for k = 1 + ng to ng + np do
      let v =
        (tp *. A1.unsafe_get a.data (oa + k))
        +. (s *. A1.unsafe_get b.data (ob + k))
      in
      A1.unsafe_set dst.data (od + k) v;
      s_lv := !s_lv +. (v *. v)
    done;
    let linear_var = lg +. !s_lv in
    A1.unsafe_set dst.data od mean;
    (* Same clamp as [Float.max 0.0 v] without the boxing stdlib call. *)
    let v = target_var -. linear_var in
    A1.unsafe_set dst.data (od + dst.stride - 1)
      (sqrt (if v > 0.0 then v else 0.0))
  end

let add_then_max_into ~acc ~iacc ~a ~ia ~b ~ib =
  check_dims a acc "add_then_max_into";
  check_dims b acc "add_then_max_into";
  let ng = acc.dims.Form.n_globals and np = acc.dims.Form.n_pcs in
  let oc = iacc * acc.stride and oa = ia * a.stride and ob = ib * b.stride in
  (* Moments of the un-materialized sum s = a + b, in Form.add's order: the
     random coefficient is rounded through sqrt exactly as the pure op
     stores it, then squared again for the variance. *)
  let mean_s = A1.unsafe_get a.data oa +. A1.unsafe_get b.data ob in
  let ra = A1.unsafe_get a.data (oa + a.stride - 1)
  and rb = A1.unsafe_get b.data (ob + b.stride - 1) in
  let rand_s = sqrt ((ra *. ra) +. (rb *. rb)) in
  (* One fused pass per coefficient segment accumulates Var(acc), Var(s)
     and Cov(acc, s) side by side; each accumulator sees exactly the terms
     the separate sum_sq/dot loops would feed it, in the same order.  The
     refs never escape into a closure, so they stay unboxed (see
     quad_stats_into). *)
  let s_va = ref 0.0 and s_vs = ref 0.0 and s_cov = ref 0.0 in
  for k = 1 to ng do
    let vc = A1.unsafe_get acc.data (oc + k)
    and v = A1.unsafe_get a.data (oa + k) +. A1.unsafe_get b.data (ob + k) in
    s_va := !s_va +. (vc *. vc);
    s_vs := !s_vs +. (v *. v);
    s_cov := !s_cov +. (vc *. v)
  done;
  let g_va = !s_va and g_vs = !s_vs and g_cov = !s_cov in
  s_va := 0.0;
  s_vs := 0.0;
  s_cov := 0.0;
  for k = 1 + ng to ng + np do
    let vc = A1.unsafe_get acc.data (oc + k)
    and v = A1.unsafe_get a.data (oa + k) +. A1.unsafe_get b.data (ob + k) in
    s_va := !s_va +. (vc *. vc);
    s_vs := !s_vs +. (v *. v);
    s_cov := !s_cov +. (vc *. v)
  done;
  let racc = A1.unsafe_get acc.data (oc + acc.stride - 1) in
  let clark_scratch = acc.clark in
  clark_scratch.(0) <- A1.unsafe_get acc.data oc;
  clark_scratch.(1) <- (g_va +. !s_va) +. (racc *. racc);
  clark_scratch.(2) <- mean_s;
  clark_scratch.(3) <- (g_vs +. !s_vs) +. (rand_s *. rand_s);
  clark_scratch.(4) <- g_cov +. !s_cov;
  Normal.clark_max_into clark_scratch;
  let tp = clark_scratch.(0)
  and mean = clark_scratch.(1)
  and target_var = clark_scratch.(2) in
  if tp >= 1.0 then () (* acc already holds the max *)
  else if tp <= 0.0 then begin
    A1.unsafe_set acc.data oc mean_s;
    for k = 1 to ng + np do
      A1.unsafe_set acc.data (oc + k)
        (A1.unsafe_get a.data (oa + k) +. A1.unsafe_get b.data (ob + k))
    done;
    A1.unsafe_set acc.data (oc + acc.stride - 1) rand_s
  end
  else begin
    let s = 1.0 -. tp in
    let s_lv = ref 0.0 in
    for k = 1 to ng do
      let v =
        (tp *. A1.unsafe_get acc.data (oc + k))
        +. (s
           *. (A1.unsafe_get a.data (oa + k) +. A1.unsafe_get b.data (ob + k)))
      in
      A1.unsafe_set acc.data (oc + k) v;
      s_lv := !s_lv +. (v *. v)
    done;
    let lg = !s_lv in
    s_lv := 0.0;
    for k = 1 + ng to ng + np do
      let v =
        (tp *. A1.unsafe_get acc.data (oc + k))
        +. (s
           *. (A1.unsafe_get a.data (oa + k) +. A1.unsafe_get b.data (ob + k)))
      in
      A1.unsafe_set acc.data (oc + k) v;
      s_lv := !s_lv +. (v *. v)
    done;
    let linear_var = lg +. !s_lv in
    A1.unsafe_set acc.data oc mean;
    let v = target_var -. linear_var in
    A1.unsafe_set acc.data (oc + acc.stride - 1)
      (sqrt (if v > 0.0 then v else 0.0))
  end
