module Robust = Ssta_robust.Robust

type t = {
  n_vertices : int;
  src : int array;
  dst : int array;
  fanin_lo : int array;
  fanin_hi : int array;
  fanout : int array array;
  inputs : int array;
  outputs : int array;
}

let n_edges t = Array.length t.src
let n_vertices t = t.n_vertices

let make ~n_vertices ~edges ~inputs ~outputs =
  let m = Array.length edges in
  let src = Array.make m 0 and dst = Array.make m 0 in
  Array.iteri
    (fun i (s, d) ->
      if s < 0 || s >= n_vertices || d < 0 || d >= n_vertices then
        Robust.fail ~subsystem:"timing.tgraph" ~operation:"make"
          ~indices:[ i; s; d; n_vertices ]
          "edge endpoint out of range [0, n_vertices)";
      src.(i) <- s;
      dst.(i) <- d)
    edges;
  (* Check the claimed topological edge order: a vertex must not appear as a
     source after... more precisely, every source must already be "settled":
     either it has no fanin edges at all, or all its fanin edges appeared
     earlier in the array. *)
  let fanin_count = Array.make n_vertices 0 in
  Array.iter (fun d -> fanin_count.(d) <- fanin_count.(d) + 1) dst;
  let seen_fanin = Array.make n_vertices 0 in
  Array.iteri
    (fun i s ->
      if seen_fanin.(s) <> fanin_count.(s) then
        Robust.fail ~subsystem:"timing.tgraph" ~operation:"make"
          ~indices:[ i; s; seen_fanin.(s); fanin_count.(s) ]
          "edge uses its source before all the source's fanin edges (edge, \
           vertex, fanins seen, fanins total)";
      seen_fanin.(dst.(i)) <- seen_fanin.(dst.(i)) + 1)
    src;
  (* Fanin edges of each vertex must form one contiguous run (any run order
     is fine as long as the array stays topological). *)
  let fanin_lo = Array.make n_vertices 0 in
  let fanin_hi = Array.make n_vertices 0 in
  let closed = Array.make n_vertices false in
  let i = ref 0 in
  while !i < m do
    let d = dst.(!i) in
    if closed.(d) then
      Robust.fail ~subsystem:"timing.tgraph" ~operation:"make"
        ~indices:[ !i; d ]
        "fanin edges of vertex not contiguous (edge, vertex)";
    fanin_lo.(d) <- !i;
    let j = ref !i in
    while !j < m && dst.(!j) = d do
      incr j
    done;
    fanin_hi.(d) <- !j;
    closed.(d) <- true;
    i := !j
  done;
  let fanout_count = Array.make n_vertices 0 in
  Array.iter (fun s -> fanout_count.(s) <- fanout_count.(s) + 1) src;
  let fanout = Array.init n_vertices (fun v -> Array.make fanout_count.(v) 0) in
  let fill = Array.make n_vertices 0 in
  Array.iteri
    (fun i s ->
      fanout.(s).(fill.(s)) <- i;
      fill.(s) <- fill.(s) + 1)
    src;
  { n_vertices; src; dst; fanin_lo; fanin_hi; fanout; inputs; outputs }

let make_sorted ~n_vertices ~edges ~inputs ~outputs =
  let m = Array.length edges in
  let fanin_count = Array.make n_vertices 0 in
  let out_adj = Array.make n_vertices [] in
  Array.iteri
    (fun i (s, d) ->
      if s < 0 || s >= n_vertices || d < 0 || d >= n_vertices then
        Robust.fail ~subsystem:"timing.tgraph" ~operation:"make_sorted"
          ~indices:[ i; s; d; n_vertices ]
          "edge endpoint out of range [0, n_vertices)";
      fanin_count.(d) <- fanin_count.(d) + 1;
      out_adj.(s) <- i :: out_adj.(s))
    edges;
  let remaining = Array.copy fanin_count in
  let queue = Queue.create () in
  for v = 0 to n_vertices - 1 do
    if remaining.(v) = 0 then Queue.push v queue
  done;
  let perm = Array.make m 0 in
  let fanin_edges = Array.make n_vertices [] in
  Array.iteri
    (fun i (_, d) -> fanin_edges.(d) <- i :: fanin_edges.(d))
    edges;
  let pos = ref 0 in
  let settled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr settled;
    (* Emit all fanin edges of v (their sources are settled by induction). *)
    List.iter
      (fun i ->
        perm.(!pos) <- i;
        incr pos)
      (List.rev fanin_edges.(v));
    List.iter
      (fun i ->
        let _, d = edges.(i) in
        remaining.(d) <- remaining.(d) - 1;
        if remaining.(d) = 0 then Queue.push d queue)
      out_adj.(v)
  done;
  if !settled <> n_vertices then begin
    (* Name a vertex that is actually on a cycle, not merely downstream of
       one: walk backwards through unsettled predecessors until a vertex
       repeats.  Every unsettled vertex has at least one unsettled
       predecessor (otherwise Kahn would have settled it), so the walk is
       total and must revisit within n steps. *)
    let unsettled v = remaining.(v) > 0 in
    let start = ref 0 in
    while not (unsettled !start) do
      incr start
    done;
    let visited = Array.make n_vertices false in
    let cur = ref !start in
    while not visited.(!cur) do
      visited.(!cur) <- true;
      let next = ref (-1) in
      List.iter
        (fun i ->
          let s, _ = edges.(i) in
          if !next < 0 && unsettled s then next := s)
        fanin_edges.(!cur);
      cur := !next
    done;
    Robust.fail ~subsystem:"timing.tgraph" ~operation:"make_sorted"
      ~indices:[ !cur; n_vertices - !settled ]
      "graph is cyclic (vertex on a cycle, unsettled vertex count)"
  end;
  let sorted = Array.map (fun i -> edges.(i)) perm in
  (make ~n_vertices ~edges:sorted ~inputs ~outputs, perm)

let of_netlist nl =
  let module N = Ssta_circuit.Netlist in
  let n_pi = N.n_pis nl in
  let edges = ref [] in
  Array.iteri
    (fun g gate ->
      let v = n_pi + g in
      Array.iter
        (fun s -> edges := (s, v) :: !edges)
        gate.N.fanins)
    nl.N.gates;
  make ~n_vertices:(N.n_nodes nl)
    ~edges:(Array.of_list (List.rev !edges))
    ~inputs:(Array.init n_pi (fun i -> i))
    ~outputs:(Array.copy nl.N.outputs)

let edge_index_matrix t =
  let tbl = Hashtbl.create 97 in
  Array.iteri
    (fun i s ->
      let key = (s, t.dst.(i)) in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (i :: prev))
    t.src;
  tbl

(* CSR cone builders for the criticality screen: collect, in ascending edge
   order, the edges whose named endpoint is marked in a per-vertex byte mask
   (the reachability masks the propagation workspaces maintain).  Ascending
   order matters - the screen's pruning state evolves edge by edge, so cone
   iteration must visit edges exactly as a full [0, m) scan would. *)

let cone_check t ~reach ~into name =
  if Bytes.length reach < t.n_vertices then
    invalid_arg (Printf.sprintf "Tgraph.%s: mask shorter than vertex count" name);
  if Array.length into < Array.length t.src then
    invalid_arg (Printf.sprintf "Tgraph.%s: cone array shorter than edge count" name)

let endpoint_cone_into ~reach ~into endpoint =
  let k = ref 0 in
  for e = 0 to Array.length endpoint - 1 do
    if Bytes.unsafe_get reach (Array.unsafe_get endpoint e) <> '\000' then begin
      Array.unsafe_set into !k e;
      incr k
    end
  done;
  !k

let src_cone_into t ~reach ~into =
  cone_check t ~reach ~into "src_cone_into";
  endpoint_cone_into ~reach ~into t.src

let dst_cone_into t ~reach ~into =
  cone_check t ~reach ~into "dst_cone_into";
  endpoint_cone_into ~reach ~into t.dst

let fanout_closure_into t ~seeds ~into =
  if Bytes.length into < t.n_vertices then
    invalid_arg "Tgraph.fanout_closure_into: mask shorter than vertex count";
  Bytes.fill into 0 t.n_vertices '\000';
  Array.iter
    (fun v ->
      if v < 0 || v >= t.n_vertices then
        invalid_arg "Tgraph.fanout_closure_into: seed out of range";
      Bytes.unsafe_set into v '\001')
    seeds;
  (* One ascending pass closes the set because edges are topologically
     ordered by sink: an edge's source is finalized (as a sink, or a
     seed) before the edge is visited. *)
  let count = ref 0 in
  for v = 0 to t.n_vertices - 1 do
    if Bytes.unsafe_get into v <> '\000' then incr count
  done;
  Array.iteri
    (fun i s ->
      if
        Bytes.unsafe_get into s <> '\000'
        && Bytes.unsafe_get into (Array.unsafe_get t.dst i) = '\000'
      then begin
        Bytes.unsafe_set into (Array.unsafe_get t.dst i) '\001';
        incr count
      end)
    t.src;
  !count

let reachable_from t v0 =
  let seen = Array.make t.n_vertices false in
  seen.(v0) <- true;
  (* One forward sweep suffices because edges are topologically ordered. *)
  Array.iteri
    (fun i s -> if seen.(s) then seen.(t.dst.(i)) <- true)
    t.src;
  seen

let reaches t v0 =
  let seen = Array.make t.n_vertices false in
  seen.(v0) <- true;
  for i = Array.length t.src - 1 downto 0 do
    if seen.(t.dst.(i)) then seen.(t.src.(i)) <- true
  done;
  seen
