(** The timing graph of paper Section II: a weighted DAG whose vertices are
    primary inputs and gate outputs, and whose edges are pin-to-output delay
    arcs.  The structure is immutable and stored edge-major in topological
    order (by sink), so forward passes are a single sweep over the edge array
    and backward passes the reverse sweep.  Edge weights live outside the
    structure (parallel [float array] / [Form.t array]), so one graph serves
    deterministic STA, Monte Carlo and canonical SSTA alike. *)

type t = private {
  n_vertices : int;
  src : int array;  (** per edge, topologically sorted by sink *)
  dst : int array;
  fanin_lo : int array;
      (** per vertex: edges with sink [v] are [fanin_lo.(v) ..
          fanin_hi.(v) - 1] (empty range if no fanin); fanin edges are
          contiguous because the edge array is grouped by sink *)
  fanin_hi : int array;
  fanout : int array array;  (** per vertex, edge indices leaving it *)
  inputs : int array;
  outputs : int array;
}

val n_edges : t -> int
val n_vertices : t -> int

val make :
  n_vertices:int ->
  edges:(int * int) array ->
  inputs:int array ->
  outputs:int array ->
  t
(** [edges] as (src, dst) pairs, already topologically ordered by sink
    (checked: every edge's source must appear as some earlier edge's sink or
    have no fanin).  Raises [Failure] if the order is inconsistent or an
    index is out of range. *)

val make_sorted :
  n_vertices:int ->
  edges:(int * int) array ->
  inputs:int array ->
  outputs:int array ->
  t * int array
(** Like {!make} but accepts edges in any order: performs a Kahn topological
    sort internally and returns the permutation [perm] mapping new edge index
    to the caller's original index (so parallel weight arrays can be
    reordered with [Array.map (fun i -> w.(perm.(i)))]).  Raises [Failure] on
    a cyclic graph. *)

val of_netlist : Ssta_circuit.Netlist.t -> t
(** Gate-level timing graph: one vertex per PI and per gate, one edge per
    gate fanin.  Edge order follows gate order, hence is topological. *)

val edge_index_matrix : t -> (int * int, int list) Hashtbl.t
(** Map from (src, dst) to edge indices (several for parallel edges);
    built on demand for tests. *)

val src_cone_into : t -> reach:Bytes.t -> into:int array -> int
(** [src_cone_into t ~reach ~into] writes, in ascending edge order, the
    indices of every edge whose source vertex is marked non-zero in [reach]
    (a per-vertex byte mask of length >= [n_vertices]) into the caller-owned
    [into] (length >= [n_edges]) and returns how many were written — the
    "edge cone" of a reachability mask, built once per forward sweep and
    reused across every output by the criticality screen. *)

val dst_cone_into : t -> reach:Bytes.t -> into:int array -> int
(** As {!src_cone_into} for the destination endpoint (backward cones). *)

val fanout_closure_into : t -> seeds:int array -> into:Bytes.t -> int
(** [fanout_closure_into t ~seeds ~into] fills the per-vertex byte mask
    [into] (length >= [n_vertices]; cleared first) with the forward
    closure of the seed vertices — every vertex reachable from a seed by
    forward edges, seeds included — and returns the marked count.  One
    ascending edge pass, so it costs O(edges) integer work with no form
    operations: this is the dirty set of an ECO-style edge-delay edit
    (seed = the edited edge's sink), handed to
    [Propagate.forward_update_into] for incremental re-timing. *)

val reachable_from : t -> int -> bool array
(** Vertices reachable from a vertex by forward edges (including itself). *)

val reaches : t -> int -> bool array
(** Vertices from which a vertex is reachable (including itself). *)
