module Form = Ssta_canonical.Form
module N = Ssta_circuit.Netlist
module Cell = Ssta_cell.Cell
module Grid = Ssta_variation.Grid
module Basis = Ssta_variation.Basis
module Correlation = Ssta_variation.Correlation
module Tile = Ssta_variation.Tile

type sparse_edge = {
  nominal : float;
  sens : float array;
  tile : int;
  random_sigma : float;
}

type t = {
  netlist : N.t;
  placement : Ssta_circuit.Placement.t;
  grid : Grid.t;
  basis : Basis.t;
  graph : Tgraph.t;
  forms : Form.t array;
  sparse : sparse_edge array;
  gate_tile : int array;
}

let characterize ?(corr = Correlation.default) ?(cells_per_tile = 100) nl =
  Ssta_obs.Obs.with_span "build.characterize" @@ fun () ->
  let placement = Ssta_circuit.Placement.place nl in
  let die = placement.Ssta_circuit.Placement.die in
  let pitch =
    Grid.pitch_for_cell_budget ~n_cells:(N.n_gates nl) ~cells_per_tile
      ~cell_pitch:1.0
  in
  let grid =
    Grid.make ~x0:die.Tile.x0 ~y0:die.Tile.y0 ~width:(Tile.width die)
      ~height:(Tile.height die) ~pitch
  in
  let n_params = Array.length Ssta_cell.Library.params in
  let basis = Basis.make ~n_params ~corr ~pitch grid.Grid.tiles in
  let graph = Tgraph.of_netlist nl in
  let gate_tile =
    Array.map
      (fun pos -> Grid.index_of_point grid pos)
      placement.Ssta_circuit.Placement.positions
  in
  let fanouts = N.fanout_counts nl in
  let n_pi = N.n_pis nl in
  (* Edges appear in gate order with pins in fanin order (Tgraph.of_netlist
     preserves netlist order), so we can rebuild the per-edge cell context by
     walking gates in lockstep. *)
  let m = Tgraph.n_edges graph in
  let forms = Array.make m (Form.constant basis.Basis.dims 0.0) in
  let sparse =
    Array.make m { nominal = 0.0; sens = [||]; tile = 0; random_sigma = 0.0 }
  in
  let e = ref 0 in
  Array.iteri
    (fun g gate ->
      let cell = gate.N.cell in
      let v = n_pi + g in
      let fanout = max fanouts.(v) 1 in
      let tile = gate_tile.(g) in
      Array.iteri
        (fun pin _src ->
          let nominal = Cell.arc_delay cell ~fanout ~pin in
          let load_sigma = nominal *. cell.Cell.load_sens in
          forms.(!e) <-
            Basis.delay_form basis ~nominal ~tile ~sens:cell.Cell.sens
              ~extra_random_sigma:load_sigma;
          let vr = corr.Correlation.var_random in
          let rand_var =
            Array.fold_left
              (fun acc s -> acc +. (nominal *. s *. nominal *. s *. vr))
              (load_sigma *. load_sigma) cell.Cell.sens
          in
          sparse.(!e) <-
            {
              nominal;
              sens = cell.Cell.sens;
              tile;
              random_sigma = sqrt rand_var;
            };
          incr e)
        gate.N.fanins)
    nl.N.gates;
  assert (!e = m);
  { netlist = nl; placement; grid; basis; graph; forms; sparse; gate_tile }

let nominal_weights t = Array.map (fun s -> s.nominal) t.sparse
