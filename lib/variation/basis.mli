(** The variation basis: the set of independent random variables every
    canonical form in one analysis context is expressed over.

    A basis is built from a tile partition (regular at module level,
    heterogeneous at design level), a correlation model and the number of
    process parameters.  It performs PCA of the unit-variance local
    covariance matrix C (paper eq. (2)) once; each parameter gets its own
    independent copy of the PC block, so the PC dimension is
    [n_params * n_tiles].  Canonical-form coefficients for a delay are then
    assembled from a cell's nominal delay and per-parameter sensitivities. *)

module Form = Ssta_canonical.Form

type t = private {
  n_params : int;
  corr : Correlation.model;
  pitch : float;  (** distance unit: one grid pitch *)
  tiles : Tile.t array;
  pca : Ssta_linalg.Pca.t;
  dims : Form.dims;
}

val make :
  n_params:int -> corr:Correlation.model -> pitch:float -> Tile.t array -> t
(** Raises [Invalid_argument] on an empty tile set or non-positive counts.
    Coincident tiles (centers closer than [1e-6] pitch) make the local
    covariance rank-deficient: under the [Strict] robustness policy this
    raises [Ssta_robust.Robust.Error] naming the tile pair; under
    [Repair]/[Warn] the event is counted in [robust.degenerate_tiles] and
    PCA truncates the duplicated direction. *)

val of_parts :
  n_params:int ->
  corr:Correlation.model ->
  pitch:float ->
  tiles:Tile.t array ->
  pca:Ssta_linalg.Pca.t ->
  t
(** Rebuild a basis from serialized parts (timing-model deserialization)
    without re-running PCA - eigenvector sign conventions are preserved, so
    coefficient vectors stored against the original basis remain valid.
    Raises [Invalid_argument] if the PCA dimension does not match the tile
    count. *)

val n_tiles : t -> int

val local_covariance_matrix : t -> Ssta_linalg.Mat.t
(** The normalized C the PCA was computed from (fresh copy, for tests). *)

val delay_form :
  t ->
  nominal:float ->
  tile:int ->
  sens:float array ->
  extra_random_sigma:float ->
  Form.t
(** Canonical form of one delay: mean [nominal]; per-parameter global
    coefficient [nominal * sens.(k) * sqrt var_global]; PC coefficients from
    the tile's PCA row scaled by [nominal * sens.(k) * sqrt var_local] in
    parameter block [k]; random part RSS-combining per-parameter random
    variance and [extra_random_sigma] (an absolute sigma, e.g. load
    variation). *)

val sample_globals : t -> Ssta_gauss.Rng.t -> float array
(** One standard-normal draw per parameter. *)

val sample_local_fields : t -> Ssta_gauss.Rng.t -> float array array
(** [n_params] independent correlated unit-variance local fields, each with
    one value per tile (drawn through the PCA factor, so their covariance is
    the clamped C). *)

val sample_pcs : t -> Ssta_gauss.Rng.t -> float array
(** Standard-normal PC vector of length [dims.n_pcs] (for evaluating
    canonical forms directly in tests). *)

val tile_of_point : t -> float * float -> int
(** Index of the tile containing a point (linear scan; fine for tests and
    model building, use {!Grid.index_of_point} for bulk regular lookups). *)
