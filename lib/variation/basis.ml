module Form = Ssta_canonical.Form
module Mat = Ssta_linalg.Mat
module Pca = Ssta_linalg.Pca
module Rng = Ssta_gauss.Rng
module Robust = Ssta_robust.Robust

let degenerate_tiles = Robust.counter "robust.degenerate_tiles"

type t = {
  n_params : int;
  corr : Correlation.model;
  pitch : float;
  tiles : Tile.t array;
  pca : Pca.t;
  dims : Form.dims;
}

let local_cov_matrix corr pitch tiles =
  let n = Array.length tiles in
  Mat.init n n (fun i j ->
      if i = j then 1.0
      else
        let d = Tile.center_distance tiles.(i) tiles.(j) /. pitch in
        Correlation.normalized_local_correlation corr d)

let make ~n_params ~corr ~pitch tiles =
  if n_params <= 0 then invalid_arg "Basis.make: n_params must be positive";
  if Array.length tiles = 0 then invalid_arg "Basis.make: no tiles";
  if pitch <= 0.0 then invalid_arg "Basis.make: pitch must be positive";
  (* Coincident tiles make the local covariance exactly rank-deficient
     (duplicate rows), which PCA truncation would silently absorb just as
     it absorbs legitimate small eigenvalues - so the defect is detected
     here at its cause.  Any tile partition has distinct centers; two
     tiles closer than 1e-6 of a pitch mean the floorplan or grid was
     corrupted.  Strict raises naming the pair; Repair/Warn count the
     event and let PCA truncate the duplicated direction. *)
  let n_t = Array.length tiles in
  let coincident_tol = 1e-6 *. pitch in
  for i = 0 to n_t - 1 do
    for j = i + 1 to n_t - 1 do
      let d = Tile.center_distance tiles.(i) tiles.(j) in
      if d < coincident_tol then
        Robust.repair degenerate_tiles
          (Robust.context ~subsystem:"variation.basis" ~operation:"make"
             ~indices:[ i; j ] ~values:[ d; pitch ]
             "coincident tiles: local covariance is rank-deficient \
              (duplicate rows)")
    done
  done;
  let c = local_cov_matrix corr pitch tiles in
  let pca = Pca.of_covariance c in
  let n_tiles = Array.length tiles in
  {
    n_params;
    corr;
    pitch;
    tiles;
    pca;
    dims = { Form.n_globals = n_params; n_pcs = n_params * n_tiles };
  }

let of_parts ~n_params ~corr ~pitch ~tiles ~pca =
  if n_params <= 0 || Array.length tiles = 0 || pitch <= 0.0 then
    invalid_arg "Basis.of_parts: invalid parameters";
  if pca.Pca.dim <> Array.length tiles then
    invalid_arg "Basis.of_parts: PCA dimension does not match tiles";
  {
    n_params;
    corr;
    pitch;
    tiles;
    pca;
    dims =
      { Form.n_globals = n_params; n_pcs = n_params * Array.length tiles };
  }

let n_tiles t = Array.length t.tiles
let local_covariance_matrix t = local_cov_matrix t.corr t.pitch t.tiles

let delay_form t ~nominal ~tile ~sens ~extra_random_sigma =
  if Array.length sens <> t.n_params then
    invalid_arg "Basis.delay_form: sensitivity count mismatch";
  if tile < 0 || tile >= n_tiles t then
    invalid_arg "Basis.delay_form: tile index out of range";
  let nt = n_tiles t in
  let sg = sqrt t.corr.Correlation.var_global in
  let sl = sqrt t.corr.Correlation.var_local in
  let vr = t.corr.Correlation.var_random in
  let row = Pca.coeff_row t.pca tile in
  let globals =
    Array.init t.n_params (fun k -> nominal *. sens.(k) *. sg)
  in
  let pcs = Array.make (t.n_params * nt) 0.0 in
  for k = 0 to t.n_params - 1 do
    let scale = nominal *. sens.(k) *. sl in
    let base = k * nt in
    for i = 0 to nt - 1 do
      pcs.(base + i) <- scale *. row.(i)
    done
  done;
  let rand_var =
    Array.fold_left
      (fun acc s -> acc +. (nominal *. s *. nominal *. s *. vr))
      (extra_random_sigma *. extra_random_sigma)
      sens
  in
  Form.make ~mean:nominal ~globals ~pcs ~rand:(sqrt rand_var)

let sample_globals t rng = Array.init t.n_params (fun _ -> Rng.gaussian rng)

let sample_local_fields t rng =
  Array.init t.n_params (fun _ -> Pca.sample t.pca rng)

let sample_pcs t rng =
  let z = Array.make t.dims.Form.n_pcs 0.0 in
  Rng.gaussian_fill rng z;
  z

let tile_of_point t p =
  let rec find i =
    if i >= Array.length t.tiles then
      invalid_arg "Basis.tile_of_point: point outside every tile"
    else if Tile.contains t.tiles.(i) p then i
    else find (i + 1)
  in
  find 0
