module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let std t = sqrt (variance t)
end

module Robust = Ssta_robust.Robust

(* Order statistics and moments are undefined on NaN (polymorphic compare
   gives an arbitrary order; sums poison silently), so the entry points
   that sort or average reject NaN samples with a structured error naming
   the first offending index.  One pass, no allocation. *)
let check_no_nan op xs =
  let n = Array.length xs in
  let i = ref 0 in
  while !i < n && not (Float.is_nan xs.(!i)) do
    incr i
  done;
  if !i < n then
    Robust.fail ~subsystem:"gauss.stats" ~operation:op ~indices:[ !i ]
      ~values:[ xs.(!i) ] "NaN sample"

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  check_no_nan "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let quantile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Stats.quantile: p outside [0, 1]";
  check_no_nan "quantile" xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let empirical_cdf xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.empirical_cdf: empty sample";
  check_no_nan "empirical_cdf" xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let probs = Array.init n (fun i -> float_of_int (i + 1) /. float_of_int n) in
  (sorted, probs)

let histogram_dropped ?lo ?hi ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty sample";
  check_no_nan "histogram" xs;
  let lo =
    match lo with Some v -> v | None -> Array.fold_left min xs.(0) xs
  in
  let hi =
    match hi with Some v -> v | None -> Array.fold_left max xs.(0) xs
  in
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  let dropped = ref 0 in
  Array.iter
    (fun x ->
      if x >= lo && x <= hi then begin
        let b =
          if width <= 0.0 then 0
          else min (bins - 1) (int_of_float ((x -. lo) /. width))
        in
        counts.(b) <- counts.(b) + 1
      end
      else incr dropped)
    xs;
  (counts, !dropped)

let histogram ?lo ?hi ~bins xs = fst (histogram_dropped ?lo ?hi ~bins xs)

let ks_distance xs cdf =
  let sorted, _ = empirical_cdf xs in
  let n = Array.length sorted in
  let fn = float_of_int n in
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let d_hi = abs_float ((float_of_int (i + 1) /. fn) -. f) in
      let d_lo = abs_float (f -. (float_of_int i /. fn)) in
      worst := Float.max !worst (Float.max d_hi d_lo))
    sorted;
  !worst

let pp_summary ppf xs =
  Format.fprintf ppf "n=%d mean=%.4f std=%.4f q01=%.4f q50=%.4f q99=%.4f"
    (Array.length xs) (mean xs) (std xs) (quantile xs 0.01) (quantile xs 0.5)
    (quantile xs 0.99)
