let pi = 4.0 *. atan 1.0
let sqrt2 = sqrt 2.0
let inv_sqrt_2pi = 1.0 /. sqrt (2.0 *. pi)

(* Complementary error function after Numerical Recipes' [erfcc]: a Chebyshev
   fit on t = 1/(1+z/2) with fractional error below 1.2e-7 everywhere. *)
let erfc x =
  let z = abs_float x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc x
let pdf x = inv_sqrt_2pi *. exp (-0.5 *. x *. x)
let cdf x = 0.5 *. erfc (-.x /. sqrt2)

(* Acklam's rational approximation for the inverse normal CDF, then one
   Halley refinement using [cdf]/[pdf] to reach near machine precision. *)
let quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Normal.quantile: p must lie in (0, 1)";
  let a =
    [|
      -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
      1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00;
    |]
  and b =
    [|
      -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
      6.680131188771972e+01; -1.328068155288572e+01;
    |]
  and c =
    [|
      -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
      -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00;
    |]
  and d =
    [|
      7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
      3.754408661907416e+00;
    |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
      |> fun num ->
      num
      /. ((((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q) +. 1.0)
    else if p <= 1.0 -. p_low then
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. (((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r
           +. b.(4))
           *. r)
         +. 1.0)
    else
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
         *. q
        +. c.(5))
      /. ((((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q) +. 1.0)
  in
  (* Halley's method step on f(x) = cdf x - p. *)
  let e = cdf x -. p in
  let u = e *. sqrt (2.0 *. pi) *. exp (0.5 *. x *. x) in
  x -. (u /. (1.0 +. (0.5 *. x *. u)))

type max_moments = { tightness : float; mean : float; variance : float }

module Robust = Ssta_robust.Robust

let clark_degenerate_count = Robust.counter "robust.clark_degenerate"
let nan_sanitized = Robust.counter "robust.nan_sanitized"

(* The Clark-max fast path admits exactly the operands for which the
   moment formulas are well-defined: finite inputs and non-negative
   variances.  The tie branch inside the core already gives the exact
   closed form for sigma_a = sigma_b = 0, rho = +1 with equal sigmas, and
   equal-moment ties (theta^2 = 0); sigma -> 0+ flows through the generic
   formulas, which degrade gracefully (alpha -> +/-inf, tp -> {0,1},
   ph -> 0).  The single sum's self-subtraction test catches NaN and Inf
   in any operand at the cost of four adds and a compare. *)
let clark_operands_ok ~mean_a ~var_a ~mean_b ~var_b ~cov =
  var_a >= 0.0 && var_b >= 0.0
  &&
  let t = mean_a +. var_a +. mean_b +. var_b +. cov in
  t -. t = 0.0

(* Fast-path body shared by [clark_max_into]: operates on slot values
   already loaded into unboxed locals so the array is read exactly once
   (guard included).  The arithmetic replicates [clark_max] - with [cdf],
   [pdf] and [erfc] inlined - operation for operation; the kernel test
   suite pins bit-identity against the record-returning original. *)
let[@inline] clark_max_into_fast s ~mean_a ~var_a ~mean_b ~var_b ~cov =
  let theta2 = var_a +. var_b -. (2.0 *. cov) in
  let scale = var_a +. var_b +. 1e-30 in
  if theta2 <= 1e-12 *. scale then
    if mean_a >= mean_b then begin
      s.(0) <- 1.0;
      s.(1) <- mean_a;
      s.(2) <- var_a
    end
    else begin
      s.(0) <- 0.0;
      s.(1) <- mean_b;
      s.(2) <- var_b
    end
  else begin
    let theta = sqrt theta2 in
    let alpha = (mean_a -. mean_b) /. theta in
    (* tp = cdf alpha, with erfc's Chebyshev fit spelled out. *)
    let x = -.alpha /. sqrt2 in
    let z = abs_float x in
    let t = 1.0 /. (1.0 +. (0.5 *. z)) in
    let poly =
      -1.26551223
      +. t
         *. (1.00002368
            +. t
               *. (0.37409196
                  +. t
                     *. (0.09678418
                        +. t
                           *. (-0.18628806
                              +. t
                                 *. (0.27886807
                                    +. t
                                       *. (-1.13520398
                                          +. t
                                             *. (1.48851587
                                                +. t
                                                   *. (-0.82215223
                                                      +. (t *. 0.17087277)))))))))
    in
    let ans = t *. exp ((-.z *. z) +. poly) in
    let erfc_x = if x >= 0.0 then ans else 2.0 -. ans in
    let tp = 0.5 *. erfc_x in
    (* ph = pdf alpha. *)
    let ph = inv_sqrt_2pi *. exp (-0.5 *. alpha *. alpha) in
    let mean = (tp *. mean_a) +. ((1.0 -. tp) *. mean_b) +. (theta *. ph) in
    let second =
      (tp *. (var_a +. (mean_a *. mean_a)))
      +. ((1.0 -. tp) *. (var_b +. (mean_b *. mean_b)))
      +. ((mean_a +. mean_b) *. theta *. ph)
    in
    (* Float.max is a plain (boxing) stdlib call; this comparison agrees
       with [Float.max 0.0 v] for every input including nan and -0. *)
    let v = second -. (mean *. mean) in
    s.(0) <- tp;
    s.(1) <- mean;
    if v > 0.0 then s.(2) <- v else s.(2) <- 0.0
  end

let clark_core ~mean_a ~var_a ~mean_b ~var_b ~cov =
  let theta2 = var_a +. var_b -. (2.0 *. cov) in
  let scale = var_a +. var_b +. 1e-30 in
  if theta2 <= 1e-12 *. scale then
    (* A - B is (numerically) a constant: the max is simply the variable with
       the larger mean. *)
    if mean_a >= mean_b then
      { tightness = 1.0; mean = mean_a; variance = var_a }
    else { tightness = 0.0; mean = mean_b; variance = var_b }
  else
    let theta = sqrt theta2 in
    let alpha = (mean_a -. mean_b) /. theta in
    let tp = cdf alpha in
    let ph = pdf alpha in
    let mean = (tp *. mean_a) +. ((1.0 -. tp) *. mean_b) +. (theta *. ph) in
    let second =
      (tp *. (var_a +. (mean_a *. mean_a)))
      +. ((1.0 -. tp) *. (var_b +. (mean_b *. mean_b)))
      +. ((mean_a +. mean_b) *. theta *. ph)
    in
    let variance = Float.max 0.0 (second -. (mean *. mean)) in
    { tightness = tp; mean; variance }

(* Cold path: degenerate operands (NaN/Inf anywhere, or a negative
   variance).  Strict raises a structured error naming the offending slot;
   Repair/Warn sanitize each bad operand to its nearest valid value -
   non-finite -> 0, variance clamped >= 0, covariance clamped to the
   Cauchy-Schwarz bound - and re-enter the exact core on the repaired
   operands. *)
let clark_max_degenerate ~mean_a ~var_a ~mean_b ~var_b ~cov =
  let bad_slots =
    List.filter_map
      (fun (ok, i) -> if ok then None else Some i)
      [
        (Robust.is_finite mean_a, 0);
        (Robust.is_finite var_a && var_a >= 0.0, 1);
        (Robust.is_finite mean_b, 2);
        (Robust.is_finite var_b && var_b >= 0.0, 3);
        (Robust.is_finite cov, 4);
      ]
  in
  let ctx =
    Robust.context ~subsystem:"gauss.normal" ~operation:"clark_max"
      ~indices:bad_slots
      ~values:[ mean_a; var_a; mean_b; var_b; cov ]
      "degenerate Clark max operands (non-finite value or negative variance)"
  in
  Robust.repair clark_degenerate_count ctx;
  let fin slot x =
    if Robust.is_finite x then x
    else begin
      Robust.count nan_sanitized
        (Robust.context ~subsystem:"gauss.normal" ~operation:"clark_max"
           ~indices:[ slot ] ~values:[ x ] "non-finite operand zeroed");
      0.0
    end
  in
  let mean_a = fin 0 mean_a in
  let var_a = Float.max 0.0 (fin 1 var_a) in
  let mean_b = fin 2 mean_b in
  let var_b = Float.max 0.0 (fin 3 var_b) in
  let bound = sqrt (var_a *. var_b) in
  let cov = Float.min bound (Float.max (-.bound) (fin 4 cov)) in
  clark_core ~mean_a ~var_a ~mean_b ~var_b ~cov

let clark_max ~mean_a ~var_a ~mean_b ~var_b ~cov =
  if clark_operands_ok ~mean_a ~var_a ~mean_b ~var_b ~cov then
    clark_core ~mean_a ~var_a ~mean_b ~var_b ~cov
  else clark_max_degenerate ~mean_a ~var_a ~mean_b ~var_b ~cov

let clark_max_into s =
  (* The slots are loaded into unboxed locals exactly once and shared
     between the guard and the fast body; the guard itself costs two
     compares, four adds and one subtraction. *)
  let mean_a = s.(0)
  and var_a = s.(1)
  and mean_b = s.(2)
  and var_b = s.(3)
  and cov = s.(4) in
  let ok =
    var_a >= 0.0
    && var_b >= 0.0
    &&
    let t = mean_a +. var_a +. mean_b +. var_b +. cov in
    t -. t = 0.0
  in
  if ok then (clark_max_into_fast [@inlined]) s ~mean_a ~var_a ~mean_b ~var_b ~cov
  else begin
    let { tightness; mean; variance } =
      clark_max_degenerate ~mean_a ~var_a ~mean_b ~var_b ~cov
    in
    s.(0) <- tightness;
    s.(1) <- mean;
    s.(2) <- variance
  end
