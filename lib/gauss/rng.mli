(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256++ generator seeded through splitmix64, so that
    every experiment in the repository is reproducible from an integer seed
    without depending on the global [Random] state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] expands [seed] with splitmix64 into a full 256-bit state. *)

val create64 : int64 -> t
(** As {!create} from a full 64-bit seed. *)

val stream : seed:int -> index:int -> t
(** [stream ~seed ~index] is the [index]-th generator of a deterministic
    substream family: a pure function of [(seed, index)], independent of
    domain count or spawn order, so chunked parallel runs are reproducible.
    [index = 0] is exactly [create ~seed] (the historical sequential
    stream); higher indices derive decorrelated 64-bit seeds through
    splitmix64.  Raises [Invalid_argument] on negative [index]. *)

val copy : t -> t
(** Independent copy of the current state. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1]; [n] must be positive. *)

val uniform : t -> float
(** Uniform float in [0, 1) with 53 random bits. *)

val gaussian : t -> float
(** Standard normal variate (polar Box-Muller with spare caching). *)

val gaussian_fill : t -> float array -> unit
(** Fill an array with independent standard normal variates. *)

val split : t -> t
(** Derive an independent child generator (for parallel or per-module
    streams) without disturbing determinism of the parent stream beyond one
    draw. *)
