type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float;
  mutable has_spare : bool;
}

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = 0.0; has_spare = false }

let create ~seed = create64 (Int64.of_int seed)

(* Deterministic substream family for chunked parallel runs: [stream ~seed
   ~index:i] yields an independent, reproducible generator per chunk, a pure
   function of (seed, index) - never of the domain count or spawn order.
   Index 0 is exactly [create ~seed], so any run that fits in a single chunk
   reproduces the historical sequential stream bit for bit (the MC goldens
   in test_determinism.ml rely on this).  Higher indices push (seed, index)
   through two splitmix64 rounds before seeding, which decorrelates
   neighbouring chunk streams the same way [create] decorrelates
   neighbouring integer seeds. *)
let stream ~seed ~index =
  if index < 0 then invalid_arg "Rng.stream: index must be >= 0";
  if index = 0 then create ~seed
  else begin
    let st = ref (Int64.of_int seed) in
    let a = splitmix64 st in
    st := Int64.logxor a (Int64.mul (Int64.of_int index) 0x9E3779B97F4A7C15L);
    create64 (splitmix64 st)
  end

let copy t = { t with s0 = t.s0 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tt = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let uniform t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^24. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let rec gaussian t =
  if t.has_spare then begin
    t.has_spare <- false;
    t.spare
  end
  else
    let u = (2.0 *. uniform t) -. 1.0 in
    let v = (2.0 *. uniform t) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then gaussian t
    else begin
      let f = sqrt (-2.0 *. log s /. s) in
      t.spare <- v *. f;
      t.has_spare <- true;
      u *. f
    end

let gaussian_fill t a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- gaussian t
  done

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed
