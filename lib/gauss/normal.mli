(** Standard-normal distribution functions and Clark's max-of-Gaussians
    moments.

    These are the numerical primitives behind the canonical-form operations of
    statistical static timing analysis: the tightness probability (paper
    eq. (6)) and the mean/variance of [max{A,B}] (paper eqs. (7)-(8), after
    Clark 1961). *)

val pi : float
(** The constant pi. *)

val erf : float -> float
(** Error function, fractional accuracy better than 1.3e-7. *)

val erfc : float -> float
(** Complementary error function [1 - erf x], accurate for large [x]. *)

val pdf : float -> float
(** [pdf x] is the standard normal density phi(x). *)

val cdf : float -> float
(** [cdf x] is the standard normal cumulative Phi(x). *)

val quantile : float -> float
(** [quantile p] is the inverse of {!cdf} for [p] in (0, 1); raises
    [Invalid_argument] outside that open interval.  Accuracy is refined by a
    Halley step to near machine precision. *)

type max_moments = {
  tightness : float;  (** P(A >= B), paper eq. (6) *)
  mean : float;  (** E[max(A,B)], paper eq. (7) *)
  variance : float;  (** Var[max(A,B)], paper eq. (8), clamped at 0 *)
}

val clark_max :
  mean_a:float ->
  var_a:float ->
  mean_b:float ->
  var_b:float ->
  cov:float ->
  max_moments
(** Moments of the maximum of two jointly Gaussian variables.  When the
    discriminant [var_a + var_b - 2 cov] is (numerically) zero the variables
    differ by a constant and the result degenerates to the variable with the
    larger mean - the exact closed form for the sigma_a = sigma_b = 0,
    rho = +1 equal-sigma, and equal-moment tie cases.

    Degenerate operands (any non-finite value, or a negative variance) are
    routed through the robust layer: [Strict] raises
    [Ssta_robust.Robust.Error] naming the offending slots; [Repair]/[Warn]
    sanitize (non-finite -> 0, variance clamped >= 0, covariance clamped to
    the Cauchy-Schwarz bound), count [robust.clark_degenerate] /
    [robust.nan_sanitized], and evaluate the exact formulas on the repaired
    operands.  Valid operands never enter the slow path and take the
    historical code bit-for-bit. *)

val clark_max_into : float array -> unit
(** Allocation-free {!clark_max}: reads [mean_a; var_a; mean_b; var_b; cov]
    from slots 0..4 of the scratch array (length >= 5) and overwrites slots
    0..2 with [tightness; mean; variance].  Bit-identical to {!clark_max};
    it exists because float arguments and results cross OCaml function
    boundaries boxed (no flambda), which would dominate allocation in the
    kernel loops of [Form_buf]. *)
