(** Sample statistics used to compare SSTA results against Monte Carlo. *)

module Welford : sig
  type t
  (** Streaming mean/variance accumulator (numerically stable). *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 for fewer than two samples. *)

  val std : t -> float
end

val mean : float array -> float
(** Raises [Ssta_robust.Robust.Error] (naming the first offending index)
    if the sample contains NaN — as do {!quantile}, {!empirical_cdf},
    {!histogram} and everything built on them: polymorphic compare orders
    NaN arbitrarily and sums poison silently, so the failure is made
    explicit at the boundary. *)

val variance : float array -> float
(** Unbiased sample variance. *)

val std : float array -> float

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [0,1]: linear interpolation on the sorted
    sample.  The input array is not modified. *)

val empirical_cdf : float array -> float array * float array
(** [empirical_cdf xs] is [(sorted_values, probabilities)] where
    [probabilities.(i) = (i+1) / n]. *)

val histogram : ?lo:float -> ?hi:float -> bins:int -> float array -> int array
(** Counts per bin over [lo, hi] (defaults: sample min/max).  Values landing
    exactly on [hi] go to the last bin.  With explicit [lo]/[hi], samples
    outside the range are {e dropped} — use {!histogram_dropped} when the
    caller needs to know how many (a histogram that silently loses mass
    misreports tails). *)

val histogram_dropped :
  ?lo:float -> ?hi:float -> bins:int -> float array -> int array * int
(** Like {!histogram}, also returning the number of samples that fell
    outside [lo, hi] (always [0] when both default). *)

val ks_distance : float array -> (float -> float) -> float
(** Kolmogorov-Smirnov distance between the sample and a reference CDF. *)

val pp_summary : Format.formatter -> float array -> unit
(** One-line [n/mean/std/q01/q50/q99] summary, for logs and examples. *)
