(** Minimal dependency-free JSON: the wire format of the scenario-spec
    files ({!Ssta_batch.Batch.parse_scenarios}) and of the [hssta serve]
    JSONL request/response protocol.

    The reader is a recursive-descent parser over a complete string
    (arrays, flat or nested objects, strings, numbers, true/false/null);
    the writer emits one compact line with round-trip float precision, so
    a response stream is byte-deterministic for bit-identical inputs —
    the property the serve CI smoke test pins across domain counts. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse_exn} with a message naming the byte offset. *)

val parse_exn : string -> t
val parse : string -> (t, string) result

val to_string : t -> string
(** Compact single-line serialization.  Floats use [%.17g] (round-trip
    precision) except integral values in int range, which print as
    integers; non-finite numbers become [null] (JSON has no spelling for
    them); strings are ASCII-escaped. *)

(** {1 Accessors} *)

val find : string -> t -> t option
(** Field lookup; [None] unless the value is an object with the field. *)

val mem : string -> t -> bool

val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option
val to_bool : t -> bool option

val num_field : ?default:float -> string -> t -> (float, string) result
(** Field as a number; [Error] names the field when it is present with a
    non-numeric value, or missing with no [default]. *)

val str_field : ?default:string -> string -> t -> (string, string) result
val bool_field : ?default:bool -> string -> t -> (bool, string) result
