type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* Recursive-descent reader over a complete string.  No stream input on
   purpose: scenario specs and protocol lines are tiny, and a whole-string
   parser keeps offsets exact for error reporting. *)
let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            (* Labels and protocol strings are ASCII; map BMP escapes below
               0x80, reject the rest rather than mis-decode. *)
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else fail "non-ASCII \\u escape unsupported"
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters";
  v

let parse s = try Ok (parse_exn s) with Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if
    Float.is_integer f && Float.abs f <= 1e15
    (* integral and exactly representable as an int: print without the
       exponent noise %.17g would add *)
  then Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let to_string v =
  let b = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> add_num b f
    | Str s -> add_escaped b s
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            add_escaped b k;
            Buffer.add_char b ':';
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let find k = function Obj fields -> List.assoc_opt k fields | _ -> None
let mem k v = find k v <> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let field_as ?default name conv what v =
  match find name v with
  | Some x -> (
      match conv x with
      | Some y -> Ok y
      | None -> Error (Printf.sprintf "field %S must be %s" name what))
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" name))

let num_field ?default name v = field_as ?default name to_num "a number" v
let str_field ?default name v = field_as ?default name to_str "a string" v
let bool_field ?default name v = field_as ?default name to_bool "a boolean" v
