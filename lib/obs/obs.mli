(** Observability: per-phase timing spans, named counters/gauges, and
    memory metrics for the extraction and hierarchical-SSTA pipeline.

    Design constraints (see ISSUE 3 / DESIGN.md):

    + {e Zero-dependency and allocation-conscious.}  Disabled (the
      default), every entry point is one global-flag load and a branch —
      no closure is invoked, no event is allocated — so instrumentation
      can live permanently in the hot layers ([Propagate], [Criticality],
      the MC engines) without costing the kernels anything measurable
      (the bench regression gate pins the disabled-mode overhead below
      2 %).  Hot loops must not call {!add} per element; they count into
      a local [int] and publish once per region.
    + {e Per-domain safe.}  Counters and gauges are atomics; span
      aggregates and the trace sink are mutex-protected.  Events may be
      recorded from any {!Ssta_par.Par} worker domain.  Counter totals
      are sums (and gauges maxima), so merged values are deterministic —
      independent of the domain count and of scheduling — whenever the
      per-region contributions are (which [Par]'s fixed chunk layouts
      guarantee).
    + {e Two sinks.}  An aggregated in-memory view ({!counters}, {!spans},
      {!pp}) for summaries and bench metrics, and an optional JSONL trace
      stream ({!trace_to_file}, [OBS_TRACE]) with one self-contained JSON
      object per line: span begin/end events carry the domain id, a
      timestamp relative to the trace epoch, and per-span GC minor/major
      words; counter and gauge values are appended when the trace is
      closed.

    Time is wall-clock ([Unix.gettimeofday]) with durations clamped to be
    non-negative, which is monotonic enough for per-phase attribution;
    GC words come from [Gc.quick_stat] and are per-domain (a span's word
    deltas only cover allocation by the domain that opened it). *)

val enabled : unit -> bool
(** Whether events are being recorded.  Hot paths read this once per
    region and skip all bookkeeping when false. *)

val enable : unit -> unit
val disable : unit -> unit

val set_enabled : bool -> unit
(** [set_enabled (enabled ())]-style save/restore for tests and bench. *)

(** {1 Counters and gauges}

    Handles are registered by name once (typically at module
    initialization) and updated lock-free.  Creating the same name twice
    returns the same handle. *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Current total; reads are exact only outside parallel regions. *)

type gauge
(** A high-water mark (e.g. workspace floats, buffer slots). *)

val gauge : string -> gauge
val gauge_max : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Spans} *)

type span
(** An open timing span.  Spans nest per domain (begin/end pairs follow
    the call structure); a span opened while disabled is inert. *)

val span_begin : string -> span
val span_end : span -> unit

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span is closed on
    exceptions too.  Disabled, this is exactly [f ()]. *)

type span_stats = {
  count : int;  (** completed spans of this name *)
  seconds : float;  (** total wall-clock inside them *)
  minor_words : float;  (** GC minor words allocated (opening domain) *)
  major_words : float;  (** GC major words allocated (opening domain) *)
}

(** {1 Aggregated views} *)

val counters : unit -> (string * int) list
(** All registered counters, sorted by name (including zeros). *)

val gauges : unit -> (string * int) list

val spans : unit -> (string * span_stats) list
(** Aggregate per span name, sorted by name; only completed spans. *)

val span_seconds : string -> float
(** Total seconds of the named span, 0 if it never completed. *)

val find_counter : string -> int
(** Value of a registered counter by name, 0 if unregistered. *)

val reset : unit -> unit
(** Zero every counter, gauge, and span aggregate (registrations are
    kept).  Does not touch the trace channel. *)

val pp : Format.formatter -> unit -> unit
(** Human summary: spans (count, seconds, GC words), then counters and
    gauges, sorted by name.  Zero-valued counters are elided. *)

(** {1 JSONL trace sink}

    Event schema, one JSON object per line:
    - [{"ev":"B","name":N,"dom":D,"t":T}] — span begin;
    - [{"ev":"E","name":N,"dom":D,"t":T,"dur_s":S,"minor_w":W,"major_w":W}]
      — span end;
    - [{"ev":"C","name":N,"v":V}] / [{"ev":"G","name":N,"v":V}] — counter
      and gauge totals, emitted by {!flush_trace} and {!close_trace}.

    [T] is seconds since the trace was opened; [D] the integer id of the
    recording domain.  Lines are written atomically under a lock, so a
    trace written by a parallel run is still one valid JSON object per
    line, with begin/end events properly nested {e per domain}. *)

val trace_to_file : string -> unit
(** Open (truncate) a JSONL sink.  Replaces any previous sink (the old
    one is flushed and closed).  Does not by itself {!enable} recording.
    An [at_exit] hook flushes counter totals and closes the sink. *)

val set_trace_channel : out_channel option -> unit
(** Lower-level sink control; [None] detaches without closing. *)

val flush_trace : unit -> unit
(** Append current counter/gauge totals as [C]/[G] lines and flush. *)

val close_trace : unit -> unit
(** {!flush_trace}, then close and detach the sink.  No-op without one. *)

(** At library initialization, a non-empty [OBS_TRACE] environment
    variable opens that path as the trace sink and enables recording, so
    any binary linking this library honors [OBS_TRACE] without code. *)
