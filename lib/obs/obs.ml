(* Observability core.  See obs.mli for the contract; the implementation
   notes here are about the disabled-mode cost model and domain safety.

   Disabled mode: [enabled_flag] is a plain bool ref.  Every entry point
   loads it and branches before doing anything else; in particular
   [with_span] tail-calls [f ()] and [add]/[gauge_max] return without a
   single allocation or atomic operation.  The flag is only toggled
   between parallel regions (CLI startup, bench/test setup), so a plain
   ref is race-free in practice and costs one load - an Atomic would put
   a fence in every kernel call for a property we do not need.

   Enabled mode: counters and gauges are int Atomics updated lock-free;
   the registry tables, span aggregates, and the trace channel share one
   mutex.  Span begin/end events from worker domains interleave in the
   trace, but each line is written atomically and tagged with its domain
   id, so per-domain nesting is preserved (test_obs.ml checks balance). *)

type counter = { c_name : string; c_v : int Atomic.t }
type gauge = { g_name : string; g_hw : int Atomic.t }

type span_stats = {
  count : int;
  seconds : float;
  minor_words : float;
  major_words : float;
}

type agg = {
  mutable a_count : int;
  mutable a_seconds : float;
  mutable a_minor : float;
  mutable a_major : float;
}

type span = {
  sp_name : string;
  sp_t0 : float;
  sp_minor0 : float;
  sp_major0 : float;
}

let enabled_flag = ref false
let lock = Mutex.create ()
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 8
let spans_tbl : (string, agg) Hashtbl.t = Hashtbl.create 32
let trace_chan : out_channel option ref = ref None
let trace_epoch = ref 0.0

let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false
let set_enabled b = enabled_flag := b

let now () = Unix.gettimeofday ()
let dom_id () = (Domain.self () :> int)

(* ------------------------------------------------------------------ *)
(* Trace sink                                                          *)
(* ------------------------------------------------------------------ *)

(* Callers hold [lock]. *)
let emit_line_locked line =
  match !trace_chan with
  | None -> ()
  | Some oc ->
      output_string oc line;
      output_char oc '\n'

let emit_line line =
  Mutex.protect lock (fun () -> emit_line_locked line)

(* Span/counter names are ASCII identifiers chosen by this codebase; %S
   escaping coincides with JSON escaping for them. *)
let emit_begin name =
  if !trace_chan != None then
    emit_line
      (Printf.sprintf {|{"ev":"B","name":%S,"dom":%d,"t":%.6f}|} name
         (dom_id ())
         (now () -. !trace_epoch))

let emit_end name dur minor major =
  if !trace_chan != None then
    emit_line
      (Printf.sprintf
         {|{"ev":"E","name":%S,"dom":%d,"t":%.6f,"dur_s":%.6f,"minor_w":%.0f,"major_w":%.0f}|}
         name (dom_id ())
         (now () -. !trace_epoch)
         dur minor major)

let flush_trace () =
  Mutex.protect lock (fun () ->
      match !trace_chan with
      | None -> ()
      | Some oc ->
          let names tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
          List.iter
            (fun n ->
              let c = Hashtbl.find counters_tbl n in
              emit_line_locked
                (Printf.sprintf {|{"ev":"C","name":%S,"v":%d}|} n
                   (Atomic.get c.c_v)))
            (List.sort compare (names counters_tbl));
          List.iter
            (fun n ->
              let g = Hashtbl.find gauges_tbl n in
              emit_line_locked
                (Printf.sprintf {|{"ev":"G","name":%S,"v":%d}|} n
                   (Atomic.get g.g_hw)))
            (List.sort compare (names gauges_tbl));
          flush oc)

let detach_locked close =
  match !trace_chan with
  | None -> ()
  | Some oc ->
      trace_chan := None;
      flush oc;
      if close then close_out_noerr oc

let set_trace_channel ch =
  Mutex.protect lock (fun () ->
      detach_locked false;
      trace_epoch := now ();
      trace_chan := ch)

let close_trace () =
  flush_trace ();
  Mutex.protect lock (fun () -> detach_locked true)

let at_exit_registered = ref false

let trace_to_file path =
  let oc = open_out path in
  Mutex.protect lock (fun () ->
      detach_locked true;
      trace_epoch := now ();
      trace_chan := Some oc;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit close_trace
      end)

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_v = Atomic.make 0 } in
          Hashtbl.add counters_tbl name c;
          c)

let add c n =
  if !enabled_flag && n <> 0 then
    ignore (Atomic.fetch_and_add c.c_v n : int)

let incr c = add c 1
let counter_value c = Atomic.get c.c_v

let gauge name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt gauges_tbl name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_hw = Atomic.make 0 } in
          Hashtbl.add gauges_tbl name g;
          g)

let gauge_max g n =
  if !enabled_flag then begin
    let rec raise_to () =
      let cur = Atomic.get g.g_hw in
      if n > cur && not (Atomic.compare_and_set g.g_hw cur n) then raise_to ()
    in
    raise_to ()
  end

let gauge_value g = Atomic.get g.g_hw

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let no_span = { sp_name = ""; sp_t0 = 0.0; sp_minor0 = 0.0; sp_major0 = 0.0 }

let span_begin name =
  if not !enabled_flag then no_span
  else begin
    emit_begin name;
    let g = Gc.quick_stat () in
    { sp_name = name; sp_t0 = now (); sp_minor0 = g.Gc.minor_words;
      sp_major0 = g.Gc.major_words }
  end

let span_end sp =
  if !enabled_flag && sp != no_span then begin
    let dur = Float.max 0.0 (now () -. sp.sp_t0) in
    let g = Gc.quick_stat () in
    let minor = Float.max 0.0 (g.Gc.minor_words -. sp.sp_minor0) in
    let major = Float.max 0.0 (g.Gc.major_words -. sp.sp_major0) in
    Mutex.protect lock (fun () ->
        let a =
          match Hashtbl.find_opt spans_tbl sp.sp_name with
          | Some a -> a
          | None ->
              let a =
                { a_count = 0; a_seconds = 0.0; a_minor = 0.0; a_major = 0.0 }
              in
              Hashtbl.add spans_tbl sp.sp_name a;
              a
        in
        a.a_count <- a.a_count + 1;
        a.a_seconds <- a.a_seconds +. dur;
        a.a_minor <- a.a_minor +. minor;
        a.a_major <- a.a_major +. major);
    emit_end sp.sp_name dur minor major
  end

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let sp = span_begin name in
    match f () with
    | v ->
        span_end sp;
        v
    | exception e ->
        span_end sp;
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Aggregated views                                                    *)
(* ------------------------------------------------------------------ *)

let sorted_alist tbl value =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () = sorted_alist counters_tbl (fun c -> Atomic.get c.c_v)
let gauges () = sorted_alist gauges_tbl (fun g -> Atomic.get g.g_hw)

let spans () =
  sorted_alist spans_tbl (fun a ->
      { count = a.a_count; seconds = a.a_seconds; minor_words = a.a_minor;
        major_words = a.a_major })

let span_seconds name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt spans_tbl name with
      | Some a -> a.a_seconds
      | None -> 0.0)

let find_counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> Atomic.get c.c_v
      | None -> 0)

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_v 0) counters_tbl;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_hw 0) gauges_tbl;
      Hashtbl.reset spans_tbl)

let pp ppf () =
  let sp = spans () and cs = counters () and gs = gauges () in
  Format.fprintf ppf "@[<v>";
  if sp <> [] then begin
    Format.fprintf ppf "%-32s %6s %10s %12s %12s@," "span" "count" "seconds"
      "minor words" "major words";
    List.iter
      (fun (name, s) ->
        Format.fprintf ppf "%-32s %6d %10.4f %12.0f %12.0f@," name s.count
          s.seconds s.minor_words s.major_words)
      sp
  end;
  let nonzero = List.filter (fun (_, v) -> v <> 0) cs in
  if nonzero <> [] then begin
    Format.fprintf ppf "%-32s %16s@," "counter" "value";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "%-32s %16d@," name v)
      nonzero
  end;
  let gz = List.filter (fun (_, v) -> v <> 0) gs in
  if gz <> [] then begin
    Format.fprintf ppf "%-32s %16s@," "gauge (high water)" "value";
    List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %16d@," name v) gz
  end;
  Format.fprintf ppf "@]"

(* OBS_TRACE: any binary linking this library honors the env var. *)
let () =
  match Sys.getenv_opt "OBS_TRACE" with
  | Some path when String.trim path <> "" ->
      trace_to_file (String.trim path);
      enable ()
  | _ -> ()
