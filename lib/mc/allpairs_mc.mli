(** Monte Carlo statistics of all input-to-output delays of one module -
    the reference the paper validates extracted timing models against
    (Table I's merr/verr columns).

    Each iteration samples the variation model once and runs one
    deterministic longest-path pass per primary input, accumulating
    mean/variance per (input, output) pair with Welford updates. *)

type result = {
  n_inputs : int;
  n_outputs : int;
  iterations : int;
  means : float array array;  (** [i].(j); [nan] if the pair is unconnected *)
  stds : float array array;
  reachable : bool array array;
  wall_seconds : float;
}

val run : ?domains:int -> iterations:int -> seed:int -> Sampler.ctx -> result
(** Iterations are processed in fixed {!Sampler.chunk_iterations}-sized
    chunks (independent RNG substream and Welford accumulators per chunk)
    and the per-chunk statistics are merged in chunk-index order, so means
    and stds are bit-identical for every [domains] count (default
    {!Ssta_par.Par.domains}). *)
