(** Monte Carlo reference for the circuit delay distribution (the paper's
    golden standard: "Monte Carlo simulation with 10,000 iterations using the
    flattened netlist"). *)

type result = {
  delays : float array;  (** one design delay (max over outputs) per sample *)
  wall_seconds : float;
}

val run : ?domains:int -> iterations:int -> seed:int -> Sampler.ctx -> result
(** Sample batches are cut into fixed {!Sampler.chunk_iterations}-sized
    chunks, each drawing from its own {!Ssta_gauss.Rng.stream} substream
    and executed on [domains] workers (default {!Ssta_par.Par.domains});
    the result is bit-identical for every domain count. *)

val arrival_samples :
  ?domains:int ->
  iterations:int ->
  seed:int ->
  Sampler.ctx ->
  vertex:int ->
  float array
(** Per-sample arrival time at a chosen vertex (all-inputs propagation);
    [neg_infinity] never appears for vertices reachable from an input. *)
