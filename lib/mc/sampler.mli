(** Sampling of the variation model for Monte Carlo analysis.

    A sample fixes the global variables (one per parameter) and the
    correlated local fields (one value per tile per parameter, drawn through
    the PCA factor so their covariance matches the model); per-edge private
    random parts are drawn inline during delay evaluation. *)

type sample = {
  globals : float array;  (** per parameter *)
  fields : float array array;  (** per parameter, per tile *)
}

type ctx = {
  graph : Ssta_timing.Tgraph.t;
  sparse : Ssta_timing.Build.sparse_edge array;
  basis : Ssta_variation.Basis.t;
}
(** What the Monte Carlo engines need to know about a circuit (module-level
    characterization contexts and flattened hierarchical designs both
    project onto this). *)

val ctx_of_build : Ssta_timing.Build.t -> ctx

val chunk_iterations : int
(** Fixed iteration-chunk size shared by the parallel MC engines.  The
    chunk layout (and with it every RNG substream) depends only on the
    iteration count, never on the domain count, which is what makes the
    engines bit-deterministic across [PAR_DOMAINS]; runs of at most this
    many iterations occupy a single chunk on substream index 0 and
    therefore reproduce the historical sequential stream exactly. *)

val draw : Ssta_variation.Basis.t -> Ssta_gauss.Rng.t -> sample

val edge_delay :
  ctx -> sample -> Ssta_gauss.Rng.t -> int -> float
(** Delay of one edge under the sample, drawing the edge's private random
    part from the RNG. *)

val fill_weights :
  ctx -> sample -> Ssta_gauss.Rng.t -> float array -> unit
(** Evaluate every edge delay into a caller buffer of length [n_edges]. *)
