module Rng = Ssta_gauss.Rng
module Sta = Ssta_timing.Sta
module Tgraph = Ssta_timing.Tgraph
module Par = Ssta_par.Par
module Obs = Ssta_obs.Obs

type result = { delays : float array; wall_seconds : float }

(* Sample totals are published per chunk (not per iteration), so the counter
   stays out of the sampling loop and the totals are domain-count invariant:
   chunk layout is a pure function of [iterations]. *)
let c_samples = Obs.counter "mc.flat.samples"

(* Chunked deterministic Monte Carlo: iterations are cut into fixed
   [Sampler.chunk_iterations]-sized chunks, chunk [c] draws from the
   reproducible substream [Rng.stream ~seed ~index:c] and writes only its
   own [delays] slice, so the result is bit-identical for every domain
   count (including the never-spawning [domains = 1] sequential path). *)
let run ?domains ~iterations ~seed ctx =
  if iterations <= 0 then invalid_arg "Flat_mc.run: iterations must be > 0";
  let g = ctx.Sampler.graph in
  let n_edges = Tgraph.n_edges g in
  let chunk = Sampler.chunk_iterations in
  let delays = Array.make iterations 0.0 in
  let t0 = Unix.gettimeofday () in
  Obs.with_span "mc.flat" @@ fun () ->
  Par.run_tasks ?domains
    ~n_tasks:(Par.n_chunks ~chunk iterations)
    ~init:(fun () -> Array.make n_edges 0.0)
    ~task:(fun weights c ->
      Obs.with_span "mc.flat.chunk" @@ fun () ->
      let lo, hi = Par.chunk_bounds ~chunk ~n:iterations c in
      let rng = Rng.stream ~seed ~index:c in
      for it = lo to hi - 1 do
        let sample = Sampler.draw ctx.Sampler.basis rng in
        Sampler.fill_weights ctx sample rng weights;
        delays.(it) <- Sta.design_delay g ~weights
      done;
      if Obs.enabled () then Obs.add c_samples (hi - lo))
    ();
  { delays; wall_seconds = Unix.gettimeofday () -. t0 }

let arrival_samples ?domains ~iterations ~seed ctx ~vertex =
  if iterations <= 0 then
    invalid_arg "Flat_mc.arrival_samples: iterations must be > 0";
  let g = ctx.Sampler.graph in
  let n_edges = Tgraph.n_edges g in
  let chunk = Sampler.chunk_iterations in
  let out = Array.make iterations 0.0 in
  Obs.with_span "mc.flat" @@ fun () ->
  Par.run_tasks ?domains
    ~n_tasks:(Par.n_chunks ~chunk iterations)
    ~init:(fun () -> Array.make n_edges 0.0)
    ~task:(fun weights c ->
      Obs.with_span "mc.flat.chunk" @@ fun () ->
      let lo, hi = Par.chunk_bounds ~chunk ~n:iterations c in
      let rng = Rng.stream ~seed ~index:c in
      for it = lo to hi - 1 do
        let sample = Sampler.draw ctx.Sampler.basis rng in
        Sampler.fill_weights ctx sample rng weights;
        let arr = Sta.forward g ~weights in
        out.(it) <- arr.(vertex)
      done;
      if Obs.enabled () then Obs.add c_samples (hi - lo))
    ();
  out
