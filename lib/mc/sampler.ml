module Basis = Ssta_variation.Basis
module Correlation = Ssta_variation.Correlation
module Rng = Ssta_gauss.Rng
module Build = Ssta_timing.Build

type sample = { globals : float array; fields : float array array }

type ctx = {
  graph : Ssta_timing.Tgraph.t;
  sparse : Build.sparse_edge array;
  basis : Ssta_variation.Basis.t;
}

let ctx_of_build (b : Build.t) =
  { graph = b.Build.graph; sparse = b.Build.sparse; basis = b.Build.basis }

(* Iteration chunk for the parallel MC engines.  Fixed - a function of the
   iteration count only, never of the domain count - so the chunk layout,
   and with it every RNG substream, is identical no matter how many domains
   execute it.  256 also keeps any run of <= 256 iterations in a single
   chunk, which runs on Rng.stream index 0 = the historical sequential
   stream: the 250-iteration MC goldens are preserved bit for bit. *)
let chunk_iterations = 256

let draw basis rng =
  {
    globals = Basis.sample_globals basis rng;
    fields = Basis.sample_local_fields basis rng;
  }

let edge_delay ctx sample rng e =
  let s = ctx.sparse.(e) in
  let corr = ctx.basis.Basis.corr in
  let sg = sqrt corr.Correlation.var_global in
  let sl = sqrt corr.Correlation.var_local in
  let acc = ref 0.0 in
  for k = 0 to Array.length s.Build.sens - 1 do
    acc :=
      !acc
      +. s.Build.sens.(k)
         *. ((sg *. sample.globals.(k))
            +. (sl *. sample.fields.(k).(s.Build.tile)))
  done;
  (s.Build.nominal *. (1.0 +. !acc))
  +. (s.Build.random_sigma *. Rng.gaussian rng)

let fill_weights ctx sample rng weights =
  let corr = ctx.basis.Basis.corr in
  let sg = sqrt corr.Correlation.var_global in
  let sl = sqrt corr.Correlation.var_local in
  for e = 0 to Array.length ctx.sparse - 1 do
    let s = ctx.sparse.(e) in
    let acc = ref 0.0 in
    (* Interconnect edges carry no sensitivities; loop over the edge's own
       parameter list. *)
    for k = 0 to Array.length s.Build.sens - 1 do
      acc :=
        !acc
        +. (Array.unsafe_get s.Build.sens k
           *. ((sg *. Array.unsafe_get sample.globals k)
              +. (sl
                 *. Array.unsafe_get
                      (Array.unsafe_get sample.fields k)
                      s.Build.tile)))
    done;
    Array.unsafe_set weights e
      ((s.Build.nominal *. (1.0 +. !acc))
      +. (s.Build.random_sigma *. Rng.gaussian rng))
  done
