module Rng = Ssta_gauss.Rng
module Sta = Ssta_timing.Sta
module Tgraph = Ssta_timing.Tgraph
module Par = Ssta_par.Par
module Obs = Ssta_obs.Obs

(* Published once per chunk; totals are domain-count invariant because the
   chunk layout depends only on [iterations]. *)
let c_samples = Obs.counter "mc.allpairs.samples"

type result = {
  n_inputs : int;
  n_outputs : int;
  iterations : int;
  means : float array array;
  stds : float array array;
  reachable : bool array array;
  wall_seconds : float;
}

(* Per-chunk running statistics: Welford accumulators over the chunk's own
   iterations, plus the per-pair sample count (reachability is structural,
   so a reachable pair contributes on every iteration of the chunk). *)
type chunk_stats = {
  count : int;
  mean : float array array;
  m2 : float array array;
  reach : bool array array;
}

(* Chan's pairwise merge, applied strictly in chunk-index order: with a
   single chunk it degenerates to the chunk's own accumulators, which keeps
   single-chunk runs (<= Sampler.chunk_iterations iterations) bit-identical
   to the historical sequential engine. *)
let merge ~ni ~no a b =
  let count = a.count + b.count in
  let mean = Array.make_matrix ni no 0.0 in
  let m2 = Array.make_matrix ni no 0.0 in
  let reach = Array.make_matrix ni no false in
  for i = 0 to ni - 1 do
    for j = 0 to no - 1 do
      match (a.reach.(i).(j), b.reach.(i).(j)) with
      | false, false -> ()
      | true, false ->
          reach.(i).(j) <- true;
          mean.(i).(j) <- a.mean.(i).(j);
          m2.(i).(j) <- a.m2.(i).(j)
      | false, true ->
          reach.(i).(j) <- true;
          mean.(i).(j) <- b.mean.(i).(j);
          m2.(i).(j) <- b.m2.(i).(j)
      | true, true ->
          let na = float_of_int a.count and nb = float_of_int b.count in
          let n = na +. nb in
          let delta = b.mean.(i).(j) -. a.mean.(i).(j) in
          reach.(i).(j) <- true;
          mean.(i).(j) <- a.mean.(i).(j) +. (delta *. nb /. n);
          m2.(i).(j) <-
            a.m2.(i).(j) +. b.m2.(i).(j) +. (delta *. delta *. na *. nb /. n)
    done
  done;
  { count; mean; m2; reach }

let run ?domains ~iterations ~seed ctx =
  if iterations <= 0 then invalid_arg "Allpairs_mc.run: iterations must be > 0";
  let g = ctx.Sampler.graph in
  let inputs = g.Tgraph.inputs and outputs = g.Tgraph.outputs in
  let ni = Array.length inputs and no = Array.length outputs in
  let chunk = Sampler.chunk_iterations in
  let t0 = Unix.gettimeofday () in
  Obs.with_span "mc.allpairs" @@ fun () ->
  let chunks =
    Par.map_chunks ?domains ~chunk ~n:iterations (fun ~chunk:c ~lo ~hi ->
        Obs.with_span "mc.allpairs.chunk" @@ fun () ->
        let rng = Rng.stream ~seed ~index:c in
        let weights = Array.make (Tgraph.n_edges g) 0.0 in
        let arr = Array.make (Tgraph.n_vertices g) neg_infinity in
        let mean = Array.make_matrix ni no 0.0 in
        let m2 = Array.make_matrix ni no 0.0 in
        let reach = Array.make_matrix ni no false in
        for it = lo to hi - 1 do
          let sample = Sampler.draw ctx.Sampler.basis rng in
          Sampler.fill_weights ctx sample rng weights;
          let n = float_of_int (it - lo + 1) in
          for i = 0 to ni - 1 do
            Sta.forward_from_into g ~weights inputs.(i) arr;
            let mrow = mean.(i) and m2row = m2.(i) and rrow = reach.(i) in
            for j = 0 to no - 1 do
              let a = arr.(outputs.(j)) in
              if a > neg_infinity then begin
                rrow.(j) <- true;
                let delta = a -. mrow.(j) in
                mrow.(j) <- mrow.(j) +. (delta /. n);
                m2row.(j) <- m2row.(j) +. (delta *. (a -. mrow.(j)))
              end
            done
          done
        done;
        if Obs.enabled () then Obs.add c_samples (hi - lo);
        { count = hi - lo; mean; m2; reach })
  in
  let acc =
    match Array.length chunks with
    | 0 -> assert false (* iterations > 0 implies at least one chunk *)
    | _ ->
        let acc = ref chunks.(0) in
        for c = 1 to Array.length chunks - 1 do
          acc := merge ~ni ~no !acc chunks.(c)
        done;
        !acc
  in
  let stds =
    Array.mapi
      (fun i m2row ->
        Array.mapi
          (fun j v ->
            if acc.reach.(i).(j) && iterations > 1 then
              sqrt (v /. float_of_int (iterations - 1))
            else nan)
          m2row)
      acc.m2
  in
  let means =
    Array.mapi
      (fun i mrow ->
        Array.mapi (fun j v -> if acc.reach.(i).(j) then v else nan) mrow)
      acc.mean
  in
  {
    n_inputs = ni;
    n_outputs = no;
    iterations;
    means;
    stds;
    reachable = acc.reach;
    wall_seconds = Unix.gettimeofday () -. t0;
  }
