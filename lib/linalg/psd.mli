(** Nearest-PSD repair for covariance matrices.

    Grid covariances reach [Cholesky.factor] and {!Pca.of_covariance}
    through the truncated correlation model, which can leave them
    slightly — or, on degenerate floorplans, badly — indefinite.  The
    classical Frobenius-nearest PSD matrix keeps the eigenvectors and
    clips negative eigenvalues to zero (Higham 1988); this module exposes
    that repair and a Cholesky entry point that applies it under the
    [Repair]/[Warn] robust policies before falling back to the jitter
    ladder. *)

val nearest : ?tol:float -> Mat.t -> Mat.t * int
(** [nearest c] returns the Frobenius-nearest positive-semidefinite matrix
    to [c] (eigenvalues below [tol], default [0.0], clipped to zero) and
    the number of clipped eigenvalues.  When nothing clips, the
    reconstruction is skipped and [c] itself is returned (count [0]), so
    clean inputs are untouched bit-for-bit. *)

val robust_factor : ?jitter:float -> Mat.t -> Mat.t
(** Cholesky factorization of a covariance matrix behind the robust
    policy.  [Strict]: exactly {!Cholesky.factor} (first bad pivot raises
    a structured error).  [Repair]/[Warn]: if the direct factorization
    fails, the matrix is clipped to its nearest PSD spectrum (counted in
    [robust.psd_clips]) and re-factored with the jitter ladder. *)
