module Robust = Ssta_robust.Robust

type decomposition = { values : float array; vectors : Mat.t }

let jacobi_residual = Robust.counter "robust.jacobi_residual"

(* Cyclic Jacobi: repeatedly zero the largest off-diagonal entries with Givens
   rotations until the off-diagonal Frobenius mass is negligible. *)
let decompose ?(max_sweeps = 64) c =
  let n, m = Mat.dims c in
  if n <> m then invalid_arg "Sym_eig.decompose: matrix not square";
  let scale =
    let s = ref 1e-300 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let x = Mat.get c i j in
        if not (Robust.is_finite x) then
          Robust.fail ~subsystem:"linalg.sym_eig" ~operation:"decompose"
            ~indices:[ i; j ] ~values:[ x ] "non-finite matrix entry";
        s := Float.max !s (abs_float x)
      done
    done;
    !s
  in
  if not (Mat.is_symmetric ~tol:(1e-8 *. scale) c) then begin
    (* Name the worst-offending entry pair in the error. *)
    let bi = ref 0 and bj = ref 0 and bd = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let d = abs_float (Mat.get c i j -. Mat.get c j i) in
        if d > !bd then begin
          bd := d;
          bi := i;
          bj := j
        end
      done
    done;
    Robust.fail ~subsystem:"linalg.sym_eig" ~operation:"decompose"
      ~indices:[ !bi; !bj ]
      ~values:[ Mat.get c !bi !bj; Mat.get c !bj !bi ]
      "matrix not symmetric"
  end;
  let a = Mat.to_arrays c in
  let v = Mat.to_arrays (Mat.identity n) in
  let off_norm () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (a.(i).(j) *. a.(i).(j))
      done
    done;
    sqrt (2.0 *. !s)
  in
  let eps = 1e-13 *. float_of_int n *. scale in
  let sweep = ref 0 in
  while off_norm () > eps && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = a.(p).(q) in
        if abs_float apq > 1e-300 then begin
          let app = a.(p).(p) and aqq = a.(q).(q) in
          let tau = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if tau >= 0.0 then 1.0 else -1.0 in
            sign /. (abs_float tau +. sqrt (1.0 +. (tau *. tau)))
          in
          let cth = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let sth = t *. cth in
          (* Update rows/cols p and q of [a]. *)
          for k = 0 to n - 1 do
            let akp = a.(k).(p) and akq = a.(k).(q) in
            a.(k).(p) <- (cth *. akp) -. (sth *. akq);
            a.(k).(q) <- (sth *. akp) +. (cth *. akq)
          done;
          for k = 0 to n - 1 do
            let apk = a.(p).(k) and aqk = a.(q).(k) in
            a.(p).(k) <- (cth *. apk) -. (sth *. aqk);
            a.(q).(k) <- (sth *. apk) +. (cth *. aqk)
          done;
          for k = 0 to n - 1 do
            let vkp = v.(k).(p) and vkq = v.(k).(q) in
            v.(k).(p) <- (cth *. vkp) -. (sth *. vkq);
            v.(k).(q) <- (sth *. vkp) +. (cth *. vkq)
          done
        end
      done
    done
  done;
  (* The sweep cap is a hard iteration bound; verify the residual actually
     converged.  For finite symmetric input cyclic Jacobi converges well
     inside 64 sweeps, so this fires only on pathological inputs: Strict
     raises, Repair/Warn accept the partial diagonalisation and count it. *)
  let residual = off_norm () in
  if residual > eps then
    Robust.repair jacobi_residual
      (Robust.context ~subsystem:"linalg.sym_eig" ~operation:"decompose"
         ~indices:[ !sweep; max_sweeps ]
         ~values:[ residual; eps ]
         "sweep cap reached with off-diagonal residual above tolerance");
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare a.(j).(j) a.(i).(i)) order;
  let values = Array.map (fun i -> a.(i).(i)) order in
  let vectors = Mat.init n n (fun r c_ -> v.(r).(order.(c_))) in
  { values; vectors }

let reconstruct { values; vectors } =
  let n = Array.length values in
  let scaled =
    Mat.init n n (fun i j -> Mat.get vectors i j *. values.(j))
  in
  Mat.mul scaled (Mat.transpose vectors)
