module Robust = Ssta_robust.Robust

let psd_clips = Robust.counter "robust.psd_clips"

let nearest ?(tol = 0.0) c =
  let { Sym_eig.values; vectors } = Sym_eig.decompose c in
  let clipped =
    Array.fold_left (fun k v -> if v < tol then k + 1 else k) 0 values
  in
  if clipped = 0 then (c, 0)
  else begin
    let values = Array.map (fun v -> if v < tol then 0.0 else v) values in
    (Sym_eig.reconstruct { Sym_eig.values; vectors }, clipped)
  end

let robust_factor ?jitter c =
  match Robust.policy () with
  | Robust.Strict -> Cholesky.factor ?jitter c
  | Robust.Repair | Robust.Warn -> (
      try Cholesky.factor ?jitter c
      with Robust.Error _ ->
        let repaired, clipped = nearest c in
        for _ = 1 to clipped do
          Robust.count psd_clips
            (Robust.context ~subsystem:"linalg.psd" ~operation:"robust_factor"
               ~indices:[ clipped ]
               "clipped negative eigenvalue for Cholesky repair")
        done;
        Cholesky.factor ?jitter repaired)
