(** Principal component analysis of a covariance matrix, in the {e normalized}
    convention used throughout this repository (see DESIGN.md):

    the correlated vector [p] with covariance [c] is written [p = f * x] where
    [x] is standard normal and [f = u * sqrt(lambda)] column-scales the
    orthonormal eigenvector matrix [u].  The paper's orthogonal convention
    (PCs with eigenvalue variances) is equivalent; the normalized one makes
    Var(a . x) = |a|^2 and simplifies both sampling and the variable
    replacement of paper eq. (19). *)

type t = private {
  dim : int;
  values : float array;  (** eigenvalues, decreasing, floored at [min_eig] *)
  vectors : Mat.t;  (** orthonormal eigenvectors (columns) *)
  factor : Mat.t;  (** [u * sqrt(lambda)]: maps standard-normal PCs to p *)
  pinv_factor : Mat.t;
      (** [sqrt(lambda)^-1 * u^T] restricted to retained components: maps p
          back to standard-normal PCs *)
  retained : int;  (** number of eigenvalues kept (above the floor) *)
}

val of_covariance : ?min_eig:float -> Mat.t -> t
(** Eigenvalues below [min_eig] (default [1e-9] times the largest eigenvalue)
    are clamped to zero and excluded from [pinv_factor]; the truncated
    correlation model of the paper can make covariance matrices slightly
    indefinite, and clamping is the documented repair.

    Validated boundary of the robust layer: a non-finite covariance entry
    raises [Ssta_robust.Robust.Error] under the [Strict] policy and is
    zeroed (symmetrically) and counted in [robust.nan_sanitized] under
    [Repair]/[Warn]; an eigenvalue negative beyond numerical noise
    (below [-2%] of the largest - the measured clean-circuit envelope of the truncated correlation model is [-0.64%]) likewise raises under [Strict] and
    is clipped to the nearest PSD spectrum and counted in
    [robust.psd_clips] under [Repair]/[Warn].  Clean inputs take the
    historical path bit-for-bit. *)

val of_parts : values:float array -> vectors:Mat.t -> t
(** Rebuild a decomposition from serialized eigenvalues and eigenvectors
    (e.g. when loading a timing model from disk): recomputes [factor] and
    [pinv_factor] deterministically.  Eigenvector sign conventions are
    whatever the serialized matrix carries, so coefficient vectors written
    against it stay consistent.  Raises [Invalid_argument] on dimension
    mismatch or increasing order; a negative serialized eigenvalue raises
    [Ssta_robust.Robust.Error] under [Strict] and is clamped to zero
    (counted in [robust.psd_clips]) under [Repair]/[Warn]. *)

val coeff_row : t -> int -> float array
(** [coeff_row t i] is row [i] of [factor]: the PC coefficients expressing
    correlated variable [i] (paper eq. (2), row of [A]). *)

val sample : t -> Ssta_gauss.Rng.t -> float array
(** Draw one realization of the correlated vector [p = factor * z]. *)

val covariance : t -> Mat.t
(** Reconstructed covariance [factor * factor^T] (equals the input up to the
    eigenvalue floor). *)
