(** Eigendecomposition of real symmetric matrices by the cyclic Jacobi
    method.  Robust and accurate for the moderate dimensions (tens to a few
    hundred grid variables) that SSTA covariance matrices have. *)

type decomposition = {
  values : float array;  (** eigenvalues, sorted in decreasing order *)
  vectors : Mat.t;  (** orthonormal eigenvectors as {e columns}, same order *)
}

val decompose : ?max_sweeps:int -> Mat.t -> decomposition
(** Raises [Invalid_argument] if the matrix is not square, and
    [Ssta_robust.Robust.Error] if an entry is non-finite or the matrix is
    not symmetric (tolerance 1e-8 relative to the largest entry; the error
    names the worst-offending entry pair).  The sweep cap is verified: an
    off-diagonal residual above tolerance at the cap raises under the
    [Strict] policy and is counted in [robust.jacobi_residual] under
    [Repair]/[Warn]. *)

val reconstruct : decomposition -> Mat.t
(** [v * diag(values) * v^T]; useful for testing. *)
