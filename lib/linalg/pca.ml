module Robust = Ssta_robust.Robust

type t = {
  dim : int;
  values : float array;
  vectors : Mat.t;
  factor : Mat.t;
  pinv_factor : Mat.t;
  retained : int;
}

let psd_clips = Robust.counter "robust.psd_clips"
let nan_sanitized = Robust.counter "robust.nan_sanitized"

(* Validated boundary: covariance entries must be finite.  Under Strict a
   non-finite entry raises, naming its position; under Repair/Warn the
   offending entry pair is zeroed (both (i,j) and (j,i), preserving
   symmetry) and counted.  Clean matrices are returned physically
   unchanged, so the clean path stays bit-identical. *)
let sanitize_covariance c =
  let n, m = Mat.dims c in
  let bad = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      let x = Mat.get c i j in
      if not (Robust.is_finite x) then begin
        Robust.repair nan_sanitized
          (Robust.context ~subsystem:"linalg.pca" ~operation:"of_covariance"
             ~indices:[ i; j ] ~values:[ x ]
             "non-finite covariance entry");
        incr bad
      end
    done
  done;
  if !bad = 0 then c
  else
    Mat.init n m (fun i j ->
        let x = Mat.get c i j and y = Mat.get c j i in
        if Robust.is_finite x && Robust.is_finite y then x else 0.0)

let of_covariance ?min_eig c =
  let c = sanitize_covariance c in
  let { Sym_eig.values; vectors } = Sym_eig.decompose c in
  let n = Array.length values in
  let largest = if n = 0 then 0.0 else Float.max values.(0) 0.0 in
  let floor_v =
    match min_eig with Some v -> v | None -> 1e-9 *. largest
  in
  (* Nearest-PSD repair by eigenvalue clipping.  The truncated correlation
     model legitimately yields slightly indefinite matrices - measured on
     the ISCAS85 grids the most negative clean eigenvalue is -0.64% of the
     largest - and those clip silently as they always have.  An eigenvalue
     below -2% of the largest is far outside that envelope and means the
     input was not a covariance matrix at all: Strict raises naming the
     eigenvalue index, Repair/Warn clip to the nearest PSD spectrum and
     count the event. *)
  let psd_tol = 2e-2 *. largest in
  Array.iteri
    (fun i v ->
      if v < -.psd_tol then
        Robust.repair psd_clips
          (Robust.context ~subsystem:"linalg.pca" ~operation:"of_covariance"
             ~indices:[ i ] ~values:[ v; largest ]
             "covariance eigenvalue negative beyond numerical noise; \
              clipping to nearest PSD"))
    values;
  let values = Array.map (fun v -> if v < floor_v then 0.0 else v) values in
  let retained = Array.fold_left (fun k v -> if v > 0.0 then k + 1 else k) 0 values in
  let factor =
    Mat.init n n (fun i j -> Mat.get vectors i j *. sqrt values.(j))
  in
  let pinv_factor =
    Mat.init retained n (fun i j -> Mat.get vectors j i /. sqrt values.(i))
  in
  { dim = n; values; vectors; factor; pinv_factor; retained }

let of_parts ~values ~vectors =
  let n = Array.length values in
  let r, c = Mat.dims vectors in
  if r <> n || c <> n then invalid_arg "Pca.of_parts: dimension mismatch";
  (* A serialized spectrum must be PSD: a negative eigenvalue in a stored
     model is corruption (the writer only emits clipped spectra).  Strict
     raises naming the component; Repair/Warn clamp it to zero and count
     the clip.  The decreasing-order invariant stays a hard error - no
     sensible repair exists for a shuffled spectrum. *)
  let values =
    if Array.for_all (fun v -> v >= 0.0) values then values
    else begin
      Array.iteri
        (fun i v ->
          if v < 0.0 then
            Robust.repair psd_clips
              (Robust.context ~subsystem:"linalg.pca" ~operation:"of_parts"
                 ~indices:[ i ] ~values:[ v ]
                 "negative serialized eigenvalue; clamping to zero"))
        values;
      Array.map (fun v -> Float.max 0.0 v) values
    end
  in
  Array.iteri
    (fun i v ->
      if i > 0 && v > values.(i - 1) +. 1e-12 then
        invalid_arg "Pca.of_parts: eigenvalues not decreasing")
    values;
  let retained =
    Array.fold_left (fun k v -> if v > 0.0 then k + 1 else k) 0 values
  in
  let factor = Mat.init n n (fun i j -> Mat.get vectors i j *. sqrt values.(j)) in
  let pinv_factor =
    Mat.init retained n (fun i j -> Mat.get vectors j i /. sqrt values.(i))
  in
  { dim = n; values; vectors; factor; pinv_factor; retained }

let coeff_row t i = Mat.row t.factor i

let sample t rng =
  let z = Array.make t.dim 0.0 in
  Ssta_gauss.Rng.gaussian_fill rng z;
  Mat.mul_vec t.factor z

let covariance t = Mat.mul t.factor (Mat.transpose t.factor)
