module Robust = Ssta_robust.Robust

let jitter_retries = Robust.counter "robust.chol_jitter_retries"

(* One factorization attempt with [boost] added to the diagonal.  Returns
   the failing pivot index and its (non-positive) value on failure so the
   caller can report a structured error naming the exact site. *)
let attempt c boost =
  let n, m = Mat.dims c in
  if n <> m then invalid_arg "Cholesky.factor: matrix not square";
  let l = Mat.make n n in
  let bad_pivot = ref (-1) in
  let bad_value = ref 0.0 in
  (try
     for j = 0 to n - 1 do
       let sum = ref (Mat.get c j j +. boost) in
       for k = 0 to j - 1 do
         let v = Mat.get l j k in
         sum := !sum -. (v *. v)
       done;
       if !sum <= 0.0 then begin
         bad_pivot := j;
         bad_value := !sum;
         raise Exit
       end;
       let diag = sqrt !sum in
       Mat.set l j j diag;
       for i = j + 1 to n - 1 do
         let s = ref (Mat.get c i j) in
         for k = 0 to j - 1 do
           s := !s -. (Mat.get l i k *. Mat.get l j k)
         done;
         Mat.set l i j (!s /. diag)
       done
     done
   with Exit -> ());
  if !bad_pivot < 0 then Ok l else Error (!bad_pivot, !bad_value)

let factor ?jitter c =
  let n, _ = Mat.dims c in
  let max_diag = ref 1e-300 in
  for i = 0 to n - 1 do
    max_diag := Float.max !max_diag (abs_float (Mat.get c i i))
  done;
  let base_jitter =
    match jitter with Some j -> j | None -> 1e-10 *. !max_diag
  in
  let rec go boost tries =
    match attempt c boost with
    | Ok l -> l
    | Error (j, v) when tries > 0 ->
        Robust.repair jitter_retries
          (Robust.context ~subsystem:"linalg.cholesky" ~operation:"factor"
             ~indices:[ j ] ~values:[ v; boost ]
             "non-positive pivot; retrying with scaled diagonal jitter");
        go (Float.max base_jitter (boost *. 100.0)) (tries - 1)
    | Error (j, v) ->
        Robust.fail ~subsystem:"linalg.cholesky" ~operation:"factor"
          ~indices:[ j ] ~values:[ v; boost ]
          "matrix is not positive definite (pivot non-positive after jitter \
           escalation)"
  in
  go 0.0 6

let solve_lower l b =
  let n, m = Mat.dims l in
  if n <> m || Array.length b <> n then
    invalid_arg "Cholesky.solve_lower: dimension mismatch";
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Mat.get l i k *. x.(k))
    done;
    x.(i) <- !s /. Mat.get l i i
  done;
  x
