(** Cholesky factorization of symmetric positive-(semi)definite matrices,
    used for correlated Monte Carlo sampling. *)

val factor : ?jitter:float -> Mat.t -> Mat.t
(** [factor c] returns the lower-triangular [l] with [l * l^T = c].
    If a pivot is non-positive, [jitter] (default [1e-10] times the largest
    diagonal entry) is added to the diagonal and the factorization restarts.
    Each restart is a repair: under the [Strict] robust policy the first
    non-positive pivot raises [Ssta_robust.Robust.Error] naming the pivot
    index and its value instead of retrying; under [Repair]/[Warn] the
    historical jitter-escalation ladder runs, counted in
    [robust.chol_jitter_retries].  A matrix still indefinite after the
    ladder raises [Ssta_robust.Robust.Error] under every policy. *)

val solve_lower : Mat.t -> float array -> float array
(** [solve_lower l b] solves [l x = b] by forward substitution. *)
