(** Shared lexing cursor of the external-design frontend.

    All three hand-rolled parsers (structural Verilog, Liberty-like [.lib],
    SDC) tokenize through this module so that source positions
    ({!Ssta_robust.Robust.pos}), comment handling and failure reporting are
    uniform.  The cursor is configured per format: which line-comment
    leader applies, whether C-style block comments are recognized, and
    whether newlines are significant (SDC is a line-oriented command
    language; Verilog and Liberty are free-form).

    Every failure goes through {!fail}/{!fail_at}, which raise
    {!Ssta_robust.Robust.Error} with the format's subsystem, the
    ["parse"] operation and the offending line/column — no raw exception
    ever escapes a frontend parser (the fuzz corpus pins this). *)

module Robust = Ssta_robust.Robust

type token =
  | Ident of string
      (** Identifier-like lexeme; SDC flags lex as idents with their
          leading dash (["-period"]). *)
  | Num of float * string  (** numeric literal: value and raw lexeme *)
  | Quoted of string  (** double-quoted string, quotes stripped *)
  | Sym of char  (** any other printable punctuation *)
  | Newline  (** only when [newline_tokens] is set *)
  | Eof

type spanned = { tok : token; tpos : Robust.pos }

type t

val make :
  subsystem:string ->
  ?line_comment:string ->
  ?block_comments:bool ->
  ?newline_tokens:bool ->
  string ->
  t
(** [line_comment] is the leader (e.g. ["//"] or ["#"]); [block_comments]
    enables [/* ... */]; [newline_tokens] makes end-of-line a token
    (backslash-newline continuations are swallowed). *)

val pos : t -> Robust.pos
(** Position of the next unconsumed character. *)

val fail : t -> string -> 'a
val fail_at : t -> pos:Robust.pos -> string -> 'a

val peek : t -> spanned
(** Next token without consuming it. *)

val next : t -> spanned

val describe : token -> string
(** Human-readable token description for error messages. *)
