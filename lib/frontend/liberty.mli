(** Liberty-like [.lib] cell-library reader/writer.

    The grammar is the Liberty lexical skeleton — nested
    [group (args) { attr : value; ... }] — restricted to the statistical
    delay model of {!Ssta_cell.Cell}: per-cell input/output pins, and one
    [timing () { }] group on the output pin carrying the nominal
    pin-to-output delay, the per-process-parameter relative sensitivities
    and the load sensitivity.  Unknown groups and attributes are skipped
    (real libraries carry hundreds), so the subset reads like a projection
    of a production library.

    Repairable defects (policy-gated through {!Ssta_robust.Robust},
    counter [robust.frontend_repairs]): non-finite numbers (to 0),
    sensitivity arity mismatches (pad/truncate), negative sensitivities
    (clamp to 0), and a missing [load_sensitivity] (to 0).  Structural
    defects — syntax errors, a cell without pins or timing, a non-positive
    nominal delay — are hard errors with line/column position. *)

module Robust = Ssta_robust.Robust

type lcell = {
  cname : string;
  pins : string array;  (** input pin names, declaration order *)
  out_pin : string;
  cell : Ssta_cell.Cell.t;
}

type t = {
  lname : string;
  params : string array;  (** sensitivity parameter names, in order *)
  cells : lcell list;
}

val parse : string -> t
(** Raises {!Ssta_robust.Robust.Error} (subsystem ["frontend.liberty"]). *)

val to_string : t -> string
(** Canonical form; floats print with round-trip precision, so
    write/read round-trips are exact. *)

val equal : t -> t -> bool

val find : t -> string -> lcell option

val of_cells :
  name:string -> params:string array -> Ssta_cell.Cell.t array -> t
(** Pin names [a..] / [y], one timing arc group per cell — the exporter
    used for the committed example libraries (default
    {!Ssta_cell.Library.default} cells round-trip bit-identically). *)
