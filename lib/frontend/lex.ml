module Robust = Ssta_robust.Robust

type token =
  | Ident of string
  | Num of float * string
  | Quoted of string
  | Sym of char
  | Newline
  | Eof

type spanned = { tok : token; tpos : Robust.pos }

type t = {
  src : string;
  subsystem : string;
  line_comment : string option;
  block_comments : bool;
  newline_tokens : bool;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (* offset of the first character of [line] *)
  mutable ahead : spanned option;
}

let make ~subsystem ?line_comment ?(block_comments = false)
    ?(newline_tokens = false) src =
  {
    src;
    subsystem;
    line_comment;
    block_comments;
    newline_tokens;
    off = 0;
    line = 1;
    bol = 0;
    ahead = None;
  }

let pos lx = { Robust.line = lx.line; col = lx.off - lx.bol + 1 }

let fail_at lx ~pos msg =
  Robust.fail ~subsystem:lx.subsystem ~operation:"parse"
    ~indices:[ pos.Robust.line ] ~pos msg

let fail lx msg = fail_at lx ~pos:(pos lx) msg

let len lx = String.length lx.src
let at_eof lx = lx.off >= len lx
let cur lx = lx.src.[lx.off]

let advance lx =
  (if cur lx = '\n' then begin
     lx.line <- lx.line + 1;
     lx.bol <- lx.off + 1
   end);
  lx.off <- lx.off + 1

let starts_with lx s =
  let n = String.length s in
  lx.off + n <= len lx && String.sub lx.src lx.off n = s

(* Whitespace, comments and (when newlines are not tokens) line breaks.
   Backslash-newline is always a continuation. *)
let rec skip_blanks lx =
  if at_eof lx then ()
  else
    let c = cur lx in
    if c = '\n' then
      if lx.newline_tokens then ()
      else begin
        advance lx;
        skip_blanks lx
      end
    else if c = ' ' || c = '\t' || c = '\r' then begin
      advance lx;
      skip_blanks lx
    end
    else if
      c = '\\'
      && lx.off + 1 < len lx
      && (lx.src.[lx.off + 1] = '\n'
         || (lx.src.[lx.off + 1] = '\r'
            && lx.off + 2 < len lx
            && lx.src.[lx.off + 2] = '\n'))
    then begin
      advance lx;
      (* backslash *)
      if cur lx = '\r' then advance lx;
      advance lx;
      (* newline: continuation, never a Newline token *)
      skip_blanks lx
    end
    else
      match lx.line_comment with
      | Some lead when starts_with lx lead ->
          while (not (at_eof lx)) && cur lx <> '\n' do
            advance lx
          done;
          skip_blanks lx
      | _ ->
          if lx.block_comments && starts_with lx "/*" then begin
            let open_pos = pos lx in
            advance lx;
            advance lx;
            let rec close () =
              if at_eof lx then
                fail_at lx ~pos:open_pos "unterminated block comment"
              else if starts_with lx "*/" then begin
                advance lx;
                advance lx
              end
              else begin
                advance lx;
                close ()
              end
            in
            close ();
            skip_blanks lx
          end

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '$' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let scan_while lx pred =
  let start = lx.off in
  while (not (at_eof lx)) && pred (cur lx) do
    advance lx
  done;
  String.sub lx.src start (lx.off - start)

let scan_number lx ~neg tpos =
  let intpart = scan_while lx is_digit in
  let frac =
    if (not (at_eof lx)) && cur lx = '.' then begin
      advance lx;
      "." ^ scan_while lx is_digit
    end
    else ""
  in
  let expo =
    if (not (at_eof lx)) && (cur lx = 'e' || cur lx = 'E') then begin
      advance lx;
      let sign =
        if (not (at_eof lx)) && (cur lx = '+' || cur lx = '-') then begin
          let s = String.make 1 (cur lx) in
          advance lx;
          s
        end
        else ""
      in
      "e" ^ sign ^ scan_while lx is_digit
    end
    else ""
  in
  let raw = (if neg then "-" else "") ^ intpart ^ frac ^ expo in
  match float_of_string_opt raw with
  | Some v -> { tok = Num (v, raw); tpos }
  | None -> fail_at lx ~pos:tpos ("malformed number: " ^ raw)

let scan_token lx =
  skip_blanks lx;
  let tpos = pos lx in
  if at_eof lx then { tok = Eof; tpos }
  else
    let c = cur lx in
    if c = '\n' then begin
      advance lx;
      { tok = Newline; tpos }
    end
    else if is_ident_start c then
      { tok = Ident (scan_while lx is_ident_char); tpos }
    else if is_digit c then scan_number lx ~neg:false tpos
    else if c = '.' && lx.off + 1 < len lx && is_digit lx.src.[lx.off + 1]
    then scan_number lx ~neg:false tpos
    else if
      c = '-'
      && lx.off + 1 < len lx
      && (is_digit lx.src.[lx.off + 1] || lx.src.[lx.off + 1] = '.')
    then begin
      advance lx;
      scan_number lx ~neg:true tpos
    end
    else if c = '-' && lx.off + 1 < len lx && is_ident_start lx.src.[lx.off + 1]
    then begin
      (* SDC-style flag: "-period" is one identifier-like token. *)
      advance lx;
      { tok = Ident ("-" ^ scan_while lx is_ident_char); tpos }
    end
    else if c = '"' then begin
      advance lx;
      let start = lx.off in
      while (not (at_eof lx)) && cur lx <> '"' && cur lx <> '\n' do
        advance lx
      done;
      if at_eof lx || cur lx = '\n' then
        fail_at lx ~pos:tpos "unterminated string literal";
      let s = String.sub lx.src start (lx.off - start) in
      advance lx;
      { tok = Quoted s; tpos }
    end
    else begin
      advance lx;
      { tok = Sym c; tpos }
    end

let peek lx =
  match lx.ahead with
  | Some s -> s
  | None ->
      let s = scan_token lx in
      lx.ahead <- Some s;
      s

let next lx =
  match lx.ahead with
  | Some s ->
      lx.ahead <- None;
      s
  | None -> scan_token lx

let describe = function
  | Ident s -> Printf.sprintf "identifier '%s'" s
  | Num (_, raw) -> Printf.sprintf "number '%s'" raw
  | Quoted s -> Printf.sprintf "string %S" s
  | Sym c -> Printf.sprintf "'%c'" c
  | Newline -> "end of line"
  | Eof -> "end of file"
