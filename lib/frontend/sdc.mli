(** SDC (Synopsys Design Constraints) subset.

    Line-oriented Tcl-flavored commands; supported: [create_clock]
    ([-period], [-name]), [set_input_delay] / [set_output_delay]
    ([[-clock id]] [delay] [ports]), [set_false_path] ([-from] / [-to]
    port specs).  Port specs accept [\[get_ports {a b}\]],
    [\[get_ports a\]] or a bare name.  [#] comments, backslash-newline
    continuations.

    Unknown commands are policy-gated (skipped and counted under Repair /
    Warn, structured error under Strict); malformed arguments of a known
    command are always hard errors with position.  The printer emits one
    canonical command per line, which reparses to an equal value (the
    parse/print/parse fixpoint property). *)

module Robust = Ssta_robust.Robust

type clock = { clk_name : string; period : float }

type io_delay = { ports : string list; delay : float; dclock : string option }

type false_path = { from_ports : string list; to_ports : string list }

type t = {
  clocks : clock list;
  input_delays : io_delay list;
  output_delays : io_delay list;
  false_paths : false_path list;
}

val empty : t

val parse : string -> t
(** Raises {!Ssta_robust.Robust.Error} (subsystem ["frontend.sdc"]). *)

val to_string : t -> string
val equal : t -> t -> bool

val clock_period : t -> float option
(** Period of the first clock, if any. *)
