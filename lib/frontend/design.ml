module Robust = Ssta_robust.Robust
module Form = Ssta_canonical.Form
module N = Ssta_circuit.Netlist
module Cell = Ssta_cell.Cell
module Tgraph = Ssta_timing.Tgraph
module Build = Ssta_timing.Build
module Sta = Ssta_timing.Sta
module Propagate = Hier_ssta.Propagate
module Path_report = Hier_ssta.Path_report

type t = { modul : Verilog.t; lib : Liberty.t; sdc : Sdc.t }

type lowered = {
  design : t;
  netlist : N.t;
  net_names : string array;
}

let subsystem = "frontend.design"
let repairs = Robust.counter "robust.frontend_repairs"

let parse ~verilog ~liberty ?sdc () =
  {
    modul = Verilog.parse verilog;
    lib = Liberty.parse liberty;
    sdc = (match sdc with Some s -> Sdc.parse s | None -> Sdc.empty);
  }

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg ->
    Robust.fail ~subsystem ~operation:"load" ("cannot read file: " ^ msg)

let load_files ~verilog ~liberty ?sdc () =
  parse ~verilog:(read_file verilog) ~liberty:(read_file liberty)
    ?sdc:(Option.map read_file sdc) ()

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)

let fail ?pos fmt =
  Printf.ksprintf (fun s -> Robust.fail ~subsystem ~operation:"lower" ?pos s)
    fmt

type decl = Dinput of int | Doutput | Dwire

(* Declaration-index min-heap: the tie-break that makes Kahn stable. *)
module Heap = struct
  type h = { mutable a : int array; mutable size : int }

  let create n = { a = Array.make (max n 1) 0; size = 0 }

  let push h v =
    if h.size = Array.length h.a then begin
      let a' = Array.make (2 * h.size) 0 in
      Array.blit h.a 0 a' 0 h.size;
      h.a <- a'
    end;
    h.a.(h.size) <- v;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      h.a.(p) > h.a.(!i)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    let top = h.a.(0) in
    h.size <- h.size - 1;
    h.a.(0) <- h.a.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.size && h.a.(l) < h.a.(!m) then m := l;
      if r < h.size && h.a.(r) < h.a.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        let tmp = h.a.(!m) in
        h.a.(!m) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !m
      end
    done;
    top
end

type rinst = {
  lc : Liberty.lcell;
  out_net : string;
  in_nets : string array;
  rpos : Robust.pos;
}

let resolve_instance lib (inst : Verilog.instance) =
  let lc =
    match Liberty.find lib inst.Verilog.cell with
    | Some lc -> lc
    | None ->
        fail ~pos:inst.Verilog.ipos "unknown cell '%s' (instance '%s')"
          inst.Verilog.cell inst.Verilog.inst
  in
  let n_in = Array.length lc.Liberty.pins in
  match inst.Verilog.conns with
  | Verilog.Positional nets ->
      let nets = Array.of_list nets in
      if Array.length nets <> n_in + 1 then
        fail ~pos:inst.Verilog.ipos
          "instance '%s' of cell '%s' has %d connections, expected %d"
          inst.Verilog.inst inst.Verilog.cell (Array.length nets) (n_in + 1);
      {
        lc;
        out_net = nets.(0);
        in_nets = Array.sub nets 1 n_in;
        rpos = inst.Verilog.ipos;
      }
  | Verilog.Named pins ->
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (p, n) ->
          if Hashtbl.mem tbl p then
            fail ~pos:inst.Verilog.ipos
              "instance '%s' connects pin '%s' twice" inst.Verilog.inst p;
          Hashtbl.add tbl p n)
        pins;
      List.iter
        (fun (p, _) ->
          if p <> lc.Liberty.out_pin
             && not (Array.exists (fun q -> q = p) lc.Liberty.pins)
          then
            fail ~pos:inst.Verilog.ipos
              "instance '%s': cell '%s' has no pin '%s'" inst.Verilog.inst
              lc.Liberty.cname p)
        pins;
      let out_net =
        match Hashtbl.find_opt tbl lc.Liberty.out_pin with
        | Some n -> n
        | None ->
            fail ~pos:inst.Verilog.ipos
              "instance '%s': output pin '%s' not connected"
              inst.Verilog.inst lc.Liberty.out_pin
      in
      let in_nets =
        Array.map
          (fun p ->
            match Hashtbl.find_opt tbl p with
            | Some n -> n
            | None ->
                fail ~pos:inst.Verilog.ipos
                  "instance '%s': input pin '%s' not connected"
                  inst.Verilog.inst p)
          lc.Liberty.pins
      in
      { lc; out_net; in_nets; rpos = inst.Verilog.ipos }

let lower d =
  let m = d.modul in
  let declared = Hashtbl.create 64 in
  let declare kind n =
    if Hashtbl.mem declared n then fail "net '%s' declared more than once" n;
    Hashtbl.add declared n kind
  in
  List.iteri (fun i n -> declare (Dinput i) n) m.Verilog.inputs;
  List.iter (declare Doutput) m.Verilog.outputs;
  List.iter (declare Dwire) m.Verilog.wires;
  List.iter
    (fun p ->
      if not (Hashtbl.mem declared p) then
        fail "port '%s' is neither an input nor an output" p)
    m.Verilog.ports;
  let n_pi = List.length m.Verilog.inputs in
  let insts =
    Array.of_list (List.map (resolve_instance d.lib) m.Verilog.instances)
  in
  let n_inst = Array.length insts in
  (* Implicit nets are legal Verilog but worth counting: a typo'd net name
     silently splits a connection, so under Strict it is an error. *)
  let note_implicit net pos =
    if not (Hashtbl.mem declared net) then begin
      Robust.repair repairs
        (Robust.context ~subsystem ~operation:"lower"
           ~indices:[ pos.Robust.line ] ~pos
           (Printf.sprintf "implicit net '%s' (no declaration)" net));
      Hashtbl.add declared net Dwire
    end
  in
  Array.iter
    (fun r ->
      note_implicit r.out_net r.rpos;
      Array.iter (fun n -> note_implicit n r.rpos) r.in_nets)
    insts;
  let driver = Hashtbl.create 64 in
  Array.iteri
    (fun i r ->
      (match Hashtbl.find_opt declared r.out_net with
      | Some (Dinput _) ->
          fail ~pos:r.rpos "instance drives input port '%s'" r.out_net
      | _ -> ());
      (match Hashtbl.find_opt driver r.out_net with
      | Some j ->
          fail ~pos:r.rpos
            "net '%s' has two drivers (instances '%s' and '%s')" r.out_net
            (List.nth m.Verilog.instances j).Verilog.inst
            (List.nth m.Verilog.instances i).Verilog.inst
      | None -> ());
      Hashtbl.add driver r.out_net i)
    insts;
  (* Kahn over instance-to-instance dependencies, declaration-index heap. *)
  let indegree = Array.make (max n_inst 1) 0 in
  let consumers = Array.make (max n_inst 1) [] in
  Array.iteri
    (fun i r ->
      Array.iter
        (fun net ->
          match Hashtbl.find_opt driver net with
          | Some j ->
              indegree.(i) <- indegree.(i) + 1;
              consumers.(j) <- i :: consumers.(j)
          | None -> (
              match Hashtbl.find_opt declared net with
              | Some (Dinput _) -> ()
              | _ -> fail ~pos:r.rpos "net '%s' has no driver" net))
        r.in_nets)
    insts;
  let heap = Heap.create n_inst in
  for i = n_inst - 1 downto 0 do
    if indegree.(i) = 0 then Heap.push heap i
  done;
  let bld = N.Builder.create ~name:m.Verilog.name ~n_pi in
  let node_of_net = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.add node_of_net n i) m.Verilog.inputs;
  let names = ref (List.rev m.Verilog.inputs) in
  let emitted = ref 0 in
  while heap.Heap.size > 0 do
    let i = Heap.pop heap in
    let r = insts.(i) in
    let fanins = Array.map (Hashtbl.find node_of_net) r.in_nets in
    let id = N.Builder.add_gate bld r.lc.Liberty.cell fanins in
    Hashtbl.replace node_of_net r.out_net id;
    names := r.out_net :: !names;
    incr emitted;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Heap.push heap j)
      consumers.(i)
  done;
  if !emitted < n_inst then begin
    let i = ref 0 in
    while indegree.(!i) = 0 do
      incr i
    done;
    fail ~pos:insts.(!i).rpos
      "instance '%s' is part of a combinational loop"
      (List.nth m.Verilog.instances !i).Verilog.inst
  end;
  if m.Verilog.outputs = [] then fail "module '%s' has no outputs" m.Verilog.name;
  let outputs =
    Array.of_list
      (List.map
         (fun o ->
           match Hashtbl.find_opt node_of_net o with
           | Some id when id >= n_pi -> id
           | Some _ -> fail "output port '%s' is a primary input" o
           | None -> fail "output port '%s' is never driven" o)
         m.Verilog.outputs)
  in
  let netlist = N.Builder.finish bld ~outputs in
  {
    design = d;
    netlist;
    net_names = Array.of_list (List.rev !names);
  }

(* ------------------------------------------------------------------ *)
(* Netlist export                                                      *)

let of_netlist ?(sdc = Sdc.empty) ?(lib_name = "hssta90") nl =
  let seen = Hashtbl.create 16 in
  let cells = ref [] in
  Array.iter
    (fun (g : N.gate) ->
      let c = g.N.cell in
      if not (Hashtbl.mem seen c.Cell.name) then begin
        Hashtbl.add seen c.Cell.name ();
        cells := c :: !cells
      end)
    nl.N.gates;
  let params =
    Array.map
      (fun p -> p.Ssta_variation.Param.name)
      Ssta_variation.Param.defaults
  in
  {
    modul = Verilog.of_netlist nl;
    lib =
      Liberty.of_cells ~name:lib_name ~params
        (Array.of_list (List.rev !cells));
    sdc;
  }

(* ------------------------------------------------------------------ *)
(* report_checks                                                       *)

type endpoint_check = {
  port : string;
  vertex : int;
  arrival : Form.t option;
  required : float;
  slack_mean : float;
  slack_std : float;
  p_met : float;
  paths : Path_report.path list;
}

type checks = {
  clock : string;
  period : float;
  endpoints : endpoint_check list;
}

let unmatched_port op name =
  Robust.repair repairs
    (Robust.context ~subsystem ~operation:"constraints"
       (Printf.sprintf "%s names unknown port '%s' (ignored)" op name))

let report_checks ?(k = 3) ?period lowered ~build =
  let sdc = lowered.design.sdc in
  let g = build.Build.graph in
  let nl = lowered.netlist in
  let n_pi = N.n_pis nl in
  let period =
    match period with
    | Some p -> p
    | None -> (
        match Sdc.clock_period sdc with
        | Some p -> p
        | None ->
            1.25 *. Sta.design_delay g ~weights:(Build.nominal_weights build))
  in
  let clock =
    match sdc.Sdc.clocks with c :: _ -> c.Sdc.clk_name | [] -> "clk"
  in
  let pi_ix = Hashtbl.create 16 in
  for i = 0 to n_pi - 1 do
    Hashtbl.add pi_ix lowered.net_names.(i) i
  done;
  (* Input delays shift every out-edge of the port's vertex: each path
     through the port crosses exactly one of them, so this is the exact
     fold of a deterministic source offset into the canonical forms. *)
  let forms = Array.copy build.Build.forms in
  List.iter
    (fun (d : Sdc.io_delay) ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt pi_ix p with
          | Some v ->
              Array.iter
                (fun e -> forms.(e) <- Form.add_const forms.(e) d.Sdc.delay)
                g.Tgraph.fanout.(v)
          | None -> unmatched_port "set_input_delay" p)
        d.Sdc.ports)
    sdc.Sdc.input_delays;
  let base_arrival = Propagate.forward g ~forms ~sources:g.Tgraph.inputs in
  let output_delay port =
    List.fold_left
      (fun acc (d : Sdc.io_delay) ->
        if List.mem port d.Sdc.ports then acc +. d.Sdc.delay else acc)
      0.0 sdc.Sdc.output_delays
  in
  (* Unknown ports in output delays / false paths: counted once here. *)
  let known_out = Hashtbl.create 16 in
  List.iter (fun o -> Hashtbl.add known_out o ()) lowered.design.modul.outputs;
  List.iter
    (fun (d : Sdc.io_delay) ->
      List.iter
        (fun p ->
          if not (Hashtbl.mem known_out p) then
            unmatched_port "set_output_delay" p)
        d.Sdc.ports)
    sdc.Sdc.output_delays;
  List.iter
    (fun (fp : Sdc.false_path) ->
      List.iter
        (fun p ->
          if not (Hashtbl.mem pi_ix p) then unmatched_port "set_false_path" p)
        fp.Sdc.from_ports;
      List.iter
        (fun p ->
          if not (Hashtbl.mem known_out p) then
            unmatched_port "set_false_path" p)
        fp.Sdc.to_ports)
    sdc.Sdc.false_paths;
  (* For an endpoint with false -from ports, re-propagate from the
     surviving sources: vertices fed only through excluded inputs stay
     unreached, which excludes exactly the false paths' contribution. *)
  let arrival_for port =
    let exclude_all = ref false in
    let excluded = Array.make n_pi false in
    let any = ref false in
    List.iter
      (fun (fp : Sdc.false_path) ->
        let applies =
          fp.Sdc.to_ports = [] || List.mem port fp.Sdc.to_ports
        in
        if applies then
          if fp.Sdc.from_ports = [] then exclude_all := true
          else
            List.iter
              (fun p ->
                match Hashtbl.find_opt pi_ix p with
                | Some v ->
                    excluded.(v) <- true;
                    any := true
                | None -> ())
              fp.Sdc.from_ports)
      sdc.Sdc.false_paths;
    if !exclude_all then Array.make (Tgraph.n_vertices g) None
    else if not !any then base_arrival
    else
      let sources =
        Array.of_list
          (List.filter
             (fun v -> not excluded.(v))
             (Array.to_list g.Tgraph.inputs))
      in
      if sources = [||] then Array.make (Tgraph.n_vertices g) None
      else Propagate.forward g ~forms ~sources
  in
  let endpoints =
    List.mapi
      (fun i port ->
        let vertex = nl.N.outputs.(i) in
        let arr = arrival_for port in
        let required = period -. output_delay port in
        match arr.(vertex) with
        | None ->
            {
              port;
              vertex;
              arrival = None;
              required;
              slack_mean = infinity;
              slack_std = 0.0;
              p_met = 1.0;
              paths = [];
            }
        | Some f ->
            {
              port;
              vertex;
              arrival = Some f;
              required;
              slack_mean = required -. f.Form.mean;
              slack_std = Form.std f;
              p_met = Form.cdf f required;
              paths =
                Path_report.top_paths g ~forms ~arrival:arr ~endpoint:vertex
                  ~k;
            })
      lowered.design.modul.outputs
  in
  { clock; period; endpoints }

let pp_checks lowered fmt c =
  Format.fprintf fmt "report_checks — design %s, clock %s, period %.3f ps@."
    lowered.netlist.N.name c.clock c.period;
  List.iter
    (fun e ->
      Format.fprintf fmt "@.Endpoint %s (required %.3f ps)@." e.port
        e.required;
      match e.arrival with
      | None ->
          Format.fprintf fmt "  unconstrained (all paths false or cut)@."
      | Some f ->
          Format.fprintf fmt "  arrival: mean %.3f ps, sigma %.3f ps@."
            f.Form.mean (Form.std f);
          Format.fprintf fmt
            "  slack:   mean %.3f ps, sigma %.3f ps   P(met) = %.4f@."
            e.slack_mean e.slack_std e.p_met;
          List.iteri
            (fun i (p : Path_report.path) ->
              Format.fprintf fmt "  path %d [crit %.3f]: %s@." (i + 1)
                p.Path_report.criticality
                (String.concat " -> "
                   (List.map
                      (fun v -> lowered.net_names.(v))
                      p.Path_report.vertices)))
            e.paths)
    c.endpoints
