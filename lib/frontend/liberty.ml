module Robust = Ssta_robust.Robust
module Cell = Ssta_cell.Cell

type lcell = {
  cname : string;
  pins : string array;
  out_pin : string;
  cell : Cell.t;
}

type t = { lname : string; params : string array; cells : lcell list }

let subsystem = "frontend.liberty"
let repairs = Robust.counter "robust.frontend_repairs"
let max_depth = 64

let lexer text =
  Lex.make ~subsystem ~line_comment:"//" ~block_comments:true text

let expect_ident lx what =
  match Lex.next lx with
  | { Lex.tok = Lex.Ident s; _ } -> s
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected %s, found %s" what (Lex.describe tok))

let expect_sym lx c =
  match Lex.next lx with
  | { Lex.tok = Lex.Sym s; _ } when s = c -> ()
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected '%c', found %s" c (Lex.describe tok))

(* A complex-attribute argument: bare word, number or quoted string.  The
   raw lexeme is kept so numeric arguments can be re-parsed as floats. *)
let parse_args lx =
  match Lex.peek lx with
  | { Lex.tok = Lex.Sym ')'; _ } ->
      ignore (Lex.next lx);
      []
  | _ ->
      let arg () =
        match Lex.next lx with
        | { Lex.tok = Lex.Ident s; tpos } -> (s, tpos)
        | { Lex.tok = Lex.Quoted s; tpos } -> (s, tpos)
        | { Lex.tok = Lex.Num (_, raw); tpos } -> (raw, tpos)
        | { Lex.tok; tpos } ->
            Lex.fail_at lx ~pos:tpos
              (Printf.sprintf "expected an argument, found %s"
                 (Lex.describe tok))
      in
      let rec rest acc =
        match Lex.next lx with
        | { Lex.tok = Lex.Sym ','; _ } -> rest (arg () :: acc)
        | { Lex.tok = Lex.Sym ')'; _ } -> List.rev acc
        | { Lex.tok; tpos } ->
            Lex.fail_at lx ~pos:tpos
              (Printf.sprintf "expected ',' or ')', found %s"
                 (Lex.describe tok))
      in
      rest [ arg () ]

(* Simple-attribute value after ':'.  Numbers keep their float value;
   words and strings come back as [None]. *)
let parse_value lx =
  match Lex.next lx with
  | { Lex.tok = Lex.Num (v, _); tpos } -> (Some v, tpos)
  | { Lex.tok = Lex.Ident s; tpos } | { Lex.tok = Lex.Quoted s; tpos } ->
      (float_of_string_opt s, tpos)
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected an attribute value, found %s"
           (Lex.describe tok))

let rec skip_group lx depth =
  if depth > max_depth then Lex.fail lx "group nesting too deep";
  match Lex.next lx with
  | { Lex.tok = Lex.Sym '}'; _ } -> ()
  | { Lex.tok = Lex.Sym '{'; _ } ->
      skip_group lx (depth + 1);
      skip_group lx depth
  | { Lex.tok = Lex.Eof; tpos } -> Lex.fail_at lx ~pos:tpos "unterminated group"
  | _ -> skip_group lx depth

(* After an unrecognized head identifier: swallow one statement, which is
   either [: value ;] or [( args ) ;] or [( args ) { ... }]. *)
let skip_statement lx depth =
  match Lex.next lx with
  | { Lex.tok = Lex.Sym ':'; _ } ->
      ignore (parse_value lx);
      expect_sym lx ';'
  | { Lex.tok = Lex.Sym '('; _ } -> (
      ignore (parse_args lx);
      match Lex.peek lx with
      | { Lex.tok = Lex.Sym '{'; _ } ->
          ignore (Lex.next lx);
          skip_group lx (depth + 1)
      | _ -> expect_sym lx ';')
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected ':' or '(', found %s" (Lex.describe tok))

let num_of lx (raw, tpos) =
  match float_of_string_opt raw with
  | Some v when Robust.is_finite v -> v
  | Some v ->
      Robust.repair repairs
        (Robust.context ~subsystem ~operation:"parse"
           ~indices:[ tpos.Robust.line ] ~values:[ v ] ~pos:tpos
           "non-finite value repaired to 0");
      0.0
  | None ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected a number, found '%s'" raw)

let finite_or_zero ~what v tpos =
  if Robust.is_finite v then v
  else begin
    Robust.repair repairs
      (Robust.context ~subsystem ~operation:"parse"
         ~indices:[ tpos.Robust.line ] ~values:[ v ] ~pos:tpos
         (what ^ ": non-finite value repaired to 0"));
    0.0
  end

type timing = {
  mutable d0 : float option;
  mutable sens : float list option;
  mutable load_sens : float option;
  mutable tpos : Robust.pos;
}

let parse_timing lx depth tpos0 =
  let t = { d0 = None; sens = None; load_sens = None; tpos = tpos0 } in
  let rec body () =
    match Lex.next lx with
    | { Lex.tok = Lex.Sym '}'; _ } -> ()
    | { Lex.tok = Lex.Ident "nominal_delay"; _ } ->
        expect_sym lx ':';
        let v, vpos = parse_value lx in
        (match v with
        | Some v -> t.d0 <- Some (finite_or_zero ~what:"nominal_delay" v vpos)
        | None -> Lex.fail_at lx ~pos:vpos "nominal_delay must be a number");
        expect_sym lx ';';
        body ()
    | { Lex.tok = Lex.Ident "load_sensitivity"; _ } ->
        expect_sym lx ':';
        let v, vpos = parse_value lx in
        (match v with
        | Some v ->
            t.load_sens <-
              Some (finite_or_zero ~what:"load_sensitivity" v vpos)
        | None -> Lex.fail_at lx ~pos:vpos "load_sensitivity must be a number");
        expect_sym lx ';';
        body ()
    | { Lex.tok = Lex.Ident "sensitivity"; _ } ->
        expect_sym lx '(';
        let args = parse_args lx in
        expect_sym lx ';';
        t.sens <- Some (List.map (num_of lx) args);
        body ()
    | { Lex.tok = Lex.Ident "related_pin"; _ } ->
        expect_sym lx ':';
        ignore (parse_value lx);
        expect_sym lx ';';
        body ()
    | { Lex.tok = Lex.Ident _; _ } ->
        skip_statement lx depth;
        body ()
    | { Lex.tok = Lex.Eof; tpos } ->
        Lex.fail_at lx ~pos:tpos "unterminated timing group"
    | { Lex.tok; tpos } ->
        Lex.fail_at lx ~pos:tpos
          (Printf.sprintf "unexpected %s in timing group" (Lex.describe tok))
  in
  body ();
  t

type pin = {
  pname : string;
  mutable dir : string option;
  mutable timing : timing option;
  ppos : Robust.pos;
}

let parse_pin lx depth pname ppos =
  let p = { pname; dir = None; timing = None; ppos } in
  let rec body () =
    match Lex.next lx with
    | { Lex.tok = Lex.Sym '}'; _ } -> ()
    | { Lex.tok = Lex.Ident "direction"; _ } ->
        expect_sym lx ':';
        (match Lex.next lx with
        | { Lex.tok = Lex.Ident (("input" | "output") as d); _ } ->
            p.dir <- Some d
        | { Lex.tok; tpos } ->
            Lex.fail_at lx ~pos:tpos
              (Printf.sprintf "direction must be input or output, found %s"
                 (Lex.describe tok)));
        expect_sym lx ';';
        body ()
    | { Lex.tok = Lex.Ident "timing"; tpos } ->
        expect_sym lx '(';
        expect_sym lx ')';
        expect_sym lx '{';
        (match p.timing with
        | Some _ ->
            Lex.fail_at lx ~pos:tpos
              (Printf.sprintf "pin '%s' has more than one timing group" pname)
        | None -> p.timing <- Some (parse_timing lx (depth + 1) tpos));
        body ()
    | { Lex.tok = Lex.Ident _; _ } ->
        skip_statement lx depth;
        body ()
    | { Lex.tok = Lex.Eof; tpos } ->
        Lex.fail_at lx ~pos:tpos "unterminated pin group"
    | { Lex.tok; tpos } ->
        Lex.fail_at lx ~pos:tpos
          (Printf.sprintf "unexpected %s in pin group" (Lex.describe tok))
  in
  body ();
  p

(* Reconcile parsed pins + timing into a Cell.t under the repair policy. *)
let finish_cell lx cname cpos pins ~n_params =
  let inputs =
    List.filter (fun p -> p.dir = Some "input") pins |> List.map (fun p -> p.pname)
  in
  let outputs = List.filter (fun p -> p.dir = Some "output") pins in
  (match List.find_opt (fun p -> p.dir = None) pins with
  | Some p ->
      Lex.fail_at lx ~pos:p.ppos
        (Printf.sprintf "pin '%s' of cell '%s' has no direction" p.pname cname)
  | None -> ());
  if inputs = [] then
    Lex.fail_at lx ~pos:cpos (Printf.sprintf "cell '%s' has no input pins" cname);
  let out =
    match outputs with
    | [ o ] -> o
    | [] ->
        Lex.fail_at lx ~pos:cpos
          (Printf.sprintf "cell '%s' has no output pin" cname)
    | o :: _ ->
        Lex.fail_at lx ~pos:o.ppos
          (Printf.sprintf "cell '%s' has more than one output pin" cname)
  in
  let t =
    match out.timing with
    | Some t -> t
    | None ->
        Lex.fail_at lx ~pos:out.ppos
          (Printf.sprintf "output pin '%s' of cell '%s' has no timing group"
             out.pname cname)
  in
  let d0 =
    match t.d0 with
    | Some d -> d
    | None ->
        Lex.fail_at lx ~pos:t.tpos
          (Printf.sprintf "cell '%s' timing has no nominal_delay" cname)
  in
  if d0 <= 0.0 then
    Lex.fail_at lx ~pos:t.tpos
      (Printf.sprintf "cell '%s' has non-positive nominal_delay %g" cname d0);
  let raw_sens = match t.sens with Some s -> Array.of_list s | None -> [||] in
  let sens =
    if Array.length raw_sens <> n_params then begin
      Robust.repair repairs
        (Robust.context ~subsystem ~operation:"parse"
           ~indices:[ t.tpos.Robust.line; Array.length raw_sens; n_params ]
           ~pos:t.tpos
           (Printf.sprintf
              "cell '%s': %d sensitivities for %d parameters (padded/truncated)"
              cname (Array.length raw_sens) n_params));
      Array.init n_params (fun i ->
          if i < Array.length raw_sens then raw_sens.(i) else 0.0)
    end
    else raw_sens
  in
  let sens =
    Array.map
      (fun s ->
        if s < 0.0 then begin
          Robust.repair repairs
            (Robust.context ~subsystem ~operation:"parse"
               ~indices:[ t.tpos.Robust.line ] ~values:[ s ] ~pos:t.tpos
               (Printf.sprintf
                  "cell '%s': negative sensitivity clamped to 0" cname));
          0.0
        end
        else s)
      sens
  in
  let load_sens =
    match t.load_sens with
    | Some l when l >= 0.0 -> l
    | Some l ->
        Robust.repair repairs
          (Robust.context ~subsystem ~operation:"parse"
             ~indices:[ t.tpos.Robust.line ] ~values:[ l ] ~pos:t.tpos
             (Printf.sprintf
                "cell '%s': negative load_sensitivity clamped to 0" cname));
        0.0
    | None ->
        Robust.repair repairs
          (Robust.context ~subsystem ~operation:"parse"
             ~indices:[ t.tpos.Robust.line ] ~pos:t.tpos
             (Printf.sprintf "cell '%s': missing load_sensitivity (0 assumed)"
                cname));
        0.0
  in
  {
    cname;
    pins = Array.of_list inputs;
    out_pin = out.pname;
    cell =
      Cell.make ~name:cname ~n_inputs:(List.length inputs) ~d0 ~sens
        ~load_sens;
  }

let parse_cell lx depth cname cpos =
  let pins = ref [] in
  let rec body () =
    match Lex.next lx with
    | { Lex.tok = Lex.Sym '}'; _ } -> ()
    | { Lex.tok = Lex.Ident "pin"; tpos } ->
        expect_sym lx '(';
        let pname = expect_ident lx "a pin name" in
        expect_sym lx ')';
        expect_sym lx '{';
        pins := parse_pin lx (depth + 1) pname tpos :: !pins;
        body ()
    | { Lex.tok = Lex.Ident _; _ } ->
        skip_statement lx depth;
        body ()
    | { Lex.tok = Lex.Eof; tpos } ->
        Lex.fail_at lx ~pos:tpos "unterminated cell group"
    | { Lex.tok; tpos } ->
        Lex.fail_at lx ~pos:tpos
          (Printf.sprintf "unexpected %s in cell group" (Lex.describe tok))
  in
  body ();
  (cname, cpos, List.rev !pins)

let default_params () =
  Array.map
    (fun p -> p.Ssta_variation.Param.name)
    Ssta_variation.Param.defaults

let parse text =
  let lx = lexer text in
  (match Lex.next lx with
  | { Lex.tok = Lex.Ident "library"; _ } -> ()
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected 'library', found %s" (Lex.describe tok)));
  expect_sym lx '(';
  let lname = expect_ident lx "a library name" in
  expect_sym lx ')';
  expect_sym lx '{';
  let params = ref None in
  let raw_cells = ref [] in
  let rec body () =
    match Lex.next lx with
    | { Lex.tok = Lex.Sym '}'; _ } -> ()
    | { Lex.tok = Lex.Ident "cell"; tpos } ->
        expect_sym lx '(';
        let cname = expect_ident lx "a cell name" in
        expect_sym lx ')';
        expect_sym lx '{';
        raw_cells := parse_cell lx 1 cname tpos :: !raw_cells;
        body ()
    | { Lex.tok = Lex.Ident "sensitivity_params"; _ } ->
        expect_sym lx '(';
        let args = parse_args lx in
        expect_sym lx ';';
        params := Some (Array.of_list (List.map fst args));
        body ()
    | { Lex.tok = Lex.Ident _; _ } ->
        skip_statement lx 1;
        body ()
    | { Lex.tok = Lex.Eof; tpos } ->
        Lex.fail_at lx ~pos:tpos "unterminated library group"
    | { Lex.tok; tpos } ->
        Lex.fail_at lx ~pos:tpos
          (Printf.sprintf "unexpected %s in library group" (Lex.describe tok))
  in
  body ();
  (match Lex.next lx with
  | { Lex.tok = Lex.Eof; _ } -> ()
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "trailing %s after library group" (Lex.describe tok)));
  let params =
    match !params with
    | Some p -> p
    | None ->
        Robust.repair repairs
          (Robust.context ~subsystem ~operation:"parse"
             ~pos:{ Robust.line = 1; col = 1 }
             "missing sensitivity_params (process defaults assumed)");
        default_params ()
  in
  let n_params = Array.length params in
  let seen = Hashtbl.create 16 in
  let cells =
    List.rev_map
      (fun (cname, cpos, pins) ->
        if Hashtbl.mem seen cname then
          Lex.fail_at lx ~pos:cpos
            (Printf.sprintf "duplicate cell '%s'" cname);
        Hashtbl.add seen cname ();
        finish_cell lx cname cpos pins ~n_params)
      !raw_cells
  in
  if cells = [] then
    Robust.fail ~subsystem ~operation:"parse"
      ~pos:{ Robust.line = 1; col = 1 }
      "library defines no cells";
  { lname; params; cells }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let fg v = Printf.sprintf "%.17g" v

let to_string l =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "/* %s — statistical cell library (hssta frontend) */\n"
       l.lname);
  Buffer.add_string b (Printf.sprintf "library (%s) {\n" l.lname);
  Buffer.add_string b "  delay_unit : \"1ps\";\n";
  Buffer.add_string b
    (Printf.sprintf "  sensitivity_params (%s);\n"
       (String.concat ", "
          (Array.to_list (Array.map (Printf.sprintf "%S") l.params))));
  List.iter
    (fun c ->
      Buffer.add_string b (Printf.sprintf "  cell (%s) {\n" c.cname);
      Array.iter
        (fun p ->
          Buffer.add_string b
            (Printf.sprintf "    pin (%s) { direction : input; }\n" p))
        c.pins;
      Buffer.add_string b (Printf.sprintf "    pin (%s) {\n" c.out_pin);
      Buffer.add_string b "      direction : output;\n";
      Buffer.add_string b "      timing () {\n";
      Buffer.add_string b
        (Printf.sprintf "        related_pin : \"%s\";\n"
           (String.concat " " (Array.to_list c.pins)));
      Buffer.add_string b
        (Printf.sprintf "        nominal_delay : %s;\n" (fg c.cell.Cell.d0));
      Buffer.add_string b
        (Printf.sprintf "        sensitivity (%s);\n"
           (String.concat ", "
              (Array.to_list (Array.map fg c.cell.Cell.sens))));
      Buffer.add_string b
        (Printf.sprintf "        load_sensitivity : %s;\n"
           (fg c.cell.Cell.load_sens));
      Buffer.add_string b "      }\n";
      Buffer.add_string b "    }\n";
      Buffer.add_string b "  }\n")
    l.cells;
  Buffer.add_string b "}\n";
  Buffer.contents b

let equal_cell a b =
  a.cname = b.cname && a.pins = b.pins && a.out_pin = b.out_pin
  && a.cell = b.cell

let equal a b =
  a.lname = b.lname && a.params = b.params
  && List.length a.cells = List.length b.cells
  && List.for_all2 equal_cell a.cells b.cells

let find l name = List.find_opt (fun c -> c.cname = name) l.cells

let of_cells ~name ~params cells =
  {
    lname = name;
    params;
    cells =
      Array.to_list cells
      |> List.map (fun (c : Cell.t) ->
             {
               cname = c.Cell.name;
               pins = Array.init c.Cell.n_inputs Verilog.pin_name;
               out_pin = Verilog.out_pin;
               cell = c;
             });
  }
