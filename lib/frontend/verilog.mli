(** Structural gate-level Verilog: the module/port/instance subset.

    Supported: one [module] with a port list, [input]/[output]/[wire]
    declarations (scalar nets only), and cell instances with named
    ([.pin(net)]) or positional connections.  [//] and [/* */] comments.
    Not supported (structured parse error): behavioral constructs, vectors,
    assigns, parameters, multiple modules.

    The printer emits a canonical form that {!parse} maps back to the same
    AST (the QCheck round-trip property), and {!of_netlist} renders any
    generator-built {!Ssta_circuit.Netlist.t} so bundled circuits can be
    exported and re-read bit-identically. *)

module Robust = Ssta_robust.Robust

type conns =
  | Named of (string * string) list  (** (pin, net) in source order *)
  | Positional of string list
      (** output net first, then inputs in cell pin order *)

type instance = {
  cell : string;
  inst : string;
  conns : conns;
  ipos : Robust.pos;  (** source position (lowering errors point here) *)
}

type t = {
  name : string;
  ports : string list;  (** header order *)
  inputs : string list;  (** declaration order = primary-input order *)
  outputs : string list;  (** declaration order = primary-output order *)
  wires : string list;
  instances : instance list;  (** declaration order *)
}

val parse : string -> t
(** Raises {!Ssta_robust.Robust.Error} (subsystem ["frontend.verilog"])
    with line/column position on any malformed input. *)

val to_string : t -> string

val equal : t -> t -> bool
(** Structural equality, ignoring source positions. *)

val of_netlist : Ssta_circuit.Netlist.t -> t
(** Net [n<id>] per node, instance [g<idx>] per gate, pins [a..] / [y].
    Raises a structured error if an output is a primary input or is
    repeated (not expressible as a port list). *)

val pin_name : int -> string
(** Canonical input-pin name of pin [i]: [a], [b], ... then [a26], ... —
    shared with the {!Liberty} exporter so exported pairs agree. *)

val out_pin : string
(** Canonical output-pin name ([y]). *)
