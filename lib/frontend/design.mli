(** An external design: parsed Verilog module + cell library + constraints,
    and its lowering onto the generator-native netlist representation.

    {!lower} is deterministic and declaration-stable: instances are
    emitted in Kahn topological order with ties broken by declaration
    index, so re-reading a file printed by {!Verilog.of_netlist} (whose
    instance order is already topological) reproduces the original
    {!Ssta_circuit.Netlist.t} bit-identically — the golden tests pin the
    full model extraction of parsed vs generator-built designs against
    each other.

    {!report_checks} is the [report_checks]-style endpoint summary:
    per primary output, the statistical arrival (with SDC input delays
    folded in and false paths excluded exactly by source-restricted
    re-propagation), the required time from the SDC clock, the slack
    distribution and the top-k statistically critical paths. *)

module Robust = Ssta_robust.Robust
module Form = Ssta_canonical.Form

type t = { modul : Verilog.t; lib : Liberty.t; sdc : Sdc.t }

type lowered = {
  design : t;
  netlist : Ssta_circuit.Netlist.t;
  net_names : string array;
      (** per netlist node id: input port name or driven net name *)
}

val parse : verilog:string -> liberty:string -> ?sdc:string -> unit -> t
(** Parse the three sources (SDC optional).  Raises
    {!Ssta_robust.Robust.Error} with the failing format's subsystem. *)

val load_files : verilog:string -> liberty:string -> ?sdc:string -> unit -> t
(** {!parse} over file contents; unreadable files raise a structured
    error (subsystem ["frontend.design"]). *)

val lower : t -> lowered
(** Raises {!Ssta_robust.Robust.Error} (subsystem ["frontend.design"])
    on unknown cells, arity/pin mismatches, duplicate or missing drivers,
    undeclared ports and combinational loops — each anchored at the
    offending instance's source position.  Undeclared (implicit) nets are
    a policy-gated repair. *)

val of_netlist : ?sdc:Sdc.t -> ?lib_name:string -> Ssta_circuit.Netlist.t -> t
(** The inverse direction: render a generator-built netlist as a design
    (Verilog module + library of the cells it uses).  [lower (of_netlist
    nl)] rebuilds [nl] exactly. *)

(** {1 Endpoint checks} *)

type endpoint_check = {
  port : string;
  vertex : int;
  arrival : Form.t option;
      (** statistical arrival at the endpoint after input delays and
          false-path exclusion; [None] if every path is false *)
  required : float;  (** clock period minus the port's output delay *)
  slack_mean : float;
  slack_std : float;
  p_met : float;  (** probability the endpoint meets [required] *)
  paths : Hier_ssta.Path_report.path list;
}

type checks = {
  clock : string;
  period : float;
  endpoints : endpoint_check list;  (** output-port declaration order *)
}

val report_checks :
  ?k:int -> ?period:float -> lowered -> build:Ssta_timing.Build.t -> checks
(** [k] (default 3) paths per endpoint.  The period comes from [?period],
    else the SDC's first clock, else 1.25x the nominal critical delay.
    SDC constraints naming unknown ports are policy-gated repairs. *)

val pp_checks : lowered -> Format.formatter -> checks -> unit
