module Robust = Ssta_robust.Robust

type clock = { clk_name : string; period : float }
type io_delay = { ports : string list; delay : float; dclock : string option }
type false_path = { from_ports : string list; to_ports : string list }

type t = {
  clocks : clock list;
  input_delays : io_delay list;
  output_delays : io_delay list;
  false_paths : false_path list;
}

let empty =
  { clocks = []; input_delays = []; output_delays = []; false_paths = [] }

let subsystem = "frontend.sdc"
let skipped = Robust.counter "robust.frontend_sdc_skipped"

let lexer text =
  Lex.make ~subsystem ~line_comment:"#" ~newline_tokens:true text

(* Everything up to end of line / file belongs to the current command. *)
let rec skip_to_eol lx =
  match Lex.peek lx with
  | { Lex.tok = Lex.Newline; _ } | { Lex.tok = Lex.Eof; _ } -> ()
  | _ ->
      ignore (Lex.next lx);
      skip_to_eol lx

let end_command lx cmd =
  match Lex.next lx with
  | { Lex.tok = Lex.Newline; _ } | { Lex.tok = Lex.Eof; _ } -> ()
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "trailing %s after %s" (Lex.describe tok) cmd)

let number lx what =
  match Lex.next lx with
  | { Lex.tok = Lex.Num (v, _); tpos } ->
      if Robust.is_finite v then v
      else Lex.fail_at lx ~pos:tpos (what ^ " must be finite")
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected %s, found %s" what (Lex.describe tok))

let ident lx what =
  match Lex.next lx with
  | { Lex.tok = Lex.Ident s; _ } | { Lex.tok = Lex.Quoted s; _ } -> s
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected %s, found %s" what (Lex.describe tok))

(* [get_ports {a b}] | [get_ports a] | bare-name *)
let port_spec lx =
  match Lex.next lx with
  | { Lex.tok = Lex.Ident s; _ } when String.length s > 0 && s.[0] <> '-' ->
      [ s ]
  | { Lex.tok = Lex.Quoted s; _ } -> [ s ]
  | { Lex.tok = Lex.Sym '['; tpos } -> (
      (match Lex.next lx with
      | { Lex.tok = Lex.Ident "get_ports"; _ } -> ()
      | { Lex.tok; tpos } ->
          Lex.fail_at lx ~pos:tpos
            (Printf.sprintf "expected get_ports, found %s" (Lex.describe tok)));
      match Lex.next lx with
      | { Lex.tok = Lex.Sym '{'; _ } ->
          let rec names acc =
            match Lex.next lx with
            | { Lex.tok = Lex.Sym '}'; _ } -> List.rev acc
            | { Lex.tok = Lex.Ident s; _ } | { Lex.tok = Lex.Quoted s; _ } ->
                names (s :: acc)
            | { Lex.tok; tpos } ->
                Lex.fail_at lx ~pos:tpos
                  (Printf.sprintf "expected a port name or '}', found %s"
                     (Lex.describe tok))
          in
          let ns = names [] in
          (if ns = [] then
             Lex.fail_at lx ~pos:tpos "empty port list in get_ports");
          (match Lex.next lx with
          | { Lex.tok = Lex.Sym ']'; _ } -> ()
          | { Lex.tok; tpos } ->
              Lex.fail_at lx ~pos:tpos
                (Printf.sprintf "expected ']', found %s" (Lex.describe tok)));
          ns
      | { Lex.tok = Lex.Ident s; _ } | { Lex.tok = Lex.Quoted s; _ } ->
          (match Lex.next lx with
          | { Lex.tok = Lex.Sym ']'; _ } -> ()
          | { Lex.tok; tpos } ->
              Lex.fail_at lx ~pos:tpos
                (Printf.sprintf "expected ']', found %s" (Lex.describe tok)));
          [ s ]
      | { Lex.tok; tpos } ->
          Lex.fail_at lx ~pos:tpos
            (Printf.sprintf "expected a port name or '{', found %s"
               (Lex.describe tok)))
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected a port specification, found %s"
           (Lex.describe tok))

let parse_create_clock lx =
  let period = ref None and name = ref None in
  let rec args () =
    match Lex.peek lx with
    | { Lex.tok = Lex.Ident "-period"; _ } ->
        ignore (Lex.next lx);
        period := Some (number lx "a clock period");
        args ()
    | { Lex.tok = Lex.Ident "-name"; _ } ->
        ignore (Lex.next lx);
        name := Some (ident lx "a clock name");
        args ()
    | { Lex.tok = Lex.Newline; _ } | { Lex.tok = Lex.Eof; _ } -> ()
    | { Lex.tok; tpos } ->
        Lex.fail_at lx ~pos:tpos
          (Printf.sprintf "unexpected %s in create_clock" (Lex.describe tok))
  in
  args ();
  end_command lx "create_clock";
  match !period with
  | None -> Lex.fail lx "create_clock requires -period"
  | Some p when p <= 0.0 ->
      Lex.fail lx (Printf.sprintf "non-positive clock period %g" p)
  | Some p ->
      {
        clk_name = (match !name with Some n -> n | None -> "clk");
        period = p;
      }

let parse_io_delay lx cmd =
  let clock = ref None and delay = ref None and ports = ref None in
  let rec args () =
    match Lex.peek lx with
    | { Lex.tok = Lex.Ident "-clock"; _ } ->
        ignore (Lex.next lx);
        clock := Some (ident lx "a clock name");
        args ()
    | { Lex.tok = Lex.Num _; _ } when !delay = None ->
        delay := Some (number lx "a delay");
        args ()
    | { Lex.tok = Lex.Newline; _ } | { Lex.tok = Lex.Eof; _ } -> ()
    | _ when !ports = None ->
        ports := Some (port_spec lx);
        args ()
    | { Lex.tok; tpos } ->
        Lex.fail_at lx ~pos:tpos
          (Printf.sprintf "unexpected %s in %s" (Lex.describe tok) cmd)
  in
  args ();
  end_command lx cmd;
  match (!delay, !ports) with
  | None, _ -> Lex.fail lx (cmd ^ " requires a delay value")
  | _, None -> Lex.fail lx (cmd ^ " requires a port specification")
  | Some d, Some p -> { ports = p; delay = d; dclock = !clock }

let parse_false_path lx =
  let from_ports = ref [] and to_ports = ref [] in
  let rec args () =
    match Lex.peek lx with
    | { Lex.tok = Lex.Ident "-from"; _ } ->
        ignore (Lex.next lx);
        from_ports := !from_ports @ port_spec lx;
        args ()
    | { Lex.tok = Lex.Ident "-to"; _ } ->
        ignore (Lex.next lx);
        to_ports := !to_ports @ port_spec lx;
        args ()
    | { Lex.tok = Lex.Newline; _ } | { Lex.tok = Lex.Eof; _ } -> ()
    | { Lex.tok; tpos } ->
        Lex.fail_at lx ~pos:tpos
          (Printf.sprintf "unexpected %s in set_false_path" (Lex.describe tok))
  in
  args ();
  end_command lx "set_false_path";
  if !from_ports = [] && !to_ports = [] then
    Lex.fail lx "set_false_path requires -from and/or -to";
  { from_ports = !from_ports; to_ports = !to_ports }

let parse text =
  let lx = lexer text in
  let clocks = ref []
  and input_delays = ref []
  and output_delays = ref []
  and false_paths = ref [] in
  let rec commands () =
    match Lex.next lx with
    | { Lex.tok = Lex.Eof; _ } -> ()
    | { Lex.tok = Lex.Newline; _ } -> commands ()
    | { Lex.tok = Lex.Ident "create_clock"; _ } ->
        clocks := parse_create_clock lx :: !clocks;
        commands ()
    | { Lex.tok = Lex.Ident "set_input_delay"; _ } ->
        input_delays := parse_io_delay lx "set_input_delay" :: !input_delays;
        commands ()
    | { Lex.tok = Lex.Ident "set_output_delay"; _ } ->
        output_delays := parse_io_delay lx "set_output_delay" :: !output_delays;
        commands ()
    | { Lex.tok = Lex.Ident "set_false_path"; _ } ->
        false_paths := parse_false_path lx :: !false_paths;
        commands ()
    | { Lex.tok = Lex.Ident cmd; tpos } ->
        Robust.repair skipped
          (Robust.context ~subsystem ~operation:"parse"
             ~indices:[ tpos.Robust.line ] ~pos:tpos
             (Printf.sprintf "unsupported SDC command '%s' skipped" cmd));
        skip_to_eol lx;
        commands ()
    | { Lex.tok; tpos } ->
        Lex.fail_at lx ~pos:tpos
          (Printf.sprintf "expected an SDC command, found %s"
             (Lex.describe tok))
  in
  commands ();
  {
    clocks = List.rev !clocks;
    input_delays = List.rev !input_delays;
    output_delays = List.rev !output_delays;
    false_paths = List.rev !false_paths;
  }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let fg v = Printf.sprintf "%.17g" v
let ports_spec ps = Printf.sprintf "[get_ports {%s}]" (String.concat " " ps)

let to_string s =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# timing constraints (hssta frontend)\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "create_clock -name %s -period %s\n" c.clk_name
           (fg c.period)))
    s.clocks;
  let io cmd d =
    let clk =
      match d.dclock with Some c -> Printf.sprintf " -clock %s" c | None -> ""
    in
    Buffer.add_string b
      (Printf.sprintf "%s%s %s %s\n" cmd clk (fg d.delay) (ports_spec d.ports))
  in
  List.iter (io "set_input_delay") s.input_delays;
  List.iter (io "set_output_delay") s.output_delays;
  List.iter
    (fun f ->
      let part flag = function
        | [] -> ""
        | ps -> Printf.sprintf " %s %s" flag (ports_spec ps)
      in
      Buffer.add_string b
        (Printf.sprintf "set_false_path%s%s\n"
           (part "-from" f.from_ports)
           (part "-to" f.to_ports)))
    s.false_paths;
  Buffer.contents b

let equal (a : t) (b : t) = a = b
let clock_period s = match s.clocks with [] -> None | c :: _ -> Some c.period
