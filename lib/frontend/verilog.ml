module Robust = Ssta_robust.Robust
module N = Ssta_circuit.Netlist

type conns = Named of (string * string) list | Positional of string list

type instance = {
  cell : string;
  inst : string;
  conns : conns;
  ipos : Robust.pos;
}

type t = {
  name : string;
  ports : string list;
  inputs : string list;
  outputs : string list;
  wires : string list;
  instances : instance list;
}

let subsystem = "frontend.verilog"

let lexer text =
  Lex.make ~subsystem ~line_comment:"//" ~block_comments:true text

let expect_ident lx what =
  match Lex.next lx with
  | { Lex.tok = Lex.Ident s; _ } -> s
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected %s, found %s" what (Lex.describe tok))

let expect_sym lx c =
  match Lex.next lx with
  | { Lex.tok = Lex.Sym s; _ } when s = c -> ()
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected '%c', found %s" c (Lex.describe tok))

(* ident {',' ident} — terminated by the closing symbol (consumed by the
   caller).  Empty lists are allowed for port headers only. *)
let rec ident_list lx acc =
  let id = expect_ident lx "a net name" in
  match Lex.peek lx with
  | { Lex.tok = Lex.Sym ','; _ } ->
      ignore (Lex.next lx);
      ident_list lx (id :: acc)
  | _ -> List.rev (id :: acc)

let parse_ports lx =
  expect_sym lx '(';
  match Lex.peek lx with
  | { Lex.tok = Lex.Sym ')'; _ } ->
      ignore (Lex.next lx);
      []
  | _ ->
      let ports = ident_list lx [] in
      expect_sym lx ')';
      ports

(* .pin(net) {, .pin(net)} | net {, net} *)
let parse_conns lx =
  match Lex.peek lx with
  | { Lex.tok = Lex.Sym ')'; tpos } ->
      Lex.fail_at lx ~pos:tpos "instance has no connections"
  | { Lex.tok = Lex.Sym '.'; _ } ->
      let rec named acc =
        expect_sym lx '.';
        let pin = expect_ident lx "a pin name" in
        expect_sym lx '(';
        let net = expect_ident lx "a net name" in
        expect_sym lx ')';
        match Lex.peek lx with
        | { Lex.tok = Lex.Sym ','; _ } ->
            ignore (Lex.next lx);
            named ((pin, net) :: acc)
        | _ -> List.rev ((pin, net) :: acc)
      in
      Named (named [])
  | _ -> Positional (ident_list lx [])

let parse text =
  let lx = lexer text in
  (match Lex.next lx with
  | { Lex.tok = Lex.Ident "module"; _ } -> ()
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "expected 'module', found %s" (Lex.describe tok)));
  let name = expect_ident lx "a module name" in
  let ports = parse_ports lx in
  expect_sym lx ';';
  let inputs = ref [] and outputs = ref [] and wires = ref [] in
  let instances = ref [] in
  let rec items () =
    match Lex.next lx with
    | { Lex.tok = Lex.Ident "endmodule"; _ } -> ()
    | { Lex.tok = Lex.Ident (("input" | "output" | "wire") as kind); _ } ->
        let names = ident_list lx [] in
        expect_sym lx ';';
        let dst =
          match kind with
          | "input" -> inputs
          | "output" -> outputs
          | _ -> wires
        in
        dst := List.rev_append names !dst;
        items ()
    | { Lex.tok = Lex.Ident cell; tpos } ->
        let inst = expect_ident lx "an instance name" in
        expect_sym lx '(';
        let conns = parse_conns lx in
        expect_sym lx ')';
        expect_sym lx ';';
        instances := { cell; inst; conns; ipos = tpos } :: !instances;
        items ()
    | { Lex.tok = Lex.Eof; tpos } ->
        Lex.fail_at lx ~pos:tpos "missing 'endmodule'"
    | { Lex.tok; tpos } ->
        Lex.fail_at lx ~pos:tpos
          (Printf.sprintf "expected a declaration or instance, found %s"
             (Lex.describe tok))
  in
  items ();
  (match Lex.next lx with
  | { Lex.tok = Lex.Eof; _ } -> ()
  | { Lex.tok; tpos } ->
      Lex.fail_at lx ~pos:tpos
        (Printf.sprintf "trailing %s after endmodule" (Lex.describe tok)));
  {
    name;
    ports;
    inputs = List.rev !inputs;
    outputs = List.rev !outputs;
    wires = List.rev !wires;
    instances = List.rev !instances;
  }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let to_string m =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "// %s — structural netlist (hssta frontend)\n" m.name);
  Buffer.add_string b
    (Printf.sprintf "module %s (%s);\n" m.name (String.concat ", " m.ports));
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "  input %s;\n" n))
    m.inputs;
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "  output %s;\n" n))
    m.outputs;
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "  wire %s;\n" n))
    m.wires;
  List.iter
    (fun i ->
      let conns =
        match i.conns with
        | Named pins ->
            String.concat ", "
              (List.map (fun (p, n) -> Printf.sprintf ".%s(%s)" p n) pins)
        | Positional nets -> String.concat ", " nets
      in
      Buffer.add_string b
        (Printf.sprintf "  %s %s (%s);\n" i.cell i.inst conns))
    m.instances;
  Buffer.add_string b "endmodule\n";
  Buffer.contents b

let equal_instance a b =
  a.cell = b.cell && a.inst = b.inst && a.conns = b.conns

let equal a b =
  a.name = b.name && a.ports = b.ports && a.inputs = b.inputs
  && a.outputs = b.outputs && a.wires = b.wires
  && List.length a.instances = List.length b.instances
  && List.for_all2 equal_instance a.instances b.instances

(* ------------------------------------------------------------------ *)
(* Netlist export                                                      *)

let pin_name i =
  if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i))
  else Printf.sprintf "a%d" i

let out_pin = "y"

let of_netlist nl =
  let net i = Printf.sprintf "n%d" i in
  let n_pi = N.n_pis nl in
  let outputs = Array.to_list nl.N.outputs in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun o ->
      if o < n_pi then
        Robust.fail ~subsystem ~operation:"of_netlist" ~indices:[ o ]
          "cannot export a netlist whose output is a primary input";
      if Hashtbl.mem seen o then
        Robust.fail ~subsystem ~operation:"of_netlist" ~indices:[ o ]
          "cannot export a netlist with a repeated output";
      Hashtbl.add seen o ())
    outputs;
  let inputs = List.init n_pi net in
  let output_names = List.map net outputs in
  let wires =
    Array.to_list nl.N.gates
    |> List.mapi (fun g _ -> n_pi + g)
    |> List.filter (fun id -> not (Hashtbl.mem seen id))
    |> List.map net
  in
  let instances =
    Array.to_list nl.N.gates
    |> List.mapi (fun g (gate : N.gate) ->
           let pins =
             (out_pin, net (n_pi + g))
             :: Array.to_list
                  (Array.mapi (fun i f -> (pin_name i, net f)) gate.N.fanins)
           in
           {
             cell = gate.N.cell.Ssta_cell.Cell.name;
             inst = Printf.sprintf "g%d" g;
             conns = Named pins;
             ipos = { Robust.line = 0; col = 0 };
           })
  in
  {
    name = nl.N.name;
    ports = inputs @ output_names;
    inputs;
    outputs = output_names;
    wires;
    instances;
  }
