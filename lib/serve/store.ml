(* Durable state for the serve daemon: a disk model cache, an ECO
   write-ahead log, and a checkpoint file, all under one state
   directory (--cache-dir / HSSTA_CACHE_DIR).

   Layout:
     <dir>/models/<digest>.model   marshaled Build.t, one per content hash
     <dir>/wal.jsonl               framed JSONL records of committed edits
     <dir>/checkpoint              one framed JSONL line (atomic rename)

   Every durable artifact is self-verifying:
   - model files carry a magic header plus a trailer with the payload
     length and its MD5, so truncation and bit-flips are both caught
     *before* Marshal.from_string ever runs;
   - WAL and checkpoint lines are framed as "<md5-of-payload> <payload>",
     so a torn append (the crash harness produces them on demand) is
     detected and the log truncated at the first bad record;
   - all whole-file writes go through temp-file + atomic rename, so a
     crash mid-write leaves an orphan .tmp (swept on open), never a
     half-written live file.

   Corruption handling follows the lib/robust policy: quarantine the bad
   file (rename to *.corrupt, preserving the evidence), fire the
   structured repair counter, and let Strict raise / Repair recompute. *)

module Robust = Ssta_robust.Robust
module Crash = Ssta_robust.Crash
module Json = Ssta_json.Json

let c_cache_corrupt = Robust.counter "robust.cache_corrupt"
let c_wal_truncated = Robust.counter "robust.wal_truncated"
let c_checkpoint_corrupt = Robust.counter "robust.checkpoint_corrupt"

type t = {
  dir : string;
  models_dir : string;
  wal_path : string;
  ckpt_path : string;
  checkpoint_every : int;
  mutable wal_oc : out_channel option;
  mutable wal_seq : int;  (** last sequence number written or replayed *)
  mutable wal_bytes : int;  (** current on-disk WAL size *)
  mutable records_since_ckpt : int;
}

(* ---- small file helpers ------------------------------------------- *)

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

(* Quarantine preserves the corrupt bytes next to the live path for
   post-mortems; a pre-existing quarantine file is clobbered (the newest
   evidence wins). *)
let quarantine path =
  try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ()

(* ---- line framing: "<md5hex(payload)> <payload>" ------------------- *)

let frame payload = Digest.to_hex (Digest.string payload) ^ " " ^ payload

let unframe line =
  let n = String.length line in
  if n < 34 || line.[32] <> ' ' then None
  else
    let sum = String.sub line 0 32 in
    let payload = String.sub line 33 (n - 33) in
    if String.equal (Digest.to_hex (Digest.string payload)) sum then
      Some payload
    else None

(* ---- open ---------------------------------------------------------- *)

let sweep_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      Array.iter
        (fun e ->
          if Filename.check_suffix e ".tmp" then
            try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        entries

let open_store ?(checkpoint_every = 64) dir =
  let models_dir = Filename.concat dir "models" in
  mkdir_p models_dir;
  (* Orphan temp files are the residue of a crash mid-write: the rename
     never happened, so they are dead weight, never live state. *)
  sweep_tmp dir;
  sweep_tmp models_dir;
  let wal_path = Filename.concat dir "wal.jsonl" in
  {
    dir;
    models_dir;
    wal_path;
    ckpt_path = Filename.concat dir "checkpoint";
    checkpoint_every;
    wal_oc = None;
    wal_seq = 0;
    wal_bytes = file_size wal_path;
    records_since_ckpt = 0;
  }

let close t =
  match t.wal_oc with
  | None -> ()
  | Some oc ->
      t.wal_oc <- None;
      close_out_noerr oc

(* ---- durable model cache ------------------------------------------ *)

let model_magic = "hssta-model-cache v1\n"

(* Trailer: "\n%016d %s\n" = newline + 16-digit payload length + space +
   32-hex MD5 + newline. Fixed 51 bytes, parsed from the end. *)
let trailer_len = 51

let model_path t digest = Filename.concat t.models_dir (digest ^ ".model")

(* Spill is best-effort: a full disk or read-only cache dir must degrade
   to an undurable cache, not kill the request that triggered the
   characterization.  The crash point sits after the first half of the
   payload is flushed, so the harness gets a genuinely torn temp file. *)
let spill_model t ~digest payload =
  let path = model_path t digest in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc model_magic;
       let n = String.length payload in
       let half = n / 2 in
       output_substring oc payload 0 half;
       flush oc;
       Crash.tick "cache_write";
       output_substring oc payload half (n - half);
       output_string oc (Printf.sprintf "\n%016d %s\n" n (Digest.to_hex (Digest.string payload)));
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path;
    true
  with Sys_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    false

(* Validate an entry end to end before handing back the payload:
   corrupt/truncated files are quarantined and reported through the
   robust policy (Strict raises after the quarantine, Repair returns
   None so the caller recomputes). *)
let load_model t ~digest =
  let path = model_path t digest in
  if not (Sys.file_exists path) then None
  else
    let raw = try Some (read_file path) with Sys_error _ -> None in
    let payload =
      match raw with
      | None -> None
      | Some raw ->
          let mlen = String.length model_magic in
          let n = String.length raw in
          if n < mlen + trailer_len then None
          else if not (String.equal (String.sub raw 0 mlen) model_magic) then
            None
          else
            let trailer = String.sub raw (n - trailer_len) trailer_len in
            let payload = String.sub raw mlen (n - mlen - trailer_len) in
            if trailer.[0] <> '\n' || trailer.[17] <> ' ' || trailer.[50] <> '\n'
            then None
            else
              let len = int_of_string_opt (String.sub trailer 1 16) in
              let sum = String.sub trailer 18 32 in
              if
                len = Some (String.length payload)
                && String.equal sum (Digest.to_hex (Digest.string payload))
              then Some payload
              else None
    in
    match payload with
    | Some _ -> payload
    | None ->
        quarantine path;
        Robust.repair c_cache_corrupt
          (Robust.context ~subsystem:"serve.cache" ~operation:"load_model"
             (Printf.sprintf
                "corrupt or truncated model cache entry %s.model (quarantined)"
                digest));
        None

(* ---- write-ahead log ---------------------------------------------- *)

let wal_oc t =
  match t.wal_oc with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.wal_path
      in
      t.wal_oc <- Some oc;
      oc

(* Append one record. The payload fields get the next sequence number
   prepended; the framed line is written in two flushed halves with the
   torn-write crash point between them, then flushed again with the
   post-durability crash point after it - exactly the two failure modes
   recovery must survive. *)
let append t fields =
  let seq = t.wal_seq + 1 in
  let payload =
    Json.to_string (Json.Obj (("seq", Json.Num (float_of_int seq)) :: fields))
  in
  let line = frame payload in
  let oc = wal_oc t in
  let n = String.length line in
  let half = n / 2 in
  output_substring oc line 0 half;
  flush oc;
  Crash.tick "wal_append";
  output_substring oc line half (n - half);
  output_char oc '\n';
  flush oc;
  Crash.tick "wal_sync";
  t.wal_seq <- seq;
  t.wal_bytes <- t.wal_bytes + n + 1;
  t.records_since_ckpt <- t.records_since_ckpt + 1;
  seq

(* Read back the log: every well-framed, well-formed record with a
   strictly increasing "seq" field, in order.  The first bad line (torn
   frame, checksum mismatch, unparseable JSON, non-monotonic seq)
   truncates the log at its byte offset - under Strict the structured
   error is raised instead (after the truncation decision is made but
   before any truncation happens, so the evidence survives). *)
let replay_wal t =
  if not (Sys.file_exists t.wal_path) then []
  else begin
    close t;
    let raw = read_file t.wal_path in
    let n = String.length raw in
    let records = ref [] in
    let prev_seq = ref 0 in
    let pos = ref 0 in
    let bad = ref None in
    while !bad = None && !pos < n do
      let stop =
        match String.index_from_opt raw !pos '\n' with
        | Some i -> i
        | None -> n (* unterminated final line: torn append *)
      in
      let line = String.sub raw !pos (stop - !pos) in
      let record =
        match unframe line with
        | None -> None
        | Some payload -> (
            match Json.parse payload with
            | Error _ -> None
            | Ok j -> (
                match Json.find "seq" j with
                | Some (Json.Num s)
                  when float_of_int (int_of_float s) = s
                       && int_of_float s > !prev_seq ->
                    Some (int_of_float s, j)
                | _ -> None))
      in
      match record with
      | Some (seq, j) when stop < n ->
          prev_seq := seq;
          records := (seq, j) :: !records;
          pos := stop + 1
      | _ -> bad := Some !pos
    done;
    (match !bad with
    | None -> ()
    | Some off ->
        Robust.repair c_wal_truncated
          (Robust.context ~subsystem:"serve.wal" ~operation:"replay"
             ~indices:[ off; List.length !records ]
             (Printf.sprintf
                "torn or invalid WAL record at byte %d; truncating (%d valid \
                 record(s) kept)"
                off (List.length !records)));
        (try Unix.truncate t.wal_path off with Unix.Unix_error _ -> ()));
    t.wal_seq <- !prev_seq;
    t.wal_bytes <- file_size t.wal_path;
    List.rev !records
  end

(* ---- checkpoint ---------------------------------------------------- *)

(* The checkpoint is a single framed line holding the full recovered
   session spec at a known WAL sequence number.  Written atomically,
   then the WAL is truncated to zero: replay cost is bounded by the
   checkpoint cadence, not by daemon uptime. *)
let write_checkpoint t fields =
  let payload =
    Json.to_string
      (Json.Obj (("seq", Json.Num (float_of_int t.wal_seq)) :: fields))
  in
  let tmp = t.ckpt_path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc (frame payload);
       output_char oc '\n';
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp t.ckpt_path;
    close t;
    (try Unix.truncate t.wal_path 0 with Unix.Unix_error _ -> ());
    t.wal_bytes <- 0;
    t.records_since_ckpt <- 0;
    true
  with Sys_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    false

let read_checkpoint t =
  if not (Sys.file_exists t.ckpt_path) then None
  else
    let raw = try Some (read_file t.ckpt_path) with Sys_error _ -> None in
    let parsed =
      match raw with
      | None -> None
      | Some raw -> (
          let line =
            match String.index_opt raw '\n' with
            | Some i -> String.sub raw 0 i
            | None -> raw
          in
          match unframe line with
          | None -> None
          | Some payload -> (
              match Json.parse payload with
              | Ok j -> (
                  match Json.find "seq" j with
                  | Some (Json.Num s) when s >= 0.0 -> Some (int_of_float s, j)
                  | _ -> None)
              | Error _ -> None))
    in
    match parsed with
    | Some _ -> parsed
    | None ->
        quarantine t.ckpt_path;
        Robust.repair c_checkpoint_corrupt
          (Robust.context ~subsystem:"serve.wal" ~operation:"read_checkpoint"
             "corrupt checkpoint file (quarantined); recovering from WAL only");
        None
