(** [hssta serve]: a persistent analysis daemon over the characterized
    design state.

    The paper's flow characterizes a module once and analyzes it many
    times; this module makes that literal across {e process} boundaries:
    a daemon loads the characterized models once — PCA basis, topological
    edge order, packed edge-form slabs, cone index — and then answers a
    stream of analysis requests over a unix-domain socket, one JSON
    object per line in, one per line out (JSONL).

    {1 Protocol}

    Requests are single-line JSON objects with an ["op"] field and an
    optional ["id"] echoed verbatim into the response:

    - [{"op":"load","design":D}] — characterize design [D] (a bundled
      ISCAS85 name or a [.bench] path) and make it current.  Models are
      cached under a content hash of the netlist structure plus the
      characterization config, so re-loading (or swapping back to) a
      previously seen design skips characterization entirely.
    - [{"op":"swap","design":D}] — module swap: same machinery as [load]
      (cache-aware), spelled separately so request streams read as the
      ECO flow they encode.
    - [{"op":"quantile","yield":Y,"scenario":S?}] — design-delay mean,
      sigma, and the clock achieving yield [Y] (default 0.99).  With a
      scenario object (same schema as {!Ssta_batch.Batch.parse_scenarios}
      entries) the query is evaluated through the batch engine over the
      {e pristine} design; without, it reads the current (possibly
      what-if-edited) arrival state.
    - [{"op":"report","clock":C?,"yield":Y?}] — per-output arrival mean,
      sigma and yield-clock; with [clock], per-output slack against it.
    - [{"op":"paths","output":V?,"k":K?}] — top-[K] statistically
      critical paths into output [V] (default: the worst output).
    - [{"op":"whatif","edits":E,"mode":M?,"commit":B?}] — ECO-style
      edge-delay edit.  [E] is an array of
      [{"edge":e,"scale":a|"add":d|"set":v}] objects; [M] is
      ["incremental"] (default: dirty-cone re-propagation via
      {!Hier_ssta.Propagate.forward_update_into}) or ["full"] (a full
      re-sweep — the reference the incremental path is bit-identical
      to).  Uncommitted edits ([B] false, the default) are rolled back
      after the response, leaving the session state untouched.
    - [{"op":"revert"}] — drop committed edits, restore pristine forms.
    - [{"op":"batch","scenarios":A}] — evaluate a scenario array through
      {!Ssta_batch.Batch.run} over the shared base.
    - [{"op":"stats"}], [{"op":"ping"}], [{"op":"shutdown"}].

    Responses are [{"id":…,"ok":true,…}] or
    [{"id":…,"ok":false,"error":{"subsystem":…,"operation":…,"detail":…,
    "indices":[…],"values":[…]}}] — the {!Ssta_robust.Robust.context} of
    the failure.  A malformed or faulty request degrades per the robust
    policy ([Strict]: the structured error becomes that request's error
    response; [Repair]: defective fields fall back to defaults where the
    operation defines them) — it never terminates the daemon.

    {1 Determinism}

    Every response is serialized with round-trip float precision
    ({!Ssta_json.Json.to_string}), and every analysis underneath is
    bit-identical across domain counts, so a replayed request corpus
    produces a byte-identical response stream at any [PAR_DOMAINS] — the
    CI serve-smoke job pins streams at 1 vs 4 domains with [cmp]. *)

type t
(** Engine state: the model cache plus the current session (design,
    current edge forms, resident arrival sweep, lazy batch base). *)

val create :
  ?cache_dir:string -> ?max_queue:int -> ?checkpoint_every:int -> unit -> t
(** [cache_dir] makes the engine {e durable}: characterized models spill
    to [cache_dir/models/<hash>.model] (checksummed, written via temp
    file + atomic rename, lazily re-loaded on [load]/[swap] across
    process restarts), committed state changes ([load], [swap] as load,
    committed [whatif], [revert]) append to a write-ahead log
    [cache_dir/wal.jsonl] {e before} the response is sent, and every
    [checkpoint_every] WAL records (default 64) the session state is
    checkpointed to [cache_dir/checkpoint] and the WAL truncated.
    [create] replays checkpoint + WAL, so an engine restarted after a
    crash answers the remaining request stream byte-identically to a
    process that never died; a WAL record torn by the crash is truncated
    away (counter [robust.wal_truncated]; [Strict] raises instead), and
    a corrupt cache entry or checkpoint is quarantined to [*.corrupt]
    and recomputed ([robust.cache_corrupt] / [robust.checkpoint_corrupt]).

    [max_queue] (default 256) bounds each pipelined request group:
    requests beyond it are shed unprocessed with an
    [{"ok":false,"overloaded":true,"retry_after_ms":…}] response. *)

val set_max_queue : t -> int -> unit

val stopped : t -> bool
(** Whether a [shutdown] request has been processed. *)

val cache_size : t -> int
(** Characterized models currently resident (distinct content hashes). *)

val handle_line : t -> string -> string
(** Process one request line, returning the response line (no trailing
    newline).  Catches {!Ssta_robust.Robust.Error} and unexpected
    exceptions into error responses — the caller's loop never dies. *)

val handle_lines : t -> string list -> string list
(** Process a pipelined group of request lines, in order.  Maximal runs
    of consecutive [quantile]-with-scenario requests are recomposed into
    one {!Ssta_batch.Batch.run} (deduplicating identical scenarios), so
    compatible queries share a single forward sweep; because the batch
    engine is bit-identical to independent runs, the responses are
    byte-identical to [List.map (handle_line t)] — grouping only trades
    wall clock.  [test/test_serve.ml] pins that equivalence. *)

val run_daemon : ?socket:string -> ?preload:string list -> t -> unit
(** Bind a unix-domain socket at [socket] (default ["hssta.sock"];
    a stale socket file is replaced), optionally preload designs into
    the model cache, and serve connections until a [shutdown] request.
    One connection is served at a time; within a connection, request
    lines that arrive together are handed to {!handle_lines} as one
    group (gauge [serve.queue_depth] records the deepest group).  The
    socket file is removed on exit. *)

val replay :
  ?pipeline:bool ->
  ?retry:int ->
  ?retry_seed:int ->
  socket:string ->
  requests:string list ->
  unit ->
  string list * float array * float
(** Client side: connect to [socket] (retrying while the daemon boots)
    and replay [requests].  Sequential mode (default) writes one request
    and waits for its response — the returned array holds one latency in
    seconds per request.  [~pipeline:true] writes the whole corpus, then
    half-closes and drains — per-request latencies are not defined
    (the array is empty) but batching on the daemon side is exercised.
    [~retry:n] (sequential mode) resends a request shed with an
    [overloaded] response up to [n] times, sleeping the daemon's
    [retry_after_ms] hint scaled by seeded ([retry_seed]) exponential
    backoff with jitter between attempts; the recorded latency spans all
    attempts.  Returns (responses, latencies, total wall seconds). *)

(** {1 Raw client plumbing}

    Exposed for the chaos harness ({!Ssta_robust_inject.Chaos}), which
    needs a sequential client that survives the daemon dying
    mid-request. *)

type reader

val connect_retry : string -> Unix.file_descr
(** Connect to a unix socket path, retrying while the daemon boots
    (15 s budget). *)

val reader : Unix.file_descr -> reader
val read_line : reader -> string option
val write_all : Unix.file_descr -> string -> unit
