module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Build = Ssta_timing.Build
module N = Ssta_circuit.Netlist
module Propagate = Hier_ssta.Propagate
module Path_report = Hier_ssta.Path_report
module Yield = Hier_ssta.Yield
module Batch = Ssta_batch.Batch
module Json = Ssta_json.Json
module Robust = Ssta_robust.Robust
module Deadline = Ssta_robust.Deadline
module Crash = Ssta_robust.Crash
module Rng = Ssta_gauss.Rng
module Obs = Ssta_obs.Obs
module FDesign = Ssta_frontend.Design
module FSdc = Ssta_frontend.Sdc

(* ------------------------------------------------------------------ *)
(* Observability handles                                              *)

let c_requests = Obs.counter "serve.requests"
let c_errors = Obs.counter "serve.request_errors"
let c_cache_hits = Obs.counter "serve.cache_hits"
let c_cache_misses = Obs.counter "serve.cache_misses"
let c_batched = Obs.counter "serve.batched_requests"
let c_shared = Obs.counter "serve.shared_sweeps"
let c_whatif_incr = Obs.counter "serve.whatif_incremental"
let c_whatif_full = Obs.counter "serve.whatif_full"
let g_queue_depth = Obs.gauge "serve.queue_depth"
let c_disk_hits = Obs.counter "serve.cache_disk_hits"
let c_wal_records = Obs.counter "serve.wal_records"
let c_recoveries = Obs.counter "serve.recoveries"
let c_shed = Obs.counter "serve.shed"
let c_timeouts = Obs.counter "serve.timeouts"
let g_wal_bytes = Obs.gauge "serve.wal_bytes"
let c_protocol_repairs = Robust.counter "robust.protocol_repairs"

let protocol_repair ~operation ?indices ?values detail =
  Robust.repair c_protocol_repairs
    (Robust.context ~subsystem:"serve" ~operation ?indices ?values detail)

(* ------------------------------------------------------------------ *)
(* Engine state                                                       *)

(* How the current session was created - recorded so the WAL and the
   checkpoint can restore it after a crash.  [Files] keeps the paths the
   client sent; replaying a load_files record re-reads those files, which
   is the documented recovery contract for external designs. *)
type origin =
  | Bundled of string
  | Files of { verilog : string; liberty : string; sdc : string option }

type session = {
  design : string;
  origin : origin;
  build : Build.t;
  forms : Form.t array;  (** current edge forms (what-if edits applied) *)
  fbuf : Form_buf.t;  (** the same forms, packed for the sweep kernels *)
  ws : Propagate.workspace;  (** holds the current completed arrival sweep *)
  dirty : Bytes.t;  (** per-vertex dirty mask scratch *)
  mutable base : Batch.base option;  (** lazy, over the pristine forms *)
  mutable edited : bool;  (** committed edits pending a [revert] *)
  committed : (int, Form.t) Hashtbl.t;
      (** committed edge edits (absolute forms) - the checkpoint's diff
          against the pristine build *)
  sdc : FSdc.t option;
      (** constraints of a [load_files] design; the report op defaults
          its reference clock to the SDC period *)
}

type t = {
  cache : (string, Build.t) Hashtbl.t;  (** content hash -> model *)
  store : Store.t option;  (** durable cache + WAL, None without --cache-dir *)
  mutable max_queue : int;  (** pending-request bound before shedding *)
  mutable session : session option;
  mutable stop : bool;
  mutable pending_wal : (string * Json.t) list option;
      (** armed by a state-changing op: the kind-specific WAL record
          fields; handle_parsed adds the request digest and response and
          appends after the response is built, before it is sent *)
  mutable pending_spill : (string * Build.t) option;
      (** freshly characterized model awaiting its disk spill (deferred to
          after the WAL append so crash recovery replays observably) *)
  mutable last_commit : (string * string) option;
      (** request digest + response of the last WAL-logged request *)
  mutable dedup : (string * string) option;
      (** set by recovery: a re-sent logged-but-unanswered request gets
          its logged response back instead of being applied twice *)
  mutable ewma_ms : float;  (** smoothed per-request service time *)
}

let make ?cache_dir ?(max_queue = 256) ?(checkpoint_every = 64) () =
  {
    cache = Hashtbl.create 7;
    store = Option.map (Store.open_store ~checkpoint_every) cache_dir;
    max_queue;
    session = None;
    stop = false;
    pending_wal = None;
    pending_spill = None;
    last_commit = None;
    dedup = None;
    ewma_ms = 1.0;
  }

let stopped t = t.stop
let cache_size t = Hashtbl.length t.cache
let set_max_queue t n = t.max_queue <- max 1 n

(* ------------------------------------------------------------------ *)
(* Content-hashed model cache                                         *)

(* The cache key covers exactly what characterization consumes: the
   netlist structure (inputs, per-gate cell + fanins, outputs — NOT the
   netlist's display name), the cell delay parameters (an external .lib
   may redefine a bundled cell name with different numbers) and a tag
   for the characterization config.  Two designs with identical
   structure share one characterized model; renaming a design never
   invalidates it. *)
let config_tag = "characterize:v2:default"

let digest_of_netlist nl =
  let b = Buffer.create 4096 in
  Buffer.add_string b config_tag;
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int nl.N.n_pi);
  Array.iter
    (fun (g : N.gate) ->
      let c = g.N.cell in
      Buffer.add_char b '|';
      Buffer.add_string b c.Ssta_cell.Cell.name;
      Buffer.add_char b '@';
      Buffer.add_string b (Printf.sprintf "%h" c.Ssta_cell.Cell.d0);
      Array.iter
        (fun s -> Buffer.add_string b (Printf.sprintf ";%h" s))
        c.Ssta_cell.Cell.sens;
      Buffer.add_string b (Printf.sprintf ";%h" c.Ssta_cell.Cell.load_sens);
      Array.iter
        (fun f ->
          Buffer.add_char b ',';
          Buffer.add_string b (string_of_int f))
        g.N.fanins)
    nl.N.gates;
  Buffer.add_char b '>';
  Array.iter
    (fun o ->
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int o))
    nl.N.outputs;
  Digest.to_hex (Digest.string (Buffer.contents b))

let netlist_of_name name =
  if Filename.check_suffix name ".bench" && Sys.file_exists name then
    try Ssta_circuit.Bench_format.load ~path:name
    with Failure m ->
      Robust.fail ~subsystem:"serve" ~operation:"load" ("bad .bench file: " ^ m)
  else
    try Ssta_circuit.Iscas.build name
    with Invalid_argument m ->
      Robust.fail ~subsystem:"serve" ~operation:"load"
        ("unknown design (not bundled, not a .bench path): " ^ m)

(* Disk entries hold a marshaled Build.t (plain records and float/int
   arrays all the way down).  Store.load_model has already verified the
   length+checksum trailer, so Marshal only ever sees bytes that were
   written whole; a version-skewed payload that still unmarshals wrong
   is caught by the same quarantine path. *)
let model_of_payload ~digest payload =
  match (Marshal.from_string payload 0 : Build.t) with
  | b -> Some b
  | exception _ ->
      Robust.repair Store.c_cache_corrupt
        (Robust.context ~subsystem:"serve.cache" ~operation:"unmarshal"
           (Printf.sprintf "model cache entry %s.model does not unmarshal"
              digest));
      None

(* The freshly characterized model is *not* spilled here: the spill is
   deferred (t.pending_spill) until after the request's WAL record is
   durable, so the crash harness sees a consistent order - a torn WAL
   append implies the spill never happened either, and a re-sent load
   recomputes exactly like the uninterrupted run did. Recovery replay
   and preload flush the spill immediately instead. *)
let characterize_cached t nl =
  let key = digest_of_netlist nl in
  match Hashtbl.find_opt t.cache key with
  | Some b ->
      Obs.incr c_cache_hits;
      (b, true)
  | None -> (
      let from_disk =
        match t.store with
        | None -> None
        | Some st -> (
            match Store.load_model st ~digest:key with
            | None -> None
            | Some payload -> model_of_payload ~digest:key payload)
      in
      match from_disk with
      | Some b ->
          Obs.incr c_cache_hits;
          Obs.incr c_disk_hits;
          Hashtbl.add t.cache key b;
          (b, true)
      | None ->
          Obs.incr c_cache_misses;
          let b =
            Obs.with_span "serve.characterize" (fun () -> Build.characterize nl)
          in
          Hashtbl.add t.cache key b;
          if t.store <> None then t.pending_spill <- Some (key, b);
          (b, false))

let flush_spill t =
  match (t.pending_spill, t.store) with
  | Some (digest, b), Some st ->
      t.pending_spill <- None;
      ignore (Store.spill_model st ~digest (Marshal.to_string b []))
  | _ -> t.pending_spill <- None

let fresh_session ?sdc ~origin ~design (build : Build.t) =
  let g = build.Build.graph in
  let forms = Array.copy build.Build.forms in
  let dims =
    if Array.length forms > 0 then Form.dims forms.(0)
    else { Form.n_globals = 0; n_pcs = 0 }
  in
  let fbuf = Form_buf.of_forms dims forms in
  let ws = Propagate.create_workspace () in
  Propagate.forward_into ws g ~forms:fbuf ~sources:g.Tgraph.inputs;
  {
    design;
    origin;
    build;
    forms;
    fbuf;
    ws;
    dirty = Bytes.create (Tgraph.n_vertices g);
    base = None;
    edited = false;
    committed = Hashtbl.create 7;
    sdc;
  }

let load_design t name =
  let nl = netlist_of_name name in
  let build, cached = characterize_cached t nl in
  t.session <- Some (fresh_session ~origin:(Bundled name) ~design:name build);
  cached

let session_exn t ~operation =
  match t.session with
  | Some s -> s
  | None ->
      Robust.fail ~subsystem:"serve" ~operation
        "no design loaded (send {\"op\":\"load\",\"design\":...} first)"

let batch_base s =
  match s.base with
  | Some b -> b
  | None ->
      let b = Batch.prepare s.build in
      s.base <- Some b;
      b

(* ------------------------------------------------------------------ *)
(* Analysis helpers                                                   *)

(* Design delay of the current arrival state: statistical max over the
   outputs the sweep reached. *)
let design_delay_form s =
  let g = s.build.Build.graph in
  Array.fold_left
    (fun acc o ->
      match (acc, Propagate.ws_form s.ws o) with
      | None, f -> f
      | acc, None -> acc
      | Some a, Some b -> Some (Form.max2 a b))
    None g.Tgraph.outputs

let delay_fields f ~yield =
  [
    ("mean", Json.Num f.Form.mean);
    ("sigma", Json.Num (Form.std f));
    ("yield", Json.Num yield);
    ("clock", Json.Num (Yield.clock_for_yield f ~yield));
  ]

(* ------------------------------------------------------------------ *)
(* Request parsing helpers (robust: defects repair to defaults or, in
   strict policy, raise the structured error for this request only)    *)

let req_num ~operation ~default key j =
  match Json.num_field ~default key j with
  | Ok v -> v
  | Error msg ->
      protocol_repair ~operation msg;
      default

let req_str ~operation ~default key j =
  match Json.str_field ~default key j with
  | Ok v -> v
  | Error msg ->
      protocol_repair ~operation msg;
      default

let req_bool ~operation ~default key j =
  match Json.bool_field ~default key j with
  | Ok v -> v
  | Error msg ->
      protocol_repair ~operation msg;
      default

let req_yield ~operation j =
  let y = req_num ~operation ~default:0.99 "yield" j in
  if y > 0.0 && y < 1.0 then y
  else begin
    protocol_repair ~operation ~values:[ y ] "yield must lie in (0, 1)";
    0.99
  end

(* ------------------------------------------------------------------ *)
(* Operations                                                         *)

let op_load t ~op j =
  let name =
    match Json.str_field "design" j with
    | Ok v -> v
    | Error msg -> Robust.fail ~subsystem:"serve" ~operation:op msg
  in
  let cached = load_design t name in
  let s = session_exn t ~operation:op in
  let g = s.build.Build.graph in
  t.pending_wal <-
    Some [ ("kind", Json.Str "load"); ("design", Json.Str name) ];
  [
    ("design", Json.Str name);
    ("cached", Json.Bool cached);
    ("n_vertices", Json.Num (float_of_int (Tgraph.n_vertices g)));
    ("n_edges", Json.Num (float_of_int (Tgraph.n_edges g)));
    ("n_outputs", Json.Num (float_of_int (Array.length g.Tgraph.outputs)));
  ]

(* External-design load: parse + lower the Verilog/.lib/SDC trio, then
   enter the same cached-characterization path as bundled designs (the
   digest covers structure and cell numbers, so a re-read of the same
   files is a cache hit). *)
let do_load_files t ~verilog ~liberty ~sdc:sdc_path =
  let d = FDesign.load_files ~verilog ~liberty ?sdc:sdc_path () in
  let low = FDesign.lower d in
  let nl = low.FDesign.netlist in
  let build, cached = characterize_cached t nl in
  let sdc = d.FDesign.sdc in
  let origin = Files { verilog; liberty; sdc = sdc_path } in
  t.session <- Some (fresh_session ~sdc ~origin ~design:nl.N.name build);
  (nl, build, sdc, cached)

let op_load_files t j =
  let operation = "load_files" in
  let file key =
    match Json.str_field key j with
    | Ok v -> v
    | Error msg -> Robust.fail ~subsystem:"serve" ~operation msg
  in
  let verilog = file "verilog" and liberty = file "liberty" in
  let sdc_path =
    match Json.find "sdc" j with
    | Some (Json.Str p) -> Some p
    | None | Some Json.Null -> None
    | Some _ ->
        protocol_repair ~operation "sdc must be a path string; ignored";
        None
  in
  let nl, build, sdc, cached = do_load_files t ~verilog ~liberty ~sdc:sdc_path in
  t.pending_wal <-
    Some
      ([ ("kind", Json.Str "load_files");
         ("verilog", Json.Str verilog);
         ("liberty", Json.Str liberty);
       ]
      @ match sdc_path with None -> [] | Some p -> [ ("sdc", Json.Str p) ]);
  let g = build.Build.graph in
  [
    ("design", Json.Str nl.N.name);
    ("cached", Json.Bool cached);
    ("n_vertices", Json.Num (float_of_int (Tgraph.n_vertices g)));
    ("n_edges", Json.Num (float_of_int (Tgraph.n_edges g)));
    ("n_outputs", Json.Num (float_of_int (Array.length g.Tgraph.outputs)));
    ("clocks", Json.Num (float_of_int (List.length sdc.FSdc.clocks)));
    ( "false_paths",
      Json.Num (float_of_int (List.length sdc.FSdc.false_paths)) );
  ]
  @
  match FSdc.clock_period sdc with
  | Some p -> [ ("period", Json.Num p) ]
  | None -> []

let scenario_result_fields (r : Batch.result) ~yield =
  match r.Batch.delay with
  | None ->
      Robust.fail ~subsystem:"serve" ~operation:"quantile"
        "no output reachable under this scenario"
  | Some f -> ("label", Json.Str r.Batch.scenario.Batch.label) :: delay_fields f ~yield

let op_quantile t j =
  let operation = "quantile" in
  let s = session_exn t ~operation in
  let yield = req_yield ~operation j in
  match Json.find "scenario" j with
  | None | Some Json.Null -> (
      match design_delay_form s with
      | None ->
          Robust.fail ~subsystem:"serve" ~operation "no output reachable"
      | Some f -> delay_fields f ~yield)
  | Some sj ->
      let sc = Batch.scenario_of_json 0 sj in
      let r = Batch.run_one (batch_base s) sc in
      scenario_result_fields r ~yield

let op_report t j =
  let operation = "report" in
  let s = session_exn t ~operation in
  let yield = req_yield ~operation j in
  let clock =
    match Json.find "clock" j with
    | Some (Json.Num c) -> Some c
    | None | Some Json.Null ->
        (* A load_files session carries constraints: default the slack
           reference to the SDC clock period. *)
        Option.bind s.sdc FSdc.clock_period
    | Some _ ->
        protocol_repair ~operation "clock must be a number";
        None
  in
  let g = s.build.Build.graph in
  let outs =
    Array.to_list g.Tgraph.outputs
    |> List.map (fun o ->
           let base = [ ("vertex", Json.Num (float_of_int o)) ] in
           match Propagate.ws_form s.ws o with
           | None -> Json.Obj (base @ [ ("reachable", Json.Bool false) ])
           | Some f ->
               let q = Yield.clock_for_yield f ~yield in
               let slack =
                 match clock with
                 | None -> []
                 | Some c -> [ ("slack", Json.Num (c -. q)) ]
               in
               Json.Obj
                 (base
                 @ [
                     ("mean", Json.Num f.Form.mean);
                     ("sigma", Json.Num (Form.std f));
                     ("clock", Json.Num q);
                   ]
                 @ slack))
  in
  let clock_field =
    match clock with None -> [] | Some c -> [ ("ref_clock", Json.Num c) ]
  in
  (("yield", Json.Num yield) :: clock_field) @ [ ("outputs", Json.Arr outs) ]

let op_paths t j =
  let operation = "paths" in
  let s = session_exn t ~operation in
  let g = s.build.Build.graph in
  let k =
    let k = int_of_float (req_num ~operation ~default:3.0 "k" j) in
    if k >= 1 then k
    else begin
      protocol_repair ~operation ~indices:[ k ] "k must be >= 1";
      3
    end
  in
  let arrival =
    Array.init (Tgraph.n_vertices g) (fun v -> Propagate.ws_form s.ws v)
  in
  let endpoint =
    match Json.find "output" j with
    | Some (Json.Num v) ->
        let v = int_of_float v in
        if Array.exists (fun o -> o = v) g.Tgraph.outputs then v
        else
          Robust.fail ~subsystem:"serve" ~operation ~indices:[ v ]
            "output is not a primary-output vertex of the current design"
    | None | Some Json.Null ->
        (* Default: the worst output by mean arrival. *)
        let best = ref (-1) and best_mu = ref neg_infinity in
        Array.iter
          (fun o ->
            match arrival.(o) with
            | Some f when f.Form.mean > !best_mu ->
                best := o;
                best_mu := f.Form.mean
            | _ -> ())
          g.Tgraph.outputs;
        if !best < 0 then
          Robust.fail ~subsystem:"serve" ~operation "no output reachable"
        else !best
    | Some _ ->
        Robust.fail ~subsystem:"serve" ~operation
          "output must be a vertex number"
  in
  let paths =
    Path_report.top_paths g ~forms:s.forms ~arrival ~endpoint ~k
  in
  let path_json (p : Path_report.path) =
    Json.Obj
      [
        ( "vertices",
          Json.Arr
            (List.map (fun v -> Json.Num (float_of_int v)) p.Path_report.vertices)
        );
        ( "edges",
          Json.Arr
            (List.map (fun e -> Json.Num (float_of_int e)) p.Path_report.edges)
        );
        ("mean", Json.Num p.Path_report.delay.Form.mean);
        ("sigma", Json.Num (Form.std p.Path_report.delay));
        ("criticality", Json.Num p.Path_report.criticality);
      ]
  in
  [
    ("output", Json.Num (float_of_int endpoint));
    ("paths", Json.Arr (List.map path_json paths));
  ]

(* ---- what-if -------------------------------------------------------- *)

type edit = { edge : int; prev : Form.t; next : Form.t }

(* Canonical forms round-trip through JSON exactly: Json prints floats
   with %.17g, which reconstructs every binary64 bit-for-bit, so a WAL
   replay reproduces the committed forms - and therefore the sweep -
   bit-identically. *)
let form_json (f : Form.t) =
  let arr a = Json.Arr (Array.to_list (Array.map (fun x -> Json.Num x) a)) in
  Json.Obj
    [
      ("mean", Json.Num f.Form.mean);
      ("rand", Json.Num f.Form.rand);
      ("g", arr f.Form.globals);
      ("p", arr f.Form.pcs);
    ]

let form_of_json ~operation j =
  let num key =
    match Json.find key j with
    | Some (Json.Num v) -> v
    | _ ->
        Robust.fail ~subsystem:"serve.wal" ~operation
          (Printf.sprintf "logged form has no numeric %S field" key)
  in
  let arr key =
    match Json.find key j with
    | Some (Json.Arr l) ->
        Array.of_list
          (List.map
             (function
               | Json.Num v -> v
               | _ ->
                   Robust.fail ~subsystem:"serve.wal" ~operation
                     (Printf.sprintf "logged form %S array is not numeric" key))
             l)
    | _ ->
        Robust.fail ~subsystem:"serve.wal" ~operation
          (Printf.sprintf "logged form has no %S array" key)
  in
  Form.make ~mean:(num "mean") ~globals:(arr "g") ~pcs:(arr "p")
    ~rand:(num "rand")

let parse_edit ~operation g forms idx j =
  match j with
  | Json.Obj _ ->
      let edge =
        match Json.num_field "edge" j with
        | Ok v -> int_of_float v
        | Error msg ->
            Robust.fail ~subsystem:"serve" ~operation ~indices:[ idx ] msg
      in
      if edge < 0 || edge >= Tgraph.n_edges g then
        Robust.fail ~subsystem:"serve" ~operation ~indices:[ idx; edge ]
          "edit edge index out of range";
      let prev : Form.t = forms.(edge) in
      let next =
        match (Json.find "scale" j, Json.find "add" j, Json.find "set" j) with
        | Some (Json.Num a), None, None -> Form.scale a prev
        | None, Some (Json.Num d), None -> Form.add_const prev d
        | None, None, Some (Json.Num v) -> { prev with Form.mean = v }
        | None, None, None ->
            protocol_repair ~operation ~indices:[ idx; edge ]
              "edit has no scale/add/set field; treating as identity";
            prev
        | _ ->
            Robust.fail ~subsystem:"serve" ~operation ~indices:[ idx; edge ]
              "edit must carry exactly one numeric scale/add/set field"
      in
      { edge; prev; next }
  | _ ->
      Robust.fail ~subsystem:"serve" ~operation ~indices:[ idx ]
        "edits must be objects"

(* Apply [edits] to the session's packed forms and re-time.  Incremental
   mode recomputes only the fanout closure of the edited edges' sinks
   (Tgraph.fanout_closure_into + Propagate.forward_update_into) and is
   bit-identical to the full re-sweep; mode="full" runs the reference
   full sweep.  Returns (vertices recomputed, fanin edges visited). *)
let apply_edits s ~incremental edits =
  let g = s.build.Build.graph in
  List.iter
    (fun e ->
      s.forms.(e.edge) <- e.next;
      Form_buf.set s.fbuf e.edge e.next)
    edits;
  if incremental then begin
    let seeds =
      Array.of_list (List.map (fun e -> g.Tgraph.dst.(e.edge)) edits)
    in
    let _marked = Tgraph.fanout_closure_into g ~seeds ~into:s.dirty in
    Propagate.forward_update_into s.ws g ~forms:s.fbuf
      ~sources:g.Tgraph.inputs ~dirty:s.dirty
  end
  else begin
    Propagate.forward_into s.ws g ~forms:s.fbuf ~sources:g.Tgraph.inputs;
    (Tgraph.n_vertices g, Tgraph.n_edges g)
  end

let op_whatif t j =
  let operation = "whatif" in
  let s = session_exn t ~operation in
  let yield = req_yield ~operation j in
  let commit = req_bool ~operation ~default:false "commit" j in
  let incremental =
    match req_str ~operation ~default:"incremental" "mode" j with
    | "incremental" -> true
    | "full" -> false
    | m ->
        protocol_repair ~operation
          (Printf.sprintf "mode %S is not incremental/full" m);
        true
  in
  let edits =
    match Json.find "edits" j with
    | Some (Json.Arr items) ->
        List.mapi (parse_edit ~operation s.build.Build.graph s.forms) items
    | _ ->
        Robust.fail ~subsystem:"serve" ~operation
          "whatif requires an \"edits\" array"
  in
  if edits = [] then
    Robust.fail ~subsystem:"serve" ~operation "whatif edits array is empty";
  Obs.incr (if incremental then c_whatif_incr else c_whatif_full);
  let n_dirty, n_visited = apply_edits s ~incremental edits in
  let reply =
    match design_delay_form s with
    | None -> Robust.fail ~subsystem:"serve" ~operation "no output reachable"
    | Some f ->
        delay_fields f ~yield
        @ [
            ("mode", Json.Str (if incremental then "incremental" else "full"));
            ("edits", Json.Num (float_of_int (List.length edits)));
            ("dirty_vertices", Json.Num (float_of_int n_dirty));
            ("visited_edges", Json.Num (float_of_int n_visited));
            ("committed", Json.Bool commit);
          ]
  in
  if commit then begin
    s.edited <- true;
    (* The committed diff is tracked as absolute forms: the WAL record
       and the checkpoint both replay [set this edge to exactly these
       coefficients], so recovery is independent of the edit operator
       (scale/add/set) that produced the form. *)
    List.iter (fun e -> Hashtbl.replace s.committed e.edge e.next) edits;
    t.pending_wal <-
      Some
        [
          ("kind", Json.Str "whatif");
          ( "edits",
            Json.Arr
              (List.map
                 (fun e ->
                   Json.Obj
                     [
                       ("edge", Json.Num (float_of_int e.edge));
                       ("form", form_json e.next);
                     ])
                 edits) );
        ]
  end
  else begin
    (* Roll back: restoring the previous forms is just another edit with
       the same dirty set, so the incremental update restores the sweep
       bit-identically. *)
    let undo = List.map (fun e -> { e with prev = e.next; next = e.prev }) edits in
    ignore (apply_edits s ~incremental:true undo)
  end;
  reply

let op_revert t =
  let s = session_exn t ~operation:"revert" in
  let g = s.build.Build.graph in
  Array.iteri
    (fun i f ->
      s.forms.(i) <- f;
      Form_buf.set s.fbuf i f)
    s.build.Build.forms;
  Propagate.forward_into s.ws g ~forms:s.fbuf ~sources:g.Tgraph.inputs;
  s.edited <- false;
  Hashtbl.reset s.committed;
  t.pending_wal <- Some [ ("kind", Json.Str "revert") ];
  [ ("design", Json.Str s.design); ("reverted", Json.Bool true) ]

let op_batch t j =
  let operation = "batch" in
  let s = session_exn t ~operation in
  let yield = req_yield ~operation j in
  let scenarios =
    match Json.find "scenarios" j with
    | Some sj -> Batch.scenarios_of_json sj
    | None ->
        Robust.fail ~subsystem:"serve" ~operation
          "batch requires a \"scenarios\" array"
  in
  let results = Batch.run (batch_base s) scenarios in
  let rows =
    Array.to_list results
    |> List.map (fun (r : Batch.result) ->
           Json.Obj (scenario_result_fields r ~yield))
  in
  [
    ("yield", Json.Num yield);
    ("scenarios", Json.Num (float_of_int (Array.length scenarios)));
    ("results", Json.Arr rows);
  ]

let op_stats t =
  let session_fields =
    match t.session with
    | None -> [ ("design", Json.Null) ]
    | Some s ->
        [
          ("design", Json.Str s.design);
          ("edited", Json.Bool s.edited);
          ( "n_edges",
            Json.Num (float_of_int (Tgraph.n_edges s.build.Build.graph)) );
        ]
  in
  session_fields
  @ [
      ("cache_size", Json.Num (float_of_int (Hashtbl.length t.cache)));
      ("requests", Json.Num (float_of_int (Obs.counter_value c_requests)));
      ("errors", Json.Num (float_of_int (Obs.counter_value c_errors)));
      ("cache_hits", Json.Num (float_of_int (Obs.counter_value c_cache_hits)));
      ( "cache_misses",
        Json.Num (float_of_int (Obs.counter_value c_cache_misses)) );
      ( "batched_requests",
        Json.Num (float_of_int (Obs.counter_value c_batched)) );
      ("shared_sweeps", Json.Num (float_of_int (Obs.counter_value c_shared)));
      ("durable", Json.Bool (t.store <> None));
      ( "cache_disk_hits",
        Json.Num (float_of_int (Obs.counter_value c_disk_hits)) );
      ("wal_records", Json.Num (float_of_int (Obs.counter_value c_wal_records)));
      ( "wal_bytes",
        Json.Num
          (float_of_int
             (match t.store with
             | Some st -> st.Store.wal_bytes
             | None -> 0)) );
      ("recoveries", Json.Num (float_of_int (Obs.counter_value c_recoveries)));
      ("shed", Json.Num (float_of_int (Obs.counter_value c_shed)));
      ("timeouts", Json.Num (float_of_int (Obs.counter_value c_timeouts)));
      ("max_queue", Json.Num (float_of_int t.max_queue));
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)

let error_json (c : Robust.context) =
  Json.Obj
    ([
      ("subsystem", Json.Str c.Robust.subsystem);
      ("operation", Json.Str c.Robust.operation);
      ("detail", Json.Str c.Robust.detail);
      ( "indices",
        Json.Arr (List.map (fun i -> Json.Num (float_of_int i)) c.Robust.indices)
      );
      ("values", Json.Arr (List.map (fun v -> Json.Num v) c.Robust.values));
    ]
    @
    match c.Robust.pos with
    | None -> []
    | Some p ->
        [
          ("line", Json.Num (float_of_int p.Robust.line));
          ("col", Json.Num (float_of_int p.Robust.col));
        ])

let respond ~id fields = Json.to_string (Json.Obj (("id", id) :: fields))

let respond_error ~id c =
  Obs.incr c_errors;
  respond ~id [ ("ok", Json.Bool false); ("error", error_json c) ]

let request_id j = match Json.find "id" j with Some v -> v | None -> Json.Null

(* ---- durability plumbing ------------------------------------------ *)

(* Flush the full session spec (origin + committed-edit diff) and the
   exactly-once dedup pair into the checkpoint file, then truncate the
   WAL: recovery replay cost is bounded by the checkpoint cadence. *)
let checkpoint t =
  match t.store with
  | None -> ()
  | Some st ->
      let session_field =
        match t.session with
        | None -> Json.Null
        | Some s ->
            let origin_fields =
              match s.origin with
              | Bundled name ->
                  [ ("kind", Json.Str "bundled"); ("design", Json.Str name) ]
              | Files { verilog; liberty; sdc } ->
                  [
                    ("kind", Json.Str "files");
                    ("verilog", Json.Str verilog);
                    ("liberty", Json.Str liberty);
                  ]
                  @ ( match sdc with
                    | None -> []
                    | Some p -> [ ("sdc", Json.Str p) ] )
            in
            let edits =
              Hashtbl.fold (fun e f acc -> (e, f) :: acc) s.committed []
              |> List.sort (fun (a, _) (b, _) -> compare a b)
              |> List.map (fun (e, f) ->
                     Json.Obj
                       [
                         ("edge", Json.Num (float_of_int e));
                         ("form", form_json f);
                       ])
            in
            Json.Obj (origin_fields @ [ ("edits", Json.Arr edits) ])
      in
      let commit_fields =
        match t.last_commit with
        | None -> []
        | Some (req, resp) ->
            [ ("last_req", Json.Str req); ("last_resp", Json.Str resp) ]
      in
      ignore (Store.write_checkpoint st (("session", session_field) :: commit_fields))

(* Write-ahead contract: the record of a state-changing request becomes
   durable after the response is computed but *before* it is sent, so an
   acknowledged edit can never be lost - and an unacknowledged one is
   either absent from the log (the client re-sends, the replay re-applies)
   or present with its response (the dedup pair answers the re-send
   without double-applying). *)
let wal_append_pending t ~raw resp =
  match (t.pending_wal, t.store) with
  | Some fields, Some st ->
      t.pending_wal <- None;
      let digest = Digest.to_hex (Digest.string raw) in
      let fields =
        fields @ [ ("req", Json.Str digest); ("resp", Json.Str resp) ]
      in
      ignore (Store.append st fields);
      t.last_commit <- Some (digest, resp);
      Obs.incr c_wal_records;
      Obs.gauge_max g_wal_bytes st.Store.wal_bytes;
      if st.Store.records_since_ckpt >= st.Store.checkpoint_every then
        checkpoint t
  | _ -> t.pending_wal <- None

let dispatch t op j =
  match op with
  | "load" | "swap" -> op_load t ~op j
  | "load_files" -> op_load_files t j
  | "quantile" -> op_quantile t j
  | "report" -> op_report t j
  | "paths" -> op_paths t j
  | "whatif" -> op_whatif t j
  | "revert" -> op_revert t
  | "batch" -> op_batch t j
  | "stats" -> op_stats t
  | "ping" -> [ ("pong", Json.Bool true) ]
  | "shutdown" ->
      t.stop <- true;
      (* Flush the final checkpoint now, while the state is known-good:
         the daemon's exit path only closes the socket. *)
      checkpoint t;
      [ ("stopping", Json.Bool true) ]
  | other ->
      Robust.fail ~subsystem:"serve" ~operation:"dispatch"
        (Printf.sprintf
           "unknown op %S (load/swap/load_files/quantile/report/paths/\
            whatif/revert/batch/stats/ping/shutdown)"
           other)

let respond_timeout ~id c =
  Obs.incr c_timeouts;
  Obs.incr c_errors;
  respond ~id
    [ ("ok", Json.Bool false); ("timeout", Json.Bool true); ("error", error_json c) ]

let request_deadline_ms j =
  match Json.find "deadline_ms" j with
  | None | Some Json.Null -> None
  | Some (Json.Num v) when v >= 0.0 && Robust.is_finite v -> Some v
  | Some _ ->
      protocol_repair ~operation:"dispatch"
        "deadline_ms must be a non-negative number; ignored";
      None

let handle_parsed ?raw t j =
  let id = request_id j in
  let op = match Json.str_field ~default:"" "op" j with Ok v -> v | Error _ -> "" in
  let raw = match raw with Some r -> r | None -> Json.to_string j in
  t.pending_wal <- None;
  match t.dedup with
  | Some (req_digest, resp)
    when String.equal req_digest (Digest.to_hex (Digest.string raw)) ->
      (* Exactly-once across the crash window: the WAL logged this request
         (with its response) but the dead daemon never answered it, and
         recovery already replayed its effect.  Answer the logged response
         without applying twice.  Relies on clients using unique request
         ids, which make the raw-line digest unique. *)
      t.dedup <- None;
      resp
  | _ -> (
      t.dedup <- None;
      try
        if op = "" then
          Robust.fail ~subsystem:"serve" ~operation:"dispatch"
            "request has no \"op\" field";
        let deadline_ms = request_deadline_ms j in
        let fields =
          Deadline.with_deadline_ms deadline_ms (fun () ->
              Deadline.check ~operation:op;
              Obs.with_span ("serve.op." ^ op) (fun () -> dispatch t op j))
        in
        let resp =
          respond ~id (("ok", Json.Bool true) :: ("op", Json.Str op) :: fields)
        in
        wal_append_pending t ~raw resp;
        flush_spill t;
        resp
      with
      | Robust.Error c when c.Robust.subsystem = "deadline" ->
          t.pending_wal <- None;
          t.pending_spill <- None;
          respond_timeout ~id c
      | Robust.Error c ->
          t.pending_wal <- None;
          t.pending_spill <- None;
          respond_error ~id c
      | e ->
          t.pending_wal <- None;
          t.pending_spill <- None;
          respond_error ~id
            (Robust.context ~subsystem:"serve"
               ~operation:(if op = "" then "dispatch" else op)
               ("unexpected exception: " ^ Printexc.to_string e)))

let handle_line t line =
  Obs.incr c_requests;
  Obs.with_span "serve.request" (fun () ->
      match Json.parse line with
      | Ok j -> handle_parsed ~raw:line t j
      | Error msg -> (
          try
            protocol_repair ~operation:"parse" msg;
            respond_error ~id:Json.Null
              (Robust.context ~subsystem:"serve" ~operation:"parse" msg)
          with Robust.Error c -> respond_error ~id:Json.Null c))

(* ---- recovery ------------------------------------------------------ *)

let edits_of_json ~operation j =
  match Json.find "edits" j with
  | Some (Json.Arr items) ->
      List.map
        (fun ej ->
          let edge =
            match Json.find "edge" ej with
            | Some (Json.Num v) -> int_of_float v
            | _ ->
                Robust.fail ~subsystem:"serve.wal" ~operation
                  "logged edit has no numeric edge field"
          in
          let form =
            match Json.find "form" ej with
            | Some fj -> form_of_json ~operation fj
            | None ->
                Robust.fail ~subsystem:"serve.wal" ~operation
                  "logged edit has no form object"
          in
          (edge, form))
        items
  | _ ->
      Robust.fail ~subsystem:"serve.wal" ~operation "record has no edits array"

(* Replayed commits apply absolute forms through the same incremental
   update path a live commit uses; the incremental sweep is bit-identical
   to the full re-sweep (the pinned lib/serve invariant), so the
   recovered arrival state matches the uninterrupted run's exactly. *)
let apply_absolute_edits t ~operation edits =
  let s = session_exn t ~operation in
  let g = s.build.Build.graph in
  let eds =
    List.map
      (fun (edge, next) ->
        if edge < 0 || edge >= Tgraph.n_edges g then
          Robust.fail ~subsystem:"serve.wal" ~operation ~indices:[ edge ]
            "logged edit edge is out of range for the recovered design";
        { edge; prev = s.forms.(edge); next })
      edits
  in
  if eds <> [] then begin
    ignore (apply_edits s ~incremental:true eds);
    List.iter (fun e -> Hashtbl.replace s.committed e.edge e.next) eds;
    s.edited <- true
  end

let record_dedup t j =
  match (Json.find "req" j, Json.find "resp" j) with
  | Some (Json.Str d), Some (Json.Str r) -> t.last_commit <- Some (d, r)
  | _ -> ()

let apply_record t j =
  let operation = "replay" in
  (match Json.str_field ~default:"" "kind" j with
  | Ok "load" -> (
      match Json.find "design" j with
      | Some (Json.Str name) ->
          ignore (load_design t name);
          flush_spill t
      | _ ->
          Robust.fail ~subsystem:"serve.wal" ~operation
            "load record has no design field")
  | Ok "load_files" -> (
      let str key =
        match Json.find key j with Some (Json.Str s) -> Some s | _ -> None
      in
      match (str "verilog", str "liberty") with
      | Some verilog, Some liberty ->
          ignore (do_load_files t ~verilog ~liberty ~sdc:(str "sdc"));
          flush_spill t
      | _ ->
          Robust.fail ~subsystem:"serve.wal" ~operation
            "load_files record is missing verilog/liberty paths")
  | Ok "whatif" -> apply_absolute_edits t ~operation (edits_of_json ~operation j)
  | Ok "revert" ->
      if t.session <> None then begin
        ignore (op_revert t);
        t.pending_wal <- None
      end
  | Ok k ->
      Robust.fail ~subsystem:"serve.wal" ~operation
        (Printf.sprintf "unknown WAL record kind %S" k)
  | Error msg -> Robust.fail ~subsystem:"serve.wal" ~operation msg);
  record_dedup t j

let restore_checkpoint t j =
  let operation = "checkpoint" in
  (match Json.find "session" j with
  | None | Some Json.Null -> ()
  | Some sj ->
      let str key =
        match Json.find key sj with Some (Json.Str s) -> Some s | _ -> None
      in
      (match str "kind" with
      | Some "bundled" -> (
          match str "design" with
          | Some name ->
              ignore (load_design t name);
              flush_spill t
          | None ->
              Robust.fail ~subsystem:"serve.wal" ~operation
                "bundled checkpoint has no design field")
      | Some "files" -> (
          match (str "verilog", str "liberty") with
          | Some verilog, Some liberty ->
              ignore (do_load_files t ~verilog ~liberty ~sdc:(str "sdc"));
              flush_spill t
          | _ ->
              Robust.fail ~subsystem:"serve.wal" ~operation
                "files checkpoint is missing verilog/liberty paths")
      | _ ->
          Robust.fail ~subsystem:"serve.wal" ~operation
            "checkpoint session has no recognized kind");
      apply_absolute_edits t ~operation (edits_of_json ~operation sj));
  match (Json.find "last_req" j, Json.find "last_resp" j) with
  | Some (Json.Str d), Some (Json.Str r) -> t.last_commit <- Some (d, r)
  | _ -> ()

(* Startup recovery: restore the checkpointed session, then replay every
   WAL record past the checkpoint sequence number.  Store.replay_wal has
   already truncated the log at the first torn/invalid record (or raised,
   under Strict); a well-framed record that fails to *apply* degrades to
   the prefix state through the same robust policy. *)
let recover t =
  match t.store with
  | None -> ()
  | Some st ->
      let ckpt = Store.read_checkpoint st in
      let records = Store.replay_wal st in
      let ckpt_seq = match ckpt with None -> 0 | Some (seq, _) -> seq in
      let tail = List.filter (fun (seq, _) -> seq > ckpt_seq) records in
      st.Store.wal_seq <- max st.Store.wal_seq ckpt_seq;
      if ckpt <> None || tail <> [] then begin
        Obs.with_span "serve.recover" (fun () ->
            (match ckpt with
            | None -> ()
            | Some (_, j) -> restore_checkpoint t j);
            try List.iter (fun (_, j) -> apply_record t j) tail
            with Robust.Error c -> Robust.repair Store.c_wal_truncated c);
        Obs.incr c_recoveries;
        t.dedup <- t.last_commit
      end

let create ?cache_dir ?max_queue ?checkpoint_every () =
  let t = make ?cache_dir ?max_queue ?checkpoint_every () in
  recover t;
  t

(* ---- pipelined batching ------------------------------------------- *)

(* A request qualifies for sweep sharing when it is a quantile query with
   an explicit scenario: those all evaluate over the pristine batch base,
   so a maximal consecutive run of them is one Batch.run.  Identical
   scenarios are deduplicated (scenario is a plain value record, so
   structural equality is exact). *)
let quantile_scenario j =
  match Json.str_field ~default:"" "op" j with
  | Ok "quantile" -> (
      match Json.find "scenario" j with
      | Some (Json.Obj _ as sj) -> Some sj
      | _ -> None)
  | _ -> None

let handle_quantile_group t group =
  match t.session with
  | None -> List.map (fun (_, j) -> handle_parsed t j) group
  | Some s -> (
      (* Decode every scenario first; a decode failure under strict policy
         fails only that request. *)
      let decoded =
        List.map
          (fun (sj, j) ->
            match Batch.scenario_of_json 0 sj with
            | sc -> (j, Ok sc)
            | exception Robust.Error c -> (j, Error c))
          group
      in
      let scenarios =
        List.filter_map
          (function _, Ok sc -> Some sc | _, Error _ -> None)
          decoded
      in
      let uniq = ref [] in
      List.iter
        (fun sc -> if not (List.mem sc !uniq) then uniq := sc :: !uniq)
        scenarios;
      let uniq = Array.of_list (List.rev !uniq) in
      Obs.add c_batched (List.length group);
      Obs.add c_shared (List.length scenarios - Array.length uniq);
      match Batch.run (batch_base s) uniq with
      | results ->
          let result_for sc =
            let rec find i =
              if i >= Array.length uniq then None
              else if uniq.(i) = sc then Some results.(i)
              else find (i + 1)
            in
            find 0
          in
          List.map
            (fun (j, d) ->
              let id = request_id j in
              match d with
              | Error c -> respond_error ~id c
              | Ok sc -> (
                  Obs.incr c_requests;
                  match result_for sc with
                  | None ->
                      respond_error ~id
                        (Robust.context ~subsystem:"serve"
                           ~operation:"quantile" "batched scenario lost")
                  | Some r -> (
                      try
                        let yield = req_yield ~operation:"quantile" j in
                        respond ~id
                          (("ok", Json.Bool true)
                          :: ("op", Json.Str "quantile")
                          :: scenario_result_fields r ~yield)
                      with Robust.Error c -> respond_error ~id c)))
            decoded
      | exception Robust.Error c ->
          (* The shared run itself failed: every request in the group
             degrades to that structured error. *)
          List.map (fun (j, _) -> respond_error ~id:(request_id j) c) decoded)

(* Load shedding: a structured refusal, not a dropped connection.  The
   retry-after hint is the queue bound times the smoothed per-request
   service time - roughly how long the backlog ahead of a retry needs. *)
let overloaded_response t line =
  Obs.incr c_shed;
  let id =
    match Json.parse line with Ok j -> request_id j | Error _ -> Json.Null
  in
  let retry_after =
    Float.ceil (Float.max 1.0 (float_of_int t.max_queue *. t.ewma_ms))
  in
  respond ~id
    [
      ("ok", Json.Bool false);
      ("overloaded", Json.Bool true);
      ("retry_after_ms", Json.Num retry_after);
      ( "error",
        error_json
          (Robust.context ~subsystem:"serve" ~operation:"admission"
             ~indices:[ t.max_queue ]
             "pending-request queue is full; request shed") );
    ]

let rec take_n n = function
  | [] -> ([], [])
  | l when n <= 0 -> ([], l)
  | x :: tl ->
      let a, b = take_n (n - 1) tl in
      (x :: a, b)

let handle_lines t lines =
  let n = List.length lines in
  Obs.gauge_max g_queue_depth n;
  (* Bounded admission: everything past the queue cap is shed up front
     with a structured overloaded response (responses stay in request
     order - the shed tail is the newest work). *)
  let accepted, shed =
    if n <= t.max_queue then (lines, []) else take_n t.max_queue lines
  in
  let t0 = Unix.gettimeofday () in
  (* Split into maximal runs of batchable quantile requests vs. singles,
     preserving order. *)
  let flush_group acc group =
    match group with
    | [] -> acc
    | g -> List.rev_append (handle_quantile_group t (List.rev g)) acc
  in
  let acc, group =
    List.fold_left
      (fun (acc, group) line ->
        match Json.parse line with
        | Ok j -> (
            match quantile_scenario j with
            | Some sj -> (acc, (sj, j) :: group)
            | None ->
                let acc = flush_group acc group in
                (handle_line t line :: acc, []))
        | Error _ ->
            let acc = flush_group acc group in
            (handle_line t line :: acc, []))
      ([], []) accepted
  in
  let responses = List.rev (flush_group acc group) in
  (match accepted with
  | [] -> ()
  | _ ->
      let per_ms =
        (Unix.gettimeofday () -. t0)
        *. 1000.0
        /. float_of_int (List.length accepted)
      in
      t.ewma_ms <- (0.8 *. t.ewma_ms) +. (0.2 *. per_ms));
  responses @ List.map (overloaded_response t) shed

(* ------------------------------------------------------------------ *)
(* Daemon: unix-domain socket, JSONL framing                          *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Read whatever is available, split into complete lines.  Lines that
   arrive together in one read are handed to [handle_lines] as a group —
   a pipelining client naturally gets sweep sharing, an interactive
   client gets request/response, and because grouping never changes
   response bytes the distinction is invisible in the stream. *)
let serve_connection t fd =
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let extract_lines () =
    let s = Buffer.contents pending in
    let rec split acc start =
      match String.index_from_opt s start '\n' with
      | None ->
          Buffer.clear pending;
          Buffer.add_substring pending s start (String.length s - start);
          List.rev acc
      | Some i -> split (String.sub s start (i - start) :: acc) (i + 1)
    in
    split [] 0
  in
  let eof = ref false in
  while (not !eof) && not t.stop do
    (* EINTR means a SIGTERM/SIGINT drain request arrived mid-read: all
       previously received requests have already been answered (groups
       are handled and written before the next read), so re-checking
       [t.stop] here completes the drain without dropping anything. *)
    let n =
      try Unix.read fd chunk 0 (Bytes.length chunk)
      with Unix.Unix_error (Unix.EINTR, _, _) -> if t.stop then 0 else -1
    in
    if n = 0 then begin
      eof := true;
      (* A final unterminated line still counts as a request. *)
      if Buffer.length pending > 0 then begin
        let line = Buffer.contents pending in
        Buffer.clear pending;
        if String.trim line <> "" then begin
          write_all fd (handle_line t line ^ "\n");
          Crash.tick "request"
        end
      end
    end
    else if n > 0 then begin
      Buffer.add_subbytes pending chunk 0 n;
      let lines =
        extract_lines () |> List.filter (fun l -> String.trim l <> "")
      in
      match lines with
      | [] -> ()
      | lines ->
          let responses = handle_lines t lines in
          write_all fd (String.concat "\n" responses ^ "\n");
          (* The "request" crash point counts *answered* requests: it
             fires only after the response bytes reached the socket. *)
          List.iter (fun _ -> Crash.tick "request") responses
    end
  done

(* The daemon exits 0 on graceful shutdown: either a {"op":"shutdown"}
   request (which flushed a final checkpoint in dispatch) or SIGTERM /
   SIGINT, which set the stop flag, let the in-flight request group
   finish, flush a final checkpoint and close + remove the socket. *)
let run_daemon ?(socket = "hssta.sock") ?(preload = []) t =
  let drain = Sys.Signal_handle (fun _ -> t.stop <- true) in
  (try Sys.set_signal Sys.sigterm drain with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint drain with Invalid_argument _ | Sys_error _ -> ());
  List.iter
    (fun name ->
      let nl = netlist_of_name name in
      ignore (characterize_cached t nl);
      flush_spill t)
    preload;
  if Sys.file_exists socket then Sys.remove socket;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      checkpoint t;
      (match t.store with Some st -> Store.close st | None -> ());
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX socket);
      Unix.listen sock 8;
      while not t.stop do
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | fd, _ ->
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                try serve_connection t fd
                with Unix.Unix_error _ -> (* client went away mid-stream *) ())
      done)

(* ------------------------------------------------------------------ *)
(* Replay client                                                      *)

let connect_retry socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
        ignore (Unix.select [] [] [] 0.05);
        go ()
  in
  go ()

type reader = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }

let rec read_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  | None -> (
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 -> if s = "" then None else (Buffer.clear r.buf; Some s)
      | n ->
          Buffer.add_subbytes r.buf r.chunk 0 n;
          read_line r)

(* [retry] > 0 re-sends a request answered with a structured overloaded
   response up to that many times, sleeping a seeded exponential backoff
   with jitter between attempts: delay_k = hint * 2^k * (0.5 + U[0,1)),
   where hint is the server's retry_after_ms (25 ms when absent).  Only
   meaningful in sequential mode; a pipelined replay sends everything up
   front, so there is nothing left to pace. *)
let replay ?(pipeline = false) ?(retry = 0) ?(retry_seed = 42) ~socket
    ~requests () =
  let fd = connect_retry socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let r = reader fd in
      let t0 = Unix.gettimeofday () in
      if pipeline then begin
        write_all fd (String.concat "\n" requests ^ "\n");
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        let responses = ref [] in
        let rec drain () =
          match read_line r with
          | Some line ->
              responses := line :: !responses;
              drain ()
          | None -> ()
        in
        drain ();
        (List.rev !responses, [||], Unix.gettimeofday () -. t0)
      end
      else begin
        let rng = Rng.create ~seed:retry_seed in
        let lat = Array.make (List.length requests) 0.0 in
        let overload_hint resp =
          match Json.parse resp with
          | Error _ -> None
          | Ok j -> (
              match Json.find "overloaded" j with
              | Some (Json.Bool true) -> (
                  match Json.find "retry_after_ms" j with
                  | Some (Json.Num ms) when ms > 0.0 -> Some ms
                  | _ -> Some 25.0)
              | _ -> None)
        in
        let responses =
          List.mapi
            (fun i req ->
              let s = Unix.gettimeofday () in
              let rec attempt k =
                write_all fd (req ^ "\n");
                let resp =
                  match read_line r with
                  | Some line -> line
                  | None ->
                      Robust.fail ~subsystem:"serve" ~operation:"replay"
                        ~indices:[ i ]
                        "daemon closed the connection mid-replay"
                in
                match overload_hint resp with
                | Some hint when k < retry ->
                    let backoff =
                      hint
                      *. Float.pow 2.0 (float_of_int k)
                      *. (0.5 +. Rng.uniform rng)
                    in
                    Unix.sleepf (backoff /. 1000.0);
                    attempt (k + 1)
                | _ -> resp
              in
              let resp = attempt 0 in
              lat.(i) <- Unix.gettimeofday () -. s;
              resp)
            requests
        in
        (responses, lat, Unix.gettimeofday () -. t0)
      end)
