module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Build = Ssta_timing.Build
module N = Ssta_circuit.Netlist
module Propagate = Hier_ssta.Propagate
module Path_report = Hier_ssta.Path_report
module Yield = Hier_ssta.Yield
module Batch = Ssta_batch.Batch
module Json = Ssta_json.Json
module Robust = Ssta_robust.Robust
module Obs = Ssta_obs.Obs
module FDesign = Ssta_frontend.Design
module FSdc = Ssta_frontend.Sdc

(* ------------------------------------------------------------------ *)
(* Observability handles                                              *)

let c_requests = Obs.counter "serve.requests"
let c_errors = Obs.counter "serve.request_errors"
let c_cache_hits = Obs.counter "serve.cache_hits"
let c_cache_misses = Obs.counter "serve.cache_misses"
let c_batched = Obs.counter "serve.batched_requests"
let c_shared = Obs.counter "serve.shared_sweeps"
let c_whatif_incr = Obs.counter "serve.whatif_incremental"
let c_whatif_full = Obs.counter "serve.whatif_full"
let g_queue_depth = Obs.gauge "serve.queue_depth"
let c_protocol_repairs = Robust.counter "robust.protocol_repairs"

let protocol_repair ~operation ?indices ?values detail =
  Robust.repair c_protocol_repairs
    (Robust.context ~subsystem:"serve" ~operation ?indices ?values detail)

(* ------------------------------------------------------------------ *)
(* Engine state                                                       *)

type session = {
  design : string;
  build : Build.t;
  forms : Form.t array;  (** current edge forms (what-if edits applied) *)
  fbuf : Form_buf.t;  (** the same forms, packed for the sweep kernels *)
  ws : Propagate.workspace;  (** holds the current completed arrival sweep *)
  dirty : Bytes.t;  (** per-vertex dirty mask scratch *)
  mutable base : Batch.base option;  (** lazy, over the pristine forms *)
  mutable edited : bool;  (** committed edits pending a [revert] *)
  sdc : FSdc.t option;
      (** constraints of a [load_files] design; the report op defaults
          its reference clock to the SDC period *)
}

type t = {
  cache : (string, Build.t) Hashtbl.t;  (** content hash -> model *)
  mutable session : session option;
  mutable stop : bool;
}

let create () = { cache = Hashtbl.create 7; session = None; stop = false }
let stopped t = t.stop
let cache_size t = Hashtbl.length t.cache

(* ------------------------------------------------------------------ *)
(* Content-hashed model cache                                         *)

(* The cache key covers exactly what characterization consumes: the
   netlist structure (inputs, per-gate cell + fanins, outputs — NOT the
   netlist's display name), the cell delay parameters (an external .lib
   may redefine a bundled cell name with different numbers) and a tag
   for the characterization config.  Two designs with identical
   structure share one characterized model; renaming a design never
   invalidates it. *)
let config_tag = "characterize:v2:default"

let digest_of_netlist nl =
  let b = Buffer.create 4096 in
  Buffer.add_string b config_tag;
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int nl.N.n_pi);
  Array.iter
    (fun (g : N.gate) ->
      let c = g.N.cell in
      Buffer.add_char b '|';
      Buffer.add_string b c.Ssta_cell.Cell.name;
      Buffer.add_char b '@';
      Buffer.add_string b (Printf.sprintf "%h" c.Ssta_cell.Cell.d0);
      Array.iter
        (fun s -> Buffer.add_string b (Printf.sprintf ";%h" s))
        c.Ssta_cell.Cell.sens;
      Buffer.add_string b (Printf.sprintf ";%h" c.Ssta_cell.Cell.load_sens);
      Array.iter
        (fun f ->
          Buffer.add_char b ',';
          Buffer.add_string b (string_of_int f))
        g.N.fanins)
    nl.N.gates;
  Buffer.add_char b '>';
  Array.iter
    (fun o ->
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int o))
    nl.N.outputs;
  Digest.to_hex (Digest.string (Buffer.contents b))

let netlist_of_name name =
  if Filename.check_suffix name ".bench" && Sys.file_exists name then
    try Ssta_circuit.Bench_format.load ~path:name
    with Failure m ->
      Robust.fail ~subsystem:"serve" ~operation:"load" ("bad .bench file: " ^ m)
  else
    try Ssta_circuit.Iscas.build name
    with Invalid_argument m ->
      Robust.fail ~subsystem:"serve" ~operation:"load"
        ("unknown design (not bundled, not a .bench path): " ^ m)

let characterize_cached t nl =
  let key = digest_of_netlist nl in
  match Hashtbl.find_opt t.cache key with
  | Some b ->
      Obs.incr c_cache_hits;
      (b, true)
  | None ->
      Obs.incr c_cache_misses;
      let b = Obs.with_span "serve.characterize" (fun () -> Build.characterize nl) in
      Hashtbl.add t.cache key b;
      (b, false)

let fresh_session ?sdc ~design (build : Build.t) =
  let g = build.Build.graph in
  let forms = Array.copy build.Build.forms in
  let dims =
    if Array.length forms > 0 then Form.dims forms.(0)
    else { Form.n_globals = 0; n_pcs = 0 }
  in
  let fbuf = Form_buf.of_forms dims forms in
  let ws = Propagate.create_workspace () in
  Propagate.forward_into ws g ~forms:fbuf ~sources:g.Tgraph.inputs;
  {
    design;
    build;
    forms;
    fbuf;
    ws;
    dirty = Bytes.create (Tgraph.n_vertices g);
    base = None;
    edited = false;
    sdc;
  }

let load_design t name =
  let nl = netlist_of_name name in
  let build, cached = characterize_cached t nl in
  t.session <- Some (fresh_session ~design:name build);
  cached

let session_exn t ~operation =
  match t.session with
  | Some s -> s
  | None ->
      Robust.fail ~subsystem:"serve" ~operation
        "no design loaded (send {\"op\":\"load\",\"design\":...} first)"

let batch_base s =
  match s.base with
  | Some b -> b
  | None ->
      let b = Batch.prepare s.build in
      s.base <- Some b;
      b

(* ------------------------------------------------------------------ *)
(* Analysis helpers                                                   *)

(* Design delay of the current arrival state: statistical max over the
   outputs the sweep reached. *)
let design_delay_form s =
  let g = s.build.Build.graph in
  Array.fold_left
    (fun acc o ->
      match (acc, Propagate.ws_form s.ws o) with
      | None, f -> f
      | acc, None -> acc
      | Some a, Some b -> Some (Form.max2 a b))
    None g.Tgraph.outputs

let delay_fields f ~yield =
  [
    ("mean", Json.Num f.Form.mean);
    ("sigma", Json.Num (Form.std f));
    ("yield", Json.Num yield);
    ("clock", Json.Num (Yield.clock_for_yield f ~yield));
  ]

(* ------------------------------------------------------------------ *)
(* Request parsing helpers (robust: defects repair to defaults or, in
   strict policy, raise the structured error for this request only)    *)

let req_num ~operation ~default key j =
  match Json.num_field ~default key j with
  | Ok v -> v
  | Error msg ->
      protocol_repair ~operation msg;
      default

let req_str ~operation ~default key j =
  match Json.str_field ~default key j with
  | Ok v -> v
  | Error msg ->
      protocol_repair ~operation msg;
      default

let req_bool ~operation ~default key j =
  match Json.bool_field ~default key j with
  | Ok v -> v
  | Error msg ->
      protocol_repair ~operation msg;
      default

let req_yield ~operation j =
  let y = req_num ~operation ~default:0.99 "yield" j in
  if y > 0.0 && y < 1.0 then y
  else begin
    protocol_repair ~operation ~values:[ y ] "yield must lie in (0, 1)";
    0.99
  end

(* ------------------------------------------------------------------ *)
(* Operations                                                         *)

let op_load t ~op j =
  let name =
    match Json.str_field "design" j with
    | Ok v -> v
    | Error msg -> Robust.fail ~subsystem:"serve" ~operation:op msg
  in
  let cached = load_design t name in
  let s = session_exn t ~operation:op in
  let g = s.build.Build.graph in
  [
    ("design", Json.Str name);
    ("cached", Json.Bool cached);
    ("n_vertices", Json.Num (float_of_int (Tgraph.n_vertices g)));
    ("n_edges", Json.Num (float_of_int (Tgraph.n_edges g)));
    ("n_outputs", Json.Num (float_of_int (Array.length g.Tgraph.outputs)));
  ]

(* External-design load: parse + lower the Verilog/.lib/SDC trio, then
   enter the same cached-characterization path as bundled designs (the
   digest covers structure and cell numbers, so a re-read of the same
   files is a cache hit). *)
let op_load_files t j =
  let operation = "load_files" in
  let file key =
    match Json.str_field key j with
    | Ok v -> v
    | Error msg -> Robust.fail ~subsystem:"serve" ~operation msg
  in
  let verilog = file "verilog" and liberty = file "liberty" in
  let sdc_path =
    match Json.find "sdc" j with
    | Some (Json.Str p) -> Some p
    | None | Some Json.Null -> None
    | Some _ ->
        protocol_repair ~operation "sdc must be a path string; ignored";
        None
  in
  let d = FDesign.load_files ~verilog ~liberty ?sdc:sdc_path () in
  let low = FDesign.lower d in
  let nl = low.FDesign.netlist in
  let build, cached = characterize_cached t nl in
  let sdc = d.FDesign.sdc in
  t.session <- Some (fresh_session ~sdc ~design:nl.N.name build);
  let g = build.Build.graph in
  [
    ("design", Json.Str nl.N.name);
    ("cached", Json.Bool cached);
    ("n_vertices", Json.Num (float_of_int (Tgraph.n_vertices g)));
    ("n_edges", Json.Num (float_of_int (Tgraph.n_edges g)));
    ("n_outputs", Json.Num (float_of_int (Array.length g.Tgraph.outputs)));
    ("clocks", Json.Num (float_of_int (List.length sdc.FSdc.clocks)));
    ( "false_paths",
      Json.Num (float_of_int (List.length sdc.FSdc.false_paths)) );
  ]
  @
  match FSdc.clock_period sdc with
  | Some p -> [ ("period", Json.Num p) ]
  | None -> []

let scenario_result_fields (r : Batch.result) ~yield =
  match r.Batch.delay with
  | None ->
      Robust.fail ~subsystem:"serve" ~operation:"quantile"
        "no output reachable under this scenario"
  | Some f -> ("label", Json.Str r.Batch.scenario.Batch.label) :: delay_fields f ~yield

let op_quantile t j =
  let operation = "quantile" in
  let s = session_exn t ~operation in
  let yield = req_yield ~operation j in
  match Json.find "scenario" j with
  | None | Some Json.Null -> (
      match design_delay_form s with
      | None ->
          Robust.fail ~subsystem:"serve" ~operation "no output reachable"
      | Some f -> delay_fields f ~yield)
  | Some sj ->
      let sc = Batch.scenario_of_json 0 sj in
      let r = Batch.run_one (batch_base s) sc in
      scenario_result_fields r ~yield

let op_report t j =
  let operation = "report" in
  let s = session_exn t ~operation in
  let yield = req_yield ~operation j in
  let clock =
    match Json.find "clock" j with
    | Some (Json.Num c) -> Some c
    | None | Some Json.Null ->
        (* A load_files session carries constraints: default the slack
           reference to the SDC clock period. *)
        Option.bind s.sdc FSdc.clock_period
    | Some _ ->
        protocol_repair ~operation "clock must be a number";
        None
  in
  let g = s.build.Build.graph in
  let outs =
    Array.to_list g.Tgraph.outputs
    |> List.map (fun o ->
           let base = [ ("vertex", Json.Num (float_of_int o)) ] in
           match Propagate.ws_form s.ws o with
           | None -> Json.Obj (base @ [ ("reachable", Json.Bool false) ])
           | Some f ->
               let q = Yield.clock_for_yield f ~yield in
               let slack =
                 match clock with
                 | None -> []
                 | Some c -> [ ("slack", Json.Num (c -. q)) ]
               in
               Json.Obj
                 (base
                 @ [
                     ("mean", Json.Num f.Form.mean);
                     ("sigma", Json.Num (Form.std f));
                     ("clock", Json.Num q);
                   ]
                 @ slack))
  in
  let clock_field =
    match clock with None -> [] | Some c -> [ ("ref_clock", Json.Num c) ]
  in
  (("yield", Json.Num yield) :: clock_field) @ [ ("outputs", Json.Arr outs) ]

let op_paths t j =
  let operation = "paths" in
  let s = session_exn t ~operation in
  let g = s.build.Build.graph in
  let k =
    let k = int_of_float (req_num ~operation ~default:3.0 "k" j) in
    if k >= 1 then k
    else begin
      protocol_repair ~operation ~indices:[ k ] "k must be >= 1";
      3
    end
  in
  let arrival =
    Array.init (Tgraph.n_vertices g) (fun v -> Propagate.ws_form s.ws v)
  in
  let endpoint =
    match Json.find "output" j with
    | Some (Json.Num v) ->
        let v = int_of_float v in
        if Array.exists (fun o -> o = v) g.Tgraph.outputs then v
        else
          Robust.fail ~subsystem:"serve" ~operation ~indices:[ v ]
            "output is not a primary-output vertex of the current design"
    | None | Some Json.Null ->
        (* Default: the worst output by mean arrival. *)
        let best = ref (-1) and best_mu = ref neg_infinity in
        Array.iter
          (fun o ->
            match arrival.(o) with
            | Some f when f.Form.mean > !best_mu ->
                best := o;
                best_mu := f.Form.mean
            | _ -> ())
          g.Tgraph.outputs;
        if !best < 0 then
          Robust.fail ~subsystem:"serve" ~operation "no output reachable"
        else !best
    | Some _ ->
        Robust.fail ~subsystem:"serve" ~operation
          "output must be a vertex number"
  in
  let paths =
    Path_report.top_paths g ~forms:s.forms ~arrival ~endpoint ~k
  in
  let path_json (p : Path_report.path) =
    Json.Obj
      [
        ( "vertices",
          Json.Arr
            (List.map (fun v -> Json.Num (float_of_int v)) p.Path_report.vertices)
        );
        ( "edges",
          Json.Arr
            (List.map (fun e -> Json.Num (float_of_int e)) p.Path_report.edges)
        );
        ("mean", Json.Num p.Path_report.delay.Form.mean);
        ("sigma", Json.Num (Form.std p.Path_report.delay));
        ("criticality", Json.Num p.Path_report.criticality);
      ]
  in
  [
    ("output", Json.Num (float_of_int endpoint));
    ("paths", Json.Arr (List.map path_json paths));
  ]

(* ---- what-if -------------------------------------------------------- *)

type edit = { edge : int; prev : Form.t; next : Form.t }

let parse_edit ~operation g forms idx j =
  match j with
  | Json.Obj _ ->
      let edge =
        match Json.num_field "edge" j with
        | Ok v -> int_of_float v
        | Error msg ->
            Robust.fail ~subsystem:"serve" ~operation ~indices:[ idx ] msg
      in
      if edge < 0 || edge >= Tgraph.n_edges g then
        Robust.fail ~subsystem:"serve" ~operation ~indices:[ idx; edge ]
          "edit edge index out of range";
      let prev : Form.t = forms.(edge) in
      let next =
        match (Json.find "scale" j, Json.find "add" j, Json.find "set" j) with
        | Some (Json.Num a), None, None -> Form.scale a prev
        | None, Some (Json.Num d), None -> Form.add_const prev d
        | None, None, Some (Json.Num v) -> { prev with Form.mean = v }
        | None, None, None ->
            protocol_repair ~operation ~indices:[ idx; edge ]
              "edit has no scale/add/set field; treating as identity";
            prev
        | _ ->
            Robust.fail ~subsystem:"serve" ~operation ~indices:[ idx; edge ]
              "edit must carry exactly one numeric scale/add/set field"
      in
      { edge; prev; next }
  | _ ->
      Robust.fail ~subsystem:"serve" ~operation ~indices:[ idx ]
        "edits must be objects"

(* Apply [edits] to the session's packed forms and re-time.  Incremental
   mode recomputes only the fanout closure of the edited edges' sinks
   (Tgraph.fanout_closure_into + Propagate.forward_update_into) and is
   bit-identical to the full re-sweep; mode="full" runs the reference
   full sweep.  Returns (vertices recomputed, fanin edges visited). *)
let apply_edits s ~incremental edits =
  let g = s.build.Build.graph in
  List.iter
    (fun e ->
      s.forms.(e.edge) <- e.next;
      Form_buf.set s.fbuf e.edge e.next)
    edits;
  if incremental then begin
    let seeds =
      Array.of_list (List.map (fun e -> g.Tgraph.dst.(e.edge)) edits)
    in
    let _marked = Tgraph.fanout_closure_into g ~seeds ~into:s.dirty in
    Propagate.forward_update_into s.ws g ~forms:s.fbuf
      ~sources:g.Tgraph.inputs ~dirty:s.dirty
  end
  else begin
    Propagate.forward_into s.ws g ~forms:s.fbuf ~sources:g.Tgraph.inputs;
    (Tgraph.n_vertices g, Tgraph.n_edges g)
  end

let op_whatif t j =
  let operation = "whatif" in
  let s = session_exn t ~operation in
  let yield = req_yield ~operation j in
  let commit = req_bool ~operation ~default:false "commit" j in
  let incremental =
    match req_str ~operation ~default:"incremental" "mode" j with
    | "incremental" -> true
    | "full" -> false
    | m ->
        protocol_repair ~operation
          (Printf.sprintf "mode %S is not incremental/full" m);
        true
  in
  let edits =
    match Json.find "edits" j with
    | Some (Json.Arr items) ->
        List.mapi (parse_edit ~operation s.build.Build.graph s.forms) items
    | _ ->
        Robust.fail ~subsystem:"serve" ~operation
          "whatif requires an \"edits\" array"
  in
  if edits = [] then
    Robust.fail ~subsystem:"serve" ~operation "whatif edits array is empty";
  Obs.incr (if incremental then c_whatif_incr else c_whatif_full);
  let n_dirty, n_visited = apply_edits s ~incremental edits in
  let reply =
    match design_delay_form s with
    | None -> Robust.fail ~subsystem:"serve" ~operation "no output reachable"
    | Some f ->
        delay_fields f ~yield
        @ [
            ("mode", Json.Str (if incremental then "incremental" else "full"));
            ("edits", Json.Num (float_of_int (List.length edits)));
            ("dirty_vertices", Json.Num (float_of_int n_dirty));
            ("visited_edges", Json.Num (float_of_int n_visited));
            ("committed", Json.Bool commit);
          ]
  in
  if commit then s.edited <- true
  else begin
    (* Roll back: restoring the previous forms is just another edit with
       the same dirty set, so the incremental update restores the sweep
       bit-identically. *)
    let undo = List.map (fun e -> { e with prev = e.next; next = e.prev }) edits in
    ignore (apply_edits s ~incremental:true undo)
  end;
  reply

let op_revert t =
  let s = session_exn t ~operation:"revert" in
  let g = s.build.Build.graph in
  Array.iteri
    (fun i f ->
      s.forms.(i) <- f;
      Form_buf.set s.fbuf i f)
    s.build.Build.forms;
  Propagate.forward_into s.ws g ~forms:s.fbuf ~sources:g.Tgraph.inputs;
  s.edited <- false;
  [ ("design", Json.Str s.design); ("reverted", Json.Bool true) ]

let op_batch t j =
  let operation = "batch" in
  let s = session_exn t ~operation in
  let yield = req_yield ~operation j in
  let scenarios =
    match Json.find "scenarios" j with
    | Some sj -> Batch.scenarios_of_json sj
    | None ->
        Robust.fail ~subsystem:"serve" ~operation
          "batch requires a \"scenarios\" array"
  in
  let results = Batch.run (batch_base s) scenarios in
  let rows =
    Array.to_list results
    |> List.map (fun (r : Batch.result) ->
           Json.Obj (scenario_result_fields r ~yield))
  in
  [
    ("yield", Json.Num yield);
    ("scenarios", Json.Num (float_of_int (Array.length scenarios)));
    ("results", Json.Arr rows);
  ]

let op_stats t =
  let session_fields =
    match t.session with
    | None -> [ ("design", Json.Null) ]
    | Some s ->
        [
          ("design", Json.Str s.design);
          ("edited", Json.Bool s.edited);
          ( "n_edges",
            Json.Num (float_of_int (Tgraph.n_edges s.build.Build.graph)) );
        ]
  in
  session_fields
  @ [
      ("cache_size", Json.Num (float_of_int (Hashtbl.length t.cache)));
      ("requests", Json.Num (float_of_int (Obs.counter_value c_requests)));
      ("errors", Json.Num (float_of_int (Obs.counter_value c_errors)));
      ("cache_hits", Json.Num (float_of_int (Obs.counter_value c_cache_hits)));
      ( "cache_misses",
        Json.Num (float_of_int (Obs.counter_value c_cache_misses)) );
      ( "batched_requests",
        Json.Num (float_of_int (Obs.counter_value c_batched)) );
      ("shared_sweeps", Json.Num (float_of_int (Obs.counter_value c_shared)));
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)

let error_json (c : Robust.context) =
  Json.Obj
    ([
      ("subsystem", Json.Str c.Robust.subsystem);
      ("operation", Json.Str c.Robust.operation);
      ("detail", Json.Str c.Robust.detail);
      ( "indices",
        Json.Arr (List.map (fun i -> Json.Num (float_of_int i)) c.Robust.indices)
      );
      ("values", Json.Arr (List.map (fun v -> Json.Num v) c.Robust.values));
    ]
    @
    match c.Robust.pos with
    | None -> []
    | Some p ->
        [
          ("line", Json.Num (float_of_int p.Robust.line));
          ("col", Json.Num (float_of_int p.Robust.col));
        ])

let respond ~id fields = Json.to_string (Json.Obj (("id", id) :: fields))

let respond_error ~id c =
  Obs.incr c_errors;
  respond ~id [ ("ok", Json.Bool false); ("error", error_json c) ]

let request_id j = match Json.find "id" j with Some v -> v | None -> Json.Null

let dispatch t op j =
  match op with
  | "load" | "swap" -> op_load t ~op j
  | "load_files" -> op_load_files t j
  | "quantile" -> op_quantile t j
  | "report" -> op_report t j
  | "paths" -> op_paths t j
  | "whatif" -> op_whatif t j
  | "revert" -> op_revert t
  | "batch" -> op_batch t j
  | "stats" -> op_stats t
  | "ping" -> [ ("pong", Json.Bool true) ]
  | "shutdown" ->
      t.stop <- true;
      [ ("stopping", Json.Bool true) ]
  | other ->
      Robust.fail ~subsystem:"serve" ~operation:"dispatch"
        (Printf.sprintf
           "unknown op %S (load/swap/load_files/quantile/report/paths/\
            whatif/revert/batch/stats/ping/shutdown)"
           other)

let handle_parsed t j =
  let id = request_id j in
  let op = match Json.str_field ~default:"" "op" j with Ok v -> v | Error _ -> "" in
  try
    if op = "" then
      Robust.fail ~subsystem:"serve" ~operation:"dispatch"
        "request has no \"op\" field";
    let fields =
      Obs.with_span ("serve.op." ^ op) (fun () -> dispatch t op j)
    in
    respond ~id (("ok", Json.Bool true) :: ("op", Json.Str op) :: fields)
  with
  | Robust.Error c -> respond_error ~id c
  | e ->
      respond_error ~id
        (Robust.context ~subsystem:"serve" ~operation:(if op = "" then "dispatch" else op)
           ("unexpected exception: " ^ Printexc.to_string e))

let handle_line t line =
  Obs.incr c_requests;
  Obs.with_span "serve.request" (fun () ->
      match Json.parse line with
      | Ok j -> handle_parsed t j
      | Error msg -> (
          try
            protocol_repair ~operation:"parse" msg;
            respond_error ~id:Json.Null
              (Robust.context ~subsystem:"serve" ~operation:"parse" msg)
          with Robust.Error c -> respond_error ~id:Json.Null c))

(* ---- pipelined batching ------------------------------------------- *)

(* A request qualifies for sweep sharing when it is a quantile query with
   an explicit scenario: those all evaluate over the pristine batch base,
   so a maximal consecutive run of them is one Batch.run.  Identical
   scenarios are deduplicated (scenario is a plain value record, so
   structural equality is exact). *)
let quantile_scenario j =
  match Json.str_field ~default:"" "op" j with
  | Ok "quantile" -> (
      match Json.find "scenario" j with
      | Some (Json.Obj _ as sj) -> Some sj
      | _ -> None)
  | _ -> None

let handle_quantile_group t group =
  match t.session with
  | None -> List.map (fun (_, j) -> handle_parsed t j) group
  | Some s -> (
      (* Decode every scenario first; a decode failure under strict policy
         fails only that request. *)
      let decoded =
        List.map
          (fun (sj, j) ->
            match Batch.scenario_of_json 0 sj with
            | sc -> (j, Ok sc)
            | exception Robust.Error c -> (j, Error c))
          group
      in
      let scenarios =
        List.filter_map
          (function _, Ok sc -> Some sc | _, Error _ -> None)
          decoded
      in
      let uniq = ref [] in
      List.iter
        (fun sc -> if not (List.mem sc !uniq) then uniq := sc :: !uniq)
        scenarios;
      let uniq = Array.of_list (List.rev !uniq) in
      Obs.add c_batched (List.length group);
      Obs.add c_shared (List.length scenarios - Array.length uniq);
      match Batch.run (batch_base s) uniq with
      | results ->
          let result_for sc =
            let rec find i =
              if i >= Array.length uniq then None
              else if uniq.(i) = sc then Some results.(i)
              else find (i + 1)
            in
            find 0
          in
          List.map
            (fun (j, d) ->
              let id = request_id j in
              match d with
              | Error c -> respond_error ~id c
              | Ok sc -> (
                  Obs.incr c_requests;
                  match result_for sc with
                  | None ->
                      respond_error ~id
                        (Robust.context ~subsystem:"serve"
                           ~operation:"quantile" "batched scenario lost")
                  | Some r -> (
                      try
                        let yield = req_yield ~operation:"quantile" j in
                        respond ~id
                          (("ok", Json.Bool true)
                          :: ("op", Json.Str "quantile")
                          :: scenario_result_fields r ~yield)
                      with Robust.Error c -> respond_error ~id c)))
            decoded
      | exception Robust.Error c ->
          (* The shared run itself failed: every request in the group
             degrades to that structured error. *)
          List.map (fun (j, _) -> respond_error ~id:(request_id j) c) decoded)

let handle_lines t lines =
  Obs.gauge_max g_queue_depth (List.length lines);
  (* Split into maximal runs of batchable quantile requests vs. singles,
     preserving order. *)
  let flush_group acc group =
    match group with
    | [] -> acc
    | g -> List.rev_append (handle_quantile_group t (List.rev g)) acc
  in
  let acc, group =
    List.fold_left
      (fun (acc, group) line ->
        match Json.parse line with
        | Ok j -> (
            match quantile_scenario j with
            | Some sj -> (acc, (sj, j) :: group)
            | None ->
                let acc = flush_group acc group in
                (handle_line t line :: acc, []))
        | Error _ ->
            let acc = flush_group acc group in
            (handle_line t line :: acc, []))
      ([], []) lines
  in
  List.rev (flush_group acc group)

(* ------------------------------------------------------------------ *)
(* Daemon: unix-domain socket, JSONL framing                          *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Read whatever is available, split into complete lines.  Lines that
   arrive together in one read are handed to [handle_lines] as a group —
   a pipelining client naturally gets sweep sharing, an interactive
   client gets request/response, and because grouping never changes
   response bytes the distinction is invisible in the stream. *)
let serve_connection t fd =
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let extract_lines () =
    let s = Buffer.contents pending in
    let rec split acc start =
      match String.index_from_opt s start '\n' with
      | None ->
          Buffer.clear pending;
          Buffer.add_substring pending s start (String.length s - start);
          List.rev acc
      | Some i -> split (String.sub s start (i - start) :: acc) (i + 1)
    in
    split [] 0
  in
  let eof = ref false in
  while (not !eof) && not t.stop do
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n = 0 then begin
      eof := true;
      (* A final unterminated line still counts as a request. *)
      if Buffer.length pending > 0 then begin
        let line = Buffer.contents pending in
        Buffer.clear pending;
        if String.trim line <> "" then
          write_all fd (handle_line t line ^ "\n")
      end
    end
    else begin
      Buffer.add_subbytes pending chunk 0 n;
      let lines =
        extract_lines () |> List.filter (fun l -> String.trim l <> "")
      in
      match lines with
      | [] -> ()
      | lines ->
          let responses = handle_lines t lines in
          write_all fd (String.concat "\n" responses ^ "\n")
    end
  done

let run_daemon ?(socket = "hssta.sock") ?(preload = []) t =
  List.iter
    (fun name ->
      let nl = netlist_of_name name in
      ignore (characterize_cached t nl))
    preload;
  if Sys.file_exists socket then Sys.remove socket;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX socket);
      Unix.listen sock 8;
      while not t.stop do
        let fd, _ = Unix.accept sock in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            try serve_connection t fd
            with Unix.Unix_error _ -> (* client went away mid-stream *) ())
      done)

(* ------------------------------------------------------------------ *)
(* Replay client                                                      *)

let connect_retry socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
        ignore (Unix.select [] [] [] 0.05);
        go ()
  in
  go ()

type reader = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }

let rec read_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  | None -> (
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 -> if s = "" then None else (Buffer.clear r.buf; Some s)
      | n ->
          Buffer.add_subbytes r.buf r.chunk 0 n;
          read_line r)

let replay ?(pipeline = false) ~socket ~requests () =
  let fd = connect_retry socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let r = reader fd in
      let t0 = Unix.gettimeofday () in
      if pipeline then begin
        write_all fd (String.concat "\n" requests ^ "\n");
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        let responses = ref [] in
        let rec drain () =
          match read_line r with
          | Some line ->
              responses := line :: !responses;
              drain ()
          | None -> ()
        in
        drain ();
        (List.rev !responses, [||], Unix.gettimeofday () -. t0)
      end
      else begin
        let lat = Array.make (List.length requests) 0.0 in
        let responses =
          List.mapi
            (fun i req ->
              let s = Unix.gettimeofday () in
              write_all fd (req ^ "\n");
              let resp =
                match read_line r with
                | Some line -> line
                | None ->
                    Robust.fail ~subsystem:"serve" ~operation:"replay"
                      ~indices:[ i ]
                      "daemon closed the connection mid-replay"
              in
              lat.(i) <- Unix.gettimeofday () -. s;
              resp)
            requests
        in
        (responses, lat, Unix.gettimeofday () -. t0)
      end)
