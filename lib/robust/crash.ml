(* Seeded crash points for the chaos/recovery harness.

   HSSTA_CRASH_AT="<point>:<n>" arms exactly one named crash point; the
   n-th time execution reaches [tick point] the process dies immediately
   via [Unix._exit exit_code] - no at_exit handlers, no buffered-channel
   flushes, no socket shutdown - the closest portable approximation of
   kill -9 that a test can schedule deterministically.

   Points currently wired in (lib/serve):
   - "request":     after the n-th response has been written to the client
                    (clean request boundary);
   - "wal_append":  mid-way through appending the n-th WAL record - only
                    the first half of the framed line has been written, so
                    the survivor must detect and truncate a torn record;
   - "wal_sync":    after the n-th WAL record is fully written and flushed
                    but before the response is sent - the survivor must
                    dedupe the re-sent request against the logged one;
   - "cache_write": mid-way through spilling the n-th model-cache entry
                    (temp file half-written, rename never happened) - the
                    survivor must ignore the orphan and recompute.

   Unarmed cost is one ref load ([tick] is a no-op unless HSSTA_CRASH_AT
   is set), so the hooks stay in production paths permanently. *)

type spec = { point : string; index : int }

let exit_code = 42

let parse s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let point = String.sub s 0 i in
      let n = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt n with
      | Some index when index >= 1 && point <> "" -> Some { point; index }
      | _ -> None)

let armed : spec option ref =
  ref
    (match Sys.getenv_opt "HSSTA_CRASH_AT" with
    | None -> None
    | Some s -> (
        match parse (String.trim s) with
        | Some _ as sp -> sp
        | None ->
            Printf.eprintf
              "HSSTA_CRASH_AT: expected <point>:<n> with n >= 1, got %S; \
               ignoring\n\
               %!"
              s;
            None))

let arm ~point ~index = armed := Some { point; index }
let disarm () = armed := None

let hits : (string, int ref) Hashtbl.t = Hashtbl.create 8

let tick point =
  match !armed with
  | None -> ()
  | Some spec ->
      if String.equal spec.point point then begin
        let c =
          match Hashtbl.find_opt hits point with
          | Some c -> c
          | None ->
              let c = ref 0 in
              Hashtbl.add hits point c;
              c
        in
        incr c;
        if !c >= spec.index then Unix._exit exit_code
      end
