(** Graceful-degradation layer: structured numerical errors and a global
    repair policy.

    Every numerically fragile step of the flow (grid-covariance PCA and
    Cholesky, Clark-max moment matching, the A^-1 B_n replacement, model
    deserialisation) funnels its degenerate cases through this module.  A
    site that detects a degenerate input calls {!repair}: under [Strict]
    the call raises {!Error} with full context (subsystem, operation,
    indices, offending values); under [Repair] it increments an always-on
    counter (mirrored into [Obs] when observability is enabled) and
    returns, letting the caller apply its closed-form fix-up; [Warn] is
    [Repair] plus a rate-limited stderr line per event.

    The policy is global and deterministic: it never changes results on
    clean inputs (detection is read-only), so strict/repair/warn are
    bit-identical whenever no degeneracy fires. *)

type policy = Strict | Repair | Warn

type pos = { line : int; col : int }
(** A 1-based source position inside a parsed file.  Every file-format
    parser of the repository (the timing-model reader, the Verilog /
    Liberty / SDC frontend) reports its errors through this one type so
    locations render uniformly. *)

type context = {
  subsystem : string;  (** e.g. ["linalg.cholesky"] *)
  operation : string;  (** e.g. ["factor"] *)
  indices : int list;  (** offending positions: pivot, edge, line, ... *)
  values : float list;  (** offending values, parallel to the message *)
  pos : pos option;  (** source location for file-format errors *)
  detail : string;  (** human-readable description of the degeneracy *)
}

exception Error of context

val context :
  subsystem:string ->
  operation:string ->
  ?indices:int list ->
  ?values:float list ->
  ?pos:pos ->
  string ->
  context

val fail :
  subsystem:string ->
  operation:string ->
  ?indices:int list ->
  ?values:float list ->
  ?pos:pos ->
  string ->
  'a
(** Raise {!Error} unconditionally (for defects that have no repair). *)

val to_string : context -> string
val pp : Format.formatter -> context -> unit

val policy : unit -> policy
val set_policy : policy -> unit

val policy_of_string : string -> (policy, string) result
val policy_name : policy -> string

(** {1 Repair counters}

    Counters are process-global atomics, always on (a repair must be
    observable even when the [Obs] layer is disabled), and mirrored into
    same-named [Obs] counters so they appear in [--obs-summary] and JSONL
    traces.  They are only touched on actual repairs - the clean path
    never loads them. *)

type counter

val counter : string -> counter
(** Registers (or returns the existing) counter with the given name.
    Names follow the [robust.*] convention. *)

val repair : counter -> context -> unit
(** The policy dispatch point.  [Strict]: raises [Error ctx].
    [Repair]: increments [c].  [Warn]: increments [c] and logs [ctx] to
    stderr (first 20 events, then a suppression notice). *)

val count : counter -> context -> unit
(** Increment without consulting the policy - for events that are part of
    today's normal behaviour (e.g. Cholesky jitter retries) and must not
    raise under [Strict]. *)

val value : counter -> int
val counters : unit -> (string * int) list
(** All registered counters with non-zero values first omitted - returns
    every registered counter (including zeros), sorted by name. *)

val reset : unit -> unit
(** Zero every counter (tests and the injection harness). *)

val is_finite : float -> bool
(** [true] iff neither NaN nor infinite.  Branch-cheap: [x -. x = 0.0]. *)
