module Robust = Ssta_robust.Robust
module Rng = Ssta_gauss.Rng
module F = Ssta_frontend

type format = Verilog | Liberty | Sdc
type klass = Byte_truncate | Token_mutate | Line_shuffle

let format_name = function
  | Verilog -> "verilog"
  | Liberty -> "liberty"
  | Sdc -> "sdc"

let klass_name = function
  | Byte_truncate -> "byte_truncate"
  | Token_mutate -> "token_mutate"
  | Line_shuffle -> "line_shuffle"

type verdict = {
  format : format;
  klass : klass;
  case : int;
  policy : Robust.policy;
  outcome : string;
  ok : bool;
  detail : string;
}

type ctx = {
  circuit : string;
  verilog_doc : string;
  liberty_doc : string;
  sdc_doc : string;
  lib : F.Liberty.t;
}

(* A representative constraint set over the exported net names: clock,
   one input and one output delay, one false path. *)
let base_sdc (nl : Ssta_circuit.Netlist.t) =
  let net i = Printf.sprintf "n%d" i in
  let out0 = nl.Ssta_circuit.Netlist.outputs.(0) in
  {
    F.Sdc.clocks = [ { F.Sdc.clk_name = "clk"; period = 250.0 } ];
    input_delays =
      [ { F.Sdc.ports = [ net 0 ]; delay = 10.0; dclock = Some "clk" } ];
    output_delays =
      [ { F.Sdc.ports = [ net out0 ]; delay = 10.0; dclock = None } ];
    false_paths =
      [ { F.Sdc.from_ports = [ net 0 ]; to_ports = [ net out0 ] } ];
  }

let with_policy policy f =
  let prev = Robust.policy () in
  Robust.set_policy policy;
  Fun.protect ~finally:(fun () -> Robust.set_policy prev) f

let make_ctx circuit =
  let nl = Ssta_circuit.Iscas.build circuit in
  let d = F.Design.of_netlist ~sdc:(base_sdc nl) nl in
  let verilog_doc = F.Verilog.to_string d.F.Design.modul in
  let liberty_doc = F.Liberty.to_string d.F.Design.lib in
  let sdc_doc = F.Sdc.to_string d.F.Design.sdc in
  (* The corpus must start from accepted inputs: the clean documents
     parse (and the Verilog lowers back) without error or repair. *)
  with_policy Robust.Strict (fun () ->
      let m = F.Verilog.parse verilog_doc in
      let lib = F.Liberty.parse liberty_doc in
      ignore
        (F.Design.lower { F.Design.modul = m; lib; sdc = F.Sdc.empty });
      ignore (F.Sdc.parse sdc_doc);
      { circuit; verilog_doc; liberty_doc; sdc_doc; lib })

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)

let byte_truncate rng doc =
  let n = String.length doc in
  if n <= 1 then doc else String.sub doc 0 (1 + Rng.int rng (n - 1))

(* Characters that matter to at least one of the three grammars, so a
   mutation lands on a structural element more often than random bytes
   would. *)
let interesting =
  "(){};:,.\"/*#-\\ \t\nmoduleinputoutputwirecellpintiming0123456789eE_"

let token_mutate rng doc =
  if String.length doc = 0 then doc
  else begin
    let b = Bytes.of_string doc in
    let edits = 1 + Rng.int rng 4 in
    for _ = 1 to edits do
      let i = Rng.int rng (Bytes.length b) in
      Bytes.set b i interesting.[Rng.int rng (String.length interesting)]
    done;
    Bytes.to_string b
  end

let line_shuffle rng doc =
  let lines = Array.of_list (String.split_on_char '\n' doc) in
  let n = Array.length lines in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = lines.(i) in
    lines.(i) <- lines.(j);
    lines.(j) <- tmp
  done;
  String.concat "\n" (Array.to_list lines)

let mutate klass rng doc =
  match klass with
  | Byte_truncate -> byte_truncate rng doc
  | Token_mutate -> token_mutate rng doc
  | Line_shuffle -> line_shuffle rng doc

(* ------------------------------------------------------------------ *)
(* Cases                                                               *)

let parse_of ctx = function
  | Verilog ->
      fun doc ->
        let m = F.Verilog.parse doc in
        ignore
          (F.Design.lower
             { F.Design.modul = m; lib = ctx.lib; sdc = F.Sdc.empty })
  | Liberty -> fun doc -> ignore (F.Liberty.parse doc)
  | Sdc -> fun doc -> ignore (F.Sdc.parse doc)

let doc_of ctx = function
  | Verilog -> ctx.verilog_doc
  | Liberty -> ctx.liberty_doc
  | Sdc -> ctx.sdc_doc

let format_ix = function Verilog -> 0 | Liberty -> 1 | Sdc -> 2
let klass_ix = function
  | Byte_truncate -> 0
  | Token_mutate -> 1
  | Line_shuffle -> 2

let policy_ix = function Robust.Strict -> 0 | Robust.Repair -> 1 | Robust.Warn -> 2

let repair_total () =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (Robust.counters ())

let run_case ctx ~seed ~format ~klass ~case ~policy =
  let index =
    (((format_ix format * 3) + klass_ix klass) * 3 + policy_ix policy)
    * 100000
    + case
  in
  let rng = Rng.stream ~seed ~index in
  let doc = mutate klass rng (doc_of ctx format) in
  let parse = parse_of ctx format in
  with_policy policy (fun () ->
      Robust.reset ();
      let outcome, ok, detail =
        match parse doc with
        | () ->
            if repair_total () > 0 then ("repaired", true, "") else ("ok", true, "")
        | exception Robust.Error c ->
            if
              String.length c.Robust.subsystem >= 9
              && String.sub c.Robust.subsystem 0 9 = "frontend."
            then ("error", true, Robust.to_string c)
            else
              ( "error",
                false,
                "structured error from foreign subsystem: "
                ^ Robust.to_string c )
        | exception e -> ("crash", false, Printexc.to_string e)
      in
      { format; klass; case; policy; outcome; ok; detail })

let run_corpus ctx ~seed ~cases_per_class =
  List.concat_map
    (fun format ->
      List.concat_map
        (fun klass ->
          List.concat_map
            (fun policy ->
              List.init cases_per_class (fun case ->
                  run_case ctx ~seed ~format ~klass ~case ~policy))
            [ Robust.Strict; Robust.Repair ])
        [ Byte_truncate; Token_mutate; Line_shuffle ])
    [ Verilog; Liberty; Sdc ]

let all_pass vs = List.for_all (fun v -> v.ok) vs

let summary vs =
  let b = Buffer.create 256 in
  List.iter
    (fun format ->
      let mine = List.filter (fun v -> v.format = format) vs in
      let count o =
        List.length (List.filter (fun v -> v.outcome = o) mine)
      in
      Buffer.add_string b
        (Printf.sprintf
           "%-8s %5d cases: %5d ok, %5d repaired, %5d error, %d escaped\n"
           (format_name format) (List.length mine) (count "ok")
           (count "repaired") (count "error")
           (List.length (List.filter (fun v -> not v.ok) mine))))
    [ Verilog; Liberty; Sdc ];
  Buffer.contents b

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jsonl_of_verdicts vs =
  let line v =
    Printf.sprintf
      "{\"format\":\"%s\",\"class\":\"%s\",\"case\":%d,\"policy\":\"%s\",\"outcome\":\"%s\",\"ok\":%b,\"detail\":\"%s\"}"
      (format_name v.format) (klass_name v.klass) v.case
      (Robust.policy_name v.policy)
      v.outcome v.ok (json_escape v.detail)
  in
  String.concat "\n" (List.map line vs) ^ "\n"
