(* Cooperative per-request deadlines.

   The serving layer arms an absolute wall-clock deadline before running
   a request and disarms it afterwards; long sweeps (Batch.run scenario
   tasks, the criticality screen's tile loop) call [check] at safe
   points.  An expired deadline raises a structured [Robust.Error] with
   subsystem "deadline", which the daemon turns into a structured
   [timeout] response - the session itself is never left half-mutated
   because checkpoints sit *between* units of work, never inside a
   mutation.

   Unarmed cost is a single atomic load and a float compare (the
   [gettimeofday] syscall only happens while a deadline is armed), so
   the checkpoints are safe to leave in the hot sweep loops: the <= 2%
   clean-path bound in BENCH_serve.json gates exactly this.

   The cell is a process-wide atomic rather than per-domain state on
   purpose: Batch.run fans a single request out over worker domains, and
   all of them must observe the same deadline. The serve daemon handles
   requests one at a time, so there is never more than one armed
   deadline. *)

let cell : float Atomic.t = Atomic.make infinity

let arm_at t = Atomic.set cell t

(* [arm_ms ms] arms a deadline [ms] milliseconds from now. *)
let arm_ms ms = Atomic.set cell (Unix.gettimeofday () +. (ms /. 1000.0))
let disarm () = Atomic.set cell infinity
let armed () = Atomic.get cell < infinity

let expired () =
  let d = Atomic.get cell in
  d < infinity && Unix.gettimeofday () > d

let check ~operation =
  let d = Atomic.get cell in
  if d < infinity && Unix.gettimeofday () > d then
    Robust.fail ~subsystem:"deadline" ~operation "request deadline exceeded"

(* [with_deadline_ms ms f] runs [f ()] under an armed deadline, always
   disarming on the way out (including on exceptions), so a timed-out
   request cannot leak its deadline into the next one. [ms = None] runs
   [f] unarmed. *)
let with_deadline_ms ms f =
  match ms with
  | None -> f ()
  | Some ms ->
      arm_ms ms;
      Fun.protect ~finally:disarm f

let is_timeout = function
  | Robust.Error c -> c.Robust.subsystem = "deadline"
  | _ -> false
