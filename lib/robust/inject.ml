module Robust = Ssta_robust.Robust
module Form = Ssta_canonical.Form
module Mat = Ssta_linalg.Mat
module Pca = Ssta_linalg.Pca
module Basis = Ssta_variation.Basis
module Tile = Ssta_variation.Tile
module Rng = Ssta_gauss.Rng
module Build = Ssta_timing.Build
module H = Hier_ssta

type flow = Extraction | Hierarchical

let flow_name = function
  | Extraction -> "extraction"
  | Hierarchical -> "hierarchical"

let faults =
  [|
    "nan_edge_delay";
    "inf_edge_delay";
    "zero_variance_cell";
    "near_singular_cov";
    "rank_deficient_cov";
    "corrupt_model_float";
    "negative_model_eigenvalue";
  |]

let fault_index fault =
  let rec go i =
    if i >= Array.length faults then
      invalid_arg ("Inject: unknown fault class " ^ fault)
    else if faults.(i) = fault then i
    else go (i + 1)
  in
  go 0

let expected_subsystem ~fault flow =
  match fault with
  | "nan_edge_delay" | "inf_edge_delay" | "zero_variance_cell" -> (
      match flow with
      | Extraction -> "extract"
      | Hierarchical -> "hier_analysis")
  | "near_singular_cov" | "negative_model_eigenvalue" -> "linalg.pca"
  | "rank_deficient_cov" -> "variation.basis"
  | "corrupt_model_float" -> "model_io"
  | _ -> invalid_arg ("Inject: unknown fault class " ^ fault)

let expected_counter ~fault =
  match fault with
  | "nan_edge_delay" | "inf_edge_delay" | "corrupt_model_float" ->
      "robust.nan_sanitized"
  | "zero_variance_cell" -> "robust.zero_variance_arcs"
  | "near_singular_cov" | "negative_model_eigenvalue" -> "robust.psd_clips"
  | "rank_deficient_cov" -> "robust.degenerate_tiles"
  | _ -> invalid_arg ("Inject: unknown fault class " ^ fault)

type verdict = {
  circuit : string;
  fault : string;
  flow : flow;
  policy : Robust.policy;
  ok : bool;
  detail : string;
  counters : (string * int) list;
}

type ctx = {
  circuit : string;
  build : Build.t;
  model : H.Timing_model.t;
  clean_extraction : float;
  clean_hier : float;
}

(* ------------------------------------------------------------------ *)
(* Flows                                                               *)
(* ------------------------------------------------------------------ *)

(* End-to-end consumption of a timing model: place it and propagate.  A
   single instance for the extraction flow (the model is the product under
   test), two side-by-side instances for the hierarchical flow (stitching,
   variable replacement and the cross-instance statistical max all run). *)
let analyze_instances model n =
  let die = model.H.Timing_model.die in
  let w = Tile.width die and h = Tile.height die in
  let top =
    Tile.make ~x0:0.0 ~y0:0.0 ~x1:(float_of_int n *. w) ~y1:h
  in
  let inst i =
    {
      H.Floorplan.label = Printf.sprintf "u%d" i;
      build = None;
      model;
      origin = (float_of_int i *. w, 0.0);
    }
  in
  let fp =
    H.Floorplan.create ~die:top
      ~instances:(Array.init n inst)
      ~connections:[||]
  in
  let dg = H.Design_grid.build fp in
  let res = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  res.H.Hier_analysis.delay.Form.mean

let extraction_metric model = analyze_instances model 1
let hier_metric model = analyze_instances model 2

let make_ctx circuit =
  let build = Build.characterize (Ssta_circuit.Iscas.build circuit) in
  let model = H.Extract.extract build in
  {
    circuit;
    build;
    model;
    clean_extraction = extraction_metric model;
    clean_hier = hier_metric model;
  }

(* ------------------------------------------------------------------ *)
(* Fault constructors                                                  *)
(* ------------------------------------------------------------------ *)

(* Pick an arc with positive nominal delay (gate arcs; skips zero-mean
   interconnect edges so the zero-variance classifier's exemption is not
   what we hit). *)
let pick_gate_arc rng forms =
  let cands = ref [] in
  Array.iteri
    (fun e (f : Form.t) -> if f.Form.mean > 0.0 then cands := e :: !cands)
    forms;
  let cands = Array.of_list (List.rev !cands) in
  cands.(Rng.int rng (Array.length cands))

let poke_mean rng forms v =
  let e = pick_gate_arc rng forms in
  let forms = Array.copy forms in
  forms.(e) <- { forms.(e) with Form.mean = v };
  forms

let poke_zero_variance rng forms =
  let e = pick_gate_arc rng forms in
  let forms = Array.copy forms in
  let f = forms.(e) in
  forms.(e) <-
    Form.make ~mean:f.Form.mean
      ~globals:(Array.make (Array.length f.Form.globals) 0.0)
      ~pcs:(Array.make (Array.length f.Form.pcs) 0.0)
      ~rand:0.0;
  forms

(* A covariance that is not one: a strongly out-of-range off-diagonal pair
   (|rho| = 10 in a unit-diagonal matrix) drives an eigenvalue below -2%
   of the largest - by eigenvalue interlacing the 2x2 principal submatrix
   [[1,10],[10,1]] bounds the minimum eigenvalue by -9.  Detection is in
   Pca.of_covariance. *)
let inject_near_singular rng (basis : Basis.t) =
  let n = Array.length basis.Basis.tiles in
  let i = Rng.int rng n in
  let j = (i + 1 + Rng.int rng (n - 1)) mod n in
  let c = Basis.local_covariance_matrix basis in
  let c' =
    Mat.init n n (fun a b ->
        if (a = i && b = j) || (a = j && b = i) then 10.0 else Mat.get c a b)
  in
  let pca = Pca.of_covariance c' in
  Basis.of_parts ~n_params:basis.Basis.n_params ~corr:basis.Basis.corr
    ~pitch:basis.Basis.pitch ~tiles:basis.Basis.tiles ~pca

(* Coincident tiles: duplicate covariance rows, i.e. an exactly
   rank-deficient grid.  Detection is in Basis.make. *)
let inject_rank_deficient rng (basis : Basis.t) =
  let tiles = Array.copy basis.Basis.tiles in
  let n = Array.length tiles in
  let i = Rng.int rng n in
  let j = (i + 1 + Rng.int rng (n - 1)) mod n in
  tiles.(j) <- tiles.(i);
  Basis.make ~n_params:basis.Basis.n_params ~corr:basis.Basis.corr
    ~pitch:basis.Basis.pitch tiles

(* Serialized-model mutations: rewrite one token of the canonical text
   form.  [mutate_first_line] applies [f] to the first line carrying the
   prefix; model files always have at least one "edge " and one
   "pca-values " line. *)
let mutate_first_line text ~prefix ~f =
  let lines = String.split_on_char '\n' text in
  let hit = ref false in
  let plen = String.length prefix in
  let lines =
    List.map
      (fun l ->
        if
          (not !hit)
          && String.length l >= plen
          && String.sub l 0 plen = prefix
        then begin
          hit := true;
          f l
        end
        else l)
      lines
  in
  if not !hit then
    invalid_arg ("Inject: serialized model has no '" ^ prefix ^ "' line");
  String.concat "\n" lines

let replace_token line ~index ~value =
  let toks = String.split_on_char ' ' line in
  let toks =
    List.mapi (fun i t -> if i = index then value else t) toks
  in
  String.concat " " toks

let replace_last_token line ~value =
  let toks = String.split_on_char ' ' line in
  replace_token line ~index:(List.length toks - 1) ~value

(* "edge <src> <dst> <mean> ..." - token 3 is the arc's nominal delay. *)
let corrupt_model_float text =
  mutate_first_line text ~prefix:"edge " ~f:(fun l ->
      replace_token l ~index:3 ~value:"nan")

(* Last eigenvalue of the serialized spectrum goes negative; decreasing
   order is preserved so the only violated invariant is PSD-ness. *)
let negative_model_eigenvalue text =
  mutate_first_line text ~prefix:"pca-values " ~f:(fun l ->
      replace_last_token l ~value:"-0.5")

(* ------------------------------------------------------------------ *)
(* Cases                                                               *)
(* ------------------------------------------------------------------ *)

(* The whole perturbed flow lives inside the returned thunk, so a Strict
   policy raises from inside the case and a Repair/Warn run yields the
   end-to-end delay metric. *)
let case_thunk ctx ~fault ~flow rng () =
  let b = ctx.build and m = ctx.model in
  match (fault, flow) with
  | "nan_edge_delay", Extraction ->
      extraction_metric
        (H.Extract.extract { b with Build.forms = poke_mean rng b.Build.forms Float.nan })
  | "nan_edge_delay", Hierarchical ->
      hier_metric
        { m with H.Timing_model.forms = poke_mean rng m.H.Timing_model.forms Float.nan }
  | "inf_edge_delay", Extraction ->
      extraction_metric
        (H.Extract.extract
           { b with Build.forms = poke_mean rng b.Build.forms Float.infinity })
  | "inf_edge_delay", Hierarchical ->
      hier_metric
        {
          m with
          H.Timing_model.forms = poke_mean rng m.H.Timing_model.forms Float.infinity;
        }
  | "zero_variance_cell", Extraction ->
      extraction_metric
        (H.Extract.extract
           { b with Build.forms = poke_zero_variance rng b.Build.forms })
  | "zero_variance_cell", Hierarchical ->
      hier_metric
        {
          m with
          H.Timing_model.forms = poke_zero_variance rng m.H.Timing_model.forms;
        }
  | "near_singular_cov", Extraction ->
      extraction_metric
        (H.Extract.extract { b with Build.basis = inject_near_singular rng b.Build.basis })
  | "near_singular_cov", Hierarchical ->
      hier_metric
        {
          m with
          H.Timing_model.basis = inject_near_singular rng m.H.Timing_model.basis;
        }
  | "rank_deficient_cov", Extraction ->
      extraction_metric
        (H.Extract.extract
           { b with Build.basis = inject_rank_deficient rng b.Build.basis })
  | "rank_deficient_cov", Hierarchical ->
      hier_metric
        {
          m with
          H.Timing_model.basis = inject_rank_deficient rng m.H.Timing_model.basis;
        }
  | "corrupt_model_float", Extraction ->
      extraction_metric
        (H.Model_io.of_string (corrupt_model_float (H.Model_io.to_string m)))
  | "corrupt_model_float", Hierarchical ->
      hier_metric
        (H.Model_io.of_string (corrupt_model_float (H.Model_io.to_string m)))
  | "negative_model_eigenvalue", Extraction ->
      extraction_metric
        (H.Model_io.of_string
           (negative_model_eigenvalue (H.Model_io.to_string m)))
  | "negative_model_eigenvalue", Hierarchical ->
      hier_metric
        (H.Model_io.of_string
           (negative_model_eigenvalue (H.Model_io.to_string m)))
  | _ -> invalid_arg ("Inject: unknown fault class " ^ fault)

(* A repaired run may lose (or gain) at most the perturbed arc's
   contribution; a quarter of the clean end-to-end delay bounds every
   fault class in the corpus with wide margin. *)
let delta_bound = 0.25

let with_policy policy f =
  let prev = Robust.policy () in
  Robust.set_policy policy;
  Fun.protect ~finally:(fun () -> Robust.set_policy prev) f

let run_case ctx ~seed ~fault ~flow ~policy =
  let fi = fault_index fault in
  let index = (2 * fi) + match flow with Extraction -> 0 | Hierarchical -> 1 in
  let rng = Rng.stream ~seed ~index in
  let thunk = case_thunk ctx ~fault ~flow rng in
  with_policy policy (fun () ->
      Robust.reset ();
      let ok, detail =
        match policy with
        | Robust.Strict -> (
            match thunk () with
            | v ->
                ( false,
                  Printf.sprintf "no structured error raised (delay %.6g)" v )
            | exception Robust.Error c ->
                let want = expected_subsystem ~fault flow in
                if c.Robust.subsystem = want then (true, Robust.to_string c)
                else
                  ( false,
                    Printf.sprintf "error from %s, expected %s: %s"
                      c.Robust.subsystem want (Robust.to_string c) ))
        | Robust.Repair | Robust.Warn -> (
            let clean =
              match flow with
              | Extraction -> ctx.clean_extraction
              | Hierarchical -> ctx.clean_hier
            in
            match thunk () with
            | v ->
                let finite = Robust.is_finite v in
                let delta =
                  abs_float (v -. clean) /. Float.max 1.0 (abs_float clean)
                in
                let counter = expected_counter ~fault in
                let fired = Robust.value (Robust.counter counter) > 0 in
                let ok = finite && delta <= delta_bound && fired in
                ( ok,
                  Printf.sprintf
                    "delay %.6g vs clean %.6g (delta %.2f%%), %s=%d" v clean
                    (100.0 *. delta) counter
                    (Robust.value (Robust.counter counter)) )
            | exception e ->
                (false, "repair run raised: " ^ Printexc.to_string e))
      in
      let counters =
        List.filter (fun (_, v) -> v > 0) (Robust.counters ())
      in
      { circuit = ctx.circuit; fault; flow; policy; ok; detail; counters })

let run_corpus ctx ~seed ~policy =
  List.concat_map
    (fun fault ->
      List.map
        (fun flow -> run_case ctx ~seed ~fault ~flow ~policy)
        [ Extraction; Hierarchical ])
    (Array.to_list faults)

let all_pass vs = List.for_all (fun v -> v.ok) vs

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jsonl_of_verdicts vs =
  let line (v : verdict) =
    Printf.sprintf
      "{\"circuit\":\"%s\",\"fault\":\"%s\",\"flow\":\"%s\",\"policy\":\"%s\",\"ok\":%b,\"detail\":\"%s\",\"counters\":{%s}}"
      (json_escape v.circuit) (json_escape v.fault) (flow_name v.flow)
      (Robust.policy_name v.policy)
      v.ok (json_escape v.detail)
      (String.concat ","
         (List.map
            (fun (k, n) -> Printf.sprintf "\"%s\":%d" (json_escape k) n)
            v.counters))
  in
  String.concat "\n" (List.map line vs) ^ "\n"
