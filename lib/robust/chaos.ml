(* Chaos/recovery harness: seeded crash points against the real serve
   daemon, over a real unix socket, with byte-identity verdicts.

   One case = one crash class at one seeded position:
   1. boot a fresh daemon (own state dir) with HSSTA_CRASH_AT=<point>:<n>
      and replay the corpus sequentially until the connection dies;
   2. reap the corpse (it must have exited with Crash.exit_code);
   3. restart the daemon on the same state dir *without* the crash hook,
      replay the unanswered tail of the corpus;
   4. assert the concatenated response stream is byte-identical to an
      uninterrupted reference run of the same corpus on a third daemon.

   The verdict stream is fully deterministic (crash positions are seeded,
   answered-request counts are a function of the corpus and the crash
   spec, and responses are bit-deterministic), so the JSONL is committed
   as a golden and replayed in CI; the recovery wall-clock is reported
   separately, never in the golden. *)

module Serve = Ssta_serve.Serve
module Json = Ssta_json.Json
module Robust = Ssta_robust.Robust

type case = { label : string; point : string; index : int }

(* Positions assume the committed recovery corpus shape: a load first
   (so cache_write:1 tears the first model spill), several committed
   what-ifs (wal_append/wal_sync positions), interleaved reads, shutdown
   last.  A corpus with fewer WAL-able requests than an index simply
   never crashes, and the verdict records recovered=false. *)
let default_cases =
  [
    { label = "request_3"; point = "request"; index = 3 };
    { label = "request_9"; point = "request"; index = 9 };
    { label = "wal_append_2"; point = "wal_append"; index = 2 };
    { label = "wal_append_5"; point = "wal_append"; index = 5 };
    { label = "wal_sync_3"; point = "wal_sync"; index = 3 };
    { label = "cache_write_1"; point = "cache_write"; index = 1 };
  ]

type verdict = {
  label : string;
  point : string;
  index : int;
  crash_exit : int;  (** observed exit status of the crashed daemon *)
  answered : int;  (** responses received before the connection died *)
  recovered : bool;  (** restart came up and served the tail *)
  identical : bool;  (** head @ tail responses = uninterrupted reference *)
  recovery_ms : float;  (** restart -> first tail response (informational) *)
}

let verdict_json v =
  Json.to_string
    (Json.Obj
       [
         ("case", Json.Str v.label);
         ("point", Json.Str v.point);
         ("index", Json.Num (float_of_int v.index));
         ("crash_exit", Json.Num (float_of_int v.crash_exit));
         ("answered", Json.Num (float_of_int v.answered));
         ("recovered", Json.Bool v.recovered);
         ("identical", Json.Bool v.identical);
       ])

let jsonl_of_verdicts vs = String.concat "\n" (List.map verdict_json vs) ^ "\n"

(* ---- subprocess plumbing ------------------------------------------ *)

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let base_env () =
  Unix.environment ()
  |> Array.to_list
  |> List.filter (fun kv -> not (String.starts_with ~prefix:"HSSTA_CRASH_AT=" kv))

let spawn_daemon ~exe ~socket ~cache_dir ~checkpoint_every ?crash_at () =
  let env = base_env () in
  let env =
    match crash_at with
    | None -> env
    | Some (point, index) ->
        Printf.sprintf "HSSTA_CRASH_AT=%s:%d" point index :: env
  in
  let args =
    [|
      exe;
      "serve";
      "--socket";
      socket;
      "--cache-dir";
      cache_dir;
      "--wal-checkpoint";
      string_of_int checkpoint_every;
    |]
  in
  Unix.create_process_env exe args (Array.of_list env) Unix.stdin Unix.stdout
    Unix.stderr

let reap pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> c
  | _, Unix.WSIGNALED s -> -s
  | _, Unix.WSTOPPED s -> -s

(* Sequential replay that tolerates the daemon dying mid-stream: returns
   the responses received plus the index of the first unanswered request
   (None if the whole corpus was served). *)
let replay_until ?(on_first = fun () -> ()) ~socket requests =
  let fd = Serve.connect_retry socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let r = Serve.reader fd in
      let rec go acc i = function
        | [] -> (List.rev acc, None)
        | req :: tl -> (
            let resp =
              try
                Serve.write_all fd (req ^ "\n");
                Serve.read_line r
              with
              | Unix.Unix_error
                  ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED), _, _)
              ->
                None
            in
            match resp with
            | Some line ->
                if i = 0 then on_first ();
                go (line :: acc) (i + 1) tl
            | None -> (List.rev acc, Some i))
      in
      go [] 0 requests)

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

(* ---- the harness --------------------------------------------------- *)

let read_corpus path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           let l = input_line ic in
           if String.trim l <> "" then lines := l :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let run_case ~exe ~dir ~corpus ~reference ~checkpoint_every (case : case) =
  let case_dir = Filename.concat dir ("case_" ^ case.label) in
  mkdir_p case_dir;
  let socket = Filename.concat case_dir "serve.sock" in
  let cache_dir = Filename.concat case_dir "state" in
  (* Phase 1: the crashing run. *)
  let pid =
    spawn_daemon ~exe ~socket ~cache_dir ~checkpoint_every
      ~crash_at:(case.point, case.index) ()
  in
  let head, died = replay_until ~socket corpus in
  let crash_exit = reap pid in
  match died with
  | None ->
      (* The crash point was never reached: the corpus drained and the
         daemon exited via its shutdown request. *)
      {
        label = case.label;
        point = case.point;
        index = case.index;
        crash_exit;
        answered = List.length head;
        recovered = false;
        identical = head = reference;
        recovery_ms = 0.0;
      }
  | Some i ->
      (* Phase 2: restart on the same state dir, replay the tail. *)
      let t0 = Unix.gettimeofday () in
      let pid = spawn_daemon ~exe ~socket ~cache_dir ~checkpoint_every () in
      let first_ms = ref 0.0 in
      let on_first () = first_ms := (Unix.gettimeofday () -. t0) *. 1000.0 in
      let tail_reqs = drop i corpus in
      let tail, died2 = replay_until ~on_first ~socket tail_reqs in
      let exit2 = reap pid in
      let recovered = died2 = None && exit2 = 0 in
      {
        label = case.label;
        point = case.point;
        index = case.index;
        crash_exit;
        answered = List.length head;
        recovered;
        identical = head @ tail = reference;
        recovery_ms = !first_ms;
      }

let run ~exe ~corpus_path ~dir ?(cases = default_cases)
    ?(checkpoint_every = 3) () =
  (* A dead daemon must surface as a closed connection, not a SIGPIPE
     death of the harness itself. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  mkdir_p dir;
  let corpus = read_corpus corpus_path in
  if corpus = [] then
    Robust.fail ~subsystem:"chaos" ~operation:"run"
      ("empty chaos corpus: " ^ corpus_path);
  (* Uninterrupted reference run. *)
  let ref_dir = Filename.concat dir "reference" in
  mkdir_p ref_dir;
  let socket = Filename.concat ref_dir "serve.sock" in
  let pid =
    spawn_daemon ~exe ~socket
      ~cache_dir:(Filename.concat ref_dir "state")
      ~checkpoint_every ()
  in
  let reference, ref_died = replay_until ~socket corpus in
  let ref_exit = reap pid in
  if ref_died <> None || ref_exit <> 0 then
    Robust.fail ~subsystem:"chaos" ~operation:"reference"
      (Printf.sprintf
         "uninterrupted reference run failed (answered %d/%d, exit %d)"
         (List.length reference) (List.length corpus) ref_exit);
  List.map (run_case ~exe ~dir ~corpus ~reference ~checkpoint_every) cases
