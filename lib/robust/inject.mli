(** Deterministic fault-injection harness for the graceful-degradation
    layer.

    Each corpus case perturbs a real analysis run of an ISCAS85 circuit -
    the extraction flow (characterize, extract, instantiate the model) or
    the hierarchical flow (a two-instance design over the extracted model)
    - with one fault drawn from a fixed taxonomy, then runs the perturbed
    flow end to end under a chosen robustness policy:

    - under [Strict] the case passes iff the run raises
      {!Ssta_robust.Robust.Error} whose [subsystem] names the expected
      fault site;
    - under [Repair]/[Warn] the case passes iff the run completes, its
      end-to-end delay is finite and within a bounded delta of the clean
      reference, and the expected repair counter fired.

    All randomness (which edge, which tile pair) comes from
    {!Ssta_gauss.Rng.stream} seeded per case, so the corpus is bit-stable
    across runs and domain counts. *)

module Robust = Ssta_robust.Robust

type flow = Extraction | Hierarchical

val flow_name : flow -> string

val faults : string array
(** The fault taxonomy: [nan_edge_delay], [inf_edge_delay],
    [zero_variance_cell], [near_singular_cov], [rank_deficient_cov],
    [corrupt_model_float], [negative_model_eigenvalue]. *)

val expected_subsystem : fault:string -> flow -> string
(** The [Robust.Error.subsystem] a [Strict] run of the case must name. *)

val expected_counter : fault:string -> string
(** The repair counter a [Repair]/[Warn] run of the case must increment. *)

type verdict = {
  circuit : string;
  fault : string;
  flow : flow;
  policy : Robust.policy;
  ok : bool;
  detail : string;  (** the structured error (Strict) or the delta check *)
  counters : (string * int) list;  (** non-zero robust counters after *)
}

type ctx
(** Clean per-circuit context: characterization, extracted model and the
    clean reference delays both flows are compared against under repair. *)

val make_ctx : string -> ctx
(** [make_ctx circuit] characterizes and extracts the named ISCAS85
    circuit once; reuse the context across cases and policies. *)

val run_case :
  ctx -> seed:int -> fault:string -> flow:flow -> policy:Robust.policy -> verdict
(** Runs one corpus case.  The global policy is set for the duration of
    the case and restored afterwards; counters are reset before the run.
    Unknown fault names raise [Invalid_argument]. *)

val run_corpus :
  ctx -> seed:int -> policy:Robust.policy -> verdict list
(** Every fault class crossed with both flows, in a fixed order. *)

val all_pass : verdict list -> bool

val jsonl_of_verdicts : verdict list -> string
(** One JSON object per line: circuit, fault, flow, policy, ok, detail and
    the non-zero counters - the CI artifact format. *)
