(** Deterministic mutation fuzzing of the external-design frontend.

    Each case takes a known-good document (structural Verilog / Liberty /
    SDC, rendered from a generator-built circuit), applies one mutation
    drawn from a fixed class — byte truncation, token mutation, line
    shuffle — and runs the matching parser (plus, for Verilog, the full
    design lowering) end to end under a chosen robustness policy.

    The contract under fuzz is narrow and absolute: the parser either
    succeeds, succeeds with counted repairs, or raises
    {!Ssta_robust.Robust.Error} with a [frontend.*] subsystem.  Any other
    escaped exception — [Invalid_argument], [Failure], [Stack_overflow],
    [Not_found] — fails the case.  All randomness comes from
    {!Ssta_gauss.Rng.stream} seeded per case, so the corpus and its JSONL
    verdict stream are bit-stable across runs and domain counts (the CI
    job diffs the streams). *)

module Robust = Ssta_robust.Robust

type format = Verilog | Liberty | Sdc
type klass = Byte_truncate | Token_mutate | Line_shuffle

val format_name : format -> string
val klass_name : klass -> string

type verdict = {
  format : format;
  klass : klass;
  case : int;
  policy : Robust.policy;
  outcome : string;  (** ["ok"], ["repaired"] or ["error"] *)
  ok : bool;  (** false iff a non-structured exception escaped *)
  detail : string;  (** structured-error rendering, or the escapee *)
}

type ctx
(** Clean base documents for one circuit; the constructor parses them
    once under [Strict] to guarantee the corpus starts from accepted
    inputs. *)

val mutate : klass -> Ssta_gauss.Rng.t -> string -> string
(** Apply one seeded mutation of the given class to a document.  Exposed
    for other durability surfaces (the serve WAL / disk-cache fuzz in
    [test/test_serve.ml]) so every file format in the repository is
    fuzzed by the same primitives. *)

val make_ctx : string -> ctx
(** [make_ctx circuit] renders the named bundled circuit through
    {!Ssta_frontend.Design.of_netlist} with a representative SDC. *)

val run_case :
  ctx ->
  seed:int ->
  format:format ->
  klass:klass ->
  case:int ->
  policy:Robust.policy ->
  verdict

val run_corpus :
  ctx -> seed:int -> cases_per_class:int -> verdict list
(** Every format x mutation class x {Strict, Repair} x case index, in a
    fixed order: [3 classes * 2 policies * cases_per_class] verdicts per
    format (>= 1000 per format at the default 175). *)

val all_pass : verdict list -> bool
val summary : verdict list -> string
(** Per-format outcome counts, one line per format. *)

val jsonl_of_verdicts : verdict list -> string
(** One JSON object per line - the committed corpus / CI artifact. *)
