module Obs = Ssta_obs.Obs

type policy = Strict | Repair | Warn

type pos = { line : int; col : int }

type context = {
  subsystem : string;
  operation : string;
  indices : int list;
  values : float list;
  pos : pos option;
  detail : string;
}

exception Error of context

let context ~subsystem ~operation ?(indices = []) ?(values = []) ?pos detail =
  { subsystem; operation; indices; values; pos; detail }

let to_string c =
  let b = Buffer.create 96 in
  Buffer.add_string b "robust error: ";
  Buffer.add_string b c.subsystem;
  Buffer.add_char b '.';
  Buffer.add_string b c.operation;
  Buffer.add_string b ": ";
  Buffer.add_string b c.detail;
  (match c.pos with
  | Some p ->
      Buffer.add_string b (Printf.sprintf " at line %d, col %d" p.line p.col)
  | None -> ());
  if c.indices <> [] then begin
    Buffer.add_string b " [at";
    List.iter (fun i -> Buffer.add_string b (Printf.sprintf " %d" i)) c.indices;
    Buffer.add_char b ']'
  end;
  if c.values <> [] then begin
    Buffer.add_string b " (values";
    List.iter (fun v -> Buffer.add_string b (Printf.sprintf " %.17g" v)) c.values;
    Buffer.add_char b ')'
  end;
  Buffer.contents b

let pp fmt c = Format.pp_print_string fmt (to_string c)

let fail ~subsystem ~operation ?indices ?values ?pos detail =
  raise (Error (context ~subsystem ~operation ?indices ?values ?pos detail))

let () =
  Printexc.register_printer (function
    | Error c -> Some (to_string c)
    | _ -> None)

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "strict" -> Ok Strict
  | "repair" -> Ok Repair
  | "warn" -> Ok Warn
  | other ->
      Result.Error
        (Printf.sprintf "unknown robust policy %S (expected strict|repair|warn)"
           other)

let policy_name = function
  | Strict -> "strict"
  | Repair -> "repair"
  | Warn -> "warn"

let policy_ref =
  ref
    (match Sys.getenv_opt "ROBUST_POLICY" with
    | None -> Repair
    | Some s -> (
        match policy_of_string s with
        | Ok p -> p
        | Result.Error msg ->
            Printf.eprintf "ROBUST_POLICY: %s; defaulting to repair\n%!" msg;
            Repair))

let policy () = !policy_ref
let set_policy p = policy_ref := p

(* Counters: always-on atomics mirrored into same-named Obs counters so
   repairs show up in --obs-summary / traces when observability is on.
   Registration happens at module-init time (no contention); increments
   are lock-free and only occur on actual repairs. *)

type counter = { name : string; cell : int Atomic.t; obs : Obs.counter }

let registry : (string, counter) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; cell = Atomic.make 0; obs = Obs.counter name } in
        Hashtbl.add registry name c;
        c
  in
  Mutex.unlock registry_lock;
  c

let value c = Atomic.get c.cell

let counters () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun _ c acc -> (c.name, value c) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) all

let count c _ctx =
  Atomic.incr c.cell;
  Obs.incr c.obs

(* Warn-mode logging is rate-limited *per subsystem*: degenerate inputs
   can fire per edge in extraction-scale loops, and stderr is not the
   place for millions of lines - but one hot fault class (say, a storm of
   torn WAL records) must not exhaust the budget of every other
   subsystem's first warning.  The counters keep the exact totals. *)
let warn_budget_per_subsystem = 20
let warn_budgets : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 8
let warn_lock = Mutex.create ()

let warn_budget subsystem =
  Mutex.lock warn_lock;
  let b =
    match Hashtbl.find_opt warn_budgets subsystem with
    | Some b -> b
    | None ->
        let b = Atomic.make warn_budget_per_subsystem in
        Hashtbl.add warn_budgets subsystem b;
        b
  in
  Mutex.unlock warn_lock;
  b

let warn_reset () =
  Mutex.lock warn_lock;
  Hashtbl.iter (fun _ b -> Atomic.set b warn_budget_per_subsystem) warn_budgets;
  Mutex.unlock warn_lock

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
  Mutex.unlock registry_lock;
  warn_reset ()

let warn_log ctx =
  let left = Atomic.fetch_and_add (warn_budget ctx.subsystem) (-1) in
  if left > 0 then Printf.eprintf "robust: repaired %s\n%!" (to_string ctx)
  else if left = 0 then
    Printf.eprintf
      "robust: further %s repair warnings suppressed (see robust.* counters)\n%!"
      ctx.subsystem

let repair c ctx =
  match !policy_ref with
  | Strict -> raise (Error ctx)
  | Repair -> count c ctx
  | Warn ->
      count c ctx;
      warn_log ctx

let is_finite x = x -. x = 0.0
