module Tile = Ssta_variation.Tile
module Grid = Ssta_variation.Grid
module Basis = Ssta_variation.Basis

type t = {
  tiles : Tile.t array;
  basis : Basis.t;
  instance_tile_offset : int array;
  instance_n_tiles : int array;
}

let build (fp : Floorplan.t) =
  Ssta_obs.Obs.with_span "design_grid.build" @@ fun () ->
  let instances = fp.Floorplan.instances in
  let first = instances.(0).Floorplan.model.Timing_model.basis in
  let pitch = first.Basis.pitch in
  let corr = first.Basis.corr in
  let n_params = first.Basis.n_params in
  Array.iter
    (fun inst ->
      let b = inst.Floorplan.model.Timing_model.basis in
      if
        b.Basis.pitch <> pitch || b.Basis.corr <> corr
        || b.Basis.n_params <> n_params
      then failwith "Design_grid.build: instances disagree on variation model")
    instances;
  let tiles = ref [] and count = ref 0 in
  let offsets = Array.make (Array.length instances) 0 in
  let counts = Array.make (Array.length instances) 0 in
  Array.iteri
    (fun i inst ->
      offsets.(i) <- !count;
      let dx, dy = inst.Floorplan.origin in
      let mod_tiles =
        inst.Floorplan.model.Timing_model.basis.Basis.tiles
      in
      counts.(i) <- Array.length mod_tiles;
      Array.iter
        (fun tile ->
          tiles := Tile.translate tile ~dx ~dy :: !tiles;
          incr count)
        mod_tiles)
    instances;
  (* Fill the uncovered remainder with default-pitch tiles. *)
  let module_dies = Array.map Floorplan.instance_die instances in
  let die = fp.Floorplan.die in
  let filler =
    Grid.make ~x0:die.Tile.x0 ~y0:die.Tile.y0 ~width:(Tile.width die)
      ~height:(Tile.height die) ~pitch
  in
  Array.iter
    (fun tile ->
      let c = Tile.center tile in
      if not (Array.exists (fun d -> Tile.contains d c) module_dies) then begin
        tiles := tile :: !tiles;
        incr count
      end)
    filler.Grid.tiles;
  let tiles = Array.of_list (List.rev !tiles) in
  (* Basis.make runs the design-grid PCA - the dominant cost here. *)
  let basis =
    Ssta_obs.Obs.with_span "design_grid.pca" (fun () ->
        Basis.make ~n_params ~corr ~pitch tiles)
  in
  {
    tiles;
    basis;
    instance_tile_offset = offsets;
    instance_n_tiles = counts;
  }

let design_tile_of_instance t ~inst tile =
  if tile < 0 || tile >= t.instance_n_tiles.(inst) then
    invalid_arg "Design_grid.design_tile_of_instance: tile out of range";
  t.instance_tile_offset.(inst) + tile
