(** Block-based canonical arrival-time propagation (paper Section II):
    a single PERT-like sweep over the timing graph computing, per vertex,
    the statistical maximum over fanin edges of [arrival(src) + delay].

    Two tiers share one sweep implementation:

    + the allocation-free tier ({!forward_into} / {!backward_to_into})
      propagates through a caller-owned {!workspace} over a packed
      {!Form_buf.t} of edge forms, allocating nothing per call — the hot
      path of criticality analysis, which performs one forward sweep per
      input and one backward sweep per output on the same graph;
    + the pure tier ({!forward} / {!backward_to}) keeps the original
      [Form.t option array] API as a thin wrapper over the kernels (it
      packs the forms and unpacks the result, so it still allocates). *)

module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph

type workspace
(** Reusable per-sweep state: one {!Form_buf.t} slot per vertex plus a
    reachability mask.  A workspace grows on demand and may be reused
    across graphs and dimensions; each sweep fully re-initializes the
    portion it reads.  After a sweep the workspace holds that sweep's
    result until the next sweep overwrites it. *)

val create_workspace : ?slab:Form_buf.slab -> unit -> workspace
(** With [~slab], the workspace's vertex buffer is carved from the slab
    whenever it (re)grows instead of being freshly allocated — the batch
    engine gives each pool worker one capacity-planned slab so every
    scenario reuses the same storage.  Size the slab so steady-state sweeps
    never regrow (each regrowth carves again, bumping the cursor). *)

val ws_buf : workspace -> Form_buf.t
(** Vertex-indexed slots of the last sweep (valid where {!ws_reached}). *)

val ws_reached : workspace -> int -> bool
(** Whether the last sweep reached the vertex (its slot is meaningful). *)

val ws_form : workspace -> int -> Form.t option
(** Allocating probe of one vertex (for result extraction and tests). *)

val ws_reach_into : workspace -> n:int -> into:Bytes.t -> unit
(** Copy the first [n] bytes of the last sweep's reachability mask into a
    caller-owned buffer (non-zero byte = reached).  The criticality screen
    snapshots each backward pass's mask this way, so its inner loop tests
    output membership with one byte load instead of a NaN-sentinel double
    load. *)

val ws_source_cone_into : workspace -> Tgraph.t -> into:int array -> int
(** Fill [into] (length >= [Tgraph.n_edges]) with the indices, ascending,
    of the edges whose source the last sweep reached, returning the count —
    {!Tgraph.src_cone_into} over the workspace's own mask.  Built once per
    forward sweep, an input's cone replaces the per-output full edge scan
    of the criticality screen. *)

val forward_into :
  workspace -> Tgraph.t -> forms:Form_buf.t -> sources:int array -> unit
(** Arrival forms with arrival 0 at every vertex of [sources], left in the
    workspace; unreachable vertices are marked unreached.  [sources] will
    usually be the graph's inputs (block-based SSTA) or one input (the
    exclusive arrival times of paper eq. (15)).  Bit-identical to
    {!forward}. *)

val forward_cone_into :
  workspace ->
  Tgraph.t ->
  forms:Form_buf.t ->
  sources:int array ->
  edges:int array ->
  lo:int ->
  hi:int ->
  unit
(** {!forward_into} restricted to a precomputed cone: only
    [edges.(lo..hi-1)] are visited, in order (a CSR range into a shared
    cone array, so callers never slice per sweep).  The range must be
    ascending and contain every edge whose source the sweep reaches (the
    full reachable cone of [sources]); the result is then bit-identical to
    {!forward_into}, which skips exactly the missing edges via its
    reached-source guard.  The batch engine builds each input's cone once
    ({!Tgraph.reachable_from}) and shares it across all scenarios. *)

val forward_update_into :
  workspace ->
  Tgraph.t ->
  forms:Form_buf.t ->
  sources:int array ->
  dirty:Bytes.t ->
  int * int
(** Incremental re-timing of a prior {!forward_into} (or
    {!forward_update_into}) result held in the workspace: recompute only
    the vertices whose byte is set in [dirty], in topological order,
    reusing the stored arrival of every clean vertex.  Returns
    [(vertices recomputed, fanin edges visited)].

    The contract: the workspace holds a completed forward sweep of the
    same graph from the same [sources] over edge forms that differ from
    [forms] {e only} at edges whose sink is dirty, and [dirty] is closed
    under fanout ({!Tgraph.fanout_closure_into} of the edited edges'
    sinks).  Then the updated workspace is bit-identical to a full
    {!forward_into} over [forms] - the clean slots already hold the full
    sweep's values, and each dirty vertex is rebuilt with the identical
    fanin-range fold.  [test/test_serve.ml] pins this against full
    re-sweeps over random DAGs and edit sequences.  Cost is O(dirty
    fanin edges) form operations plus an O(vertices) mask reset - the
    [hssta serve] what-if hot path. *)

val backward_to_into :
  workspace -> Tgraph.t -> forms:Form_buf.t -> int -> unit
(** Per vertex, the canonical maximum path delay from the vertex to the
    given output, left in the workspace.  Bit-identical to
    {!backward_to}. *)

val backward_block_into :
  workspace array ->
  Tgraph.t ->
  forms:Form_buf.t ->
  outs:int array ->
  lo:int ->
  hi:int ->
  unit
(** Blocked multi-output backward propagation: for each [k] in [lo, hi),
    workspace [wss.(k)] ends up bit-identical to
    [backward_to_into wss.(k) g ~forms outs.(k)], but all sweeps of the
    block advance through {e one} pass over the reversed topological edge
    order, amortizing the edge-table traversal across the block.  The
    workspaces must be distinct.  Per-output accounting is unchanged
    ([propagate.backward_sweeps] still counts outputs); each non-empty
    block bumps [propagate.backward_blocks] once.

    Slab-backed workspaces swept in parallel blocks over one shared slab
    must be {!reserve}d sequentially first (carving races otherwise). *)

val reserve : workspace -> dims:Form.dims -> n:int -> unit
(** Pre-size the workspace for sweeps of [n] vertices at [dims] — carving
    from its slab now, outside any parallel region, so later in-region
    sweeps never regrow.  Sweeps re-prepare themselves regardless; this
    only front-loads the allocation. *)

val scalar_summaries_into :
  workspace -> n:int -> mu:float array -> sigma:float array -> unit
(** Fill [mu]/[sigma] (length >= [n]) with per-vertex mean and standard
    deviation of the last sweep, [nan] at unreached vertices. *)

val stat_mu : int
val stat_sigma : int
val stat_var : int
val stat_rand : int

val stat_stride : int
(** Layout of {!scalar_stats_into}: vertex [v]'s statistic [stat_x] lives
    at [into.{stat_stride * v + stat_x}] (= 4 floats per vertex). *)

val scalar_stats_into : workspace -> n:int -> into:Form_buf.data -> unit
(** As {!scalar_summaries_into} plus per-vertex variance and random
    coefficient, written into one interleaved unboxed slab row of length
    >= [stat_stride * n] — the retained per-vertex statistics of the
    blocked criticality screen, interleaved so a visit's scattered vertex
    access costs one cache line instead of four.  [sigma] is [sqrt var]
    exactly as {!Form_buf.std} computes it, so every row value is
    bit-identical to the corresponding probe. *)

val forward :
  Tgraph.t -> forms:Form.t array -> sources:int array -> Form.t option array
(** Arrival forms with arrival 0 at every vertex of [sources]; [None] where
    unreachable. *)

val forward_all : Tgraph.t -> forms:Form.t array -> Form.t option array
(** [forward] from all primary inputs. *)

val backward_to :
  Tgraph.t -> forms:Form.t array -> int -> Form.t option array
(** Per vertex, the canonical maximum path delay from the vertex to the
    given output - the negated required time with required time 0 at the
    output (paper eq. (15)'s [r_e]). *)

val max_over : Form.t option array -> int array -> Form.t option
(** Statistical max of the forms at the given vertices ([None] if none are
    reachable); e.g. the circuit delay as the max over outputs. *)

val scalar_summaries : Form.t option array -> float array * float array
(** Per-vertex (mean, sigma) with [nan] at unreachable vertices - the
    compact tables the criticality screening works from. *)
