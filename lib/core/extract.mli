(** Statistical timing-model extraction (paper Fig. 3):

    + compute the maximum criticality [c_m] of every edge,
    + remove edges with [c_m] below the threshold [delta],
    + apply serial and parallel merge operations to a fixpoint.

    The result preserves every input/output port and (approximately) the
    statistical input-output delay matrix while being much smaller - the
    paper reports ~80 % fewer edges on the ISCAS85 suite with
    [delta = 0.05]. *)

val extract :
  ?domains:int -> ?delta:float -> Ssta_timing.Build.t -> Timing_model.t
(** [delta] defaults to the paper's 0.05.  The returned model shares the
    characterization basis/grid of the build context.  [domains] (default
    {!Ssta_par.Par.domains}) parallelizes the criticality analysis inside
    the extraction; the extracted model is bit-identical for every domain
    count. *)

val extract_with_criticality :
  ?exact:bool ->
  ?domains:int ->
  ?delta:float ->
  Ssta_timing.Build.t ->
  Timing_model.t * Criticality.result
(** Also returns the criticality analysis (with exact per-edge maximum
    criticalities when [exact] - e.g. for the paper's Fig. 6 histogram). *)

val extract_design :
  ?domains:int ->
  ?delta:float ->
  name:string ->
  Floorplan.t ->
  Design_grid.t ->
  Hier_analysis.result ->
  Timing_model.t
(** Multi-level hierarchy: compress an analyzed {e design} into a timing
    model of its own.  The stitched design-level graph (whose forms are
    already canonical over the design basis) goes through the same
    criticality filter and merge operations as a leaf module; the design's
    heterogeneous tile partition becomes the new model's characterization
    grid, so the result can be instantiated in a yet larger design.  Output
    load increments are inherited from the instances driving each design
    output (rewritten over the design basis). *)
