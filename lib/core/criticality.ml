module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Normal = Ssta_gauss.Normal
module Par = Ssta_par.Par
module Obs = Ssta_obs.Obs
module A1 = Bigarray.Array1

(* All counters are published once per [compute] from the merged chunk
   results.  The chunk layout is a pure function of the port counts (never
   of the domain count), and each chunk's contribution is summed, so the
   totals are domain-count invariant - test_obs.ml pins them at 1 vs 4
   domains.

   [screened_pairs] counts the pairs the scalar screen disposed of (bound
   test failed); pairs that went on to a full evaluation are counted by
   [exact_evals] instead, and pairs on settled edges are never visited at
   all.  The pre-cone implementation counted every reachable pair visit in
   [screened_pairs], including the evaluated and settled ones - the two
   countings are compared in EXPERIMENTS.md. *)
let c_exact_evals = Obs.counter "criticality.exact_evals"
let c_screened_pairs = Obs.counter "criticality.screened_pairs"
let c_kept_edges = Obs.counter "criticality.kept_edges"
let c_removed_edges = Obs.counter "criticality.removed_edges"
let c_cone_edges = Obs.counter "criticality.cone_edges"
let c_compacted_edges = Obs.counter "criticality.compacted_edges"
let c_backward_tiles = Obs.counter "criticality.backward_tiles"

(* Peak slab footprint of one screen: the tile slab (backward workspaces,
   retained scalar rows and covariance tables) plus every pool worker's
   forward slab.  Named under extract.* because this is the extraction
   pipeline's dominant resident cost - the gauge is the number to compare
   against CRIT_TILE_BUDGET_MB. *)
let g_slab_peak = Obs.gauge "extract.slab_bytes_peak"

type result = {
  keep : bool array;
  cm : float array;
  exact_evals : int;
  screened_pairs : int;
}

(* Backward tile size: [?tile] argument, else the CLI override
   (hssta --crit-tile, possibly "auto"), else the CRIT_TILE environment
   variable, else the auto heuristic - tiled slab storage is the default
   extraction architecture; CRIT_TILE=<n> or --crit-tile <n> pins a fixed
   tile (and <n> >= |O| reproduces the old untiled behaviour). *)
type tile_choice = Fixed of int | Auto

(* Pure parsers for the environment knobs, exposed for tests: the lazy
   env reads below force once per process, so precedence is tested
   against these instead of mutating the environment mid-run. *)
let tile_choice_of_string s =
  let s = String.trim s in
  if String.lowercase_ascii s = "auto" then Some Auto
  else
    match int_of_string_opt s with
    | Some n when n >= 1 -> Some (Fixed n)
    | _ -> None

let budget_mb_of_string s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some n
  | _ -> None

let tile_env =
  lazy
    (match Sys.getenv_opt "CRIT_TILE" with
    | Some s -> tile_choice_of_string s
    | None -> None)

let tile_override = ref None
let set_tile n = tile_override := Some (Fixed (max 1 n))
let set_tile_auto () = tile_override := Some Auto

let default_budget_mb = 256

let budget_mb_env =
  lazy
    (match Sys.getenv_opt "CRIT_TILE_BUDGET_MB" with
    | Some s -> (
        match budget_mb_of_string s with
        | Some n -> n
        | None -> default_budget_mb)
    | None -> default_budget_mb)

(* Auto-tile heuristic: one retained output slot costs
   nv * (8 * stride + 34) + 8 * m bytes - the backward Form_buf workspace
   (stride floats per vertex) and its reachability byte, the four
   per-output scalar rows (mean, sigma, variance, random coefficient),
   the destination bitmask, and the per-output Cov(edge, required) table
   (one float per edge).  The tile is the largest count of such slots
   that fits the byte budget (CRIT_TILE_BUDGET_MB, default 256), floored
   at 1 so a single output always proceeds regardless of budget. *)
let auto_tile ?budget_mb ~n_vertices ~n_edges ~stride () =
  let mb =
    match budget_mb with
    | Some b -> max 1 b
    | None -> Lazy.force budget_mb_env
  in
  let per_output =
    max 1 ((n_vertices * ((8 * stride) + 34)) + (8 * n_edges))
  in
  max 1 (mb * 1024 * 1024 / per_output)

let resolve_tile tile ~nv ~m ~stride no =
  let of_choice = function
    | Fixed n -> n
    | Auto -> auto_tile ~n_vertices:nv ~n_edges:m ~stride ()
  in
  let t =
    match tile with
    | Some n ->
        if n < 1 then
          invalid_arg "Criticality.compute: tile must be at least 1";
        n
    | None -> (
        match !tile_override with
        | Some c -> of_choice c
        | None -> (
            match Lazy.force tile_env with
            | Some c -> of_choice c
            | None -> of_choice Auto))
  in
  max 1 (min t (max no 1))

(* Per-chunk screening state, persistent across output tiles: every chunk
   of inputs screens against its own keep/bar arrays and the chunk
   results are merged in chunk-index order (or for keep, sum for the
   counters), so the outcome is bit-identical no matter how many
   domains ran the chunks.  The bar-based pruning therefore only
   accelerates within a chunk; the merged [keep] set is unaffected (a pair
   is only ever pruned for an edge the same chunk already settled), and in
   exact mode the merged maximum criticality is unaffected too (a pruned
   pair's tightness is bounded by a z-score some evaluated pair of the
   same chunk already reached).

   [s_settled] marks the edges whose decision threshold reached infinity
   (threshold mode: kept; exact mode: identity-detected, cm_z already
   infinite).  A settled edge can never survive the bound test again nor
   improve cm_z, so skipping it without even loading its endpoints - and
   compacting it out of the chunk's active cone lists - changes no result
   bits, only the visit count.

   In threshold mode the per-edge bar only ever takes two values - the
   initial z_delta and infinity, the latter exactly when the edge is
   settled - so [s_bar] is only materialized in exact mode and the
   threshold screen reads the scalar [bar0] instead: at 1M-gate scale the
   32 chunks' float bars alone were half a gigabyte of resident state.

   The cm_z accumulator is NOT part of this state: it is write-only with
   respect to the screen's control flow (decisions read bar/settled/keep,
   never cm_z), and float max is insensitive to how the contributions are
   partitioned, so the best-z table lives in the per-worker scratch
   (domains of them, not 32) and is max-merged once at the end - another
   half gigabyte of per-chunk floats gone at the million-gate scale,
   bit-identically. *)
type chunk_state = {
  s_keep : Bytes.t;
  s_bar : float array; (* exact mode only; [||] in threshold mode *)
  s_settled : Bytes.t;
  mutable s_exact : int;
  mutable s_screened : int;
  mutable s_cone : int;
  mutable s_compacted : int;
}

(* Per-domain scratch drawn from a pool and reused across every tile's
   screen region: one forward workspace per input slot of a chunk, its
   four arrival scalar rows and Cov(arrival, edge) cone table - all carved
   from the worker's capacity-planned slab - plus the active cone list,
   the quad gather row and the survivor lanes of the eval batch.  The
   whole screen builds at most [domains] of these. *)
type scratch = {
  fwd : Propagate.workspace array;
  a_st : Form_buf.data array;
  cov_ae : Form_buf.data array;
  cone : int array array;
  cone_len : int array;
  quad : float array;
  (* Survivor lanes of the blocked eval batch: edge/source/sink indices
     and the bound-test mu_de of up to [Form_buf.cov4_lanes] pending
     evals, plus the batch kernel's lanes-by-four covariance output
     row. *)
  b_s : int array;
  b_d : int array;
  b_e : int array;
  b_mu : float array;
  b_cov : float array;
  (* The current walk's pair-maximum mean and std, parked in scratch so
     the shared decision tail can read them without taking float
     arguments - a non-inlined call boxes every float argument, and the
     tail runs once per surviving pair. *)
  wk : float array;
  (* Worker-wide best exact tightness z-score per edge (neg_infinity =
     never evaluated by this worker); max-merged across workers after the
     last tile.  See the chunk_state comment for why this is per worker
     rather than per chunk. *)
  cm_z : float array;
  source1 : int array;
  slab : Form_buf.slab;
}

let compute ?(exact = false) ?domains ?tile ?(engine = `Blocked) ~delta g
    ~forms =
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Criticality.compute: delta must lie in (0, 1)";
  let reference = engine = `Reference in
  let m = Tgraph.n_edges g in
  let nv = Tgraph.n_vertices g in
  let inputs = g.Tgraph.inputs and outputs = g.Tgraph.outputs in
  let ni = Array.length inputs and no = Array.length outputs in
  let dims =
    if m = 0 then { Form.n_globals = 0; n_pcs = 0 } else Form.dims forms.(0)
  in
  let stride = dims.Form.n_globals + dims.Form.n_pcs + 2 in
  let tile_sz = resolve_tile tile ~nv ~m ~stride no in
  let n_tiles = Par.n_chunks ~chunk:tile_sz no in
  let floor_p = 1e-3 in
  let z_delta = Normal.quantile delta in
  let z_floor = Normal.quantile floor_p in
  (* Initial per-edge decision threshold in z-space: in threshold mode an
     edge is settled by any witness >= delta; in exact mode the bar rises to
     the best exact criticality found so far within the chunk (bounds below
     it cannot improve cm). *)
  let bar0 = if exact then z_floor else z_delta in
  (* Edge delay scalars, interleaved four per edge (mu, sigma, var, rand)
     like the vertex stat rows, so a visit reads one cache line per
     edge. *)
  let dst4 = Propagate.stat_stride in
  let st_mu = Propagate.stat_mu
  and st_sg = Propagate.stat_sigma
  and st_vr = Propagate.stat_var
  and st_rd = Propagate.stat_rand in
  let d_st = Array.make (max 1 (dst4 * m)) 0.0 in
  Array.iteri
    (fun e f ->
      let o = dst4 * e in
      let v = Form.variance f in
      d_st.(o + Propagate.stat_mu) <- f.Form.mean;
      d_st.(o + Propagate.stat_sigma) <- sqrt v;
      d_st.(o + Propagate.stat_var) <- v;
      d_st.(o + Propagate.stat_rand) <- f.Form.rand)
    forms;
  (* Edge forms packed once into a flat buffer; every sweep and covariance
     probe below reads from it without touching the boxed originals. *)
  let fbuf = Form_buf.of_forms dims forms in
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  (* Screening fan-out: inputs are cut into at most 32 fixed chunks (a
     function of |I| only, never of the domain count or the tile size, to
     keep the chunk layout - and the merged result - invariant). *)
  let input_chunk = max 1 ((ni + 31) / 32) in
  let n_chunks = Par.n_chunks ~chunk:input_chunk ni in
  let srow_floats = max (dst4 * nv) 1 in
  let tab_floats = max m 1 in
  let ws_floats = Form_buf.floats_needed dims nv in
  (* Backward storage for one output tile, reused tile after tile: only
     [tile_sz] retained output slots are resident at once instead of all
     [no].  Each output's backward sweep still runs exactly once - tiling
     costs extra FORWARD sweeps instead, [n_tiles] per input, because
     every chunk re-derives its inputs' arrival data per tile.  The whole
     tile lives on one capacity-planned slab: the backward Form_buf
     workspaces, the interleaved scalar stat row per output and the
     Cov(edge, required) tables are all carved from a single bigarray
     allocation, reused tile after tile.  Workspaces are reserved
     sequentially here so the parallel backward blocks never carve from
     the shared slab concurrently. *)
  let tile_slab =
    Form_buf.slab_create (tile_sz * (ws_floats + srow_floats + tab_floats))
  in
  let tile_ws =
    Array.init tile_sz (fun _ -> Propagate.create_workspace ~slab:tile_slab ())
  in
  Array.iter (fun ws -> Propagate.reserve ws ~dims ~n:nv) tile_ws;
  let req_st =
    Array.init tile_sz (fun _ -> Form_buf.slab_floats tile_slab srow_floats)
  in
  let cov_er =
    Array.init tile_sz (fun _ -> Form_buf.slab_floats tile_slab tab_floats)
  in
  let omasks = Array.init tile_sz (fun _ -> Bytes.make (max nv 1) '\000') in
  (* Settled-edge compaction cadence: rewrite the active cone lists after
     any output whose scan settled this many edges since the last rewrite.
     Any cadence is result-safe (compaction only drops edges the scan
     would skip anyway); this one bounds the rewrite work by a fraction of
     the settles that made it worthwhile. *)
  let compact_min = max 64 (m asr 5) in
  let screen_tile_chunk st scratch ~t_lo ~tn ~lo ~hi =
    let n_in = hi - lo in
    let keep = st.s_keep
    and cm_z = scratch.cm_z
    and bar = st.s_bar
    and settled = st.s_settled in
    (* One forward sweep per input of the chunk: arrival forms, scalar
       rows, and the input's active edge cone - ascending edge indices
       whose source the input reaches, minus the edges this chunk already
       settled.  Rebuilt per tile from the (bit-identical) sweep, so the
       non-skipped visit sequence below is the same for every tile size.
       The blocked engine additionally fills the Cov(arrival, edge) table
       over the active cone, hoisting the eval's A.E dot product out of
       the visit loop. *)
    for slot = 0 to n_in - 1 do
      scratch.source1.(0) <- inputs.(lo + slot);
      let ws = scratch.fwd.(slot) in
      Propagate.forward_into ws g ~forms:fbuf ~sources:scratch.source1;
      Propagate.scalar_stats_into ws ~n:nv ~into:scratch.a_st.(slot);
      let cone = scratch.cone.(slot) in
      let raw = Propagate.ws_source_cone_into ws g ~into:cone in
      let k = ref 0 in
      for x = 0 to raw - 1 do
        let e = Array.unsafe_get cone x in
        if Bytes.unsafe_get settled e = '\000' then begin
          Array.unsafe_set cone !k e;
          incr k
        end
      done;
      scratch.cone_len.(slot) <- !k;
      st.s_cone <- st.s_cone + !k;
      if not reference then
        Form_buf.cov_src_cone_into ~verts:(Propagate.ws_buf ws) ~forms:fbuf
          ~src ~cone ~len:!k ~into:scratch.cov_ae.(slot)
    done;
    let pending = ref 0 in
    (* Decision tail shared by both engines: [scratch.quad] holds the
       twelve gathered moments (bit-identical however they were gathered),
       and this commits z, keep, cm_z, bar and settled for edge [e].
       [bar.(e)] is reloaded here rather than threaded from the bound
       test: an edge appears at most once per (output, input) walk, so
       nothing can have changed it in between even when the blocked
       engine defers judgement to a batch flush. *)
    let judge ~e ~j =
      let quad = scratch.quad in
      (* Floats come in through scratch ([b_mu.(j)], [wk]) rather than as
         arguments: this call is not inlined, and float arguments to a
         non-inlined OCaml function are boxed - three young-heap
         allocations per exact evaluation otherwise. *)
      let mu_de = Array.unsafe_get scratch.b_mu j in
      let m_mu = Array.unsafe_get scratch.wk 0 in
      let m_sig = Array.unsafe_get scratch.wk 1 in
      let bar_e = if exact then Array.unsafe_get bar e else bar0 in
      let var_de =
        Array.unsafe_get quad Form_buf.quad_var_a
        +. Array.unsafe_get d_st ((dst4 * e) + st_vr)
        +. Array.unsafe_get quad Form_buf.quad_var_r
        +. 2.0
           *. (Array.unsafe_get quad Form_buf.quad_cov_ae
              +. Array.unsafe_get quad Form_buf.quad_cov_ar
              +. Array.unsafe_get quad Form_buf.quad_cov_er)
      in
      let cov_dem =
        Array.unsafe_get quad Form_buf.quad_cov_am
        +. Array.unsafe_get quad Form_buf.quad_cov_em
        +. Array.unsafe_get quad Form_buf.quad_cov_rm
      in
      let m_var = m_sig *. m_sig in
      let theta2 = var_de +. m_var -. (2.0 *. cov_dem) in
      (* Identity detection: when every i->j path runs through e (or ties
         are perfectly correlated), M_ij IS d_e - same mean and same
         linear part - but the canonical forms carry the shared private
         randoms as if independent, which would collapse the tightness to
         1/2.  The criticality of such an edge is 1 by definition
         (P(de >= de) = 1). *)
      let scale = var_de +. m_var +. 1e-30 in
      let rand_de2 =
        let ra = Array.unsafe_get quad Form_buf.quad_rand_a
        and rd = Array.unsafe_get quad Form_buf.quad_rand_e
        and rr = Array.unsafe_get quad Form_buf.quad_rand_r in
        (ra *. ra) +. (rd *. rd) +. (rr *. rr)
      in
      let m_rand = Array.unsafe_get quad Form_buf.quad_rand_m in
      let linear_dist2 =
        var_de -. rand_de2 +. m_var -. (m_rand *. m_rand)
        -. (2.0 *. cov_dem)
      in
      (* Thresholds are deliberately not machine-epsilon tight: an edge
         whose M differs from de only by a strongly-dominated competitor
         (tightness already > ~0.98) lands here too, which is where it
         belongs - competing paths at statistical parity shift M's mean
         by a sizable fraction of sigma and are rejected by the mean
         test. *)
      let same_path =
        m_mu -. mu_de <= (0.02 *. m_sig) +. 1e-30
        && linear_dist2 <= 1e-4 *. scale
        && m_var <= var_de +. (1e-3 *. scale)
      in
      let z =
        if same_path then infinity
        else if theta2 <= 1e-12 *. scale then
          if mu_de >= m_mu then infinity else neg_infinity
        else (mu_de -. m_mu) /. sqrt theta2
      in
      if z >= z_delta then Bytes.unsafe_set keep e '\001';
      if z > cm_z.(e) then cm_z.(e) <- z;
      if exact then begin
        bar.(e) <- Float.max bar_e z;
        if Array.unsafe_get bar e = infinity then begin
          Bytes.unsafe_set settled e '\001';
          incr pending
        end
      end
      else if Bytes.unsafe_get keep e <> '\000' then begin
        (* Threshold mode: a kept edge's bar is infinity by definition,
           so settle it without storing a float bar at all. *)
        Bytes.unsafe_set settled e '\001';
        incr pending
      end
    in
    for jj = 0 to tn - 1 do
      let out = outputs.(t_lo + jj) in
      let rst = req_st.(jj) in
      let cov_er_row = cov_er.(jj) in
      let omask = omasks.(jj) in
      let rbuf = Propagate.ws_buf tile_ws.(jj) in
      for slot = 0 to n_in - 1 do
        let ws = scratch.fwd.(slot) in
        if Propagate.ws_reached ws out then begin
          let abuf = Propagate.ws_buf ws in
          let m_mu = Form_buf.mean abuf out in
          let m_sig = Form_buf.std abuf out in
          scratch.wk.(0) <- m_mu;
          scratch.wk.(1) <- m_sig;
          let ast = scratch.a_st.(slot) in
          let cov_ae_row = scratch.cov_ae.(slot) in
          let cone = scratch.cone.(slot) in
          let clen = scratch.cone_len.(slot) in
          let m_rand = A1.unsafe_get ast ((dst4 * out) + st_rd) in
          (* Survivor batching (blocked engine): a walk's evals all touch
             distinct edges (a cone lists each edge once), and the screen
             state an eval writes - keep, cm_z, bar, settled, all
             per-edge - is never read by another visit of the same walk,
             so collecting survivors into lanes and gathering their
             covariances with one multi-chain kernel commutes with the
             walk: every value, update and counter lands bit-identically.
             The point of the batch is FP-add latency, see
             {!Form_buf.cov4_batch2_into}. *)
          let bn = ref 0 in
          let flush () =
            let n = !bn in
            if n = Form_buf.cov4_lanes then
              Form_buf.cov4_batch2_into ~a:abuf ~e:fbuf ~r:rbuf ~m:abuf
                ~im:out ~srcs:scratch.b_s ~dsts:scratch.b_d
                ~edges:scratch.b_e ~into:scratch.b_cov
            else
              (* The only partial batch is a single lane (lanes = 2),
                 whose base offset in [b_cov] is 0 - the lone-eval kernel
                 writes it in place. *)
              Form_buf.cov4_into ~a:abuf ~ia:scratch.b_s.(0) ~e:fbuf
                ~ie:scratch.b_e.(0) ~r:rbuf ~ir:scratch.b_d.(0) ~m:abuf
                ~im:out ~into:scratch.b_cov;
            for j = 0 to n - 1 do
              let e = Array.unsafe_get scratch.b_e j in
              let s = Array.unsafe_get scratch.b_s j in
              let d = Array.unsafe_get scratch.b_d j in
              let quad = scratch.quad in
              let base = j * Form_buf.cov4_size in
              Array.unsafe_set quad Form_buf.quad_var_a
                (A1.unsafe_get ast ((dst4 * s) + st_vr));
              Array.unsafe_set quad Form_buf.quad_var_r
                (A1.unsafe_get rst ((dst4 * d) + st_vr));
              Array.unsafe_set quad Form_buf.quad_cov_ae
                (A1.unsafe_get cov_ae_row e);
              Array.unsafe_set quad Form_buf.quad_cov_er
                (A1.unsafe_get cov_er_row e);
              Array.unsafe_set quad Form_buf.quad_cov_ar
                (Array.unsafe_get scratch.b_cov (base + Form_buf.cov4_ar));
              Array.unsafe_set quad Form_buf.quad_cov_em
                (Array.unsafe_get scratch.b_cov (base + Form_buf.cov4_em));
              Array.unsafe_set quad Form_buf.quad_cov_am
                (Array.unsafe_get scratch.b_cov (base + Form_buf.cov4_am));
              Array.unsafe_set quad Form_buf.quad_cov_rm
                (Array.unsafe_get scratch.b_cov (base + Form_buf.cov4_rm));
              Array.unsafe_set quad Form_buf.quad_rand_a
                (A1.unsafe_get ast ((dst4 * s) + st_rd));
              Array.unsafe_set quad Form_buf.quad_rand_e
                (Array.unsafe_get d_st ((dst4 * e) + st_rd));
              Array.unsafe_set quad Form_buf.quad_rand_r
                (A1.unsafe_get rst ((dst4 * d) + st_rd));
              Array.unsafe_set quad Form_buf.quad_rand_m m_rand;
              judge ~e ~j
            done;
            bn := 0
          in
          for x = 0 to clen - 1 do
            let e = Array.unsafe_get cone x in
            (* Settled edges are skipped (and periodically compacted out of
               [cone]) without being counted: they can neither flip [keep]
               nor raise [cm_z], see [chunk_state]. *)
            if Bytes.unsafe_get settled e = '\000' then begin
              let d = Array.unsafe_get dst e in
              (* One byte load answers "does this edge reach the output"
                 where the pre-cone screen loaded a NaN-sentinel double. *)
              if Bytes.unsafe_get omask d <> '\000' then begin
                let s = Array.unsafe_get src e in
                let o_a = dst4 * s
                and o_e = dst4 * e
                and o_r = dst4 * d in
                let mu_de =
                  A1.unsafe_get ast (o_a + st_mu)
                  +. Array.unsafe_get d_st (o_e + st_mu)
                  +. A1.unsafe_get rst (o_r + st_mu)
                in
                let theta_max =
                  A1.unsafe_get ast (o_a + st_sg)
                  +. Array.unsafe_get d_st (o_e + st_sg)
                  +. A1.unsafe_get rst (o_r + st_sg)
                  +. m_sig
                in
                (* The z-space bound test, phrased as a boolean join: an
                   [if]/[else] producing a float would box it on every
                   screened pair (no flambda), and this comparison runs
                   tens of millions of times at c7552 scale.  The settled
                   test above already rules out bar = infinity, so the
                   mu_de >= m_mu branch always survives. *)
                let bar_e =
                  if exact then Array.unsafe_get bar e else bar0
                in
                let survivor =
                  if mu_de >= m_mu then true
                  else (mu_de -. m_mu) /. theta_max > bar_e
                in
                if survivor then begin
                  (* Survivor: exact tightness z-score, allocation-free.
                     With de = a + d + r (independent private randoms),
                     Var de and Cov(de, M) decompose into pairwise
                     covariances of the stored forms.  The reference
                     engine gathers all of them with one fused strided
                     pass and judges on the spot; the blocked engine
                     reads the visit-invariant ones from the retained
                     rows and tables and defers the four per-visit
                     covariances to the lane batch.  Both fill the same
                     scratch layout with bit-identical values, so the
                     shared [judge] commits identical result bits. *)
                  st.s_exact <- st.s_exact + 1;
                  if reference then begin
                    Form_buf.quad_stats_into ~a:abuf ~ia:s ~e:fbuf ~ie:e
                      ~r:rbuf ~ir:d ~m:abuf ~im:out ~into:scratch.quad;
                    Array.unsafe_set scratch.b_mu 0 mu_de;
                    judge ~e ~j:0
                  end
                  else begin
                    let j = !bn in
                    Array.unsafe_set scratch.b_e j e;
                    Array.unsafe_set scratch.b_s j s;
                    Array.unsafe_set scratch.b_d j d;
                    Array.unsafe_set scratch.b_mu j mu_de;
                    bn := j + 1;
                    if j + 1 = Form_buf.cov4_lanes then flush ()
                  end
                end
                else st.s_screened <- st.s_screened + 1
              end
            end
          done;
          if (not reference) && !bn > 0 then flush ()
        end
      done;
      if !pending >= compact_min then begin
        for slot = 0 to n_in - 1 do
          let cone = scratch.cone.(slot) in
          let clen = scratch.cone_len.(slot) in
          let k = ref 0 in
          for x = 0 to clen - 1 do
            let e = Array.unsafe_get cone x in
            if Bytes.unsafe_get settled e = '\000' then begin
              Array.unsafe_set cone !k e;
              incr k
            end
          done;
          st.s_compacted <- st.s_compacted + (clen - !k);
          scratch.cone_len.(slot) <- !k
        done;
        pending := 0
      end
    done
  in
  let states =
    Array.init n_chunks (fun _ ->
        {
          s_keep = Bytes.make (max m 1) '\000';
          s_bar = (if exact then Array.make m bar0 else [||]);
          s_settled = Bytes.make (max m 1) '\000';
          s_exact = 0;
          s_screened = 0;
          s_cone = 0;
          s_compacted = 0;
        })
  in
  let pool =
    Par.pool (fun () ->
        (* One slab per pool worker backs all its forward workspaces,
           arrival scalar rows and Cov(arrival, edge) tables: a worker
           allocates once, every chunk it screens reuses it.  The slab is
           worker-exclusive, so carving inside the region is safe. *)
        let slab =
          Form_buf.slab_create
            (input_chunk * (ws_floats + srow_floats + tab_floats))
        in
        {
          fwd =
            Array.init input_chunk (fun _ ->
                Propagate.create_workspace ~slab ());
          a_st =
            Array.init input_chunk (fun _ ->
                Form_buf.slab_floats slab srow_floats);
          cov_ae =
            Array.init input_chunk (fun _ ->
                Form_buf.slab_floats slab tab_floats);
          cone = Array.init input_chunk (fun _ -> Array.make (max m 1) 0);
          cone_len = Array.make input_chunk 0;
          quad = Array.make Form_buf.quad_size 0.0;
          b_s = Array.make Form_buf.cov4_lanes 0;
          b_d = Array.make Form_buf.cov4_lanes 0;
          b_e = Array.make Form_buf.cov4_lanes 0;
          b_mu = Array.make Form_buf.cov4_lanes 0.0;
          b_cov = Array.make (Form_buf.cov4_lanes * Form_buf.cov4_size) 0.0;
          wk = Array.make 2 0.0;
          cm_z = Array.make (max m 1) neg_infinity;
          source1 = [| 0 |];
          slab;
        })
  in
  (* Tiles are processed strictly in ascending output order, and inside a
     tile every chunk visits (output, input, cone edge) in ascending
     order, so a chunk's flattened visit sequence over the whole screen is
     (j, i, e) regardless of the tile size: the per-edge bar/settled
     trajectory - hence keep, cm_z and both pair counters - is
     bit-identical at every tile size, and (by the per-chunk state) at
     every domain count.  Only the cone/compaction counters and the RSS
     depend on the tile size. *)
  for t = 0 to n_tiles - 1 do
    (* Cooperative cancellation point: an armed serve-request deadline
       aborts the screen between output tiles - never inside a tile, so
       per-chunk screening state is never left half-built. *)
    Ssta_robust.Deadline.check ~operation:"criticality.tile";
    let t_lo, t_hi = Par.chunk_bounds ~chunk:tile_sz ~n:no t in
    let tn = t_hi - t_lo in
    let touts = Array.sub outputs t_lo tn in
    (* Backward passes for this tile's outputs: the blocked engine cuts
       the tile into fixed sub-blocks (a function of the tile size only,
       so the block layout - and the backward_blocks count - is
       domain-invariant) and advances each sub-block through one reversed
       edge pass; the reference engine runs the per-output sweeps.  Each
       block task owns its tile slots outright: workspaces, scalar rows,
       destination bitmasks and covariance tables. *)
    let bblock = max 1 ((tn + 7) / 8) in
    let finish_slot k =
      let ws = tile_ws.(k) in
      Propagate.scalar_stats_into ws ~n:nv ~into:req_st.(k);
      Propagate.ws_reach_into ws ~n:nv ~into:omasks.(k);
      if not reference then
        Form_buf.cov_dst_into ~forms:fbuf ~verts:(Propagate.ws_buf ws) ~dst
          ~mask:omasks.(k) ~into:cov_er.(k)
    in
    Obs.with_span "criticality.backward" (fun () ->
        if reference then
          Par.run_tasks ?domains ~n_tasks:tn
            ~init:(fun () -> ())
            ~task:(fun () k ->
              Propagate.backward_to_into tile_ws.(k) g ~forms:fbuf touts.(k);
              finish_slot k)
            ()
        else
          Par.run_blocks ?domains ~block:bblock ~n:tn
            ~task:(fun lo hi ->
              Propagate.backward_block_into tile_ws g ~forms:fbuf ~outs:touts
                ~lo ~hi;
              for k = lo to hi - 1 do
                finish_slot k
              done)
            ());
    Obs.with_span "criticality.screen" (fun () ->
        Par.run_tasks_pool ?domains ~n_tasks:n_chunks ~pool
          ~task:(fun scratch c ->
            let lo, hi = Par.chunk_bounds ~chunk:input_chunk ~n:ni c in
            screen_tile_chunk states.(c) scratch ~t_lo ~tn ~lo ~hi)
          ())
  done;
  (* Merge in chunk-index order (all merges are order-insensitive, but the
     fixed order keeps the determinism argument local). *)
  let keep = Array.make m false in
  let cm_z = Array.make m neg_infinity in
  let exact_evals = ref 0 in
  let screened = ref 0 in
  let cone_edges = ref 0 in
  let compacted = ref 0 in
  Array.iter
    (fun st ->
      for e = 0 to m - 1 do
        if Bytes.unsafe_get st.s_keep e <> '\000' then keep.(e) <- true
      done;
      exact_evals := !exact_evals + st.s_exact;
      screened := !screened + st.s_screened;
      cone_edges := !cone_edges + st.s_cone;
      compacted := !compacted + st.s_compacted)
    states;
  List.iter
    (fun w ->
      let wz = w.cm_z in
      for e = 0 to m - 1 do
        if wz.(e) > cm_z.(e) then cm_z.(e) <- wz.(e)
      done)
    (Par.pool_members pool);
  let cm =
    Array.map
      (fun z ->
        if z = neg_infinity then 0.0
        else if z = infinity then 1.0
        else Normal.cdf z)
      cm_z
  in
  if Obs.enabled () then begin
    let kept = Array.fold_left (fun n k -> if k then n + 1 else n) 0 keep in
    Obs.add c_exact_evals !exact_evals;
    Obs.add c_screened_pairs !screened;
    Obs.add c_kept_edges kept;
    Obs.add c_removed_edges (m - kept);
    Obs.add c_cone_edges !cone_edges;
    Obs.add c_compacted_edges !compacted;
    Obs.add c_backward_tiles n_tiles;
    let slab_bytes =
      List.fold_left
        (fun acc w -> acc + Form_buf.slab_peak_bytes w.slab)
        (Form_buf.slab_peak_bytes tile_slab)
        (Par.pool_members pool)
    in
    Obs.gauge_max g_slab_peak slab_bytes
  end;
  { keep; cm; exact_evals = !exact_evals; screened_pairs = !screened }
