module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Normal = Ssta_gauss.Normal
module Par = Ssta_par.Par
module Obs = Ssta_obs.Obs

(* All four counters are published once per [compute] from the merged
   chunk results.  The chunk layout is a pure function of the port counts
   (never of the domain count), and each chunk's contribution is summed,
   so the totals are domain-count invariant - test_obs.ml pins them at 1
   vs 4 domains. *)
let c_exact_evals = Obs.counter "criticality.exact_evals"
let c_screened_pairs = Obs.counter "criticality.screened_pairs"
let c_screen_pruned = Obs.counter "criticality.screen_pruned_pairs"
let c_kept_edges = Obs.counter "criticality.kept_edges"
let c_removed_edges = Obs.counter "criticality.removed_edges"

type result = {
  keep : bool array;
  cm : float array;
  exact_evals : int;
  screened_pairs : int;
}

(* Per-chunk screening state: every chunk of inputs screens against its own
   keep/cm/bar arrays and the chunk results are merged in chunk-index order
   (or for keep, max for cm_z, sum for the counters), so the outcome is
   bit-identical no matter how many domains ran the chunks.  The bar-based
   pruning therefore only accelerates within a chunk; the merged [keep] set
   is unaffected (a pair is only ever pruned for an edge the same chunk
   already settled), and in exact mode the merged maximum criticality is
   unaffected too (a pruned pair's tightness is bounded by a z-score some
   evaluated pair of the same chunk already reached). *)
type chunk_result = {
  c_keep : bool array;
  c_cm_z : float array;
  c_exact : int;
  c_screened : int;
}

(* Per-domain scratch reused across the chunks a domain claims: one forward
   workspace plus the scalar/quad gather rows - the allocation profile per
   domain matches what the sequential loop used to allocate once. *)
type scratch = {
  ws_arr : Propagate.workspace;
  quad : float array;
  a_mu : float array;
  a_sig : float array;
  source1 : int array;
}

let compute ?(exact = false) ?domains ~delta g ~forms =
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Criticality.compute: delta must lie in (0, 1)";
  let m = Tgraph.n_edges g in
  let nv = Tgraph.n_vertices g in
  let inputs = g.Tgraph.inputs and outputs = g.Tgraph.outputs in
  let ni = Array.length inputs and no = Array.length outputs in
  let floor_p = 1e-3 in
  let z_delta = Normal.quantile delta in
  let z_floor = Normal.quantile floor_p in
  (* Initial per-edge decision threshold in z-space: in threshold mode an
     edge is settled by any witness >= delta; in exact mode the bar rises to
     the best exact criticality found so far within the chunk (bounds below
     it cannot improve cm). *)
  let bar0 = if exact then z_floor else z_delta in
  (* Edge delay scalars. *)
  let d_mu = Array.map (fun f -> f.Form.mean) forms in
  let d_var = Array.map Form.variance forms in
  let d_sig = Array.map sqrt d_var in
  (* Edge forms packed once into a flat buffer; every sweep and covariance
     probe below reads from it without touching the boxed originals. *)
  let dims =
    if m = 0 then { Form.n_globals = 0; n_pcs = 0 } else Form.dims forms.(0)
  in
  let fbuf = Form_buf.of_forms dims forms in
  (* Full backward passes, one per output, fanned out over the pool (each
     pass costs a full canonical sweep and they are independent).  Every
     pass lives in a flat Form_buf workspace - |V| * stride unboxed floats
     plus a reachability mask - retained for the whole screen because the
     criticality loop touches every output for almost every input; the
     scalar mu/sigma tables are filled in the same task (each task owns its
     output's row). *)
  let req_mu = Array.make_matrix no nv nan in
  let req_sig = Array.make_matrix no nv nan in
  let passes =
    Obs.with_span "criticality.backward" (fun () ->
        Par.map_tasks ?domains
          ~init:(fun () -> ())
          no
          (fun () j ->
            let ws = Propagate.create_workspace () in
            Propagate.backward_to_into ws g ~forms:fbuf outputs.(j);
            Propagate.scalar_summaries_into ws ~n:nv ~mu:req_mu.(j)
              ~sigma:req_sig.(j);
            ws))
  in
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  (* Screening fan-out: inputs are cut into at most 32 fixed chunks (a
     function of |I| only, never of the domain count, to keep the chunk
     layout - and the merged result - domain-count invariant). *)
  let input_chunk = max 1 ((ni + 31) / 32) in
  let screen_chunk scratch ~lo ~hi =
    let keep = Array.make m false in
    (* Best exact tightness z-score seen per edge (neg_infinity = never
       evaluated); converted to a probability after the merge. *)
    let cm_z = Array.make m neg_infinity in
    let bar = Array.make m bar0 in
    let exact_evals = ref 0 in
    let screened = ref 0 in
    for ii = lo to hi - 1 do
      let input = inputs.(ii) in
      scratch.source1.(0) <- input;
      Propagate.forward_into scratch.ws_arr g ~forms:fbuf
        ~sources:scratch.source1;
      let abuf = Propagate.ws_buf scratch.ws_arr in
      let a_mu = scratch.a_mu and a_sig = scratch.a_sig in
      Propagate.scalar_summaries_into scratch.ws_arr ~n:nv ~mu:a_mu
        ~sigma:a_sig;
      Array.iteri
        (fun j out ->
          if Propagate.ws_reached scratch.ws_arr out then begin
            let m_mu = Form_buf.mean abuf out in
            let m_sig = Form_buf.std abuf out in
            let rmu = req_mu.(j) and rsig = req_sig.(j) in
            for e = 0 to m - 1 do
              let s = Array.unsafe_get src e in
              let amu = Array.unsafe_get a_mu s in
              if amu = amu (* reachable from input *) then begin
                let d = Array.unsafe_get dst e in
                let rm = Array.unsafe_get rmu d in
                if rm = rm (* reaches output *) then begin
                  incr screened;
                  let mu_de = amu +. Array.unsafe_get d_mu e +. rm in
                  let theta_max =
                    Array.unsafe_get a_sig s
                    +. Array.unsafe_get d_sig e
                    +. Array.unsafe_get rsig d
                    +. m_sig
                  in
                  (* The z-space bound test, phrased as a boolean join: an
                     [if]/[else] producing a float would box it on every
                     screened pair (no flambda), and this comparison runs
                     hundreds of millions of times at c7552 scale. *)
                  let bar_e = Array.unsafe_get bar e in
                  let survivor =
                    if mu_de >= m_mu then bar_e < infinity
                    else (mu_de -. m_mu) /. theta_max > bar_e
                  in
                  if survivor then begin
                    (* Survivor: exact tightness z-score, allocation-free.
                       With de = a + d + r (independent private randoms),
                       Var de and Cov(de, M) decompose into pairwise
                       covariances of the stored forms, so no canonical sum
                       needs to be materialized; one fused strided gather
                       reads everything out of the flat buffers. *)
                    let rbuf = Propagate.ws_buf passes.(j) in
                    incr exact_evals;
                    Form_buf.quad_stats_into ~a:abuf ~ia:s ~e:fbuf ~ie:e
                      ~r:rbuf ~ir:d ~m:abuf ~im:out ~into:scratch.quad;
                    let quad = scratch.quad in
                    let var_de =
                      Array.unsafe_get quad Form_buf.quad_var_a
                      +. d_var.(e)
                      +. Array.unsafe_get quad Form_buf.quad_var_r
                      +. 2.0
                         *. (Array.unsafe_get quad Form_buf.quad_cov_ae
                            +. Array.unsafe_get quad Form_buf.quad_cov_ar
                            +. Array.unsafe_get quad Form_buf.quad_cov_er)
                    in
                    let cov_dem =
                      Array.unsafe_get quad Form_buf.quad_cov_am
                      +. Array.unsafe_get quad Form_buf.quad_cov_em
                      +. Array.unsafe_get quad Form_buf.quad_cov_rm
                    in
                    let m_var = m_sig *. m_sig in
                    let theta2 = var_de +. m_var -. (2.0 *. cov_dem) in
                    (* Identity detection: when every i->j path runs
                       through e (or ties are perfectly correlated),
                       M_ij IS d_e - same mean and same linear part -
                       but the canonical forms carry the shared private
                       randoms as if independent, which would collapse
                       the tightness to 1/2.  The criticality of such
                       an edge is 1 by definition (P(de >= de) = 1). *)
                    let scale = var_de +. m_var +. 1e-30 in
                    let rand_de2 =
                      let ra = Array.unsafe_get quad Form_buf.quad_rand_a
                      and rd = Array.unsafe_get quad Form_buf.quad_rand_e
                      and rr = Array.unsafe_get quad Form_buf.quad_rand_r in
                      (ra *. ra) +. (rd *. rd) +. (rr *. rr)
                    in
                    let m_rand = Array.unsafe_get quad Form_buf.quad_rand_m in
                    let linear_dist2 =
                      var_de -. rand_de2 +. m_var -. (m_rand *. m_rand)
                      -. (2.0 *. cov_dem)
                    in
                    (* Thresholds are deliberately not machine-epsilon
                       tight: an edge whose M differs from de only by a
                       strongly-dominated competitor (tightness already
                       > ~0.98) lands here too, which is where it
                       belongs - competing paths at statistical parity
                       shift M's mean by a sizable fraction of sigma
                       and are rejected by the mean test. *)
                    let same_path =
                      m_mu -. mu_de <= (0.02 *. m_sig) +. 1e-30
                      && linear_dist2 <= 1e-4 *. scale
                      && m_var <= var_de +. (1e-3 *. scale)
                    in
                    let z =
                      if same_path then infinity
                      else if theta2 <= 1e-12 *. scale then
                        if mu_de >= m_mu then infinity else neg_infinity
                      else (mu_de -. m_mu) /. sqrt theta2
                    in
                    if z >= z_delta then keep.(e) <- true;
                    if z > cm_z.(e) then cm_z.(e) <- z;
                    if exact then bar.(e) <- Float.max bar.(e) z
                    else if keep.(e) then bar.(e) <- infinity
                  end
                end
              end
            done
          end)
        outputs
    done;
    { c_keep = keep; c_cm_z = cm_z; c_exact = !exact_evals;
      c_screened = !screened }
  in
  let chunks =
    Obs.with_span "criticality.screen" (fun () ->
        Par.map_tasks ?domains
          ~init:(fun () ->
            {
              ws_arr = Propagate.create_workspace ();
              quad = Array.make Form_buf.quad_size 0.0;
              a_mu = Array.make nv nan;
              a_sig = Array.make nv nan;
              source1 = [| 0 |];
            })
          (Par.n_chunks ~chunk:input_chunk ni)
          (fun scratch c ->
            let lo, hi = Par.chunk_bounds ~chunk:input_chunk ~n:ni c in
            screen_chunk scratch ~lo ~hi))
  in
  (* Merge in chunk-index order (all four merges are order-insensitive, but
     the fixed order keeps the determinism argument local). *)
  let keep = Array.make m false in
  let cm_z = Array.make m neg_infinity in
  let exact_evals = ref 0 in
  let screened = ref 0 in
  Array.iter
    (fun c ->
      for e = 0 to m - 1 do
        if c.c_keep.(e) then keep.(e) <- true;
        if c.c_cm_z.(e) > cm_z.(e) then cm_z.(e) <- c.c_cm_z.(e)
      done;
      exact_evals := !exact_evals + c.c_exact;
      screened := !screened + c.c_screened)
    chunks;
  let cm =
    Array.map
      (fun z ->
        if z = neg_infinity then 0.0
        else if z = infinity then 1.0
        else Normal.cdf z)
      cm_z
  in
  if Obs.enabled () then begin
    let kept = Array.fold_left (fun n k -> if k then n + 1 else n) 0 keep in
    Obs.add c_exact_evals !exact_evals;
    Obs.add c_screened_pairs !screened;
    Obs.add c_screen_pruned (!screened - !exact_evals);
    Obs.add c_kept_edges kept;
    Obs.add c_removed_edges (m - kept)
  end;
  { keep; cm; exact_evals = !exact_evals; screened_pairs = !screened }
