module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Normal = Ssta_gauss.Normal
module Par = Ssta_par.Par
module Obs = Ssta_obs.Obs

(* All counters are published once per [compute] from the merged chunk
   results.  The chunk layout is a pure function of the port counts (never
   of the domain count), and each chunk's contribution is summed, so the
   totals are domain-count invariant - test_obs.ml pins them at 1 vs 4
   domains.

   [screened_pairs] counts the pairs the scalar screen disposed of (bound
   test failed); pairs that went on to a full evaluation are counted by
   [exact_evals] instead, and pairs on settled edges are never visited at
   all.  The pre-cone implementation counted every reachable pair visit in
   [screened_pairs], including the evaluated and settled ones - the two
   countings are compared in EXPERIMENTS.md. *)
let c_exact_evals = Obs.counter "criticality.exact_evals"
let c_screened_pairs = Obs.counter "criticality.screened_pairs"
let c_kept_edges = Obs.counter "criticality.kept_edges"
let c_removed_edges = Obs.counter "criticality.removed_edges"
let c_cone_edges = Obs.counter "criticality.cone_edges"
let c_compacted_edges = Obs.counter "criticality.compacted_edges"
let c_backward_tiles = Obs.counter "criticality.backward_tiles"

type result = {
  keep : bool array;
  cm : float array;
  exact_evals : int;
  screened_pairs : int;
}

(* Backward tile size: [?tile] argument, else the CLI override
   (hssta --crit-tile, possibly "auto"), else the CRIT_TILE environment
   variable, else all outputs at once - the pre-tiling behaviour, every
   backward workspace resident for the whole screen. *)
type tile_choice = Fixed of int | Auto

let tile_env =
  lazy
    (match Sys.getenv_opt "CRIT_TILE" with
    | Some s -> (
        let s = String.trim s in
        if String.lowercase_ascii s = "auto" then Some Auto
        else
          match int_of_string_opt s with
          | Some n when n >= 1 -> Some (Fixed n)
          | _ -> None)
    | None -> None)

let tile_override = ref None
let set_tile n = tile_override := Some (Fixed (max 1 n))
let set_tile_auto () = tile_override := Some Auto

let budget_mb_env =
  lazy
    (match Sys.getenv_opt "CRIT_TILE_BUDGET_MB" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> 256)
    | None -> 256)

(* Auto-tile heuristic: one retained output slot costs
   nv * (8 * stride + 18) bytes - the backward Form_buf workspace
   (stride floats per vertex) and its reachability byte, plus the
   per-output required-time scalar rows (mu, sigma) and the destination
   bitmask.  The tile is the largest count of such slots that fits the
   byte budget (CRIT_TILE_BUDGET_MB, default 256), floored at 1 so a
   single output always proceeds regardless of budget. *)
let auto_tile ?budget_mb ~n_vertices ~stride () =
  let mb = match budget_mb with Some b -> max 1 b | None -> Lazy.force budget_mb_env in
  let per_output = max 1 (n_vertices * ((8 * stride) + 18)) in
  max 1 (mb * 1024 * 1024 / per_output)

let resolve_tile tile ~nv ~stride no =
  let t =
    match tile with
    | Some n ->
        if n < 1 then
          invalid_arg "Criticality.compute: tile must be at least 1";
        n
    | None -> (
        let of_choice = function
          | Fixed n -> n
          | Auto -> auto_tile ~n_vertices:nv ~stride ()
        in
        match !tile_override with
        | Some c -> of_choice c
        | None -> (
            match Lazy.force tile_env with
            | Some c -> of_choice c
            | None -> max no 1))
  in
  max 1 (min t (max no 1))

(* Per-chunk screening state, persistent across output tiles: every chunk
   of inputs screens against its own keep/cm/bar arrays and the chunk
   results are merged in chunk-index order (or for keep, max for cm_z, sum
   for the counters), so the outcome is bit-identical no matter how many
   domains ran the chunks.  The bar-based pruning therefore only
   accelerates within a chunk; the merged [keep] set is unaffected (a pair
   is only ever pruned for an edge the same chunk already settled), and in
   exact mode the merged maximum criticality is unaffected too (a pruned
   pair's tightness is bounded by a z-score some evaluated pair of the
   same chunk already reached).

   [s_settled] marks the edges whose [bar] reached infinity (threshold
   mode: kept; exact mode: identity-detected, cm_z already infinite).  A
   settled edge can never survive the bound test again nor improve cm_z,
   so skipping it without even loading its endpoints - and compacting it
   out of the chunk's active cone lists - changes no result bits, only the
   visit count. *)
type chunk_state = {
  s_keep : bool array;
  s_cm_z : float array;
  s_bar : float array;
  s_settled : Bytes.t;
  mutable s_exact : int;
  mutable s_screened : int;
  mutable s_cone : int;
  mutable s_compacted : int;
}

(* Per-domain scratch drawn from a pool and reused across every tile's
   screen region: one forward workspace, scalar row and active cone list
   per input slot of a chunk, plus the quad gather row.  The whole screen
   builds at most [domains] of these. *)
type scratch = {
  fwd : Propagate.workspace array;
  a_mu : float array array;
  a_sig : float array array;
  cone : int array array;
  cone_len : int array;
  quad : float array;
  source1 : int array;
}

let compute ?(exact = false) ?domains ?tile ~delta g ~forms =
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Criticality.compute: delta must lie in (0, 1)";
  let m = Tgraph.n_edges g in
  let nv = Tgraph.n_vertices g in
  let inputs = g.Tgraph.inputs and outputs = g.Tgraph.outputs in
  let ni = Array.length inputs and no = Array.length outputs in
  let dims =
    if m = 0 then { Form.n_globals = 0; n_pcs = 0 } else Form.dims forms.(0)
  in
  let stride = dims.Form.n_globals + dims.Form.n_pcs + 2 in
  let tile_sz = resolve_tile tile ~nv ~stride no in
  let n_tiles = Par.n_chunks ~chunk:tile_sz no in
  let floor_p = 1e-3 in
  let z_delta = Normal.quantile delta in
  let z_floor = Normal.quantile floor_p in
  (* Initial per-edge decision threshold in z-space: in threshold mode an
     edge is settled by any witness >= delta; in exact mode the bar rises to
     the best exact criticality found so far within the chunk (bounds below
     it cannot improve cm). *)
  let bar0 = if exact then z_floor else z_delta in
  (* Edge delay scalars. *)
  let d_mu = Array.map (fun f -> f.Form.mean) forms in
  let d_var = Array.map Form.variance forms in
  let d_sig = Array.map sqrt d_var in
  (* Edge forms packed once into a flat buffer; every sweep and covariance
     probe below reads from it without touching the boxed originals. *)
  let fbuf = Form_buf.of_forms dims forms in
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  (* Screening fan-out: inputs are cut into at most 32 fixed chunks (a
     function of |I| only, never of the domain count or the tile size, to
     keep the chunk layout - and the merged result - invariant). *)
  let input_chunk = max 1 ((ni + 31) / 32) in
  let n_chunks = Par.n_chunks ~chunk:input_chunk ni in
  (* Backward storage for one output tile, reused tile after tile: only
     [tile_sz] retained Form_buf workspaces (plus their scalar rows and
     destination bitmasks) are resident at once instead of all [no].  Each
     output's backward sweep still runs exactly once - tiling costs extra
     FORWARD sweeps instead, [n_tiles] per input, because every chunk
     re-derives its inputs' arrival data per tile.  All tile workspaces are
     carved from one capacity-planned slab: one bigarray allocation for the
     whole tile's backward storage, reused tile after tile. *)
  let tile_slab =
    Form_buf.slab_create (tile_sz * Form_buf.floats_needed dims nv)
  in
  let tile_ws =
    Array.init tile_sz (fun _ -> Propagate.create_workspace ~slab:tile_slab ())
  in
  let req_mu = Array.make_matrix tile_sz (max nv 1) nan in
  let req_sig = Array.make_matrix tile_sz (max nv 1) nan in
  let omasks = Array.init tile_sz (fun _ -> Bytes.make (max nv 1) '\000') in
  (* Settled-edge compaction cadence: rewrite the active cone lists after
     any output whose scan settled this many edges since the last rewrite.
     Any cadence is result-safe (compaction only drops edges the scan
     would skip anyway); this one bounds the rewrite work by a fraction of
     the settles that made it worthwhile. *)
  let compact_min = max 64 (m asr 5) in
  let screen_tile_chunk st scratch ~t_lo ~tn ~lo ~hi =
    let n_in = hi - lo in
    let keep = st.s_keep
    and cm_z = st.s_cm_z
    and bar = st.s_bar
    and settled = st.s_settled in
    (* One forward sweep per input of the chunk: arrival forms, scalar
       rows, and the input's active edge cone - ascending edge indices
       whose source the input reaches, minus the edges this chunk already
       settled.  Rebuilt per tile from the (bit-identical) sweep, so the
       non-skipped visit sequence below is the same for every tile size. *)
    for slot = 0 to n_in - 1 do
      scratch.source1.(0) <- inputs.(lo + slot);
      let ws = scratch.fwd.(slot) in
      Propagate.forward_into ws g ~forms:fbuf ~sources:scratch.source1;
      Propagate.scalar_summaries_into ws ~n:nv ~mu:scratch.a_mu.(slot)
        ~sigma:scratch.a_sig.(slot);
      let cone = scratch.cone.(slot) in
      let raw = Propagate.ws_source_cone_into ws g ~into:cone in
      let k = ref 0 in
      for x = 0 to raw - 1 do
        let e = Array.unsafe_get cone x in
        if Bytes.unsafe_get settled e = '\000' then begin
          Array.unsafe_set cone !k e;
          incr k
        end
      done;
      scratch.cone_len.(slot) <- !k;
      st.s_cone <- st.s_cone + !k
    done;
    let pending = ref 0 in
    for jj = 0 to tn - 1 do
      let out = outputs.(t_lo + jj) in
      let rmu = req_mu.(jj) and rsig = req_sig.(jj) in
      let omask = omasks.(jj) in
      let rbuf = Propagate.ws_buf tile_ws.(jj) in
      for slot = 0 to n_in - 1 do
        let ws = scratch.fwd.(slot) in
        if Propagate.ws_reached ws out then begin
          let abuf = Propagate.ws_buf ws in
          let m_mu = Form_buf.mean abuf out in
          let m_sig = Form_buf.std abuf out in
          let a_mu = scratch.a_mu.(slot) and a_sig = scratch.a_sig.(slot) in
          let cone = scratch.cone.(slot) in
          let clen = scratch.cone_len.(slot) in
          for x = 0 to clen - 1 do
            let e = Array.unsafe_get cone x in
            (* Settled edges are skipped (and periodically compacted out of
               [cone]) without being counted: they can neither flip [keep]
               nor raise [cm_z], see [chunk_state]. *)
            if Bytes.unsafe_get settled e = '\000' then begin
              let d = Array.unsafe_get dst e in
              (* One byte load answers "does this edge reach the output"
                 where the pre-cone screen loaded a NaN-sentinel double. *)
              if Bytes.unsafe_get omask d <> '\000' then begin
                let s = Array.unsafe_get src e in
                let amu = Array.unsafe_get a_mu s in
                let mu_de = amu +. Array.unsafe_get d_mu e
                            +. Array.unsafe_get rmu d in
                let theta_max =
                  Array.unsafe_get a_sig s
                  +. Array.unsafe_get d_sig e
                  +. Array.unsafe_get rsig d
                  +. m_sig
                in
                (* The z-space bound test, phrased as a boolean join: an
                   [if]/[else] producing a float would box it on every
                   screened pair (no flambda), and this comparison runs
                   tens of millions of times at c7552 scale.  The settled
                   test above already rules out bar = infinity, so the
                   mu_de >= m_mu branch always survives. *)
                let bar_e = Array.unsafe_get bar e in
                let survivor =
                  if mu_de >= m_mu then true
                  else (mu_de -. m_mu) /. theta_max > bar_e
                in
                if survivor then begin
                  (* Survivor: exact tightness z-score, allocation-free.
                     With de = a + d + r (independent private randoms),
                     Var de and Cov(de, M) decompose into pairwise
                     covariances of the stored forms, so no canonical sum
                     needs to be materialized; one fused strided gather
                     reads everything out of the flat buffers. *)
                  st.s_exact <- st.s_exact + 1;
                  Form_buf.quad_stats_into ~a:abuf ~ia:s ~e:fbuf ~ie:e
                    ~r:rbuf ~ir:d ~m:abuf ~im:out ~into:scratch.quad;
                  let quad = scratch.quad in
                  let var_de =
                    Array.unsafe_get quad Form_buf.quad_var_a
                    +. d_var.(e)
                    +. Array.unsafe_get quad Form_buf.quad_var_r
                    +. 2.0
                       *. (Array.unsafe_get quad Form_buf.quad_cov_ae
                          +. Array.unsafe_get quad Form_buf.quad_cov_ar
                          +. Array.unsafe_get quad Form_buf.quad_cov_er)
                  in
                  let cov_dem =
                    Array.unsafe_get quad Form_buf.quad_cov_am
                    +. Array.unsafe_get quad Form_buf.quad_cov_em
                    +. Array.unsafe_get quad Form_buf.quad_cov_rm
                  in
                  let m_var = m_sig *. m_sig in
                  let theta2 = var_de +. m_var -. (2.0 *. cov_dem) in
                  (* Identity detection: when every i->j path runs
                     through e (or ties are perfectly correlated),
                     M_ij IS d_e - same mean and same linear part -
                     but the canonical forms carry the shared private
                     randoms as if independent, which would collapse
                     the tightness to 1/2.  The criticality of such
                     an edge is 1 by definition (P(de >= de) = 1). *)
                  let scale = var_de +. m_var +. 1e-30 in
                  let rand_de2 =
                    let ra = Array.unsafe_get quad Form_buf.quad_rand_a
                    and rd = Array.unsafe_get quad Form_buf.quad_rand_e
                    and rr = Array.unsafe_get quad Form_buf.quad_rand_r in
                    (ra *. ra) +. (rd *. rd) +. (rr *. rr)
                  in
                  let m_rand = Array.unsafe_get quad Form_buf.quad_rand_m in
                  let linear_dist2 =
                    var_de -. rand_de2 +. m_var -. (m_rand *. m_rand)
                    -. (2.0 *. cov_dem)
                  in
                  (* Thresholds are deliberately not machine-epsilon
                     tight: an edge whose M differs from de only by a
                     strongly-dominated competitor (tightness already
                     > ~0.98) lands here too, which is where it
                     belongs - competing paths at statistical parity
                     shift M's mean by a sizable fraction of sigma
                     and are rejected by the mean test. *)
                  let same_path =
                    m_mu -. mu_de <= (0.02 *. m_sig) +. 1e-30
                    && linear_dist2 <= 1e-4 *. scale
                    && m_var <= var_de +. (1e-3 *. scale)
                  in
                  let z =
                    if same_path then infinity
                    else if theta2 <= 1e-12 *. scale then
                      if mu_de >= m_mu then infinity else neg_infinity
                    else (mu_de -. m_mu) /. sqrt theta2
                  in
                  if z >= z_delta then keep.(e) <- true;
                  if z > cm_z.(e) then cm_z.(e) <- z;
                  (if exact then bar.(e) <- Float.max bar_e z
                   else if keep.(e) then bar.(e) <- infinity);
                  if Array.unsafe_get bar e = infinity then begin
                    Bytes.unsafe_set settled e '\001';
                    incr pending
                  end
                end
                else st.s_screened <- st.s_screened + 1
              end
            end
          done
        end
      done;
      if !pending >= compact_min then begin
        for slot = 0 to n_in - 1 do
          let cone = scratch.cone.(slot) in
          let clen = scratch.cone_len.(slot) in
          let k = ref 0 in
          for x = 0 to clen - 1 do
            let e = Array.unsafe_get cone x in
            if Bytes.unsafe_get settled e = '\000' then begin
              Array.unsafe_set cone !k e;
              incr k
            end
          done;
          st.s_compacted <- st.s_compacted + (clen - !k);
          scratch.cone_len.(slot) <- !k
        done;
        pending := 0
      end
    done
  in
  let states =
    Array.init n_chunks (fun _ ->
        {
          s_keep = Array.make m false;
          (* Best exact tightness z-score seen per edge (neg_infinity =
             never evaluated); converted to a probability after the
             merge. *)
          s_cm_z = Array.make m neg_infinity;
          s_bar = Array.make m bar0;
          s_settled = Bytes.make (max m 1) '\000';
          s_exact = 0;
          s_screened = 0;
          s_cone = 0;
          s_compacted = 0;
        })
  in
  let pool =
    Par.pool (fun () ->
        (* One slab per pool worker backs all its forward workspaces: a
           worker allocates once, every chunk it screens reuses it. *)
        let slab =
          Form_buf.slab_create (input_chunk * Form_buf.floats_needed dims nv)
        in
        {
          fwd =
            Array.init input_chunk (fun _ ->
                Propagate.create_workspace ~slab ());
          a_mu = Array.init input_chunk (fun _ -> Array.make (max nv 1) nan);
          a_sig = Array.init input_chunk (fun _ -> Array.make (max nv 1) nan);
          cone = Array.init input_chunk (fun _ -> Array.make (max m 1) 0);
          cone_len = Array.make input_chunk 0;
          quad = Array.make Form_buf.quad_size 0.0;
          source1 = [| 0 |];
        })
  in
  (* Tiles are processed strictly in ascending output order, and inside a
     tile every chunk visits (output, input, cone edge) in ascending
     order, so a chunk's flattened visit sequence over the whole screen is
     (j, i, e) regardless of the tile size: the per-edge bar/settled
     trajectory - hence keep, cm_z and both pair counters - is
     bit-identical at every tile size, and (by the per-chunk state) at
     every domain count.  Only the cone/compaction counters and the RSS
     depend on the tile size. *)
  for t = 0 to n_tiles - 1 do
    let t_lo, t_hi = Par.chunk_bounds ~chunk:tile_sz ~n:no t in
    let tn = t_hi - t_lo in
    (* Backward passes for this tile's outputs, fanned out over the pool
       (each is a full canonical sweep and they are independent).  Each
       task owns its tile slot: workspace, scalar rows and destination
       bitmask. *)
    Obs.with_span "criticality.backward" (fun () ->
        Par.run_tasks ?domains ~n_tasks:tn
          ~init:(fun () -> ())
          ~task:(fun () k ->
            let ws = tile_ws.(k) in
            Propagate.backward_to_into ws g ~forms:fbuf outputs.(t_lo + k);
            Propagate.scalar_summaries_into ws ~n:nv ~mu:req_mu.(k)
              ~sigma:req_sig.(k);
            Propagate.ws_reach_into ws ~n:nv ~into:omasks.(k))
          ());
    Obs.with_span "criticality.screen" (fun () ->
        Par.run_tasks_pool ?domains ~n_tasks:n_chunks ~pool
          ~task:(fun scratch c ->
            let lo, hi = Par.chunk_bounds ~chunk:input_chunk ~n:ni c in
            screen_tile_chunk states.(c) scratch ~t_lo ~tn ~lo ~hi)
          ())
  done;
  (* Merge in chunk-index order (all merges are order-insensitive, but the
     fixed order keeps the determinism argument local). *)
  let keep = Array.make m false in
  let cm_z = Array.make m neg_infinity in
  let exact_evals = ref 0 in
  let screened = ref 0 in
  let cone_edges = ref 0 in
  let compacted = ref 0 in
  Array.iter
    (fun st ->
      for e = 0 to m - 1 do
        if st.s_keep.(e) then keep.(e) <- true;
        if st.s_cm_z.(e) > cm_z.(e) then cm_z.(e) <- st.s_cm_z.(e)
      done;
      exact_evals := !exact_evals + st.s_exact;
      screened := !screened + st.s_screened;
      cone_edges := !cone_edges + st.s_cone;
      compacted := !compacted + st.s_compacted)
    states;
  let cm =
    Array.map
      (fun z ->
        if z = neg_infinity then 0.0
        else if z = infinity then 1.0
        else Normal.cdf z)
      cm_z
  in
  if Obs.enabled () then begin
    let kept = Array.fold_left (fun n k -> if k then n + 1 else n) 0 keep in
    Obs.add c_exact_evals !exact_evals;
    Obs.add c_screened_pairs !screened;
    Obs.add c_kept_edges kept;
    Obs.add c_removed_edges (m - kept);
    Obs.add c_cone_edges !cone_edges;
    Obs.add c_compacted_edges !compacted;
    Obs.add c_backward_tiles n_tiles
  end;
  { keep; cm; exact_evals = !exact_evals; screened_pairs = !screened }
