module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Normal = Ssta_gauss.Normal

type result = {
  keep : bool array;
  cm : float array;
  exact_evals : int;
  screened_pairs : int;
}

(* Full backward passes, computed lazily per output and retained: the
   criticality loop touches every output for almost every input, so an
   eviction policy would thrash (one backward pass costs a full canonical
   sweep).  Each pass lives in a flat Form_buf workspace - |V| * stride
   unboxed floats plus a reachability mask - instead of an option array of
   boxed Form.t records, which roughly halves resident memory at c7552
   scale and keeps the exact-evaluation covariance reads contiguous. *)
module Req_cache = struct
  type t = {
    g : Tgraph.t;
    forms : Form_buf.t;
    passes : Propagate.workspace option array;
  }

  let create g forms n_outputs =
    { g; forms; passes = Array.make n_outputs None }

  let get t ~out ~j =
    match t.passes.(j) with
    | Some ws -> ws
    | None ->
        let ws = Propagate.create_workspace () in
        Propagate.backward_to_into ws t.g ~forms:t.forms out;
        t.passes.(j) <- Some ws;
        ws
end

let compute ?(exact = false) ~delta g ~forms =
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Criticality.compute: delta must lie in (0, 1)";
  let m = Tgraph.n_edges g in
  let nv = Tgraph.n_vertices g in
  let inputs = g.Tgraph.inputs and outputs = g.Tgraph.outputs in
  let no = Array.length outputs in
  let keep = Array.make m false in
  (* Best exact tightness z-score seen per edge (neg_infinity = never
     evaluated); converted to a probability at the end. *)
  let cm_z = Array.make m neg_infinity in
  let floor_p = 1e-3 in
  let z_delta = Normal.quantile delta in
  let z_floor = Normal.quantile floor_p in
  (* Per-edge decision threshold in z-space: in threshold mode an edge is
     settled by any witness >= delta; in exact mode the bar rises to the best
     exact criticality found so far (bounds below it cannot improve cm). *)
  let bar = Array.make m (if exact then z_floor else z_delta) in
  let exact_evals = ref 0 in
  let screened = ref 0 in
  (* Edge delay scalars. *)
  let d_mu = Array.map (fun f -> f.Form.mean) forms in
  let d_var = Array.map Form.variance forms in
  let d_sig = Array.map sqrt d_var in
  (* Edge forms packed once into a flat buffer; every sweep and covariance
     probe below reads from it without touching the boxed originals. *)
  let dims =
    if m = 0 then { Form.n_globals = 0; n_pcs = 0 } else Form.dims forms.(0)
  in
  let fbuf = Form_buf.of_forms dims forms in
  (* Backward scalar tables per output; the full passes are retained in the
     cache for the exact evaluations. *)
  let cache = Req_cache.create g fbuf no in
  let req_mu = Array.make_matrix no nv nan in
  let req_sig = Array.make_matrix no nv nan in
  Array.iteri
    (fun j out ->
      let req = Req_cache.get cache ~out ~j in
      Propagate.scalar_summaries_into req ~n:nv ~mu:req_mu.(j)
        ~sigma:req_sig.(j))
    outputs;
  (* One forward workspace reused across the |I| per-input sweeps, and one
     scratch row for the fused exact-evaluation gather. *)
  let ws_arr = Propagate.create_workspace () in
  let quad = Array.make Form_buf.quad_size 0.0 in
  let a_mu = Array.make nv nan and a_sig = Array.make nv nan in
  let source1 = [| 0 |] in
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  Array.iter
    (fun input ->
      source1.(0) <- input;
      Propagate.forward_into ws_arr g ~forms:fbuf ~sources:source1;
      let abuf = Propagate.ws_buf ws_arr in
      Propagate.scalar_summaries_into ws_arr ~n:nv ~mu:a_mu ~sigma:a_sig;
      Array.iteri
        (fun j out ->
          if Propagate.ws_reached ws_arr out then begin
            let m_mu = Form_buf.mean abuf out in
            let m_sig = Form_buf.std abuf out in
            let rmu = req_mu.(j) and rsig = req_sig.(j) in
            for e = 0 to m - 1 do
              let s = Array.unsafe_get src e in
              let amu = Array.unsafe_get a_mu s in
              if amu = amu (* reachable from input *) then begin
                let d = Array.unsafe_get dst e in
                let rm = Array.unsafe_get rmu d in
                if rm = rm (* reaches output *) then begin
                  incr screened;
                  let mu_de = amu +. Array.unsafe_get d_mu e +. rm in
                  let theta_max =
                    Array.unsafe_get a_sig s
                    +. Array.unsafe_get d_sig e
                    +. Array.unsafe_get rsig d
                    +. m_sig
                  in
                  (* The z-space bound test, phrased as a boolean join: an
                     [if]/[else] producing a float would box it on every
                     screened pair (no flambda), and this comparison runs
                     hundreds of millions of times at c7552 scale. *)
                  let bar_e = Array.unsafe_get bar e in
                  let survivor =
                    if mu_de >= m_mu then bar_e < infinity
                    else (mu_de -. m_mu) /. theta_max > bar_e
                  in
                  if survivor then begin
                    (* Survivor: exact tightness z-score, allocation-free.
                       With de = a + d + r (independent private randoms),
                       Var de and Cov(de, M) decompose into pairwise
                       covariances of the stored forms, so no canonical sum
                       needs to be materialized; one fused strided gather
                       reads everything out of the flat buffers. *)
                    let req = Req_cache.get cache ~out ~j in
                    let rbuf = Propagate.ws_buf req in
                    incr exact_evals;
                    Form_buf.quad_stats_into ~a:abuf ~ia:s ~e:fbuf ~ie:e
                      ~r:rbuf ~ir:d ~m:abuf ~im:out ~into:quad;
                    let var_de =
                      Array.unsafe_get quad Form_buf.quad_var_a
                      +. d_var.(e)
                      +. Array.unsafe_get quad Form_buf.quad_var_r
                      +. 2.0
                         *. (Array.unsafe_get quad Form_buf.quad_cov_ae
                            +. Array.unsafe_get quad Form_buf.quad_cov_ar
                            +. Array.unsafe_get quad Form_buf.quad_cov_er)
                    in
                    let cov_dem =
                      Array.unsafe_get quad Form_buf.quad_cov_am
                      +. Array.unsafe_get quad Form_buf.quad_cov_em
                      +. Array.unsafe_get quad Form_buf.quad_cov_rm
                    in
                    let m_var = m_sig *. m_sig in
                    let theta2 = var_de +. m_var -. (2.0 *. cov_dem) in
                    (* Identity detection: when every i->j path runs
                       through e (or ties are perfectly correlated),
                       M_ij IS d_e - same mean and same linear part -
                       but the canonical forms carry the shared private
                       randoms as if independent, which would collapse
                       the tightness to 1/2.  The criticality of such
                       an edge is 1 by definition (P(de >= de) = 1). *)
                    let scale = var_de +. m_var +. 1e-30 in
                    let rand_de2 =
                      let ra = Array.unsafe_get quad Form_buf.quad_rand_a
                      and rd = Array.unsafe_get quad Form_buf.quad_rand_e
                      and rr = Array.unsafe_get quad Form_buf.quad_rand_r in
                      (ra *. ra) +. (rd *. rd) +. (rr *. rr)
                    in
                    let m_rand = Array.unsafe_get quad Form_buf.quad_rand_m in
                    let linear_dist2 =
                      var_de -. rand_de2 +. m_var -. (m_rand *. m_rand)
                      -. (2.0 *. cov_dem)
                    in
                    (* Thresholds are deliberately not machine-epsilon
                       tight: an edge whose M differs from de only by a
                       strongly-dominated competitor (tightness already
                       > ~0.98) lands here too, which is where it
                       belongs - competing paths at statistical parity
                       shift M's mean by a sizable fraction of sigma
                       and are rejected by the mean test. *)
                    let same_path =
                      m_mu -. mu_de <= (0.02 *. m_sig) +. 1e-30
                      && linear_dist2 <= 1e-4 *. scale
                      && m_var <= var_de +. (1e-3 *. scale)
                    in
                    let z =
                      if same_path then infinity
                      else if theta2 <= 1e-12 *. scale then
                        if mu_de >= m_mu then infinity else neg_infinity
                      else (mu_de -. m_mu) /. sqrt theta2
                    in
                    if z >= z_delta then keep.(e) <- true;
                    if z > cm_z.(e) then cm_z.(e) <- z;
                    if exact then bar.(e) <- Float.max bar.(e) z
                    else if keep.(e) then bar.(e) <- infinity
                  end
                end
              end
            done
          end)
        outputs)
    inputs;
  let cm =
    Array.map
      (fun z ->
        if z = neg_infinity then 0.0
        else if z = infinity then 1.0
        else Normal.cdf z)
      cm_z
  in
  { keep; cm; exact_evals = !exact_evals; screened_pairs = !screened }
