(** Serialization of pre-characterized timing models.

    This is the hand-off artifact of the paper's flow: an IP vendor runs
    {!Extract.extract} on the module netlist and ships the resulting model
    file; the integrator loads it and runs {!Hier_analysis} without ever
    seeing the netlist (gray-box IP protection, paper Section I).

    The format is a line-oriented text format (`hssta-timing-model v1`):
    human-inspectable, independent of OCaml marshalling, and bit-exact -
    floats are written with round-trip precision, and the PCA eigenvector
    matrix is stored verbatim so the model's coefficient vectors remain
    valid (re-running PCA could flip eigenvector signs). *)

val to_string : Timing_model.t -> string

val of_string : string -> Timing_model.t
(** Raises {!Ssta_robust.Robust.Error} (subsystem ["model_io"]) on
    malformed input; the error's indices carry the 1-based line number
    (and token position where applicable) of the offending construct.
    Non-finite numeric fields are a policy decision: [Strict] raises,
    [Repair]/[Warn] substitute zero and count [robust.nan_sanitized]. *)

val save : Timing_model.t -> path:string -> unit

val load : path:string -> Timing_model.t
(** Raises [Sys_error] on IO problems and {!Ssta_robust.Robust.Error} on
    parse errors, as {!of_string}. *)
