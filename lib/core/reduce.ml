module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph
module Obs = Ssta_obs.Obs

(* Table-I bookkeeping for the merge fixpoint: totals accumulate across
   the passes of one [reduce] call and are published once at the end. *)
let c_serial_merges = Obs.counter "reduce.serial_merges"
let c_parallel_merges = Obs.counter "reduce.parallel_merges"
let c_pruned_vertices = Obs.counter "reduce.pruned_vertices"
let c_passes = Obs.counter "reduce.passes"

type edge = {
  mutable esrc : int;
  mutable edst : int;
  mutable weight : Form.t;
  mutable alive : bool;
}

type vertex = {
  mutable fanin : edge list;
  mutable fanout : edge list;
  is_input : bool;
  is_output : bool;
  mutable valive : bool;
}

type t = {
  vertices : vertex array;
  inputs : int array;
  outputs : int array;
  mutable live_edges : int;
}

let of_graph g ~forms ~keep =
  let n = Tgraph.n_vertices g in
  let is_in = Array.make n false and is_out = Array.make n false in
  Array.iter (fun v -> is_in.(v) <- true) g.Tgraph.inputs;
  Array.iter (fun v -> is_out.(v) <- true) g.Tgraph.outputs;
  let vertices =
    Array.init n (fun v ->
        {
          fanin = [];
          fanout = [];
          is_input = is_in.(v);
          is_output = is_out.(v);
          valive = is_in.(v) || is_out.(v);
        })
  in
  let live = ref 0 in
  Array.iteri
    (fun i s ->
      if keep.(i) then begin
        let d = g.Tgraph.dst.(i) in
        let e = { esrc = s; edst = d; weight = forms.(i); alive = true } in
        vertices.(s).fanout <- e :: vertices.(s).fanout;
        vertices.(d).fanin <- e :: vertices.(d).fanin;
        vertices.(s).valive <- true;
        vertices.(d).valive <- true;
        incr live
      end)
    g.Tgraph.src;
  {
    vertices;
    inputs = Array.copy g.Tgraph.inputs;
    outputs = Array.copy g.Tgraph.outputs;
    live_edges = !live;
  }

let n_live_edges t = t.live_edges

let n_live_vertices t =
  Array.fold_left (fun acc v -> if v.valive then acc + 1 else acc) 0 t.vertices

let is_port v = v.is_input || v.is_output

(* Each edge appears exactly once per adjacency list, so removal can stop
   at the first physical match instead of filtering (and copying) the whole
   list - kill_edge runs once per merged edge on high-fanout vertices. *)
let rec remove_first e = function
  | [] -> []
  | x :: rest -> if x == e then rest else x :: remove_first e rest

let kill_edge t e =
  if e.alive then begin
    e.alive <- false;
    let s = t.vertices.(e.esrc) and d = t.vertices.(e.edst) in
    s.fanout <- remove_first e s.fanout;
    d.fanin <- remove_first e d.fanin;
    t.live_edges <- t.live_edges - 1
  end

let prune t =
  let removed = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    Array.iter
      (fun v ->
        if v.valive && not (is_port v) && (v.fanin = [] || v.fanout = [])
        then begin
          List.iter (kill_edge t) v.fanin;
          List.iter (kill_edge t) v.fanout;
          v.valive <- false;
          incr removed;
          continue_ := true
        end)
      t.vertices
  done;
  !removed

let serial_pass t =
  let merged = ref 0 in
  Array.iteri
    (fun _vi v ->
      if v.valive && not (is_port v) then begin
        match (v.fanin, v.fanout) with
        | [ e_in ], (_ :: _ as fanout) ->
            (* Forward serial merge (paper Fig. 1a): route every fanout edge
               of v directly from v's unique predecessor. *)
            let u = e_in.esrc in
            List.iter
              (fun f ->
                f.esrc <- u;
                f.weight <- Form.add e_in.weight f.weight;
                t.vertices.(u).fanout <- f :: t.vertices.(u).fanout)
              fanout;
            v.fanout <- [];
            kill_edge t e_in;
            v.valive <- false;
            incr merged
        | (_ :: _ as fanin), [ e_out ] ->
            (* Reverse serial merge (paper Fig. 1b). *)
            let w = e_out.edst in
            List.iter
              (fun f ->
                f.edst <- w;
                f.weight <- Form.add f.weight e_out.weight;
                t.vertices.(w).fanin <- f :: t.vertices.(w).fanin)
              fanin;
            v.fanin <- [];
            kill_edge t e_out;
            v.valive <- false;
            incr merged
        | _ -> ()
      end)
    t.vertices;
  !merged

let parallel_pass t =
  let merged = ref 0 in
  Array.iter
    (fun v ->
      if v.valive && v.fanout <> [] then begin
        let by_dst = Hashtbl.create 7 in
        List.iter
          (fun e ->
            let prev = try Hashtbl.find by_dst e.edst with Not_found -> [] in
            Hashtbl.replace by_dst e.edst (e :: prev))
          v.fanout;
        Hashtbl.iter
          (fun _dst edges ->
            match edges with
            | [] | [ _ ] -> ()
            | first :: rest ->
                first.weight <-
                  List.fold_left
                    (fun acc e -> Form.max2 acc e.weight)
                    first.weight rest;
                List.iter (kill_edge t) rest;
                merged := !merged + List.length rest)
          by_dst
      end)
    t.vertices;
  !merged

let reduce t =
  let pruned = ref (prune t) in
  let serial = ref 0 and par = ref 0 and passes = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let p = parallel_pass t in
    let s = serial_pass t in
    let d = prune t in
    par := !par + p;
    serial := !serial + s;
    pruned := !pruned + d;
    Stdlib.incr passes;
    continue_ := p + s + d > 0
  done;
  if Obs.enabled () then begin
    Obs.add c_serial_merges !serial;
    Obs.add c_parallel_merges !par;
    Obs.add c_pruned_vertices !pruned;
    Obs.add c_passes !passes
  end

let freeze t =
  let n = Array.length t.vertices in
  let new_id = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if t.vertices.(v).valive then begin
      new_id.(v) <- !count;
      incr count
    end
  done;
  let edges = ref [] and weights = ref [] in
  Array.iter
    (fun v ->
      List.iter
        (fun e ->
          if e.alive then begin
            edges := (new_id.(e.esrc), new_id.(e.edst)) :: !edges;
            weights := e.weight :: !weights
          end)
        v.fanout)
    t.vertices;
  let edges = Array.of_list !edges and weights = Array.of_list !weights in
  let map_ports ids = Array.map (fun v -> new_id.(v)) ids in
  let inputs = map_ports t.inputs and outputs = map_ports t.outputs in
  let graph, perm =
    Tgraph.make_sorted ~n_vertices:!count ~edges ~inputs ~outputs
  in
  let forms = Array.map (fun i -> weights.(i)) perm in
  (graph, forms, inputs, outputs)
