module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph
module Obs = Ssta_obs.Obs

(* Table-I bookkeeping for the merge fixpoint: totals accumulate across
   the passes of one [reduce] call and are published once at the end. *)
let c_serial_merges = Obs.counter "reduce.serial_merges"
let c_parallel_merges = Obs.counter "reduce.parallel_merges"
let c_pruned_vertices = Obs.counter "reduce.pruned_vertices"
let c_passes = Obs.counter "reduce.passes"

type edge = {
  mutable esrc : int;
  mutable edst : int;
  mutable weight : Form.t;
  mutable alive : bool;
}

type vertex = {
  mutable fanin : edge list;
  mutable fanout : edge list;
  is_input : bool;
  is_output : bool;
  mutable valive : bool;
}

(* Dead edges are only flagged ([alive <- false]), never surgically
   removed from the adjacency lists: eager removal cost a full prefix
   rebuild per kill, which went quadratic on high-fanout hubs once the
   ~1M-gate designs arrived (a hub that accumulates F parallel edges
   pays O(F) per duplicate killed, O(F^2) per pass).  Readers go through
   [live], which filters flagged edges out and writes the compacted list
   back - amortized O(deaths), and the *live* sublist order is exactly
   what eager removal produced, so merge accumulation orders (hence
   every model bit) are unchanged.

   [stamp]/[group_cell] back parallel_pass's duplicate grouping: epoch-
   stamped per-destination list cells replace the per-vertex Hashtbl
   (one million table allocations per pass at scale).  [epoch] strictly
   increases, one step per grouped vertex; a stale stamp means the cell
   belongs to a previous vertex's grouping and is ignored. *)
type t = {
  vertices : vertex array;
  inputs : int array;
  outputs : int array;
  mutable live_edges : int;
  stamp : int array;
  group_cell : edge list ref array;
  mutable epoch : int;
}

let rec all_alive = function [] -> true | e :: r -> e.alive && all_alive r

let live l = if all_alive l then l else List.filter (fun e -> e.alive) l

let live_fanin v =
  let l = live v.fanin in
  v.fanin <- l;
  l

let live_fanout v =
  let l = live v.fanout in
  v.fanout <- l;
  l

let of_graph g ~forms ~keep =
  let n = Tgraph.n_vertices g in
  let is_in = Array.make n false and is_out = Array.make n false in
  Array.iter (fun v -> is_in.(v) <- true) g.Tgraph.inputs;
  Array.iter (fun v -> is_out.(v) <- true) g.Tgraph.outputs;
  let vertices =
    Array.init n (fun v ->
        {
          fanin = [];
          fanout = [];
          is_input = is_in.(v);
          is_output = is_out.(v);
          valive = is_in.(v) || is_out.(v);
        })
  in
  let live = ref 0 in
  Array.iteri
    (fun i s ->
      if keep.(i) then begin
        let d = g.Tgraph.dst.(i) in
        let e = { esrc = s; edst = d; weight = forms.(i); alive = true } in
        vertices.(s).fanout <- e :: vertices.(s).fanout;
        vertices.(d).fanin <- e :: vertices.(d).fanin;
        vertices.(s).valive <- true;
        vertices.(d).valive <- true;
        incr live
      end)
    g.Tgraph.src;
  {
    vertices;
    inputs = Array.copy g.Tgraph.inputs;
    outputs = Array.copy g.Tgraph.outputs;
    live_edges = !live;
    stamp = Array.make n (-1);
    group_cell = Array.make n (ref []);
    epoch = 0;
  }

let n_live_edges t = t.live_edges

let n_live_vertices t =
  Array.fold_left (fun acc v -> if v.valive then acc + 1 else acc) 0 t.vertices

let is_port v = v.is_input || v.is_output

let kill_edge t e =
  if e.alive then begin
    e.alive <- false;
    t.live_edges <- t.live_edges - 1
  end

(* Dead-vertex cascade on a worklist: killing a vertex's edges can only
   expose its live neighbours, so only those need rechecking - the old
   whole-array rescan per cascade level was |V| x depth at scale.  The
   removed set is confluent (a vertex with an empty live side stays
   empty), so the visit order does not affect the outcome. *)
let prune t =
  let removed = ref 0 in
  let q = Queue.create () in
  let dead v = live_fanin v = [] || live_fanout v = [] in
  let kill vi v =
    List.iter
      (fun e ->
        if e.alive then begin
          kill_edge t e;
          let o = if e.esrc = vi then e.edst else e.esrc in
          if t.vertices.(o).valive then Queue.add o q
        end)
      v.fanin;
    List.iter
      (fun e ->
        if e.alive then begin
          kill_edge t e;
          let o = if e.esrc = vi then e.edst else e.esrc in
          if t.vertices.(o).valive then Queue.add o q
        end)
      v.fanout;
    v.valive <- false;
    incr removed
  in
  Array.iteri
    (fun vi v -> if v.valive && not (is_port v) && dead v then kill vi v)
    t.vertices;
  while not (Queue.is_empty q) do
    let vi = Queue.pop q in
    let v = t.vertices.(vi) in
    if v.valive && not (is_port v) && dead v then kill vi v
  done;
  !removed

let serial_pass t =
  let merged = ref 0 in
  Array.iteri
    (fun _vi v ->
      if v.valive && not (is_port v) then begin
        match (live_fanin v, live_fanout v) with
        | [ e_in ], (_ :: _ as fanout) ->
            (* Forward serial merge (paper Fig. 1a): route every fanout edge
               of v directly from v's unique predecessor. *)
            let u = e_in.esrc in
            List.iter
              (fun f ->
                f.esrc <- u;
                f.weight <- Form.add e_in.weight f.weight;
                t.vertices.(u).fanout <- f :: t.vertices.(u).fanout)
              fanout;
            v.fanout <- [];
            kill_edge t e_in;
            v.valive <- false;
            incr merged
        | (_ :: _ as fanin), [ e_out ] ->
            (* Reverse serial merge (paper Fig. 1b). *)
            let w = e_out.edst in
            List.iter
              (fun f ->
                f.edst <- w;
                f.weight <- Form.add f.weight e_out.weight;
                t.vertices.(w).fanin <- f :: t.vertices.(w).fanin)
              fanin;
            v.fanin <- [];
            kill_edge t e_out;
            v.valive <- false;
            incr merged
        | _ -> ()
      end)
    t.vertices;
  !merged

(* Group a vertex's live fanout by destination exactly as the Hashtbl
   version did: per-destination lists consed in traversal order (so each
   group is the reversed fanout-order sublist), groups processed
   independently.  Groups touch disjoint edge sets and kills are flag
   writes, so inter-group processing order is immaterial to the result;
   within a group the fold order over [rest] is preserved, which is what
   fixes the Clark-max accumulation order and hence the model bits. *)
let parallel_pass t =
  let merged = ref 0 in
  Array.iter
    (fun v ->
      if v.valive then begin
        let fanout = live_fanout v in
        if fanout <> [] then begin
          let ep = t.epoch in
          t.epoch <- ep + 1;
          let cells = ref [] in
          List.iter
            (fun e ->
              let d = e.edst in
              if t.stamp.(d) <> ep then begin
                t.stamp.(d) <- ep;
                let c = ref [ e ] in
                t.group_cell.(d) <- c;
                cells := c :: !cells
              end
              else begin
                let c = t.group_cell.(d) in
                c := e :: !c
              end)
            fanout;
          List.iter
            (fun cell ->
              match !cell with
              | [] | [ _ ] -> ()
              | first :: rest ->
                  first.weight <-
                    List.fold_left
                      (fun acc e -> Form.max2 acc e.weight)
                      first.weight rest;
                  List.iter (kill_edge t) rest;
                  merged := !merged + List.length rest)
            !cells
        end
      end)
    t.vertices;
  !merged

let reduce t =
  let pruned = ref (prune t) in
  let serial = ref 0 and par = ref 0 and passes = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let p = parallel_pass t in
    let s = serial_pass t in
    let d = prune t in
    par := !par + p;
    serial := !serial + s;
    pruned := !pruned + d;
    Stdlib.incr passes;
    continue_ := p + s + d > 0
  done;
  if Obs.enabled () then begin
    Obs.add c_serial_merges !serial;
    Obs.add c_parallel_merges !par;
    Obs.add c_pruned_vertices !pruned;
    Obs.add c_passes !passes
  end

let freeze t =
  let n = Array.length t.vertices in
  let new_id = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if t.vertices.(v).valive then begin
      new_id.(v) <- !count;
      incr count
    end
  done;
  let edges = ref [] and weights = ref [] in
  Array.iter
    (fun v ->
      List.iter
        (fun e ->
          if e.alive then begin
            edges := (new_id.(e.esrc), new_id.(e.edst)) :: !edges;
            weights := e.weight :: !weights
          end)
        v.fanout)
    t.vertices;
  let edges = Array.of_list !edges and weights = Array.of_list !weights in
  let map_ports ids = Array.map (fun v -> new_id.(v)) ids in
  let inputs = map_ports t.inputs and outputs = map_ports t.outputs in
  let graph, perm =
    Tgraph.make_sorted ~n_vertices:!count ~edges ~inputs ~outputs
  in
  let forms = Array.map (fun i -> weights.(i)) perm in
  (graph, forms, inputs, outputs)
