module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Basis = Ssta_variation.Basis
module Build = Ssta_timing.Build

type result = {
  graph : Tgraph.t;
  forms : Form.t array;
  arrival : Form.t option array;
  po_delays : Form.t option array;
  delay : Form.t;
  setup_seconds : float;
  propagate_seconds : float;
  wall_seconds : float;
}

let stitch_vertices graphs =
  let n = Array.length graphs in
  let offsets = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun i g ->
      offsets.(i) <- !total;
      total := !total + Tgraph.n_vertices g)
    graphs;
  (offsets, !total)

let analyze ?workspace (fp : Floorplan.t) (dg : Design_grid.t) ~mode =
  let sp_setup = Ssta_obs.Obs.span_begin "hier.setup" in
  let t0 = Unix.gettimeofday () in
  let instances = fp.Floorplan.instances in
  let graphs =
    Array.map (fun i -> i.Floorplan.model.Timing_model.graph) instances
  in
  let offsets, n_vertices = stitch_vertices graphs in
  let dims = dg.Design_grid.basis.Basis.dims in
  (* External sinks per (instance, output port): each sink beyond the one
     the characterization assumed costs the port's load increment. *)
  let extra_sinks =
    Array.map
      (fun inst ->
        Array.make (Timing_model.n_outputs inst.Floorplan.model) 0)
      instances
  in
  Array.iter
    (fun ({ Floorplan.inst; port }, _) ->
      extra_sinks.(inst).(port) <- extra_sinks.(inst).(port) + 1)
    fp.Floorplan.connections;
  Array.iter
    (fun row ->
      Array.iteri (fun p k -> row.(p) <- max 0 (k - 1)) row)
    extra_sinks;
  let edges = ref [] and forms = ref [] in
  Array.iteri
    (fun i inst ->
      let g = graphs.(i) in
      let model = inst.Floorplan.model in
      (* Validated boundary: instance models arrive from disk or from
         earlier extractions; their forms and load increments are checked
         (and, under Repair/Warn, sanitized) before stitching. *)
      let model_forms =
        Form.sanitize_forms ~subsystem:"hier_analysis"
          ~operation:("analyze:" ^ inst.Floorplan.label)
          model.Timing_model.forms
      in
      let load_forms =
        Form.sanitize_forms ~subsystem:"hier_analysis"
          ~operation:("analyze.output_load:" ^ inst.Floorplan.label)
          model.Timing_model.output_load
      in
      (* Output-port index per model vertex (for load increments). *)
      let port_of_vertex = Array.make (Tgraph.n_vertices g) (-1) in
      Array.iteri
        (fun p v -> port_of_vertex.(v) <- p)
        g.Tgraph.outputs;
      let base_forms =
        Array.mapi
          (fun e f ->
            let p = port_of_vertex.(g.Tgraph.dst.(e)) in
            if p >= 0 && extra_sinks.(i).(p) > 0 then
              Form.add f
                (Form.scale
                   (float_of_int extra_sinks.(i).(p))
                   load_forms.(p))
            else f)
          model_forms
      in
      let tf = Replace.transform_instance dg fp ~mode ~inst:i base_forms in
      Array.iteri
        (fun e s ->
          edges := (offsets.(i) + s, offsets.(i) + g.Tgraph.dst.(e)) :: !edges;
          forms := tf.(e) :: !forms)
        g.Tgraph.src)
    instances;
  let port_in { Floorplan.inst; port } =
    offsets.(inst) + graphs.(inst).Tgraph.inputs.(port)
  in
  let port_out { Floorplan.inst; port } =
    offsets.(inst) + graphs.(inst).Tgraph.outputs.(port)
  in
  Array.iter
    (fun (src, dst) ->
      edges := (port_out src, port_in dst) :: !edges;
      forms := Form.constant dims 0.0 :: !forms)
    fp.Floorplan.connections;
  let inputs = Array.map port_in fp.Floorplan.ext_inputs in
  let outputs = Array.map port_out fp.Floorplan.ext_outputs in
  let edges = Array.of_list !edges and weights = Array.of_list !forms in
  let graph, perm = Tgraph.make_sorted ~n_vertices ~edges ~inputs ~outputs in
  let forms = Array.map (fun i -> weights.(i)) perm in
  let t1 = Unix.gettimeofday () in
  Ssta_obs.Obs.span_end sp_setup;
  let sp_prop = Ssta_obs.Obs.span_begin "hier.propagate" in
  (* Kernel-tier sweep: the stitched design graph is propagated through a
     (possibly caller-owned, reused) workspace; only the exported per-vertex
     option array is materialized afterwards. *)
  let fbuf = Form_buf.of_forms dims forms in
  let ws =
    match workspace with Some ws -> ws | None -> Propagate.create_workspace ()
  in
  Propagate.forward_into ws graph ~forms:fbuf ~sources:graph.Tgraph.inputs;
  let arrival =
    Array.init (Tgraph.n_vertices graph) (fun v -> Propagate.ws_form ws v)
  in
  let po_delays = Array.map (fun v -> arrival.(v)) graph.Tgraph.outputs in
  let delay =
    match Propagate.max_over arrival graph.Tgraph.outputs with
    | Some d -> d
    | None ->
        Ssta_robust.Robust.fail ~subsystem:"hier_analysis" ~operation:"analyze"
          ~indices:[ Array.length outputs ]
          "no design output is reachable from any design input"
  in
  let t2 = Unix.gettimeofday () in
  Ssta_obs.Obs.span_end sp_prop;
  {
    graph;
    forms;
    arrival;
    po_delays;
    delay;
    setup_seconds = t1 -. t0;
    propagate_seconds = t2 -. t1;
    wall_seconds = t2 -. t0;
  }

let flatten_graph (fp : Floorplan.t) =
  let instances = fp.Floorplan.instances in
  let build_of (i : Floorplan.instance) =
    match i.Floorplan.build with
    | Some b -> b
    | None ->
        failwith
          (Printf.sprintf
             "Hier_analysis: instance %s is gray-box (no netlist); flattened \
              analysis is impossible - that is the point of timing models"
             i.Floorplan.label)
  in
  let graphs = Array.map (fun i -> (build_of i).Build.graph) instances in
  let offsets, n_vertices = stitch_vertices graphs in
  let edges = ref [] and payload = ref [] in
  Array.iteri
    (fun i inst ->
      let g = graphs.(i) in
      Array.iteri
        (fun e s ->
          edges := (offsets.(i) + s, offsets.(i) + g.Tgraph.dst.(e)) :: !edges;
          payload := `Module (i, e) :: !payload)
        g.Tgraph.src;
      ignore inst)
    instances;
  let port_in { Floorplan.inst; port } =
    offsets.(inst) + graphs.(inst).Tgraph.inputs.(port)
  in
  let port_out { Floorplan.inst; port } =
    offsets.(inst) + graphs.(inst).Tgraph.outputs.(port)
  in
  Array.iter
    (fun (src, dst) ->
      edges := (port_out src, port_in dst) :: !edges;
      payload := `Interconnect :: !payload)
    fp.Floorplan.connections;
  let inputs = Array.map port_in fp.Floorplan.ext_inputs in
  let outputs = Array.map port_out fp.Floorplan.ext_outputs in
  let graph, perm =
    Tgraph.make_sorted ~n_vertices ~edges:(Array.of_list !edges) ~inputs
      ~outputs
  in
  let payload = Array.of_list !payload in
  (graph, Array.map (fun i -> payload.(i)) perm)

let flatten (fp : Floorplan.t) (dg : Design_grid.t) =
  let graph, payload = flatten_graph fp in
  let zero_edge =
    { Build.nominal = 0.0; sens = [||]; tile = 0; random_sigma = 0.0 }
  in
  let sparse =
    Array.map
      (function
        | `Interconnect -> zero_edge
        | `Module (i, e) ->
            let s =
              match fp.Floorplan.instances.(i).Floorplan.build with
              | Some b -> b.Build.sparse.(e)
              | None -> assert false (* flatten_graph already checked *)
            in
            {
              s with
              Build.tile =
                Design_grid.design_tile_of_instance dg ~inst:i s.Build.tile;
            })
      payload
  in
  { Ssta_mc.Sampler.graph; sparse; basis = dg.Design_grid.basis }

let flat_form (fp : Floorplan.t) (dg : Design_grid.t) =
  let graph, payload = flatten_graph fp in
  let dims = dg.Design_grid.basis.Basis.dims in
  let dbasis = dg.Design_grid.basis in
  let forms =
    Array.map
      (function
        | `Interconnect -> Form.constant dims 0.0
        | `Module (i, e) ->
            let s =
              match fp.Floorplan.instances.(i).Floorplan.build with
              | Some b -> b.Build.sparse.(e)
              | None -> assert false (* flatten_graph already checked *)
            in
            Basis.delay_form dbasis ~nominal:s.Build.nominal
              ~tile:(Design_grid.design_tile_of_instance dg ~inst:i s.Build.tile)
              ~sens:s.Build.sens
              ~extra_random_sigma:
                (let vr = dbasis.Basis.corr.Ssta_variation.Correlation.var_random in
                 let param_rand =
                   Array.fold_left
                     (fun acc sv ->
                       acc +. (s.Build.nominal *. sv *. s.Build.nominal *. sv *. vr))
                     0.0 s.Build.sens
                 in
                 sqrt (Float.max 0.0 ((s.Build.random_sigma *. s.Build.random_sigma) -. param_rand)))
              (* delay_form re-adds the parameter random variance; pass only
                 the load component so the total random sigma matches the
                 module characterization *))
      payload
  in
  let ws = Propagate.create_workspace () in
  Propagate.forward_into ws graph ~forms:(Form_buf.of_forms dims forms)
    ~sources:graph.Tgraph.inputs;
  let arrival =
    Array.init (Tgraph.n_vertices graph) (fun v -> Propagate.ws_form ws v)
  in
  match Propagate.max_over arrival graph.Tgraph.outputs with
  | Some d -> d
  | None ->
      Ssta_robust.Robust.fail ~subsystem:"hier_analysis" ~operation:"flat_form"
        ~indices:[ Array.length graph.Tgraph.outputs ]
        "no design output is reachable from any design input"
