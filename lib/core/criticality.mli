(** Edge criticality with respect to input-output pairs (paper Section IV-B).

    The criticality [c_ij] of edge [e] for pair [(i, j)] is the probability
    that [e] lies on the critical path from input [i] to output [j]:
    with [d_e = a_e + d + r_e] (max delay over i->j paths through [e], paper
    eq. (15)) and [M_ij] the max i->j delay, [c_ij = P(d_e >= M_ij)] (paper
    eqs. (13)-(14)); the maximum criticality [c_m] is the max over pairs.

    Evaluating the exact tightness probability for every (edge, pair) triple
    is O(E |I| |O| dim); we avoid most of it with a conservative scalar
    screen (see DESIGN.md): since std(X+Y) <= std X + std Y, for
    mu_de < mu_M the exact P(de >= M) = Phi((mu_de - mu_M)/theta) is bounded
    above by Phi((mu_de - mu_M)/theta_max) with
    theta_max = sigma_ae + sigma_d + sigma_re + sigma_M.  Triples whose bound
    stays below the threshold are discarded with six flops; exact canonical
    evaluation only runs on survivors.

    One subtlety of the canonical framework: when {e every} i->j path runs
    through [e], [M_ij] and [d_e] are the same path delay, but the forms
    carry their (shared) private random parts as if independent, which would
    collapse the tightness to 1/2.  Such pairs are detected by statistical
    identity (same mean, same linear part, no extra variance in [M]) and
    reported with criticality 1, matching the definition [P(de >= de) = 1]
    and the paper's Fig. 6 spike at criticality 1.  Edges that are dominant
    but not identical (true tightness between roughly 0.7 and 1) remain
    somewhat underestimated for the same reason; such edges are still far
    above any removal threshold, and the end-to-end extraction accuracy
    tests bound the effect. *)

module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

type result = {
  keep : bool array;  (** per edge: some pair has criticality >= delta *)
  cm : float array;
      (** per edge: exact maximum criticality when [exact] was requested,
          otherwise a lower bound that is correct on the keep/remove side of
          [delta] (kept edges carry a witness >= delta, removed edges their
          best evaluated value, 0 if screened out) *)
  exact_evals : int;  (** number of full tightness evaluations performed *)
  screened_pairs : int;
      (** number of (edge, pair) visits the scalar screen disposed of
          without a full evaluation; visits on already-settled edges are
          skipped outright and counted nowhere *)
}

val set_tile : int -> unit
(** Override the backward tile size for subsequent {!compute} calls
    (clamped to at least 1) - the [hssta --crit-tile] hook.  An explicit
    [?tile] argument still wins. *)

val set_tile_auto : unit -> unit
(** Override the backward tile size with the {!auto_tile} heuristic - the
    [hssta --crit-tile auto] hook.  An explicit [?tile] argument still
    wins. *)

val auto_tile : ?budget_mb:int -> n_vertices:int -> stride:int -> unit -> int
(** The budget-driven tile heuristic: the largest number of retained
    backward output slots whose workspaces fit in [budget_mb] megabytes
    (default: the [CRIT_TILE_BUDGET_MB] environment variable, else 256),
    floored at 1.  One output slot costs
    [n_vertices * (8 * stride + 18)] bytes: the backward [Form_buf]
    workspace ([stride] floats per vertex) and its reachability byte, the
    two required-time scalar rows, and the destination bitmask. *)

val compute :
  ?exact:bool ->
  ?domains:int ->
  ?tile:int ->
  delta:float ->
  Tgraph.t ->
  forms:Form.t array ->
  result
(** [exact] (default false) makes [cm] the exact per-edge maximum
    criticality (needed for the paper's Fig. 6 histogram) at the cost of
    more exact evaluations; criticalities whose screen bound is below
    [1e-3] are reported as 0.

    [domains] (default {!Ssta_par.Par.domains}) fans the per-output
    backward sweeps and the chunked per-input screening over a fixed-size
    domain pool.  The chunk layout is a function of the port counts only,
    so [keep], [cm], and both counters are bit-identical for every domain
    count (including the never-spawning sequential path at 1).

    [tile] bounds how many retained backward [Form_buf] workspaces are
    resident at once: outputs are processed in ascending tiles of this
    size, capping backward storage at [tile * |V| * stride] floats at the
    cost of one extra forward sweep per input per additional tile (every
    chunk re-derives its inputs' arrival data per tile; backward sweeps
    still run once per output).  Raises [Invalid_argument] if < 1.  When
    omitted the override of {!set_tile}, then the [CRIT_TILE] environment
    variable, then all outputs at once (the untiled behaviour) apply.
    [keep], [cm], [exact_evals] and [screened_pairs] are bit-identical at
    every tile size: a chunk's flattened visit order over (output, input,
    cone edge) does not depend on where the tile boundaries fall. *)
