(** Edge criticality with respect to input-output pairs (paper Section IV-B).

    The criticality [c_ij] of edge [e] for pair [(i, j)] is the probability
    that [e] lies on the critical path from input [i] to output [j]:
    with [d_e = a_e + d + r_e] (max delay over i->j paths through [e], paper
    eq. (15)) and [M_ij] the max i->j delay, [c_ij = P(d_e >= M_ij)] (paper
    eqs. (13)-(14)); the maximum criticality [c_m] is the max over pairs.

    Evaluating the exact tightness probability for every (edge, pair) triple
    is O(E |I| |O| dim); we avoid most of it with a conservative scalar
    screen (see DESIGN.md): since std(X+Y) <= std X + std Y, for
    mu_de < mu_M the exact P(de >= M) = Phi((mu_de - mu_M)/theta) is bounded
    above by Phi((mu_de - mu_M)/theta_max) with
    theta_max = sigma_ae + sigma_d + sigma_re + sigma_M.  Triples whose bound
    stays below the threshold are discarded with six flops; exact canonical
    evaluation only runs on survivors.

    One subtlety of the canonical framework: when {e every} i->j path runs
    through [e], [M_ij] and [d_e] are the same path delay, but the forms
    carry their (shared) private random parts as if independent, which would
    collapse the tightness to 1/2.  Such pairs are detected by statistical
    identity (same mean, same linear part, no extra variance in [M]) and
    reported with criticality 1, matching the definition [P(de >= de) = 1]
    and the paper's Fig. 6 spike at criticality 1.  Edges that are dominant
    but not identical (true tightness between roughly 0.7 and 1) remain
    somewhat underestimated for the same reason; such edges are still far
    above any removal threshold, and the end-to-end extraction accuracy
    tests bound the effect. *)

module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

type result = {
  keep : bool array;  (** per edge: some pair has criticality >= delta *)
  cm : float array;
      (** per edge: exact maximum criticality when [exact] was requested,
          otherwise a lower bound that is correct on the keep/remove side of
          [delta] (kept edges carry a witness >= delta, removed edges their
          best evaluated value, 0 if screened out) *)
  exact_evals : int;  (** number of full tightness evaluations performed *)
  screened_pairs : int;
      (** number of (edge, pair) visits the scalar screen disposed of
          without a full evaluation; visits on already-settled edges are
          skipped outright and counted nowhere *)
}

(** {1 Tile selection}

    The backward tile size resolves with the precedence: an explicit
    [?tile] argument, else the {!set_tile}/{!set_tile_auto} override (the
    [hssta --crit-tile] hook), else the [CRIT_TILE] environment variable
    (an integer, or ["auto"]), else the {!auto_tile} heuristic.  Auto is
    the default: tiled slab storage is the standard extraction
    architecture, and the budget knob is [CRIT_TILE_BUDGET_MB].  Passing a
    fixed tile >= the output count reproduces the old untiled behaviour. *)

type tile_choice = Fixed of int | Auto

val tile_choice_of_string : string -> tile_choice option
(** The pure parser behind both [CRIT_TILE] and [--crit-tile]: ["auto"]
    (any case, surrounding whitespace ignored) is [Auto], a positive
    integer is [Fixed], anything else is [None] (rejected by the CLI,
    ignored by the env path). *)

val budget_mb_of_string : string -> int option
(** The pure parser behind [CRIT_TILE_BUDGET_MB]: a positive integer in
    megabytes, [None] (fall back to the 256 MB default) otherwise. *)

val set_tile : int -> unit
(** Override the backward tile size for subsequent {!compute} calls
    (clamped to at least 1).  An explicit [?tile] argument still wins. *)

val set_tile_auto : unit -> unit
(** Reset the override to the {!auto_tile} heuristic (the default when no
    override or [CRIT_TILE] setting is present).  An explicit [?tile]
    argument still wins. *)

val auto_tile :
  ?budget_mb:int -> n_vertices:int -> n_edges:int -> stride:int -> unit -> int
(** The budget-driven tile heuristic: the largest number of retained
    backward output slots that fit in [budget_mb] megabytes (default: the
    [CRIT_TILE_BUDGET_MB] environment variable, else 256), floored at 1.
    One output slot costs
    [n_vertices * (8 * stride + 34) + 8 * n_edges] bytes: the backward
    [Form_buf] workspace ([stride] floats per vertex) and its reachability
    byte, the four required-time scalar rows (mean, sigma, variance,
    random coefficient), the destination bitmask, and the per-output
    Cov(edge delay, required) table (one float per edge). *)

val compute :
  ?exact:bool ->
  ?domains:int ->
  ?tile:int ->
  ?engine:[ `Blocked | `Reference ] ->
  delta:float ->
  Tgraph.t ->
  forms:Form.t array ->
  result
(** [exact] (default false) makes [cm] the exact per-edge maximum
    criticality (needed for the paper's Fig. 6 histogram) at the cost of
    more exact evaluations; criticalities whose screen bound is below
    [1e-3] are reported as 0.

    [domains] (default {!Ssta_par.Par.domains}) fans the per-output
    backward sweeps and the chunked per-input screening over a fixed-size
    domain pool.  The chunk layout is a function of the port counts only,
    so [keep], [cm], and both counters are bit-identical for every domain
    count (including the never-spawning sequential path at 1).

    [tile] bounds how many retained backward output slots (workspace +
    scalar rows + covariance table, all on one capacity-planned slab) are
    resident at once: outputs are processed in ascending tiles of this
    size at the cost of one extra forward sweep per input per additional
    tile (every chunk re-derives its inputs' arrival data per tile;
    backward sweeps still run once per output).  Raises [Invalid_argument]
    if < 1.  When omitted, the precedence above applies (auto by default).
    [keep], [cm], [exact_evals] and [screened_pairs] are bit-identical at
    every tile size: a chunk's flattened visit order over (output, input,
    cone edge) does not depend on where the tile boundaries fall.

    [engine] (default [`Blocked]) selects the evaluation machinery, never
    the results: [`Blocked] runs the tiled multi-output backward blocks
    and the precomputed-covariance eval fast path; [`Reference] runs the
    per-output backward sweeps and the fused single-pass
    {!Ssta_canonical.Form_buf.quad_stats_into} eval.  Both fill the same
    scratch layout with bit-identical values and share the decision tail,
    so every result field and counter matches exactly - the equivalence
    tests and the bench speedup floor compare the two. *)
