module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Obs = Ssta_obs.Obs

(* Sweep-level instrumentation.  The kernels' inner loops stay untouched:
   sweep and Clark-max counts are recovered from the final reachability
   mask after the sweep (see [account] below), so the disabled-mode cost
   is one flag load per sweep. *)
let c_forward_sweeps = Obs.counter "propagate.forward_sweeps"
let c_update_sweeps = Obs.counter "propagate.update_sweeps"
let c_update_vertices = Obs.counter "propagate.update_vertices"
let c_update_edges = Obs.counter "propagate.update_edges"
let c_backward_sweeps = Obs.counter "propagate.backward_sweeps"
let c_backward_blocks = Obs.counter "propagate.backward_blocks"
let c_clark_max_evals = Obs.counter "propagate.clark_max_evals"
let c_add_evals = Obs.counter "propagate.add_evals"
let g_ws_floats = Obs.gauge "propagate.ws_floats_hw"

let check g forms =
  if Array.length forms <> Tgraph.n_edges g then
    invalid_arg "Propagate: form array length does not match edge count"

let check_buf g forms =
  if Form_buf.length forms < Tgraph.n_edges g then
    invalid_arg "Propagate: form buffer shorter than edge count"

type workspace = {
  mutable buf : Form_buf.t;
  mutable reach : Bytes.t;
  mutable srcmask : Bytes.t;
      (* per-vertex source-membership scratch of [forward_update_into];
         only meaningful during a call *)
  slab : Form_buf.slab option;
}

let create_workspace ?slab () =
  {
    buf = Form_buf.create { Form.n_globals = 0; n_pcs = 0 } 0;
    reach = Bytes.create 0;
    srcmask = Bytes.create 0;
    slab;
  }

let ws_buf ws = ws.buf
let ws_reached ws v = Bytes.unsafe_get ws.reach v <> '\000'

let ws_form ws v =
  if ws_reached ws v then Some (Form_buf.get ws.buf v) else None

let ws_reach_into ws ~n ~into =
  if Bytes.length into < n then
    invalid_arg "Propagate.ws_reach_into: destination shorter than n";
  Bytes.blit ws.reach 0 into 0 n

let ws_source_cone_into ws g ~into =
  Tgraph.src_cone_into g ~reach:ws.reach ~into

(* Size the workspace for one sweep and clear the reachability mask; slots
   are left as-is (reads are gated by the mask, so stale values from a
   previous sweep are never observed). *)
let prepare ws ~dims ~n =
  if Form_buf.dims ws.buf <> dims || Form_buf.length ws.buf < n then begin
    ws.buf <- Form_buf.create ?slab:ws.slab dims n;
    Obs.gauge_max g_ws_floats (Form_buf.length ws.buf * Form_buf.stride ws.buf)
  end;
  if Bytes.length ws.reach < n then ws.reach <- Bytes.make n '\000'
  else Bytes.fill ws.reach 0 (Bytes.length ws.reach) '\000'

let mark ws v = Bytes.unsafe_set ws.reach v '\001'

(* Pre-size a workspace outside any parallel region.  Slab-backed
   workspaces carve their buffer on first [prepare]; when that first sweep
   runs inside a parallel region, concurrent carves would race on the
   slab's cursor.  Callers that share one slab across workspaces swept in
   parallel (the criticality tile) must reserve each workspace
   sequentially first, after which in-region prepares never regrow. *)
let reserve ws ~dims ~n = prepare ws ~dims ~n

(* Post-sweep op accounting, run only when observability is enabled so
   the kernel loops carry no per-edge instrumentation.  The edge list is
   topologically sorted (every fanin edge of a vertex precedes every
   fanout edge), so "endpoint reached in the final mask" is exactly
   "endpoint was reached when the edge was processed": the processed-edge
   count is the number of edges whose upstream endpoint ([src] forward,
   [dst] backward) is reached, each reached non-seed vertex was produced
   by exactly one plain add, and every remaining processed edge ran the
   fused add + Clark-max kernel. *)
let account ws g ~n_seeds ~upstream ~sweeps =
  let processed = ref 0 in
  for i = 0 to Array.length upstream - 1 do
    if ws_reached ws (Array.unsafe_get upstream i) then Stdlib.incr processed
  done;
  let reached = ref 0 in
  for v = 0 to Tgraph.n_vertices g - 1 do
    if ws_reached ws v then Stdlib.incr reached
  done;
  let adds = !reached - n_seeds in
  Obs.incr sweeps;
  Obs.add c_add_evals adds;
  Obs.add c_clark_max_evals (!processed - adds)

let forward_into ws g ~forms ~sources =
  check_buf g forms;
  prepare ws ~dims:(Form_buf.dims forms) ~n:(Tgraph.n_vertices g);
  let buf = ws.buf in
  Array.iter
    (fun v ->
      Form_buf.clear_slot buf v;
      mark ws v)
    sources;
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  for i = 0 to Array.length src - 1 do
    let s = Array.unsafe_get src i in
    if ws_reached ws s then begin
      let d = Array.unsafe_get dst i in
      if ws_reached ws d then
        Form_buf.add_then_max_into ~acc:buf ~iacc:d ~a:buf ~ia:s ~b:forms ~ib:i
      else begin
        Form_buf.add_into ~a:buf ~ia:s ~b:forms ~ib:i ~dst:buf ~idst:d;
        mark ws d
      end
    end
  done;
  if Obs.enabled () then
    account ws g ~n_seeds:(Array.length sources) ~upstream:src
      ~sweeps:c_forward_sweeps

(* Forward sweep restricted to a precomputed edge cone: [edges.(lo..hi)]
   must be ascending and contain every edge whose source the sweep reaches
   (e.g. the reachable cone of a single-source sweep, built once per input
   and shared across a whole scenario batch).  The visited subsequence then
   equals the full scan's reached-source subsequence, so the result is
   bit-identical to [forward_into] - the skipped edges are exactly the ones
   whose guard would have failed.  The [lo, hi) range addresses directly
   into a shared CSR cone array, so callers never slice a fresh array per
   sweep. *)
let forward_cone_into ws g ~forms ~sources ~edges ~lo ~hi =
  check_buf g forms;
  if lo < 0 || hi > Array.length edges || lo > hi then
    invalid_arg "Propagate.forward_cone_into: bad cone range";
  prepare ws ~dims:(Form_buf.dims forms) ~n:(Tgraph.n_vertices g);
  let buf = ws.buf in
  Array.iter
    (fun v ->
      Form_buf.clear_slot buf v;
      mark ws v)
    sources;
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  for x = lo to hi - 1 do
    let i = Array.unsafe_get edges x in
    let s = Array.unsafe_get src i in
    if ws_reached ws s then begin
      let d = Array.unsafe_get dst i in
      if ws_reached ws d then
        Form_buf.add_then_max_into ~acc:buf ~iacc:d ~a:buf ~ia:s ~b:forms ~ib:i
      else begin
        Form_buf.add_into ~a:buf ~ia:s ~b:forms ~ib:i ~dst:buf ~idst:d;
        mark ws d
      end
    end
  done;
  if Obs.enabled () then
    account ws g ~n_seeds:(Array.length sources) ~upstream:src
      ~sweeps:c_forward_sweeps

(* Incremental re-timing: recompute only the vertices marked dirty, in
   topological order, reading the surviving slots of the previous sweep
   for every clean fanin.  Soundness needs the dirty mask to be closed
   under fanout (Tgraph.fanout_closure_into): then every clean vertex has
   only clean fanin sources, so its stored slot is exactly what a full
   re-sweep would recompute, and every dirty vertex is rebuilt with the
   same fanin-range fold (same kernel calls, same order) as the full
   sweep - bit-identical by induction over the topological order.  Delay
   edits never change reachability, but the reached bit of each dirty
   vertex is re-derived anyway so the workspace stays self-consistent.
   Dirty vertices with no fanin are left untouched (their state - zero
   form for sources, unreached otherwise - cannot depend on edge
   forms). *)
let forward_update_into ws g ~forms ~sources ~dirty =
  check_buf g forms;
  let n = Tgraph.n_vertices g in
  if Form_buf.dims ws.buf <> Form_buf.dims forms || Form_buf.length ws.buf < n
  then
    invalid_arg
      "Propagate.forward_update_into: workspace holds no prior sweep of this \
       graph";
  if Bytes.length ws.reach < n then
    invalid_arg
      "Propagate.forward_update_into: workspace holds no prior sweep of this \
       graph";
  if Bytes.length dirty < n then
    invalid_arg "Propagate.forward_update_into: dirty mask shorter than graph";
  if Bytes.length ws.srcmask < n then ws.srcmask <- Bytes.make n '\000'
  else Bytes.fill ws.srcmask 0 n '\000';
  Array.iter (fun v -> Bytes.unsafe_set ws.srcmask v '\001') sources;
  let buf = ws.buf in
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  let fanin_lo = g.Tgraph.fanin_lo and fanin_hi = g.Tgraph.fanin_hi in
  let n_dirty = ref 0 and n_visited = ref 0 in
  for i = 0 to Array.length src - 1 do
    let v = Array.unsafe_get dst i in
    if
      i = Array.unsafe_get fanin_lo v && Bytes.unsafe_get dirty v <> '\000'
    then begin
      Stdlib.incr n_dirty;
      if Bytes.unsafe_get ws.srcmask v <> '\000' then begin
        Form_buf.clear_slot buf v;
        Bytes.unsafe_set ws.reach v '\001'
      end
      else Bytes.unsafe_set ws.reach v '\000';
      let hi = Array.unsafe_get fanin_hi v in
      for e = i to hi - 1 do
        Stdlib.incr n_visited;
        let s = Array.unsafe_get src e in
        if ws_reached ws s then
          if ws_reached ws v then
            Form_buf.add_then_max_into ~acc:buf ~iacc:v ~a:buf ~ia:s ~b:forms
              ~ib:e
          else begin
            Form_buf.add_into ~a:buf ~ia:s ~b:forms ~ib:e ~dst:buf ~idst:v;
            mark ws v
          end
      done
    end
  done;
  if Obs.enabled () then begin
    Obs.incr c_update_sweeps;
    Obs.add c_update_vertices !n_dirty;
    Obs.add c_update_edges !n_visited
  end;
  (!n_dirty, !n_visited)

let backward_to_into ws g ~forms out =
  check_buf g forms;
  prepare ws ~dims:(Form_buf.dims forms) ~n:(Tgraph.n_vertices g);
  let buf = ws.buf in
  Form_buf.clear_slot buf out;
  mark ws out;
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  for i = Array.length src - 1 downto 0 do
    let d = Array.unsafe_get dst i in
    if ws_reached ws d then begin
      let s = Array.unsafe_get src i in
      if ws_reached ws s then
        Form_buf.add_then_max_into ~acc:buf ~iacc:s ~a:buf ~ia:d ~b:forms ~ib:i
      else begin
        Form_buf.add_into ~a:buf ~ia:d ~b:forms ~ib:i ~dst:buf ~idst:s;
        mark ws s
      end
    end
  done;
  if Obs.enabled () then
    account ws g ~n_seeds:1 ~upstream:dst ~sweeps:c_backward_sweeps

(* Blocked multi-output backward propagation: one pass over the reversed
   topological edge order advances a whole block of output sweeps at once,
   so the edge table (src/dst loads) is traversed once per block instead
   of once per output.  Workspace [k] of [wss.(lo..hi-1)] receives exactly
   the kernel-call sequence of [backward_to_into wss.(k) g ~forms
   outs.(k)]: the workspaces are disjoint and the per-edge inner loop
   visits them in a fixed order, so each output's accumulation order — and
   therefore every result bit — is unchanged (test_crit_screen.ml pins
   this over random DAGs).  Accounting stays per output sweep
   ([backward_sweeps] still counts outputs); [backward_blocks] counts the
   amortized passes. *)
let backward_block_into wss g ~forms ~outs ~lo ~hi =
  check_buf g forms;
  if
    lo < 0 || lo > hi
    || hi > Array.length wss
    || hi > Array.length outs
  then invalid_arg "Propagate.backward_block_into: bad block range";
  let dims = Form_buf.dims forms and nv = Tgraph.n_vertices g in
  for k = lo to hi - 1 do
    let ws = wss.(k) in
    prepare ws ~dims ~n:nv;
    Form_buf.clear_slot ws.buf outs.(k);
    mark ws outs.(k)
  done;
  let src = g.Tgraph.src and dst = g.Tgraph.dst in
  for i = Array.length src - 1 downto 0 do
    let d = Array.unsafe_get dst i in
    let s = Array.unsafe_get src i in
    for k = lo to hi - 1 do
      let ws = Array.unsafe_get wss k in
      if ws_reached ws d then begin
        let buf = ws.buf in
        if ws_reached ws s then
          Form_buf.add_then_max_into ~acc:buf ~iacc:s ~a:buf ~ia:d ~b:forms
            ~ib:i
        else begin
          Form_buf.add_into ~a:buf ~ia:d ~b:forms ~ib:i ~dst:buf ~idst:s;
          mark ws s
        end
      end
    done
  done;
  if Obs.enabled () then begin
    for k = lo to hi - 1 do
      account wss.(k) g ~n_seeds:1 ~upstream:dst ~sweeps:c_backward_sweeps
    done;
    if hi > lo then Obs.incr c_backward_blocks
  end

let scalar_summaries_into ws ~n ~mu ~sigma =
  for v = 0 to n - 1 do
    if ws_reached ws v then begin
      mu.(v) <- Form_buf.mean ws.buf v;
      sigma.(v) <- Form_buf.std ws.buf v
    end
    else begin
      mu.(v) <- nan;
      sigma.(v) <- nan
    end
  done

(* As [scalar_summaries_into], but four statistics into one interleaved
   unboxed slab row: the blocked criticality screen retains mean, std,
   variance and the random coefficient per vertex so its eval fast path
   reads rows instead of probing the form buffer, and interleaving them at
   [stat_stride] puts all four in the cache line the visit's first load
   already fetched (the screen's vertex accesses are scattered, so four
   parallel rows cost four misses where one interleaved row costs one).
   [sigma = sqrt var] exactly as [Form_buf.std], so the row values are
   bit-identical to the probes. *)
let stat_mu = 0
let stat_sigma = 1
let stat_var = 2
let stat_rand = 3
let stat_stride = 4

let scalar_stats_into ws ~n ~into =
  let module A1 = Bigarray.Array1 in
  let buf = ws.buf in
  for v = 0 to n - 1 do
    let o = stat_stride * v in
    if ws_reached ws v then begin
      let variance = Form_buf.variance buf v in
      A1.unsafe_set into (o + stat_mu) (Form_buf.mean buf v);
      A1.unsafe_set into (o + stat_sigma) (sqrt variance);
      A1.unsafe_set into (o + stat_var) variance;
      A1.unsafe_set into (o + stat_rand) (Form_buf.rand_coeff buf v)
    end
    else begin
      A1.unsafe_set into (o + stat_mu) nan;
      A1.unsafe_set into (o + stat_sigma) nan;
      A1.unsafe_set into (o + stat_var) nan;
      A1.unsafe_set into (o + stat_rand) nan
    end
  done

(* Pure wrappers: pack the forms, run the kernel sweep, unpack the result.
   They reproduce the original per-op implementation bit for bit (the
   kernels replicate Form.add/Form.max2's accumulation order exactly). *)

let form_dims forms =
  if Array.length forms = 0 then { Form.n_globals = 0; n_pcs = 0 }
  else Form.dims forms.(0)

let unpack ws n = Array.init n (fun v -> ws_form ws v)

let forward g ~forms ~sources =
  check g forms;
  let fbuf = Form_buf.of_forms (form_dims forms) forms in
  let ws = create_workspace () in
  forward_into ws g ~forms:fbuf ~sources;
  unpack ws (Tgraph.n_vertices g)

let forward_all g ~forms = forward g ~forms ~sources:g.Tgraph.inputs

let backward_to g ~forms out =
  check g forms;
  let fbuf = Form_buf.of_forms (form_dims forms) forms in
  let ws = create_workspace () in
  backward_to_into ws g ~forms:fbuf out;
  unpack ws (Tgraph.n_vertices g)

let max_over arr vertices =
  Array.fold_left
    (fun acc v ->
      match (acc, arr.(v)) with
      | None, x -> x
      | x, None -> x
      | Some a, Some b -> Some (Form.max2 a b))
    None vertices

let scalar_summaries arr =
  let n = Array.length arr in
  let mu = Array.make n nan and sigma = Array.make n nan in
  Array.iteri
    (fun v form ->
      match form with
      | None -> ()
      | Some f ->
          mu.(v) <- f.Form.mean;
          sigma.(v) <- Form.std f)
    arr;
  (mu, sigma)
