module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph
module Tile = Ssta_variation.Tile
module Basis = Ssta_variation.Basis
module Correlation = Ssta_variation.Correlation
module Mat = Ssta_linalg.Mat
module Pca = Ssta_linalg.Pca
module Robust = Ssta_robust.Robust

let magic = "hssta-timing-model v1"

(* %h (hex floats) would also round-trip, but %.17g keeps the file readable
   while still being exact for binary64. *)
let f = Printf.sprintf "%.17g"

let floats xs = String.concat " " (Array.to_list (Array.map f xs))

let to_string (m : Timing_model.t) =
  let buf = Buffer.create 65536 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s;
                                   Buffer.add_char buf '\n') fmt in
  let g = m.Timing_model.graph in
  let basis = m.Timing_model.basis in
  let corr = basis.Basis.corr in
  let s = m.Timing_model.stats in
  line "%s" magic;
  line "name %s" m.Timing_model.name;
  line "delta %s" (f m.Timing_model.delta);
  let die = m.Timing_model.die in
  line "die %s %s %s %s" (f die.Tile.x0) (f die.Tile.y0) (f die.Tile.x1)
    (f die.Tile.y1);
  line "stats %d %d %d %d %d %d %s" s.Timing_model.original_edges
    s.Timing_model.original_vertices s.Timing_model.model_edges
    s.Timing_model.model_vertices s.Timing_model.removed_edges
    s.Timing_model.exact_evals
    (f s.Timing_model.extraction_seconds);
  line "corr %s %s %s %s" (f corr.Correlation.var_random)
    (f corr.Correlation.rho_near)
    (f corr.Correlation.var_global)
    (f corr.Correlation.d_far);
  line "params %d" basis.Basis.n_params;
  line "pitch %s" (f basis.Basis.pitch);
  let tiles = basis.Basis.tiles in
  line "tiles %d" (Array.length tiles);
  Array.iter
    (fun t ->
      line "tile %s %s %s %s" (f t.Tile.x0) (f t.Tile.y0) (f t.Tile.x1)
        (f t.Tile.y1))
    tiles;
  let pca = basis.Basis.pca in
  line "pca-values %s" (floats pca.Pca.values);
  line "pca-vectors %d" pca.Pca.dim;
  for i = 0 to pca.Pca.dim - 1 do
    line "%s" (floats (Mat.row pca.Pca.vectors i))
  done;
  line "vertices %d" (Tgraph.n_vertices g);
  line "inputs %d %s"
    (Array.length g.Tgraph.inputs)
    (String.concat " "
       (Array.to_list (Array.map string_of_int g.Tgraph.inputs)));
  line "outputs %d %s"
    (Array.length g.Tgraph.outputs)
    (String.concat " "
       (Array.to_list (Array.map string_of_int g.Tgraph.outputs)));
  line "output-loads %d" (Array.length m.Timing_model.output_load);
  Array.iter
    (fun form ->
      line "load %s %s g %s p %s" (f form.Form.mean) (f form.Form.rand)
        (floats form.Form.globals) (floats form.Form.pcs))
    m.Timing_model.output_load;
  line "edges %d" (Tgraph.n_edges g);
  Array.iteri
    (fun e src ->
      let form = m.Timing_model.forms.(e) in
      line "edge %d %d %s %s g %s p %s" src g.Tgraph.dst.(e)
        (f form.Form.mean) (f form.Form.rand)
        (floats form.Form.globals)
        (floats form.Form.pcs))
    g.Tgraph.src;
  line "end";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = {
  lines : string array;
  mutable pos : int;  (** index of the next unread line *)
  mutable cur : string;  (** text of the line last read (column lookup) *)
}

let nan_sanitized = Robust.counter "robust.nan_sanitized"

(* All parse failures carry a structured line/column position
   ({!Robust.pos}); nothing below may let a raw [Failure]/
   [Invalid_argument]/[Scanf] exception escape (the fuzz suite pins
   this).  The column is best-effort: the first occurrence of the
   offending token on the current line (1 when unknown), which is exact
   here because the format never repeats a malformed token before its
   first offense matters. *)
let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 || nl > hl then None
  else
    let rec at i =
      if i + nl > hl then None
      else if String.sub hay i nl = needle then Some i
      else at (i + 1)
    in
    at 0

let position ?tok st =
  let line = if st.pos = 0 then 1 else st.pos in
  let col =
    match tok with
    | Some t when t <> "" -> (
        match find_sub st.cur t with Some i -> i + 1 | None -> 1)
    | _ -> 1
  in
  { Robust.line; col }

let fail_at ?tok st msg =
  let pos = position ?tok st in
  Robust.fail ~subsystem:"model_io" ~operation:"parse"
    ~indices:[ pos.Robust.line ] ~pos msg

let next_line st =
  if st.pos >= Array.length st.lines then fail_at st "unexpected end of file";
  let l = st.lines.(st.pos) in
  st.pos <- st.pos + 1;
  st.cur <- l;
  l

let tokens_of st line =
  match String.split_on_char ' ' (String.trim line) with
  | [] -> fail_at st "empty line"
  | toks -> List.filter (fun t -> t <> "") toks

let expect st key =
  let line = next_line st in
  match tokens_of st line with
  | k :: rest when k = key -> rest
  | k :: _ ->
      fail_at ~tok:k st (Printf.sprintf "expected '%s', found '%s'" key k)
  | [] -> fail_at st (Printf.sprintf "expected '%s' on empty line" key)

let int_of st s =
  try int_of_string s with _ -> fail_at ~tok:s st ("not an integer: " ^ s)

let nat_of st s =
  let n = int_of st s in
  if n < 0 then fail_at ~tok:s st ("negative count: " ^ s);
  n

(* Validated boundary: serialized floats must be finite.  A "nan"/"inf"
   token (file corruption - the writer only emits finite %.17g values)
   fails with line/column context under Strict and parses as 0.0, counted
   in robust.nan_sanitized, under Repair/Warn. *)
let float_of st s =
  match float_of_string_opt s with
  | None -> fail_at ~tok:s st ("not a float: " ^ s)
  | Some v ->
      if Robust.is_finite v then v
      else begin
        let pos = position ~tok:s st in
        Robust.repair nan_sanitized
          (Robust.context ~subsystem:"model_io" ~operation:"parse"
             ~indices:[ pos.Robust.line ] ~values:[ v ] ~pos
             ("non-finite value: " ^ s));
        0.0
      end

let one st = function
  | [ x ] -> x
  | _ -> fail_at st "expected exactly one value"

let parse st =
  let header = next_line st in
  if String.trim header <> magic then
    fail_at st (Printf.sprintf "bad magic; expected %S" magic);
  let name =
    match expect st "name" with
    | [] -> fail_at st "missing model name"
    | parts -> String.concat " " parts
  in
  let delta = float_of st (one st (expect st "delta")) in
  let die =
    match expect st "die" with
    | [ a; b; c; d ] ->
        Tile.make ~x0:(float_of st a) ~y0:(float_of st b)
          ~x1:(float_of st c) ~y1:(float_of st d)
    | _ -> fail_at st "die expects 4 floats"
  in
  let stats =
    match expect st "stats" with
    | [ a; b; c; d; e; ev; t ] ->
        {
          Timing_model.original_edges = int_of st a;
          original_vertices = int_of st b;
          model_edges = int_of st c;
          model_vertices = int_of st d;
          removed_edges = int_of st e;
          exact_evals = int_of st ev;
          extraction_seconds = float_of st t;
        }
    | _ -> fail_at st "stats expects 7 values"
  in
  let corr =
    match expect st "corr" with
    | [ vr; rn; rf; df ] ->
        Correlation.make ~var_random:(float_of st vr)
          ~rho_near:(float_of st rn) ~rho_far:(float_of st rf)
          ~d_far:(float_of st df) ()
    | _ -> fail_at st "corr expects 4 floats"
  in
  let n_params = nat_of st (one st (expect st "params")) in
  let pitch = float_of st (one st (expect st "pitch")) in
  let n_tiles = nat_of st (one st (expect st "tiles")) in
  let tiles =
    Array.init n_tiles (fun _ ->
        match expect st "tile" with
        | [ a; b; c; d ] ->
            Tile.make ~x0:(float_of st a) ~y0:(float_of st b)
              ~x1:(float_of st c) ~y1:(float_of st d)
        | _ -> fail_at st "tile expects 4 floats")
  in
  let values =
    Array.of_list (List.map (float_of st) (expect st "pca-values"))
  in
  if Array.length values <> n_tiles then
    fail_at st "pca-values count does not match tiles";
  let dim = nat_of st (one st (expect st "pca-vectors")) in
  if dim <> n_tiles then fail_at st "pca dimension does not match tiles";
  let vectors =
    Mat.of_arrays
      (Array.init dim (fun _ ->
           let row =
             Array.of_list
               (List.map (float_of st) (tokens_of st (next_line st)))
           in
           if Array.length row <> dim then
             fail_at st "pca vector row has wrong arity";
           row))
  in
  let pca = Pca.of_parts ~values ~vectors in
  let basis = Basis.of_parts ~n_params ~corr ~pitch ~tiles ~pca in
  let n_vertices = nat_of st (one st (expect st "vertices")) in
  let id_list key =
    match expect st key with
    | count :: ids ->
        let n = nat_of st count in
        let ids = Array.of_list (List.map (int_of st) ids) in
        if Array.length ids <> n then
          fail_at st (key ^ " count does not match ids");
        ids
    | [] -> fail_at st ("empty " ^ key)
  in
  let inputs = id_list "inputs" in
  let outputs = id_list "outputs" in
  let n_globals = n_params in
  let n_pcs = n_params * n_tiles in
  let parse_form what mean rand rest =
    let rec split_globals k acc = function
      | "p" :: pcs when k = n_globals -> (List.rev acc, pcs)
      | x :: rest when k < n_globals ->
          split_globals (k + 1) (float_of st x :: acc) rest
      | _ -> fail_at st (what ^ " coefficient arity mismatch")
    in
    let globals, pcs_tok = split_globals 0 [] rest in
    let pcs = Array.of_list (List.map (float_of st) pcs_tok) in
    if Array.length pcs <> n_pcs then
      fail_at st (what ^ " PC coefficient arity mismatch");
    Form.make ~mean:(float_of st mean)
      ~globals:(Array.of_list globals)
      ~pcs ~rand:(float_of st rand)
  in
  let n_loads = nat_of st (one st (expect st "output-loads")) in
  if n_loads <> Array.length outputs then
    fail_at st "output-load count does not match outputs";
  let output_load =
    Array.init n_loads (fun _ ->
        match expect st "load" with
        | mean :: rand :: "g" :: rest -> parse_form "load" mean rand rest
        | _ -> fail_at st "malformed load line")
  in
  let n_edges = nat_of st (one st (expect st "edges")) in
  let edges = Array.make n_edges (0, 0) in
  let forms =
    Array.init n_edges (fun e ->
        match expect st "edge" with
        | src :: dst :: mean :: rand :: "g" :: rest ->
            let src = int_of st src and dst = int_of st dst in
            edges.(e) <- (src, dst);
            parse_form "edge" mean rand rest
        | _ -> fail_at st "malformed edge line")
  in
  (match expect st "end" with
  | [] -> ()
  | _ -> fail_at st "trailing tokens after 'end'");
  let graph = Tgraph.make ~n_vertices ~edges ~inputs ~outputs in
  { Timing_model.name; graph; forms; basis; die; delta; output_load; stats }

let of_string text =
  let st =
    { lines = Array.of_list (String.split_on_char '\n' text); pos = 0; cur = "" }
  in
  (* Catch-all: token mutations can trip validation deep inside the model
     constructors (Tile.make, Correlation.make, Pca.of_parts, Form.make,
     ...) as bare Failure/Invalid_argument; rewrap them with the current
     line position.  Structured errors (including Tgraph's) already name
     their site and pass through. *)
  try parse st with
  | Robust.Error _ as e -> raise e
  | Failure msg | Invalid_argument msg ->
      fail_at st ("invalid model data: " ^ msg)

let save m ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      of_string contents)
