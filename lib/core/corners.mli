(** Corner-based (worst-case) STA - the baseline the paper's introduction
    argues against: "parameter variations make traditional corner-based
    static timing analysis too pessimistic".  This module quantifies that
    pessimism on our own workloads: it evaluates deterministic STA at
    process corners and compares the slow-corner delay against the SSTA
    distribution's quantiles. *)

type corner =
  | Nominal
  | Slow of float  (** every parameter at +k sigma (including local/random) *)
  | Fast of float  (** every parameter at -k sigma *)
  | Global_slow of float
      (** only the global (die-to-die) part at +k sigma; local and random
          at nominal - the "realistic" corner methodology *)

val corner_weights :
  Ssta_timing.Build.t -> corner -> float array
(** Per-edge deterministic delays at the corner. *)

val corner_weights_into :
  Ssta_timing.Build.t -> corner -> into:float array -> unit
(** As {!corner_weights}, written into a caller-owned row (length at least
    the edge count) - the batch engine re-derives corner means per scenario
    into pooled worker scratch without allocating. *)

val corner_delay : Ssta_timing.Build.t -> corner -> float
(** Longest-path design delay at the corner. *)

type pessimism = {
  nominal : float;
  slow3 : float;  (** all-variation +3 sigma corner *)
  global_slow3 : float;
  ssta_q9987 : float;  (** SSTA 3-sigma-equivalent quantile *)
  margin_ratio : float;
      (** (slow3 - nominal) / (ssta_q9987 - nominal): how much wider the
          corner margin is than the statistically-needed margin *)
}

val pessimism : Ssta_timing.Build.t -> pessimism
(** Raises [Failure] if the circuit has no reachable output. *)

val pp_pessimism : Format.formatter -> pessimism -> unit
