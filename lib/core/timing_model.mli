(** Pre-characterized statistical timing models (paper Section III): a
    compressed timing graph with the same ports and (statistically) the same
    input-output delay matrix as the module it replaces, with every edge
    weight canonical over the module's variation basis. *)

module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

type stats = {
  original_edges : int;
  original_vertices : int;
  model_edges : int;
  model_vertices : int;
  removed_edges : int;  (** edges dropped by the criticality filter *)
  exact_evals : int;
  extraction_seconds : float;
}

type t = {
  name : string;
  graph : Tgraph.t;  (** the reduced gray-box graph *)
  forms : Form.t array;  (** per edge, over the module basis *)
  basis : Ssta_variation.Basis.t;
      (** module-level variation basis; its tile array is the module's
          characterization grid (regular for leaf modules, heterogeneous for
          models extracted from designs) and is what design-level partitions
          replicate *)
  die : Ssta_variation.Tile.t;
  delta : float;  (** criticality threshold used at extraction *)
  output_load : Form.t array;
      (** per output port: the canonical delay increment each {e additional}
          external sink costs (beyond the single sink the characterization
          assumed).  This implements the paper's stated future work of
          carrying output load through model extraction: the increment is
          derived from the output-driving arcs' load slope and is applied
          additively by {!Hier_analysis} - exact because every path into an
          output traverses exactly one final arc. *)
  stats : stats;
}

val n_inputs : t -> int
val n_outputs : t -> int

val io_delays : ?domains:int -> t -> Form.t option array array
(** The model's delay matrix [M_ij]: per input, a canonical propagation
    through the (small) model graph; [None] for unconnected pairs.  The
    per-input sweeps fan out over [domains] workers (default
    {!Ssta_par.Par.domains}); rows are merged in input order, so the matrix
    is identical for every domain count. *)

val compression : t -> float * float
(** [(pe, pv)] = model edges / original edges, model vertices / original
    vertices - the pe/pv columns of Table I. *)

val pp_stats : Format.formatter -> t -> unit
