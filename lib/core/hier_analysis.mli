(** Design-level hierarchical SSTA (paper Section V, Fig. 5): stitch the
    pre-characterized instance models into one design-level timing graph,
    rewrite every model form over the design basis (by independent-variable
    replacement, or keeping only global correlation for the paper's
    baseline), and propagate arrival times from design PIs to design POs.

    Also provides the flattened-netlist projection used by the Monte Carlo
    reference (the paper's golden comparison for Fig. 7). *)

module Form = Ssta_canonical.Form
module Tgraph = Ssta_timing.Tgraph

type result = {
  graph : Tgraph.t;  (** the stitched design-level graph *)
  forms : Form.t array;
  arrival : Form.t option array;
  po_delays : Form.t option array;  (** per design PO *)
  delay : Form.t;  (** design delay: statistical max over POs *)
  setup_seconds : float;
      (** one-time design-load cost: variable replacement + stitching *)
  propagate_seconds : float;
      (** per-analysis cost: the design-level arrival propagation (what the
          paper's speedup-vs-Monte-Carlo comparison is about) *)
  wall_seconds : float;  (** setup + propagation *)
}

val analyze :
  ?workspace:Propagate.workspace ->
  Floorplan.t ->
  Design_grid.t ->
  mode:Replace.mode ->
  result
(** Raises [Failure] if no design output is reachable.  [workspace] lets a
    caller running many analyses (what-if sweeps, incremental re-analysis)
    reuse one propagation workspace across calls instead of allocating a
    fresh one per analysis. *)

val flatten :
  Floorplan.t -> Design_grid.t -> Ssta_mc.Sampler.ctx
(** The flattened design at gate level: instance timing graphs plus
    zero-delay interconnect edges, with every gate's correlation tile mapped
    into the design grid.  Feed to {!Ssta_mc.Flat_mc.run} for the golden
    Monte Carlo distribution. *)

val flat_form :
  Floorplan.t -> Design_grid.t -> Form.t
(** Canonical SSTA on the flattened design over the design basis (no model
    extraction involved) - the "flat SSTA" reference separating model
    compression error from hierarchical propagation error. *)
