module Build = Ssta_timing.Build
module Tgraph = Ssta_timing.Tgraph
module Obs = Ssta_obs.Obs
module CForm = Ssta_canonical.Form

(* Delay increment per additional external sink on each output port: the
   output-driving arcs were characterized at their internal fanout with a
   12%-per-sink load slope (Cell.arc_delay), so one extra sink scales each
   final arc by slope = 0.12 / (1 + 0.12 (fanout - 1)); the increment is the
   statistical max over the port's fanin arcs (paper future work).

   The fold runs on Form_buf in-place kernels over one two-slot scratch
   row: slot 0 accumulates, slot 1 holds the next scaled arc.  The boxed
   version consed a [Form.scale] list and folded [Form.max_list] per
   output; this visits the arcs in the same order that fold did (the list
   head was the LAST fanin arc), so the Clark results are bit-identical,
   and only the final [get] per output allocates. *)
let output_load_increments ?forms (b : Build.t) =
  let module Form = Ssta_canonical.Form in
  let module Form_buf = Ssta_canonical.Form_buf in
  let g = b.Build.graph in
  let fanouts = Ssta_circuit.Netlist.fanout_counts b.Build.netlist in
  let dims = b.Build.basis.Ssta_variation.Basis.dims in
  let forms = match forms with Some f -> f | None -> b.Build.forms in
  let fbuf = Form_buf.of_forms dims forms in
  let scratch = Form_buf.create dims 2 in
  Array.map
    (fun out ->
      let lo = g.Tgraph.fanin_lo.(out) and hi = g.Tgraph.fanin_hi.(out) in
      if hi <= lo then Form.zero dims
      else begin
        let fanout = max fanouts.(out) 1 in
        let slope = 0.12 /. (1.0 +. (0.12 *. float_of_int (fanout - 1))) in
        Form_buf.scale_into ~alpha:slope ~a:fbuf ~ia:(hi - 1) ~dst:scratch
          ~idst:0;
        for e = hi - 2 downto lo do
          Form_buf.scale_into ~alpha:slope ~a:fbuf ~ia:e ~dst:scratch ~idst:1;
          (* In-place accumulate: max2_into reads every operand coefficient
             before overwriting it, so dst = a is safe. *)
          Form_buf.max2_into ~a:scratch ~ia:0 ~b:scratch ~ib:1 ~dst:scratch
            ~idst:0
        done;
        Form_buf.get scratch 0
      end)
    g.Tgraph.outputs

(* Shared between module- and design-level extraction: criticality filter,
   merge to fixpoint, and the Table-I bookkeeping. *)
(* Each extraction phase gets its own observability span (the journal
   extension's Table-breakdown granularity): the delta criticality
   screen, the merge fixpoint, and the freeze back into a sorted graph.
   bench/main.ml turns these into the per-phase BENCH_JSON breakdown. *)
let reduce_and_stats ?(exact = false) ?domains ~delta ~t0 g forms =
  let crit =
    Obs.with_span "extract.criticality" (fun () ->
        Criticality.compute ~exact ?domains ~delta g ~forms)
  in
  let work =
    Obs.with_span "extract.reduce" (fun () ->
        let work = Reduce.of_graph g ~forms ~keep:crit.Criticality.keep in
        Reduce.reduce work;
        work)
  in
  let graph, rforms, _inputs, _outputs =
    Obs.with_span "extract.freeze" (fun () -> Reduce.freeze work)
  in
  let removed =
    Array.fold_left
      (fun acc k -> if k then acc else acc + 1)
      0 crit.Criticality.keep
  in
  let stats =
    {
      Timing_model.original_edges = Tgraph.n_edges g;
      original_vertices = Tgraph.n_vertices g;
      model_edges = Tgraph.n_edges graph;
      model_vertices = Tgraph.n_vertices graph;
      removed_edges = removed;
      exact_evals = crit.Criticality.exact_evals;
      extraction_seconds = Unix.gettimeofday () -. t0;
    }
  in
  (crit, graph, rforms, stats)

let extract_with_criticality ?(exact = false) ?domains ?(delta = 0.05)
    (b : Build.t) =
  let t0 = Unix.gettimeofday () in
  let g = b.Build.graph in
  (* Validated boundary: characterized forms enter the extraction pipeline
     checked (and, under Repair/Warn, sanitized); clean arrays pass
     through physically unchanged. *)
  let in_forms =
    CForm.sanitize_forms ~subsystem:"extract" ~operation:"extract"
      b.Build.forms
  in
  let crit, graph, forms, stats =
    reduce_and_stats ~exact ?domains ~delta ~t0 g in_forms
  in
  let output_load =
    Obs.with_span "extract.output_load" (fun () ->
        output_load_increments ~forms:in_forms b)
  in
  let model =
    {
      Timing_model.name = b.Build.netlist.Ssta_circuit.Netlist.name;
      graph;
      forms;
      basis = b.Build.basis;
      die = b.Build.placement.Ssta_circuit.Placement.die;
      delta;
      output_load;
      stats;
    }
  in
  (model, crit)

let extract ?domains ?delta b =
  fst (extract_with_criticality ?domains ?delta b)

let extract_design ?domains ?(delta = 0.05) ~name (fp : Floorplan.t)
    (dg : Design_grid.t) (res : Hier_analysis.result) =
  let t0 = Unix.gettimeofday () in
  let g = res.Hier_analysis.graph in
  let forms =
    CForm.sanitize_forms ~subsystem:"extract" ~operation:"extract_design"
      res.Hier_analysis.forms
  in
  let _crit, graph, rforms, stats =
    reduce_and_stats ?domains ~delta ~t0 g forms
  in
  (* Each design output is an instance output port; its load increment is
     the instance's, rewritten over the design basis. *)
  let output_load =
    Obs.with_span "extract.output_load" (fun () ->
        Array.map
          (fun ({ Floorplan.inst; port } as _p) ->
            let model = fp.Floorplan.instances.(inst).Floorplan.model in
            let m = Some (Replace.matrix dg fp ~inst) in
            Replace.transform_form dg ~mode:Replace.Replaced ~m ~inst
              model.Timing_model.output_load.(port))
          fp.Floorplan.ext_outputs)
  in
  {
    Timing_model.name;
    graph;
    forms = rforms;
    basis = dg.Design_grid.basis;
    die = fp.Floorplan.die;
    delta;
    output_load;
    stats;
  }
