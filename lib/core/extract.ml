module Build = Ssta_timing.Build
module Tgraph = Ssta_timing.Tgraph
module Obs = Ssta_obs.Obs

(* Delay increment per additional external sink on each output port: the
   output-driving arcs were characterized at their internal fanout with a
   12%-per-sink load slope (Cell.arc_delay), so one extra sink scales each
   final arc by slope = 0.12 / (1 + 0.12 (fanout - 1)); the increment is the
   statistical max over the port's fanin arcs (paper future work). *)
let output_load_increments (b : Build.t) =
  let module Form = Ssta_canonical.Form in
  let g = b.Build.graph in
  let fanouts = Ssta_circuit.Netlist.fanout_counts b.Build.netlist in
  Array.map
    (fun out ->
      let lo = g.Tgraph.fanin_lo.(out) and hi = g.Tgraph.fanin_hi.(out) in
      if hi <= lo then Form.zero b.Build.basis.Ssta_variation.Basis.dims
      else begin
        let fanout = max fanouts.(out) 1 in
        let slope = 0.12 /. (1.0 +. (0.12 *. float_of_int (fanout - 1))) in
        let arcs = ref [] in
        for e = lo to hi - 1 do
          arcs := Form.scale slope b.Build.forms.(e) :: !arcs
        done;
        Form.max_list !arcs
      end)
    g.Tgraph.outputs

(* Shared between module- and design-level extraction: criticality filter,
   merge to fixpoint, and the Table-I bookkeeping. *)
(* Each extraction phase gets its own observability span (the journal
   extension's Table-breakdown granularity): the delta criticality
   screen, the merge fixpoint, and the freeze back into a sorted graph.
   bench/main.ml turns these into the per-phase BENCH_JSON breakdown. *)
let reduce_and_stats ?(exact = false) ?domains ~delta ~t0 g forms =
  let crit =
    Obs.with_span "extract.criticality" (fun () ->
        Criticality.compute ~exact ?domains ~delta g ~forms)
  in
  let work =
    Obs.with_span "extract.reduce" (fun () ->
        let work = Reduce.of_graph g ~forms ~keep:crit.Criticality.keep in
        Reduce.reduce work;
        work)
  in
  let graph, rforms, _inputs, _outputs =
    Obs.with_span "extract.freeze" (fun () -> Reduce.freeze work)
  in
  let removed =
    Array.fold_left
      (fun acc k -> if k then acc else acc + 1)
      0 crit.Criticality.keep
  in
  let stats =
    {
      Timing_model.original_edges = Tgraph.n_edges g;
      original_vertices = Tgraph.n_vertices g;
      model_edges = Tgraph.n_edges graph;
      model_vertices = Tgraph.n_vertices graph;
      removed_edges = removed;
      exact_evals = crit.Criticality.exact_evals;
      extraction_seconds = Unix.gettimeofday () -. t0;
    }
  in
  (crit, graph, rforms, stats)

let extract_with_criticality ?(exact = false) ?domains ?(delta = 0.05)
    (b : Build.t) =
  let t0 = Unix.gettimeofday () in
  let g = b.Build.graph in
  let crit, graph, forms, stats =
    reduce_and_stats ~exact ?domains ~delta ~t0 g b.Build.forms
  in
  let output_load =
    Obs.with_span "extract.output_load" (fun () -> output_load_increments b)
  in
  let model =
    {
      Timing_model.name = b.Build.netlist.Ssta_circuit.Netlist.name;
      graph;
      forms;
      basis = b.Build.basis;
      die = b.Build.placement.Ssta_circuit.Placement.die;
      delta;
      output_load;
      stats;
    }
  in
  (model, crit)

let extract ?domains ?delta b =
  fst (extract_with_criticality ?domains ?delta b)

let extract_design ?domains ?(delta = 0.05) ~name (fp : Floorplan.t)
    (dg : Design_grid.t) (res : Hier_analysis.result) =
  let t0 = Unix.gettimeofday () in
  let g = res.Hier_analysis.graph in
  let forms = res.Hier_analysis.forms in
  let _crit, graph, rforms, stats =
    reduce_and_stats ?domains ~delta ~t0 g forms
  in
  (* Each design output is an instance output port; its load increment is
     the instance's, rewritten over the design basis. *)
  let output_load =
    Obs.with_span "extract.output_load" (fun () ->
        Array.map
          (fun ({ Floorplan.inst; port } as _p) ->
            let model = fp.Floorplan.instances.(inst).Floorplan.model in
            let m = Some (Replace.matrix dg fp ~inst) in
            Replace.transform_form dg ~mode:Replace.Replaced ~m ~inst
              model.Timing_model.output_load.(port))
          fp.Floorplan.ext_outputs)
  in
  {
    Timing_model.name;
    graph;
    forms = rforms;
    basis = dg.Design_grid.basis;
    die = fp.Floorplan.die;
    delta;
    output_load;
    stats;
  }
