module Build = Ssta_timing.Build
module Form = Ssta_canonical.Form
module Correlation = Ssta_variation.Correlation
module Basis = Ssta_variation.Basis

type corner =
  | Nominal
  | Slow of float
  | Fast of float
  | Global_slow of float

(* Allocation-free core: the batch engine re-derives corner means per
   scenario into pooled worker scratch, so the per-edge evaluation writes
   into a caller-owned row.  [corner_weights] keeps its allocating API on
   top. *)
let corner_weights_into (b : Build.t) corner ~into =
  let sparse = b.Build.sparse in
  if Array.length into < Array.length sparse then
    invalid_arg "Corners.corner_weights_into: row shorter than edge count";
  let corr = b.Build.basis.Basis.corr in
  let sg = sqrt corr.Correlation.var_global in
  Array.iteri
    (fun i (s : Build.sparse_edge) ->
      let full_shift k =
        (* Every variation source pushed k sigma the same way: the parameter
           itself moves k sigma in total, and the load random adds its own
           k sigma worth of delay. *)
        let param =
          Array.fold_left (fun acc sv -> acc +. (sv *. k)) 0.0 s.Build.sens
        in
        (s.Build.nominal *. (1.0 +. param)) +. (k *. s.Build.random_sigma)
      in
      into.(i) <-
        (match corner with
        | Nominal -> s.Build.nominal
        | Slow k -> full_shift k
        | Fast k -> full_shift (-.k)
        | Global_slow k ->
            let param =
              Array.fold_left
                (fun acc sv -> acc +. (sv *. sg *. k))
                0.0 s.Build.sens
            in
            s.Build.nominal *. (1.0 +. param)))
    sparse

let corner_weights (b : Build.t) corner =
  let into = Array.make (Array.length b.Build.sparse) 0.0 in
  corner_weights_into b corner ~into;
  into

let corner_delay b corner =
  Ssta_timing.Sta.design_delay b.Build.graph ~weights:(corner_weights b corner)

type pessimism = {
  nominal : float;
  slow3 : float;
  global_slow3 : float;
  ssta_q9987 : float;
  margin_ratio : float;
}

let pessimism (b : Build.t) =
  let nominal = corner_delay b Nominal in
  let slow3 = corner_delay b (Slow 3.0) in
  let global_slow3 = corner_delay b (Global_slow 3.0) in
  let arr = Propagate.forward_all b.Build.graph ~forms:b.Build.forms in
  let delay =
    match
      Propagate.max_over arr b.Build.graph.Ssta_timing.Tgraph.outputs
    with
    | Some f -> f
    | None -> failwith "Corners.pessimism: no reachable output"
  in
  let ssta_q9987 = Form.quantile delay 0.99865 in
  let margin_ratio =
    let corner_margin = slow3 -. nominal in
    let ssta_margin = ssta_q9987 -. nominal in
    if ssta_margin <= 0.0 then infinity else corner_margin /. ssta_margin
  in
  { nominal; slow3; global_slow3; ssta_q9987; margin_ratio }

let pp_pessimism ppf p =
  Format.fprintf ppf
    "@[<v>nominal:            %10.1f@,+3sigma corner:     %10.1f@,global-only \
     corner: %10.1f@,SSTA 99.87%%:        %10.1f@,corner margin / SSTA \
     margin: %.2fx@]"
    p.nominal p.slow3 p.global_slow3 p.ssta_q9987 p.margin_ratio
