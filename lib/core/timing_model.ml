module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph

type stats = {
  original_edges : int;
  original_vertices : int;
  model_edges : int;
  model_vertices : int;
  removed_edges : int;
  exact_evals : int;
  extraction_seconds : float;
}

type t = {
  name : string;
  graph : Tgraph.t;
  forms : Form.t array;
  basis : Ssta_variation.Basis.t;
  die : Ssta_variation.Tile.t;
  delta : float;
  output_load : Form.t array;
  stats : stats;
}

let n_inputs t = Array.length t.graph.Tgraph.inputs
let n_outputs t = Array.length t.graph.Tgraph.outputs

let io_delays ?domains t =
  Ssta_obs.Obs.with_span "timing_model.io_delays" (fun () ->
      let inputs = t.graph.Tgraph.inputs in
      let outputs = t.graph.Tgraph.outputs in
      (* One packed form buffer shared by all per-input sweeps, one
         workspace per pool domain; only the |I| x |O| result forms are
         materialized.  Each sweep is an independent task, so the rows
         come back in input order no matter how many domains ran them. *)
      let dims =
        if Array.length t.forms = 0 then { Form.n_globals = 0; n_pcs = 0 }
        else Form.dims t.forms.(0)
      in
      let fbuf = Form_buf.of_forms dims t.forms in
      Ssta_par.Par.map_tasks ?domains
        ~init:(fun () -> (Propagate.create_workspace (), [| 0 |]))
        (Array.length inputs)
        (fun (ws, source1) i ->
          source1.(0) <- inputs.(i);
          Propagate.forward_into ws t.graph ~forms:fbuf ~sources:source1;
          Array.map (fun out -> Propagate.ws_form ws out) outputs))

let compression t =
  ( float_of_int t.stats.model_edges /. float_of_int t.stats.original_edges,
    float_of_int t.stats.model_vertices /. float_of_int t.stats.original_vertices
  )

let pp_stats ppf t =
  let pe, pv = compression t in
  Format.fprintf ppf
    "%s: Eo=%d Vo=%d Em=%d Vm=%d pe=%.0f%% pv=%.0f%% (delta=%g, %.2fs)"
    t.name t.stats.original_edges t.stats.original_vertices
    t.stats.model_edges t.stats.model_vertices (100.0 *. pe) (100.0 *. pv)
    t.delta t.stats.extraction_seconds
