module Form = Ssta_canonical.Form
module Mat = Ssta_linalg.Mat
module Pca = Ssta_linalg.Pca
module Basis = Ssta_variation.Basis

type mode = Replaced | Global_only

module Obs = Ssta_obs.Obs
module Robust = Ssta_robust.Robust

let c_forms_transformed = Obs.counter "replace.forms_transformed"
let nan_sanitized = Robust.counter "robust.nan_sanitized"

(* The substitution matrix M = A^{-1} B_n of paper eq. (18): x = M x^t
   rewrites a module-basis form over the design basis.  One span per
   instance matrix - this is the design-level flow's dense-linear-algebra
   phase (pinv application + the m x n product). *)
let matrix (dg : Design_grid.t) (fp : Floorplan.t) ~inst =
  Obs.with_span "replace.matrix" @@ fun () ->
  let model = fp.Floorplan.instances.(inst).Floorplan.model in
  let mbasis = model.Timing_model.basis in
  let pca = mbasis.Basis.pca in
  let n = Basis.n_tiles mbasis in
  let m_design = Array.length dg.Design_grid.tiles in
  let offset = dg.Design_grid.instance_tile_offset.(inst) in
  let dpca = dg.Design_grid.basis.Basis.pca in
  (* B_n: the design factor rows of this instance's tiles (n x m). *)
  let bn =
    Mat.init n m_design (fun i j ->
        Mat.get dpca.Pca.factor (offset + i) j)
  in
  (* A^{-1} padded with zero rows for clamped eigen components (n x n). *)
  let pinv = pca.Pca.pinv_factor in
  let retained = pca.Pca.retained in
  let a_inv =
    Mat.init n n (fun i j -> if i < retained then Mat.get pinv i j else 0.0)
  in
  let m = Mat.mul a_inv bn in
  (* Validated boundary: a non-finite substitution entry would silently
     poison every transformed form of the instance.  Strict raises naming
     (instance, row, column); Repair/Warn zero the offending entries into
     a copy and count them.  Clean matrices pass through unchanged. *)
  let bad = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to m_design - 1 do
      let x = Mat.get m i j in
      if not (Robust.is_finite x) then begin
        Robust.repair nan_sanitized
          (Robust.context ~subsystem:"replace" ~operation:"matrix"
             ~indices:[ inst; i; j ] ~values:[ x ]
             "non-finite substitution-matrix entry (instance, row, column)");
        incr bad
      end
    done
  done;
  if !bad = 0 then m
  else
    Mat.init n m_design (fun i j ->
        let x = Mat.get m i j in
        if Robust.is_finite x then x else 0.0)

let transform_form (dg : Design_grid.t) ~mode ~m ~inst (f : Form.t) =
  let dbasis = dg.Design_grid.basis in
  let n_params = dbasis.Basis.n_params in
  let m_design = Basis.n_tiles dbasis in
  let n_mod = dg.Design_grid.instance_n_tiles.(inst) in
  if Array.length f.Form.pcs <> n_params * n_mod then
    invalid_arg "Replace.transform_form: form does not match module basis";
  let pcs = Array.make (n_params * m_design) 0.0 in
  (match mode with
  | Replaced ->
      let m =
        match m with
        | Some m -> m
        | None -> invalid_arg "Replace.transform_form: missing matrix"
      in
      for k = 0 to n_params - 1 do
        let block = Array.sub f.Form.pcs (k * n_mod) n_mod in
        let out = Mat.tmul_vec m block in
        Array.blit out 0 pcs (k * m_design) m_design
      done
  | Global_only ->
      (* Identity into the instance's private design slots: within-module
         correlation is preserved, cross-module local correlation dropped. *)
      let offset = dg.Design_grid.instance_tile_offset.(inst) in
      for k = 0 to n_params - 1 do
        for i = 0 to n_mod - 1 do
          pcs.((k * m_design) + offset + i) <- f.Form.pcs.((k * n_mod) + i)
        done
      done);
  Form.make ~mean:f.Form.mean ~globals:(Array.copy f.Form.globals) ~pcs
    ~rand:f.Form.rand

let transform_instance dg fp ~mode ~inst forms =
  Obs.with_span "replace.transform_instance" @@ fun () ->
  let m =
    match mode with
    | Replaced -> Some (matrix dg fp ~inst)
    | Global_only -> None
  in
  Obs.add c_forms_transformed (Array.length forms);
  Array.map (transform_form dg ~mode ~m ~inst) forms
