module B = Netlist.Builder
module N = Netlist
module L = Ssta_cell.Library

(* Large-scale synthetic designs: a grid of Random_logic blocks spliced
   into one flat netlist.  Blocks are emitted in row-major order; each
   block's primary inputs are fed by the exposed outputs of its left and
   up neighbours plus a deterministic handful of global PIs, so every
   feed is an already-emitted node and the splice preserves topological
   order by construction.  Unconsumed block outputs (right column and
   bottom row) are merged pairwise to exactly [n_po] design outputs, the
   same or2 reduction Random_logic uses.

   The point is scale, not realism: the composition reaches millions of
   gates while keeping the port counts small (the criticality screen's
   chunk state scales with |I|), and every block is generated from a
   seed derived deterministically from the spec seed and the block
   index, so the netlist is a pure function of its spec. *)

type spec = {
  name : string;
  n_pi : int;
  n_po : int;
  blocks_x : int;
  blocks_y : int;
  gates_per_block : int;
  block_po : int;
  seed : int;
}

let make spec =
  if spec.n_pi <= 0 || spec.n_po <= 0 then
    invalid_arg "Large.make: port counts must be positive";
  if spec.blocks_x <= 0 || spec.blocks_y <= 0 || spec.gates_per_block <= 0
  then invalid_arg "Large.make: block grid must be positive";
  if spec.block_po <= 0 then
    invalid_arg "Large.make: block_po must be positive";
  let b = B.create ~name:spec.name ~n_pi:spec.n_pi in
  let outs = Array.make_matrix spec.blocks_y spec.blocks_x [||] in
  for by = 0 to spec.blocks_y - 1 do
    for bx = 0 to spec.blocks_x - 1 do
      let bi = (by * spec.blocks_x) + bx in
      (* Feeds: neighbour outputs first (they dominate the connectivity),
         then a rotating window of global PIs so every block also sees
         primary-input variation. *)
      let feeds = ref [] in
      if bx > 0 then
        Array.iter (fun id -> feeds := id :: !feeds) outs.(by).(bx - 1);
      if by > 0 then
        Array.iter (fun id -> feeds := id :: !feeds) outs.(by - 1).(bx);
      let n_block_pi = 4 in
      for p = 0 to n_block_pi - 1 do
        feeds := ((bi + p) mod spec.n_pi) :: !feeds
      done;
      let feeds = Array.of_list (List.rev !feeds) in
      let block =
        Random_logic.make
          {
            Random_logic.name = Printf.sprintf "%s_b%d" spec.name bi;
            n_pi = Array.length feeds;
            n_po = spec.block_po;
            n_gates = spec.gates_per_block;
            seed = spec.seed + (7919 * bi);
            locality = 0.9;
          }
      in
      (* Splice: block PI p becomes feed p, block gates are re-emitted
         with mapped fanins. *)
      let map = Array.make (N.n_nodes block) (-1) in
      Array.iteri (fun p id -> map.(p) <- id) feeds;
      Array.iteri
        (fun gi gate ->
          let fanins = Array.map (fun s -> map.(s)) gate.N.fanins in
          map.(block.N.n_pi + gi) <- B.add_gate b gate.N.cell fanins)
        block.N.gates;
      outs.(by).(bx) <- Array.map (fun o -> map.(o)) block.N.outputs
    done
  done;
  (* Design outputs: merge the unconsumed block outputs (right column and
     bottom row) down to n_po. *)
  let live = Queue.create () in
  for by = 0 to spec.blocks_y - 1 do
    Array.iter (fun id -> Queue.push id live) outs.(by).(spec.blocks_x - 1)
  done;
  for bx = 0 to spec.blocks_x - 2 do
    Array.iter (fun id -> Queue.push id live) outs.(spec.blocks_y - 1).(bx)
  done;
  while Queue.length live > spec.n_po do
    let x = Queue.pop live in
    let y = Queue.pop live in
    Queue.push (B.add_gate b L.or2 [| x; y |]) live
  done;
  let n_live = Queue.length live in
  let outputs = Array.make spec.n_po (-1) in
  for i = 0 to n_live - 1 do
    outputs.(i) <- Queue.pop live
  done;
  (* Tiny grids can come up short of n_po; pad with distinct late nodes. *)
  let next = ref (B.n_nodes b - 1) in
  for i = n_live to spec.n_po - 1 do
    while Array.exists (fun o -> o = !next) outputs do
      decr next
    done;
    outputs.(i) <- !next;
    decr next
  done;
  B.finish b ~outputs

(* Size-parameterized preset family: blocks of 4096 gates arranged on the
   squarest grid covering the requested count, 32 PIs / 32 POs so the
   criticality screen's per-chunk state stays bounded at every size.
   [of_gates 1_000_000] is a 16 x 16 grid = 1,048,576 block gates (plus
   ~250 merge gates) - the million-gate design of the EXPERIMENTS.md
   extraction run - and [of_gates 100_000] is the 5 x 5 = 102,400-gate
   grid the CI-scale [extract_large] smoke bench uses.  Pair with a
   cells_per_tile around 65536 when characterizing, so the correlation
   grid stays small and the PCA dimension stays propagation-friendly. *)
let preset_block_gates = 4096

let of_gates ?(seed = 42) n =
  if n <= 0 then invalid_arg "Large.of_gates: gate count must be positive";
  let nb = (n + preset_block_gates - 1) / preset_block_gates in
  let bx =
    let r = int_of_float (ceil (sqrt (float_of_int nb))) in
    max 1 r
  in
  let by = (nb + bx - 1) / bx in
  let name =
    if n mod 1_000_000 = 0 then Printf.sprintf "grid%dm" (n / 1_000_000)
    else if n mod 1_000 = 0 then Printf.sprintf "grid%dk" (n / 1_000)
    else Printf.sprintf "grid%d" n
  in
  make
    {
      name;
      n_pi = 32;
      n_po = 32;
      blocks_x = bx;
      blocks_y = by;
      gates_per_block = preset_block_gates;
      block_po = 8;
      seed;
    }

let million ?(seed = 42) () = of_gates ~seed 1_000_000
