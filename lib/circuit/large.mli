(** Large-scale synthetic designs: a grid of {!Random_logic} blocks
    spliced into one flat topological netlist, reaching millions of gates
    with small port counts.  The result is a pure function of the spec
    (every block seed derives deterministically from [seed] and the block
    index). *)

type spec = {
  name : string;
  n_pi : int;  (** global primary inputs *)
  n_po : int;  (** design outputs after the merge reduction *)
  blocks_x : int;
  blocks_y : int;
  gates_per_block : int;
  block_po : int;  (** outputs each block exposes to its neighbours *)
  seed : int;
}

val make : spec -> Netlist.t
(** Total gate count is [blocks_x * blocks_y * gates_per_block] plus the
    or2 merge tree over the unconsumed edge-block outputs. *)

val million : ?seed:int -> unit -> Netlist.t
(** The ~1M-gate preset (16 x 16 blocks of 4096 gates, 32 PIs/POs) used
    by the [batch_large] bench; characterize it with a large
    [cells_per_tile] (e.g. 65536) so the correlation grid — and with it
    the PCA dimension — stays bounded at this scale. *)
