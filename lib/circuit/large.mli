(** Large-scale synthetic designs: a grid of {!Random_logic} blocks
    spliced into one flat topological netlist, reaching millions of gates
    with small port counts.  The result is a pure function of the spec
    (every block seed derives deterministically from [seed] and the block
    index). *)

type spec = {
  name : string;
  n_pi : int;  (** global primary inputs *)
  n_po : int;  (** design outputs after the merge reduction *)
  blocks_x : int;
  blocks_y : int;
  gates_per_block : int;
  block_po : int;  (** outputs each block exposes to its neighbours *)
  seed : int;
}

val make : spec -> Netlist.t
(** Total gate count is [blocks_x * blocks_y * gates_per_block] plus the
    or2 merge tree over the unconsumed edge-block outputs. *)

val of_gates : ?seed:int -> int -> Netlist.t
(** A preset design of {e at least} the requested gate count: 4096-gate
    blocks on the squarest grid covering it, 32 PIs / 32 POs at every
    size.  [of_gates 1_000_000] is the million-gate extraction design
    (16 x 16 blocks, "grid1m"); [of_gates 100_000] is the 102,400-gate
    5 x 5 grid ("grid100k") the [extract_large] CI smoke bench scales the
    same pipeline down to.  Characterize with a large [cells_per_tile]
    (e.g. 65536) so the correlation grid — and with it the PCA
    dimension — stays bounded as the design grows. *)

val million : ?seed:int -> unit -> Netlist.t
(** [of_gates 1_000_000] — the ~1M-gate preset of the [batch_large]
    bench. *)
