(* Deterministic multicore execution for the MC and extraction hot loops.

   The pool is a fixed-size set of OCaml 5 domains draining an indexed task
   list through one atomic counter.  Determinism comes from two invariants,
   not from the scheduler:

   - the task list (chunk layout) is a pure function of the problem size,
     never of the domain count, so every run decomposes the work
     identically; and
   - each task writes only to its own slot (or returns a value that is
     combined in task-index order after the join barrier), so the merged
     result is bit-identical no matter which domain ran which task, or in
     which order.

   [domains = 1] never spawns: the tasks run in the calling domain, in
   index order - the exact sequential path.  Because tasks are independent
   and merges happen in index order, that path produces the same bits as
   any parallel execution, which is what `test/test_par.ml` pins.

   Domains are spawned per parallel region rather than parked in a global
   queue: a region's tasks are coarse (a chunk of MC samples, a full
   forward sweep), so the ~100us spawn cost is noise, and joining inside
   the region gives the publication barrier that makes the workers' writes
   visible to the caller without any further synchronization. *)

let env_default =
  lazy
    (match Sys.getenv_opt "PAR_DOMAINS" with
    | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> max 1 (Domain.recommended_domain_count ()))

let override = ref None
let set_domains n = override := Some (max 1 n)

let domains () =
  match !override with Some n -> n | None -> Lazy.force env_default

(* Run [f ()] with the domain count forced to [n], restoring the previous
   setting afterwards (used by tests and the bench scaling sweeps). *)
let with_domains n f =
  let saved = !override in
  set_domains n;
  Fun.protect ~finally:(fun () -> override := saved) f

let resolve = function Some n -> max 1 n | None -> domains ()

(* Execute [n_tasks] independent tasks on [domains] workers.  Each worker
   builds one [init ()] scratch value and reuses it across every task it
   claims; tasks must therefore not let results depend on scratch history
   (our workspaces re-prepare themselves per sweep).  Exceptions raised by
   a task surface to the caller after all workers have been joined. *)
let run_tasks ?domains ~n_tasks ~init ~task () =
  if n_tasks > 0 then begin
    let d = min (resolve domains) n_tasks in
    if d <= 1 then begin
      let w = init () in
      for i = 0 to n_tasks - 1 do
        task w i
      done
    end
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let w = init () in
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n_tasks then begin
            task w i;
            loop ()
          end
        in
        loop ()
      in
      let others = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
      let first_exn = ref None in
      (try worker () with e -> first_exn := Some e);
      Array.iter
        (fun dom ->
          try Domain.join dom
          with e -> if !first_exn = None then first_exn := Some e)
        others;
      match !first_exn with Some e -> raise e | None -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Pooled scratch                                                      *)
(* ------------------------------------------------------------------ *)

(* A reusable bag of worker-scratch values for regions that run many times
   in sequence - e.g. the criticality screen, once per output tile.  Each
   worker checks one value out at region entry and returns it at the join,
   so the whole sequence of regions builds at most max(domains) scratch
   values instead of one set per region.  Determinism is untouched: tasks
   already must not let results depend on scratch history (workspaces
   re-prepare themselves per sweep), and which worker drew which scratch is
   exactly as unobservable as which worker ran which task. *)
type 'w pool = { mk : unit -> 'w; lock : Mutex.t; mutable free : 'w list }

let pool mk = { mk; lock = Mutex.create (); free = [] }

let pool_take p =
  Mutex.lock p.lock;
  let w =
    match p.free with
    | [] -> None
    | w :: tl ->
        p.free <- tl;
        Some w
  in
  Mutex.unlock p.lock;
  match w with Some w -> w | None -> p.mk ()

let pool_put p w =
  Mutex.lock p.lock;
  p.free <- w :: p.free;
  Mutex.unlock p.lock

(* Snapshot of the currently checked-in scratch values.  After the join
   barrier of a [run_tasks_pool] region every worker has returned its
   scratch, so the snapshot is the complete set - the criticality screen
   folds its workers' slab peaks into a resident-memory gauge this way. *)
let pool_members p =
  Mutex.lock p.lock;
  let l = p.free in
  Mutex.unlock p.lock;
  l

(* [run_tasks] drawing worker scratch from a pool instead of building it
   with a per-region [init].  Same task semantics and the same
   deterministic chunk-claiming scheme. *)
let run_tasks_pool ?domains ~n_tasks ~pool:p ~task () =
  if n_tasks > 0 then begin
    let d = min (resolve domains) n_tasks in
    if d <= 1 then begin
      let w = pool_take p in
      Fun.protect ~finally:(fun () -> pool_put p w) @@ fun () ->
      for i = 0 to n_tasks - 1 do
        task w i
      done
    end
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let w = pool_take p in
        Fun.protect ~finally:(fun () -> pool_put p w) @@ fun () ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n_tasks then begin
            task w i;
            loop ()
          end
        in
        loop ()
      in
      let others = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
      let first_exn = ref None in
      (try worker () with e -> first_exn := Some e);
      Array.iter
        (fun dom ->
          try Domain.join dom
          with e -> if !first_exn = None then first_exn := Some e)
        others;
      match !first_exn with Some e -> raise e | None -> ()
    end
  end

(* As [run_tasks], but collect each task's return value, in task order. *)
let map_tasks ?domains ~init n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_tasks ?domains ~n_tasks:n ~init
      ~task:(fun w i -> out.(i) <- Some (f w i))
      ();
    Array.map (function Some v -> v | None -> assert false) out
  end

(* ------------------------------------------------------------------ *)
(* Chunked index ranges                                                *)
(* ------------------------------------------------------------------ *)

(* Chunk layout over [0, n): fixed-size chunks (the last one short), a pure
   function of [n] and [chunk] only.  [chunk <= 0] is clamped to 1. *)
let n_chunks ~chunk n =
  let c = max 1 chunk in
  if n <= 0 then 0 else (n + c - 1) / c

let chunk_bounds ~chunk ~n i =
  let c = max 1 chunk in
  let lo = i * c in
  (lo, min n (lo + c))

(* Fan the fixed-size blocks of [0, n) out over the domain pool: block [b]
   runs [task lo hi] with [chunk_bounds ~chunk:block ~n b].  The block
   layout is a pure function of [n] and [block] only (never of the domain
   count), so callers whose per-block work is deterministic get the usual
   bit-identical merge for free — the criticality screen's blocked
   backward tiles schedule through this. *)
let run_blocks ?domains ~block ~n ~task () =
  run_tasks ?domains
    ~n_tasks:(n_chunks ~chunk:block n)
    ~init:(fun () -> ())
    ~task:(fun () b ->
      let lo, hi = chunk_bounds ~chunk:block ~n b in
      task lo hi)
    ()

(* Map [f ~chunk ~lo ~hi] over every chunk of [0, n); the result array is
   in chunk-index order regardless of the domain count. *)
let map_chunks ?domains ~chunk ~n f =
  map_tasks ?domains
    ~init:(fun () -> ())
    (n_chunks ~chunk n)
    (fun () i ->
      let lo, hi = chunk_bounds ~chunk ~n i in
      f ~chunk:i ~lo ~hi)

(* Chunked map-reduce: chunk results are folded with [merge] strictly in
   chunk-index order, so non-commutative merges (running statistics) stay
   deterministic. *)
let fold_chunks ?domains ~chunk ~n ~init:acc0 ~merge f =
  Array.fold_left merge acc0 (map_chunks ?domains ~chunk ~n f)
