(* Hierarchical-flow coverage sweep: property tests for the variable
   replacement (paper eq. 18) on randomly characterized delays, plus an
   end-to-end accuracy golden for a 2-module chained floorplan against
   flattened Monte Carlo - complementing test_hier.ml's 2x2 grid. *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module Basis = Ssta_variation.Basis
module Tile = Ssta_variation.Tile
module Build = Ssta_timing.Build
module Stats = Ssta_gauss.Stats
module Rng = Ssta_gauss.Rng

let module_build =
  lazy (Build.characterize (Ssta_circuit.Multiplier.make ~bits:4 ()))

let module_model =
  lazy (H.Extract.extract ~delta:0.05 (Lazy.force module_build))

(* A 2-module chain: instance 0's outputs drive instance 1's inputs, the
   modules abutted side by side.  Design PIs are instance 0's inputs,
   design POs instance 1's outputs - the smallest floorplan in which the
   replacement must restore inter-module correlation through a timing
   path that crosses the module boundary. *)
let chain_floorplan =
  lazy
    (let b = Lazy.force module_build in
     let model = Lazy.force module_model in
     let die_m = model.H.Timing_model.die in
     let w = Tile.width die_m and h = Tile.height die_m in
     let die = Tile.make ~x0:0.0 ~y0:0.0 ~x1:(2.0 *. w) ~y1:h in
     let inst origin label =
       { H.Floorplan.label; build = Some b; model; origin }
     in
     let n = H.Timing_model.n_inputs model in
     let connections =
       Array.init n (fun j ->
           ({ H.Floorplan.inst = 0; port = j }, { H.Floorplan.inst = 1; port = j }))
     in
     H.Floorplan.create ~die
       ~instances:[| inst (0.0, 0.0) "u0"; inst (w, 0.0) "u1" |]
       ~connections)

let chain_grid = lazy (H.Design_grid.build (Lazy.force chain_floorplan))

(* ------------------------------------------------------------------ *)
(* Replacement properties on random characterized delays               *)
(* ------------------------------------------------------------------ *)

(* A random module-basis delay form, built the same way the extraction
   characterizes edges (so the properties quantify the real pipeline, not
   a synthetic covariance). *)
let random_module_form seed =
  let b = Lazy.force module_build in
  let mbasis = b.Build.basis in
  let rng = Rng.create ~seed in
  let nominal = 20.0 +. (60.0 *. Rng.uniform rng) in
  let n_params = mbasis.Basis.n_params in
  let sens = Array.init n_params (fun _ -> 0.02 +. (0.18 *. Rng.uniform rng)) in
  let tile = Rng.int rng (Basis.n_tiles mbasis) in
  ( Basis.delay_form mbasis ~nominal ~tile ~sens ~extra_random_sigma:0.0,
    tile,
    nominal,
    sens )

let prop_replace_preserves_moments seed =
  let fp = Lazy.force chain_floorplan in
  let dg = Lazy.force chain_grid in
  let f, _, _, _ = random_module_form seed in
  let inst = seed mod 2 in
  let tf =
    (H.Replace.transform_instance dg fp ~mode:H.Replace.Replaced ~inst [| f |]).(0)
  in
  (* The substitution rewrites only the correlated-local part: mean is
     copied verbatim, variance survives up to the documented eigenvalue
     clamping of the design PCA. *)
  tf.Form.mean = f.Form.mean
  && abs_float (Form.variance tf -. Form.variance f) <= 0.01 *. Form.variance f

let prop_replace_restores_cross_module_covariance seed =
  (* The same delay placed in both instances: the rewritten forms'
     covariance must match characterizing both directly over the design
     basis - the flat reference the paper's eq. (17)/(18) guarantee. *)
  let fp = Lazy.force chain_floorplan in
  let dg = Lazy.force chain_grid in
  let dbasis = dg.H.Design_grid.basis in
  let f, tile, nominal, sens = random_module_form seed in
  let rewritten inst =
    let m = Some (H.Replace.matrix dg fp ~inst) in
    H.Replace.transform_form dg ~mode:H.Replace.Replaced ~m ~inst f
  in
  let direct inst =
    Basis.delay_form dbasis ~nominal
      ~tile:(H.Design_grid.design_tile_of_instance dg ~inst tile)
      ~sens ~extra_random_sigma:0.0
  in
  let r0 = rewritten 0 and r1 = rewritten 1 in
  let d0 = direct 0 and d1 = direct 1 in
  let cov_r = Form.covariance r0 r1 in
  let cov_d = Form.covariance d0 d1 in
  let scale = sqrt (Form.variance d0 *. Form.variance d1) in
  abs_float (cov_r -. cov_d) <= 0.03 *. Float.max 1.0 scale

let prop_global_only_covariance_is_global_part seed =
  (* In Global_only mode the cross-instance covariance must be exactly
     the shared global term - no rewritten local correlation. *)
  let fp = Lazy.force chain_floorplan in
  let dg = Lazy.force chain_grid in
  let f, _, _, _ = random_module_form seed in
  let glob inst =
    (H.Replace.transform_instance dg fp ~mode:H.Replace.Global_only ~inst
       [| f |]).(0)
  in
  let g0 = glob 0 and g1 = glob 1 in
  let expected = Ssta_linalg.Vec.dot g0.Form.globals g1.Form.globals in
  abs_float (Form.covariance g0 g1 -. expected) <= 1e-9

(* ------------------------------------------------------------------ *)
(* End-to-end golden: 2-module chain vs flattened Monte Carlo          *)
(* ------------------------------------------------------------------ *)

let test_chain_vs_flat_mc () =
  let fp = Lazy.force chain_floorplan in
  let dg = Lazy.force chain_grid in
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let d = rep.H.Hier_analysis.delay in
  let ctx = H.Hier_analysis.flatten fp dg in
  let mc = Ssta_mc.Flat_mc.run ~iterations:4000 ~seed:17 ctx in
  let delays = mc.Ssta_mc.Flat_mc.delays in
  let mc_mean = Stats.mean delays and mc_std = Stats.std delays in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f within 4%% of MC %.1f" d.Form.mean mc_mean)
    true
    (abs_float (d.Form.mean -. mc_mean) /. mc_mean < 0.04);
  Alcotest.(check bool)
    (Printf.sprintf "std %.1f within 20%% of MC %.1f" (Form.std d) mc_std)
    true
    (abs_float (Form.std d -. mc_std) /. mc_std < 0.20);
  (* Quantile golden: the 99% clock from the hierarchical form against
     the empirical MC quantile.  Mean and sigma errors compound here, so
     the tolerance sits between the two. *)
  let q99_hier = H.Yield.clock_for_yield d ~yield:0.99 in
  let q99_mc = Stats.quantile delays 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "q99 %.1f within 5%% of MC %.1f" q99_hier q99_mc)
    true
    (abs_float (q99_hier -. q99_mc) /. q99_mc < 0.05)

let test_chain_structure () =
  let fp = Lazy.force chain_floorplan in
  let model = Lazy.force module_model in
  let n = H.Timing_model.n_inputs model in
  Alcotest.(check int) "PIs are u0's inputs" n
    (Array.length fp.H.Floorplan.ext_inputs);
  Alcotest.(check int) "POs are u1's outputs" n
    (Array.length fp.H.Floorplan.ext_outputs);
  Array.iter
    (fun { H.Floorplan.inst; _ } ->
      Alcotest.(check int) "PI on instance 0" 0 inst)
    fp.H.Floorplan.ext_inputs;
  Array.iter
    (fun { H.Floorplan.inst; _ } ->
      Alcotest.(check int) "PO on instance 1" 1 inst)
    fp.H.Floorplan.ext_outputs

let test_chain_global_only_underestimates () =
  (* The chain couples the two instances through every timing path, so
     dropping the rewritten local correlation must shrink the spread. *)
  let fp = Lazy.force chain_floorplan in
  let dg = Lazy.force chain_grid in
  let rep = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Replaced in
  let glo = H.Hier_analysis.analyze fp dg ~mode:H.Replace.Global_only in
  Alcotest.(check bool) "global-only sigma smaller" true
    (Form.std glo.H.Hier_analysis.delay < Form.std rep.H.Hier_analysis.delay)

let test prop name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name QCheck.(int_range 0 100_000) prop)

let suites =
  [
    ( "hier_flow.replace_properties",
      [
        test prop_replace_preserves_moments
          "replacement preserves mean exactly, variance to 1%";
        test prop_replace_restores_cross_module_covariance
          "replacement restores cross-module covariance";
        test prop_global_only_covariance_is_global_part
          "global-only covariance is exactly the global part";
      ] );
    ( "hier_flow.chain",
      [
        Alcotest.test_case "chain floorplan structure" `Quick
          test_chain_structure;
        Alcotest.test_case "vs flattened Monte Carlo" `Slow
          test_chain_vs_flat_mc;
        Alcotest.test_case "global-only underestimates" `Quick
          test_chain_global_only_underestimates;
      ] );
  ]
