(* Tests for the scenario-batch engine (lib/batch): the bit-identity
   contract (batch-of-S = S independent runs, at every domain count, in
   both sweep modes), the criticality-screen pass-through, the slab
   steady-state guarantee (capacity-planned workers never regrow), the
   per-scenario observability spans, and the scenario-spec JSON reader. *)

module Batch = Ssta_batch.Batch
module Build = Ssta_timing.Build
module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Basis = Ssta_variation.Basis
module Tgraph = Ssta_timing.Tgraph
module Par = Ssta_par.Par
module Obs = Ssta_obs.Obs
module Robust = Ssta_robust.Robust
module H = Hier_ssta

let exactly_equal a b =
  a.Form.mean = b.Form.mean
  && a.Form.rand = b.Form.rand
  && a.Form.globals = b.Form.globals
  && a.Form.pcs = b.Form.pcs

let opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> exactly_equal a b
  | _ -> false

(* nan-aware bitwise scalar equality (unreachable outputs are nan). *)
let float_equal a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let result_equal (a : Batch.result) (b : Batch.result) =
  opt_equal a.Batch.delay b.Batch.delay
  && Array.for_all2 float_equal a.Batch.out_mu b.Batch.out_mu
  && Array.for_all2 float_equal a.Batch.out_sigma b.Batch.out_sigma
  && Array.length a.Batch.io = Array.length b.Batch.io
  && Array.for_all2
       (fun ra rb -> Array.for_all2 opt_equal ra rb)
       a.Batch.io b.Batch.io
  && a.Batch.kept_edges = b.Batch.kept_edges

let check_results msg want got =
  Alcotest.(check int)
    (msg ^ ": batch size") (Array.length want) (Array.length got);
  Array.iteri
    (fun k w ->
      if not (result_equal w got.(k)) then
        Alcotest.failf "%s: scenario %d (%s) diverges" msg k
          w.Batch.scenario.Batch.label)
    want

(* Shared characterized designs: one mid-size ISCAS stand-in with real
   fan-out reconvergence, one small random DAG per seed for breadth. *)
let c1908 = lazy (Build.characterize (Ssta_circuit.Iscas.build "c1908"))

let small seed =
  Build.characterize
    (Ssta_circuit.Random_logic.make
       {
         Ssta_circuit.Random_logic.name = Printf.sprintf "batch_s%d" seed;
         n_pi = 5;
         n_po = 4;
         n_gates = 60;
         seed;
         locality = 0.6;
       })

let scenarios_under_test =
  lazy
    (let s = Batch.default_scenarios 5 in
     (* Make sure at least one scenario exercises every transform axis at
        once, not just the default grid's cycle. *)
     s.(4) <-
       {
         s.(4) with
         Batch.corner = H.Corners.Slow 2.0;
         delay_scale = 1.07;
         sigma_scale = 1.25;
         grid_variant = Batch.Gradient { gx = 0.12; gy = -0.04 };
       };
     s)

(* ------------------------------------------------------------------ *)
(* Bit-identity: batch = independent runs, at every domain count       *)
(* ------------------------------------------------------------------ *)

let reference_results ?mode ?screen base scenarios =
  Par.with_domains 1 (fun () ->
      Array.map (fun s -> Batch.run_one ?mode ?screen base s) scenarios)

let test_delay_batch_equals_singles () =
  let base = Batch.prepare (Lazy.force c1908) in
  let scenarios = Lazy.force scenarios_under_test in
  let want = reference_results ~mode:Batch.Delay base scenarios in
  List.iter
    (fun d ->
      let got = Batch.run ~domains:d ~mode:Batch.Delay base scenarios in
      check_results (Printf.sprintf "delay domains=%d" d) want got)
    [ 1; 2; 4 ]

let test_io_batch_equals_singles () =
  let base = Batch.prepare (small 7) in
  let scenarios = Lazy.force scenarios_under_test in
  let want = reference_results ~mode:Batch.Io base scenarios in
  List.iter
    (fun d ->
      let got = Batch.run ~domains:d ~mode:Batch.Io base scenarios in
      check_results (Printf.sprintf "io domains=%d" d) want got)
    [ 1; 2; 4 ]

let test_io_matches_per_input_forward () =
  (* The Io matrix must agree with a plain per-input exclusive forward
     sweep over the scenario's recomposed forms - the cone restriction is
     an optimization, never an approximation. *)
  let b = small 11 in
  let base = Batch.prepare b in
  let s = Batch.nominal () in
  let r = Batch.run_one ~domains:1 ~mode:Batch.Io base s in
  let g = b.Build.graph in
  Array.iteri
    (fun i input ->
      let arr = H.Propagate.forward g ~forms:b.Build.forms ~sources:[| input |] in
      Array.iteri
        (fun j out ->
          if not (opt_equal r.Batch.io.(i).(j) arr.(out)) then
            Alcotest.failf "io(%d,%d) disagrees with forward_into" i j)
        g.Tgraph.outputs)
    g.Tgraph.inputs

let test_random_dags_delay_and_io () =
  List.iter
    (fun seed ->
      let base = Batch.prepare (small seed) in
      let scenarios = Batch.default_scenarios 3 in
      List.iter
        (fun mode ->
          let want = reference_results ~mode base scenarios in
          let got = Batch.run ~domains:3 ~mode base scenarios in
          check_results (Printf.sprintf "seed=%d" seed) want got)
        [ Batch.Delay; Batch.Io ])
    [ 1; 2; 3 ]

let test_nominal_matches_extract_path () =
  (* The identity scenario must reproduce the base design's delay exactly:
     recompose with alpha = beta = 1 and nominal corner weights is the
     base form, so the sweep is the standard all-PI forward pass. *)
  let b = Lazy.force c1908 in
  let base = Batch.prepare b in
  let r = Batch.run_one ~domains:1 base (Batch.nominal ()) in
  let g = b.Build.graph in
  let arr = H.Propagate.forward_all g ~forms:b.Build.forms in
  let want = H.Propagate.max_over arr g.Tgraph.outputs in
  if not (opt_equal r.Batch.delay want) then
    Alcotest.fail "nominal scenario delay differs from the direct sweep"

(* ------------------------------------------------------------------ *)
(* Criticality screen pass-through                                     *)
(* ------------------------------------------------------------------ *)

let test_screen_kept_counts () =
  let b = small 5 in
  let base = Batch.prepare b in
  let scenarios = Batch.default_scenarios 3 in
  let want = reference_results ~mode:Batch.Delay ~screen:true base scenarios in
  let got =
    Batch.run ~domains:2 ~mode:Batch.Delay ~screen:true base scenarios
  in
  check_results "screen" want got;
  Array.iter
    (fun r ->
      Alcotest.(check bool)
        "kept_edges filled" true
        (r.Batch.kept_edges >= 0
        && r.Batch.kept_edges <= Tgraph.n_edges b.Build.graph))
    got;
  (* The nominal scenario's screen must agree with calling the screen
     directly on the base forms. *)
  let nominal = Batch.run_one ~screen:true base (Batch.nominal ()) in
  let crit =
    H.Criticality.compute ~delta:0.05 b.Build.graph ~forms:b.Build.forms
  in
  let kept =
    Array.fold_left
      (fun n keep -> if keep then n + 1 else n)
      0 crit.H.Criticality.keep
  in
  Alcotest.(check int) "nominal kept = direct screen" kept
    nominal.Batch.kept_edges

(* ------------------------------------------------------------------ *)
(* Slab steady state and observability                                 *)
(* ------------------------------------------------------------------ *)

let with_obs f =
  let saved = Obs.enabled () in
  Obs.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled saved;
      Obs.reset ())
  @@ fun () -> f ()

let test_slab_peak_is_capacity_plan () =
  (* The high-water gauge must equal the capacity plan exactly: one slab
     per worker sized to (edge forms + sweep workspace), never regrown -
     any growth would at least double the peak. *)
  with_obs @@ fun () ->
  Obs.enable ();
  let b = Lazy.force c1908 in
  let base = Batch.prepare b in
  ignore (Batch.run ~domains:2 base (Batch.default_scenarios 6));
  let dims = b.Build.basis.Basis.dims in
  let g = b.Build.graph in
  let planned =
    8
    * (Form_buf.floats_needed dims (Tgraph.n_edges g)
      + Form_buf.floats_needed dims (Tgraph.n_vertices g))
  in
  Alcotest.(check int)
    "batch.slab_bytes_peak = plan" planned
    (Obs.gauge_value (Obs.gauge "batch.slab_bytes_peak"))

let test_span_granularity () =
  with_obs @@ fun () ->
  Obs.enable ();
  let base = Batch.prepare (small 3) in
  let scenarios = Batch.default_scenarios 4 in
  ignore (Batch.run ~domains:1 ~screen:true base scenarios);
  let count name =
    match List.assoc_opt name (Obs.spans ()) with
    | Some s -> s.Obs.count
    | None -> 0
  in
  Alcotest.(check int) "batch.prepare spans" 1 (count "batch.prepare");
  Alcotest.(check int) "batch.run spans" 1 (count "batch.run");
  Alcotest.(check int) "batch.scenario spans" 4 (count "batch.scenario");
  Alcotest.(check int) "batch.screen spans" 4 (count "batch.screen");
  Alcotest.(check int) "scenario counter" 4
    (Obs.find_counter "batch.scenarios")

let test_obs_identity () =
  (* Instrumentation on or off must not change a single bit of the
     results (the <2% disabled-overhead budget is pinned by the bench
     gate; identity is what the unit layer can assert robustly). *)
  let base = Batch.prepare (small 9) in
  let scenarios = Batch.default_scenarios 3 in
  let off =
    with_obs (fun () ->
        Obs.disable ();
        Batch.run ~domains:2 ~mode:Batch.Io base scenarios)
  in
  let on =
    with_obs (fun () ->
        Obs.enable ();
        Batch.run ~domains:2 ~mode:Batch.Io base scenarios)
  in
  check_results "obs on = off" off on

(* ------------------------------------------------------------------ *)
(* Scenario-spec JSON                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_scenarios_ok () =
  let text =
    {|[
        {},
        {"label": "slow_grad", "corner": "slow", "k": 2.5,
         "delay_scale": 1.05, "sigma_scale": 1.2,
         "grad_x": 0.1, "grad_y": -0.05, "delta": 0.02,
         "note": "unknown fields are ignored"},
        {"corner": "global-slow"}
      ]|}
  in
  match Batch.parse_scenarios text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
      Alcotest.(check int) "count" 3 (Array.length s);
      let d = s.(0) in
      Alcotest.(check string) "default label" "s00" d.Batch.label;
      Alcotest.(check bool)
        "defaults are the identity scenario" true
        (d.Batch.corner = H.Corners.Nominal
        && d.Batch.delay_scale = 1.0
        && d.Batch.sigma_scale = 1.0
        && d.Batch.grid_variant = Batch.Uniform);
      let x = s.(1) in
      Alcotest.(check string) "label" "slow_grad" x.Batch.label;
      Alcotest.(check bool) "corner" true (x.Batch.corner = H.Corners.Slow 2.5);
      Alcotest.(check bool)
        "gradient" true
        (x.Batch.grid_variant = Batch.Gradient { gx = 0.1; gy = -0.05 });
      Alcotest.(check (float 0.0)) "delta" 0.02 x.Batch.delta;
      Alcotest.(check bool)
        "hyphen corner alias" true
        (s.(2).Batch.corner = H.Corners.Global_slow 3.0)

(* Malformed specs are robustness defects, not bare errors: under Strict
   each raises a structured Robust.Error naming the batch subsystem;
   under Repair each defective field falls back to its documented
   default (counted under robust.scenario_repairs) and parsing
   succeeds. *)
let with_policy policy f =
  let prev = Robust.policy () in
  Robust.set_policy policy;
  Fun.protect ~finally:(fun () -> Robust.set_policy prev) f

let bad_specs =
  [
    ("not an array", {|{"corner": "slow"}|});
    ("entry not an object", {|[1, 2]|});
    ("unknown corner", {|[{"corner": "typical"}]|});
    ("delta out of range", {|[{"delta": 1.5}]|});
    ("non-numeric delay_scale", {|[{"delay_scale": "fast"}]|});
    ("negative sigma_scale", {|[{"sigma_scale": -0.5}]|});
    ("trailing garbage", {|[] trailing|});
    ("unterminated string", {|[{"label": "oops}]|});
    ("empty input", "");
  ]

let test_parse_scenarios_strict () =
  with_policy Robust.Strict (fun () ->
      List.iter
        (fun (label, text) ->
          match Batch.parse_scenarios text with
          | exception Robust.Error c ->
              Alcotest.(check string)
                (label ^ ": error names the batch subsystem")
                "batch" c.Robust.subsystem
          | Ok _ -> Alcotest.failf "%s: expected a strict error" label
          | Error e ->
              Alcotest.failf "%s: expected Robust.Error, got Error %s" label e)
        bad_specs)

let test_parse_scenarios_repair () =
  with_policy Robust.Repair (fun () ->
      let parsed label text =
        match Batch.parse_scenarios text with
        | Ok s -> s
        | Error e -> Alcotest.failf "%s: repair should succeed, got %s" label e
        | exception Robust.Error c ->
            Alcotest.failf "%s: repair should not raise: %s" label
              (Robust.to_string c)
      in
      (* Every defective spec parses; spot-check the documented defaults. *)
      List.iter (fun (label, text) -> ignore (parsed label text)) bad_specs;
      let whole = parsed "not an array" {|{"corner": "slow"}|} in
      Alcotest.(check int) "non-array spec -> one nominal" 1 (Array.length whole);
      Alcotest.(check bool)
        "non-array default is the nominal scenario" true
        (whole.(0) = Batch.nominal ~label:"s00" ());
      let entries = parsed "entries not objects" {|[1, 2]|} in
      Alcotest.(check int) "both entries kept" 2 (Array.length entries);
      Alcotest.(check string) "indexed label" "s01" entries.(1).Batch.label;
      let corner = (parsed "unknown corner" {|[{"corner": "typical"}]|}).(0) in
      Alcotest.(check bool)
        "unknown corner -> Nominal" true
        (corner.Batch.corner = H.Corners.Nominal);
      let delta = (parsed "delta out of range" {|[{"delta": 1.5}]|}).(0) in
      Alcotest.(check (float 0.0)) "bad delta -> 0.05" 0.05 delta.Batch.delta;
      let ds = (parsed "bad delay_scale" {|[{"delay_scale": "fast"}]|}).(0) in
      Alcotest.(check (float 0.0))
        "non-numeric delay_scale -> 1.0" 1.0 ds.Batch.delay_scale;
      let ss = (parsed "negative sigma_scale" {|[{"sigma_scale": -0.5}]|}).(0) in
      Alcotest.(check (float 0.0))
        "negative sigma_scale -> 0.0" 0.0 ss.Batch.sigma_scale)

let counter_value name =
  match List.assoc_opt name (Robust.counters ()) with Some v -> v | None -> 0

let test_parse_scenarios_repairs_counted () =
  with_policy Robust.Repair (fun () ->
      let before = counter_value "robust.scenario_repairs" in
      ignore (Batch.parse_scenarios {|[{"corner": "typical"}]|});
      let after = counter_value "robust.scenario_repairs" in
      Alcotest.(check bool) "repair counted" true (after > before))

let test_parsed_scenarios_run () =
  (* End-to-end: a parsed spec runs and matches the equivalent
     hand-constructed scenarios bit for bit. *)
  let text =
    {|[{"corner": "fast", "k": 3.0, "sigma_scale": 1.1},
       {"grad_x": 0.2}]|}
  in
  let parsed =
    match Batch.parse_scenarios text with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let by_hand =
    [|
      {
        (Batch.nominal ~label:"s00" ()) with
        Batch.corner = H.Corners.Fast 3.0;
        sigma_scale = 1.1;
      };
      {
        (Batch.nominal ~label:"s01" ()) with
        Batch.grid_variant = Batch.Gradient { gx = 0.2; gy = 0.0 };
      };
    |]
  in
  let base = Batch.prepare (small 13) in
  check_results "parsed = hand-built"
    (Batch.run ~domains:1 base by_hand)
    (Batch.run ~domains:1 base parsed)

let suites =
  [
    ( "batch.identity",
      [
        Alcotest.test_case "delay batch = singles (domains 1/2/4)" `Quick
          test_delay_batch_equals_singles;
        Alcotest.test_case "io batch = singles (domains 1/2/4)" `Quick
          test_io_batch_equals_singles;
        Alcotest.test_case "io matrix = per-input forward sweeps" `Quick
          test_io_matches_per_input_forward;
        Alcotest.test_case "random DAGs, both modes" `Quick
          test_random_dags_delay_and_io;
        Alcotest.test_case "nominal scenario = direct extraction sweep"
          `Quick test_nominal_matches_extract_path;
        Alcotest.test_case "screen kept counts deterministic" `Quick
          test_screen_kept_counts;
      ] );
    ( "batch.obs",
      [
        Alcotest.test_case "slab peak gauge = capacity plan" `Quick
          test_slab_peak_is_capacity_plan;
        Alcotest.test_case "per-scenario span granularity" `Quick
          test_span_granularity;
        Alcotest.test_case "results identical with obs on/off" `Quick
          test_obs_identity;
      ] );
    ( "batch.spec",
      [
        Alcotest.test_case "scenario JSON happy path" `Quick
          test_parse_scenarios_ok;
        Alcotest.test_case "malformed specs raise structured errors (strict)"
          `Quick test_parse_scenarios_strict;
        Alcotest.test_case "malformed specs repair to defaults (repair)"
          `Quick test_parse_scenarios_repair;
        Alcotest.test_case "repairs are counted" `Quick
          test_parse_scenarios_repairs_counted;
        Alcotest.test_case "parsed spec runs bit-identically" `Quick
          test_parsed_scenarios_run;
      ] );
  ]
