(* Tests for the observability layer (lib/obs): span nesting and
   aggregation, counter determinism across Par domain counts, JSONL trace
   well-formedness, and the disabled-mode identity guarantee (analysis
   results are bit-identical with instrumentation on or off). *)

module Obs = Ssta_obs.Obs
module Par = Ssta_par.Par
module H = Hier_ssta
module Form = Ssta_canonical.Form
module Build = Ssta_timing.Build

(* Every test must leave the global Obs state as it found it: other suites
   (and the OBS_TRACE CI run) share the same registry and enabled flag. *)
let with_obs f =
  let saved = Obs.enabled () in
  Obs.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled saved;
      Obs.reset ())
  @@ fun () -> f ()

let module_build =
  lazy (Build.characterize (Ssta_circuit.Multiplier.make ~bits:4 ()))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_aggregation () =
  with_obs @@ fun () ->
  Obs.enable ();
  for _ = 1 to 3 do
    Obs.with_span "t.outer" (fun () ->
        Obs.with_span "t.inner" (fun () -> Sys.opaque_identity ()))
  done;
  let stats name = List.assoc name (Obs.spans ()) in
  let outer = stats "t.outer" and inner = stats "t.inner" in
  Alcotest.(check int) "outer count" 3 outer.Obs.count;
  Alcotest.(check int) "inner count" 3 inner.Obs.count;
  Alcotest.(check bool) "durations non-negative" true
    (outer.Obs.seconds >= 0.0 && inner.Obs.seconds >= 0.0);
  (* The inner span is fully contained in the outer one. *)
  Alcotest.(check bool)
    (Printf.sprintf "outer (%.2e s) >= inner (%.2e s)" outer.Obs.seconds
       inner.Obs.seconds)
    true
    (outer.Obs.seconds >= inner.Obs.seconds)

let test_span_exception_safety () =
  with_obs @@ fun () ->
  Obs.enable ();
  (try Obs.with_span "t.exn" (fun () -> raise Exit) with Exit -> ());
  let s = List.assoc "t.exn" (Obs.spans ()) in
  Alcotest.(check int) "span closed despite exception" 1 s.Obs.count;
  (* And a subsequent span still aggregates normally (no dangling state). *)
  Obs.with_span "t.exn" (fun () -> ());
  let s = List.assoc "t.exn" (Obs.spans ()) in
  Alcotest.(check int) "span count after recovery" 2 s.Obs.count

let test_span_disabled_inert () =
  with_obs @@ fun () ->
  Obs.disable ();
  Obs.with_span "t.off" (fun () -> ());
  Alcotest.(check (float 0.0)) "no time recorded" 0.0 (Obs.span_seconds "t.off");
  Alcotest.(check bool) "no aggregate recorded" true
    (not (List.mem_assoc "t.off" (Obs.spans ())))

let test_counter_and_gauge_basics () =
  with_obs @@ fun () ->
  Obs.enable ();
  let c = Obs.counter "t.counter" in
  Obs.incr c;
  Obs.add c 41;
  Alcotest.(check int) "counter total" 42 (Obs.counter_value c);
  Alcotest.(check int) "find_counter" 42 (Obs.find_counter "t.counter");
  let g = Obs.gauge "t.gauge" in
  Obs.gauge_max g 7;
  Obs.gauge_max g 3;
  Alcotest.(check int) "gauge keeps high water" 7 (Obs.gauge_value g);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes counter" 0 (Obs.counter_value c);
  Alcotest.(check int) "reset zeroes gauge" 0 (Obs.gauge_value g)

(* ------------------------------------------------------------------ *)
(* Counter merge across Par worker domains                             *)
(* ------------------------------------------------------------------ *)

let test_counter_totals_domain_invariant () =
  with_obs @@ fun () ->
  Obs.enable ();
  let c = Obs.counter "t.par" in
  let n_tasks = 16 in
  let expected = n_tasks * (n_tasks + 1) / 2 in
  List.iter
    (fun domains ->
      Obs.reset ();
      Par.run_tasks ~domains ~n_tasks
        ~init:(fun () -> ())
        ~task:(fun () i -> Obs.add c (i + 1))
        ();
      Alcotest.(check int)
        (Printf.sprintf "total at %d domains" domains)
        expected (Obs.counter_value c))
    [ 1; 2; 4 ]

(* Satellite 4 of the issue: the criticality screen's eval/prune counters
   must not depend on how many domains ran the screen - the chunk layout
   is a pure function of the port counts, and Obs merges per-chunk counts
   commutatively.  Pinned here at 1 vs 4 domains, together with the
   already-guaranteed bit-equality of the keep mask and criticalities. *)
let test_criticality_counters_domain_invariant () =
  with_obs @@ fun () ->
  Obs.enable ();
  let b = Lazy.force module_build in
  (* The result counters are pinned invariant across BOTH the domain count
     and the tile size; the cone/compaction/tile bookkeeping counters are
     only domain-invariant (tiling legitimately rebuilds the cone lists
     once per tile). *)
  let result_counters =
    [
      "criticality.exact_evals";
      "criticality.screened_pairs";
      "criticality.kept_edges";
      "criticality.removed_edges";
    ]
  in
  let bookkeeping_counters =
    [
      "criticality.cone_edges";
      "criticality.compacted_edges";
      "criticality.backward_tiles";
    ]
  in
  let counters = result_counters @ bookkeeping_counters in
  let run domains tile =
    Obs.reset ();
    let crit =
      H.Criticality.compute ~domains ?tile ~delta:0.05 b.Build.graph
        ~forms:b.Build.forms
    in
    (crit, List.map (fun n -> (n, Obs.find_counter n)) counters)
  in
  let crit1, counts1 = run 1 None in
  let crit4, counts4 = run 4 None in
  List.iter2
    (fun (n, v1) (_, v4) ->
      Alcotest.(check int) (n ^ " invariant across domains") v1 v4)
    counts1 counts4;
  Alcotest.(check bool) "keep mask bit-equal" true
    (crit1.H.Criticality.keep = crit4.H.Criticality.keep);
  Alcotest.(check bool) "criticalities bit-equal" true
    (Array.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       crit1.H.Criticality.cm crit4.H.Criticality.cm);
  (* The published counter agrees with the result record's own count. *)
  Alcotest.(check int) "exact_evals counter = record field"
    crit1.H.Criticality.exact_evals
    (List.assoc "criticality.exact_evals" counts1);
  (* Tiling the backward storage changes neither the results nor the
     result counters (only the bookkeeping ones may move). *)
  let critt, countst = run 4 (Some 3) in
  List.iter
    (fun n ->
      Alcotest.(check int)
        (n ^ " invariant across tile sizes")
        (List.assoc n counts1) (List.assoc n countst))
    result_counters;
  Alcotest.(check bool) "keep mask bit-equal under tiling" true
    (crit1.H.Criticality.keep = critt.H.Criticality.keep);
  Alcotest.(check bool) "criticalities bit-equal under tiling" true
    (Array.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       crit1.H.Criticality.cm critt.H.Criticality.cm);
  let no = Array.length b.Build.graph.Ssta_timing.Tgraph.outputs in
  Alcotest.(check int) "backward_tiles = ceil(|O| / tile)"
    ((no + 2) / 3)
    (List.assoc "criticality.backward_tiles" countst)

(* ------------------------------------------------------------------ *)
(* JSONL trace sink                                                    *)
(* ------------------------------------------------------------------ *)

(* Minimal flat-JSON parser, just enough for the trace schema: one object
   per line, string keys, string or number values, no nesting.  Failing
   to parse IS the test failure. *)
type jval = S of string | F of float

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg =
    Alcotest.fail (Printf.sprintf "%s at %d in %s" msg !pos line)
  in
  let peek () = if !pos < n then line.[!pos] else '\000' in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    incr pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "dangling escape";
            Buffer.add_char buf line.[!pos];
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> F f
    | None -> fail "bad number"
  in
  expect '{';
  let fields = ref [] in
  let rec members () =
    let k = parse_string () in
    expect ':';
    let v = if peek () = '"' then S (parse_string ()) else parse_number () in
    fields := (k, v) :: !fields;
    if peek () = ',' then begin
      incr pos;
      members ()
    end
  in
  if peek () <> '}' then members ();
  expect '}';
  if !pos <> n then fail "trailing characters";
  List.rev !fields

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing field %S" k)

let test_trace_jsonl_wellformed () =
  with_obs @@ fun () ->
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  Fun.protect ~finally:(fun () ->
      Obs.close_trace ();
      Sys.remove path)
  @@ fun () ->
  Obs.trace_to_file path;
  Obs.enable ();
  (* A parallel MC run: chunk spans are recorded from worker domains, so
     the trace interleaves events of several [dom] ids. *)
  let b = Lazy.force module_build in
  let ctx = Ssta_mc.Sampler.ctx_of_build b in
  ignore (Ssta_mc.Flat_mc.run ~domains:4 ~iterations:2048 ~seed:11 ctx);
  Obs.close_trace ();
  Obs.disable ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  Alcotest.(check bool) "trace non-empty" true (List.length lines > 0);
  (* Every line parses; B/E events balance per domain; timestamps are
     non-negative and events carry the documented fields. *)
  let balance = Hashtbl.create 8 in
  let saw_counter = ref false in
  List.iter
    (fun line ->
      let fields = parse_line line in
      match field fields "ev" with
      | S "B" ->
          let dom =
            match field fields "dom" with
            | F d -> int_of_float d
            | S _ -> Alcotest.fail "dom not a number"
          in
          (match field fields "t" with
          | F t -> Alcotest.(check bool) "t >= 0" true (t >= 0.0)
          | S _ -> Alcotest.fail "t not a number");
          ignore (field fields "name");
          Hashtbl.replace balance dom
            (1 + Option.value ~default:0 (Hashtbl.find_opt balance dom))
      | S "E" ->
          let dom =
            match field fields "dom" with
            | F d -> int_of_float d
            | S _ -> Alcotest.fail "dom not a number"
          in
          (match field fields "dur_s" with
          | F d -> Alcotest.(check bool) "dur_s >= 0" true (d >= 0.0)
          | S _ -> Alcotest.fail "dur_s not a number");
          let depth =
            Option.value ~default:0 (Hashtbl.find_opt balance dom) - 1
          in
          Alcotest.(check bool) "E never precedes its B" true (depth >= 0);
          Hashtbl.replace balance dom depth
      | S "C" | S "G" ->
          saw_counter := true;
          (match field fields "v" with
          | F _ -> ()
          | S _ -> Alcotest.fail "v not a number")
      | S ev -> Alcotest.fail (Printf.sprintf "unknown event %S" ev)
      | F _ -> Alcotest.fail "ev not a string")
    lines;
  Hashtbl.iter
    (fun dom depth ->
      Alcotest.(check int)
        (Printf.sprintf "spans balance on domain %d" dom)
        0 depth)
    balance;
  Alcotest.(check bool) "close_trace flushed counter totals" true !saw_counter

(* ------------------------------------------------------------------ *)
(* Disabled-mode identity                                              *)
(* ------------------------------------------------------------------ *)

let test_disabled_mode_identity () =
  with_obs @@ fun () ->
  let b = Lazy.force module_build in
  let ctx = Ssta_mc.Sampler.ctx_of_build b in
  let run () =
    let model = H.Extract.extract ~delta:0.05 b in
    let mc = Ssta_mc.Flat_mc.run ~domains:2 ~iterations:1024 ~seed:5 ctx in
    (model.H.Timing_model.forms, mc.Ssta_mc.Flat_mc.delays)
  in
  Obs.disable ();
  let forms_off, delays_off = run () in
  Obs.enable ();
  let forms_on, delays_on = run () in
  Obs.disable ();
  Alcotest.(check bool) "extracted forms bit-identical" true
    (forms_off = forms_on);
  Alcotest.(check bool) "MC delays bit-identical" true
    (Array.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       delays_off delays_on)

let suites =
  [
    ( "obs.spans",
      [
        Alcotest.test_case "nesting and aggregation" `Quick
          test_span_nesting_aggregation;
        Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
        Alcotest.test_case "disabled spans inert" `Quick
          test_span_disabled_inert;
        Alcotest.test_case "counter and gauge basics" `Quick
          test_counter_and_gauge_basics;
      ] );
    ( "obs.par",
      [
        Alcotest.test_case "counter totals domain-invariant" `Quick
          test_counter_totals_domain_invariant;
        Alcotest.test_case "criticality counters domain-invariant" `Quick
          test_criticality_counters_domain_invariant;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "JSONL well-formed and balanced" `Quick
          test_trace_jsonl_wellformed;
      ] );
    ( "obs.identity",
      [
        Alcotest.test_case "disabled mode bit-identical" `Quick
          test_disabled_mode_identity;
      ] );
  ]
