(* Tests for the dense linear algebra substrate: the PCA pipeline here is
   load-bearing for the paper's eqs. (2) and (19). *)

module Vec = Ssta_linalg.Vec
module Mat = Ssta_linalg.Mat
module Cholesky = Ssta_linalg.Cholesky
module Sym_eig = Ssta_linalg.Sym_eig
module Pca = Ssta_linalg.Pca
module Rng = Ssta_gauss.Rng

let close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let random_mat rng r c =
  Mat.init r c (fun _ _ -> Rng.gaussian rng)

let random_spd rng n =
  (* A A^T + n * I is comfortably positive definite. *)
  let a = random_mat rng n n in
  Mat.add (Mat.mul a (Mat.transpose a)) (Mat.scale (float_of_int n) (Mat.identity n))

(* ------------------------------------------------------------------ *)

let test_vec_ops () =
  close "dot" 32.0 (Vec.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |]);
  close "norm2" 5.0 (Vec.norm2 [| 3.0; 4.0 |]);
  let y = [| 1.0; 1.0 |] in
  Vec.axpy ~alpha:2.0 [| 1.0; 2.0 |] y;
  close "axpy.0" 3.0 y.(0);
  close "axpy.1" 5.0 y.(1);
  let l = Vec.lerp 0.25 [| 4.0 |] [| 0.0 |] in
  close "lerp" 1.0 l.(0);
  Alcotest.check_raises "dot length mismatch"
    (Invalid_argument "Vec.dot: length mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  close "c00" 19.0 (Mat.get c 0 0);
  close "c01" 22.0 (Mat.get c 0 1);
  close "c10" 43.0 (Mat.get c 1 0);
  close "c11" 50.0 (Mat.get c 1 1);
  let i = Mat.identity 2 in
  close "a*I = a" 0.0 (Mat.max_abs_diff (Mat.mul a i) a)

let test_mat_transpose () =
  let rng = Rng.create ~seed:1 in
  let a = random_mat rng 4 7 in
  close "transpose involution" 0.0
    (Mat.max_abs_diff (Mat.transpose (Mat.transpose a)) a)

let test_mat_vec () =
  let rng = Rng.create ~seed:2 in
  let a = random_mat rng 5 3 in
  let x = Array.init 3 (fun _ -> Rng.gaussian rng) in
  let y1 = Mat.mul_vec a x in
  (* Compare against multiplication with a 1-column matrix. *)
  let xcol = Mat.init 3 1 (fun i _ -> x.(i)) in
  let y2 = Mat.mul a xcol in
  Array.iteri (fun i v -> close ~tol:1e-12 "mul_vec" (Mat.get y2 i 0) v) y1;
  let z1 = Mat.tmul_vec a (Array.init 5 (fun i -> float_of_int i)) in
  let z2 = Mat.mul_vec (Mat.transpose a) (Array.init 5 (fun i -> float_of_int i)) in
  Array.iteri (fun i v -> close ~tol:1e-12 "tmul_vec" z2.(i) v) z1

let test_cholesky_roundtrip () =
  let rng = Rng.create ~seed:3 in
  let c = random_spd rng 8 in
  let l = Cholesky.factor c in
  close ~tol:1e-8 "l l^T = c" 0.0
    (Mat.max_abs_diff (Mat.mul l (Mat.transpose l)) c)

let test_cholesky_solve () =
  let l = Mat.of_arrays [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  let x = Cholesky.solve_lower l [| 4.0; 11.0 |] in
  close "x0" 2.0 x.(0);
  close "x1" 3.0 x.(1)

let test_cholesky_rejects_indefinite () =
  let c = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  (* Eigenvalues 3 and -1: not repairable by tiny jitter.  The structured
     error names the failing pivot (index 1 here: the first pivot is the
     positive diagonal). *)
  Alcotest.(check bool)
    "indefinite rejected with pivot context" true
    (try
       ignore (Cholesky.factor ~jitter:1e-12 c);
       false
     with Ssta_robust.Robust.Error ctx ->
       ctx.Ssta_robust.Robust.subsystem = "linalg.cholesky"
       && ctx.Ssta_robust.Robust.indices <> []
       && List.hd ctx.Ssta_robust.Robust.indices = 1)

let test_eig_diagonal () =
  let c = Mat.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let { Sym_eig.values; vectors } = Sym_eig.decompose c in
  close "lambda0" 3.0 values.(0);
  close "lambda1" 1.0 values.(1);
  close "v00" 1.0 (abs_float (Mat.get vectors 0 0))

let test_eig_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let c = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let { Sym_eig.values; _ } = Sym_eig.decompose c in
  close ~tol:1e-10 "lambda0" 3.0 values.(0);
  close ~tol:1e-10 "lambda1" 1.0 values.(1)

let test_eig_reconstruct () =
  let rng = Rng.create ~seed:4 in
  let a = random_mat rng 12 12 in
  let c = Mat.add a (Mat.transpose a) in
  let d = Sym_eig.decompose c in
  close ~tol:1e-7 "reconstruction" 0.0
    (Mat.max_abs_diff (Sym_eig.reconstruct d) c)

let test_eig_orthonormal () =
  let rng = Rng.create ~seed:5 in
  let c = random_spd rng 10 in
  let { Sym_eig.vectors; values } = Sym_eig.decompose c in
  close ~tol:1e-8 "V^T V = I" 0.0
    (Mat.max_abs_diff (Mat.mul (Mat.transpose vectors) vectors) (Mat.identity 10));
  (* Sorted decreasing. *)
  for i = 0 to 8 do
    Alcotest.(check bool) "sorted" true (values.(i) >= values.(i + 1))
  done

let test_pca_covariance () =
  let rng = Rng.create ~seed:6 in
  let c = random_spd rng 9 in
  let p = Pca.of_covariance c in
  close ~tol:1e-7 "factor factor^T = C" 0.0
    (Mat.max_abs_diff (Pca.covariance p) c)

let test_pca_row_variance () =
  let rng = Rng.create ~seed:7 in
  let c = random_spd rng 6 in
  let p = Pca.of_covariance c in
  for i = 0 to 5 do
    let row = Pca.coeff_row p i in
    close ~tol:1e-7
      (Printf.sprintf "row %d variance = C_ii" i)
      (Mat.get c i i) (Vec.sum_sq row)
  done

let test_pca_pinv () =
  let rng = Rng.create ~seed:8 in
  let c = random_spd rng 7 in
  let p = Pca.of_covariance c in
  (* pinv_factor * factor should be the identity on retained components. *)
  let prod = Mat.mul p.Pca.pinv_factor p.Pca.factor in
  close ~tol:1e-7 "pinv . factor = I" 0.0
    (Mat.max_abs_diff prod (Mat.identity p.Pca.retained))

let test_pca_sample_covariance () =
  (* Statistical: the sampled vectors have covariance close to C. *)
  let c =
    Mat.of_arrays
      [| [| 1.0; 0.6; 0.2 |]; [| 0.6; 1.0; 0.5 |]; [| 0.2; 0.5; 1.0 |] |]
  in
  let p = Pca.of_covariance c in
  let rng = Rng.create ~seed:9 in
  let n = 40_000 in
  let acc = Mat.make 3 3 in
  for _ = 1 to n do
    let x = Pca.sample p rng in
    for i = 0 to 2 do
      for j = 0 to 2 do
        Mat.set acc i j (Mat.get acc i j +. (x.(i) *. x.(j)))
      done
    done
  done;
  let emp = Mat.scale (1.0 /. float_of_int n) acc in
  Alcotest.(check bool)
    "sample covariance close" true
    (Mat.max_abs_diff emp c < 0.03)

let test_pca_clamps_negative () =
  (* A slightly indefinite matrix must be repaired, not propagated. *)
  let c =
    Mat.of_arrays [| [| 1.0; 1.0 +. 1e-6 |]; [| 1.0 +. 1e-6; 1.0 |] |]
  in
  let p = Pca.of_covariance c in
  Alcotest.(check bool) "all eigenvalues >= 0" true
    (Array.for_all (fun v -> v >= 0.0) p.Pca.values);
  Alcotest.(check int) "one retained" 1 p.Pca.retained

let mat_mul_assoc_qcheck =
  QCheck.Test.make ~count:100 ~name:"matrix multiplication associates"
    QCheck.(int_range 1 6)
    (fun n ->
      let rng = Rng.create ~seed:(n + 100) in
      let a = random_mat rng n n
      and b = random_mat rng n n
      and c = random_mat rng n n in
      Mat.max_abs_diff (Mat.mul (Mat.mul a b) c) (Mat.mul a (Mat.mul b c))
      < 1e-9)

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "linalg",
      [
        Alcotest.test_case "vector ops" `Quick test_vec_ops;
        Alcotest.test_case "matrix multiply" `Quick test_mat_mul;
        Alcotest.test_case "transpose involution" `Quick test_mat_transpose;
        Alcotest.test_case "matrix-vector" `Quick test_mat_vec;
        Alcotest.test_case "cholesky roundtrip" `Quick test_cholesky_roundtrip;
        Alcotest.test_case "cholesky solve" `Quick test_cholesky_solve;
        Alcotest.test_case "cholesky indefinite" `Quick
          test_cholesky_rejects_indefinite;
        Alcotest.test_case "eig diagonal" `Quick test_eig_diagonal;
        Alcotest.test_case "eig known 2x2" `Quick test_eig_known_2x2;
        Alcotest.test_case "eig reconstruct" `Quick test_eig_reconstruct;
        Alcotest.test_case "eig orthonormal" `Quick test_eig_orthonormal;
        Alcotest.test_case "pca covariance" `Quick test_pca_covariance;
        Alcotest.test_case "pca row variance" `Quick test_pca_row_variance;
        Alcotest.test_case "pca pseudo-inverse" `Quick test_pca_pinv;
        Alcotest.test_case "pca sample covariance" `Slow
          test_pca_sample_covariance;
        Alcotest.test_case "pca clamps negatives" `Quick
          test_pca_clamps_negative;
        q mat_mul_assoc_qcheck;
      ] );
  ]
