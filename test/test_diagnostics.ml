(* Tests for Diagnostics.budget: variance decomposition of a canonical
   form into global / correlated-local / random contributions. *)

module H = Hier_ssta
module Form = Ssta_canonical.Form
module D = H.Diagnostics

let close ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let form ~globals ~pcs ~rand = Form.make ~mean:100.0 ~globals ~pcs ~rand

let test_hand_computed_budget () =
  (* 2 parameters, 2 PCs each: every contribution is checkable by hand. *)
  let f =
    form ~globals:[| 3.0; 4.0 |] ~pcs:[| 1.0; 2.0; 0.0; 2.0 |] ~rand:5.0
  in
  let b = D.budget ~n_params:2 f in
  close "total variance" (9.0 +. 16.0 +. 5.0 +. 4.0 +. 25.0) b.D.total_variance;
  close "global p0" 9.0 b.D.global_per_param.(0);
  close "global p1" 16.0 b.D.global_per_param.(1);
  close "local p0" 5.0 b.D.local_per_param.(0);
  close "local p1" 4.0 b.D.local_per_param.(1);
  close "random" 25.0 b.D.random

let test_fractions_sum_to_one () =
  let f =
    form ~globals:[| 0.5; -1.5 |] ~pcs:[| 0.25; -0.75; 1.0; 0.125 |] ~rand:2.0
  in
  let b = D.budget ~n_params:2 f in
  close ~tol:1e-12 "fractions partition the variance" 1.0
    (D.fraction_global b +. D.fraction_local b +. D.fraction_random b)

let test_zero_variance_form () =
  (* A constant form: all fractions must be 0 (not NaN) by the documented
     <= 0 guard, and the budget itself is all zeros. *)
  let f = form ~globals:[| 0.0 |] ~pcs:[| 0.0; 0.0 |] ~rand:0.0 in
  let b = D.budget ~n_params:1 f in
  close "zero total" 0.0 b.D.total_variance;
  close "zero global fraction" 0.0 (D.fraction_global b);
  close "zero local fraction" 0.0 (D.fraction_local b);
  close "zero random fraction" 0.0 (D.fraction_random b)

let test_invalid_dimensions () =
  let raises msg f =
    Alcotest.(check bool)
      msg true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  (* 3 PCs cannot split across 2 parameters. *)
  let f = form ~globals:[| 1.0; 1.0 |] ~pcs:[| 1.0; 1.0; 1.0 |] ~rand:0.0 in
  raises "PC dimension not a parameter multiple" (fun () ->
      D.budget ~n_params:2 f);
  (* Global coefficient count must equal n_params. *)
  let g = form ~globals:[| 1.0 |] ~pcs:[| 1.0; 1.0 |] ~rand:0.0 in
  raises "global count mismatch" (fun () -> D.budget ~n_params:2 g);
  (* n_params = 0 is rejected rather than dividing by zero. *)
  let z = form ~globals:[||] ~pcs:[||] ~rand:1.0 in
  raises "zero parameters rejected" (fun () -> D.budget ~n_params:0 z)

let test_budget_of_real_extraction () =
  (* On a real characterized edge the decomposition must both partition
     the variance and report strictly positive global and local parts. *)
  let b =
    Ssta_timing.Build.characterize (Ssta_circuit.Multiplier.make ~bits:4 ())
  in
  let n_params = Array.length Ssta_cell.Library.params in
  let f = b.Ssta_timing.Build.forms.(0) in
  let bd = D.budget ~n_params f in
  close ~tol:1e-9 "total = Form.variance" (Form.variance f)
    bd.D.total_variance;
  close ~tol:1e-12 "fractions sum" 1.0
    (D.fraction_global bd +. D.fraction_local bd +. D.fraction_random bd);
  Alcotest.(check bool) "global part positive" true
    (D.fraction_global bd > 0.0);
  Alcotest.(check bool) "local part positive" true (D.fraction_local bd > 0.0)

let suites =
  [
    ( "diagnostics.budget",
      [
        Alcotest.test_case "hand-computed example" `Quick
          test_hand_computed_budget;
        Alcotest.test_case "fractions sum to 1" `Quick
          test_fractions_sum_to_one;
        Alcotest.test_case "zero-variance form" `Quick test_zero_variance_form;
        Alcotest.test_case "invalid dimensions" `Quick test_invalid_dimensions;
        Alcotest.test_case "real extraction budget" `Quick
          test_budget_of_real_extraction;
      ] );
  ]
