(* Test entry point: one alcotest suite per library plus integration tests
   that exercise the paper's experiments end-to-end at reduced scale. *)

let () =
  Alcotest.run "hier_ssta"
    (List.concat
       [
         Test_gauss.suites;
         Test_linalg.suites;
         Test_canonical.suites;
         Test_variation.suites;
         Test_cell.suites;
         Test_circuit.suites;
         Test_bench_format.suites;
         Test_timing.suites;
         Test_mc.suites;
         Test_model.suites;
         Test_hier.suites;
         Test_hier_flow.suites;
         Test_diagnostics.suites;
         Test_obs.suites;
         Test_extensions.suites;
         Test_property.suites;
         Test_kernels.suites;
         Test_batch.suites;
         Test_serve.suites;
         Test_crit_screen.suites;
         Test_determinism.suites;
         Test_par.suites;
         Test_robust.suites;
         Test_frontend.suites;
         Test_integration.suites;
       ])
