(* Tests for the persistent analysis daemon (lib/serve).

   The central pin: what-if edits answered by incremental re-propagation
   (Tgraph.fanout_closure_into + Propagate.forward_update_into) are
   bit-identical to a full re-sweep — over random DAGs and random edit
   sequences, at 1/2/4 worker domains — and the engine's response stream
   is byte-identical however requests are grouped and however many
   domains run underneath. *)

module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Par = Ssta_par.Par
module Robust = Ssta_robust.Robust
module Json = Ssta_json.Json
module Serve = Ssta_serve.Serve
module H = Hier_ssta
module Rng = Ssta_gauss.Rng

let with_policy policy f =
  let prev = Robust.policy () in
  Robust.set_policy policy;
  Fun.protect ~finally:(fun () -> Robust.set_policy prev) f

(* ------------------------------------------------------------------ *)
(* Incremental re-propagation == full re-sweep (QCheck)               *)
(* ------------------------------------------------------------------ *)

let exactly_equal (a : Form.t) (b : Form.t) =
  a.Form.mean = b.Form.mean
  && a.Form.rand = b.Form.rand
  && a.Form.globals = b.Form.globals
  && a.Form.pcs = b.Form.pcs

let sweep_equal n ws reference =
  Array.for_all2
    (fun got want ->
      match (got, want) with
      | None, None -> true
      | Some a, Some b -> exactly_equal a b
      | _ -> false)
    (Array.init n (fun v -> H.Propagate.ws_form ws v))
    reference

(* One random edit step: pick 1..3 random edges, transform each like the
   serve what-if op does (scale/add/set). *)
let random_edits rng g (forms : Form.t array) =
  let m = Tgraph.n_edges g in
  let k = 1 + Rng.int rng 3 in
  List.init k (fun _ ->
      let e = Rng.int rng m in
      let f = forms.(e) in
      let next =
        match Rng.int rng 3 with
        | 0 -> Form.scale (0.5 +. (2.0 *. Rng.uniform rng)) f
        | 1 -> Form.add_const f ((10.0 *. Rng.uniform rng) -. 5.0)
        | _ -> { f with Form.mean = 50.0 *. Rng.uniform rng }
      in
      (e, next))

let prop_incremental_equals_full n_domains seed =
  Par.with_domains n_domains (fun () ->
      let dims = { Form.n_globals = 2; n_pcs = 3 } in
      let g, forms = Test_kernels.random_dag seed dims in
      let forms = Array.copy forms in
      let n = Tgraph.n_vertices g in
      let fbuf = Form_buf.of_forms dims forms in
      let ws = H.Propagate.create_workspace () in
      H.Propagate.forward_into ws g ~forms:fbuf ~sources:g.Tgraph.inputs;
      let dirty = Bytes.create n in
      let rng = Rng.create ~seed:(seed lxor 0x5e21e) in
      let steps = 1 + Rng.int rng 6 in
      let ok = ref true in
      for _ = 1 to steps do
        let edits = random_edits rng g forms in
        List.iter
          (fun (e, next) ->
            forms.(e) <- next;
            Form_buf.set fbuf e next)
          edits;
        let seeds =
          Array.of_list (List.map (fun (e, _) -> g.Tgraph.dst.(e)) edits)
        in
        ignore (Tgraph.fanout_closure_into g ~seeds ~into:dirty);
        let n_dirty, _ =
          H.Propagate.forward_update_into ws g ~forms:fbuf
            ~sources:g.Tgraph.inputs ~dirty
        in
        if n_dirty <= 0 then ok := false;
        (* Reference: an independent full sweep over the current forms. *)
        let reference =
          H.Propagate.forward g ~forms ~sources:g.Tgraph.inputs
        in
        if not (sweep_equal n ws reference) then ok := false
      done;
      !ok)

let qcheck_incremental n_domains =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "incremental re-timing == full re-sweep (domains=%d)"
         n_domains)
    ~count:60
    QCheck.(int_bound 100_000)
    (prop_incremental_equals_full n_domains)

(* ------------------------------------------------------------------ *)
(* Engine protocol                                                    *)
(* ------------------------------------------------------------------ *)

let req fields = Json.to_string (Json.Obj fields)
let parse_resp s = Json.parse_exn s

let check_ok label resp =
  let j = parse_resp resp in
  match Json.bool_field "ok" j with
  | Ok true -> j
  | _ -> Alcotest.failf "%s: expected ok response, got %s" label resp

let check_err label resp =
  let j = parse_resp resp in
  match Json.bool_field "ok" j with
  | Ok false -> j
  | _ -> Alcotest.failf "%s: expected error response, got %s" label resp

let num label field j =
  match Json.num_field field j with
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" label m

let load_small t =
  ignore
    (check_ok "load" (Serve.handle_line t (req [ ("op", Json.Str "load"); ("design", Json.Str "c432") ])))

let test_load_cache () =
  let t = Serve.create () in
  let j =
    check_ok "load"
      (Serve.handle_line t
         (req [ ("op", Json.Str "load"); ("design", Json.Str "c432") ]))
  in
  Alcotest.(check bool)
    "first load characterizes" false
    (match Json.bool_field "cached" j with Ok b -> b | Error m -> Alcotest.fail m);
  let j2 =
    check_ok "swap"
      (Serve.handle_line t
         (req [ ("op", Json.Str "swap"); ("design", Json.Str "c432") ]))
  in
  Alcotest.(check bool)
    "swap back hits the content-hash cache" true
    (match Json.bool_field "cached" j2 with Ok b -> b | Error m -> Alcotest.fail m);
  Alcotest.(check int) "one model resident" 1 (Serve.cache_size t)

let test_whatif_incremental_vs_full () =
  let t = Serve.create () in
  load_small t;
  let edits =
    Json.Arr
      [
        Json.Obj [ ("edge", Json.Num 1.0); ("scale", Json.Num 1.7) ];
        Json.Obj [ ("edge", Json.Num 4.0); ("add", Json.Num 12.5) ];
      ]
  in
  let whatif mode =
    check_ok ("whatif " ^ mode)
      (Serve.handle_line t
         (req
            [
              ("op", Json.Str "whatif");
              ("edits", edits);
              ("mode", Json.Str mode);
            ]))
  in
  let a = whatif "incremental" and b = whatif "full" in
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0))
        (f ^ " bit-identical across modes")
        (num "full" f b) (num "incr" f a))
    [ "mean"; "sigma"; "clock" ];
  (* The incremental path visited a strict subset of the graph. *)
  Alcotest.(check bool)
    "incremental visits fewer vertices" true
    (num "incr" "dirty_vertices" a < num "full" "dirty_vertices" b)

let test_whatif_rollback_and_commit () =
  let t = Serve.create () in
  load_small t;
  let quantile () =
    Serve.handle_line t (req [ ("op", Json.Str "quantile") ])
  in
  let before = quantile () in
  let edits =
    Json.Arr [ Json.Obj [ ("edge", Json.Num 0.0); ("scale", Json.Num 3.0) ] ]
  in
  ignore
    (check_ok "transient whatif"
       (Serve.handle_line t
          (req [ ("op", Json.Str "whatif"); ("edits", edits) ])));
  Alcotest.(check string)
    "uncommitted edit leaves the session byte-identical" before (quantile ());
  let committed =
    check_ok "committed whatif"
      (Serve.handle_line t
         (req
            [
              ("op", Json.Str "whatif");
              ("edits", edits);
              ("commit", Json.Bool true);
            ]))
  in
  let after_commit = quantile () in
  Alcotest.(check bool)
    "committed edit changes the session" true (after_commit <> before);
  Alcotest.(check (float 0.0))
    "session quantile equals the committed what-if response"
    (num "commit" "mean" committed)
    (num "session" "mean" (check_ok "quantile" after_commit));
  ignore (check_ok "revert" (Serve.handle_line t (req [ ("op", Json.Str "revert") ])));
  Alcotest.(check string) "revert restores pristine" before (quantile ())

let test_errors_do_not_kill_engine () =
  let t = Serve.create () in
  (* No design loaded yet: structured error, not an exception. *)
  let j =
    check_err "quantile w/o load"
      (Serve.handle_line t (req [ ("op", Json.Str "quantile") ]))
  in
  (match Json.find "error" j with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "error responses carry a structured context");
  ignore (check_err "malformed json" (Serve.handle_line t "{\"op\": oops"));
  ignore (check_err "unknown op" (Serve.handle_line t (req [ ("op", Json.Str "warp") ])));
  with_policy Robust.Strict (fun () ->
      ignore
        (check_err "strict malformed json"
           (Serve.handle_line t "{\"op\": oops")));
  (* The engine still works afterwards. *)
  load_small t;
  ignore (check_ok "ping" (Serve.handle_line t (req [ ("op", Json.Str "ping") ])))

let test_whatif_bad_edits () =
  let t = Serve.create () in
  load_small t;
  let whatif edits =
    Serve.handle_line t
      (req [ ("op", Json.Str "whatif"); ("edits", edits) ])
  in
  ignore
    (check_err "edge out of range"
       (whatif
          (Json.Arr
             [ Json.Obj [ ("edge", Json.Num 9999.0); ("scale", Json.Num 2.0) ] ])));
  ignore
    (check_err "conflicting fields"
       (whatif
          (Json.Arr
             [
               Json.Obj
                 [
                   ("edge", Json.Num 0.0);
                   ("scale", Json.Num 2.0);
                   ("add", Json.Num 1.0);
                 ];
             ])));
  ignore (check_err "empty edits" (whatif (Json.Arr [])));
  ignore
    (check_ok "engine alive after bad edits"
       (Serve.handle_line t (req [ ("op", Json.Str "quantile") ])))

(* ------------------------------------------------------------------ *)
(* Grouped (pipelined) handling == sequential handling                 *)
(* ------------------------------------------------------------------ *)

let scenario_quantile ?(id = 0) corner scale =
  req
    [
      ("id", Json.Num (float_of_int id));
      ("op", Json.Str "quantile");
      ( "scenario",
        Json.Obj
          [ ("corner", Json.Str corner); ("delay_scale", Json.Num scale) ] );
    ]

let grouping_corpus =
  [
    req [ ("id", Json.Num 1.0); ("op", Json.Str "load"); ("design", Json.Str "c432") ];
    scenario_quantile ~id:2 "slow" 1.0;
    scenario_quantile ~id:3 "fast" 1.0;
    (* id 4 duplicates id 2's scenario: deduplicated into one shared sweep *)
    scenario_quantile ~id:4 "slow" 1.0;
    scenario_quantile ~id:5 "nominal" 1.05;
    req [ ("id", Json.Num 6.0); ("op", Json.Str "quantile") ];
    scenario_quantile ~id:7 "global_slow" 1.0;
    req [ ("id", Json.Num 8.0); ("op", Json.Str "stats") ];
  ]

(* stats output includes live counters, which legitimately differ between
   grouped and sequential processing; compare all other lines. *)
let comparable resp =
  match Json.parse resp with
  | Ok j -> (match Json.str_field "op" j with Ok "stats" -> false | _ -> true)
  | Error _ -> true

let run_corpus grouped =
  let t = Serve.create () in
  let responses =
    if grouped then Serve.handle_lines t grouping_corpus
    else List.map (Serve.handle_line t) grouping_corpus
  in
  List.filter comparable responses

let test_grouping_equals_sequential () =
  Alcotest.(check (list string))
    "pipelined grouping is byte-identical to sequential handling"
    (run_corpus false) (run_corpus true)

let test_responses_identical_across_domains () =
  let at n = Par.with_domains n (fun () -> run_corpus true) in
  Alcotest.(check (list string))
    "response stream byte-identical at 1 vs 4 domains" (at 1) (at 4)

(* ------------------------------------------------------------------ *)
(* Batch op under the robust policies                                  *)
(* ------------------------------------------------------------------ *)

let test_batch_op_policies () =
  let bad_batch t =
    Serve.handle_line t
      (req
         [
           ("op", Json.Str "batch");
           ( "scenarios",
             Json.Arr
               [
                 Json.Obj [ ("corner", Json.Str "typical") ];
                 Json.Obj [ ("sigma_scale", Json.Num (-2.0)) ];
               ] );
         ])
  in
  with_policy Robust.Repair (fun () ->
      let t = Serve.create () in
      load_small t;
      let j = check_ok "repaired batch" (bad_batch t) in
      Alcotest.(check (float 0.0))
        "both defective scenarios repaired and evaluated" 2.0
        (num "batch" "scenarios" j));
  with_policy Robust.Strict (fun () ->
      let t = Serve.create () in
      load_small t;
      ignore (check_err "strict batch rejects defective scenario" (bad_batch t)))

(* ------------------------------------------------------------------ *)
(* Durability: disk model cache, ECO write-ahead log, crash recovery   *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d = Printf.sprintf "_durable_%d" !n in
    rm_rf d;
    Unix.mkdir d 0o755;
    d

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1))

let chop_bytes path n =
  let len = (Unix.stat path).Unix.st_size in
  Unix.truncate path (max 0 (len - n))

let drop_log dir =
  List.iter
    (fun f ->
      let p = Filename.concat dir f in
      if Sys.file_exists p then Sys.remove p)
    [ "wal.jsonl"; "checkpoint" ]

let model_files dir =
  Sys.readdir (Filename.concat dir "models")
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".model")

let load_c432 = req [ ("op", Json.Str "load"); ("design", Json.Str "c432") ]

let cached_of label resp =
  let j = check_ok label resp in
  match Json.bool_field "cached" j with
  | Ok b -> b
  | Error m -> Alcotest.failf "%s: %s" label m

(* A model characterized by one engine is picked up from disk by the
   next engine on the same cache dir (the WAL is dropped in between so
   the hit comes from the spill file, not from recovery replay). *)
let test_disk_cache_warm_restart () =
  let dir = fresh_dir () in
  let t1 = Serve.create ~cache_dir:dir () in
  Alcotest.(check bool)
    "first load characterizes" false
    (cached_of "load 1" (Serve.handle_line t1 load_c432));
  Alcotest.(check int) "one spill file" 1 (List.length (model_files dir));
  drop_log dir;
  let t2 = Serve.create ~cache_dir:dir () in
  Alcotest.(check int) "nothing resident before load" 0 (Serve.cache_size t2);
  Alcotest.(check bool)
    "warm restart loads from disk" true
    (cached_of "load 2" (Serve.handle_line t2 load_c432));
  Alcotest.(check int) "model resident after disk hit" 1 (Serve.cache_size t2)

(* Corrupt spill files: under Repair they are quarantined and the model
   recomputed (and re-spilled); under Strict the load degrades to a
   structured error response and the engine survives. *)
let test_cache_corruption () =
  let dir = fresh_dir () in
  let t1 = Serve.create ~cache_dir:dir () in
  ignore (check_ok "seed load" (Serve.handle_line t1 load_c432));
  let model = Filename.concat (Filename.concat dir "models")
      (List.hd (model_files dir)) in
  let corrupt_count () = List.assoc "robust.cache_corrupt" (Robust.counters ()) in
  (* bit flip in the middle of the payload *)
  flip_byte model ((Unix.stat model).Unix.st_size / 2);
  drop_log dir;
  with_policy Robust.Repair (fun () ->
      let before = corrupt_count () in
      let t2 = Serve.create ~cache_dir:dir () in
      Alcotest.(check bool)
        "bit-flipped entry recomputed" false
        (cached_of "load after flip" (Serve.handle_line t2 load_c432));
      Alcotest.(check bool)
        "corruption counted" true
        (corrupt_count () > before);
      Alcotest.(check bool)
        "corrupt file quarantined" true
        (Sys.file_exists (model ^ ".corrupt")));
  (* t2 re-spilled the model; now truncate it *)
  chop_bytes model 64;
  drop_log dir;
  with_policy Robust.Repair (fun () ->
      let t3 = Serve.create ~cache_dir:dir () in
      Alcotest.(check bool)
        "truncated entry recomputed" false
        (cached_of "load after chop" (Serve.handle_line t3 load_c432)));
  chop_bytes model 64;
  drop_log dir;
  with_policy Robust.Strict (fun () ->
      let t4 = Serve.create ~cache_dir:dir () in
      ignore (check_err "strict corrupt cache" (Serve.handle_line t4 load_c432));
      ignore
        (check_ok "engine survives"
           (Serve.handle_line t4 (req [ ("op", Json.Str "ping") ]))))

(* The ECO corpus shared by the recovery tests: committed edits, a
   transient edit, a revert, reads in between.  Index 5 is the standard
   crash split; the request at index 3 writes the last WAL record of the
   prefix (the torn-tail test relies on both). *)
let eco_corpus =
  [
    req [ ("id", Json.Num 1.0); ("op", Json.Str "load"); ("design", Json.Str "c432") ];
    req
      [
        ("id", Json.Num 2.0);
        ("op", Json.Str "whatif");
        ( "edits",
          Json.Arr [ Json.Obj [ ("edge", Json.Num 10.0); ("scale", Json.Num 1.3) ] ] );
        ("commit", Json.Bool true);
      ];
    req [ ("id", Json.Num 3.0); ("op", Json.Str "quantile"); ("yield", Json.Num 0.99) ];
    req
      [
        ("id", Json.Num 4.0);
        ("op", Json.Str "whatif");
        ( "edits",
          Json.Arr
            [
              Json.Obj [ ("edge", Json.Num 20.0); ("add", Json.Num 5.0) ];
              Json.Obj [ ("edge", Json.Num 30.0); ("set", Json.Num 77.0) ];
            ] );
        ("commit", Json.Bool true);
      ];
    req [ ("id", Json.Num 5.0); ("op", Json.Str "paths"); ("k", Json.Num 2.0) ];
    req [ ("id", Json.Num 6.0); ("op", Json.Str "quantile"); ("yield", Json.Num 0.9) ];
    req
      [
        ("id", Json.Num 7.0);
        ("op", Json.Str "whatif");
        ( "edits",
          Json.Arr [ Json.Obj [ ("edge", Json.Num 40.0); ("scale", Json.Num 0.8) ] ] );
        ("commit", Json.Bool true);
      ];
    req [ ("id", Json.Num 8.0); ("op", Json.Str "revert") ];
    req [ ("id", Json.Num 9.0); ("op", Json.Str "quantile") ];
    req
      [
        ("id", Json.Num 10.0);
        ("op", Json.Str "whatif");
        ( "edits",
          Json.Arr [ Json.Obj [ ("edge", Json.Num 10.0); ("scale", Json.Num 1.5) ] ] );
      ];
    req [ ("id", Json.Num 11.0); ("op", Json.Str "quantile") ];
  ]

let reference_stream () =
  let t = Serve.create () in
  List.map (Serve.handle_line t) eco_corpus

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

(* Process a prefix on one durable engine, abandon it (a crash keeps the
   WAL: every record is flushed before the response is returned), build
   a second engine on the same dir, and check the remaining responses
   are byte-identical to an engine that never died. *)
let recovery_tail_identical ~split =
  let reference = reference_stream () in
  let dir = fresh_dir () in
  let t1 = Serve.create ~cache_dir:dir ~checkpoint_every:3 () in
  ignore (List.map (Serve.handle_line t1) (take split eco_corpus));
  let t2 = Serve.create ~cache_dir:dir ~checkpoint_every:3 () in
  Alcotest.(check (list string))
    (Printf.sprintf "recovered tail identical (split %d)" split)
    (drop split reference)
    (List.map (Serve.handle_line t2) (drop split eco_corpus))

let test_recovery_bit_identity () =
  recovery_tail_identical ~split:5;
  (* split 4: the last prefix record is the id-4 commit; exercises a
     recovery whose WAL ends exactly on a committed edit *)
  recovery_tail_identical ~split:4

let test_recovery_bit_identity_domains () =
  List.iter
    (fun d -> Par.with_domains d (fun () -> recovery_tail_identical ~split:5))
    [ 1; 4 ]

(* A WAL record torn mid-append (simulated by chopping bytes off the
   file) is truncated away under Repair - the client re-sends the
   unacknowledged request and the stream converges - and is a structured
   startup error under Strict. *)
let test_wal_torn_tail () =
  let reference = reference_stream () in
  let truncated_count () =
    List.assoc "robust.wal_truncated" (Robust.counters ())
  in
  let setup () =
    let dir = fresh_dir () in
    let t1 = Serve.create ~cache_dir:dir () in
    ignore (List.map (Serve.handle_line t1) (take 4 eco_corpus));
    (* last WAL record = the id-4 commit (request index 3); tear it *)
    chop_bytes (Filename.concat dir "wal.jsonl") 10;
    dir
  in
  with_policy Robust.Repair (fun () ->
      let dir = setup () in
      let before = truncated_count () in
      let t2 = Serve.create ~cache_dir:dir () in
      Alcotest.(check bool)
        "torn record counted" true
        (truncated_count () > before);
      Alcotest.(check (list string))
        "re-sent torn request + tail identical" (drop 3 reference)
        (List.map (Serve.handle_line t2) (drop 3 eco_corpus)));
  with_policy Robust.Strict (fun () ->
      let dir = setup () in
      match Serve.create ~cache_dir:dir () with
      | _ -> Alcotest.fail "strict engine accepted a torn WAL"
      | exception Robust.Error c ->
          Alcotest.(check string)
            "structured torn-WAL error" "serve.wal" c.Robust.subsystem)

(* A bit flip in the first WAL record fails its checksum: under Repair
   the whole log from that point is dropped and the engine starts
   clean (still serving models from the disk cache). *)
let test_wal_bit_flip () =
  let dir = fresh_dir () in
  let t1 = Serve.create ~cache_dir:dir () in
  ignore (List.map (Serve.handle_line t1) (take 4 eco_corpus));
  flip_byte (Filename.concat dir "wal.jsonl") 40;
  with_policy Robust.Repair (fun () ->
      let before = List.assoc "robust.wal_truncated" (Robust.counters ()) in
      let t2 = Serve.create ~cache_dir:dir () in
      Alcotest.(check bool)
        "flipped record counted" true
        (List.assoc "robust.wal_truncated" (Robust.counters ()) > before);
      Alcotest.(check int) "recovered state empty" 0 (Serve.cache_size t2);
      Alcotest.(check bool)
        "models still served from disk" true
        (cached_of "load after flip" (Serve.handle_line t2 load_c432)))

(* Deadlines: an expired per-request deadline turns into a structured
   timeout response (never a wedged or dead engine), and the
   cancellation points inside Batch.run observe an armed deadline. *)
let test_deadline_timeout_response () =
  let t = Serve.create () in
  load_small t;
  let timed fields = req (fields @ [ ("deadline_ms", Json.Num 0.0) ]) in
  let check_timeout label resp =
    let j = check_err label resp in
    match Json.bool_field "timeout" j with
    | Ok true -> ()
    | _ -> Alcotest.failf "%s: expected timeout:true, got %s" label resp
  in
  check_timeout "quantile deadline"
    (Serve.handle_line t
       (timed
          [
            ("op", Json.Str "quantile");
            ("scenario", Json.Obj [ ("corner", Json.Str "slow") ]);
          ]));
  check_timeout "batch deadline"
    (Serve.handle_line t
       (timed
          [
            ("op", Json.Str "batch");
            ("scenarios", Json.Arr [ Json.Obj [ ("corner", Json.Str "slow") ] ]);
          ]));
  (* the deadline is per-request: the engine is immediately usable *)
  ignore
    (check_ok "engine alive after timeouts"
       (Serve.handle_line t (req [ ("op", Json.Str "quantile") ])))

let test_deadline_cancels_batch_run () =
  let module Batch = Ssta_batch.Batch in
  let module Deadline = Ssta_robust.Deadline in
  let base =
    Batch.prepare (Ssta_timing.Build.characterize (Ssta_circuit.Iscas.build "c432"))
  in
  let scenarios = Batch.default_scenarios 3 in
  Deadline.arm_at 0.0;
  (match Batch.run ~domains:2 base scenarios with
  | _ ->
      Deadline.disarm ();
      Alcotest.fail "Batch.run ignored an expired deadline"
  | exception Robust.Error c ->
      Deadline.disarm ();
      Alcotest.(check string) "deadline subsystem" "deadline" c.Robust.subsystem);
  (* disarmed: same call completes *)
  ignore (Batch.run ~domains:2 base scenarios)

(* Fuzzed durable state: WAL and disk-cache files mangled by the shared
   mutation primitives (byte truncation, token mutation, line shuffle).
   The contract mirrors the frontend fuzz: under Repair the engine
   always starts and serves (mangled records are truncated/quarantined
   and recomputed); under Strict it either works or raises/returns a
   structured Robust error - no other exception may escape. *)
let test_wal_cache_fuzz () =
  let module Fuzz = Ssta_robust_inject.Fuzz in
  let module Rng = Ssta_gauss.Rng in
  let read_all path = In_channel.with_open_bin path In_channel.input_all in
  let write_all path doc =
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc doc)
  in
  (* seed state: one load + two committed edits *)
  let dir0 = fresh_dir () in
  let t0 = Serve.create ~cache_dir:dir0 () in
  ignore (List.map (Serve.handle_line t0) (take 4 eco_corpus));
  let model_name = List.hd (model_files dir0) in
  let wal_doc = read_all (Filename.concat dir0 "wal.jsonl") in
  let model_doc =
    read_all (Filename.concat (Filename.concat dir0 "models") model_name)
  in
  let classes = [ Fuzz.Byte_truncate; Fuzz.Token_mutate; Fuzz.Line_shuffle ] in
  let structured f =
    match f () with
    | () -> ()
    | exception Robust.Error _ -> ()
    | exception e ->
        Alcotest.failf "non-structured exception escaped: %s"
          (Printexc.to_string e)
  in
  let fuzz_one ~case ~klass ~policy ~target =
    let rng = Rng.create ~seed:(0xD15C lxor (case * 7) lxor Hashtbl.hash target) in
    let dir = fresh_dir () in
    Unix.mkdir (Filename.concat dir "models") 0o755;
    (match target with
    | `Wal ->
        (* intact model + mangled WAL *)
        write_all (Filename.concat (Filename.concat dir "models") model_name)
          model_doc;
        write_all (Filename.concat dir "wal.jsonl")
          (Fuzz.mutate klass rng wal_doc)
    | `Model ->
        (* mangled model, no WAL: the load must detect it *)
        write_all (Filename.concat (Filename.concat dir "models") model_name)
          (Fuzz.mutate klass rng model_doc));
    with_policy policy (fun () ->
        structured (fun () ->
            let t = Serve.create ~cache_dir:dir () in
            let resp = Serve.handle_line t load_c432 in
            match Json.bool_field "ok" (parse_resp resp) with
            | Ok true -> ()
            | Ok false when policy = Robust.Strict ->
                (* must still be a structured error, engine alive *)
                ignore (check_err "strict fuzz error" resp);
                ignore
                  (check_ok "engine alive"
                     (Serve.handle_line t (req [ ("op", Json.Str "ping") ])))
            | _ -> Alcotest.failf "repair-mode load failed on fuzzed state: %s" resp))
  in
  List.iter
    (fun target ->
      List.iter
        (fun klass ->
          for case = 0 to 3 do
            fuzz_one ~case ~klass ~policy:Robust.Repair ~target;
            fuzz_one ~case ~klass ~policy:Robust.Strict ~target
          done)
        classes)
    [ `Wal; `Model ]

(* Backpressure: requests beyond the queue bound are shed in order with
   a structured overloaded response and a positive retry hint. *)
let test_queue_overflow_sheds () =
  let t = Serve.create ~max_queue:2 () in
  let ping i = req [ ("id", Json.Num (float_of_int i)); ("op", Json.Str "ping") ] in
  let responses = Serve.handle_lines t (List.init 5 ping) in
  Alcotest.(check int) "every request answered" 5 (List.length responses);
  let overloaded r =
    match Json.bool_field "overloaded" (parse_resp r) with Ok b -> b | _ -> false
  in
  Alcotest.(check (list bool))
    "first max_queue served, tail shed in order"
    [ false; false; true; true; true ]
    (List.map overloaded responses);
  List.iteri
    (fun i r ->
      Alcotest.(check (float 0.0))
        "ids echoed in request order" (float_of_int i)
        (num "id" "id" (parse_resp r)))
    responses;
  let shed = List.filteri (fun i _ -> i >= 2) responses in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "positive retry hint" true
        (num "retry hint" "retry_after_ms" (parse_resp r) >= 1.0))
    shed;
  (* raising the bound un-sheds *)
  Serve.set_max_queue t 8;
  Alcotest.(check int) "no shedding under the bound" 0
    (List.length (List.filter overloaded (Serve.handle_lines t (List.init 5 ping))))

let suites =
  [
    ( "serve.incremental",
      [
        QCheck_alcotest.to_alcotest (qcheck_incremental 1);
        QCheck_alcotest.to_alcotest (qcheck_incremental 2);
        QCheck_alcotest.to_alcotest (qcheck_incremental 4);
      ] );
    ( "serve.engine",
      [
        Alcotest.test_case "content-hash model cache" `Quick test_load_cache;
        Alcotest.test_case "whatif incremental == full" `Quick
          test_whatif_incremental_vs_full;
        Alcotest.test_case "whatif rollback/commit/revert" `Quick
          test_whatif_rollback_and_commit;
        Alcotest.test_case "errors degrade, daemon survives" `Quick
          test_errors_do_not_kill_engine;
        Alcotest.test_case "bad what-if edits" `Quick test_whatif_bad_edits;
        Alcotest.test_case "grouping == sequential" `Quick
          test_grouping_equals_sequential;
        Alcotest.test_case "byte-identical across domains" `Quick
          test_responses_identical_across_domains;
        Alcotest.test_case "batch op strict/repair" `Quick
          test_batch_op_policies;
      ] );
    ( "serve.durability",
      [
        Alcotest.test_case "disk cache warm restart" `Quick
          test_disk_cache_warm_restart;
        Alcotest.test_case "cache corruption quarantined" `Quick
          test_cache_corruption;
        Alcotest.test_case "crash recovery bit-identical" `Quick
          test_recovery_bit_identity;
        Alcotest.test_case "recovery bit-identical across domains" `Quick
          test_recovery_bit_identity_domains;
        Alcotest.test_case "torn WAL repair/strict" `Quick test_wal_torn_tail;
        Alcotest.test_case "bit-flipped WAL dropped" `Quick test_wal_bit_flip;
        Alcotest.test_case "fuzzed WAL/cache files" `Quick test_wal_cache_fuzz;
        Alcotest.test_case "deadline timeout response" `Quick
          test_deadline_timeout_response;
        Alcotest.test_case "deadline cancels Batch.run" `Quick
          test_deadline_cancels_batch_run;
        Alcotest.test_case "queue overflow sheds" `Quick
          test_queue_overflow_sheds;
      ] );
  ]
