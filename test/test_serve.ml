(* Tests for the persistent analysis daemon (lib/serve).

   The central pin: what-if edits answered by incremental re-propagation
   (Tgraph.fanout_closure_into + Propagate.forward_update_into) are
   bit-identical to a full re-sweep — over random DAGs and random edit
   sequences, at 1/2/4 worker domains — and the engine's response stream
   is byte-identical however requests are grouped and however many
   domains run underneath. *)

module Form = Ssta_canonical.Form
module Form_buf = Ssta_canonical.Form_buf
module Tgraph = Ssta_timing.Tgraph
module Par = Ssta_par.Par
module Robust = Ssta_robust.Robust
module Json = Ssta_json.Json
module Serve = Ssta_serve.Serve
module H = Hier_ssta
module Rng = Ssta_gauss.Rng

let with_policy policy f =
  let prev = Robust.policy () in
  Robust.set_policy policy;
  Fun.protect ~finally:(fun () -> Robust.set_policy prev) f

(* ------------------------------------------------------------------ *)
(* Incremental re-propagation == full re-sweep (QCheck)               *)
(* ------------------------------------------------------------------ *)

let exactly_equal (a : Form.t) (b : Form.t) =
  a.Form.mean = b.Form.mean
  && a.Form.rand = b.Form.rand
  && a.Form.globals = b.Form.globals
  && a.Form.pcs = b.Form.pcs

let sweep_equal n ws reference =
  Array.for_all2
    (fun got want ->
      match (got, want) with
      | None, None -> true
      | Some a, Some b -> exactly_equal a b
      | _ -> false)
    (Array.init n (fun v -> H.Propagate.ws_form ws v))
    reference

(* One random edit step: pick 1..3 random edges, transform each like the
   serve what-if op does (scale/add/set). *)
let random_edits rng g (forms : Form.t array) =
  let m = Tgraph.n_edges g in
  let k = 1 + Rng.int rng 3 in
  List.init k (fun _ ->
      let e = Rng.int rng m in
      let f = forms.(e) in
      let next =
        match Rng.int rng 3 with
        | 0 -> Form.scale (0.5 +. (2.0 *. Rng.uniform rng)) f
        | 1 -> Form.add_const f ((10.0 *. Rng.uniform rng) -. 5.0)
        | _ -> { f with Form.mean = 50.0 *. Rng.uniform rng }
      in
      (e, next))

let prop_incremental_equals_full n_domains seed =
  Par.with_domains n_domains (fun () ->
      let dims = { Form.n_globals = 2; n_pcs = 3 } in
      let g, forms = Test_kernels.random_dag seed dims in
      let forms = Array.copy forms in
      let n = Tgraph.n_vertices g in
      let fbuf = Form_buf.of_forms dims forms in
      let ws = H.Propagate.create_workspace () in
      H.Propagate.forward_into ws g ~forms:fbuf ~sources:g.Tgraph.inputs;
      let dirty = Bytes.create n in
      let rng = Rng.create ~seed:(seed lxor 0x5e21e) in
      let steps = 1 + Rng.int rng 6 in
      let ok = ref true in
      for _ = 1 to steps do
        let edits = random_edits rng g forms in
        List.iter
          (fun (e, next) ->
            forms.(e) <- next;
            Form_buf.set fbuf e next)
          edits;
        let seeds =
          Array.of_list (List.map (fun (e, _) -> g.Tgraph.dst.(e)) edits)
        in
        ignore (Tgraph.fanout_closure_into g ~seeds ~into:dirty);
        let n_dirty, _ =
          H.Propagate.forward_update_into ws g ~forms:fbuf
            ~sources:g.Tgraph.inputs ~dirty
        in
        if n_dirty <= 0 then ok := false;
        (* Reference: an independent full sweep over the current forms. *)
        let reference =
          H.Propagate.forward g ~forms ~sources:g.Tgraph.inputs
        in
        if not (sweep_equal n ws reference) then ok := false
      done;
      !ok)

let qcheck_incremental n_domains =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "incremental re-timing == full re-sweep (domains=%d)"
         n_domains)
    ~count:60
    QCheck.(int_bound 100_000)
    (prop_incremental_equals_full n_domains)

(* ------------------------------------------------------------------ *)
(* Engine protocol                                                    *)
(* ------------------------------------------------------------------ *)

let req fields = Json.to_string (Json.Obj fields)
let parse_resp s = Json.parse_exn s

let check_ok label resp =
  let j = parse_resp resp in
  match Json.bool_field "ok" j with
  | Ok true -> j
  | _ -> Alcotest.failf "%s: expected ok response, got %s" label resp

let check_err label resp =
  let j = parse_resp resp in
  match Json.bool_field "ok" j with
  | Ok false -> j
  | _ -> Alcotest.failf "%s: expected error response, got %s" label resp

let num label field j =
  match Json.num_field field j with
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" label m

let load_small t =
  ignore
    (check_ok "load" (Serve.handle_line t (req [ ("op", Json.Str "load"); ("design", Json.Str "c432") ])))

let test_load_cache () =
  let t = Serve.create () in
  let j =
    check_ok "load"
      (Serve.handle_line t
         (req [ ("op", Json.Str "load"); ("design", Json.Str "c432") ]))
  in
  Alcotest.(check bool)
    "first load characterizes" false
    (match Json.bool_field "cached" j with Ok b -> b | Error m -> Alcotest.fail m);
  let j2 =
    check_ok "swap"
      (Serve.handle_line t
         (req [ ("op", Json.Str "swap"); ("design", Json.Str "c432") ]))
  in
  Alcotest.(check bool)
    "swap back hits the content-hash cache" true
    (match Json.bool_field "cached" j2 with Ok b -> b | Error m -> Alcotest.fail m);
  Alcotest.(check int) "one model resident" 1 (Serve.cache_size t)

let test_whatif_incremental_vs_full () =
  let t = Serve.create () in
  load_small t;
  let edits =
    Json.Arr
      [
        Json.Obj [ ("edge", Json.Num 1.0); ("scale", Json.Num 1.7) ];
        Json.Obj [ ("edge", Json.Num 4.0); ("add", Json.Num 12.5) ];
      ]
  in
  let whatif mode =
    check_ok ("whatif " ^ mode)
      (Serve.handle_line t
         (req
            [
              ("op", Json.Str "whatif");
              ("edits", edits);
              ("mode", Json.Str mode);
            ]))
  in
  let a = whatif "incremental" and b = whatif "full" in
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0))
        (f ^ " bit-identical across modes")
        (num "full" f b) (num "incr" f a))
    [ "mean"; "sigma"; "clock" ];
  (* The incremental path visited a strict subset of the graph. *)
  Alcotest.(check bool)
    "incremental visits fewer vertices" true
    (num "incr" "dirty_vertices" a < num "full" "dirty_vertices" b)

let test_whatif_rollback_and_commit () =
  let t = Serve.create () in
  load_small t;
  let quantile () =
    Serve.handle_line t (req [ ("op", Json.Str "quantile") ])
  in
  let before = quantile () in
  let edits =
    Json.Arr [ Json.Obj [ ("edge", Json.Num 0.0); ("scale", Json.Num 3.0) ] ]
  in
  ignore
    (check_ok "transient whatif"
       (Serve.handle_line t
          (req [ ("op", Json.Str "whatif"); ("edits", edits) ])));
  Alcotest.(check string)
    "uncommitted edit leaves the session byte-identical" before (quantile ());
  let committed =
    check_ok "committed whatif"
      (Serve.handle_line t
         (req
            [
              ("op", Json.Str "whatif");
              ("edits", edits);
              ("commit", Json.Bool true);
            ]))
  in
  let after_commit = quantile () in
  Alcotest.(check bool)
    "committed edit changes the session" true (after_commit <> before);
  Alcotest.(check (float 0.0))
    "session quantile equals the committed what-if response"
    (num "commit" "mean" committed)
    (num "session" "mean" (check_ok "quantile" after_commit));
  ignore (check_ok "revert" (Serve.handle_line t (req [ ("op", Json.Str "revert") ])));
  Alcotest.(check string) "revert restores pristine" before (quantile ())

let test_errors_do_not_kill_engine () =
  let t = Serve.create () in
  (* No design loaded yet: structured error, not an exception. *)
  let j =
    check_err "quantile w/o load"
      (Serve.handle_line t (req [ ("op", Json.Str "quantile") ]))
  in
  (match Json.find "error" j with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "error responses carry a structured context");
  ignore (check_err "malformed json" (Serve.handle_line t "{\"op\": oops"));
  ignore (check_err "unknown op" (Serve.handle_line t (req [ ("op", Json.Str "warp") ])));
  with_policy Robust.Strict (fun () ->
      ignore
        (check_err "strict malformed json"
           (Serve.handle_line t "{\"op\": oops")));
  (* The engine still works afterwards. *)
  load_small t;
  ignore (check_ok "ping" (Serve.handle_line t (req [ ("op", Json.Str "ping") ])))

let test_whatif_bad_edits () =
  let t = Serve.create () in
  load_small t;
  let whatif edits =
    Serve.handle_line t
      (req [ ("op", Json.Str "whatif"); ("edits", edits) ])
  in
  ignore
    (check_err "edge out of range"
       (whatif
          (Json.Arr
             [ Json.Obj [ ("edge", Json.Num 9999.0); ("scale", Json.Num 2.0) ] ])));
  ignore
    (check_err "conflicting fields"
       (whatif
          (Json.Arr
             [
               Json.Obj
                 [
                   ("edge", Json.Num 0.0);
                   ("scale", Json.Num 2.0);
                   ("add", Json.Num 1.0);
                 ];
             ])));
  ignore (check_err "empty edits" (whatif (Json.Arr [])));
  ignore
    (check_ok "engine alive after bad edits"
       (Serve.handle_line t (req [ ("op", Json.Str "quantile") ])))

(* ------------------------------------------------------------------ *)
(* Grouped (pipelined) handling == sequential handling                 *)
(* ------------------------------------------------------------------ *)

let scenario_quantile ?(id = 0) corner scale =
  req
    [
      ("id", Json.Num (float_of_int id));
      ("op", Json.Str "quantile");
      ( "scenario",
        Json.Obj
          [ ("corner", Json.Str corner); ("delay_scale", Json.Num scale) ] );
    ]

let grouping_corpus =
  [
    req [ ("id", Json.Num 1.0); ("op", Json.Str "load"); ("design", Json.Str "c432") ];
    scenario_quantile ~id:2 "slow" 1.0;
    scenario_quantile ~id:3 "fast" 1.0;
    (* id 4 duplicates id 2's scenario: deduplicated into one shared sweep *)
    scenario_quantile ~id:4 "slow" 1.0;
    scenario_quantile ~id:5 "nominal" 1.05;
    req [ ("id", Json.Num 6.0); ("op", Json.Str "quantile") ];
    scenario_quantile ~id:7 "global_slow" 1.0;
    req [ ("id", Json.Num 8.0); ("op", Json.Str "stats") ];
  ]

(* stats output includes live counters, which legitimately differ between
   grouped and sequential processing; compare all other lines. *)
let comparable resp =
  match Json.parse resp with
  | Ok j -> (match Json.str_field "op" j with Ok "stats" -> false | _ -> true)
  | Error _ -> true

let run_corpus grouped =
  let t = Serve.create () in
  let responses =
    if grouped then Serve.handle_lines t grouping_corpus
    else List.map (Serve.handle_line t) grouping_corpus
  in
  List.filter comparable responses

let test_grouping_equals_sequential () =
  Alcotest.(check (list string))
    "pipelined grouping is byte-identical to sequential handling"
    (run_corpus false) (run_corpus true)

let test_responses_identical_across_domains () =
  let at n = Par.with_domains n (fun () -> run_corpus true) in
  Alcotest.(check (list string))
    "response stream byte-identical at 1 vs 4 domains" (at 1) (at 4)

(* ------------------------------------------------------------------ *)
(* Batch op under the robust policies                                  *)
(* ------------------------------------------------------------------ *)

let test_batch_op_policies () =
  let bad_batch t =
    Serve.handle_line t
      (req
         [
           ("op", Json.Str "batch");
           ( "scenarios",
             Json.Arr
               [
                 Json.Obj [ ("corner", Json.Str "typical") ];
                 Json.Obj [ ("sigma_scale", Json.Num (-2.0)) ];
               ] );
         ])
  in
  with_policy Robust.Repair (fun () ->
      let t = Serve.create () in
      load_small t;
      let j = check_ok "repaired batch" (bad_batch t) in
      Alcotest.(check (float 0.0))
        "both defective scenarios repaired and evaluated" 2.0
        (num "batch" "scenarios" j));
  with_policy Robust.Strict (fun () ->
      let t = Serve.create () in
      load_small t;
      ignore (check_err "strict batch rejects defective scenario" (bad_batch t)))

let suites =
  [
    ( "serve.incremental",
      [
        QCheck_alcotest.to_alcotest (qcheck_incremental 1);
        QCheck_alcotest.to_alcotest (qcheck_incremental 2);
        QCheck_alcotest.to_alcotest (qcheck_incremental 4);
      ] );
    ( "serve.engine",
      [
        Alcotest.test_case "content-hash model cache" `Quick test_load_cache;
        Alcotest.test_case "whatif incremental == full" `Quick
          test_whatif_incremental_vs_full;
        Alcotest.test_case "whatif rollback/commit/revert" `Quick
          test_whatif_rollback_and_commit;
        Alcotest.test_case "errors degrade, daemon survives" `Quick
          test_errors_do_not_kill_engine;
        Alcotest.test_case "bad what-if edits" `Quick test_whatif_bad_edits;
        Alcotest.test_case "grouping == sequential" `Quick
          test_grouping_equals_sequential;
        Alcotest.test_case "byte-identical across domains" `Quick
          test_responses_identical_across_domains;
        Alcotest.test_case "batch op strict/repair" `Quick
          test_batch_op_policies;
      ] );
  ]
